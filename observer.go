package sbr6

import (
	"fmt"
	"io"
	"sync"
)

// Observer receives streaming progress while a Runner executes. Window
// events arrive in window order within one run; runs of a batch interleave
// arbitrarily but calls are serialized, so implementations need no locking
// of their own. Callbacks must not block for long — they run on the worker
// goroutines.
type Observer interface {
	// RunStarted fires when a seed-replicate begins executing.
	RunStarted(seed int64)
	// Window streams one closed measurement window (WithWindows only).
	Window(seed int64, w WindowStat)
	// RunFinished delivers a replicate's final result.
	RunFinished(seed int64, r *Result)
}

// ObserverFuncs adapts plain functions to Observer; nil fields are
// ignored.
type ObserverFuncs struct {
	OnRunStarted  func(seed int64)
	OnWindow      func(seed int64, w WindowStat)
	OnRunFinished func(seed int64, r *Result)
}

// RunStarted implements Observer.
func (o ObserverFuncs) RunStarted(seed int64) {
	if o.OnRunStarted != nil {
		o.OnRunStarted(seed)
	}
}

// Window implements Observer.
func (o ObserverFuncs) Window(seed int64, w WindowStat) {
	if o.OnWindow != nil {
		o.OnWindow(seed, w)
	}
}

// RunFinished implements Observer.
func (o ObserverFuncs) RunFinished(seed int64, r *Result) {
	if o.OnRunFinished != nil {
		o.OnRunFinished(seed, r)
	}
}

// NewProgressObserver returns an Observer that writes one line per event
// to w — live progress for CLIs.
func NewProgressObserver(w io.Writer) Observer {
	return ObserverFuncs{
		OnRunStarted: func(seed int64) {
			fmt.Fprintf(w, "run seed=%d started\n", seed)
		},
		OnWindow: func(seed int64, win WindowStat) {
			fmt.Fprintf(w, "run seed=%d window @%s: %d/%d delivered (pdr=%.3f)\n",
				seed, win.Start, win.Delivered, win.Sent, win.PDR())
		},
		OnRunFinished: func(seed int64, r *Result) {
			fmt.Fprintf(w, "run seed=%d finished: %s\n", seed, r)
		},
	}
}

// multiObserver fans every event out to several observers in order —
// how a Runner merges its own Observer with a scenario's WithObserver
// attachments.
type multiObserver struct{ obs []Observer }

func (m multiObserver) RunStarted(seed int64) {
	for _, o := range m.obs {
		o.RunStarted(seed)
	}
}

func (m multiObserver) Window(seed int64, w WindowStat) {
	for _, o := range m.obs {
		o.Window(seed, w)
	}
}

func (m multiObserver) RunFinished(seed int64, r *Result) {
	for _, o := range m.obs {
		o.RunFinished(seed, r)
	}
}

// syncObserver serializes observer callbacks across batch workers.
type syncObserver struct {
	mu  sync.Mutex
	obs Observer
}

func (s *syncObserver) RunStarted(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs.RunStarted(seed)
}

func (s *syncObserver) Window(seed int64, w WindowStat) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs.Window(seed, w)
}

func (s *syncObserver) RunFinished(seed int64, r *Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs.RunFinished(seed, r)
}
