// Command sbrbench regenerates the paper's tables, figures and security
// analysis as measured experiments. Each experiment id follows DESIGN.md:
//
//	T1 T2   — Table 1 message formats, Table 2 crypto substrate
//	F1-F3   — Figures 1-3 (CGA layout, secure DAD, route discovery)
//	S1-S4   — Section 4 attacks (DNS impersonation, black hole,
//	          forged/replayed control, RERR spam)
//	E1-E4   — derived measurements (overhead, suite ablation, credit
//	          convergence, collision probability)
//
// Usage:
//
//	sbrbench -exp all            # everything, full sweeps
//	sbrbench -exp S2,E3 -quick   # selected experiments, small sweeps
//	sbrbench -list               # enumerate experiments
//	sbrbench -scale -json        # scale sweeps (radio medium, verify
//	                             # cache, formation), JSON output — this
//	                             # is what seeds BENCH_scale.json
//	sbrbench -trend a.json b.json  # machine-independent speedup-ratio
//	                               # deltas (naive/grid, nocache/cache,
//	                               # serial/percell) between two sweeps;
//	                               # exits 1 beyond -trend-threshold
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sbr6"
	"sbr6/internal/boot"
	"sbr6/internal/experiments"
	"sbr6/internal/radio"
	"sbr6/internal/scalebench"
	"sbr6/internal/trace"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		seed     = flag.Int64("seed", 1, "simulation seed")
		quick    = flag.Bool("quick", false, "shrink sweeps for a fast run")
		reps     = flag.Int("reps", 3, "replicate seeds for stochastic sweeps (fanned out in parallel)")
		progress = flag.Bool("progress", false, "stream per-run progress to stderr while experiments execute")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		list     = flag.Bool("list", false, "list available experiments and exit")
		scale    = flag.Bool("scale", false, "run the radio-medium scale sweep (naive vs grid) instead of experiments")
		jsonOut  = flag.Bool("json", false, "with -scale, emit the results as JSON (seeds BENCH_scale.json)")
		rounds   = flag.Int("rounds", 3, "flood rounds per scale cell")
		trend    = flag.Bool("trend", false, "compare two scale sweep JSON files: sbrbench -trend old.json new.json")
		trendTol = flag.Float64("trend-threshold", 0.15, "fractional speedup-ratio erosion that -trend flags as a regression (ratios cancel hardware, so this can be sharp)")
	)
	flag.Parse()

	if *trend {
		os.Exit(runTrend(flag.Args(), *trendTol))
	}

	if *scale {
		if *rounds < 1 {
			fmt.Fprintf(os.Stderr, "sbrbench: -rounds %d must be at least 1\n", *rounds)
			os.Exit(2)
		}
		runScaleSweep(*seed, *rounds, *jsonOut)
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := experiments.Options{Seed: *seed, Quick: *quick, Replicates: *reps}
	if *progress {
		opts.Observer = sbr6.NewProgressObserver(os.Stderr)
	}
	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	runExperiments(selected, opts, *csv)
}

// runTrend loads two scale sweep JSON files (older first), renders the
// per-pair speedup-ratio deltas — ratios within one sweep divide two wall
// times from the same hardware, so machine speed cancels — and returns 1
// when any pair's speedup eroded beyond the threshold, the exit code CI
// keys the regression warning on.
func runTrend(args []string, threshold float64) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "sbrbench: -trend needs exactly two files: old.json new.json")
		return 2
	}
	load := func(path string) []scalebench.ScaleResult {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sbrbench: %v\n", err)
			os.Exit(2)
		}
		var rs []scalebench.ScaleResult
		if err := json.Unmarshal(raw, &rs); err != nil {
			fmt.Fprintf(os.Stderr, "sbrbench: %s: %v\n", path, err)
			os.Exit(2)
		}
		return rs
	}
	rows := scalebench.Trend(load(args[0]), load(args[1]), threshold)
	fmt.Println(scalebench.RenderTrend(rows, threshold))
	if scalebench.Regressed(rows) {
		fmt.Fprintf(os.Stderr, "sbrbench: a speedup ratio eroded beyond -%.0f%% (see table)\n", threshold*100)
		return 1
	}
	return 0
}

// runScaleSweep measures the constant-density flood workload (naive vs
// grid medium), the wire-path workload (pooled vs allocating frames,
// reported as exact allocations per broadcast), the verification workload
// (direct vs memo cache), the binding-table workload (per-node memos vs
// one shared table per verifier group, reported as exact primitive CGA
// verifications) and the formation workload (serial vs per-cell
// admission) at up to 10000 nodes, reporting wall time per round and the
// speedups.
func runScaleSweep(seed int64, rounds int, jsonOut bool) {
	sizes := []int{250, 1000, 4000, 10000}
	var results []scalebench.ScaleResult
	for _, n := range sizes {
		for _, kind := range []radio.IndexKind{radio.IndexNaive, radio.IndexGrid} {
			results = append(results, scalebench.RunScale(n, kind, seed, rounds, time.Now))
		}
	}
	for _, n := range sizes {
		for _, pooled := range []bool{false, true} {
			results = append(results, scalebench.RunWire(n, pooled, seed, rounds, time.Now))
		}
	}
	for _, n := range sizes {
		for _, cached := range []bool{false, true} {
			results = append(results, scalebench.RunCryptoScale(n, cached, seed, rounds, time.Now))
		}
	}
	for _, n := range []int{1000, 4000, 10000} {
		for _, shared := range []bool{false, true} {
			results = append(results, scalebench.RunBindScale(n, shared, seed, rounds, time.Now))
		}
	}
	for _, n := range []int{1000, 4000, 10000} {
		for _, k := range []boot.Kind{boot.Serial, boot.PerCell} {
			r := scalebench.RunFormation(n, k, seed, time.Now)
			if r.Configured != r.Nodes {
				// Never record an incomplete formation as a speedup: a fast
				// wall clock with unaddressed nodes is a broken policy, and
				// this sweep seeds the trend baseline.
				fmt.Fprintf(os.Stderr, "sbrbench: %s formation at %d nodes left %d unaddressed\n",
					k, n, r.Nodes-r.Configured)
				os.Exit(1)
			}
			results = append(results, r)
		}
	}
	for _, n := range []int{250, 1000, 4000} {
		for _, kind := range []radio.IndexKind{radio.IndexNaive, radio.IndexGrid} {
			results = append(results, scalebench.RunAuditSweep(n, kind, seed, rounds, time.Now))
		}
	}
	// The sharded engine is the only workload that reaches 100k nodes: the
	// naive medium's O(N^2) round is unaffordable there, while the sharded
	// grid round stays linear. Serial is the engine at one region, so the
	// pair divides byte-identical computations and only wall time differs.
	for _, n := range []int{10000, 100000} {
		for _, regions := range []int{1, scalebench.ShardRegions} {
			results = append(results, scalebench.RunShard(n, regions, seed, rounds, time.Now))
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	radioT := trace.NewTable("radio medium scale sweep (wall ms per flood round)",
		"nodes", "naive", "grid", "speedup", "mean degree")
	wireT := trace.NewTable("wire path scale sweep (heap allocations per broadcast)",
		"nodes", "nopool", "pool", "reduction", "wall ms/round")
	cryptoT := trace.NewTable("verification scale sweep (wall ms per verify round)",
		"nodes", "nocache", "cache", "speedup", "crypto ops saved")
	bindT := trace.NewTable(fmt.Sprintf("binding table scale sweep (primitive CGA verifications, %d-node verifier group)", scalebench.BindVerifiers),
		"nodes", "pernode", "shared", "reduction", "table hits")
	formT := trace.NewTable("formation scale sweep (wall ms to fully addressed)",
		"nodes", "serial", "percell", "speedup", "virtual time")
	auditT := trace.NewTable("audit sweep cost (wall ms per sweep period)",
		"nodes", "naive", "grid", "speedup", "events/round")
	shardT := trace.NewTable(fmt.Sprintf("sharded engine flood sweep (wall ms per round, %d regions)", scalebench.ShardRegions),
		"nodes", "serial", "sharded", "speedup", "mean degree")
	for i := 0; i < len(results); i += 2 {
		a, b := results[i], results[i+1]
		switch a.Mode {
		case "radio":
			radioT.Add(fmt.Sprint(a.Nodes),
				fmt.Sprintf("%.1f", a.WallMS), fmt.Sprintf("%.1f", b.WallMS),
				fmt.Sprintf("%.1fx", a.WallMS/b.WallMS), fmt.Sprintf("%.1f", a.Degree))
		case "wire":
			wireT.Add(fmt.Sprint(a.Nodes),
				fmt.Sprintf("%.1f", a.AllocsPerOp), fmt.Sprintf("%.2f", b.AllocsPerOp),
				fmt.Sprintf("%.1fx", (1+a.AllocsPerOp)/(1+b.AllocsPerOp)),
				fmt.Sprintf("%.1f -> %.1f", a.WallMS, b.WallMS))
		case "crypto":
			cryptoT.Add(fmt.Sprint(a.Nodes),
				fmt.Sprintf("%.1f", a.WallMS), fmt.Sprintf("%.1f", b.WallMS),
				fmt.Sprintf("%.1fx", a.WallMS/b.WallMS),
				fmt.Sprintf("%d/%d", a.VerifyOps-b.VerifyOps, a.VerifyOps))
		case "bindtable":
			bindT.Add(fmt.Sprint(a.Nodes),
				fmt.Sprint(a.VerifyOps), fmt.Sprint(b.VerifyOps),
				fmt.Sprintf("%.1fx", float64(1+a.VerifyOps)/float64(1+b.VerifyOps)),
				fmt.Sprint(b.CacheHits))
		case "formation":
			formT.Add(fmt.Sprint(a.Nodes),
				fmt.Sprintf("%.1f", a.WallMS), fmt.Sprintf("%.1f", b.WallMS),
				fmt.Sprintf("%.1fx", a.WallMS/b.WallMS),
				fmt.Sprintf("%.0fs -> %.1fs", a.VirtualS, b.VirtualS))
		case "audit":
			auditT.Add(fmt.Sprint(a.Nodes),
				fmt.Sprintf("%.1f", a.WallMS), fmt.Sprintf("%.1f", b.WallMS),
				fmt.Sprintf("%.1fx", a.WallMS/b.WallMS),
				fmt.Sprint(a.Events/uint64(a.Rounds)))
		case "shard":
			shardT.Add(fmt.Sprint(a.Nodes),
				fmt.Sprintf("%.1f", a.WallMS), fmt.Sprintf("%.1f", b.WallMS),
				fmt.Sprintf("%.1fx", a.WallMS/b.WallMS), fmt.Sprintf("%.1f", a.Degree))
		}
	}
	fmt.Println(radioT.String())
	fmt.Println(wireT.String())
	fmt.Println(cryptoT.String())
	fmt.Println(bindT.String())
	fmt.Println(formT.String())
	fmt.Println(auditT.String())
	fmt.Println(shardT.String())
}

func runExperiments(selected []experiments.Experiment, opts experiments.Options, csv bool) {
	for _, e := range selected {
		start := time.Now()
		fmt.Printf("### %s — %s\n\n", e.ID, e.Title)
		for _, tb := range e.Run(opts) {
			if csv {
				fmt.Printf("# %s\n%s\n", tb.Title, tb.CSV())
			} else {
				fmt.Println(tb.String())
			}
		}
		fmt.Printf("(%s completed in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
