// Command sbrbench regenerates the paper's tables, figures and security
// analysis as measured experiments. Each experiment id follows DESIGN.md:
//
//	T1 T2   — Table 1 message formats, Table 2 crypto substrate
//	F1-F3   — Figures 1-3 (CGA layout, secure DAD, route discovery)
//	S1-S4   — Section 4 attacks (DNS impersonation, black hole,
//	          forged/replayed control, RERR spam)
//	E1-E4   — derived measurements (overhead, suite ablation, credit
//	          convergence, collision probability)
//
// Usage:
//
//	sbrbench -exp all            # everything, full sweeps
//	sbrbench -exp S2,E3 -quick   # selected experiments, small sweeps
//	sbrbench -list               # enumerate experiments
//	sbrbench -scale -json        # radio-medium scale sweep, JSON output
//	                             # (this is what seeds BENCH_scale.json)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sbr6"
	"sbr6/internal/experiments"
	"sbr6/internal/radio"
	"sbr6/internal/scalebench"
	"sbr6/internal/trace"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		seed     = flag.Int64("seed", 1, "simulation seed")
		quick    = flag.Bool("quick", false, "shrink sweeps for a fast run")
		reps     = flag.Int("reps", 3, "replicate seeds for stochastic sweeps (fanned out in parallel)")
		progress = flag.Bool("progress", false, "stream per-run progress to stderr while experiments execute")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		list     = flag.Bool("list", false, "list available experiments and exit")
		scale    = flag.Bool("scale", false, "run the radio-medium scale sweep (naive vs grid) instead of experiments")
		jsonOut  = flag.Bool("json", false, "with -scale, emit the results as JSON (seeds BENCH_scale.json)")
		rounds   = flag.Int("rounds", 3, "flood rounds per scale cell")
	)
	flag.Parse()

	if *scale {
		if *rounds < 1 {
			fmt.Fprintf(os.Stderr, "sbrbench: -rounds %d must be at least 1\n", *rounds)
			os.Exit(2)
		}
		runScaleSweep(*seed, *rounds, *jsonOut)
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := experiments.Options{Seed: *seed, Quick: *quick, Replicates: *reps}
	if *progress {
		opts.Observer = sbr6.NewProgressObserver(os.Stderr)
	}
	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	runExperiments(selected, opts, *csv)
}

// runScaleSweep measures the constant-density flood workload (naive vs
// grid medium) and the verification workload (direct vs memo cache) at
// 250-10000 nodes, reporting wall time per round and the speedups.
func runScaleSweep(seed int64, rounds int, jsonOut bool) {
	sizes := []int{250, 1000, 4000, 10000}
	var results []scalebench.ScaleResult
	for _, n := range sizes {
		for _, kind := range []radio.IndexKind{radio.IndexNaive, radio.IndexGrid} {
			results = append(results, scalebench.RunScale(n, kind, seed, rounds, time.Now))
		}
	}
	for _, n := range sizes {
		for _, cached := range []bool{false, true} {
			results = append(results, scalebench.RunCryptoScale(n, cached, seed, rounds, time.Now))
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	radioT := trace.NewTable("radio medium scale sweep (wall ms per flood round)",
		"nodes", "naive", "grid", "speedup", "mean degree")
	cryptoT := trace.NewTable("verification scale sweep (wall ms per verify round)",
		"nodes", "nocache", "cache", "speedup", "crypto ops saved")
	for i := 0; i < len(results); i += 2 {
		a, b := results[i], results[i+1]
		switch a.Mode {
		case "radio":
			radioT.Add(fmt.Sprint(a.Nodes),
				fmt.Sprintf("%.1f", a.WallMS), fmt.Sprintf("%.1f", b.WallMS),
				fmt.Sprintf("%.1fx", a.WallMS/b.WallMS), fmt.Sprintf("%.1f", a.Degree))
		case "crypto":
			cryptoT.Add(fmt.Sprint(a.Nodes),
				fmt.Sprintf("%.1f", a.WallMS), fmt.Sprintf("%.1f", b.WallMS),
				fmt.Sprintf("%.1fx", a.WallMS/b.WallMS),
				fmt.Sprintf("%d/%d", a.VerifyOps-b.VerifyOps, a.VerifyOps))
		}
	}
	fmt.Println(radioT.String())
	fmt.Println(cryptoT.String())
}

func runExperiments(selected []experiments.Experiment, opts experiments.Options, csv bool) {
	for _, e := range selected {
		start := time.Now()
		fmt.Printf("### %s — %s\n\n", e.ID, e.Title)
		for _, tb := range e.Run(opts) {
			if csv {
				fmt.Printf("# %s\n%s\n", tb.Title, tb.CSV())
			} else {
				fmt.Println(tb.String())
			}
		}
		fmt.Printf("(%s completed in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
