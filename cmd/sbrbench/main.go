// Command sbrbench regenerates the paper's tables, figures and security
// analysis as measured experiments. Each experiment id follows DESIGN.md:
//
//	T1 T2   — Table 1 message formats, Table 2 crypto substrate
//	F1-F3   — Figures 1-3 (CGA layout, secure DAD, route discovery)
//	S1-S4   — Section 4 attacks (DNS impersonation, black hole,
//	          forged/replayed control, RERR spam)
//	E1-E4   — derived measurements (overhead, suite ablation, credit
//	          convergence, collision probability)
//
// Usage:
//
//	sbrbench -exp all            # everything, full sweeps
//	sbrbench -exp S2,E3 -quick   # selected experiments, small sweeps
//	sbrbench -list               # enumerate experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sbr6"
	"sbr6/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		seed     = flag.Int64("seed", 1, "simulation seed")
		quick    = flag.Bool("quick", false, "shrink sweeps for a fast run")
		reps     = flag.Int("reps", 3, "replicate seeds for stochastic sweeps (fanned out in parallel)")
		progress = flag.Bool("progress", false, "stream per-run progress to stderr while experiments execute")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		list     = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := experiments.Options{Seed: *seed, Quick: *quick, Replicates: *reps}
	if *progress {
		opts.Observer = sbr6.NewProgressObserver(os.Stderr)
	}
	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		fmt.Printf("### %s — %s\n\n", e.ID, e.Title)
		for _, tb := range e.Run(opts) {
			if *csv {
				fmt.Printf("# %s\n%s\n", tb.Title, tb.CSV())
			} else {
				fmt.Println(tb.String())
			}
		}
		fmt.Printf("(%s completed in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
