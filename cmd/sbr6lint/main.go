// Command sbr6lint statically enforces the simulator's determinism and
// state-ownership invariants over the sim-path packages: no map-order
// dependence (maprange), no wall clock or global RNG (walltime), seeded
// scenario-owned RNG streams only (simrng), and no package-global
// mutable state (globalstate). See the "Static analysis" section of the
// README for what each check guards and how to annotate exceptions.
//
// Usage:
//
//	sbr6lint [packages]          analyze packages (default ./...)
//	sbr6lint -list-allows [dir]  inventory every effective //sbr6: annotation
//	                             (non-test files of the scoped packages)
//
// The tool also speaks the `go vet -vettool` protocol, so CI runs it as
//
//	go vet -vettool=$(which sbr6lint) ./...
//
// and the bare `sbr6lint ./...` form is sugar for exactly that
// invocation (the go command does the package loading and caching).
package main

import (
	"bufio"
	"crypto/sha256"
	"fmt"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"sbr6/internal/lint/analyzers"
	"sbr6/internal/lint/unitchecker"
)

func main() {
	args := os.Args[1:]

	// go vet protocol: version/flag probes, then one .cfg per package.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			fmt.Printf("sbr6lint version devel buildID=%x\n", executableHash())
			return
		}
		if a == "-flags" || a == "--flags" {
			fmt.Println("[]") // the suite exposes no analyzer flags
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitchecker.Run(args[0], analyzers.All, analyzers.Scoped))
	}

	if len(args) > 0 && (args[0] == "-list-allows" || args[0] == "--list-allows") {
		root := "."
		if len(args) > 1 {
			root = args[1]
		}
		os.Exit(listAllows(root))
	}

	// Standalone form: delegate loading, caching and dependency export
	// data to the go command by re-invoking it with ourselves as vettool.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbr6lint: locating own executable: %v\n", err)
		os.Exit(1)
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "sbr6lint: running go vet: %v\n", err)
		os.Exit(1)
	}
}

// executableHash content-hashes the running binary so the go command's
// vet result cache is keyed by the actual analyzer code: rebuilding the
// tool invalidates prior results, an unchanged tool reuses them.
func executableHash() []byte {
	sum := sha256.Sum256(nil)
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum = sha256.Sum256(data)
		}
	}
	return sum[:8]
}

// listAllows prints every //sbr6: annotation that has effect — in
// non-test files of the scoped sim-path packages — one per line, so
// reviewers and the CI step summary can audit the full exception surface
// at a glance. Mentions elsewhere (the lint framework's own docs and
// fixtures, test files, which Reportf never flags) are not exceptions
// and are excluded.
func listAllows(root string) int {
	var lines []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "testdata", ".git":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		if !analyzers.ScopedDir(filepath.Dir(path)) {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for n := 1; sc.Scan(); n++ {
			line := sc.Text()
			if i := strings.Index(line, "//sbr6:"); i >= 0 {
				lines = append(lines, fmt.Sprintf("%s:%d: %s", path, n, strings.TrimSpace(line[i:])))
			}
		}
		return sc.Err()
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbr6lint: %v\n", err)
		return 1
	}
	for _, l := range lines {
		fmt.Println(l)
	}
	fmt.Printf("%d sbr6 annotation(s)\n", len(lines))
	return 0
}
