// Command manetsim runs a single configurable MANET simulation and prints
// the delivery, overhead and security counters. It is the general-purpose
// front end to the scenario harness; cmd/sbrbench drives the same harness
// through the fixed experiment definitions.
//
// Examples:
//
//	manetsim -n 25 -flows 4                         # secure protocol, grid
//	manetsim -n 25 -secure=false -flows 4           # plain DSR baseline
//	manetsim -n 25 -blackholes 2 -duration 30s      # insider black holes
//	manetsim -n 30 -waypoint -speed 5 -loss 0.05    # mobile, lossy
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sbr6/internal/attack"
	"sbr6/internal/core"
	"sbr6/internal/geom"
	"sbr6/internal/scenario"
	"sbr6/internal/trace"
	"sbr6/internal/wire"
)

func main() {
	var (
		n          = flag.Int("n", 25, "node count (node 0 is the DNS server)")
		secure     = flag.Bool("secure", true, "secure protocol (false = plain DSR)")
		credits    = flag.Bool("credits", true, "credit management (secure mode)")
		seed       = flag.Int64("seed", 1, "simulation seed")
		area       = flag.Float64("area", 0, "square area side in metres (0 = grid-sized)")
		rng        = flag.Float64("range", 250, "radio range in metres")
		loss       = flag.Float64("loss", 0, "per-receiver frame loss probability")
		waypoint   = flag.Bool("waypoint", false, "random waypoint mobility")
		speed      = flag.Float64("speed", 5, "max waypoint speed m/s")
		duration   = flag.Duration("duration", 30*time.Second, "measurement window")
		flows      = flag.Int("flows", 2, "number of CBR flows")
		interval   = flag.Duration("interval", 500*time.Millisecond, "packet interval per flow")
		size       = flag.Int("size", 64, "payload bytes")
		blackholes = flag.Int("blackholes", 0, "insider black holes (drop data, honest discovery)")
		forging    = flag.Bool("forge", false, "black holes also forge cached-route replies")
		spammers   = flag.Int("spammers", 0, "RERR spammers")
		verbose    = flag.Bool("v", false, "print every node counter")
		traceN     = flag.Int("trace", 0, "print the first N packet receptions")
	)
	flag.Parse()

	cfg := scenario.DefaultConfig()
	cfg.Seed = *seed
	cfg.N = *n
	if *secure {
		cfg.Protocol = core.DefaultConfig()
	} else {
		cfg.Protocol = core.BaselineConfig()
	}
	cfg.Protocol.UseCredits = *secure && *credits
	cfg.Protocol.ProbeOnLoss = *secure && *credits
	cfg.Protocol.DAD.Timeout = 500 * time.Millisecond
	cfg.DNS.CommitDelay = 500 * time.Millisecond
	cfg.Duration = *duration

	side := 1
	for side*side < *n {
		side++
	}
	if *area > 0 {
		cfg.Area = geom.Rect{W: *area, H: *area}
		cfg.Placement = scenario.PlaceUniform
	} else {
		cfg.Area = geom.Rect{W: 200 * float64(side), H: 200 * float64(side)}
		cfg.Placement = scenario.PlaceGrid
	}
	cfg.Radio.Range = *rng
	cfg.Radio.LossRate = *loss
	if *waypoint {
		cfg.Mobility = scenario.MobilitySpec{Waypoint: true, MinSpeed: 1, MaxSpeed: *speed, Pause: 2 * time.Second}
	}

	// Flows between deterministic distinct pairs, skipping the DNS node.
	for f := 0; f < *flows; f++ {
		from := 1 + (f*2)%(*n-1)
		to := 1 + (f*2+(*n-1)/2)%(*n-1)
		if from == to {
			to = 1 + (to)%(*n-1)
		}
		cfg.Flows = append(cfg.Flows, scenario.Flow{From: from, To: to, Interval: *interval, Size: *size})
	}

	var tr *tracer
	if *traceN > 0 {
		tr = &tracer{limit: *traceN}
	}

	cfg.Behaviors = map[int]core.Behavior{}
	mid := (side/2)*side + side/2
	for b := 0; b < *blackholes; b++ {
		idx := (mid + b) % *n
		if idx == 0 {
			idx = mid
		}
		cfg.Behaviors[idx] = &attack.BlackHole{ForgeCacheReplies: *forging}
	}
	for sp := 0; sp < *spammers; sp++ {
		idx := (mid - 1 - sp + *n) % *n
		if idx == 0 {
			idx = 1
		}
		cfg.Behaviors[idx] = &attack.RERRSpammer{}
	}

	if tr != nil {
		// Tap every node without an adversarial behaviour.
		for i := 0; i < *n; i++ {
			if _, taken := cfg.Behaviors[i]; !taken {
				cfg.Behaviors[i] = &tapBehavior{tr: tr, node: i}
			}
		}
	}

	sc, err := scenario.Build(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	start := time.Now()
	res := sc.Run()

	if tr != nil {
		tt := trace.NewTable(fmt.Sprintf("first %d packet receptions", len(tr.rows)), "t", "node", "packet")
		for _, r := range tr.rows {
			tt.Add(r.at, fmt.Sprint(r.node), r.desc)
		}
		fmt.Println(tt.String())
	}

	fmt.Printf("manetsim: n=%d secure=%v credits=%v blackholes=%d(forge=%v) spammers=%d seed=%d\n\n",
		*n, *secure, cfg.Protocol.UseCredits, *blackholes, *forging, *spammers, *seed)

	summary := trace.NewTable("result", "metric", "value")
	summary.Add("configured", fmt.Sprintf("%d/%d", res.Configured, *n))
	summary.Add("packets offered", fmt.Sprint(res.Sent))
	summary.Add("packets delivered", fmt.Sprint(res.Delivered))
	summary.Add("delivery ratio", fmt.Sprintf("%.3f", res.PDR))
	summary.Add("latency mean", fmt.Sprintf("%.4fs", res.LatencyMean))
	summary.Add("latency p95", fmt.Sprintf("%.4fs", res.LatencyP95))
	summary.Add("control bytes", trace.FormatFloat(res.ControlBytes))
	summary.Add("data bytes", trace.FormatFloat(res.DataBytes))
	summary.Add("signatures", trace.FormatFloat(res.CryptoSign))
	summary.Add("verifications", trace.FormatFloat(res.CryptoVerify))
	summary.Add("link frames tx", fmt.Sprint(res.Link.TxFrames))
	summary.Add("link unicast fails", fmt.Sprint(res.Link.UnicastFails))
	summary.Add("wall clock", time.Since(start).Round(time.Millisecond).String())
	fmt.Println(summary.String())

	if *verbose {
		t := trace.NewTable("aggregated node counters", "counter", "value")
		for _, name := range res.Metrics.CounterNames() {
			t.Add(name, trace.FormatFloat(res.Metrics.Get(name)))
		}
		fmt.Println(t.String())
	}
}

// tracer collects the first N packet receptions across tapped nodes.
type tracer struct {
	limit int
	rows  []traceRow
}

type traceRow struct {
	at   string
	node int
	desc string
}

// tapBehavior is a pass-through core.Behavior that records receptions.
type tapBehavior struct {
	tr   *tracer
	node int
}

// Intercept implements core.Behavior.
func (t *tapBehavior) Intercept(n *core.Node, pkt *wire.Packet, raw []byte) bool {
	if len(t.tr.rows) < t.tr.limit {
		t.tr.rows = append(t.tr.rows, traceRow{at: n.Sim().Now().String(), node: t.node, desc: pkt.String()})
	}
	return false
}

// DropForward implements core.Behavior.
func (t *tapBehavior) DropForward(*core.Node, *wire.Packet) bool { return false }
