// Command manetsim runs configurable MANET simulations and prints the
// delivery, overhead and security counters. It is the general-purpose
// front end to the public sbr6 facade; cmd/sbrbench drives the same
// facade through the fixed experiment definitions.
//
// Examples:
//
//	manetsim -n 25 -flows 4                         # secure protocol, grid
//	manetsim -n 25 -secure=false -flows 4           # plain DSR baseline
//	manetsim -n 25 -blackholes 2 -duration 30s      # insider black holes
//	manetsim -n 30 -waypoint -speed 5 -loss 0.05    # mobile, lossy
//	manetsim -n 16 -reps 8 -blackholes 1            # parallel multi-seed batch
//	manetsim -n 9 -windows 5s -progress             # stream per-window PDR
//	manetsim -n 2000 -stagger 5ms -duration 10s     # thousand-node scale run
//	manetsim -n 2000 -boot percell -duration 10s    # concurrent per-cell formation
//	manetsim -n 100 -boot percell -audit 5s         # post-formation audit sweep
//	manetsim -n 100 -index naive                    # force the O(N) medium
//	manetsim -n 100 -verifycache 0                  # disable crypto memoization
//	manetsim -n 100 -bindtable 0                    # disable cross-node CGA dedup
//	manetsim -n 2000 -shards 4 -duration 10s        # region-sharded core
//	manetsim -n 16 -windows 1s -serve unix:/tmp/sbr6.sock   # daemon mode
//	manetsim -connect unix:/tmp/sbr6.sock -call info        # client mode
//	manetsim -connect unix:/tmp/sbr6.sock -call advance -params '{"windows":4}'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"sbr6"
	"sbr6/internal/trace"
)

func main() {
	var (
		n           = flag.Int("n", 25, "node count (node 0 is the DNS server)")
		secure      = flag.Bool("secure", true, "secure protocol (false = plain DSR)")
		credits     = flag.Bool("credits", true, "credit management (secure mode)")
		seed        = flag.Int64("seed", 1, "simulation seed (first seed with -reps)")
		reps        = flag.Int("reps", 1, "seed replicates, fanned out across the worker pool")
		workers     = flag.Int("workers", 0, "batch worker pool size (0 = GOMAXPROCS)")
		area        = flag.Float64("area", 0, "square area side in metres (0 = grid-sized)")
		rng         = flag.Float64("range", 250, "radio range in metres")
		loss        = flag.Float64("loss", 0, "per-receiver frame loss probability")
		waypoint    = flag.Bool("waypoint", false, "random waypoint mobility")
		speed       = flag.Float64("speed", 5, "max waypoint speed m/s")
		duration    = flag.Duration("duration", 30*time.Second, "measurement window")
		index       = flag.String("index", "auto", "radio neighbor index: auto, naive or grid (results are identical)")
		verifycache = flag.Int("verifycache", sbr6.DefaultVerifyCacheEntries,
			"per-node memoized-verification cache entries (0 disables; results are identical)")
		bindtable = flag.Int("bindtable", sbr6.DefaultBindTableEntries,
			"shared cross-node CGA-binding table entries, one table per simulation or per shard region (0 disables; results are identical)")
		stagger    = flag.Duration("stagger", 0, "delay between DAD starts (0 = safe default; shrink it for 1k+ nodes)")
		shards     = flag.Int("shards", 0, "spatial regions with independent event loops; results are identical for every count >= 1 (0 = classic unsharded core)")
		bootPolicy = flag.String("boot", "serial", "bootstrap admission policy: serial or percell (concurrent per-cell formation)")
		auditEvery = flag.Duration("audit", 0, "post-formation address audit sweep period (0 = disabled)")
		windows    = flag.Duration("windows", 0, "bucket delivery into windows of this size")
		progress   = flag.Bool("progress", false, "stream per-run and per-window progress to stderr")
		flows      = flag.Int("flows", 2, "number of CBR flows")
		interval   = flag.Duration("interval", 500*time.Millisecond, "packet interval per flow")
		size       = flag.Int("size", 64, "payload bytes")
		blackholes = flag.Int("blackholes", 0, "insider black holes (drop data, honest discovery)")
		forging    = flag.Bool("forge", false, "black holes also forge cached-route replies")
		spammers   = flag.Int("spammers", 0, "RERR spammers")
		verbose    = flag.Bool("v", false, "print every node counter")
		traceN     = flag.Int("trace", 0, "print the first N packet receptions")

		serveAddr = flag.String("serve", "",
			`host the simulation as a long-lived session behind the JSON-RPC control plane on this address ("host:port" or "unix:/path")`)
		resumeFile = flag.String("resume", "",
			"with -serve: resume the session from this snapshot file (scenario flags are ignored)")
		connectAddr = flag.String("connect", "", "client mode: address of a -serve daemon")
		callMethod  = flag.String("call", "", "client mode: JSON-RPC method to invoke against -connect")
		callParams  = flag.String("params", "", `client mode: JSON params for -call (e.g. '{"windows":4}')`)
	)
	flag.Parse()

	if *connectAddr != "" {
		os.Exit(runCall(*connectAddr, *callMethod, *callParams))
	}
	if *callMethod != "" || *callParams != "" {
		fmt.Fprintln(os.Stderr, "manetsim: -call/-params require -connect")
		os.Exit(2)
	}
	if *resumeFile != "" && *serveAddr == "" {
		fmt.Fprintln(os.Stderr, "manetsim: -resume requires -serve")
		os.Exit(2)
	}

	opts := []sbr6.Option{
		sbr6.WithSeed(*seed),
		sbr6.WithNodes(*n),
		sbr6.WithDADTimeout(500 * time.Millisecond),
		sbr6.WithDNSCommitDelay(500 * time.Millisecond),
		sbr6.WithDuration(*duration),
		sbr6.WithRadioRange(*rng),
	}
	switch *index {
	case "auto":
		opts = append(opts, sbr6.WithMediumIndex(sbr6.MediumAuto))
	case "naive":
		opts = append(opts, sbr6.WithMediumIndex(sbr6.MediumNaive))
	case "grid":
		opts = append(opts, sbr6.WithMediumIndex(sbr6.MediumGrid))
	default:
		fmt.Fprintf(os.Stderr, "manetsim: -index %q must be auto, naive or grid\n", *index)
		os.Exit(2)
	}
	if *stagger < 0 {
		fmt.Fprintf(os.Stderr, "manetsim: -stagger %v must not be negative\n", *stagger)
		os.Exit(2)
	}
	if *stagger > 0 {
		opts = append(opts, sbr6.WithBootStagger(*stagger))
	}
	switch *bootPolicy {
	case "serial":
		opts = append(opts, sbr6.WithBootPolicy(sbr6.BootSerial))
	case "percell":
		opts = append(opts, sbr6.WithBootPolicy(sbr6.BootPerCell))
	default:
		fmt.Fprintf(os.Stderr, "manetsim: -boot %q must be serial or percell\n", *bootPolicy)
		os.Exit(2)
	}
	if *auditEvery < 0 {
		fmt.Fprintf(os.Stderr, "manetsim: -audit %v must not be negative\n", *auditEvery)
		os.Exit(2)
	}
	if *auditEvery > 0 {
		opts = append(opts, sbr6.WithAuditSweep(*auditEvery))
	}
	opts = append(opts, sbr6.WithVerifyCache(*verifycache))
	opts = append(opts, sbr6.WithBindingTable(*bindtable))
	if *shards != 0 {
		opts = append(opts, sbr6.WithShards(*shards))
	}
	if !*secure {
		opts = append(opts, sbr6.WithBaseline())
	}
	opts = append(opts, sbr6.WithCredits(*secure && *credits))
	if *area > 0 {
		opts = append(opts, sbr6.WithArea(*area, *area), sbr6.WithPlacement(sbr6.PlaceUniform))
	} else {
		opts = append(opts, sbr6.WithPlacement(sbr6.PlaceGrid)) // area auto-sizes to 200 m cells
	}
	if *loss > 0 {
		opts = append(opts, sbr6.WithLoss(*loss))
	}
	if *waypoint {
		opts = append(opts, sbr6.WithMobility(sbr6.Mobility{MinSpeed: 1, MaxSpeed: *speed, Pause: 2 * time.Second}))
	}
	if *windows > 0 {
		opts = append(opts, sbr6.WithWindows(*windows))
	}

	// Flows between deterministic distinct pairs, skipping the DNS node.
	// Guarded on the node count so that degenerate -n values reach the
	// facade's validation instead of dividing by zero here.
	var flowList []sbr6.Flow
	for f := 0; *n >= 2 && f < *flows; f++ {
		from := 1 + (f*2)%(*n-1)
		to := 1 + (f*2+(*n-1)/2)%(*n-1)
		if from == to {
			to = 1 + (to)%(*n-1)
		}
		if from == to {
			continue // tiny networks cannot host this flow
		}
		flowList = append(flowList, sbr6.Flow{From: from, To: to, Interval: *interval, Size: *size})
	}
	opts = append(opts, sbr6.WithFlows(flowList...))

	// Adversary placement: attackers occupy central grid positions.
	side := 1
	for side*side < *n {
		side++
	}
	mid := (side/2)*side + side/2
	var advs []sbr6.Adversary
	taken := map[int]bool{}
	place := func(idx int, mk func(int) sbr6.Adversary) {
		if *n < 2 || len(taken) >= *n-1 {
			// Out of non-anchor slots: refuse rather than silently run a
			// weaker attack than the flags requested. (n < 2 still falls
			// through to the facade's WithNodes error.)
			if *n >= 2 {
				fmt.Fprintf(os.Stderr, "manetsim: %d adversaries requested but only %d non-anchor nodes exist\n",
					*blackholes+*spammers, *n-1)
				os.Exit(2)
			}
			return
		}
		for taken[idx] || idx == 0 {
			idx = (idx + 1) % *n
		}
		taken[idx] = true
		advs = append(advs, mk(idx))
	}
	for b := 0; b < *blackholes; b++ {
		mk := sbr6.BlackHole
		if *forging {
			mk = sbr6.ForgingBlackHole
		}
		place((mid+b)%*n, mk)
	}
	for sp := 0; sp < *spammers; sp++ {
		place((mid-1-sp+*n)%*n, sbr6.RERRSpammer)
	}
	opts = append(opts, sbr6.WithAdversaries(advs...))

	var tr *tracer
	if *traceN > 0 {
		if *reps > 1 {
			fmt.Fprintln(os.Stderr, "manetsim: -trace requires a single run (-reps 1); batch replicates would interleave")
			os.Exit(2)
		}
		tr = &tracer{limit: *traceN}
		opts = append(opts, sbr6.WithTap(tr.record))
	}

	sc, err := sbr6.NewScenario(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *serveAddr != "" {
		os.Exit(runServe(sc, *serveAddr, *resumeFile))
	}

	runner := &sbr6.Runner{Workers: *workers}
	if *progress {
		runner.Observer = sbr6.NewProgressObserver(os.Stderr)
	}
	// Ctrl-C cancels the batch; replicates that already finished are
	// still aggregated and reported by the error path below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Printf("manetsim: n=%d secure=%v credits=%v blackholes=%d(forge=%v) spammers=%d seed=%d reps=%d\n\n",
		*n, *secure, *secure && *credits, *blackholes, *forging, *spammers, *seed, *reps)

	start := time.Now()
	if *reps > 1 {
		batch, err := runner.RunBatch(ctx, sc, sbr6.SeedRange(*seed, *reps))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			if batch != nil && batch.Completed() > 0 {
				fmt.Fprintf(os.Stderr, "reporting the %d replicates that completed\n", batch.Completed())
				printBatch(batch, time.Since(start))
			}
			os.Exit(1)
		}
		printBatch(batch, time.Since(start))
		return
	}
	res, err := runner.Run(ctx, sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if tr != nil {
		tt := trace.NewTable(fmt.Sprintf("first %d packet receptions", len(tr.rows)), "t", "node", "packet")
		for _, r := range tr.rows {
			tt.Add(fmt.Sprintf("%.3fs", r.At.Seconds()), fmt.Sprint(r.Node), r.Desc)
		}
		fmt.Println(tt.String())
	}
	printSingle(res, *n, time.Since(start), *verbose)
}

func printSingle(res *sbr6.Result, n int, wall time.Duration, verbose bool) {
	summary := trace.NewTable("result", "metric", "value")
	summary.Add("configured", fmt.Sprintf("%d/%d", res.Configured, n))
	summary.Add("packets offered", fmt.Sprint(res.Sent))
	summary.Add("packets delivered", fmt.Sprint(res.Delivered))
	summary.Add("delivery ratio", fmt.Sprintf("%.3f", res.PDR))
	summary.Add("latency mean", fmt.Sprintf("%.4fs", res.LatencyMean))
	summary.Add("latency p95", fmt.Sprintf("%.4fs", res.LatencyP95))
	summary.Add("control bytes", trace.FormatFloat(res.ControlBytes))
	summary.Add("data bytes", trace.FormatFloat(res.DataBytes))
	summary.Add("signatures", trace.FormatFloat(res.CryptoSign))
	summary.Add("verifications", trace.FormatFloat(res.CryptoVerify))
	summary.Add("link frames tx", fmt.Sprint(res.TxFrames))
	summary.Add("link unicast fails", fmt.Sprint(res.UnicastFails))
	summary.Add("wall clock", wall.Round(time.Millisecond).String())
	fmt.Println(summary.String())

	for _, w := range res.Windows {
		fmt.Printf("window @%-6s %3d/%3d delivered (pdr=%.3f)\n", w.Start, w.Delivered, w.Sent, w.PDR())
	}

	if verbose {
		t := trace.NewTable("aggregated node counters", "counter", "value")
		for _, name := range res.MetricNames() {
			t.Add(name, trace.FormatFloat(res.Metric(name)))
		}
		fmt.Println(t.String())
	}
}

func printBatch(batch *sbr6.BatchResult, wall time.Duration) {
	t := trace.NewTable(fmt.Sprintf("batch result — %d/%d replicates", batch.Completed(), len(batch.Seeds)),
		"metric", "mean", "stddev", "95% CI", "min", "max")
	row := func(name string, s sbr6.Stat) {
		t.Add(name, fmt.Sprintf("%.3f", s.Mean), fmt.Sprintf("%.3f", s.Stddev),
			fmt.Sprintf("±%.3f", s.CI95), fmt.Sprintf("%.3f", s.Min), fmt.Sprintf("%.3f", s.Max))
	}
	row("delivery ratio", batch.PDR)
	row("latency mean (s)", batch.LatencyMean)
	row("latency p95 (s)", batch.LatencyP95)
	row("control bytes", batch.ControlBytes)
	row("data bytes", batch.DataBytes)
	row("signatures", batch.CryptoSign)
	row("verifications", batch.CryptoVerify)
	row("configured", batch.Configured)
	fmt.Println(t.String())
	printBatchWindows(batch)
	fmt.Printf("wall clock: %s for %d replicates\n", wall.Round(time.Millisecond), len(batch.Seeds))
}

// printBatchWindows aggregates the per-window delivery counts (-windows)
// across the completed replicates.
func printBatchWindows(batch *sbr6.BatchResult) {
	maxW := 0
	for _, r := range batch.Results {
		if r != nil && len(r.Windows) > maxW {
			maxW = len(r.Windows)
		}
	}
	if maxW == 0 {
		return
	}
	wt := trace.NewTable("per-window delivery (mean over replicates)",
		"window", "sent", "delivered", "PDR")
	for w := 0; w < maxW; w++ {
		var start time.Duration
		sent, delivered, pdr, n := 0.0, 0.0, 0.0, 0
		for _, r := range batch.Results {
			if r == nil || w >= len(r.Windows) {
				continue
			}
			win := r.Windows[w]
			start = win.Start
			sent += float64(win.Sent)
			delivered += float64(win.Delivered)
			pdr += win.PDR()
			n++
		}
		if n == 0 {
			continue
		}
		wt.Add(start.String(), fmt.Sprintf("%.1f", sent/float64(n)),
			fmt.Sprintf("%.1f", delivered/float64(n)), fmt.Sprintf("%.3f", pdr/float64(n)))
	}
	fmt.Println(wt.String())
}

// tracer collects the first N packet receptions across tapped nodes.
type tracer struct {
	limit int
	rows  []sbr6.TapEvent
}

func (t *tracer) record(ev sbr6.TapEvent) {
	if len(t.rows) < t.limit {
		t.rows = append(t.rows, ev)
	}
}
