package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"

	"sbr6"
	"sbr6/internal/daemon"
)

// listenOn opens the daemon's listening socket. Addresses of the form
// "unix:/path" select a unix-domain socket (any stale socket file is
// removed first); everything else is a TCP host:port.
func listenOn(addr string) (net.Listener, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		os.Remove(path)
		return net.Listen("unix", path)
	}
	return net.Listen("tcp", addr)
}

// dialTo connects a client to a daemon address in the same syntax
// listenOn accepts.
func dialTo(addr string) (net.Conn, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		return net.Dial("unix", path)
	}
	return net.Dial("tcp", addr)
}

// runServe hosts the scenario as a long-lived session behind the
// JSON-RPC control plane until a client calls shutdown or the process
// receives an interrupt. With a snapshot file the session resumes from
// it instead of booting fresh, and the scenario flags are ignored.
func runServe(sc *sbr6.Scenario, addr, resumeFile string) int {
	var (
		sess *sbr6.Session
		err  error
	)
	if resumeFile != "" {
		data, rerr := os.ReadFile(resumeFile)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "manetsim: %v\n", rerr)
			return 1
		}
		sess, err = sbr6.Resume(data)
	} else {
		sess, err = sbr6.Serve(sc)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "manetsim: %v\n", err)
		return 1
	}
	defer sess.Close()

	l, err := listenOn(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "manetsim: %v\n", err)
		return 1
	}
	srv := daemon.New(sess)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	defer signal.Stop(sig)
	go func() {
		if _, ok := <-sig; ok {
			srv.Close()
		}
	}()
	fmt.Fprintf(os.Stderr, "manetsim: serving seed=%d live=%d window=%d on %v\n",
		sess.Seed(), sess.LiveNodes(), sess.Windows(), l.Addr())
	if err := srv.Serve(l); err != nil {
		fmt.Fprintf(os.Stderr, "manetsim: %v\n", err)
		return 1
	}
	return 0
}

// runCall connects to a daemon, issues one JSON-RPC request and prints
// the result JSON to stdout. Window notifications arriving on the same
// connection are skipped; a daemon error becomes a nonzero exit.
func runCall(addr, method, params string) int {
	if method == "" {
		fmt.Fprintln(os.Stderr, "manetsim: -connect requires -call (info, advance, inject, eject, query, stream, snapshot or shutdown)")
		return 2
	}
	req := struct {
		JSONRPC string          `json:"jsonrpc"`
		ID      int             `json:"id"`
		Method  string          `json:"method"`
		Params  json.RawMessage `json:"params,omitempty"`
	}{JSONRPC: "2.0", ID: 1, Method: method}
	if params != "" {
		if err := json.Unmarshal([]byte(params), &req.Params); err != nil {
			fmt.Fprintf(os.Stderr, "manetsim: -params is not valid JSON: %v\n", err)
			return 2
		}
	}
	frame, err := json.Marshal(req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "manetsim: %v\n", err)
		return 2
	}

	nc, err := dialTo(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "manetsim: %v\n", err)
		return 1
	}
	defer nc.Close()
	if _, err := nc.Write(append(frame, '\n')); err != nil {
		fmt.Fprintf(os.Stderr, "manetsim: %v\n", err)
		return 1
	}

	lines := bufio.NewScanner(nc)
	lines.Buffer(make([]byte, 64*1024), 64<<20)
	for lines.Scan() {
		var resp struct {
			ID     json.RawMessage `json:"id"`
			Result json.RawMessage `json:"result"`
			Error  *daemon.Error   `json:"error"`
		}
		if err := json.Unmarshal(lines.Bytes(), &resp); err != nil {
			fmt.Fprintf(os.Stderr, "manetsim: unreadable frame from daemon: %v\n", err)
			return 1
		}
		if len(resp.ID) == 0 || string(resp.ID) == "null" {
			continue // window notification, not our response
		}
		if resp.Error != nil {
			fmt.Fprintf(os.Stderr, "manetsim: %s: %v\n", method, resp.Error)
			return 1
		}
		fmt.Println(string(resp.Result))
		return 0
	}
	if err := lines.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "manetsim: %v\n", err)
	} else {
		fmt.Fprintln(os.Stderr, "manetsim: daemon closed the connection before responding")
	}
	return 1
}
