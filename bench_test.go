package sbr6

// One benchmark per reproduced artifact (DESIGN.md experiment index).
// Table/figure regeneration itself is cmd/sbrbench; these benches measure
// the hot path behind each artifact so regressions show up in -bench runs.
// Simulation-driven benchmarks go through the public facade — the same
// surface every other consumer uses.

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"sbr6/internal/attack"
	"sbr6/internal/boot"
	"sbr6/internal/cga"
	"sbr6/internal/identity"
	"sbr6/internal/ipv6"
	"sbr6/internal/radio"
	"sbr6/internal/scalebench"
	"sbr6/internal/wire"
)

// --- shared scenario builders ---

func benchSpec(b *testing.B, seed int64, n int, secure bool, extra ...Option) *Scenario {
	b.Helper()
	opts := []Option{
		WithSeed(seed),
		WithNodes(n),
		WithPlacement(PlaceGrid),
		WithFastTimers(),
		WithWarmup(time.Second),
		WithDuration(10 * time.Second),
		WithCooldown(2 * time.Second),
		WithFlows(Flow{From: 1, To: n - 1, Interval: 500 * time.Millisecond, Size: 64}),
	}
	if !secure {
		opts = append(opts, WithBaseline())
	}
	sc, err := NewScenario(append(opts, extra...)...)
	if err != nil {
		b.Fatal(err)
	}
	return sc
}

func benchRun(b *testing.B, sc *Scenario) *Result {
	b.Helper()
	res, err := (&Runner{}).Run(context.Background(), sc)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// --- T1: message codec ---

func BenchmarkTable1MessageCodec(b *testing.B) {
	a := ipv6.SiteLocal(0, 1)
	m := &wire.RREQ{SIP: a, DIP: ipv6.SiteLocal(0, 2), Seq: 9,
		SrcSig: make([]byte, 64), SPK: make([]byte, 32), Srn: 7}
	for i := 0; i < 8; i++ {
		m.SRR = append(m.SRR, wire.HopAttestation{IP: a, Sig: make([]byte, 64), PK: make([]byte, 32), Rn: 7})
	}
	pkt := &wire.Packet{Src: a, Dst: ipv6.AllNodes, TTL: 64, Msg: m}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := wire.Encode(pkt)
		if _, err := wire.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// --- T2: crypto substrate ---

func BenchmarkTable2CryptoOps(b *testing.B) {
	for _, suite := range []identity.Suite{identity.SuiteEd25519, identity.SuiteRSA1024} {
		id, err := identity.New(suite, rand.New(rand.NewSource(1)), "")
		if err != nil {
			b.Fatal(err)
		}
		msg := wire.SigRREQSource(id.Addr, 42)
		sig := id.Sign(msg)
		b.Run(suite.String()+"/sign", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				id.Sign(msg)
			}
		})
		b.Run(suite.String()+"/verify", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !id.Pub.Verify(msg, sig) {
					b.Fatal("verify failed")
				}
			}
		})
	}
}

// --- F1: CGA generation, verification, takeover search ---

func BenchmarkFigure1CGA(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	id, err := identity.New(identity.SuiteEd25519, rng, "")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("generate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cga.Address(id.Pub.Bytes(), uint64(i))
		}
	})
	b.Run("verify", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !cga.Verify(id.Addr, id.Pub.Bytes(), id.Rn) {
				b.Fatal("verify failed")
			}
		}
	})
	b.Run("takeover16bit", func(b *testing.B) {
		attacker, _ := identity.New(identity.SuiteEd25519, rng, "")
		victim := cga.TruncatedID(id.Pub.Bytes(), id.Rn, 16)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rn := uint64(0)
			for cga.TruncatedID(attacker.Pub.Bytes(), rn, 16) != victim {
				rn++
			}
		}
	})
}

// --- F2: full secure bootstrap (DAD across a 9-node grid) ---

func BenchmarkFigure2DAD(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := benchSpec(b, int64(i+1), 9, true, WithFlows())
		nw, err := sc.Build()
		if err != nil {
			b.Fatal(err)
		}
		if got := nw.Bootstrap(); got != 9 {
			b.Fatalf("configured %d/9", got)
		}
	}
}

// --- F3: discovery + delivery over a chain ---

func BenchmarkFigure3RouteDiscovery(b *testing.B) {
	for _, mode := range []struct {
		name   string
		secure bool
	}{{"secure", true}, {"baseline", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sc := benchSpec(b, int64(i+1), 9, mode.secure,
					WithPlacement(PlaceLine),
					WithFlows(Flow{From: 1, To: 8, Interval: time.Second, Size: 64}),
					WithDuration(5*time.Second),
				)
				if res := benchRun(b, sc); res.Delivered == 0 {
					b.Fatal("nothing delivered")
				}
			}
		})
	}
}

// --- S1: DNS impersonation under a fake-DNS relay ---

func BenchmarkSection4DNSImpersonation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := benchSpec(b, int64(i+1), 5, true,
			WithPlacement(PlaceLine),
			WithName(3, "server"),
			WithAdversaries(FakeDNS(1)),
			WithFlows(),
		)
		nw, err := sc.Build()
		if err != nil {
			b.Fatal(err)
		}
		nw.Bootstrap()
		poisoned := false
		nw.Node(2).Resolve("server", func(a Addr, ok bool) {
			poisoned = ok && a == nw.Node(1).Addr()
		})
		nw.RunFor(8 * time.Second)
		if poisoned {
			b.Fatal("secure client poisoned")
		}
	}
}

// --- S2: black hole scenario (insider, credits on) ---

func BenchmarkSection4BlackHole(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := benchSpec(b, int64(i+1), 9, true,
			WithAdversaries(BlackHole(4)),
			WithDuration(15*time.Second),
		)
		if res := benchRun(b, sc); res.Sent == 0 {
			b.Fatal("no traffic")
		}
	}
}

// --- S3: forged route replies from an impersonator ---

func BenchmarkSection4ForgeReplay(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := benchSpec(b, int64(i+1), 5, true,
			WithPlacement(PlaceLine),
			WithAdversaries(Impersonate(2, 4)),
			WithFlows(Flow{From: 1, To: 4, Interval: time.Second, Size: 32}),
			WithDuration(5*time.Second),
		)
		nw, err := sc.Build()
		if err != nil {
			b.Fatal(err)
		}
		nw.Run()
		if im := nw.AdversaryState(2).(*attack.Impersonator); im.StolenData != 0 {
			b.Fatal("secure protocol leaked data")
		}
	}
}

// --- S4: RERR spam with flagging ---

func BenchmarkSection4RERR(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := benchSpec(b, int64(i+1), 9, true,
			WithRERRThreshold(3),
			WithAdversaries(RERRSpammer(4)),
			WithFlows(Flow{From: 1, To: 8, Interval: 400 * time.Millisecond, Size: 32}),
			WithDuration(15*time.Second),
		)
		benchRun(b, sc)
	}
}

// --- E1: clean secure run, the overhead baseline ---

func BenchmarkE1Overhead(b *testing.B) {
	for _, mode := range []struct {
		name   string
		secure bool
	}{{"secure", true}, {"baseline", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := benchRun(b, benchSpec(b, int64(i+1), 16, mode.secure))
				if res.PDR < 0.9 {
					b.Fatalf("PDR = %v", res.PDR)
				}
			}
		})
	}
}

// --- E2: per-route verification cost by suite ---

func BenchmarkE2SuiteAblation(b *testing.B) {
	for _, suite := range []identity.Suite{identity.SuiteEd25519, identity.SuiteRSA1024} {
		id, err := identity.New(suite, rand.New(rand.NewSource(1)), "")
		if err != nil {
			b.Fatal(err)
		}
		msg := wire.SigHop(id.Addr, 1)
		sig := id.Sign(msg)
		b.Run(suite.String()+"/verify4hops", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for v := 0; v < 4; v++ {
					if !id.Pub.Verify(msg, sig) {
						b.Fatal("verify failed")
					}
				}
			}
		})
	}
}

// --- E3: credit convergence run ---

func BenchmarkE3CreditConvergence(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := benchSpec(b, int64(i+1), 9, true,
			WithAdversaries(BlackHole(4)),
			WithDuration(20*time.Second),
			WithWindows(5*time.Second),
		)
		if res := benchRun(b, sc); len(res.Windows) == 0 {
			b.Fatal("no windows recorded")
		}
	}
}

// --- E4: truncated-hash collision search rate ---

func BenchmarkE4Collision(b *testing.B) {
	pub := make([]byte, 32)
	rand.New(rand.NewSource(1)).Read(pub)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cga.TruncatedID(pub, uint64(i), 16)
	}
}

// --- scale: naive O(N^2) medium vs the spatial grid at 250-4000 nodes ---
//
// Constant-density flood rounds (every node broadcasts, every neighbour
// set queried — the DAD/RREQ traffic shape). The acceptance bar for the
// spatial index is >= 5x at 1000 nodes; run with
//
//	go test -run xxx -bench ScaleNodes -benchtime 3x sbr6
//
// cmd/sbrbench -scale -json regenerates BENCH_scale.json from the same
// workload.

func benchmarkScale(b *testing.B, n int) {
	for _, mode := range []struct {
		name string
		kind radio.IndexKind
	}{{"naive", radio.IndexNaive}, {"grid", radio.IndexGrid}} {
		for _, pool := range []struct {
			name   string
			pooled bool
		}{{"nopool", false}, {"pool", true}} {
			b.Run(mode.name+"/"+pool.name, func(b *testing.B) {
				nw := scalebench.BuildScaleNetwork(n, mode.kind, pool.pooled, 1)
				nw.Round() // warm mobility legs, the index and the pools
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					nw.Round()
				}
			})
		}
	}
}

func BenchmarkScaleNodes250(b *testing.B)   { benchmarkScale(b, 250) }
func BenchmarkScaleNodes1000(b *testing.B)  { benchmarkScale(b, 1000) }
func BenchmarkScaleNodes4000(b *testing.B)  { benchmarkScale(b, 4000) }
func BenchmarkScaleNodes10000(b *testing.B) { benchmarkScale(b, 10000) }

// The 100k tier runs on the sharded engine only: a naive O(N^2) flood round
// is ~10^10 port checks at this size, so the comparison that matters is the
// engine's serial mode against its sharded mode — byte-identical results
// (internal/shard's differential suite), wall clock the only difference.
// cmd/sbrbench -scale -json records the same pair into BENCH_scale.json as
// the mode "shard" cells under the trend gate.

func benchmarkShardScale(b *testing.B, n int) {
	for _, mode := range []struct {
		name    string
		regions int
	}{{"serial", 1}, {"sharded", scalebench.ShardRegions}} {
		b.Run(mode.name, func(b *testing.B) {
			sn := scalebench.BuildShardNetwork(n, mode.regions, 1)
			sn.Round() // warm the grids, mobility legs and region partitions
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sn.Round()
			}
		})
	}
}

func BenchmarkShardScale10000(b *testing.B)  { benchmarkShardScale(b, 10000) }
func BenchmarkScaleNodes100000(b *testing.B) { benchmarkShardScale(b, 100000) }

// --- scale: the pooled zero-alloc wire path vs the allocating one ---
//
// The flood workload with a real packet encode per broadcast (see
// scalebench.BuildWireNetwork): pooled frames + shared broadcast delivery
// against the historical allocate-per-frame, event-per-receiver path. The
// acceptance bar for the pooled path is >= 5x fewer allocs/op at 4000
// nodes; cmd/sbrbench -scale -json measures the same cells (as exact
// allocs/op) into BENCH_scale.json.

func benchmarkWireScale(b *testing.B, n int) {
	for _, mode := range []struct {
		name   string
		pooled bool
	}{{"nopool", false}, {"pool", true}} {
		b.Run(mode.name, func(b *testing.B) {
			wn := scalebench.BuildWireNetwork(n, mode.pooled, 1)
			wn.Round() // warm pools, free lists, grid, mobility legs
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				wn.Round()
			}
		})
	}
}

func BenchmarkWireScale1000(b *testing.B) { benchmarkWireScale(b, 1000) }
func BenchmarkWireScale4000(b *testing.B) { benchmarkWireScale(b, 4000) }

// --- scale: route-record verification with and without the memo cache ---
//
// The crypto-layer companion to ScaleNodes: one node verifies the
// duplicate-heavy chain stream of an N-node formation (see
// scalebench.CryptoNetwork). The acceptance bar for the verification
// cache is >= 2x at 4000+ nodes; cmd/sbrbench -scale -json measures the
// same cells into BENCH_scale.json.

func benchmarkVerifyScale(b *testing.B, n int) {
	for _, mode := range []struct {
		name   string
		cached bool
	}{{"nocache", false}, {"cache", true}} {
		b.Run(mode.name, func(b *testing.B) {
			nw := scalebench.BuildCryptoNetwork(n, mode.cached, 1, b.N+1)
			nw.Round() // warm the identity/CGA side of the cache
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nw.Round()
			}
		})
	}
}

func BenchmarkScaleVerify1000(b *testing.B)  { benchmarkVerifyScale(b, 1000) }
func BenchmarkScaleVerify4000(b *testing.B)  { benchmarkVerifyScale(b, 4000) }
func BenchmarkScaleVerify10000(b *testing.B) { benchmarkVerifyScale(b, 10000) }

// --- scale: wall-clock-to-fully-addressed by bootstrap admission policy ---
//
// A complete secure bootstrap through the scenario harness (see
// scalebench.BuildFormation): serial admission relays each claim through
// every already-configured node, per-cell admission bootstraps disjoint
// neighborhoods concurrently. The acceptance bar for the per-cell policy
// is >= 2x at 10000 nodes; the formation conformance suite in
// internal/boot holds both policies to identical security outcomes.
// cmd/sbrbench -scale -json measures the same cells into BENCH_scale.json.

func benchmarkFormation(b *testing.B, n int) {
	for _, mode := range []struct {
		name string
		kind boot.Kind
	}{{"serial", boot.Serial}, {"percell", boot.PerCell}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer() // identity generation and placement are not the workload
				sc := scalebench.BuildFormation(n, mode.kind, 1)
				b.StartTimer()
				if configured := sc.Bootstrap(); configured != n {
					b.Fatalf("formation incomplete: %d/%d addressed", configured, n)
				}
			}
		})
	}
}

func BenchmarkFormation1000(b *testing.B)  { benchmarkFormation(b, 1000) }
func BenchmarkFormation4000(b *testing.B)  { benchmarkFormation(b, 4000) }
func BenchmarkFormation10000(b *testing.B) { benchmarkFormation(b, 10000) }

// --- scale: one period of the post-formation audit sweep ---
//
// Every node floods one signed TTL-bounded re-advertisement per sweep
// period (see scalebench.BuildAuditNetwork). At constant density each node
// only processes the advertisements originating within its TTL-hop
// neighbourhood, so the reported ns/node-sweep must stay flat as N grows —
// the property that makes a standing audit affordable at any scale. The
// run is conflict-free, so the steady-state crypto bill is one signature
// per node per sweep and zero verifications; the benchmark asserts the
// latter outright.

func benchmarkAuditSweep(b *testing.B, n int) {
	an := scalebench.BuildAuditNetwork(n, 1)
	an.Round() // warm: neighbor tables and flood seen-sets
	if ops := an.VerifyOps(); ops != 0 {
		b.Fatalf("conflict-free sweep performed %d signature verifications, want 0", ops)
	}
	baseAdvs := an.AdvsProcessed()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an.Round()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/node-sweep")
	// The scaling law itself: advertisements processed per node per sweep
	// is bounded by the TTL-hop neighbourhood, not by N.
	b.ReportMetric(float64(an.AdvsProcessed()-baseAdvs)/float64(b.N)/float64(n), "advs/node-sweep")
	if ops := an.VerifyOps(); ops != 0 {
		b.Fatalf("steady-state sweep performed %d signature verifications, want 0", ops)
	}
}

func BenchmarkAuditSweep250(b *testing.B)  { benchmarkAuditSweep(b, 250) }
func BenchmarkAuditSweep1000(b *testing.B) { benchmarkAuditSweep(b, 1000) }
func BenchmarkAuditSweep4000(b *testing.B) { benchmarkAuditSweep(b, 4000) }

// --- the batch runner itself: parallel fan-out over seed replicates ---

func BenchmarkRunnerBatch(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "serial", 4: "workers4"}[workers], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sc := benchSpec(b, 1, 9, true)
				r := &Runner{Workers: workers}
				if _, err := r.RunBatch(context.Background(), sc, SeedRange(int64(i*4+1), 4)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
