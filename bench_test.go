package sbr6

// One benchmark per reproduced artifact (DESIGN.md experiment index).
// Table/figure regeneration itself is cmd/sbrbench; these benches measure
// the hot path behind each artifact so regressions show up in -bench runs.

import (
	"math/rand"
	"testing"
	"time"

	"sbr6/internal/attack"
	"sbr6/internal/cga"
	"sbr6/internal/core"
	"sbr6/internal/geom"
	"sbr6/internal/identity"
	"sbr6/internal/ipv6"
	"sbr6/internal/scenario"
	"sbr6/internal/wire"
)

// --- shared scenario builders ---

func benchProtocol(secure bool) core.Config {
	var cfg core.Config
	if secure {
		cfg = core.DefaultConfig()
	} else {
		cfg = core.BaselineConfig()
	}
	cfg.DAD.Timeout = 300 * time.Millisecond
	cfg.DiscoveryTimeout = 500 * time.Millisecond
	cfg.AckTimeout = 400 * time.Millisecond
	cfg.ResolveTimeout = 2 * time.Second
	return cfg
}

func benchGrid(seed int64, n int, secure bool) scenario.Config {
	side := 1
	for side*side < n {
		side++
	}
	cfg := scenario.DefaultConfig()
	cfg.Seed = seed
	cfg.N = n
	cfg.Placement = scenario.PlaceGrid
	cfg.Area = geom.Rect{W: 200 * float64(side), H: 200 * float64(side)}
	cfg.Protocol = benchProtocol(secure)
	cfg.DNS.CommitDelay = 300 * time.Millisecond
	cfg.Warmup = time.Second
	cfg.Duration = 10 * time.Second
	cfg.Cooldown = 2 * time.Second
	cfg.Flows = []scenario.Flow{{From: 1, To: n - 1, Interval: 500 * time.Millisecond, Size: 64}}
	return cfg
}

func runScenario(b *testing.B, cfg scenario.Config) *scenario.Result {
	b.Helper()
	sc, err := scenario.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return sc.Run()
}

// --- T1: message codec ---

func BenchmarkTable1MessageCodec(b *testing.B) {
	a := ipv6.SiteLocal(0, 1)
	m := &wire.RREQ{SIP: a, DIP: ipv6.SiteLocal(0, 2), Seq: 9,
		SrcSig: make([]byte, 64), SPK: make([]byte, 32), Srn: 7}
	for i := 0; i < 8; i++ {
		m.SRR = append(m.SRR, wire.HopAttestation{IP: a, Sig: make([]byte, 64), PK: make([]byte, 32), Rn: 7})
	}
	pkt := &wire.Packet{Src: a, Dst: ipv6.AllNodes, TTL: 64, Msg: m}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := wire.Encode(pkt)
		if _, err := wire.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// --- T2: crypto substrate ---

func BenchmarkTable2CryptoOps(b *testing.B) {
	for _, suite := range []identity.Suite{identity.SuiteEd25519, identity.SuiteRSA1024} {
		id, err := identity.New(suite, rand.New(rand.NewSource(1)), "")
		if err != nil {
			b.Fatal(err)
		}
		msg := wire.SigRREQSource(id.Addr, 42)
		sig := id.Sign(msg)
		b.Run(suite.String()+"/sign", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				id.Sign(msg)
			}
		})
		b.Run(suite.String()+"/verify", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !id.Pub.Verify(msg, sig) {
					b.Fatal("verify failed")
				}
			}
		})
	}
}

// --- F1: CGA generation, verification, takeover search ---

func BenchmarkFigure1CGA(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	id, err := identity.New(identity.SuiteEd25519, rng, "")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("generate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cga.Address(id.Pub.Bytes(), uint64(i))
		}
	})
	b.Run("verify", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !cga.Verify(id.Addr, id.Pub.Bytes(), id.Rn) {
				b.Fatal("verify failed")
			}
		}
	})
	b.Run("takeover16bit", func(b *testing.B) {
		attacker, _ := identity.New(identity.SuiteEd25519, rng, "")
		victim := cga.TruncatedID(id.Pub.Bytes(), id.Rn, 16)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rn := uint64(0)
			for cga.TruncatedID(attacker.Pub.Bytes(), rn, 16) != victim {
				rn++
			}
		}
	})
}

// --- F2: full secure bootstrap (DAD across a 9-node grid) ---

func BenchmarkFigure2DAD(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchGrid(int64(i+1), 9, true)
		cfg.Flows = nil
		sc, err := scenario.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if got := sc.Bootstrap(); got != 9 {
			b.Fatalf("configured %d/9", got)
		}
	}
}

// --- F3: discovery + delivery over a chain ---

func BenchmarkFigure3RouteDiscovery(b *testing.B) {
	for _, mode := range []struct {
		name   string
		secure bool
	}{{"secure", true}, {"baseline", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := benchGrid(int64(i+1), 9, mode.secure)
				cfg.Placement = scenario.PlaceLine
				cfg.Flows = []scenario.Flow{{From: 1, To: 8, Interval: time.Second, Size: 64}}
				cfg.Duration = 5 * time.Second
				res := runScenario(b, cfg)
				if res.Delivered == 0 {
					b.Fatal("nothing delivered")
				}
			}
		})
	}
}

// --- S1: DNS impersonation under a fake-DNS relay ---

func BenchmarkSection4DNSImpersonation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchGrid(int64(i+1), 5, true)
		cfg.Placement = scenario.PlaceLine
		cfg.Names = map[int]string{3: "server"}
		cfg.Behaviors = map[int]core.Behavior{1: &attack.FakeDNS{}}
		cfg.Flows = nil
		sc, err := scenario.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sc.Bootstrap()
		poisoned := false
		sc.Nodes[2].Resolve("server", func(a ipv6.Addr, ok bool) {
			poisoned = ok && a == sc.Nodes[1].Addr()
		})
		sc.S.RunFor(8 * time.Second)
		if poisoned {
			b.Fatal("secure client poisoned")
		}
	}
}

// --- S2: black hole scenario (insider, credits on) ---

func BenchmarkSection4BlackHole(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchGrid(int64(i+1), 9, true)
		cfg.Behaviors = map[int]core.Behavior{4: &attack.BlackHole{}}
		cfg.Duration = 15 * time.Second
		res := runScenario(b, cfg)
		if res.Sent == 0 {
			b.Fatal("no traffic")
		}
	}
}

// --- S3: forged route replies from an impersonator ---

func BenchmarkSection4ForgeReplay(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchGrid(int64(i+1), 5, true)
		cfg.Placement = scenario.PlaceLine
		im := &attack.Impersonator{}
		cfg.Behaviors = map[int]core.Behavior{2: im}
		cfg.Flows = []scenario.Flow{{From: 1, To: 4, Interval: time.Second, Size: 32}}
		cfg.Duration = 5 * time.Second
		sc, err := scenario.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		im.Victim = sc.Nodes[4].Addr()
		sc.Run()
		if im.StolenData != 0 {
			b.Fatal("secure protocol leaked data")
		}
	}
}

// --- S4: RERR spam with flagging ---

func BenchmarkSection4RERR(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchGrid(int64(i+1), 9, true)
		cfg.Protocol.RERRThreshold = 3
		cfg.Behaviors = map[int]core.Behavior{4: &attack.RERRSpammer{}}
		cfg.Flows = []scenario.Flow{{From: 1, To: 8, Interval: 400 * time.Millisecond, Size: 32}}
		cfg.Duration = 15 * time.Second
		runScenario(b, cfg)
	}
}

// --- E1: clean secure run, the overhead baseline ---

func BenchmarkE1Overhead(b *testing.B) {
	for _, mode := range []struct {
		name   string
		secure bool
	}{{"secure", true}, {"baseline", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := runScenario(b, benchGrid(int64(i+1), 16, mode.secure))
				if res.PDR < 0.9 {
					b.Fatalf("PDR = %v", res.PDR)
				}
			}
		})
	}
}

// --- E2: per-route verification cost by suite ---

func BenchmarkE2SuiteAblation(b *testing.B) {
	for _, suite := range []identity.Suite{identity.SuiteEd25519, identity.SuiteRSA1024} {
		id, err := identity.New(suite, rand.New(rand.NewSource(1)), "")
		if err != nil {
			b.Fatal(err)
		}
		msg := wire.SigHop(id.Addr, 1)
		sig := id.Sign(msg)
		b.Run(suite.String()+"/verify4hops", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for v := 0; v < 4; v++ {
					if !id.Pub.Verify(msg, sig) {
						b.Fatal("verify failed")
					}
				}
			}
		})
	}
}

// --- E3: credit convergence run ---

func BenchmarkE3CreditConvergence(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchGrid(int64(i+1), 9, true)
		cfg.Behaviors = map[int]core.Behavior{4: &attack.BlackHole{}}
		cfg.Duration = 20 * time.Second
		cfg.WindowSize = 5 * time.Second
		res := runScenario(b, cfg)
		if len(res.Windows) == 0 {
			b.Fatal("no windows recorded")
		}
	}
}

// --- E4: truncated-hash collision search rate ---

func BenchmarkE4Collision(b *testing.B) {
	pub := make([]byte, 32)
	rand.New(rand.NewSource(1)).Read(pub)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cga.TruncatedID(pub, uint64(i), 16)
	}
}
