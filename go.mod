module sbr6

go 1.24
