package sbr6_test

import (
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"sbr6"
)

func TestHangHunt(t *testing.T) {
	if os.Getenv("HANG_HUNT") == "" {
		t.Skip("set HANG_HUNT=1")
	}
	sc, _ := sbr6.NewScenario(
		sbr6.WithNodes(8), sbr6.WithArea(400, 400), sbr6.WithFastTimers(),
		sbr6.WithWarmup(500*time.Millisecond), sbr6.WithWindows(500*time.Millisecond),
		sbr6.WithCooldown(500*time.Millisecond),
		sbr6.WithFlows(sbr6.Flow{From: 1, To: 2, Interval: 100 * time.Millisecond, Size: 32}),
	)
	sess, _ := sbr6.Serve(sc)
	sess.Inject("seed.example")
	sess.Advance(2)
	genuine, _ := sess.Snapshot()

	rng := rand.New(rand.NewSource(99))
	deadline := time.Now().Add(90 * time.Second)
	var iter int
	cur := make(chan []byte, 1)
	go func() {
		last := -1
		for {
			time.Sleep(time.Second)
			if iter == last { // stuck for 1s+
				select {
				case data := <-cur:
					os.WriteFile("/tmp/hang_input.json", data, 0644)
				default:
				}
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				os.WriteFile("/tmp/hang_stack.txt", buf[:n], 0644)
				os.Exit(3)
			}
			last = iter
		}
	}()
	for time.Now().Before(deadline) {
		iter++
		data := append([]byte(nil), genuine...)
		for k := 0; k < 1+rng.Intn(8); k++ {
			switch rng.Intn(3) {
			case 0:
				data[rng.Intn(len(data))] = byte(rng.Intn(256))
			case 1: // digit swap keeps JSON valid more often
				i := rng.Intn(len(data))
				if data[i] >= '0' && data[i] <= '9' {
					data[i] = byte('0' + rng.Intn(10))
				}
			case 2: // duplicate a digit (length growth)
				i := rng.Intn(len(data))
				if data[i] >= '0' && data[i] <= '9' {
					data = append(data[:i+1], data[i:]...)
				}
			}
		}
		select {
		case cur <- data:
		default:
			select {
			case <-cur:
			default:
			}
			cur <- data
		}
		if !fuzzBudget(data) {
			continue
		}
		sbr6.Resume(data)
	}
	t.Logf("%d iterations, no hang", iter)
}
