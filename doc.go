// Package sbr6 is a from-scratch Go reproduction of "Secure Bootstrapping
// and Routing in an IPv6-Based Ad Hoc Network" (Tseng, Jiang, Lee; ICPP
// Workshops 2003): CGA-based secure address autoconfiguration with extended
// duplicate address detection and 6DNAR name registration, an in-MANET DNS
// server as the sole trust anchor, a DSR-derived secure routing protocol
// with per-hop identity attestations, and credit-based route maintenance —
// all running on a deterministic discrete-event wireless simulator with
// programmable adversaries.
//
// Layout:
//
//	internal/core        the full secure node stack (the paper's contribution)
//	internal/{sim,geom,mobility,radio}   simulation substrate
//	internal/{ipv6,cga,identity,wire}    addressing, crypto and wire format
//	internal/{ndp,dnssrv,dsr,credit}     protocol building blocks
//	internal/attack      Section 4 adversaries
//	internal/scenario    declarative experiment harness
//	internal/experiments every table/figure/attack regenerated (T1..E4)
//	cmd/sbrbench         experiment runner
//	cmd/manetsim         general simulator CLI
//	examples/            quickstart, rescue, battlefield, nameserver
//
// The benchmark file in this directory holds one testing.B benchmark per
// reproduced artifact, mirroring the experiment ids in DESIGN.md.
package sbr6
