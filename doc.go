// Package sbr6 is a from-scratch Go reproduction of "Secure Bootstrapping
// and Routing in an IPv6-Based Ad Hoc Network" (Tseng, Jiang, Lee; ICPP
// Workshops 2003): CGA-based secure address autoconfiguration with extended
// duplicate address detection and 6DNAR name registration, an in-MANET DNS
// server as the sole trust anchor, a DSR-derived secure routing protocol
// with per-hop identity attestations, and credit-based route maintenance —
// all running on a deterministic discrete-event wireless simulator with
// programmable adversaries.
//
// # Declaring scenarios
//
// Experiments are declared with functional options and validated eagerly:
// a bad flow endpoint or an adversary on the trust anchor fails at build
// time with an error wrapping ErrOption, never mid-run. Node 0 is always
// the DNS server, the network's single security anchor.
//
//	sc, err := sbr6.NewScenario(
//		sbr6.WithNodes(25),
//		sbr6.WithPlacement(sbr6.PlaceGrid),
//		sbr6.WithFlows(sbr6.Flow{From: 1, To: 24, Interval: 500 * time.Millisecond, Size: 64}),
//		sbr6.WithAdversaries(sbr6.BlackHole(12)),
//		sbr6.WithDuration(30*time.Second),
//	)
//
// # Running
//
// A Runner executes scenarios. Run performs a single simulation; RunBatch
// fans seed-replicates out across a worker pool and aggregates
// mean/stddev/95%-CI statistics per metric. Each discrete-event simulation
// stays single-threaded and deterministic — parallelism is across runs —
// so a batch's per-seed Results are byte-identical to serial execution.
// An Observer streams run starts, per-window delivery counts and final
// results while the batch executes; both context cancellation and partial
// aggregation are honored.
//
//	batch, err := (&sbr6.Runner{}).RunBatch(ctx, sc, sbr6.SeedRange(1, 16))
//	fmt.Println(batch.PDR) // "0.912 ± 0.014"
//
// For experiments that drive the simulation interactively — bootstrap,
// resolve a name, poke individual nodes, advance virtual time — Build
// instantiates a Network with per-node handles. Network is now a thin
// compatibility shim over the live Session API below.
//
// # Live sessions and daemon mode
//
// Serve hosts a scenario as a long-lived Session: the network
// bootstraps, then advances in explicit window-sized steps under caller
// control instead of running to completion. Between steps the caller
// can Inject new nodes (full CGA autoconfiguration, DAD and name
// registration run live inside the simulation), Eject existing ones,
// Query cumulative results, or Stream per-window reports. Every
// mutation lands at a window barrier, which keeps the run as
// deterministic as a batch run: the same scenario, seed and op sequence
// yield byte-identical results.
//
//	sess, err := sbr6.Serve(sc)
//	idx, err := sess.Inject("late-joiner.example")
//	err = sess.Advance(4)
//	res, err := sess.Query()
//
// Snapshot serializes a session at a barrier into one self-verifying
// JSON value, and Resume rebuilds it by deterministic replay: the
// stored configuration is rebuilt, the journaled inject/eject ops are
// re-applied at their original barriers, and the replayed state digest
// must match the stored one. Running N windows is observably identical
// to snapshotting at window k, resuming, and running the remaining
// N−k — the equivalence suite proves byte-identical merged Results
// across static, mobile and adversarial scenarios, seeds and shard
// counts.
//
// The same Session API is exposed out-of-process by internal/daemon as
// a JSON-RPC 2.0 control plane over newline-delimited frames on a TCP
// or unix socket (manetsim -serve / -connect). All session access is
// serialized through one owner goroutine, so concurrent clients cannot
// break window-barrier determinism; subscribed clients receive a
// notification per completed window.
//
// # Medium indexing and scale
//
// The radio medium resolves receivers either by scanning every node or
// through a uniform spatial hash grid (automatic at >= 64 nodes). The two
// index kinds are observationally identical — same receiver sets, same
// delivery ordering, same RNG consumption, so per-seed Results match
// byte-for-byte — and the grid makes 1k-10k-node scenarios affordable.
// WithMediumIndex forces a kind (e.g. to benchmark one against the
// other); WithBootStagger shortens the serial DAD schedule that otherwise
// dominates large bootstraps.
//
// # The pooled wire path
//
// Frame transmission is allocation-free by default: encoded frames come
// from per-medium size-class buffer pools, every broadcast shares one
// encoded frame across all its receivers in a single batched delivery
// event, and the transmit/delivery bookkeeping itself is recycled. The
// pooled path is observationally identical to the allocating one — the
// differential suite holds per-seed Results byte-for-byte equal with
// pooling on, off, and on with poisoned reuse — so it is purely a
// performance property. WithFramePool(false) restores the allocating
// path (honest baselines, allocation-profile comparisons).
//
// The pools are single-threaded by construction: each radio.Medium owns
// its own pool and free lists, never shared, which is exactly the
// precondition the batch runner's sharding relies on — concurrent seed
// replicates each build their own Simulator and Medium and therefore
// their own pools, with no cross-goroutine state.
//
// # Bootstrap admission
//
// Network formation is scheduled by an admission policy (internal/boot).
// The default, BootSerial, starts one DAD claim per stagger — the paper's
// conservative reading, under which every claimant floods into a fully
// configured network, at the price of formation time linear in N.
// BootPerCell instead buckets nodes into grid cells a fraction of the
// radio range on a side and staggers only claimants that share a bucket:
// spatially disjoint neighborhoods bootstrap concurrently, and a 10k-node
// formation closes in a handful of staggers of virtual time (and less
// than half the serial wall clock — see BenchmarkFormation10000).
//
// The equivalence guarantee is deliberately outcome-level, because
// reordering admissions legitimately reorders the simulation: under every
// policy all nodes end fully addressed, addresses are unique, and any
// claim conflicting with an already-admitted owner in the same bucket is
// detected with identical counters — the bucket diagonal is under half a
// range, so the earlier owner hears the later claim directly and its
// objection needs no relays. Each policy is itself byte-for-byte
// deterministic per seed. The formation conformance suite in
// internal/boot (cloned-identity duplicate claims, pre-provisioned name
// conflicts, clean formations, both policies, multiple seeds, -race in
// CI) enforces all of this; quick.Check properties pin the schedule
// itself (per-cell offsets are a permutation-stable function of seed,
// cell and occupancy; same-cell claims never land inside one objection
// window). What per-cell admission gives up is detection that needs
// configured relays before they exist: simultaneous cross-cell
// duplicates (covered for honest nodes by CGA's 2^-64 collision bound,
// and impossible to schedule away for an attacker) and formation-time
// name checks from claimants too far from the DNS anchor for an early
// flood to reach — those conflicts still surface at registration time.
// WithBootPolicy selects the policy; WithBootStagger tunes the spacing
// either policy keeps; WithBootCellFraction widens or narrows the
// admission buckets (capped at 1/sqrt(2) of the range, where the bucket
// diagonal reaches one radio range and the direct-reach guarantee would
// break).
//
// # Audit sweep
//
// One-shot DAD only protects claims whose objection window overlaps a
// configured owner inside flood reach. Two duplicate-address shapes
// escape it structurally: simultaneous claims from different admission
// cells, and partition merges — two clusters forming independently and
// meeting later, when no objection window is left to protect anyone.
// WithAuditSweep(period) closes both: every configured node periodically
// re-floods a signed re-advertisement of its CGA binding (per-node phases
// from a seed-stable hash, so sweeps neither synchronize nor consume
// simulator randomness), a node holding a conflicting binding for that
// address objects with its own signed proof, and both claimants resolve
// the conflict deterministically — the binding with the lower full CGA
// digest rekeys and re-runs DAD, and bit-identical bindings (a cloned
// identity) make both sides rekey, since nothing protocol-visible can
// tell original from copy. Scenario.PartitionSpec stages a disjoint
// cluster that merges mid-run, the shape the merge conformance tests
// drive. Verification rides the memo cache and a conflict-free sweep
// verifies nothing at all, so the standing cost is one signature per
// node per period plus TTL-bounded relaying (flat per node with N at
// constant density — BenchmarkAuditSweep asserts both). The sweep is off
// by default, and disabling it is a byte-for-byte no-op, enforced by the
// differential half of the audit conformance suite in internal/audit.
//
// # Verification cache
//
// Every node memoizes its cryptographic checks — CGA bindings, signature
// verifications and whole route-record chains — in a bounded LRU keyed by
// SHA-256 digests of the full verified content (internal/verifycache).
// Because both checks are pure functions of that content, a hit is
// exactly the verdict recomputation would produce: cached and uncached
// runs yield byte-for-byte identical per-seed Results (enforced by the
// differential suite in internal/verifycache, adversaries included), and
// nothing keyed by less than the full content or dependent on mutable
// local state is ever memoized. What changes is only the number of
// primitive crypto operations, which is what makes 10k-node formations
// affordable: duplicate flood copies, re-served CREP attestations and
// repeated RERRs stop costing signature verifications. The crypto.verify
// metric deliberately counts logical requests (identical either way);
// primitive-operation savings are reported by the cache's own Stats.
// The cache is on by default; WithVerifyCache bounds or disables it.
//
// # Shared binding table
//
// The per-node memo dedups repeated checks across time at one node; the
// shared CGA-binding table (internal/bindtable) dedups the first check
// across nodes. One read-mostly table per simulation — or one per
// region under WithShards, populated only by that region's event loop
// and exchanged at no barrier — maps the content digest of one
// (address, public key, modifier) binding to its cga.Verify verdict, so
// a flood binding verified by any node is served, positive or negative,
// to every later node in the same region. Verdicts are pure functions
// of the digested bytes, so serving one changes no behavior: table on,
// off and paranoid (every served verdict recomputed, disagreement
// panics) runs are byte-for-byte identical, enforced by the
// differential suite in internal/bindtable across the scenario matrix,
// seeds and shard counts, with cross-node poisoning probes in
// internal/bindtable and internal/core. The crypto.verify metric still
// counts logical requests per node; primitives absorbed across nodes
// are the table's own Stats. On by default beneath every node's memo;
// WithBindingTable bounds or disables it.
//
// # The region-sharded core
//
// WithShards(n) runs the simulation on the region-sharded engine
// (internal/shard): the area is cut into n x-sorted equal-count strips,
// and regions advance in parallel rounds bounded by conservative
// lookahead from the radio propagation delay, merging cross-region
// messages at deterministic barriers. The region-ownership rules the
// engine is built on:
//
//   - Every node belongs to exactly one region, which owns its event
//     heap, radio medium, spatial grid, RNG consumption and counters.
//   - No pointer crosses a region boundary. Regions communicate only
//     through immutable messages (broadcast frames, unicast
//     deliveries), exchanged at barriers in region-index order and
//     scheduled under the global (time, owner, seq) event ordering.
//   - Radio randomness is content-derived, so a draw's value does not
//     depend on which region performs it or in what order.
//   - A region's horizon is sound against feedback: its own first
//     boundary-crossing send at time u tightens the remaining horizon
//     to u+2L, so a peer's reaction can never land in this region's
//     virtual past.
//
// Under those rules the merged Result is byte-for-byte identical at
// every shard count >= 1 — proven by the differential suite in
// internal/shard across static, mobile and adversarial scenarios, five
// seeds, shard counts {1,2,4,8}, under -race in CI. Results at
// WithShards(1) differ from the historical unsharded default (the
// engine forces content-derived radio draws), so sharded experiments
// anchor on WithShards(1), not on omitting the option.
//
// # Static analysis
//
// The determinism disciplines those differential suites check
// dynamically are also machine-checked statically: cmd/sbr6lint runs
// five analyzers over the sim-path packages on every commit (via go vet
// -vettool in CI) — maprange (no map-iteration order on sim paths),
// walltime (no wall clock, no global math/rand), simrng (RNG streams
// minted only by annotated seed-derived owners; crypto/rand confined to
// identity keygen), globalstate (no package-level mutable vars) and
// directverify (no direct cga.Verify calls bypassing the memoized
// verification path).
// Exceptions require a reasoned //sbr6:allow or //sbr6:commutative
// annotation, inventoried by `sbr6lint -list-allows`. globalstate in
// particular is what makes the region-sharded core's ownership rules
// hold tree-wide: state that isn't package-global cannot be shared
// between regions by accident. See the README's "Static analysis"
// section.
//
// Layout:
//
//	.                    public facade: options, Runner, Network, Observer
//	internal/core        the full secure node stack (the paper's contribution)
//	internal/audit       post-formation address audit sweep
//	internal/boot        bootstrap admission policies
//	internal/shard       region-sharded parallel simulation engine
//	internal/{sim,geom,mobility,radio}   simulation substrate
//	internal/{ipv6,cga,identity,wire}    addressing, crypto and wire format
//	internal/{ndp,dnssrv,dsr,credit}     protocol building blocks
//	internal/attack      Section 4 adversaries
//	internal/daemon      JSON-RPC 2.0 control plane for served sessions
//	internal/scenario    the internal experiment harness the facade compiles to
//	internal/experiments every table/figure/attack regenerated (T1..E6)
//	internal/lint        the sbr6lint analyzer framework, analyzers and fixtures
//	cmd/sbr6lint         determinism/state-ownership static analysis gate
//	cmd/sbrbench         experiment runner
//	cmd/manetsim         general simulator CLI (single runs and parallel batches)
//	examples/            quickstart, rescue, battlefield, nameserver
//
// The benchmark file in this directory holds one testing.B benchmark per
// reproduced artifact, mirroring the experiment ids in DESIGN.md.
package sbr6
