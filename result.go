package sbr6

import (
	"fmt"
	"time"

	"sbr6/internal/ipv6"
	"sbr6/internal/scenario"
	"sbr6/internal/trace"
)

// Addr is a 128-bit IPv6 address; the secure protocol binds it to the
// owner's public key through the CGA construction.
type Addr = ipv6.Addr

// Result aggregates one run's measurements.
type Result struct {
	Seed int64

	Configured int // nodes that completed DAD
	DADFailed  int

	Sent      int // measured-window data packets offered
	Delivered int
	PDR       float64 // delivery ratio

	LatencyMean float64 // seconds
	LatencyP95  float64

	ControlBytes float64 // summed over nodes
	DataBytes    float64
	CryptoSign   float64
	CryptoVerify float64

	TxFrames     uint64 // link-layer frames transmitted
	UnicastFails uint64 // unicasts with no link-layer ACK

	PerFlow map[int]FlowResult
	Windows []WindowStat // per-window counts when WithWindows was set

	metrics *trace.Metrics
}

// FlowResult is one flow's delivery outcome.
type FlowResult struct {
	Sent, Delivered int
}

// WindowStat is one time bucket of the measurement phase. Deliveries are
// attributed to the window the packet was sent in, so window PDRs are well
// defined.
type WindowStat struct {
	Start     time.Duration // offset from measurement start
	Sent      int
	Delivered int
}

// PDR returns the window's delivery ratio (0 when nothing was sent).
func (w WindowStat) PDR() float64 {
	if w.Sent == 0 {
		return 0
	}
	return float64(w.Delivered) / float64(w.Sent)
}

// Metric returns a merged per-node counter by name (e.g. "rerr.accepted",
// "discovery.attempts", "tx.bytes.control"); unknown names read 0.
func (r *Result) Metric(name string) float64 { return r.metrics.Get(name) }

// MetricMean returns the mean of a merged sample series (e.g.
// "e2e.latency_s", "dad.latency_s").
func (r *Result) MetricMean(name string) float64 { return r.metrics.Mean(name) }

// MetricQuantile returns the q-quantile of a merged sample series.
func (r *Result) MetricQuantile(name string, q float64) float64 {
	return r.metrics.Quantile(name, q)
}

// MetricNames lists the merged counter names in sorted order.
func (r *Result) MetricNames() []string { return r.metrics.CounterNames() }

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("seed=%d pdr=%.3f (%d/%d) latency=%.3fs ctrl=%.0fB data=%.0fB sign=%.0f verify=%.0f dad=%d/%d",
		r.Seed, r.PDR, r.Delivered, r.Sent, r.LatencyMean, r.ControlBytes, r.DataBytes,
		r.CryptoSign, r.CryptoVerify, r.Configured, r.Configured+r.DADFailed)
}

// publicResult converts the internal aggregate.
func publicResult(seed int64, res *scenario.Result) *Result {
	out := &Result{
		Seed:         seed,
		Configured:   res.Configured,
		DADFailed:    res.DADFailed,
		Sent:         res.Sent,
		Delivered:    res.Delivered,
		PDR:          res.PDR,
		LatencyMean:  res.LatencyMean,
		LatencyP95:   res.LatencyP95,
		ControlBytes: res.ControlBytes,
		DataBytes:    res.DataBytes,
		CryptoSign:   res.CryptoSign,
		CryptoVerify: res.CryptoVerify,
		TxFrames:     res.Link.TxFrames,
		UnicastFails: res.Link.UnicastFails,
		PerFlow:      make(map[int]FlowResult, len(res.PerFlow)),
		metrics:      res.Metrics,
	}
	for fi, fr := range res.PerFlow {
		out.PerFlow[fi] = FlowResult{Sent: fr.Sent, Delivered: fr.Delivered}
	}
	for _, w := range res.Windows {
		out.Windows = append(out.Windows, publicWindow(w))
	}
	return out
}

// scenarioWindow keeps the internal type out of runner.go's signatures.
type scenarioWindow = scenario.WindowStat

func publicWindow(w scenario.WindowStat) WindowStat {
	return WindowStat{Start: w.Start, Sent: w.Sent, Delivered: w.Delivered}
}
