package sbr6

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"

	"sbr6/internal/scenario"
)

// ErrSnapshot is wrapped by every error Resume returns for a snapshot
// that cannot be decoded, validated or faithfully replayed.
var ErrSnapshot = errors.New("sbr6: invalid snapshot")

// snapshotVersion is bumped whenever the codec's meaning changes; Resume
// rejects versions it does not know instead of replaying them wrongly.
const snapshotVersion = 1

// snapshotFile is the serialized form of a live session. A snapshot does
// not serialize simulator state — it stores the effective configuration,
// the adversary descriptors, the window-stamped op journal and the barrier
// index, because a session is a pure function of those: Resume rebuilds
// the scenario and re-runs it, applying each journaled op at its original
// barrier, then verifies the replayed state digest against the stored one.
type snapshotFile struct {
	Version     int             `json:"version"`
	Config      scenario.Config `json:"config"`
	Adversaries []advDescriptor `json:"adversaries,omitempty"`
	Journal     []sessionOp     `json:"journal,omitempty"`
	Windows     int             `json:"windows"`
	Digest      string          `json:"digest"`
}

// Snapshot serializes the session at the current window barrier. The
// bytes are a single compact JSON value (safe to embed in one
// newline-delimited control-plane frame) and are self-verifying: they
// carry a digest of the session's observable state that Resume recomputes
// after replay.
func (s *Session) Snapshot() ([]byte, error) {
	if err := s.ok(); err != nil {
		return nil, err
	}
	cfg := s.sc.Cfg
	cfg.Behaviors = nil // closures don't serialize; rebuilt from descriptors
	snap := snapshotFile{
		Version: snapshotVersion,
		Config:  cfg,
		Journal: s.journal,
		Windows: s.lv.Windows(),
	}
	for _, a := range s.spec.advs {
		snap.Adversaries = append(snap.Adversaries, a.descriptor())
	}
	d := s.lv.Digest()
	snap.Digest = hex.EncodeToString(d[:])
	return json.Marshal(snap)
}

// Resume rebuilds a session from Snapshot bytes: the scenario is built
// fresh from the stored configuration, bootstrapped, and replayed through
// the stored number of windows with every journaled op re-applied at its
// original barrier. Replayed windows are not re-emitted to Stream. The
// replayed state digest must match the stored one — a mismatch means the
// snapshot does not describe this build's deterministic run and is
// rejected. Taps and observers are not restored.
func Resume(data []byte) (*Session, error) {
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("%w: unsupported version %d (this build reads %d)", ErrSnapshot, snap.Version, snapshotVersion)
	}
	if snap.Windows < 0 {
		return nil, fmt.Errorf("%w: negative window count %d", ErrSnapshot, snap.Windows)
	}
	cfg := snap.Config
	cfg.Behaviors = nil
	if err := snapshotSane(cfg); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	spec := &Scenario{cfg: cfg, areaSet: true}
	for _, d := range snap.Adversaries {
		a, err := adversaryFromDescriptor(d)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
		}
		spec.advs = append(spec.advs, a)
	}
	if err := spec.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}

	sess, err := newSession(spec, cfg.Seed, true)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	sess.lv.Suppress = true // replayed windows were already streamed
	sess.configured = sess.lv.Start()
	opIdx, done := 0, 0
	for {
		for opIdx < len(snap.Journal) && snap.Journal[opIdx].Window == done {
			op := snap.Journal[opIdx]
			switch op.Kind {
			case opInject:
				idx, err := sess.lv.Join(op.Name, nil)
				if err != nil {
					return nil, fmt.Errorf("%w: replaying %s at window %d: %v", ErrSnapshot, op.Kind, op.Window, err)
				}
				if idx != op.Index {
					return nil, fmt.Errorf("%w: replayed inject yielded index %d, journal says %d", ErrSnapshot, idx, op.Index)
				}
			case opEject:
				if err := sess.lv.Leave(op.Index); err != nil {
					return nil, fmt.Errorf("%w: replaying %s of node %d at window %d: %v", ErrSnapshot, op.Kind, op.Index, op.Window, err)
				}
			default:
				return nil, fmt.Errorf("%w: unknown journal op %q", ErrSnapshot, op.Kind)
			}
			opIdx++
		}
		if done >= snap.Windows {
			break
		}
		sess.lv.Step()
		done++
	}
	if opIdx != len(snap.Journal) {
		return nil, fmt.Errorf("%w: journal op stamped window %d never became applicable before the barrier at %d",
			ErrSnapshot, snap.Journal[opIdx].Window, snap.Windows)
	}
	d := sess.lv.Digest()
	if got := hex.EncodeToString(d[:]); got != snap.Digest {
		return nil, fmt.Errorf("%w: state digest mismatch after replay (snapshot %.16s…, replay %.16s…)", ErrSnapshot, snap.Digest, got)
	}
	sess.lv.Suppress = false
	sess.journal = append([]sessionOp(nil), snap.Journal...)
	return sess, nil
}

// snapshotSane rejects numeric garbage a hand-edited or corrupted
// snapshot could smuggle past scenario.Validate — values that would make
// the rebuild panic, hang or exhaust memory rather than fail cleanly.
// The public options enforce the same bounds at construction time, so a
// snapshot written by Snapshot always passes.
func snapshotSane(cfg scenario.Config) error {
	bad := func(f float64) bool { return math.IsNaN(f) || math.IsInf(f, 0) }
	// Virtual-time ceiling: a duration near the int64 horizon overflows
	// when added to the clock, scheduling events "in the past" that
	// re-execute forever. A year of virtual time is beyond any plausible
	// run; anything larger is corruption.
	const maxDur = 365 * 24 * time.Hour
	long := func(ds ...time.Duration) bool {
		for _, d := range ds {
			if d > maxDur {
				return true
			}
		}
		return false
	}
	r := cfg.Radio
	switch {
	case cfg.N > 1<<20:
		return fmt.Errorf("implausible node count %d", cfg.N)
	case bad(cfg.Area.W) || bad(cfg.Area.H) || cfg.Area.W <= 0 || cfg.Area.H <= 0:
		return fmt.Errorf("area %gx%g must be positive and finite", cfg.Area.W, cfg.Area.H)
	case cfg.Placement < scenario.PlaceUniform || cfg.Placement > scenario.PlaceLine:
		return fmt.Errorf("unknown placement %d", cfg.Placement)
	case bad(cfg.Spacing) || cfg.Spacing < 0:
		return fmt.Errorf("spacing %g must be finite and not negative", cfg.Spacing)
	case bad(r.Range) || r.Range < 0:
		return fmt.Errorf("radio range %g must be finite and not negative", r.Range)
	case bad(r.BitrateBps), r.BitrateBps != 0 && (r.BitrateBps < 1 || r.BitrateBps > 1e12):
		return fmt.Errorf("radio bitrate %g outside 0 (instantaneous) or [1, 1e12] b/s", r.BitrateBps)
	case math.IsNaN(r.LossRate) || r.LossRate < 0 || r.LossRate >= 1:
		return fmt.Errorf("loss rate %g outside [0,1)", r.LossRate)
	case r.PropDelay < 0 || r.BroadcastJitter < 0 || r.MaxQueueDelay < 0:
		return fmt.Errorf("negative radio delay")
	case long(r.PropDelay, r.BroadcastJitter, r.MaxQueueDelay):
		return fmt.Errorf("implausible radio delay")
	case bad(cfg.Mobility.MinSpeed) || bad(cfg.Mobility.MaxSpeed) ||
		cfg.Mobility.MinSpeed < 0 || cfg.Mobility.MaxSpeed < 0 ||
		cfg.Mobility.Pause < 0 || cfg.Mobility.Epoch < 0 ||
		long(cfg.Mobility.Pause, cfg.Mobility.Epoch):
		return fmt.Errorf("invalid mobility spec")
	case cfg.WindowSize <= 0 || cfg.Cooldown <= 0:
		return fmt.Errorf("live session needs positive window size and cooldown")
	case cfg.Warmup < 0 || cfg.BootStagger < 0 || cfg.Duration < 0:
		return fmt.Errorf("negative phase duration")
	case long(cfg.WindowSize, cfg.Cooldown, cfg.Warmup, cfg.BootStagger, cfg.Duration):
		return fmt.Errorf("implausible phase duration")
	case cfg.Protocol.DAD.Timeout <= 0 || cfg.Protocol.DiscoveryTimeout <= 0 ||
		cfg.Protocol.AckTimeout <= 0 || cfg.Protocol.ResolveTimeout <= 0:
		return fmt.Errorf("protocol timers must be positive")
	case long(cfg.Protocol.DAD.Timeout, cfg.Protocol.DiscoveryTimeout,
		cfg.Protocol.AckTimeout, cfg.Protocol.ResolveTimeout,
		cfg.Protocol.RouteTTL, cfg.Protocol.RERRWindow,
		cfg.Protocol.Audit.Period):
		return fmt.Errorf("implausible protocol timer")
	case cfg.Protocol.FloodCache < 0:
		return fmt.Errorf("negative flood cache bound %d", cfg.Protocol.FloodCache)
	// An undersized dedup set thrashes: floods are re-accepted and
	// re-broadcast every time their entry is evicted, and the storm
	// compounds across nodes. 0 selects the roomy auto-scaled default.
	case cfg.Protocol.FloodCache != 0 && cfg.Protocol.FloodCache < 256:
		return fmt.Errorf("flood cache bound %d invites broadcast storms", cfg.Protocol.FloodCache)
	// A sub-millisecond audit period schedules millions of signed
	// re-advertisements per virtual second — not a hang, but
	// indistinguishable from one.
	case cfg.Protocol.Audit.Period != 0 && cfg.Protocol.Audit.Period < time.Millisecond:
		return fmt.Errorf("audit period %v is implausibly small", cfg.Protocol.Audit.Period)
	case cfg.DNS.CommitDelay < 0:
		return fmt.Errorf("negative DNS commit delay")
	case cfg.Shards < 0 || cfg.Shards > 1<<10:
		return fmt.Errorf("implausible shard count %d", cfg.Shards)
	}
	for i, f := range cfg.Flows {
		if long(f.Interval, f.Start) || f.Size > 1<<30 {
			return fmt.Errorf("flow %d: implausible interval, start or size", i)
		}
	}
	return nil
}
