package sbr6_test

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"sbr6"
)

// sessionOpts builds the scenario matrix for the session/snapshot tests:
// a connected 14-node network with two CBR flows, short protocol timers
// and sub-second windows so six windows run in milliseconds of wall time.
func sessionOpts(kind string, seed int64, shards int) []sbr6.Option {
	opts := []sbr6.Option{
		sbr6.WithSeed(seed),
		sbr6.WithNodes(14),
		sbr6.WithArea(600, 600),
		sbr6.WithFastTimers(),
		sbr6.WithWarmup(time.Second),
		sbr6.WithWindows(500 * time.Millisecond),
		sbr6.WithCooldown(time.Second),
		sbr6.WithFlows(
			sbr6.Flow{From: 1, To: 2, Interval: 250 * time.Millisecond, Size: 64},
			sbr6.Flow{From: 3, To: 4, Interval: 400 * time.Millisecond, Size: 32},
		),
		sbr6.WithShards(shards),
	}
	switch kind {
	case "static":
	case "mobile":
		opts = append(opts, sbr6.WithMobility(sbr6.Mobility{
			MinSpeed: 1, MaxSpeed: 3, Pause: 500 * time.Millisecond,
		}))
	case "adversarial":
		opts = append(opts, sbr6.WithAdversaries(sbr6.GrayHole(5, 0.5)))
	default:
		panic("unknown kind " + kind)
	}
	return opts
}

// driveSession advances sess from its current barrier through window
// `upto`, applying the scripted churn ops at their barriers: a join after
// window 1, ejecting flow source 3 after window 2, and ejecting the
// joined node after window 4. joined carries the injected node's index
// across a snapshot/resume split.
func driveSession(t *testing.T, sess *sbr6.Session, upto int, joined *int) []sbr6.WindowReport {
	t.Helper()
	var reports []sbr6.WindowReport
	if err := sess.Stream(func(w sbr6.WindowReport) { reports = append(reports, w) }); err != nil {
		t.Fatalf("Stream: %v", err)
	}
	for sess.Windows() < upto {
		switch sess.Windows() {
		case 1:
			idx, err := sess.Inject("joiner.example")
			if err != nil {
				t.Fatalf("Inject: %v", err)
			}
			*joined = idx
		case 2:
			if err := sess.Eject(3); err != nil {
				t.Fatalf("Eject(3): %v", err)
			}
		case 4:
			if err := sess.Eject(*joined); err != nil {
				t.Fatalf("Eject(joined=%d): %v", *joined, err)
			}
		}
		if err := sess.Advance(1); err != nil {
			t.Fatalf("Advance: %v", err)
		}
	}
	return reports
}

// TestSnapshotEquivalence is the correctness proof of the snapshot codec:
// for every scenario kind, seed and shard count, running N windows
// straight through must be indistinguishable — cumulative result, window
// stream and final snapshot bytes — from running k windows, snapshotting,
// resuming from the bytes and running the remaining N−k.
func TestSnapshotEquivalence(t *testing.T) {
	const total, split = 6, 3
	kinds := []string{"static", "mobile", "adversarial"}
	seeds := []int64{1, 7, 42}
	shardCounts := []int{1, 4}
	if testing.Short() {
		kinds = kinds[:2]
		seeds = seeds[:1]
	}
	for _, kind := range kinds {
		for _, seed := range seeds {
			for _, shards := range shardCounts {
				name := fmt.Sprintf("%s/seed=%d/shards=%d", kind, seed, shards)
				t.Run(name, func(t *testing.T) {
					// Reference: one uninterrupted run.
					scA, err := sbr6.NewScenario(sessionOpts(kind, seed, shards)...)
					if err != nil {
						t.Fatal(err)
					}
					full, err := sbr6.Serve(scA)
					if err != nil {
						t.Fatal(err)
					}
					var joinedA int
					repA := driveSession(t, full, total, &joinedA)
					resA := full.Query()
					snapA, err := full.Snapshot()
					if err != nil {
						t.Fatalf("Snapshot(full): %v", err)
					}

					// Candidate: split at the snapshot barrier.
					scB, err := sbr6.NewScenario(sessionOpts(kind, seed, shards)...)
					if err != nil {
						t.Fatal(err)
					}
					first, err := sbr6.Serve(scB)
					if err != nil {
						t.Fatal(err)
					}
					var joinedB int
					driveSession(t, first, split, &joinedB)
					mid, err := first.Snapshot()
					if err != nil {
						t.Fatalf("Snapshot(mid): %v", err)
					}
					resumed, err := sbr6.Resume(mid)
					if err != nil {
						t.Fatalf("Resume: %v", err)
					}
					if got := resumed.Windows(); got != split {
						t.Fatalf("resumed at window %d, want %d", got, split)
					}
					repB := driveSession(t, resumed, total, &joinedB)
					resB := resumed.Query()
					snapB, err := resumed.Snapshot()
					if err != nil {
						t.Fatalf("Snapshot(resumed): %v", err)
					}

					if !reflect.DeepEqual(resA, resB) {
						t.Errorf("cumulative results diverge:\n full:    %v\n resumed: %v", resA, resB)
					}
					if !bytes.Equal(snapA, snapB) {
						t.Errorf("final snapshots diverge:\n full:    %s\n resumed: %s", snapA, snapB)
					}
					// The resumed session re-emits nothing for replayed
					// windows; every window it does emit must match the
					// reference stream byte for byte, matched by index.
					byIdx := map[int]sbr6.WindowReport{}
					for _, w := range repA {
						byIdx[w.Index] = w
					}
					for _, w := range repB {
						ref, ok := byIdx[w.Index]
						if !ok {
							t.Errorf("resumed emitted window %d the full run never did", w.Index)
							continue
						}
						if !reflect.DeepEqual(ref, w) {
							t.Errorf("window %d diverges:\n full:    %+v\n resumed: %+v", w.Index, ref, w)
						}
					}
					if res := full.Query(); res.Sent == 0 {
						t.Errorf("degenerate scenario: no traffic sent")
					} else if kind != "adversarial" && res.Delivered == 0 {
						t.Errorf("degenerate scenario: nothing delivered")
					}
				})
			}
		}
	}
}

// TestSessionLifecycle covers the control surface around the equivalence
// core: barrier state accessors, journal-visible churn, stream
// subscription and the closed-session behavior.
func TestSessionLifecycle(t *testing.T) {
	sc, err := sbr6.NewScenario(sessionOpts("static", 3, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sbr6.Serve(sc)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Configured() == 0 {
		t.Fatal("no node configured during bootstrap")
	}
	if got := sess.LiveNodes(); got != 14 {
		t.Fatalf("LiveNodes = %d, want 14", got)
	}
	if sess.Windows() != 0 {
		t.Fatalf("fresh session at window %d", sess.Windows())
	}
	if err := sess.Advance(-1); err == nil {
		t.Fatal("Advance(-1) accepted")
	}
	if err := sess.Advance(2); err != nil {
		t.Fatal(err)
	}
	idx, err := sess.Inject("late.example")
	if err != nil {
		t.Fatal(err)
	}
	if idx != 14 {
		t.Fatalf("joined node got index %d, want 14", idx)
	}
	if got := sess.NodeCount(); got != 15 {
		t.Fatalf("NodeCount = %d, want 15", got)
	}
	if err := sess.Eject(0); err == nil {
		t.Fatal("ejecting the DNS anchor was accepted")
	}
	if err := sess.Eject(idx); err != nil {
		t.Fatal(err)
	}
	if !sess.Node(idx).Departed() {
		t.Fatal("ejected node not marked departed")
	}
	if got := sess.LiveNodes(); got != 14 {
		t.Fatalf("LiveNodes after join+leave = %d, want 14", got)
	}
	if sess.Node(-1) != nil || sess.Node(99) != nil {
		t.Fatal("out-of-range Node() not nil")
	}
	if res := sess.Query(); res == nil || res.Windows != nil {
		t.Fatalf("Query: want non-nil result with nil Windows, got %+v", res)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal("Close not idempotent")
	}
	if err := sess.Advance(1); err == nil {
		t.Fatal("Advance accepted on a closed session")
	}
	if _, err := sess.Inject("x.example"); err == nil {
		t.Fatal("Inject accepted on a closed session")
	}
	if _, err := sess.Snapshot(); err == nil {
		t.Fatal("Snapshot accepted on a closed session")
	}
}

// TestResumeRejectsGarbage exercises the codec's failure modes: every
// rejection must wrap ErrSnapshot and never panic.
func TestResumeRejectsGarbage(t *testing.T) {
	sc, err := sbr6.NewScenario(sessionOpts("static", 5, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sbr6.Serve(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Advance(1); err != nil {
		t.Fatal(err)
	}
	good, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
	}{
		{"not json", []byte("not json")},
		{"empty object", []byte("{}")},
		{"future version", []byte(`{"version":99}`)},
		{"negative windows", bytes.Replace(good, []byte(`"windows":1`), []byte(`"windows":-1`), 1)},
		{"digest tampered", bytes.Replace(good, []byte(`"digest":"`), []byte(`"digest":"00`), 1)},
		{"unknown journal op", []byte(`{"version":1,"journal":[{"window":0,"kind":"explode","index":1}],"windows":0,"digest":""}`)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := sbr6.Resume(tc.data); err == nil {
				t.Fatalf("Resume accepted %s", tc.name)
			} else if !strings.Contains(err.Error(), "invalid snapshot") {
				t.Fatalf("error does not wrap ErrSnapshot: %v", err)
			}
		})
	}

	// The untampered bytes must still resume.
	if _, err := sbr6.Resume(good); err != nil {
		t.Fatalf("Resume of a genuine snapshot failed: %v", err)
	}
}
