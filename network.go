package sbr6

import (
	"time"

	"sbr6/internal/core"
	"sbr6/internal/dnssrv"
	"sbr6/internal/trace"
	"sbr6/internal/wire"
)

// Network is one instantiated scenario: the simulator, medium and node
// stacks, deterministically derived from a seed. It is now a thin shim
// over a paused Session kept for the batch-style API — Build the network,
// poke it, Run it once to a Result.
//
// Deprecated: new interactive code should use Serve, which returns a
// Session with continuous node churn, streamed windows and
// snapshot/restore. Network remains fully supported for the batch path
// (Run and the Runner), whose results it keeps byte-identical.
//
// A Network is single-threaded like the simulator underneath it: never
// share one across goroutines.
type Network struct {
	session *Session
	nodes   []*Node
}

// Build instantiates the scenario with its default seed.
func (s *Scenario) Build() (*Network, error) { return s.BuildSeed(s.cfg.Seed) }

// BuildSeed instantiates the scenario with an overriding seed.
func (s *Scenario) BuildSeed(seed int64) (*Network, error) {
	sess, err := newSession(s, seed, false)
	if err != nil {
		return nil, err
	}
	nw := &Network{session: sess}
	for i, n := range sess.sc.Nodes {
		nw.nodes = append(nw.nodes, &Node{n: n, idx: i})
	}
	return nw, nil
}

// Seed returns the seed this instance was built from.
func (nw *Network) Seed() int64 { return nw.session.sc.Cfg.Seed }

// Size returns the node count, including the DNS server at index 0.
func (nw *Network) Size() int { return nw.session.sc.Cfg.N }

// Node returns the i-th node's handle (0 is the DNS server).
func (nw *Network) Node(i int) *Node { return nw.nodes[i] }

// Bootstrap staggers secure DAD across all nodes and runs until the last
// objection window closes; it returns how many configured successfully.
func (nw *Network) Bootstrap() int { return nw.session.sc.Bootstrap() }

// RunFor advances the simulation by d of virtual time. Under WithShards
// this drives the sharded engine's barrier loop; otherwise the serial
// kernel directly.
func (nw *Network) RunFor(d time.Duration) { nw.session.sc.RunFor(d) }

// Now returns the current virtual time since the start of the run.
func (nw *Network) Now() time.Duration { return time.Duration(nw.session.sc.S.Now()) }

// Run executes the full experiment — bootstrap, warmup, measured traffic,
// cooldown — and returns the aggregated result. For parallel multi-seed
// execution or streaming observation, use a Runner instead; for an
// open-ended run under external control, use Serve.
func (nw *Network) Run() *Result { return publicResult(nw.Seed(), nw.session.sc.Run()) }

// Connected reports whether every node can currently reach every other.
func (nw *Network) Connected() bool { return nw.session.sc.Connected() }

// Metric sums a per-node counter over all nodes.
func (nw *Network) Metric(name string) float64 {
	sum := 0.0
	for _, nd := range nw.nodes {
		sum += nd.n.Metrics().Get(name)
	}
	return sum
}

// MetricMean returns the mean of a sample series merged over all nodes.
func (nw *Network) MetricMean(name string) float64 {
	m := trace.NewMetrics()
	for _, nd := range nw.nodes {
		m.Merge(nd.n.Metrics())
	}
	return m.Mean(name)
}

// AdversaryState returns the live attack state at a node (for example
// *attack.BlackHole with its drop counters) or nil for honest nodes.
// In-module experiments type-assert on it; its concrete types live in
// internal packages.
func (nw *Network) AdversaryState(node int) any {
	b, ok := nw.session.behaviors[node]
	if !ok {
		return nil
	}
	return b
}

// DNSServer exposes the trust anchor's server state (lookups, preloads,
// update handling). The concrete type lives in an internal package; it is
// an escape hatch for in-module experiments and examples.
func (nw *Network) DNSServer() *dnssrv.Server { return nw.session.sc.DNSSrv }

// Node is a handle on one MANET host inside a Network or a Session.
type Node struct {
	n   *core.Node
	idx int
}

// Index returns the node's position in the scenario.
func (nd *Node) Index() int { return nd.idx }

// Addr returns the node's current (CGA-bound) address.
func (nd *Node) Addr() Addr { return nd.n.Addr() }

// Name returns the domain name the node registered, if any.
func (nd *Node) Name() string { return nd.n.Name() }

// Configured reports whether the node completed secure DAD.
func (nd *Node) Configured() bool { return nd.n.Configured() }

// Departed reports whether the node has been ejected from a live session
// (always false inside a Network).
func (nd *Node) Departed() bool { return nd.n.Dead() }

// Resolve performs a challenge-bound signed DNS lookup; cb fires when the
// answer arrives or the resolve times out.
func (nd *Node) Resolve(name string, cb func(Addr, bool)) { nd.n.Resolve(name, cb) }

// SendData routes a payload to dst, running secure route discovery if no
// verified route is cached.
func (nd *Node) SendData(dst Addr, payload []byte) { nd.n.SendData(dst, payload) }

// OnData registers a handler for data payloads addressed to this node,
// chaining before any previously registered handler.
func (nd *Node) OnData(f func(src Addr, payload []byte)) {
	prev := nd.n.OnData
	nd.n.OnData = func(src Addr, d *wire.Data) {
		f(src, d.Payload)
		if prev != nil {
			prev(src, d)
		}
	}
}

// Route reports the cached verified route to dst as its relay count
// (0 = direct neighbour) and whether one exists.
func (nd *Node) Route(dst Addr) (relays int, ok bool) {
	rr, ok := nd.n.RouteTo(dst)
	return len(rr), ok
}

// RebindAddress moves the node to a fresh CGA address and re-binds its
// registered name through the challenge-based update protocol.
func (nd *Node) RebindAddress(cb func(ok bool)) { nd.n.RebindAddress(cb) }

// Metric reads one of the node's counters by name.
func (nd *Node) Metric(name string) float64 { return nd.n.Metrics().Get(name) }

// Unwrap returns the underlying protocol stack. The concrete type lives in
// an internal package; it is an escape hatch for in-module experiments
// that need the full surface.
func (nd *Node) Unwrap() *core.Node { return nd.n }
