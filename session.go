package sbr6

import (
	"errors"
	"fmt"
	"time"

	"sbr6/internal/core"
	"sbr6/internal/scenario"
)

// WindowReport is one finalized measurement window streamed by a Session:
// the window's own delivery counts plus the per-window deltas of every
// merged node counter. Reports arrive in index order, each exactly once,
// lagged by the cooldown so no in-flight packet can still land in an
// emitted window.
type WindowReport = scenario.WindowReport

// ErrSession is returned by every Session method invoked on a session
// that is not serving — closed, or the paused form behind the deprecated
// Network wrapper.
var ErrSession = errors.New("sbr6: session not serving")

// Journal op kinds. Every external mutation of a live session is recorded
// as a window-stamped op so a snapshot can replay the exact run.
const (
	opInject = "inject"
	opEject  = "eject"
)

// sessionOp is one barrier-stamped external mutation: Window is how many
// measurement windows had fully run when the op was applied.
type sessionOp struct {
	Window int    `json:"window"`
	Kind   string `json:"kind"`
	Name   string `json:"name,omitempty"`
	Index  int    `json:"index"`
}

// Session is a long-lived simulation under external control: the network
// bootstraps once and then advances window by window while nodes join and
// leave, windows stream out, and the whole run can be snapshotted and
// resumed in another process. Obtain one with Serve (or Resume), then
// drive it from a single goroutine — a Session is single-threaded like
// the simulator underneath it.
//
// Every mutating call happens at a window barrier: the event loop is idle
// (or every region of the sharded engine has quiesced), so control-plane
// operations never interleave with simulation events and a session is
// reproducible from its seed plus its op journal alone.
type Session struct {
	spec       *Scenario
	sc         *scenario.Scenario
	lv         *scenario.Live // nil in the paused form behind Network
	behaviors  map[int]core.Behavior
	journal    []sessionOp
	configured int
	closed     bool
}

// Serve instantiates the scenario with its default seed, bootstraps the
// network, runs the warmup and returns the session paused at its first
// window barrier with the configured flows running.
//
// A session needs a window size and a cooldown: when the scenario does
// not set them (WithWindows, WithCooldown), the window defaults to one
// second and the cooldown to one window. The scenario's tap and observers
// are honored for the session's own process but are not part of a
// snapshot — a resumed session starts with neither.
func Serve(s *Scenario) (*Session, error) {
	sess, err := newSession(s, s.cfg.Seed, true)
	if err != nil {
		return nil, err
	}
	sess.configured = sess.lv.Start()
	return sess, nil
}

// newSession builds the scenario instance behind every Session. live
// false is the paused form the deprecated Network wrapper sits on: the
// simulation is built but none of the session machinery (windowing,
// churn, bounded aggregation) is armed, so Network's batch path stays
// byte-identical to its historical behavior.
func newSession(spec *Scenario, seed int64, live bool) (*Session, error) {
	cfg, behaviors := spec.materialize(seed)
	if live {
		if cfg.WindowSize <= 0 {
			cfg.WindowSize = time.Second
		}
		if cfg.Cooldown <= 0 {
			cfg.Cooldown = cfg.WindowSize
		}
	}
	sc, err := scenario.Build(cfg)
	if err != nil {
		return nil, err
	}
	for _, a := range spec.advs {
		if a.bind != nil {
			a.bind(behaviors[a.node], sc)
		}
	}
	sess := &Session{spec: spec, sc: sc, behaviors: behaviors}
	if live {
		lv, err := scenario.NewLive(sc)
		if err != nil {
			return nil, err
		}
		sess.lv = lv
	}
	return sess, nil
}

// ok reports whether the session accepts commands.
func (s *Session) ok() error {
	if s.lv == nil || s.closed {
		return ErrSession
	}
	return nil
}

// Seed returns the seed the session was instantiated from.
func (s *Session) Seed() int64 { return s.sc.Cfg.Seed }

// Configured returns how many nodes completed secure DAD during the
// initial bootstrap (joined nodes are not counted here; see Query).
func (s *Session) Configured() int { return s.configured }

// Windows reports how many measurement windows have fully run.
func (s *Session) Windows() int {
	if s.lv == nil {
		return 0
	}
	return s.lv.Windows()
}

// Now returns the current virtual time since the start of the run.
func (s *Session) Now() time.Duration { return time.Duration(s.sc.S.Now()) }

// LiveNodes reports how many nodes are currently part of the network.
func (s *Session) LiveNodes() int {
	if s.lv == nil {
		return 0
	}
	return s.lv.LiveNodes()
}

// NodeCount returns the total number of node slots ever created,
// including departed nodes — indexes are never reused.
func (s *Session) NodeCount() int { return len(s.sc.Nodes) }

// InFlight reports the tracked in-flight data packet count at the current
// barrier.
func (s *Session) InFlight() int {
	if s.lv == nil {
		return 0
	}
	return s.lv.InFlight()
}

// Node returns the i-th node's handle, or nil past the end. Departed
// nodes are still returned; their Configured() reads false.
func (s *Session) Node(i int) *Node {
	if i < 0 || i >= len(s.sc.Nodes) {
		return nil
	}
	return &Node{n: s.sc.Nodes[i], idx: i}
}

// Advance runs the given number of measurement windows. Windows that
// fall past the emission lag are finalized and streamed to the Stream
// callback as they close.
func (s *Session) Advance(windows int) error {
	if err := s.ok(); err != nil {
		return err
	}
	if windows < 0 {
		return fmt.Errorf("sbr6: Advance(%d): window count must not be negative", windows)
	}
	for i := 0; i < windows; i++ {
		s.lv.Step()
	}
	return nil
}

// Inject admits a new node into the running network: a fresh identity on
// the session's seed-derived streams, a spawn position from the churn
// stream, and a full secure bootstrap (DAD with the objection window)
// exactly like a build-time node. name optionally registers a domain name
// during DAD. Returns the new node's index. The op is journaled, so it
// replays under snapshot restore.
func (s *Session) Inject(name string) (int, error) {
	if err := s.ok(); err != nil {
		return 0, err
	}
	idx, err := s.lv.Join(name, nil)
	if err != nil {
		return 0, err
	}
	s.journal = append(s.journal, sessionOp{Window: s.lv.Windows(), Kind: opInject, Name: name, Index: idx})
	return idx, nil
}

// Eject removes a node for good: its timers are cancelled, its radio
// port tombstoned and reclaimed, its binding-table verdict forgotten, and
// its counters banked so cumulative results survive the departure. The
// index is never reused. Node 0 — the DNS anchor — cannot leave.
func (s *Session) Eject(idx int) error {
	if err := s.ok(); err != nil {
		return err
	}
	if err := s.lv.Leave(idx); err != nil {
		return err
	}
	s.journal = append(s.journal, sessionOp{Window: s.lv.Windows(), Kind: opEject, Index: idx})
	return nil
}

// Query synthesizes the cumulative session result at the current barrier:
// counters merged across departed and live nodes, latency from the
// bounded aggregates, delivery totals per flow. Windows is nil — a
// session streams windows instead of retaining them.
func (s *Session) Query() *Result {
	if s.lv == nil {
		return nil
	}
	return publicResult(s.Seed(), s.lv.Result())
}

// Stream registers f to receive each finalized window; a nil f
// unsubscribes. Only one callback is active at a time. The callback runs
// inside Advance, on the caller's goroutine.
func (s *Session) Stream(f func(WindowReport)) error {
	if err := s.ok(); err != nil {
		return err
	}
	s.lv.OnWindow = f
	return nil
}

// Close marks the session closed; further commands return ErrSession.
// Closing is idempotent and never disturbs simulation state, so a final
// Snapshot taken before Close stays valid.
func (s *Session) Close() error {
	s.closed = true
	return nil
}
