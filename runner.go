package sbr6

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Runner executes scenarios. Each discrete-event simulation stays
// single-threaded and deterministic; RunBatch fans seed-replicates out
// across a worker pool, so a batch's per-seed results are byte-identical
// to serial runs of the same seeds.
type Runner struct {
	// Workers bounds the pool size for RunBatch; <= 0 means GOMAXPROCS.
	Workers int
	// Observer, when set, receives streaming progress (run start/finish
	// and per-window stats) during execution. Calls are serialized.
	Observer Observer
}

// Seeds builds a seed list from explicit values, for
// RunBatch(ctx, sc, Seeds(1, 2, 3)).
func Seeds(vals ...int64) []int64 { return vals }

// SeedRange returns n consecutive seeds starting at base.
func SeedRange(base int64, n int) []int64 {
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, base+int64(i))
	}
	return out
}

// Run executes one full experiment with the scenario's default seed,
// honoring ctx cancellation between simulation events.
func (r *Runner) Run(ctx context.Context, sc *Scenario) (*Result, error) {
	return r.runOne(ctx, sc, sc.Seed(), r.observerFor(sc))
}

// RunBatch executes one replicate per seed across the worker pool and
// aggregates the results. Replicates that finish before ctx is cancelled
// are kept; the first error (including ctx.Err()) is reported alongside
// whatever aggregate could be formed.
func (r *Runner) RunBatch(ctx context.Context, sc *Scenario, seeds []int64) (*BatchResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("RunBatch: no seeds: %w", ErrOption)
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}
	obs := r.observerFor(sc)

	results := make([]*Result, len(seeds))
	errs := make([]error, len(seeds))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				results[i], errs[i] = r.runOne(ctx, sc, seeds[i], obs)
			}
		}()
	}
	for i := range seeds {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	// Collapse the per-replicate cancellations into one wrapped error so a
	// cancelled 2000-seed batch does not report 2000 identical lines.
	var failures []error
	cancelled := 0
	for _, e := range errs {
		switch {
		case e == nil:
		case errors.Is(e, context.Canceled) || errors.Is(e, context.DeadlineExceeded):
			cancelled++
		default:
			failures = append(failures, e)
		}
	}
	if cancelled > 0 {
		failures = append(failures, fmt.Errorf("%d of %d replicates not run: %w", cancelled, len(seeds), ctx.Err()))
	}
	batch := aggregate(seeds, results)
	return batch, errors.Join(failures...)
}

// observerFor merges the Runner's Observer with the scenario's
// WithObserver attachments and wraps the result for concurrent use.
func (r *Runner) observerFor(sc *Scenario) Observer {
	var list []Observer
	if r.Observer != nil {
		list = append(list, r.Observer)
	}
	list = append(list, sc.obs...)
	switch len(list) {
	case 0:
		return nil
	case 1:
		return &syncObserver{obs: list[0]}
	default:
		return &syncObserver{obs: multiObserver{obs: list}}
	}
}

// runOne builds and runs a single seed-replicate.
func (r *Runner) runOne(ctx context.Context, sc *Scenario, seed int64, obs Observer) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nw, err := sc.BuildSeed(seed)
	if err != nil {
		return nil, err
	}
	if obs != nil {
		obs.RunStarted(seed)
		nw.session.sc.OnWindow = func(idx int, w scenarioWindow) {
			obs.Window(seed, publicWindow(w))
		}
	}
	if ctx.Done() != nil {
		// A watchdog event polls ctx on the virtual clock and halts the
		// scheduler when cancelled. It reads no model state and draws no
		// randomness, so an interruptible run stays byte-identical to an
		// uninterruptible one.
		var watchdog func()
		watchdog = func() {
			if ctx.Err() != nil {
				nw.session.sc.S.Stop()
				return
			}
			nw.session.sc.S.After(100*time.Millisecond, watchdog)
		}
		nw.session.sc.S.After(0, watchdog)
	}
	res := nw.Run()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if obs != nil {
		obs.RunFinished(seed, res)
	}
	return res, nil
}

// Stat summarizes one metric over a batch's replicates.
type Stat struct {
	Mean   float64
	Stddev float64 // sample standard deviation
	CI95   float64 // half-width of the normal-approximation 95% interval
	Min    float64
	Max    float64
	N      int
}

// String renders "mean ± ci95".
func (s Stat) String() string { return fmt.Sprintf("%.3f ± %.3f", s.Mean, s.CI95) }

// summarize computes a Stat over the finite samples; NaN observations
// (e.g. the latency of a replicate that delivered nothing) don't
// contribute, and N reports how many did.
func summarize(xs []float64) Stat {
	finite := xs[:0:0]
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			finite = append(finite, x)
		}
	}
	xs = finite
	if len(xs) == 0 {
		return Stat{}
	}
	st := Stat{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		st.Min = math.Min(st.Min, x)
		st.Max = math.Max(st.Max, x)
	}
	st.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - st.Mean
			ss += d * d
		}
		st.Stddev = math.Sqrt(ss / float64(len(xs)-1))
		st.CI95 = 1.96 * st.Stddev / math.Sqrt(float64(len(xs)))
	}
	return st
}

// BatchResult aggregates a multi-seed batch. Results holds the per-seed
// outcomes in seed order (nil where a replicate failed or was cancelled);
// the Stat fields summarize the successful replicates.
type BatchResult struct {
	Seeds   []int64
	Results []*Result

	PDR          Stat
	LatencyMean  Stat
	LatencyP95   Stat
	ControlBytes Stat
	DataBytes    Stat
	CryptoSign   Stat
	CryptoVerify Stat
	Configured   Stat
	Sent         Stat
	Delivered    Stat
}

// Of summarizes any per-result quantity over the successful replicates.
func (b *BatchResult) Of(f func(*Result) float64) Stat {
	var xs []float64
	for _, r := range b.Results {
		if r != nil {
			xs = append(xs, f(r))
		}
	}
	return summarize(xs)
}

// Metric summarizes a merged per-node counter over the replicates.
func (b *BatchResult) Metric(name string) Stat {
	return b.Of(func(r *Result) float64 { return r.Metric(name) })
}

// Completed returns how many replicates produced a result.
func (b *BatchResult) Completed() int {
	n := 0
	for _, r := range b.Results {
		if r != nil {
			n++
		}
	}
	return n
}

// String renders the batch's headline statistics.
func (b *BatchResult) String() string {
	return fmt.Sprintf("batch n=%d/%d pdr=%s latency=%s ctrl=%s",
		b.Completed(), len(b.Seeds), b.PDR, b.LatencyMean, b.ControlBytes)
}

func aggregate(seeds []int64, results []*Result) *BatchResult {
	order := make([]int, len(seeds))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, c int) bool { return seeds[order[a]] < seeds[order[c]] })
	b := &BatchResult{}
	for _, i := range order {
		b.Seeds = append(b.Seeds, seeds[i])
		b.Results = append(b.Results, results[i])
	}
	b.PDR = b.Of(func(r *Result) float64 { return r.PDR })
	b.LatencyMean = b.Of(func(r *Result) float64 { return r.LatencyMean })
	b.LatencyP95 = b.Of(func(r *Result) float64 { return r.LatencyP95 })
	b.ControlBytes = b.Of(func(r *Result) float64 { return r.ControlBytes })
	b.DataBytes = b.Of(func(r *Result) float64 { return r.DataBytes })
	b.CryptoSign = b.Of(func(r *Result) float64 { return r.CryptoSign })
	b.CryptoVerify = b.Of(func(r *Result) float64 { return r.CryptoVerify })
	b.Configured = b.Of(func(r *Result) float64 { return float64(r.Configured) })
	b.Sent = b.Of(func(r *Result) float64 { return float64(r.Sent) })
	b.Delivered = b.Of(func(r *Result) float64 { return float64(r.Delivered) })
	return b
}
