package sbr6_test

// Tests for the public facade: eager option validation, the interactive
// Network surface, observer streaming, and the batch runner's determinism
// guarantee (same seed => byte-identical Result, serial or parallel).

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"sbr6"
)

// fastSpec returns a small grid scenario sized for test runtimes.
func fastSpec(t *testing.T, extra ...sbr6.Option) *sbr6.Scenario {
	t.Helper()
	opts := append([]sbr6.Option{
		sbr6.WithSeed(1),
		sbr6.WithNodes(9),
		sbr6.WithPlacement(sbr6.PlaceGrid),
		sbr6.WithFastTimers(),
		sbr6.WithWarmup(time.Second),
		sbr6.WithDuration(10 * time.Second),
		sbr6.WithCooldown(2 * time.Second),
		sbr6.WithFlows(sbr6.Flow{From: 1, To: 8, Interval: 500 * time.Millisecond, Size: 64}),
	}, extra...)
	sc, err := sbr6.NewScenario(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []sbr6.Option
		want string // substring of the error
	}{
		{"one node", []sbr6.Option{sbr6.WithNodes(1)}, "at least 2"},
		{"negative area", []sbr6.Option{sbr6.WithArea(-10, 100)}, "WithArea"},
		{"infinite area", []sbr6.Option{sbr6.WithArea(math.Inf(1), 100)}, "finite"},
		{"NaN radio range", []sbr6.Option{sbr6.WithRadio(sbr6.Radio{Range: math.NaN()})}, "finite"},
		{"NaN mobility", []sbr6.Option{sbr6.WithMobility(sbr6.Mobility{MaxSpeed: math.NaN()})}, "speeds"},
		{"unknown medium index", []sbr6.Option{sbr6.WithMediumIndex(sbr6.MediumIndex(99))}, "WithMediumIndex"},
		{"zero boot stagger", []sbr6.Option{sbr6.WithBootStagger(0)}, "WithBootStagger"},
		{"flow from out of range", []sbr6.Option{
			sbr6.WithNodes(5),
			sbr6.WithFlows(sbr6.Flow{From: 9, To: 1, Interval: time.Second}),
		}, "From=9"},
		{"flow to out of range", []sbr6.Option{
			sbr6.WithNodes(5),
			sbr6.WithFlows(sbr6.Flow{From: 1, To: -1, Interval: time.Second}),
		}, "To=-1"},
		{"flow to itself", []sbr6.Option{
			sbr6.WithNodes(5),
			sbr6.WithFlows(sbr6.Flow{From: 2, To: 2, Interval: time.Second}),
		}, "From and To are both 2"},
		{"flow zero interval", []sbr6.Option{
			sbr6.WithNodes(5),
			sbr6.WithFlows(sbr6.Flow{From: 1, To: 2}),
		}, "interval"},
		{"flow negative start", []sbr6.Option{
			sbr6.WithNodes(5),
			sbr6.WithFlows(sbr6.Flow{From: 1, To: 2, Interval: time.Second, Start: -time.Second}),
		}, "start"},
		{"adversary on dns anchor", []sbr6.Option{
			sbr6.WithNodes(5), sbr6.WithAdversaries(sbr6.BlackHole(0)),
		}, "node 0 is the DNS anchor"},
		{"adversary out of range", []sbr6.Option{
			sbr6.WithNodes(5), sbr6.WithAdversaries(sbr6.BlackHole(7)),
		}, "outside"},
		{"two adversaries on one node", []sbr6.Option{
			sbr6.WithNodes(5),
			sbr6.WithAdversaries(sbr6.BlackHole(2), sbr6.RERRSpammer(2)),
		}, "assigned both"},
		{"zero-value adversary", []sbr6.Option{
			sbr6.WithNodes(5), sbr6.WithAdversaries(sbr6.Adversary{}),
		}, "zero-value"},
		{"impersonator self-victim", []sbr6.Option{
			sbr6.WithNodes(5), sbr6.WithAdversaries(sbr6.Impersonate(2, 2)),
		}, "victim"},
		{"name out of range", []sbr6.Option{
			sbr6.WithNodes(5), sbr6.WithName(9, "host"),
		}, "references node 9"},
		{"preload out of range", []sbr6.Option{
			sbr6.WithNodes(5), sbr6.WithPreload("srv", 9),
		}, "references node 9"},
		{"empty name", []sbr6.Option{sbr6.WithName(1, "")}, "empty name"},
		{"loss out of range", []sbr6.Option{sbr6.WithLoss(1.5)}, "WithLoss"},
		{"radio loss NaN", []sbr6.Option{sbr6.WithRadio(sbr6.Radio{LossRate: math.NaN()})}, "loss rate"},
		{"bad mobility speeds", []sbr6.Option{
			sbr6.WithMobility(sbr6.Mobility{MinSpeed: 5, MaxSpeed: 1}),
		}, "speeds"},
		{"zero duration", []sbr6.Option{sbr6.WithDuration(0)}, "WithDuration"},
		{"negative warmup", []sbr6.Option{sbr6.WithWarmup(-time.Second)}, "WithWarmup"},
		{"zero window", []sbr6.Option{sbr6.WithWindows(0)}, "WithWindows"},
		{"bad spacing", []sbr6.Option{sbr6.WithSpacing(0)}, "WithSpacing"},
		{"bad suite", []sbr6.Option{sbr6.WithSuite(sbr6.Suite(42))}, "suite"},
		{"bad rerr threshold", []sbr6.Option{sbr6.WithRERRThreshold(0)}, "WithRERRThreshold"},
		{"nil option", []sbr6.Option{nil}, "nil option"},
		{"nil tap", []sbr6.Option{sbr6.WithTap(nil)}, "WithTap"},
		{"zero audit period", []sbr6.Option{sbr6.WithAuditSweep(0)}, "WithAuditSweep"},
		{"negative audit period", []sbr6.Option{sbr6.WithAuditSweep(-time.Second)}, "WithAuditSweep"},
		{"zero cell fraction", []sbr6.Option{sbr6.WithBootCellFraction(0)}, "WithBootCellFraction"},
		{"oversized cell fraction", []sbr6.Option{sbr6.WithBootCellFraction(0.9)}, "WithBootCellFraction"},
		{"NaN cell fraction", []sbr6.Option{sbr6.WithBootCellFraction(math.NaN())}, "WithBootCellFraction"},
		{"clone self-victim", []sbr6.Option{
			sbr6.WithNodes(5), sbr6.WithAdversaries(sbr6.AddressClone(2, 2)),
		}, "victim"},
		{"zero shards", []sbr6.Option{sbr6.WithShards(0)}, "WithShards"},
		{"unknown placement", []sbr6.Option{sbr6.WithPlacement(sbr6.Placement(42))}, "WithPlacement"},
		{"negative pause", []sbr6.Option{sbr6.WithMobility(sbr6.Mobility{MaxSpeed: 1, Pause: -time.Second})}, "WithMobility"},
		{"negative walk epoch", []sbr6.Option{sbr6.WithMobility(sbr6.Mobility{MaxSpeed: 1, Epoch: -time.Second})}, "WithMobility"},
		{"radio loss out of range", []sbr6.Option{sbr6.WithRadio(sbr6.Radio{LossRate: 1.5})}, "WithRadio"},
		{"zero radio range", []sbr6.Option{sbr6.WithRadioRange(0)}, "WithRadioRange"},
		{"negative loss", []sbr6.Option{sbr6.WithLoss(-0.1)}, "WithLoss"},
		{"unknown boot policy", []sbr6.Option{sbr6.WithBootPolicy(sbr6.BootPolicy(42))}, "WithBootPolicy"},
		{"flow zero interval", []sbr6.Option{
			sbr6.WithFlows(sbr6.Flow{From: 1, To: 2}),
		}, "WithFlows"},
		{"flow self loop", []sbr6.Option{
			sbr6.WithFlows(sbr6.Flow{From: 2, To: 2, Interval: time.Second}),
		}, "WithFlows"},
		{"flow negative size", []sbr6.Option{
			sbr6.WithFlows(sbr6.Flow{From: 1, To: 2, Interval: time.Second, Size: -1}),
		}, "WithFlows"},
		{"flow negative start", []sbr6.Option{
			sbr6.WithFlows(sbr6.Flow{From: 1, To: 2, Interval: time.Second, Start: -time.Second}),
		}, "WithFlows"},
		{"bad suite names option", []sbr6.Option{sbr6.WithSuite(sbr6.Suite(42))}, "WithSuite"},
		{"zero-value adversary", []sbr6.Option{sbr6.WithAdversaries(sbr6.Adversary{})}, "WithAdversaries"},
		{"nil observer", []sbr6.Option{sbr6.WithObserver(nil)}, "WithObserver"},
		{"negative duration", []sbr6.Option{sbr6.WithDuration(-time.Second)}, "WithDuration"},
		{"negative cooldown", []sbr6.Option{sbr6.WithCooldown(-time.Second)}, "WithCooldown"},
		{"negative window", []sbr6.Option{sbr6.WithWindows(-time.Second)}, "WithWindows"},
		{"negative name index", []sbr6.Option{sbr6.WithName(-1, "a.example")}, "WithName"},
		{"empty name", []sbr6.Option{sbr6.WithName(3, "")}, "WithName"},
		{"empty preload name", []sbr6.Option{sbr6.WithPreload("", 3)}, "WithPreload"},
		{"negative preload index", []sbr6.Option{sbr6.WithPreload("a.example", -1)}, "WithPreload"},
		{"zero DAD timeout", []sbr6.Option{sbr6.WithDADTimeout(0)}, "WithDADTimeout"},
		{"negative DNS commit delay", []sbr6.Option{sbr6.WithDNSCommitDelay(-time.Second)}, "WithDNSCommitDelay"},
		{"negative shards", []sbr6.Option{sbr6.WithShards(-2)}, "WithShards"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := sbr6.NewScenario(tc.opts...)
			if err == nil {
				t.Fatalf("invalid options accepted")
			}
			if !errors.Is(err, sbr6.ErrOption) {
				t.Fatalf("error does not wrap ErrOption: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidScenarioDefaults(t *testing.T) {
	sc, err := sbr6.NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Nodes() != 25 || sc.Seed() != 1 {
		t.Fatalf("defaults: nodes=%d seed=%d", sc.Nodes(), sc.Seed())
	}
}

func TestNetworkInteractive(t *testing.T) {
	sc, err := sbr6.NewScenario(
		sbr6.WithNodes(5),
		sbr6.WithPlacement(sbr6.PlaceLine),
		sbr6.WithFastTimers(),
		sbr6.WithName(4, "sensor-hub"),
	)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.Bootstrap(); got != 5 {
		t.Fatalf("configured %d/5", got)
	}
	nw.RunFor(time.Second)

	var hub sbr6.Addr
	var found bool
	nw.Node(1).Resolve("sensor-hub", func(a sbr6.Addr, ok bool) { hub, found = a, ok })
	nw.RunFor(5 * time.Second)
	if !found || hub != nw.Node(4).Addr() {
		t.Fatalf("resolve failed: found=%v hub=%s", found, hub)
	}

	received := 0
	nw.Node(4).OnData(func(src sbr6.Addr, payload []byte) { received++ })
	nw.Node(1).SendData(hub, []byte("ping"))
	nw.RunFor(5 * time.Second)
	if received != 1 {
		t.Fatalf("received %d packets, want 1", received)
	}
	if relays, ok := nw.Node(1).Route(hub); !ok || relays == 0 {
		t.Fatalf("route to hub: relays=%d ok=%v", relays, ok)
	}
	if nw.Metric("crypto.verify") == 0 {
		t.Fatal("no verifications counted on a secure run")
	}
}

// TestShardedFacade drives the sharded core through the public surface:
// the interactive Network works unchanged on the engine, and a sharded run
// is byte-identical to the engine's serial baseline (the internal/shard
// differential suite proves this across a full scenario matrix; here we
// only pin the facade plumbing).
func TestShardedFacade(t *testing.T) {
	nw, err := fastSpec(t, sbr6.WithShards(2)).Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.Bootstrap(); got != 9 {
		t.Fatalf("configured %d/9", got)
	}
	received := 0
	nw.Node(8).OnData(func(src sbr6.Addr, payload []byte) { received++ })
	nw.Node(1).SendData(nw.Node(8).Addr(), []byte("ping"))
	nw.RunFor(5 * time.Second)
	if received != 1 {
		t.Fatalf("received %d packets, want 1", received)
	}

	serial, err := fastSpec(t, sbr6.WithShards(1)).Build()
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := fastSpec(t, sbr6.WithShards(2)).Build()
	if err != nil {
		t.Fatal(err)
	}
	a, b := serial.Run(), sharded.Run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sharded run diverged from engine serial baseline:\nserial:  %v\nsharded: %v", a, b)
	}
	if a.Delivered == 0 {
		t.Fatal("baseline delivered nothing; the comparison is vacuous")
	}
}

// TestRunBatchDeterminism is the facade's core guarantee: the same seed
// yields an identical Result whether run serially or through the parallel
// worker pool, adversaries included.
func TestRunBatchDeterminism(t *testing.T) {
	mk := func() *sbr6.Scenario {
		return fastSpec(t,
			sbr6.WithWindows(5*time.Second),
			sbr6.WithAdversaries(sbr6.BlackHole(4)),
		)
	}
	seeds := sbr6.SeedRange(1, 4)

	serial := &sbr6.Runner{Workers: 1}
	sb, err := serial.RunBatch(context.Background(), mk(), seeds)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	parallel := &sbr6.Runner{Workers: 4}
	pb, err := parallel.RunBatch(ctx, mk(), seeds)
	if err != nil {
		t.Fatal(err)
	}

	if len(sb.Results) != len(pb.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(sb.Results), len(pb.Results))
	}
	for i := range sb.Results {
		if !reflect.DeepEqual(sb.Results[i], pb.Results[i]) {
			t.Fatalf("seed %d: serial and parallel results differ:\nserial:   %v\nparallel: %v",
				sb.Seeds[i], sb.Results[i], pb.Results[i])
		}
	}

	// A direct interactive run of the same seed agrees too.
	nw, err := mk().BuildSeed(seeds[0])
	if err != nil {
		t.Fatal(err)
	}
	if direct := nw.Run(); !reflect.DeepEqual(direct, sb.Results[0]) {
		t.Fatalf("direct run differs from batch:\ndirect: %v\nbatch:  %v", direct, sb.Results[0])
	}

	if sb.PDR.N != len(seeds) || sb.PDR.Mean <= 0 || sb.PDR.Mean > 1 {
		t.Fatalf("suspicious PDR stat: %+v", sb.PDR)
	}
	if sb.PDR.Min > sb.PDR.Mean || sb.PDR.Max < sb.PDR.Mean {
		t.Fatalf("stat bounds wrong: %+v", sb.PDR)
	}
}

// TestRunBatchDeterminismVerifyCache extends the determinism guarantee to
// the memoized-verification cache: a parallel batch with the per-node
// cache enabled (the default) must match, seed for seed, a serial batch
// with memoization disabled. Run under -race in CI, this also proves the
// per-replicate caches share no state across the worker pool.
func TestRunBatchDeterminismVerifyCache(t *testing.T) {
	// Adversaries sit off the 1->8 diagonal so some traffic still lands
	// (zero deliveries would make the latency stats NaN, which DeepEqual
	// cannot compare).
	mk := func(extra ...sbr6.Option) *sbr6.Scenario {
		return fastSpec(t, append([]sbr6.Option{
			sbr6.WithAdversaries(sbr6.ForgingBlackHole(2), sbr6.RERRSpammer(6)),
		}, extra...)...)
	}
	seeds := sbr6.SeedRange(1, 4)

	serial := &sbr6.Runner{Workers: 1}
	off, err := serial.RunBatch(context.Background(), mk(sbr6.WithVerifyCache(0)), seeds)
	if err != nil {
		t.Fatal(err)
	}
	parallel := &sbr6.Runner{Workers: 4}
	on, err := parallel.RunBatch(context.Background(), mk(), seeds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range off.Results {
		if !reflect.DeepEqual(off.Results[i], on.Results[i]) {
			t.Fatalf("seed %d: cache-off and cache-on results differ:\noff: %v\non:  %v",
				off.Seeds[i], off.Results[i], on.Results[i])
		}
	}
	// A tiny explicit bound behaves like the default (just with more
	// evictions) — still byte-identical.
	tiny, err := serial.RunBatch(context.Background(), mk(sbr6.WithVerifyCache(32)), seeds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range off.Results {
		if !reflect.DeepEqual(off.Results[i], tiny.Results[i]) {
			t.Fatalf("seed %d: 32-entry cache diverged from direct run", off.Seeds[i])
		}
	}
}

// TestRunBatchDeterminismBootPolicy extends the determinism guarantee to
// the bootstrap admission policy: a parallel per-cell batch must match a
// serial per-cell batch seed for seed (run under -race in CI, proving the
// schedule computation shares no state across the worker pool), and the
// per-cell policy must form the same fully-addressed network the serial
// one does.
func TestRunBatchDeterminismBootPolicy(t *testing.T) {
	mk := func(p sbr6.BootPolicy) *sbr6.Scenario {
		return fastSpec(t,
			sbr6.WithBootPolicy(p),
			sbr6.WithAdversaries(sbr6.BlackHole(4)),
		)
	}
	seeds := sbr6.SeedRange(1, 4)

	serial := &sbr6.Runner{Workers: 1}
	sb, err := serial.RunBatch(context.Background(), mk(sbr6.BootPerCell), seeds)
	if err != nil {
		t.Fatal(err)
	}
	parallel := &sbr6.Runner{Workers: 4}
	pb, err := parallel.RunBatch(context.Background(), mk(sbr6.BootPerCell), seeds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sb.Results {
		if !reflect.DeepEqual(sb.Results[i], pb.Results[i]) {
			t.Fatalf("seed %d: serial and parallel per-cell results differ", sb.Seeds[i])
		}
	}
	// Outcome equivalence with the serial policy: everyone addressed.
	old, err := serial.RunBatch(context.Background(), mk(sbr6.BootSerial), seeds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sb.Results {
		if sb.Results[i].Configured != 9 || old.Results[i].Configured != 9 {
			t.Fatalf("seed %d: formation incomplete: percell %d/9, serial %d/9",
				sb.Seeds[i], sb.Results[i].Configured, old.Results[i].Configured)
		}
	}
}

func TestRunnerObserverStreams(t *testing.T) {
	sc := fastSpec(t, sbr6.WithWindows(2*time.Second))
	var started, finished int
	var windows []sbr6.WindowStat
	r := &sbr6.Runner{Workers: 2, Observer: sbr6.ObserverFuncs{
		OnRunStarted: func(seed int64) { started++ },
		OnWindow: func(seed int64, w sbr6.WindowStat) {
			if seed == 1 {
				windows = append(windows, w)
			}
		},
		OnRunFinished: func(seed int64, r *sbr6.Result) { finished++ },
	}}
	batch, err := r.RunBatch(context.Background(), sc, sbr6.Seeds(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if started != 2 || finished != 2 {
		t.Fatalf("observer saw %d starts, %d finishes; want 2/2", started, finished)
	}
	if len(windows) != 5 { // 10 s duration / 2 s windows
		t.Fatalf("streamed %d windows, want 5", len(windows))
	}
	for i, w := range windows {
		if w.Start != time.Duration(i)*2*time.Second {
			t.Fatalf("window %d starts at %v", i, w.Start)
		}
	}
	// The streamed windows match the final result's recorded windows.
	res := batch.Results[0]
	for i, w := range res.Windows {
		if windows[i] != w {
			t.Fatalf("window %d streamed %+v but recorded %+v", i, windows[i], w)
		}
	}
	if batch.Results[0].Seed != 1 || batch.Results[1].Seed != 2 {
		t.Fatalf("batch results not in seed order: %v", batch.Seeds)
	}
}

func TestRunBatchCancellation(t *testing.T) {
	sc := fastSpec(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &sbr6.Runner{Workers: 2}
	batch, err := r.RunBatch(ctx, sc, sbr6.SeedRange(1, 4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if batch.Completed() != 0 {
		t.Fatalf("%d replicates completed under a cancelled context", batch.Completed())
	}
}

func TestAdversaryStateIsolatedPerRun(t *testing.T) {
	sc := fastSpec(t, sbr6.WithAdversaries(sbr6.ForgingBlackHole(4)))
	nw1, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	nw2, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if nw1.AdversaryState(4) == nil || nw1.AdversaryState(4) == nw2.AdversaryState(4) {
		t.Fatal("adversary state shared between runs")
	}
	if nw1.AdversaryState(3) != nil {
		t.Fatal("honest node reports adversary state")
	}
}

// TestTapSerializedAcrossBatch shares one tap callback between parallel
// replicates; under -race this fails if tap delivery is not serialized.
func TestTapSerializedAcrossBatch(t *testing.T) {
	events := 0
	sc := fastSpec(t, sbr6.WithTap(func(sbr6.TapEvent) { events++ }))
	if _, err := (&sbr6.Runner{Workers: 4}).RunBatch(context.Background(), sc, sbr6.SeedRange(1, 4)); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("tap saw no receptions")
	}
}

func TestRunBatchNoSeeds(t *testing.T) {
	sc := fastSpec(t)
	if _, err := (&sbr6.Runner{}).RunBatch(context.Background(), sc, nil); !errors.Is(err, sbr6.ErrOption) {
		t.Fatalf("err = %v", err)
	}
}

// TestAddressCloneAuditRecoveryFacade drives the audit sweep end to end
// through the public surface: an AddressClone adversary squats node 1's
// address from across the grid; WithAuditSweep surfaces the conflict and
// the victim recovers onto a fresh unique address. WithSecure is applied
// AFTER WithAuditSweep to pin that a protocol-variant switch preserves the
// sweep configuration.
func TestAddressCloneAuditRecoveryFacade(t *testing.T) {
	sc, err := sbr6.NewScenario(
		sbr6.WithSeed(3),
		sbr6.WithNodes(36),
		sbr6.WithPlacement(sbr6.PlaceGrid),
		sbr6.WithBootPolicy(sbr6.BootPerCell),
		sbr6.WithFastTimers(),
		sbr6.WithAuditSweep(time.Second),
		sbr6.WithSecure(),
		sbr6.WithBootCellFraction(0.5),
		sbr6.WithAdversaries(sbr6.AddressClone(20, 1)),
		sbr6.WithWarmup(5*time.Second),
		sbr6.WithDuration(time.Second),
		sbr6.WithCooldown(time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	nw.Run()

	if nw.Node(1).Addr() == nw.Node(20).Addr() {
		t.Fatal("victim still shares the cloned address after the sweep")
	}
	if !nw.Node(1).Configured() {
		t.Fatal("victim did not re-form")
	}
	if got := nw.Metric("audit.rekeys"); got != 1 {
		t.Fatalf("audit.rekeys = %v, want 1 (the victim alone)", got)
	}
	if nw.Metric("audit.adv_sent") == 0 {
		t.Fatal("no advertisements sent — WithSecure wiped the sweep configuration")
	}
	if nw.Metric("audit.conflicts") == 0 {
		t.Fatal("the conflict never surfaced")
	}
}
