// Battlefield: the paper's hostile-environment motivation.
//
// A 5x5 grid of nodes carries traffic between opposite corners while three
// insider adversaries sit on the central positions: two black holes that
// relay discovery honestly but silently swallow data, and one node that
// drops packets while reporting fabricated route errors. The same battle
// is fought three times — plain DSR, the secure protocol without credits,
// and the full protocol — to show what each defense layer buys.
//
// Run with: go run ./examples/battlefield
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sbr6"
	"sbr6/internal/trace"
)

func main() {
	table := trace.NewTable("battlefield: 25 nodes, 2 insider black holes + 1 RERR spammer",
		"protocol", "delivered", "PDR", "holes condemned", "spam flagged", "forged RERR rejected")

	for _, variant := range []struct {
		name    string
		secure  bool
		credits bool
	}{
		{"plain DSR", false, false},
		{"secure, no credits", true, false},
		{"secure + credits", true, true},
	} {
		opts := []sbr6.Option{
			sbr6.WithSeed(11),
			sbr6.WithNodes(25),
			sbr6.WithPlacement(sbr6.PlaceGrid),
			sbr6.WithDADTimeout(500 * time.Millisecond),
			sbr6.WithDNSCommitDelay(500 * time.Millisecond),
			sbr6.WithDuration(40 * time.Second),
			// The middle row carries most corner-to-corner paths.
			sbr6.WithAdversaries(
				sbr6.BlackHole(12),   // dead centre
				sbr6.BlackHole(11),   // centre-left
				sbr6.RERRSpammer(13), // centre-right
			),
			sbr6.WithFlows(
				sbr6.Flow{From: 1, To: 24, Interval: 500 * time.Millisecond, Size: 64},
				sbr6.Flow{From: 4, To: 20, Interval: 500 * time.Millisecond, Size: 64},
				sbr6.Flow{From: 21, To: 3, Interval: 500 * time.Millisecond, Size: 64},
			),
		}
		if !variant.secure {
			opts = append(opts, sbr6.WithBaseline())
		}
		opts = append(opts, sbr6.WithCredits(variant.credits))

		sc, err := sbr6.NewScenario(opts...)
		if err != nil {
			log.Fatal(err)
		}
		res, err := (&sbr6.Runner{}).Run(context.Background(), sc)
		if err != nil {
			log.Fatal(err)
		}
		table.Add(variant.name,
			fmt.Sprintf("%d/%d", res.Delivered, res.Sent),
			fmt.Sprintf("%.3f", res.PDR),
			trace.FormatFloat(res.Metric("probe.concluded")),
			trace.FormatFloat(res.Metric("rerr.spammer_flagged")),
			trace.FormatFloat(res.Metric("rerr.rejected")))
	}

	fmt.Println(table.String())
	fmt.Println("reading the table: plain DSR loses most corner traffic to the")
	fmt.Println("insiders; signatures alone pin identities but cannot see silent")
	fmt.Println("drops; credits + probing locate the holes and route around them.")
}
