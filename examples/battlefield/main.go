// Battlefield: the paper's hostile-environment motivation.
//
// A 5x5 grid of nodes carries traffic between opposite corners while three
// insider adversaries sit on the central positions: two black holes that
// relay discovery honestly but silently swallow data, and one node that
// drops packets while reporting fabricated route errors. The same battle
// is fought three times — plain DSR, the secure protocol without credits,
// and the full protocol — to show what each defense layer buys.
//
// Run with: go run ./examples/battlefield
package main

import (
	"fmt"
	"log"
	"time"

	"sbr6/internal/attack"
	"sbr6/internal/core"
	"sbr6/internal/scenario"
	"sbr6/internal/trace"
)

func main() {
	table := trace.NewTable("battlefield: 25 nodes, 2 insider black holes + 1 RERR spammer",
		"protocol", "delivered", "PDR", "holes condemned", "spam flagged", "forged RERR rejected")

	for _, variant := range []struct {
		name    string
		secure  bool
		credits bool
	}{
		{"plain DSR", false, false},
		{"secure, no credits", true, false},
		{"secure + credits", true, true},
	} {
		cfg := scenario.DefaultConfig()
		cfg.Seed = 11
		cfg.N = 25
		cfg.Placement = scenario.PlaceGrid
		if variant.secure {
			cfg.Protocol = core.DefaultConfig()
		} else {
			cfg.Protocol = core.BaselineConfig()
		}
		cfg.Protocol.UseCredits = variant.credits
		cfg.Protocol.ProbeOnLoss = variant.credits
		cfg.Protocol.DAD.Timeout = 500 * time.Millisecond
		cfg.DNS.CommitDelay = 500 * time.Millisecond
		cfg.Duration = 40 * time.Second

		// The middle row carries most corner-to-corner paths.
		cfg.Behaviors = map[int]core.Behavior{
			12: &attack.BlackHole{},   // dead centre
			11: &attack.BlackHole{},   // centre-left
			13: &attack.RERRSpammer{}, // centre-right
		}
		cfg.Flows = []scenario.Flow{
			{From: 1, To: 24, Interval: 500 * time.Millisecond, Size: 64},
			{From: 4, To: 20, Interval: 500 * time.Millisecond, Size: 64},
			{From: 21, To: 3, Interval: 500 * time.Millisecond, Size: 64},
		}

		sc, err := scenario.Build(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res := sc.Run()
		table.Add(variant.name,
			fmt.Sprintf("%d/%d", res.Delivered, res.Sent),
			fmt.Sprintf("%.3f", res.PDR),
			trace.FormatFloat(res.Metrics.Get("probe.concluded")),
			trace.FormatFloat(res.Metrics.Get("rerr.spammer_flagged")),
			trace.FormatFloat(res.Metrics.Get("rerr.rejected")))
	}

	fmt.Println(table.String())
	fmt.Println("reading the table: plain DSR loses most corner traffic to the")
	fmt.Println("insiders; signatures alone pin identities but cannot see silent")
	fmt.Println("drops; credits + probing locate the holes and route around them.")
}
