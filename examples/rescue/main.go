// Rescue: the paper's disaster-relief motivation.
//
// Twenty responders walk a 1.2 km x 1.2 km operations area under random
// waypoint mobility. The command post (node 0) runs the DNS server with a
// pre-provisioned name, so no responder needs any configuration beyond the
// DNS public key. Teams stream status reports to the command post while
// links break and reform; DSR route maintenance (signed RERRs) and
// re-discovery keep the reports flowing.
//
// Run with: go run ./examples/rescue
package main

import (
	"fmt"
	"log"
	"time"

	"sbr6/internal/geom"
	"sbr6/internal/scenario"
)

func main() {
	cfg := scenario.DefaultConfig()
	cfg.Seed = 7
	cfg.N = 20
	// ~900x900 m keeps the walking deployment connected (mean degree ~6 at
	// a 250 m radio range); sparser areas strand responders.
	cfg.Area = geom.Rect{W: 900, H: 900}
	cfg.Placement = scenario.PlaceUniform
	cfg.Flows = nil // replace the default demo flow with the team traffic
	cfg.Mobility = scenario.MobilitySpec{
		Waypoint: true,
		MinSpeed: 0.5, // walking pace
		MaxSpeed: 2.5,
		Pause:    5 * time.Second,
	}
	cfg.Protocol.DAD.Timeout = 500 * time.Millisecond
	cfg.DNS.CommitDelay = 500 * time.Millisecond
	cfg.Preload = map[string]int{"command-post": 0}
	cfg.Warmup = 2 * time.Second
	cfg.Duration = 60 * time.Second
	cfg.Cooldown = 5 * time.Second

	// Four field teams report to the command post every 2 seconds; two
	// teams also exchange coordination traffic directly.
	for _, team := range []int{4, 9, 14, 19} {
		cfg.Flows = append(cfg.Flows, scenario.Flow{
			From: team, To: 0, Interval: 2 * time.Second, Size: 96,
		})
	}
	cfg.Flows = append(cfg.Flows,
		scenario.Flow{From: 4, To: 9, Interval: 3 * time.Second, Size: 48},
		scenario.Flow{From: 14, To: 19, Interval: 3 * time.Second, Size: 48},
	)

	sc, err := scenario.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res := sc.Run()

	fmt.Println("rescue operation, 60 s of mobile reporting:")
	fmt.Printf("  responders configured:  %d/%d\n", res.Configured, cfg.N)
	fmt.Printf("  reports delivered:      %d/%d (%.1f%%)\n", res.Delivered, res.Sent, 100*res.PDR)
	fmt.Printf("  mean report latency:    %.1f ms\n", res.LatencyMean*1000)
	fmt.Printf("  route errors handled:   %.0f accepted, %.0f routes invalidated\n",
		res.Metrics.Get("rerr.accepted"), res.Metrics.Get("route.invalidated"))
	fmt.Printf("  route discoveries:      %.0f attempts, %.0f installs\n",
		res.Metrics.Get("discovery.attempts"), res.Metrics.Get("route.installed"))
	fmt.Printf("  control overhead:       %.0f bytes (%.1f%% of all bytes)\n",
		res.ControlBytes, 100*res.ControlBytes/(res.ControlBytes+res.DataBytes))
	fmt.Printf("  signatures/verifies:    %.0f / %.0f\n", res.CryptoSign, res.CryptoVerify)
	for fi, fr := range res.PerFlow {
		fmt.Printf("  flow %d: %d/%d delivered\n", fi, fr.Delivered, fr.Sent)
	}
}
