// Rescue: the paper's disaster-relief motivation.
//
// Twenty responders walk a 900 x 900 m operations area under random
// waypoint mobility. The command post (node 0) runs the DNS server with a
// pre-provisioned name, so no responder needs any configuration beyond the
// DNS public key. Teams stream status reports to the command post while
// links break and reform; DSR route maintenance (signed RERRs) and
// re-discovery keep the reports flowing.
//
// Run with: go run ./examples/rescue
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sbr6"
)

func main() {
	// Four field teams report to the command post every 2 seconds; two
	// teams also exchange coordination traffic directly.
	flows := []sbr6.Flow{
		{From: 4, To: 0, Interval: 2 * time.Second, Size: 96},
		{From: 9, To: 0, Interval: 2 * time.Second, Size: 96},
		{From: 14, To: 0, Interval: 2 * time.Second, Size: 96},
		{From: 19, To: 0, Interval: 2 * time.Second, Size: 96},
		{From: 4, To: 9, Interval: 3 * time.Second, Size: 48},
		{From: 14, To: 19, Interval: 3 * time.Second, Size: 48},
	}

	sc, err := sbr6.NewScenario(
		sbr6.WithSeed(7),
		sbr6.WithNodes(20),
		// ~900x900 m keeps the walking deployment connected (mean degree
		// ~6 at a 250 m radio range); sparser areas strand responders.
		sbr6.WithArea(900, 900),
		sbr6.WithPlacement(sbr6.PlaceUniform),
		sbr6.WithMobility(sbr6.Mobility{
			MinSpeed: 0.5, // walking pace
			MaxSpeed: 2.5,
			Pause:    5 * time.Second,
		}),
		sbr6.WithDADTimeout(500*time.Millisecond),
		sbr6.WithDNSCommitDelay(500*time.Millisecond),
		sbr6.WithPreload("command-post", 0),
		sbr6.WithWarmup(2*time.Second),
		sbr6.WithDuration(60*time.Second),
		sbr6.WithCooldown(5*time.Second),
		sbr6.WithFlows(flows...),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := (&sbr6.Runner{}).Run(context.Background(), sc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("rescue operation, 60 s of mobile reporting:")
	fmt.Printf("  responders configured:  %d/%d\n", res.Configured, sc.Nodes())
	fmt.Printf("  reports delivered:      %d/%d (%.1f%%)\n", res.Delivered, res.Sent, 100*res.PDR)
	fmt.Printf("  mean report latency:    %.1f ms\n", res.LatencyMean*1000)
	fmt.Printf("  route errors handled:   %.0f accepted, %.0f routes invalidated\n",
		res.Metric("rerr.accepted"), res.Metric("route.invalidated"))
	fmt.Printf("  route discoveries:      %.0f attempts, %.0f installs\n",
		res.Metric("discovery.attempts"), res.Metric("route.installed"))
	fmt.Printf("  control overhead:       %.0f bytes (%.1f%% of all bytes)\n",
		res.ControlBytes, 100*res.ControlBytes/(res.ControlBytes+res.DataBytes))
	fmt.Printf("  signatures/verifies:    %.0f / %.0f\n", res.CryptoSign, res.CryptoVerify)
	for fi, fr := range res.PerFlow {
		fmt.Printf("  flow %d: %d/%d delivered\n", fi, fr.Delivered, fr.Sent)
	}
}
