// Nameserver: the paper's public-server scenario (Section 3.2).
//
// An outdoor event runs a public web server whose (name, address) binding
// was placed at the DNS before the network formed — so impersonating it is
// impossible. A client securely resolves the name and talks to the server.
// An attacker then tries two takeovers: answering lookups with a forged
// DNS reply, and re-binding the server's name to its own address via the
// challenge-based update protocol. Both fail. Finally the REAL server
// moves to a fresh CGA address and re-binds legitimately, proving it holds
// the key behind both the old and new addresses.
//
// Run with: go run ./examples/nameserver
package main

import (
	"fmt"
	"log"
	"time"

	"sbr6/internal/dnssrv"
	"sbr6/internal/geom"
	"sbr6/internal/ipv6"
	"sbr6/internal/scenario"
	"sbr6/internal/wire"
)

func main() {
	cfg := scenario.DefaultConfig()
	cfg.Seed = 3
	cfg.N = 6
	cfg.Placement = scenario.PlaceLine
	cfg.Area = geom.Rect{W: 1200, H: 10}
	cfg.Protocol.DAD.Timeout = 500 * time.Millisecond
	cfg.DNS.CommitDelay = 500 * time.Millisecond
	cfg.Names = map[int]string{2: "shop.event"} // node 2 runs the server
	cfg.Preload = map[string]int{"www.event": 2}

	sc, err := scenario.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sc.Bootstrap()
	sc.S.RunFor(time.Second)
	server, client, attacker := sc.Nodes[2], sc.Nodes[4], sc.Nodes[3]

	// 1. Secure lookup of the pre-provisioned name.
	var serverAddr ipv6.Addr
	client.Resolve("www.event", func(a ipv6.Addr, ok bool) {
		if !ok {
			log.Fatal("resolve failed")
		}
		serverAddr = a
	})
	sc.S.RunFor(5 * time.Second)
	fmt.Printf("client resolved www.event -> %s (matches server: %v)\n",
		serverAddr, serverAddr == server.Addr())

	// 2. Client talks to the server over a verified route.
	served := 0
	server.OnData = func(src ipv6.Addr, d *wire.Data) { served++ }
	for i := 0; i < 3; i++ {
		sc.S.After(time.Duration(i)*200*time.Millisecond, func() {
			client.SendData(serverAddr, []byte("GET /"))
		})
	}
	sc.S.RunFor(4 * time.Second)
	fmt.Printf("server handled %d/3 requests\n", served)

	// 3. Attack A: the attacker tries to hijack the binding through the
	// challenge-based update protocol. It cannot present a key whose CGA
	// matches the server's address, so the DNS refuses.
	chal := sc.DNSSrv.HandleUpdateReq(&wire.UpdateReq{Name: "www.event"})
	forged := &wire.Update{
		Name:  "www.event",
		OldIP: server.Addr(),
		NewIP: attacker.Addr(),
		Rn:    attacker.Identity().Rn,
		NewRn: attacker.Identity().Rn,
		PK:    attacker.Identity().Pub.Bytes(),
		Sig:   attacker.Identity().Sign(wire.SigUpdate(server.Addr(), attacker.Addr(), chal.Ch)),
	}
	verdict := sc.DNSSrv.HandleUpdate(forged)
	fmt.Printf("attacker re-binding attempt accepted: %v\n", verdict.OK)

	// 4. Attack B is structural: a forged DNS answer cannot carry the DNS
	// signature over the client's challenge, as the S1 experiment measures
	// network-wide. Here we just show the local check.
	fake := &wire.DNSAnswer{Name: "www.event", IP: attacker.Addr(), Found: true,
		Sig: attacker.Identity().Sign(wire.SigDNSAnswer("www.event", attacker.Addr(), true, 99))}
	fmt.Printf("forged DNS answer validates: %v\n",
		dnssrv.ValidateAnswer(fake, sc.DNSSrv.PublicKey(), 99))

	// 5. The real server moves to a fresh address and re-binds — allowed,
	// because it proves ownership of the key behind both addresses.
	oldAddr := server.Addr()
	var rebound bool
	server.RebindAddress(func(ok bool) { rebound = ok })
	sc.S.RunFor(8 * time.Second)
	newAddr, _ := sc.DNSSrv.Lookup("shop.event")
	fmt.Printf("server re-bound %s -> %s (ok=%v, address changed=%v)\n",
		oldAddr, server.Addr(), rebound, server.Addr() != oldAddr && newAddr == server.Addr())
}
