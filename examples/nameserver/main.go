// Nameserver: the paper's public-server scenario (Section 3.2).
//
// An outdoor event runs a public web server whose (name, address) binding
// was placed at the DNS before the network formed — so impersonating it is
// impossible. A client securely resolves the name and talks to the server.
// An attacker then tries two takeovers: answering lookups with a forged
// DNS reply, and re-binding the server's name to its own address via the
// challenge-based update protocol. Both fail. Finally the REAL server
// moves to a fresh CGA address and re-binds legitimately, proving it holds
// the key behind both the old and new addresses.
//
// The scenario itself is declared and driven through the public facade;
// the hand-forged protocol messages at the end reach into internal
// packages, which only in-repo code can do.
//
// Run with: go run ./examples/nameserver
package main

import (
	"fmt"
	"log"
	"time"

	"sbr6"
	"sbr6/internal/dnssrv"
	"sbr6/internal/wire"
)

func main() {
	sc, err := sbr6.NewScenario(
		sbr6.WithSeed(3),
		sbr6.WithNodes(6),
		sbr6.WithPlacement(sbr6.PlaceLine),
		sbr6.WithDADTimeout(500*time.Millisecond),
		sbr6.WithDNSCommitDelay(500*time.Millisecond),
		sbr6.WithName(2, "shop.event"), // node 2 runs the server
		sbr6.WithPreload("www.event", 2),
	)
	if err != nil {
		log.Fatal(err)
	}
	nw, err := sc.Build()
	if err != nil {
		log.Fatal(err)
	}
	nw.Bootstrap()
	nw.RunFor(time.Second)
	server, client, attacker := nw.Node(2), nw.Node(4), nw.Node(3)

	// 1. Secure lookup of the pre-provisioned name.
	var serverAddr sbr6.Addr
	client.Resolve("www.event", func(a sbr6.Addr, ok bool) {
		if !ok {
			log.Fatal("resolve failed")
		}
		serverAddr = a
	})
	nw.RunFor(5 * time.Second)
	fmt.Printf("client resolved www.event -> %s (matches server: %v)\n",
		serverAddr, serverAddr == server.Addr())

	// 2. Client talks to the server over a verified route.
	served := 0
	server.OnData(func(src sbr6.Addr, payload []byte) { served++ })
	for i := 0; i < 3; i++ {
		client.SendData(serverAddr, []byte("GET /"))
		nw.RunFor(200 * time.Millisecond)
	}
	nw.RunFor(4 * time.Second)
	fmt.Printf("server handled %d/3 requests\n", served)

	// 3. Attack A: the attacker tries to hijack the binding through the
	// challenge-based update protocol. It cannot present a key whose CGA
	// matches the server's address, so the DNS refuses.
	atkIdent := attacker.Unwrap().Identity()
	chal := nw.DNSServer().HandleUpdateReq(&wire.UpdateReq{Name: "www.event"})
	forged := &wire.Update{
		Name:  "www.event",
		OldIP: server.Addr(),
		NewIP: attacker.Addr(),
		Rn:    atkIdent.Rn,
		NewRn: atkIdent.Rn,
		PK:    atkIdent.Pub.Bytes(),
		Sig:   atkIdent.Sign(wire.SigUpdate(server.Addr(), attacker.Addr(), chal.Ch)),
	}
	verdict := nw.DNSServer().HandleUpdate(forged)
	fmt.Printf("attacker re-binding attempt accepted: %v\n", verdict.OK)

	// 4. Attack B is structural: a forged DNS answer cannot carry the DNS
	// signature over the client's challenge, as the S1 experiment measures
	// network-wide. Here we just show the local check.
	fake := &wire.DNSAnswer{Name: "www.event", IP: attacker.Addr(), Found: true,
		Sig: atkIdent.Sign(wire.SigDNSAnswer("www.event", attacker.Addr(), true, 99))}
	fmt.Printf("forged DNS answer validates: %v\n",
		dnssrv.ValidateAnswer(fake, nw.DNSServer().PublicKey(), 99))

	// 5. The real server moves to a fresh address and re-binds — allowed,
	// because it proves ownership of the key behind both addresses.
	oldAddr := server.Addr()
	var rebound bool
	server.RebindAddress(func(ok bool) { rebound = ok })
	nw.RunFor(8 * time.Second)
	newAddr, _ := nw.DNSServer().Lookup("shop.event")
	fmt.Printf("server re-bound %s -> %s (ok=%v, address changed=%v)\n",
		oldAddr, server.Addr(), rebound, server.Addr() != oldAddr && newAddr == server.Addr())
}
