// Quickstart: the smallest end-to-end use of the library.
//
// It builds a five-node chain (node 0 is the DNS server), bootstraps every
// node through secure duplicate address detection, registers a domain name,
// resolves it through the in-MANET DNS, and delivers a few data packets
// over a securely discovered multi-hop route.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"sbr6/internal/geom"
	"sbr6/internal/ipv6"
	"sbr6/internal/scenario"
	"sbr6/internal/wire"
)

func main() {
	cfg := scenario.DefaultConfig()
	cfg.N = 5
	cfg.Placement = scenario.PlaceLine // dns - n1 - n2 - n3 - n4, 200 m apart
	cfg.Area = geom.Rect{W: 1000, H: 10}
	cfg.Protocol.DAD.Timeout = 500 * time.Millisecond
	cfg.DNS.CommitDelay = 500 * time.Millisecond
	cfg.Names = map[int]string{4: "sensor-hub"} // node 4 registers a name

	sc, err := scenario.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: secure bootstrap. Every node floods an AREQ, waits for
	// objections, and ends up with a unique CGA-bound site-local address.
	configured := sc.Bootstrap()
	fmt.Printf("bootstrap: %d/%d nodes configured\n", configured, cfg.N)
	for i, n := range sc.Nodes {
		fmt.Printf("  node %d: %-28s name=%q\n", i, n.Addr(), n.Name())
	}

	// Phase 2: resolve the hub's name with a challenge-bound signed lookup.
	sc.S.RunFor(time.Second) // let the registration commit
	var hub ipv6.Addr
	sc.Nodes[1].Resolve("sensor-hub", func(a ipv6.Addr, ok bool) {
		if !ok {
			log.Fatal("resolve failed")
		}
		hub = a
	})
	sc.S.RunFor(5 * time.Second)
	fmt.Printf("resolved sensor-hub -> %s (signed by the DNS, bound to our challenge)\n", hub)

	// Phase 3: send data. Route discovery carries per-hop signed identity
	// attestations; the destination verifies every hop before answering.
	received := 0
	sc.Nodes[4].OnData = func(src ipv6.Addr, d *wire.Data) {
		received++
		fmt.Printf("  hub got %q from %s\n", d.Payload, src)
	}
	for i := 0; i < 3; i++ {
		msg := fmt.Sprintf("reading-%d", i)
		sc.S.After(time.Duration(i)*300*time.Millisecond, func() {
			sc.Nodes[1].SendData(hub, []byte(msg))
		})
	}
	sc.S.RunFor(5 * time.Second)

	relays, _ := sc.Nodes[1].RouteTo(hub)
	fmt.Printf("delivered %d/3 over a %d-hop verified route\n", received, len(relays)+1)
	fmt.Printf("crypto: %0.f signatures, %0.f verifications across the network\n",
		total(sc, "crypto.sign"), total(sc, "crypto.verify"))
}

func total(sc *scenario.Scenario, counter string) float64 {
	sum := 0.0
	for _, n := range sc.Nodes {
		sum += n.Metrics().Get(counter)
	}
	return sum
}
