// Quickstart: the smallest end-to-end use of the library.
//
// It declares a five-node chain with the functional-options builder (node
// 0 is the DNS server, the network's trust anchor), bootstraps every node
// through secure duplicate address detection, registers a domain name,
// resolves it through the in-MANET DNS, and delivers a few data packets
// over a securely discovered multi-hop route.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"sbr6"
)

func main() {
	sc, err := sbr6.NewScenario(
		sbr6.WithNodes(5),
		sbr6.WithPlacement(sbr6.PlaceLine), // dns - n1 - n2 - n3 - n4, 200 m apart
		sbr6.WithDADTimeout(500*time.Millisecond),
		sbr6.WithDNSCommitDelay(500*time.Millisecond),
		sbr6.WithName(4, "sensor-hub"), // node 4 registers a name
	)
	if err != nil {
		log.Fatal(err)
	}
	nw, err := sc.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: secure bootstrap. Every node floods an AREQ, waits for
	// objections, and ends up with a unique CGA-bound site-local address.
	configured := nw.Bootstrap()
	fmt.Printf("bootstrap: %d/%d nodes configured\n", configured, nw.Size())
	for i := 0; i < nw.Size(); i++ {
		n := nw.Node(i)
		fmt.Printf("  node %d: %-28s name=%q\n", i, n.Addr(), n.Name())
	}

	// Phase 2: resolve the hub's name with a challenge-bound signed lookup.
	nw.RunFor(time.Second) // let the registration commit
	var hub sbr6.Addr
	nw.Node(1).Resolve("sensor-hub", func(a sbr6.Addr, ok bool) {
		if !ok {
			log.Fatal("resolve failed")
		}
		hub = a
	})
	nw.RunFor(5 * time.Second)
	fmt.Printf("resolved sensor-hub -> %s (signed by the DNS, bound to our challenge)\n", hub)

	// Phase 3: send data. Route discovery carries per-hop signed identity
	// attestations; the destination verifies every hop before answering.
	received := 0
	nw.Node(4).OnData(func(src sbr6.Addr, payload []byte) {
		received++
		fmt.Printf("  hub got %q from %s\n", payload, src)
	})
	for i := 0; i < 3; i++ {
		nw.Node(1).SendData(hub, []byte(fmt.Sprintf("reading-%d", i)))
		nw.RunFor(300 * time.Millisecond)
	}
	nw.RunFor(5 * time.Second)

	relays, _ := nw.Node(1).Route(hub)
	fmt.Printf("delivered %d/3 over a %d-hop verified route\n", received, relays+1)
	fmt.Printf("crypto: %.0f signatures, %.0f verifications across the network\n",
		nw.Metric("crypto.sign"), nw.Metric("crypto.verify"))
}
