package sbr6

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"sbr6/internal/bindtable"
	"sbr6/internal/boot"
	"sbr6/internal/core"
	"sbr6/internal/geom"
	"sbr6/internal/identity"
	"sbr6/internal/radio"
	"sbr6/internal/scenario"
	"sbr6/internal/verifycache"
)

// ErrOption is wrapped by every error NewScenario returns for an invalid
// option or an inconsistent combination of options.
var ErrOption = errors.New("sbr6: invalid option")

// Placement selects how nodes are laid out in the area.
type Placement int

// Placement kinds. Node 0 — the DNS server and trust anchor — is placed
// like every other node.
const (
	PlaceUniform Placement = iota // uniform random inside the area
	PlaceGrid                     // centred grid cells; area auto-sizes to 200 m cells when unset
	PlaceLine                     // horizontal chain, Spacing metres apart
)

// MediumIndex selects the neighbor-index implementation of the radio
// medium. Every kind produces byte-for-byte identical per-seed results;
// the choice only trades query cost against bookkeeping, so it normally
// stays on MediumAuto. WithMediumIndex is the escape hatch for forcing one
// side, e.g. to benchmark the naive scan against the spatial grid.
type MediumIndex int

// Medium index kinds.
const (
	MediumAuto  MediumIndex = iota // linear scan below ~64 nodes, grid above
	MediumNaive                    // always the O(N) linear port scan
	MediumGrid                     // always the spatial hash grid
)

// BootPolicy selects the bootstrap admission policy: how DAD starts are
// spread out during network formation. Every policy forms the same network
// — all nodes addressed, addresses unique, duplicate claims detected with
// identical counters (the formation conformance suite in internal/boot is
// the proof) — the choice only trades formation time against how
// conservatively claims are serialized.
type BootPolicy int

// Bootstrap admission policies.
const (
	// BootSerial starts node i at i times the boot stagger — the
	// historical global serialization. Formation time is linear in the
	// node count.
	BootSerial BootPolicy = iota
	// BootPerCell staggers only claimants sharing a radio-range grid cell;
	// disjoint neighborhoods bootstrap concurrently, so formation time
	// scales with cell occupancy instead of N.
	BootPerCell
)

// Suite selects the signature algorithm of the secure protocol.
type Suite int

// Supported signature suites.
const (
	Ed25519 Suite = iota
	RSA1024
)

func (s Suite) internal() (identity.Suite, error) {
	switch s {
	case Ed25519:
		return identity.SuiteEd25519, nil
	case RSA1024:
		return identity.SuiteRSA1024, nil
	default:
		return 0, fmt.Errorf("unknown signature suite %d: %w", s, ErrOption)
	}
}

// Mobility describes node motion. The zero value keeps nodes static; by
// default motion is random waypoint, with Walk switching to a bounded
// random walk (direction re-drawn every Epoch at MaxSpeed).
type Mobility struct {
	MinSpeed float64       // m/s (waypoint only)
	MaxSpeed float64       // m/s
	Pause    time.Duration // waypoint pause at each destination
	Walk     bool          // bounded random walk instead of waypoint
	Epoch    time.Duration // walk leg length (default 10s)
}

// Radio parameterizes the shared wireless medium.
type Radio struct {
	Range           float64       // unit-disk reception radius in metres
	BitrateBps      float64       // transmission serialization rate; <=0 means instantaneous
	LossRate        float64       // independent per-receiver frame loss probability [0,1)
	PropDelay       time.Duration // fixed propagation + processing latency
	BroadcastJitter time.Duration // uniform random delay before any transmission
	UnicastRetries  int           // link-layer retransmissions after a missing ACK
}

// DefaultRadio mimics a 2 Mb/s 802.11-style radio with a 250 m range.
func DefaultRadio() Radio {
	d := radio.DefaultConfig()
	return Radio{
		Range:           d.Range,
		BitrateBps:      d.BitrateBps,
		LossRate:        d.LossRate,
		PropDelay:       d.PropDelay,
		BroadcastJitter: d.BroadcastJitter,
		UnicastRetries:  d.UnicastRetries,
	}
}

// Flow is a constant-bit-rate traffic source running through the
// measurement window.
type Flow struct {
	From, To int           // node indices; distinct, inside [0, nodes)
	Interval time.Duration // inter-packet gap, must be positive
	Size     int           // payload bytes
	Start    time.Duration // offset into the measurement window
}

// TapEvent is one packet reception observed by a packet tap.
type TapEvent struct {
	Node int           // receiving node index
	At   time.Duration // virtual time of the reception
	Desc string        // rendered packet summary
}

// Scenario is a validated, immutable experiment declaration. Build one
// with NewScenario, then execute it with a Runner (one or many seeds) or
// instantiate it interactively with Build.
type Scenario struct {
	cfg     scenario.Config
	areaSet bool
	advs    []Adversary
	obs     []Observer // scenario-level observers, merged with the Runner's
	tap     func(TapEvent)
	tapMu   sync.Mutex // serializes tap delivery across batch workers
}

// emitTap delivers one tap event under the scenario's lock, so a tap
// shared by parallel batch replicates never races.
func (s *Scenario) emitTap(ev TapEvent) {
	s.tapMu.Lock()
	defer s.tapMu.Unlock()
	s.tap(ev)
}

// Option configures a Scenario under construction. Options validate
// eagerly: a bad value surfaces from NewScenario as a descriptive error
// wrapping ErrOption instead of a panic mid-run.
type Option func(*Scenario) error

// NewScenario validates opts eagerly and compiles them into an executable
// scenario. Defaults (before any option): 25 static nodes on a uniform
// 1000x1000 m area, the secure protocol with every defense enabled, the
// default radio, seed 1, a 2 s warmup, 30 s measurement window and 5 s
// cooldown, and no traffic flows. Node 0 is always the DNS server, the
// network's single trust anchor.
func NewScenario(opts ...Option) (*Scenario, error) {
	base := scenario.DefaultConfig()
	base.Flows = nil
	s := &Scenario{cfg: base}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("nil option: %w", ErrOption)
		}
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	if !s.areaSet && s.cfg.Placement == scenario.PlaceGrid {
		side := gridSide(s.cfg.N)
		s.cfg.Area = geom.Rect{W: 200 * float64(side), H: 200 * float64(side)}
	}
	return s, nil
}

// validate runs the cross-field checks that need every option applied.
// The checks shared with the internal harness (node count, flows, names,
// preloads) live in scenario.Validate so the two layers cannot drift;
// only the adversary checks are facade concepts validated here.
func (s *Scenario) validate() error {
	cfg := s.cfg
	if err := scenario.Validate(cfg); err != nil {
		return fmt.Errorf("%w: %w", ErrOption, err)
	}
	seen := map[int]string{}
	for _, a := range s.advs {
		if a.build == nil {
			return fmt.Errorf("WithAdversaries: zero-value Adversary (use a constructor): %w", ErrOption)
		}
		if a.node <= 0 || a.node >= cfg.N {
			return fmt.Errorf("WithAdversaries: %s at node %d outside [1,%d) (node 0 is the DNS anchor): %w",
				a.kind, a.node, cfg.N, ErrOption)
		}
		if prev, dup := seen[a.node]; dup {
			return fmt.Errorf("WithAdversaries: node %d assigned both %s and %s: %w", a.node, prev, a.kind, ErrOption)
		}
		seen[a.node] = a.kind
		if a.victim != 0 && (a.victim < 0 || a.victim >= cfg.N || a.victim == a.node) {
			return fmt.Errorf("WithAdversaries: %s at node %d has invalid victim %d: %w", a.kind, a.node, a.victim, ErrOption)
		}
	}
	return nil
}

// finitePos reports whether x is a finite, strictly positive number —
// what every metres/speed option requires. NaN and ±Inf pass ordinary
// comparisons in surprising ways, so the options check explicitly.
func finitePos(x float64) bool {
	return x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x)
}

func gridSide(n int) int {
	side := 1
	for side*side < n {
		side++
	}
	return side
}

// WithSeed sets the default seed used by Run and Build. RunBatch overrides
// it per replicate.
func WithSeed(seed int64) Option {
	return func(s *Scenario) error {
		s.cfg.Seed = seed
		return nil
	}
}

// WithNodes sets the node count, including the DNS server at index 0.
func WithNodes(n int) Option {
	return func(s *Scenario) error {
		if n < 2 {
			return fmt.Errorf("WithNodes(%d): need at least 2 nodes: %w", n, ErrOption)
		}
		s.cfg.N = n
		return nil
	}
}

// WithArea sets the deployment area in metres. Without it, grid placement
// auto-sizes to 200 m cells and the other placements keep 1000x1000 m.
func WithArea(w, h float64) Option {
	return func(s *Scenario) error {
		if !finitePos(w) || !finitePos(h) {
			return fmt.Errorf("WithArea(%g, %g): dimensions must be positive and finite: %w", w, h, ErrOption)
		}
		s.cfg.Area = geom.Rect{W: w, H: h}
		s.areaSet = true
		return nil
	}
}

// WithPlacement selects the node layout.
func WithPlacement(p Placement) Option {
	return func(s *Scenario) error {
		switch p {
		case PlaceUniform:
			s.cfg.Placement = scenario.PlaceUniform
		case PlaceGrid:
			s.cfg.Placement = scenario.PlaceGrid
		case PlaceLine:
			s.cfg.Placement = scenario.PlaceLine
		default:
			return fmt.Errorf("WithPlacement(%d): unknown placement: %w", p, ErrOption)
		}
		return nil
	}
}

// WithSpacing sets the inter-node distance for PlaceLine (default 200 m).
func WithSpacing(metres float64) Option {
	return func(s *Scenario) error {
		if !finitePos(metres) {
			return fmt.Errorf("WithSpacing(%g): must be positive and finite: %w", metres, ErrOption)
		}
		s.cfg.Spacing = metres
		return nil
	}
}

// WithMobility puts every node under motion: random waypoint by default,
// bounded random walk when Walk is set.
func WithMobility(m Mobility) Option {
	return func(s *Scenario) error {
		if m.MinSpeed < 0 || !finitePos(m.MaxSpeed) || m.MinSpeed > m.MaxSpeed || math.IsNaN(m.MinSpeed) {
			return fmt.Errorf("WithMobility: speeds [%g, %g] m/s invalid: %w", m.MinSpeed, m.MaxSpeed, ErrOption)
		}
		if m.Pause < 0 {
			return fmt.Errorf("WithMobility: negative pause %v: %w", m.Pause, ErrOption)
		}
		if m.Epoch < 0 {
			return fmt.Errorf("WithMobility: negative walk epoch %v: %w", m.Epoch, ErrOption)
		}
		s.cfg.Mobility = scenario.MobilitySpec{
			Waypoint: !m.Walk, Walk: m.Walk,
			MinSpeed: m.MinSpeed, MaxSpeed: m.MaxSpeed,
			Pause: m.Pause, Epoch: m.Epoch,
		}
		return nil
	}
}

// WithRadio replaces the radio model. Zero Range falls back to 250 m.
func WithRadio(r Radio) Option {
	return func(s *Scenario) error {
		if r.LossRate < 0 || r.LossRate >= 1 || math.IsNaN(r.LossRate) {
			return fmt.Errorf("WithRadio: loss rate %g outside [0,1): %w", r.LossRate, ErrOption)
		}
		if r.Range < 0 || math.IsInf(r.Range, 0) || math.IsNaN(r.Range) {
			return fmt.Errorf("WithRadio: range %g must be finite and not negative: %w", r.Range, ErrOption)
		}
		s.cfg.Radio = radio.Config{
			Range:           r.Range,
			BitrateBps:      r.BitrateBps,
			LossRate:        r.LossRate,
			PropDelay:       r.PropDelay,
			BroadcastJitter: r.BroadcastJitter,
			MaxQueueDelay:   s.cfg.Radio.MaxQueueDelay,
			UnicastRetries:  r.UnicastRetries,
			// Orthogonal knobs with their own options survive a radio swap.
			Index:        s.cfg.Radio.Index,
			FramePool:    s.cfg.Radio.FramePool,
			PoisonFrames: s.cfg.Radio.PoisonFrames,
		}
		return nil
	}
}

// WithFramePool toggles the pooled zero-alloc wire path: size-class frame
// buffers recycled per medium, one shared encoded frame per broadcast, and
// recycled transmit/delivery event state. It is on by default — the pooled
// path is proven byte-for-byte result-identical to the allocating one —
// and exists mainly so benchmarks and differential tests can measure the
// unpooled baseline.
func WithFramePool(on bool) Option {
	return func(s *Scenario) error {
		s.cfg.Radio.FramePool = on
		return nil
	}
}

// WithMediumIndex forces the radio medium's neighbor-index implementation.
// The default (MediumAuto) picks the spatial grid automatically once the
// network is large enough; per-seed results are identical either way.
func WithMediumIndex(k MediumIndex) Option {
	return func(s *Scenario) error {
		switch k {
		case MediumAuto:
			s.cfg.Radio.Index = radio.IndexAuto
		case MediumNaive:
			s.cfg.Radio.Index = radio.IndexNaive
		case MediumGrid:
			s.cfg.Radio.Index = radio.IndexGrid
		default:
			return fmt.Errorf("WithMediumIndex(%d): unknown index kind: %w", k, ErrOption)
		}
		return nil
	}
}

// WithBootStagger sets the delay between DAD starts the admission policy
// must keep apart: consecutive nodes under BootSerial, same-cell claimants
// under BootPerCell. The default — the DAD timeout plus a margin — is
// safest but makes the serial policy's bootstrap time linear in the node
// count; thousand-node serial scenarios want a much smaller stagger and
// tolerate the extra DAD contention. (BootPerCell never separates
// conflicting claims by less than the objection window, whatever the
// stagger.)
func WithBootStagger(d time.Duration) Option {
	return func(s *Scenario) error {
		if d <= 0 {
			return fmt.Errorf("WithBootStagger(%v): must be positive: %w", d, ErrOption)
		}
		s.cfg.BootStagger = d
		return nil
	}
}

// WithBootCellFraction sets the per-cell admission bucket side as a
// fraction of the radio range (default boot.DefaultCellFraction = 0.25),
// replacing what used to be a compiled constant. Sparse networks widen the
// protected radius essentially for free; the fraction is capped at
// 1/sqrt(2), past which the bucket diagonal exceeds one radio range and
// two same-bucket claimants would no longer be guaranteed direct radio
// reach — the invariant BootPerCell's detection argument rests on. Only
// meaningful under BootPerCell.
func WithBootCellFraction(f float64) Option {
	return func(s *Scenario) error {
		if !finitePos(f) || f > boot.MaxCellFraction {
			return fmt.Errorf("WithBootCellFraction(%g): need a fraction in (0, %g]: %w", f, boot.MaxCellFraction, ErrOption)
		}
		s.cfg.BootCellFraction = f
		return nil
	}
}

// WithAuditSweep enables the post-formation address audit sweep: every
// configured node re-advertises its signed CGA address binding once per
// period (phase-staggered by a seed-stable hash so sweeps never
// synchronize), any node holding a conflicting binding raises a signed
// objection, and the conflict resolves deterministically — the binding
// with the lower CGA digest rekeys and re-runs DAD; bit-identical bindings
// (a cloned identity) make both sides rekey. The sweep closes the two
// duplicate-address windows one-shot DAD cannot see: simultaneous claims
// from different admission cells, and partition merges where both
// claimants configured before ever sharing a radio. Disabled by default;
// disabling it is a provable no-op (byte-identical runs).
func WithAuditSweep(period time.Duration) Option {
	return func(s *Scenario) error {
		if period <= 0 {
			return fmt.Errorf("WithAuditSweep(%v): period must be positive: %w", period, ErrOption)
		}
		s.cfg.Protocol.Audit.Period = period
		return nil
	}
}

// WithBootPolicy selects the bootstrap admission policy. The default,
// BootSerial, is the historical global stagger; BootPerCell bootstraps
// spatially disjoint grid cells concurrently and cuts large-network
// formation time from O(N) to O(max cell occupancy) staggers while keeping
// same-cell claims at least one objection window apart.
func WithBootPolicy(p BootPolicy) Option {
	return func(s *Scenario) error {
		switch p {
		case BootSerial:
			s.cfg.Boot = boot.Serial
		case BootPerCell:
			s.cfg.Boot = boot.PerCell
		default:
			return fmt.Errorf("WithBootPolicy(%d): unknown policy: %w", p, ErrOption)
		}
		return nil
	}
}

// WithRadioRange overrides just the reception radius in metres.
func WithRadioRange(metres float64) Option {
	return func(s *Scenario) error {
		if !finitePos(metres) {
			return fmt.Errorf("WithRadioRange(%g): must be positive and finite: %w", metres, ErrOption)
		}
		s.cfg.Radio.Range = metres
		return nil
	}
}

// WithLoss overrides just the per-receiver frame loss probability.
func WithLoss(p float64) Option {
	return func(s *Scenario) error {
		if p < 0 || p >= 1 || math.IsNaN(p) {
			return fmt.Errorf("WithLoss(%g): outside [0,1): %w", p, ErrOption)
		}
		s.cfg.Radio.LossRate = p
		return nil
	}
}

// WithFlows declares the constant-bit-rate traffic of the measurement
// window, replacing any previously declared flows. Node-index range
// checks wait for the final node count; everything else validates here.
func WithFlows(flows ...Flow) Option {
	return func(s *Scenario) error {
		s.cfg.Flows = s.cfg.Flows[:0]
		for i, f := range flows {
			switch {
			case f.From < 0 || f.To < 0:
				return fmt.Errorf("WithFlows: flow %d: negative node index (From=%d To=%d): %w", i, f.From, f.To, ErrOption)
			case f.From == f.To:
				return fmt.Errorf("WithFlows: flow %d: From and To are both %d: %w", i, f.From, ErrOption)
			case f.Interval <= 0:
				return fmt.Errorf("WithFlows: flow %d: non-positive interval %v: %w", i, f.Interval, ErrOption)
			case f.Size < 0:
				return fmt.Errorf("WithFlows: flow %d: negative payload size %d: %w", i, f.Size, ErrOption)
			case f.Start < 0:
				return fmt.Errorf("WithFlows: flow %d: negative start offset %v: %w", i, f.Start, ErrOption)
			}
			s.cfg.Flows = append(s.cfg.Flows, scenario.Flow{
				From: f.From, To: f.To, Interval: f.Interval, Size: f.Size, Start: f.Start,
			})
		}
		return nil
	}
}

// WithSecure selects the paper's full secure protocol (CGA autoconf,
// per-hop attestations, credits). This is the default.
func WithSecure() Option {
	return func(s *Scenario) error {
		tuned := s.cfg.Protocol
		s.cfg.Protocol = core.DefaultConfig()
		s.cfg.Protocol.Suite = tuned.Suite
		restoreTimers(&s.cfg.Protocol, tuned)
		return nil
	}
}

// WithBaseline selects plain DSR with no defenses, the paper's comparison
// point.
func WithBaseline() Option {
	return func(s *Scenario) error {
		tuned := s.cfg.Protocol
		s.cfg.Protocol = core.BaselineConfig()
		restoreTimers(&s.cfg.Protocol, tuned)
		return nil
	}
}

// restoreTimers keeps previously applied timer options (WithFastTimers,
// WithDADTimeout, WithAuditSweep) stable across a later
// WithSecure/WithBaseline.
func restoreTimers(dst *core.Config, src core.Config) {
	dst.DAD.Timeout = src.DAD.Timeout
	dst.DiscoveryTimeout = src.DiscoveryTimeout
	dst.AckTimeout = src.AckTimeout
	dst.ResolveTimeout = src.ResolveTimeout
	dst.Audit = src.Audit
}

// WithCredits toggles the credit mechanism and its loss-probing (Section
// 3.4 defenses against insider black holes). Only meaningful in secure
// mode.
func WithCredits(on bool) Option {
	return func(s *Scenario) error {
		s.cfg.Protocol.UseCredits = on
		s.cfg.Protocol.ProbeOnLoss = on
		return nil
	}
}

// WithRouteCache toggles cached-route replies (CREP) and source-side route
// reuse.
func WithRouteCache(on bool) Option {
	return func(s *Scenario) error {
		s.cfg.Protocol.UseCache = on
		return nil
	}
}

// DefaultVerifyCacheEntries is the per-node memoized-verification cache
// bound applied when WithVerifyCache is not used.
const DefaultVerifyCacheEntries = verifycache.DefaultEntries

// WithVerifyCache bounds the per-node memoized-verification cache: CGA
// bindings, signature checks and whole route-record chains are cached
// under content digests so identical checks are never recomputed. The
// cache is on by default (DefaultVerifyCacheEntries); entries <= 0
// disables memoization entirely — the configuration the differential
// suite compares against. Per-seed results are byte-for-byte identical
// either way; only the number of primitive crypto operations changes.
func WithVerifyCache(entries int) Option {
	return func(s *Scenario) error {
		if entries > 0 {
			s.cfg.Protocol.VerifyCache = entries
		} else {
			s.cfg.Protocol.VerifyCache = -1
		}
		return nil
	}
}

// DefaultBindTableEntries is the shared CGA-binding table bound applied
// when WithBindingTable is not used.
const DefaultBindTableEntries = bindtable.DefaultEntries

// WithBindingTable bounds the shared read-mostly CGA-binding table that
// dedups verification of the same (addr, pk, rn) binding across nodes —
// one table per simulation, or one per region under WithShards so it
// stays local to each region's event loop. It sits beneath the per-node
// verify cache: a node's first check of a binding is served from the
// table whenever any node on the same event loop already computed it.
// The table is on by default (DefaultBindTableEntries); entries <= 0
// disables cross-node sharing — the configuration the differential
// suite compares against. Per-seed results are byte-for-byte identical
// either way; only the number of primitive CGA computations changes.
func WithBindingTable(entries int) Option {
	return func(s *Scenario) error {
		if entries > 0 {
			s.cfg.Protocol.BindTable = entries
		} else {
			s.cfg.Protocol.BindTable = -1
		}
		return nil
	}
}

// WithSuite selects the signature suite of the secure protocol.
func WithSuite(suite Suite) Option {
	return func(s *Scenario) error {
		is, err := suite.internal()
		if err != nil {
			return fmt.Errorf("WithSuite: %w", err)
		}
		s.cfg.Protocol.Suite = is
		return nil
	}
}

// WithRERRThreshold sets how many route errors within the spam window flag
// a reporter as a suspected RERR spammer.
func WithRERRThreshold(n int) Option {
	return func(s *Scenario) error {
		if n < 1 {
			return fmt.Errorf("WithRERRThreshold(%d): must be at least 1: %w", n, ErrOption)
		}
		s.cfg.Protocol.RERRThreshold = n
		return nil
	}
}

// WithAdversaries places adversarial behaviors on nodes, appending to any
// already declared. Each replicate of a batch gets fresh adversary state.
func WithAdversaries(advs ...Adversary) Option {
	return func(s *Scenario) error {
		for i, a := range advs {
			if a.build == nil {
				return fmt.Errorf("WithAdversaries: adversary %d is a zero-value Adversary (use a constructor): %w", i, ErrOption)
			}
		}
		s.advs = append(s.advs, advs...)
		return nil
	}
}

// WithObserver attaches a streaming Observer to the scenario itself, so
// every execution of it — Runner.Run, Runner.RunBatch — reports progress
// without per-Runner wiring. Scenario observers are merged with the
// Runner's own Observer; each receives every event, and calls are
// serialized across batch workers. May be repeated.
func WithObserver(o Observer) Option {
	return func(s *Scenario) error {
		if o == nil {
			return fmt.Errorf("WithObserver(nil): %w", ErrOption)
		}
		s.obs = append(s.obs, o)
		return nil
	}
}

// WithTap streams every packet reception at honest (non-adversarial) nodes
// to f during the run. It is the low-level packet-trace hook: for run
// progress and per-window statistics use WithObserver (or a Runner's
// Observer) instead. The callback must not mutate simulation state. Calls
// are serialized, so a tap shared by the parallel replicates of a RunBatch
// needs no locking of its own (events from different seeds interleave
// arbitrarily).
func WithTap(f func(TapEvent)) Option {
	return func(s *Scenario) error {
		if f == nil {
			return fmt.Errorf("WithTap(nil): %w", ErrOption)
		}
		s.tap = f
		return nil
	}
}

// WithDuration sets the measurement window length.
func WithDuration(d time.Duration) Option {
	return func(s *Scenario) error {
		if d <= 0 {
			return fmt.Errorf("WithDuration(%v): must be positive: %w", d, ErrOption)
		}
		s.cfg.Duration = d
		return nil
	}
}

// WithWarmup sets the settling period between bootstrap and measurement.
func WithWarmup(d time.Duration) Option {
	return func(s *Scenario) error {
		if d < 0 {
			return fmt.Errorf("WithWarmup(%v): must not be negative: %w", d, ErrOption)
		}
		s.cfg.Warmup = d
		return nil
	}
}

// WithCooldown sets how long in-flight packets may land after the last
// send.
func WithCooldown(d time.Duration) Option {
	return func(s *Scenario) error {
		if d < 0 {
			return fmt.Errorf("WithCooldown(%v): must not be negative: %w", d, ErrOption)
		}
		s.cfg.Cooldown = d
		return nil
	}
}

// WithWindows buckets sent/delivered counts into consecutive windows of
// the given size, enabling per-window streaming to Observers and the
// Windows field of Result.
func WithWindows(size time.Duration) Option {
	return func(s *Scenario) error {
		if size <= 0 {
			return fmt.Errorf("WithWindows(%v): must be positive: %w", size, ErrOption)
		}
		s.cfg.WindowSize = size
		return nil
	}
}

// WithName registers a domain name for a node during its DAD round.
func WithName(node int, name string) Option {
	return func(s *Scenario) error {
		if node < 0 {
			return fmt.Errorf("WithName(%d, %q): negative node index: %w", node, name, ErrOption)
		}
		if name == "" {
			return fmt.Errorf("WithName(%d, \"\"): empty name: %w", node, ErrOption)
		}
		if s.cfg.Names == nil {
			s.cfg.Names = map[int]string{}
		}
		s.cfg.Names[node] = name
		return nil
	}
}

// WithPreload provisions a permanent (name -> node) DNS binding that
// exists before the network forms, the paper's public-server case.
func WithPreload(name string, node int) Option {
	return func(s *Scenario) error {
		if name == "" {
			return fmt.Errorf("WithPreload(\"\", %d): empty name: %w", node, ErrOption)
		}
		if node < 0 {
			return fmt.Errorf("WithPreload(%q, %d): negative node index: %w", name, node, ErrOption)
		}
		if s.cfg.Preload == nil {
			s.cfg.Preload = map[string]int{}
		}
		s.cfg.Preload[name] = node
		return nil
	}
}

// WithDADTimeout sets the duplicate-address-detection objection window.
func WithDADTimeout(d time.Duration) Option {
	return func(s *Scenario) error {
		if d <= 0 {
			return fmt.Errorf("WithDADTimeout(%v): must be positive: %w", d, ErrOption)
		}
		s.cfg.Protocol.DAD.Timeout = d
		return nil
	}
}

// WithDNSCommitDelay sets how long an online DNS registration stays
// pending so warn-objections can cancel it.
func WithDNSCommitDelay(d time.Duration) Option {
	return func(s *Scenario) error {
		if d < 0 {
			return fmt.Errorf("WithDNSCommitDelay(%v): must not be negative: %w", d, ErrOption)
		}
		s.cfg.DNS.CommitDelay = d
		return nil
	}
}

// WithShards runs the scenario on the region-sharded simulation core with n
// regions: the area is cut into x-sorted strips of equal node count, each
// with its own event loop and radio medium, synchronized by conservative
// lookahead derived from the radio propagation delay. Results are
// byte-for-byte identical at every shard count — the differential suite in
// internal/shard is the proof — so the only observable effect of n is
// wall-clock speed on multi-core machines. Sharded runs are however not
// byte-comparable to the historical unsharded path (the default): the
// engine forces content-derived radio randomness in place of the shared
// per-medium RNG stream, so compare sharded runs against WithShards(1), the
// engine's serial baseline.
func WithShards(n int) Option {
	return func(s *Scenario) error {
		if n < 1 {
			return fmt.Errorf("WithShards(%d): need at least 1 region: %w", n, ErrOption)
		}
		s.cfg.Shards = n
		return nil
	}
}

// WithFastTimers shrinks every protocol timer to the values the experiment
// sweeps and benchmarks use, trading DAD robustness for throughput.
func WithFastTimers() Option {
	return func(s *Scenario) error {
		s.cfg.Protocol.DAD.Timeout = 300 * time.Millisecond
		s.cfg.Protocol.DiscoveryTimeout = 500 * time.Millisecond
		s.cfg.Protocol.AckTimeout = 400 * time.Millisecond
		s.cfg.Protocol.ResolveTimeout = 2 * time.Second
		s.cfg.DNS.CommitDelay = 300 * time.Millisecond
		return nil
	}
}

// Seed returns the scenario's default seed.
func (s *Scenario) Seed() int64 { return s.cfg.Seed }

// Nodes returns the node count, including the DNS server.
func (s *Scenario) Nodes() int { return s.cfg.N }

// materialize compiles the declaration into an internal config for one
// seed, instantiating fresh adversary state so replicates never share it.
func (s *Scenario) materialize(seed int64) (scenario.Config, map[int]core.Behavior) {
	cfg := s.cfg
	cfg.Seed = seed
	behaviors := make(map[int]core.Behavior, len(s.advs))
	for _, a := range s.advs {
		behaviors[a.node] = a.build()
	}
	if s.tap != nil {
		for i := 0; i < cfg.N; i++ {
			if _, taken := behaviors[i]; !taken {
				behaviors[i] = &tapBehavior{f: s.emitTap, node: i}
			}
		}
	}
	cfg.Behaviors = behaviors
	return cfg, behaviors
}
