// Package trace collects simulation metrics — counters and sample
// distributions — and formats the result tables the benchmark harness
// prints. Counter names are free-form strings so experiments can define
// their own taxonomy without touching this package.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Metrics accumulates named counters and sample sets. The zero value is not
// usable; call NewMetrics.
type Metrics struct {
	counters map[string]float64
	samples  map[string][]float64
}

// NewMetrics returns an empty metrics sink.
func NewMetrics() *Metrics {
	return &Metrics{counters: make(map[string]float64), samples: make(map[string][]float64)}
}

// Inc adds v to the named counter.
func (m *Metrics) Inc(name string, v float64) { m.counters[name] += v }

// Add1 increments the named counter by one.
func (m *Metrics) Add1(name string) { m.counters[name]++ }

// Get returns the counter's value (zero when never incremented).
func (m *Metrics) Get(name string) float64 { return m.counters[name] }

// Observe appends a sample to the named distribution.
func (m *Metrics) Observe(name string, v float64) {
	m.samples[name] = append(m.samples[name], v)
}

// Count returns the number of samples observed under name.
func (m *Metrics) Count(name string) int { return len(m.samples[name]) }

// Mean returns the mean of the named samples, or NaN when empty.
func (m *Metrics) Mean(name string) float64 {
	s := m.samples[name]
	if len(s) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// Quantile returns the q-quantile (0..1) of the named samples by the
// nearest-rank method, or NaN when empty.
func (m *Metrics) Quantile(name string, q float64) float64 {
	s := m.samples[name]
	if len(s) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), s...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// DrainSamples removes and returns every sample series, leaving the
// counters untouched. Long-lived sessions call it at window barriers so
// sample slices (per-delivery latencies, DAD durations) never accumulate
// across an open-ended run; callers fold the drained slices into bounded
// cumulative aggregates. Each name's slice keeps its observation order,
// and the per-name folds are independent, so consuming the returned map
// in any order is deterministic.
func (m *Metrics) DrainSamples() map[string][]float64 {
	out := m.samples
	m.samples = make(map[string][]float64)
	return out
}

// Merge adds other's counters and samples into m.
func (m *Metrics) Merge(other *Metrics) {
	for k, v := range other.counters {
		m.counters[k] += v
	}
	for k, s := range other.samples {
		m.samples[k] = append(m.samples[k], s...)
	}
}

// CounterNames returns all counter names, sorted.
func (m *Metrics) CounterNames() []string {
	names := make([]string, 0, len(m.counters))
	for k := range m.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// SampleNames returns all sample names, sorted.
func (m *Metrics) SampleNames() []string {
	names := make([]string, 0, len(m.samples))
	for k := range m.samples {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Table is a simple fixed-width text table used by the experiment harness.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; short rows are padded with empty cells.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Addf appends a row of formatted values: each argument is rendered with %v
// except float64, which is rendered compactly.
func (t *Table) Addf(values ...any) {
	cells := make([]string, 0, len(values))
	for _, v := range values {
		switch x := v.(type) {
		case float64:
			cells = append(cells, FormatFloat(x))
		default:
			cells = append(cells, fmt.Sprintf("%v", v))
		}
	}
	t.Add(cells...)
}

// Fprint renders the table to w.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// CSV renders the table as comma-separated values (no quoting; cells are
// numeric or simple identifiers).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// FormatFloat renders a float compactly: integers without decimals,
// otherwise three significant decimals.
func FormatFloat(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}
