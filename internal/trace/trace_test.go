package trace

import (
	"math"
	"strings"
	"testing"
)

func TestCounters(t *testing.T) {
	m := NewMetrics()
	m.Inc("bytes", 10)
	m.Inc("bytes", 5)
	m.Add1("packets")
	if m.Get("bytes") != 15 || m.Get("packets") != 1 {
		t.Fatalf("counters wrong: %v %v", m.Get("bytes"), m.Get("packets"))
	}
	if m.Get("never") != 0 {
		t.Fatal("unknown counter should read zero")
	}
	names := m.CounterNames()
	if len(names) != 2 || names[0] != "bytes" || names[1] != "packets" {
		t.Fatalf("CounterNames = %v", names)
	}
}

func TestSamples(t *testing.T) {
	m := NewMetrics()
	for _, v := range []float64{5, 1, 3, 2, 4} {
		m.Observe("lat", v)
	}
	if m.Count("lat") != 5 {
		t.Fatalf("Count = %d", m.Count("lat"))
	}
	if m.Mean("lat") != 3 {
		t.Fatalf("Mean = %v", m.Mean("lat"))
	}
	if q := m.Quantile("lat", 0.5); q != 3 {
		t.Fatalf("median = %v", q)
	}
	if q := m.Quantile("lat", 1.0); q != 5 {
		t.Fatalf("p100 = %v", q)
	}
	if q := m.Quantile("lat", 0.0); q != 1 {
		t.Fatalf("p0 = %v", q)
	}
	if !math.IsNaN(m.Mean("none")) || !math.IsNaN(m.Quantile("none", 0.5)) {
		t.Fatal("empty distribution should be NaN")
	}
	if got := m.SampleNames(); len(got) != 1 || got[0] != "lat" {
		t.Fatalf("SampleNames = %v", got)
	}
}

func TestMerge(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	a.Inc("x", 1)
	b.Inc("x", 2)
	b.Inc("y", 3)
	a.Observe("s", 1)
	b.Observe("s", 3)
	a.Merge(b)
	if a.Get("x") != 3 || a.Get("y") != 3 {
		t.Fatalf("merged counters wrong")
	}
	if a.Count("s") != 2 || a.Mean("s") != 2 {
		t.Fatalf("merged samples wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.Add("alpha", "1")
	tb.Addf("beta", 2.5)
	tb.Addf("gamma", 3.0)
	out := tb.String()
	for _, want := range []string{"== demo ==", "name", "alpha", "beta", "2.500", "gamma", "3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Columns align: each line has the same prefix width for column 2.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, header, separator, 3 rows
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.Add("only")
	if len(tb.Rows[0]) != 3 {
		t.Fatal("short row not padded")
	}
	if !strings.Contains(tb.String(), "only") {
		t.Fatal("row lost")
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.Add("1", "2")
	tb.Add("3", "4")
	want := "a,b\n1,2\n3,4\n"
	if got := tb.CSV(); got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:      "3",
		3.5:    "3.500",
		0:      "0",
		-2:     "-2",
		0.1234: "0.123",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if FormatFloat(math.NaN()) != "-" {
		t.Error("NaN should render as dash")
	}
}
