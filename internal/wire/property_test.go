package wire

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sbr6/internal/ipv6"
)

// Generators for property tests: each message type gets a random but
// well-formed instance, then must survive an encode/decode round trip
// embedded in a random packet header.

func randAddr(r *rand.Rand) ipv6.Addr {
	return ipv6.SiteLocal(uint16(r.Uint32()), r.Uint64())
}

func randBlob(r *rand.Rand, max int) []byte {
	n := r.Intn(max + 1)
	if n == 0 {
		return nil
	}
	b := make([]byte, n)
	r.Read(b)
	return b
}

func randRoute(r *rand.Rand, max int) []ipv6.Addr {
	n := r.Intn(max + 1)
	if n == 0 {
		return nil
	}
	rr := make([]ipv6.Addr, n)
	for i := range rr {
		rr[i] = randAddr(r)
	}
	return rr
}

func randString(r *rand.Rand, max int) string {
	return string(randBlob(r, max))
}

func randHops(r *rand.Rand, max int) []HopAttestation {
	n := r.Intn(max + 1)
	if n == 0 {
		return nil
	}
	hs := make([]HopAttestation, n)
	for i := range hs {
		hs[i] = HopAttestation{IP: randAddr(r), Sig: randBlob(r, 80), PK: randBlob(r, 64), Rn: r.Uint64()}
	}
	return hs
}

// randMessage draws one random message of a random type.
func randMessage(r *rand.Rand) Message {
	switch r.Intn(17) {
	case 0:
		return &AREQ{SIP: randAddr(r), Seq: r.Uint32(), DN: randString(r, 40), Ch: r.Uint64(), RR: randRoute(r, 12)}
	case 1:
		return &AREP{SIP: randAddr(r), RR: randRoute(r, 12), Sig: randBlob(r, 80), PK: randBlob(r, 64), Rn: r.Uint64()}
	case 2:
		return &DREP{SIP: randAddr(r), RR: randRoute(r, 12), DN: randString(r, 40), Sig: randBlob(r, 80)}
	case 3:
		return &RREQ{SIP: randAddr(r), DIP: randAddr(r), Seq: r.Uint32(), SRR: randHops(r, 10),
			SrcSig: randBlob(r, 80), SPK: randBlob(r, 64), Srn: r.Uint64()}
	case 4:
		return &RREP{SIP: randAddr(r), DIP: randAddr(r), Seq: r.Uint32(), RR: randRoute(r, 12),
			Sig: randBlob(r, 80), DPK: randBlob(r, 64), Drn: r.Uint64()}
	case 5:
		return &CREP{S2IP: randAddr(r), SIP: randAddr(r), DIP: randAddr(r),
			Seq2: r.Uint32(), RRToS: randRoute(r, 8), Sig1: randBlob(r, 80), SPK: randBlob(r, 64), Srn: r.Uint64(),
			Seq: r.Uint32(), RRToD: randRoute(r, 8), Sig2: randBlob(r, 80), DPK: randBlob(r, 64), Drn: r.Uint64()}
	case 6:
		return &RERR{IIP: randAddr(r), NIP: randAddr(r), Sig: randBlob(r, 80), IPK: randBlob(r, 64), Irn: r.Uint64()}
	case 7:
		return &Data{FlowID: r.Uint32(), Seq: r.Uint32(), Payload: randBlob(r, 256)}
	case 8:
		return &Ack{FlowID: r.Uint32(), Seq: r.Uint32()}
	case 9:
		return &DNSQuery{Name: randString(r, 40), Ch: r.Uint64()}
	case 10:
		return &DNSAnswer{Name: randString(r, 40), IP: randAddr(r), Found: r.Intn(2) == 0, Sig: randBlob(r, 80)}
	case 11:
		return &UpdateReq{Name: randString(r, 40)}
	case 12:
		return &UpdateChal{Name: randString(r, 40), Ch: r.Uint64(), Sig: randBlob(r, 80)}
	case 13:
		return &Update{Name: randString(r, 40), OldIP: randAddr(r), NewIP: randAddr(r),
			Rn: r.Uint64(), NewRn: r.Uint64(), PK: randBlob(r, 64), Sig: randBlob(r, 80)}
	case 14:
		return &AuditAdv{SIP: randAddr(r), Seq: r.Uint32(), Ch: r.Uint64(), RR: randRoute(r, 12),
			Sig: randBlob(r, 80), PK: randBlob(r, 64), Rn: r.Uint64()}
	case 15:
		return &AuditObj{SIP: randAddr(r), RR: randRoute(r, 12), Ch: r.Uint64(),
			Sig: randBlob(r, 80), PK: randBlob(r, 64), Rn: r.Uint64()}
	default:
		return &UpdateResult{Name: randString(r, 40), OK: r.Intn(2) == 0, Ch: r.Uint64(), Sig: randBlob(r, 80)}
	}
}

// Property: every randomly generated message round-trips bit-exactly
// through the codec inside a random packet header.
func TestPropertyAllMessagesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 3000; i++ {
		pkt := &Packet{
			Src:      randAddr(r),
			Dst:      randAddr(r),
			TTL:      uint8(r.Intn(256)),
			Hop:      uint8(r.Intn(16)),
			SrcRoute: randRoute(r, 10),
			Msg:      randMessage(r),
		}
		enc := Encode(pkt)
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("iteration %d (%s): decode failed: %v", i, pkt.Msg.Type(), err)
		}
		if !reflect.DeepEqual(normalize(pkt), normalize(dec)) {
			t.Fatalf("iteration %d (%s): round trip mismatch\n in: %#v\nout: %#v",
				i, pkt.Msg.Type(), pkt, dec)
		}
	}
}

// normalize maps nil and empty slices to a canonical form: the codec cannot
// distinguish them (a zero-length field decodes as nil), and protocol code
// never does either.
func normalize(p *Packet) string {
	return p.String() + "|" + string(Encode(p))
}

// Property: encoding is deterministic.
func TestPropertyEncodingDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		pkt := &Packet{Src: randAddr(r), Dst: randAddr(r), TTL: 9, Msg: randMessage(r)}
		a := Encode(pkt)
		b := Encode(pkt)
		if string(a) != string(b) {
			t.Fatalf("iteration %d: non-deterministic encoding", i)
		}
	}
}

// Property: the encoded size equals EncodedSize (no drift between the
// accounting helper and the real encoder).
func TestPropertySizeAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 500; i++ {
		pkt := &Packet{Src: randAddr(r), Dst: randAddr(r), TTL: 3, SrcRoute: randRoute(r, 6), Msg: randMessage(r)}
		if len(Encode(pkt)) != EncodedSize(pkt) {
			t.Fatal("EncodedSize disagrees with Encode")
		}
	}
}

// Property: truncating any prefix of a valid frame never decodes cleanly
// into the same message type with trailing garbage accepted.
func TestPropertyTruncationDetected(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	prop := func(cut uint16) bool {
		pkt := &Packet{Src: randAddr(r), Dst: randAddr(r), TTL: 3, Msg: randMessage(r)}
		enc := Encode(pkt)
		if len(enc) == 0 {
			return true
		}
		n := int(cut) % len(enc)
		_, err := Decode(enc[:n])
		return err != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
