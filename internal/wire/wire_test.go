package wire

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"sbr6/internal/ipv6"
)

var (
	addrA = ipv6.SiteLocal(0, 0x1111)
	addrB = ipv6.SiteLocal(0, 0x2222)
	addrC = ipv6.SiteLocal(0, 0x3333)
	addrD = ipv6.SiteLocal(0, 0x4444)
)

// sampleMessages returns one populated instance of every message type.
func sampleMessages() []Message {
	return []Message{
		&AREQ{SIP: addrA, Seq: 7, DN: "printer.local", Ch: 0xdeadbeef, RR: []ipv6.Addr{addrB, addrC}},
		&AREQ{SIP: addrA, Seq: 8}, // empty DN, empty RR
		&AREP{SIP: addrA, RR: []ipv6.Addr{addrB}, Sig: []byte{1, 2, 3}, PK: []byte{4, 5}, Rn: 99},
		&DREP{SIP: addrA, RR: []ipv6.Addr{addrC}, DN: "printer.local", Sig: []byte{9}},
		&RREQ{SIP: addrA, DIP: addrD, Seq: 3,
			SRR:    []HopAttestation{{IP: addrB, Sig: []byte{1}, PK: []byte{2}, Rn: 5}, {IP: addrC, Sig: []byte{3}, PK: []byte{4}, Rn: 6}},
			SrcSig: []byte{7, 7}, SPK: []byte{8, 8, 8}, Srn: 11},
		&RREQ{SIP: addrA, DIP: addrD, Seq: 4}, // baseline: all crypto fields empty
		&RREP{SIP: addrA, DIP: addrD, Seq: 3, RR: []ipv6.Addr{addrB, addrC}, Sig: []byte{1}, DPK: []byte{2}, Drn: 13},
		&CREP{S2IP: addrA, SIP: addrB, DIP: addrD, Seq2: 21, RRToS: []ipv6.Addr{addrC},
			Sig1: []byte{1}, SPK: []byte{2}, Srn: 3, Seq: 20, RRToD: []ipv6.Addr{addrB, addrC}, Sig2: []byte{4}, DPK: []byte{5}, Drn: 6},
		&RERR{IIP: addrB, NIP: addrC, Sig: []byte{1, 2}, IPK: []byte{3}, Irn: 17},
		&Data{FlowID: 1, Seq: 2, Payload: bytes.Repeat([]byte{0xab}, 64)},
		&Ack{FlowID: 1, Seq: 2},
		&DNSQuery{Name: "server.manet", Ch: 0x1234},
		&DNSAnswer{Name: "server.manet", IP: addrD, Found: true, Sig: []byte{5, 6}},
		&DNSAnswer{Name: "missing", Found: false, Sig: []byte{7}},
		&UpdateReq{Name: "server.manet"},
		&UpdateChal{Name: "server.manet", Ch: 42, Sig: []byte{8}},
		&Update{Name: "server.manet", OldIP: addrA, NewIP: addrB, Rn: 1, NewRn: 2, PK: []byte{9}, Sig: []byte{10}},
		&UpdateResult{Name: "server.manet", OK: true, Ch: 42, Sig: []byte{11}},
	}
}

func TestRoundTripAllMessages(t *testing.T) {
	for _, msg := range sampleMessages() {
		msg := msg
		t.Run(msg.Type().String(), func(t *testing.T) {
			pkt := &Packet{Src: addrA, Dst: addrD, TTL: DefaultTTL, Hop: 1, SrcRoute: []ipv6.Addr{addrB, addrC}, Msg: msg}
			enc := Encode(pkt)
			dec, err := Decode(enc)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !reflect.DeepEqual(pkt, dec) {
				t.Fatalf("round-trip mismatch:\n  in:  %#v\n  out: %#v", pkt, dec)
			}
		})
	}
}

func TestRoundTripFloodPacket(t *testing.T) {
	pkt := &Packet{Src: addrA, Dst: ipv6.AllNodes, TTL: 8, Msg: &AREQ{SIP: addrA, Seq: 1, Ch: 2}}
	if !pkt.Flood() {
		t.Fatal("flood packet not detected")
	}
	dec, err := Decode(Encode(pkt))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Flood() || dec.TTL != 8 {
		t.Fatalf("flood round-trip broken: %+v", dec)
	}
}

func TestNextHop(t *testing.T) {
	pkt := &Packet{Src: addrA, Dst: addrD, SrcRoute: []ipv6.Addr{addrB, addrC}}
	for i, want := range []ipv6.Addr{addrB, addrC, addrD} {
		pkt.Hop = uint8(i)
		got, ok := pkt.NextHop()
		if !ok || got != want {
			t.Fatalf("hop %d: NextHop = %v,%v want %v", i, got, ok, want)
		}
	}
	pkt.Hop = 3
	if _, ok := pkt.NextHop(); ok {
		t.Fatal("NextHop past destination should fail")
	}
	// No intermediates: destination is the first hop.
	direct := &Packet{Src: addrA, Dst: addrB}
	if got, ok := direct.NextHop(); !ok || got != addrB {
		t.Fatalf("direct NextHop = %v,%v", got, ok)
	}
}

func TestDecodeErrors(t *testing.T) {
	good := Encode(&Packet{Src: addrA, Dst: addrB, TTL: 4, Msg: &Ack{FlowID: 1, Seq: 2}})

	if _, err := Decode(nil); err == nil {
		t.Error("nil input decoded")
	}
	if _, err := Decode(good[:10]); err == nil {
		t.Error("truncated header decoded")
	}
	if _, err := Decode(good[:len(good)-1]); err == nil {
		t.Error("truncated body decoded")
	}
	if _, err := Decode(append(append([]byte(nil), good...), 0x00)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Unknown message type.
	bad := append([]byte(nil), good...)
	bad[16+16+1+1+1] = 0xee // type byte (after src+dst+ttl+hop+route count 0)
	if _, err := Decode(bad); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestDecodeHostileBlobLength(t *testing.T) {
	// Claim a blob longer than the frame: must error, not panic or hang.
	pkt := &Packet{Src: addrA, Dst: addrB, Msg: &AREP{SIP: addrA, Sig: []byte{1}, PK: []byte{2}, Rn: 3}}
	enc := Encode(pkt)
	// AREP body starts after header; find the sig length field by scanning
	// for the 0x0001 length of Sig. Corrupting any length field upward must
	// yield ErrTruncated or ErrBadField.
	for i := 34; i < len(enc)-1; i++ {
		mut := append([]byte(nil), enc...)
		mut[i] = 0xff
		if _, err := Decode(mut); err == nil {
			// Some mutations stay valid (e.g. Rn bytes); that is fine — we
			// only require no panic. Valid-but-different is acceptable.
			continue
		}
	}
}

func TestBoolStrictness(t *testing.T) {
	pkt := &Packet{Src: addrA, Dst: addrB, Msg: &DNSAnswer{Name: "x", Found: true, Sig: []byte{1}}}
	enc := Encode(pkt)
	// Find the bool byte: it follows name (2+1) and IP (16) in the body.
	// Header: 16+16+1+1+1 = 35, type byte at 35, body starts 36.
	boolOff := 36 + 2 + 1 + 16
	if enc[boolOff] != 1 {
		t.Fatalf("test offset wrong: enc[%d] = %d", boolOff, enc[boolOff])
	}
	enc[boolOff] = 2
	if _, err := Decode(enc); err == nil {
		t.Fatal("non-canonical bool accepted")
	}
}

func TestEncodePanicsOnNilMessage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Encode(&Packet{Src: addrA, Dst: addrB})
}

func TestEncodePanicsOnOversizedRoute(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	route := make([]ipv6.Addr, 300)
	Encode(&Packet{Src: addrA, Dst: addrB, SrcRoute: route, Msg: &Ack{}})
}

func TestSigBytesDomainSeparation(t *testing.T) {
	// The same logical content signed under different purposes must produce
	// different byte strings — otherwise a signature could be replayed
	// across message types.
	all := [][]byte{
		SigAREP(addrA, 5),
		SigRREQSource(addrA, 5),
		SigHop(addrA, 5),
		SigRERR(addrA, addrA),
		SigRREP(addrA, 5, nil),
		SigDREP("a", 5),
		SigUpdateChal("a", 5),
		SigDNSAnswer("a", addrA, true, 5),
		SigUpdate(addrA, addrA, 5),
		SigUpdateResult("a", true, 5),
	}
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			if bytes.Equal(all[i], all[j]) {
				t.Fatalf("sig strings %d and %d collide", i, j)
			}
		}
	}
}

func TestSigBytesDeterministic(t *testing.T) {
	a := SigRREP(addrA, 9, []ipv6.Addr{addrB, addrC})
	b := SigRREP(addrA, 9, []ipv6.Addr{addrB, addrC})
	if !bytes.Equal(a, b) {
		t.Fatal("sig bytes not deterministic")
	}
	c := SigRREP(addrA, 9, []ipv6.Addr{addrC, addrB})
	if bytes.Equal(a, c) {
		t.Fatal("route order must affect sig bytes")
	}
}

func TestSecureVsBaselineSizeGap(t *testing.T) {
	// T1 shape check: a secure RREQ with k hop attestations must exceed the
	// baseline RREQ by roughly k * (sig + pk + rn) bytes.
	sig := make([]byte, 64)
	pk := make([]byte, 32)
	mk := func(hops int, secure bool) int {
		m := &RREQ{SIP: addrA, DIP: addrB, Seq: 1}
		for i := 0; i < hops; i++ {
			h := HopAttestation{IP: addrC}
			if secure {
				h.Sig, h.PK, h.Rn = sig, pk, 42
			}
			m.SRR = append(m.SRR, h)
		}
		if secure {
			m.SrcSig, m.SPK, m.Srn = sig, pk, 42
		}
		return EncodedSize(&Packet{Src: addrA, Dst: ipv6.AllNodes, TTL: 64, Msg: m})
	}
	for hops := 0; hops <= 10; hops++ {
		gap := mk(hops, true) - mk(hops, false)
		wantMin := (hops + 1) * (64 + 32) // sigs and keys, ignoring rn shared by both
		if gap < wantMin {
			t.Fatalf("hops=%d: secure-baseline gap %d < %d", hops, gap, wantMin)
		}
	}
}

func TestTypeStrings(t *testing.T) {
	want := map[Type]string{
		TAREQ: "AREQ", TAREP: "AREP", TDREP: "DREP", TRREQ: "RREQ",
		TRREP: "RREP", TCREP: "CREP", TRERR: "RERR", TData: "DATA",
		TAck: "ACK", TDNSQuery: "DNSQ", TDNSAnswer: "DNSA",
		TUpdateReq: "UPDQ", TUpdateChal: "CHAL", TUpdate: "UPD", TUpdateResult: "UPDR",
		TAuditAdv: "AADV", TAuditObj: "AOBJ",
	}
	for ty, name := range want {
		if ty.String() != name {
			t.Errorf("Type(%d).String() = %q, want %q", ty, ty.String(), name)
		}
	}
	if Type(0).String() != "type(0)" {
		t.Error("unknown type string wrong")
	}
}

func TestPacketString(t *testing.T) {
	pkt := &Packet{Src: addrA, Dst: addrB, TTL: 64, SrcRoute: []ipv6.Addr{addrC}, Msg: &Ack{}}
	s := pkt.String()
	if s == "" || !bytes.Contains([]byte(s), []byte("ACK")) {
		t.Fatalf("String = %q", s)
	}
}

// Property: arbitrary AREQ fields round-trip.
func TestPropertyAREQRoundTrip(t *testing.T) {
	prop := func(sipIID uint64, seq uint32, dn string, ch uint64, hops uint8) bool {
		if len(dn) > 1000 {
			dn = dn[:1000]
		}
		m := &AREQ{SIP: ipv6.SiteLocal(0, sipIID), Seq: seq, DN: dn, Ch: ch}
		for i := 0; i < int(hops%16); i++ {
			m.RR = append(m.RR, ipv6.SiteLocal(0, uint64(i)))
		}
		pkt := &Packet{Src: m.SIP, Dst: ipv6.AllNodes, TTL: 32, Msg: m}
		dec, err := Decode(Encode(pkt))
		return err == nil && reflect.DeepEqual(pkt, dec)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: random byte strings never panic the decoder.
func TestPropertyDecodeNeverPanics(t *testing.T) {
	prop := func(b []byte) bool {
		_, _ = Decode(b) // errors fine, panics not
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: random mutations of a valid frame either decode to something or
// error out — never panic (fuzz-lite for hostile relays).
func TestPropertyMutationsNeverPanic(t *testing.T) {
	base := Encode(&Packet{Src: addrA, Dst: addrD, TTL: 16, SrcRoute: []ipv6.Addr{addrB},
		Msg: &RREQ{SIP: addrA, DIP: addrD, Seq: 1, SrcSig: []byte{1, 2}, SPK: []byte{3}, Srn: 4,
			SRR: []HopAttestation{{IP: addrB, Sig: []byte{5}, PK: []byte{6}, Rn: 7}}}})
	prop := func(pos uint16, val byte) bool {
		mut := append([]byte(nil), base...)
		mut[int(pos)%len(mut)] = val
		_, _ = Decode(mut)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeRREQ8Hops(b *testing.B) {
	m := &RREQ{SIP: addrA, DIP: addrB, Seq: 1, SrcSig: make([]byte, 64), SPK: make([]byte, 32), Srn: 9}
	for i := 0; i < 8; i++ {
		m.SRR = append(m.SRR, HopAttestation{IP: addrC, Sig: make([]byte, 64), PK: make([]byte, 32), Rn: 3})
	}
	pkt := &Packet{Src: addrA, Dst: ipv6.AllNodes, TTL: 64, Msg: m}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(pkt)
	}
}

func BenchmarkDecodeRREQ8Hops(b *testing.B) {
	m := &RREQ{SIP: addrA, DIP: addrB, Seq: 1, SrcSig: make([]byte, 64), SPK: make([]byte, 32), Srn: 9}
	for i := 0; i < 8; i++ {
		m.SRR = append(m.SRR, HopAttestation{IP: addrC, Sig: make([]byte, 64), PK: make([]byte, 32), Rn: 3})
	}
	enc := Encode(&Packet{Src: addrA, Dst: ipv6.AllNodes, TTL: 64, Msg: m})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
