// Package wire defines the protocol's over-the-air format: the control
// messages of the paper's Table 1 (AREQ, AREP, DREP, RREQ, RREP, CREP,
// RERR), the data/acknowledgement messages the credit mechanism relies on,
// and the DNS query/answer/update messages of Sections 3.1–3.2. It provides
// a compact deterministic binary codec and the canonical byte strings that
// get signed — with domain-separation tags so a signature for one message
// type can never be replayed as another.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"sbr6/internal/ipv6"
)

// Codec limits. Routes are bounded by TTL (≤64 hops in practice), key and
// signature material by the suite; the caps exist to make decoding of
// hostile input safe.
const (
	maxRouteLen = 255
	maxBlobLen  = 4096
)

var (
	// ErrTruncated reports input shorter than its fields claim.
	ErrTruncated = errors.New("wire: truncated message")
	// ErrTrailing reports leftover bytes after a complete message.
	ErrTrailing = errors.New("wire: trailing bytes")
	// ErrBadField reports a field violating a codec limit.
	ErrBadField = errors.New("wire: invalid field")
)

// writer accumulates the encoding. In counting mode (count == true) it
// runs the identical field sequence — same bounds checks, same panics —
// but only tallies sizes into n, which is what makes EncodedSize exact
// without allocating or retaining an encoding.
type writer struct {
	buf   []byte
	count bool
	n     int
}

func (w *writer) u8(v uint8) {
	if w.count {
		w.n++
		return
	}
	w.buf = append(w.buf, v)
}

func (w *writer) u16(v uint16) {
	if w.count {
		w.n += 2
		return
	}
	w.buf = binary.BigEndian.AppendUint16(w.buf, v)
}

func (w *writer) u32(v uint32) {
	if w.count {
		w.n += 4
		return
	}
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

func (w *writer) u64(v uint64) {
	if w.count {
		w.n += 8
		return
	}
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *writer) addr(a ipv6.Addr) {
	if w.count {
		w.n += len(a)
		return
	}
	w.buf = append(w.buf, a[:]...)
}

func (w *writer) blob(b []byte) {
	if len(b) > maxBlobLen {
		panic(fmt.Sprintf("wire: blob of %d bytes exceeds limit", len(b)))
	}
	w.u16(uint16(len(b)))
	if w.count {
		w.n += len(b)
		return
	}
	w.buf = append(w.buf, b...)
}

func (w *writer) str(s string) {
	if w.count {
		// Mirror blob without materializing []byte(s).
		if len(s) > maxBlobLen {
			panic(fmt.Sprintf("wire: blob of %d bytes exceeds limit", len(s)))
		}
		w.n += 2 + len(s)
		return
	}
	w.blob([]byte(s))
}

func (w *writer) route(rr []ipv6.Addr) {
	if len(rr) > maxRouteLen {
		panic(fmt.Sprintf("wire: route of %d hops exceeds limit", len(rr)))
	}
	w.u8(uint8(len(rr)))
	for _, a := range rr {
		w.addr(a)
	}
}

// reader decodes with sticky errors: after the first failure all further
// reads return zero values and the error is reported once at the end.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) bool() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(ErrBadField)
		return false
	}
}

func (r *reader) addr() ipv6.Addr {
	var a ipv6.Addr
	if b := r.take(16); b != nil {
		copy(a[:], b)
	}
	return a
}

func (r *reader) blob() []byte {
	n := int(r.u16())
	if n > maxBlobLen {
		r.fail(ErrBadField)
		return nil
	}
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

func (r *reader) str() string { return string(r.blob()) }

func (r *reader) route() []ipv6.Addr {
	n := int(r.u8())
	if n == 0 {
		return nil
	}
	rr := make([]ipv6.Addr, 0, n)
	for i := 0; i < n; i++ {
		if r.err != nil {
			return nil
		}
		rr = append(rr, r.addr())
	}
	return rr
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return ErrTrailing
	}
	return nil
}
