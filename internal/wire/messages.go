package wire

import (
	"fmt"

	"sbr6/internal/ipv6"
)

// Type discriminates protocol messages on the wire.
type Type uint8

// Message types. The first block is the paper's Table 1; the second block
// carries data traffic and the DNS services of Sections 3.1–3.2.
const (
	TAREQ Type = iota + 1 // address request (extended NS)
	TAREP                 // address reply (extended NA)
	TDREP                 // DNS server reply: duplicate domain name
	TRREQ                 // route request
	TRREP                 // route reply
	TCREP                 // cached route reply
	TRERR                 // route error

	TData // application payload, source-routed
	TAck  // end-to-end acknowledgement feeding the credit mechanism

	TDNSQuery     // secure name lookup
	TDNSAnswer    // signed lookup answer
	TUpdateReq    // request a challenge for an IP-address change
	TUpdateChal   // DNS-signed challenge
	TUpdate       // signed (old IP, new IP) binding update
	TUpdateResult // DNS-signed outcome

	TAuditAdv // post-formation signed address re-advertisement
	TAuditObj // signed objection from a conflicting binding holder
)

// String names the message type as the paper does.
func (t Type) String() string {
	switch t {
	case TAREQ:
		return "AREQ"
	case TAREP:
		return "AREP"
	case TDREP:
		return "DREP"
	case TRREQ:
		return "RREQ"
	case TRREP:
		return "RREP"
	case TCREP:
		return "CREP"
	case TRERR:
		return "RERR"
	case TData:
		return "DATA"
	case TAck:
		return "ACK"
	case TDNSQuery:
		return "DNSQ"
	case TDNSAnswer:
		return "DNSA"
	case TUpdateReq:
		return "UPDQ"
	case TUpdateChal:
		return "CHAL"
	case TUpdate:
		return "UPD"
	case TUpdateResult:
		return "UPDR"
	case TAuditAdv:
		return "AADV"
	case TAuditObj:
		return "AOBJ"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Message is any protocol message body.
type Message interface {
	Type() Type
	encodeBody(w *writer)
}

// HopAttestation is one secure-route-record entry: the paper's
// ([I_IP, seq]_{I_SK}, I_PK, I_rn) triple prefixed by the hop's address.
// In baseline (insecure DSR) mode Sig and PK are empty.
type HopAttestation struct {
	IP  ipv6.Addr
	Sig []byte
	PK  []byte
	Rn  uint64
}

// AREQ is the flooded address request of Section 3.1: extended duplicate
// address detection with optional 6DNAR domain-name registration.
type AREQ struct {
	SIP ipv6.Addr   // tentative address under test
	Seq uint32      // initiator-unique sequence number
	DN  string      // requested domain name; empty when not registering
	Ch  uint64      // random challenge echoed (signed) by any objector
	RR  []ipv6.Addr // route record accumulated hop by hop
}

// Type implements Message.
func (*AREQ) Type() Type { return TAREQ }

func (m *AREQ) encodeBody(w *writer) {
	w.addr(m.SIP)
	w.u32(m.Seq)
	w.str(m.DN)
	w.u64(m.Ch)
	w.route(m.RR)
}

// AREP is the unicast objection to a duplicate address: the current owner R
// proves ownership by signing (SIP, ch) and exhibiting (R_PK, R_rn).
type AREP struct {
	SIP ipv6.Addr   // the contested address
	RR  []ipv6.Addr // reverse route back to the requester
	Sig []byte      // [SIP, ch]_{R_SK}
	PK  []byte      // R_PK
	Rn  uint64      // R_rn
}

// Type implements Message.
func (*AREP) Type() Type { return TAREP }

func (m *AREP) encodeBody(w *writer) {
	w.addr(m.SIP)
	w.route(m.RR)
	w.blob(m.Sig)
	w.blob(m.PK)
	w.u64(m.Rn)
}

// DREP is the DNS server's objection to a duplicate domain name, signed
// with the DNS private key over (DN, ch).
type DREP struct {
	SIP ipv6.Addr   // the requester's tentative address
	RR  []ipv6.Addr // reverse route back to the requester
	DN  string      // the contested name (lets the requester match state)
	Sig []byte      // [DN, ch]_{N_SK}
}

// Type implements Message.
func (*DREP) Type() Type { return TDREP }

func (m *DREP) encodeBody(w *writer) {
	w.addr(m.SIP)
	w.route(m.RR)
	w.str(m.DN)
	w.blob(m.Sig)
}

// RREQ is the flooded route request of Section 3.3. In secure mode the
// source signs (SIP, seq) and each relay appends a HopAttestation to SRR;
// in baseline mode the signature fields are empty and SRR carries bare
// addresses.
type RREQ struct {
	SIP    ipv6.Addr
	DIP    ipv6.Addr
	Seq    uint32
	SRR    []HopAttestation // secure route record (intermediate hops)
	SrcSig []byte           // [SIP, seq]_{S_SK}
	SPK    []byte
	Srn    uint64
}

// Type implements Message.
func (*RREQ) Type() Type { return TRREQ }

func (m *RREQ) encodeBody(w *writer) {
	w.addr(m.SIP)
	w.addr(m.DIP)
	w.u32(m.Seq)
	if len(m.SRR) > maxRouteLen {
		panic("wire: SRR too long")
	}
	w.u8(uint8(len(m.SRR)))
	for _, h := range m.SRR {
		w.addr(h.IP)
		w.blob(h.Sig)
		w.blob(h.PK)
		w.u64(h.Rn)
	}
	w.blob(m.SrcSig)
	w.blob(m.SPK)
	w.u64(m.Srn)
}

// Route returns the bare addresses of the SRR.
func (m *RREQ) Route() []ipv6.Addr {
	rr := make([]ipv6.Addr, len(m.SRR))
	for i, h := range m.SRR {
		rr[i] = h.IP
	}
	return rr
}

// RREP is the destination's signed route reply, returned to the source
// along the reverse of the discovered route.
type RREP struct {
	SIP ipv6.Addr
	DIP ipv6.Addr
	Seq uint32      // echo of the RREQ sequence number
	RR  []ipv6.Addr // discovered route (intermediate hops, source order)
	Sig []byte      // [SIP, seq, RR]_{D_SK}
	DPK []byte
	Drn uint64
}

// Type implements Message.
func (*RREP) Type() Type { return TRREP }

func (m *RREP) encodeBody(w *writer) {
	w.addr(m.SIP)
	w.addr(m.DIP)
	w.u32(m.Seq)
	w.route(m.RR)
	w.blob(m.Sig)
	w.blob(m.DPK)
	w.u64(m.Drn)
}

// CREP is the cached route reply of Section 3.3: cache holder S answers
// querier S2 with the fresh half S2->S that S signs, plus the cached half
// S->D still covered by D's original RREP signature.
type CREP struct {
	S2IP ipv6.Addr // querier (the paper's S')
	SIP  ipv6.Addr // cache holder
	DIP  ipv6.Addr

	Seq2  uint32      // the querier's sequence number (seq')
	RRToS []ipv6.Addr // intermediates S2 -> S
	Sig1  []byte      // [S2IP, seq2, RRToS]_{S_SK}
	SPK   []byte
	Srn   uint64

	Seq   uint32      // the original sequence number S used to find D
	RRToD []ipv6.Addr // intermediates S -> D
	Sig2  []byte      // [SIP, seq, RRToD]_{D_SK}
	DPK   []byte
	Drn   uint64
}

// Type implements Message.
func (*CREP) Type() Type { return TCREP }

func (m *CREP) encodeBody(w *writer) {
	w.addr(m.S2IP)
	w.addr(m.SIP)
	w.addr(m.DIP)
	w.u32(m.Seq2)
	w.route(m.RRToS)
	w.blob(m.Sig1)
	w.blob(m.SPK)
	w.u64(m.Srn)
	w.u32(m.Seq)
	w.route(m.RRToD)
	w.blob(m.Sig2)
	w.blob(m.DPK)
	w.u64(m.Drn)
}

// RERR reports a broken link from the detecting relay I to its next hop,
// signed by I so the source can pin responsibility (Section 3.4).
type RERR struct {
	IIP ipv6.Addr // reporting node
	NIP ipv6.Addr // unreachable next hop
	Sig []byte    // [IIP, NIP]_{I_SK}
	IPK []byte
	Irn uint64
}

// Type implements Message.
func (*RERR) Type() Type { return TRERR }

func (m *RERR) encodeBody(w *writer) {
	w.addr(m.IIP)
	w.addr(m.NIP)
	w.blob(m.Sig)
	w.blob(m.IPK)
	w.u64(m.Irn)
}

// Data is an application payload carried over a discovered source route.
// Salvage counts how many times relays re-routed the packet around broken
// links (DSR packet salvaging); it bounds salvage loops.
type Data struct {
	FlowID  uint32
	Seq     uint32
	Salvage uint8
	Payload []byte
}

// Type implements Message.
func (*Data) Type() Type { return TData }

func (m *Data) encodeBody(w *writer) {
	w.u32(m.FlowID)
	w.u32(m.Seq)
	w.u8(m.Salvage)
	w.blob(m.Payload)
}

// Ack is the destination's end-to-end acknowledgement; each correctly
// acknowledged packet earns every relay on the route one credit.
type Ack struct {
	FlowID uint32
	Seq    uint32
}

// Type implements Message.
func (*Ack) Type() Type { return TAck }

func (m *Ack) encodeBody(w *writer) {
	w.u32(m.FlowID)
	w.u32(m.Seq)
}

// DNSQuery asks the DNS server for a name's address; the challenge binds
// the signed answer to this query (Section 3.2).
type DNSQuery struct {
	Name string
	Ch   uint64
}

// Type implements Message.
func (*DNSQuery) Type() Type { return TDNSQuery }

func (m *DNSQuery) encodeBody(w *writer) {
	w.str(m.Name)
	w.u64(m.Ch)
}

// DNSAnswer is the server's signed response.
type DNSAnswer struct {
	Name  string
	IP    ipv6.Addr
	Found bool
	Sig   []byte // [name, IP, found, ch]_{N_SK}
}

// Type implements Message.
func (*DNSAnswer) Type() Type { return TDNSAnswer }

func (m *DNSAnswer) encodeBody(w *writer) {
	w.str(m.Name)
	w.addr(m.IP)
	w.bool(m.Found)
	w.blob(m.Sig)
}

// UpdateReq asks the DNS server for a challenge before changing the IP
// address bound to Name (Section 3.2).
type UpdateReq struct {
	Name string
}

// Type implements Message.
func (*UpdateReq) Type() Type { return TUpdateReq }

func (m *UpdateReq) encodeBody(w *writer) { w.str(m.Name) }

// UpdateChal is the DNS server's signed challenge.
type UpdateChal struct {
	Name string
	Ch   uint64
	Sig  []byte // [name, ch]_{N_SK}
}

// Type implements Message.
func (*UpdateChal) Type() Type { return TUpdateChal }

func (m *UpdateChal) encodeBody(w *writer) {
	w.str(m.Name)
	w.u64(m.Ch)
	w.blob(m.Sig)
}

// Update carries the signed address change: the holder proves it owns both
// the old and new CGA by exhibiting the modifiers and signing with the key
// that generated both.
type Update struct {
	Name  string
	OldIP ipv6.Addr
	NewIP ipv6.Addr
	Rn    uint64 // modifier of the old address
	NewRn uint64 // modifier of the new address
	PK    []byte
	Sig   []byte // [oldIP, newIP, ch]_{X_SK}
}

// Type implements Message.
func (*Update) Type() Type { return TUpdate }

func (m *Update) encodeBody(w *writer) {
	w.str(m.Name)
	w.addr(m.OldIP)
	w.addr(m.NewIP)
	w.u64(m.Rn)
	w.u64(m.NewRn)
	w.blob(m.PK)
	w.blob(m.Sig)
}

// UpdateResult is the DNS server's signed verdict on an Update.
type UpdateResult struct {
	Name string
	OK   bool
	Ch   uint64
	Sig  []byte // [name, ok, ch]_{N_SK}
}

// Type implements Message.
func (*UpdateResult) Type() Type { return TUpdateResult }

func (m *UpdateResult) encodeBody(w *writer) {
	w.str(m.Name)
	w.bool(m.OK)
	w.u64(m.Ch)
	w.blob(m.Sig)
}

// AuditAdv is the post-formation audit sweep's flooded re-advertisement: a
// configured node periodically re-asserts its CGA address binding so a
// conflicting claimant that was never inside its DAD flood (a concurrent
// cross-cell claim, a merged partition) can finally hear about it and
// object. The route record accumulates hop by hop exactly like an AREQ's,
// giving objectors a reverse path before any route discovery has run.
type AuditAdv struct {
	SIP ipv6.Addr   // the advertised (currently owned) address
	Seq uint32      // advertiser's sweep round, strictly increasing
	Ch  uint64      // challenge any objection must echo
	RR  []ipv6.Addr // route record accumulated hop by hop
	Sig []byte      // [SIP, seq, ch]_{O_SK}
	PK  []byte      // O_PK
	Rn  uint64      // O_rn
}

// Type implements Message.
func (*AuditAdv) Type() Type { return TAuditAdv }

func (m *AuditAdv) encodeBody(w *writer) {
	w.addr(m.SIP)
	w.u32(m.Seq)
	w.u64(m.Ch)
	w.route(m.RR)
	w.blob(m.Sig)
	w.blob(m.PK)
	w.u64(m.Rn)
}

// AuditObj is the objection a node raises when an audit advertisement
// claims an address the node itself holds: proof of its own CGA binding
// plus the signed challenge echo, mirroring the AREP shape but under its
// own domain-separation tag so neither can be replayed as the other.
type AuditObj struct {
	SIP ipv6.Addr   // the contested address
	RR  []ipv6.Addr // reverse route back to the advertiser
	Ch  uint64      // echo of the advertisement's challenge
	Sig []byte      // [SIP, ch]_{R_SK}
	PK  []byte      // R_PK
	Rn  uint64      // R_rn
}

// Type implements Message.
func (*AuditObj) Type() Type { return TAuditObj }

func (m *AuditObj) encodeBody(w *writer) {
	w.addr(m.SIP)
	w.route(m.RR)
	w.u64(m.Ch)
	w.blob(m.Sig)
	w.blob(m.PK)
	w.u64(m.Rn)
}

func decodeBody(t Type, r *reader) (Message, error) {
	var m Message
	switch t {
	case TAREQ:
		m = &AREQ{SIP: r.addr(), Seq: r.u32(), DN: r.str(), Ch: r.u64(), RR: r.route()}
	case TAREP:
		m = &AREP{SIP: r.addr(), RR: r.route(), Sig: r.blob(), PK: r.blob(), Rn: r.u64()}
	case TDREP:
		m = &DREP{SIP: r.addr(), RR: r.route(), DN: r.str(), Sig: r.blob()}
	case TRREQ:
		msg := &RREQ{SIP: r.addr(), DIP: r.addr(), Seq: r.u32()}
		n := int(r.u8())
		for i := 0; i < n && r.err == nil; i++ {
			msg.SRR = append(msg.SRR, HopAttestation{IP: r.addr(), Sig: r.blob(), PK: r.blob(), Rn: r.u64()})
		}
		msg.SrcSig = r.blob()
		msg.SPK = r.blob()
		msg.Srn = r.u64()
		m = msg
	case TRREP:
		m = &RREP{SIP: r.addr(), DIP: r.addr(), Seq: r.u32(), RR: r.route(), Sig: r.blob(), DPK: r.blob(), Drn: r.u64()}
	case TCREP:
		m = &CREP{
			S2IP: r.addr(), SIP: r.addr(), DIP: r.addr(),
			Seq2: r.u32(), RRToS: r.route(), Sig1: r.blob(), SPK: r.blob(), Srn: r.u64(),
			Seq: r.u32(), RRToD: r.route(), Sig2: r.blob(), DPK: r.blob(), Drn: r.u64(),
		}
	case TRERR:
		m = &RERR{IIP: r.addr(), NIP: r.addr(), Sig: r.blob(), IPK: r.blob(), Irn: r.u64()}
	case TData:
		m = &Data{FlowID: r.u32(), Seq: r.u32(), Salvage: r.u8(), Payload: r.blob()}
	case TAck:
		m = &Ack{FlowID: r.u32(), Seq: r.u32()}
	case TDNSQuery:
		m = &DNSQuery{Name: r.str(), Ch: r.u64()}
	case TDNSAnswer:
		m = &DNSAnswer{Name: r.str(), IP: r.addr(), Found: r.bool(), Sig: r.blob()}
	case TUpdateReq:
		m = &UpdateReq{Name: r.str()}
	case TUpdateChal:
		m = &UpdateChal{Name: r.str(), Ch: r.u64(), Sig: r.blob()}
	case TUpdate:
		m = &Update{Name: r.str(), OldIP: r.addr(), NewIP: r.addr(), Rn: r.u64(), NewRn: r.u64(), PK: r.blob(), Sig: r.blob()}
	case TUpdateResult:
		m = &UpdateResult{Name: r.str(), OK: r.bool(), Ch: r.u64(), Sig: r.blob()}
	case TAuditAdv:
		m = &AuditAdv{SIP: r.addr(), Seq: r.u32(), Ch: r.u64(), RR: r.route(), Sig: r.blob(), PK: r.blob(), Rn: r.u64()}
	case TAuditObj:
		m = &AuditObj{SIP: r.addr(), RR: r.route(), Ch: r.u64(), Sig: r.blob(), PK: r.blob(), Rn: r.u64()}
	default:
		return nil, fmt.Errorf("%w: unknown type %d", ErrBadField, t)
	}
	if r.err != nil {
		return nil, r.err
	}
	return m, nil
}
