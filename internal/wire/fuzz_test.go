package wire

import (
	"testing"

	"sbr6/internal/ipv6"
)

// Native fuzz target for the frame decoder — the one function that parses
// bytes from adversaries. Seeded with valid frames of several types; run
// longer with: go test -fuzz=FuzzDecode ./internal/wire/
func FuzzDecode(f *testing.F) {
	a := ipv6.SiteLocal(0, 1)
	b := ipv6.SiteLocal(0, 2)
	seeds := []*Packet{
		{Src: a, Dst: ipv6.AllNodes, TTL: 64, Msg: &AREQ{SIP: a, Seq: 1, DN: "n", Ch: 2, RR: []ipv6.Addr{b}}},
		{Src: a, Dst: b, TTL: 32, SrcRoute: []ipv6.Addr{b}, Msg: &RREP{SIP: a, DIP: b, Seq: 3, Sig: []byte{1}, DPK: []byte{2}, Drn: 4}},
		{Src: a, Dst: b, TTL: 8, Msg: &Data{FlowID: 1, Seq: 2, Payload: []byte("hello")}},
		{Src: a, Dst: b, TTL: 8, Msg: &RERR{IIP: a, NIP: b, Sig: []byte{9}, IPK: []byte{8}, Irn: 7}},
		{Src: a, Dst: b, TTL: 8, Msg: &DNSAnswer{Name: "x", IP: b, Found: true, Sig: []byte{3}}},
	}
	for _, p := range seeds {
		f.Add(Encode(p))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := Decode(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Anything accepted must re-encode and decode to the same bytes
		// (canonical form).
		re := Encode(pkt)
		pkt2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if string(Encode(pkt2)) != string(re) {
			t.Fatal("encoding not canonical")
		}
	})
}
