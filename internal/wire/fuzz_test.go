package wire

import (
	"math/rand"
	"testing"

	"sbr6/internal/ipv6"
	"sbr6/internal/pool"
)

// Native fuzz target for the frame decoder — the one function that parses
// bytes from adversaries. Seeded with valid frames of several types; run
// longer with: go test -fuzz=FuzzDecode ./internal/wire/
func FuzzDecode(f *testing.F) {
	a := ipv6.SiteLocal(0, 1)
	b := ipv6.SiteLocal(0, 2)
	seeds := []*Packet{
		{Src: a, Dst: ipv6.AllNodes, TTL: 64, Msg: &AREQ{SIP: a, Seq: 1, DN: "n", Ch: 2, RR: []ipv6.Addr{b}}},
		{Src: a, Dst: b, TTL: 32, SrcRoute: []ipv6.Addr{b}, Msg: &RREP{SIP: a, DIP: b, Seq: 3, Sig: []byte{1}, DPK: []byte{2}, Drn: 4}},
		{Src: a, Dst: b, TTL: 8, Msg: &Data{FlowID: 1, Seq: 2, Payload: []byte("hello")}},
		{Src: a, Dst: b, TTL: 8, Msg: &RERR{IIP: a, NIP: b, Sig: []byte{9}, IPK: []byte{8}, Irn: 7}},
		{Src: a, Dst: b, TTL: 8, Msg: &DNSAnswer{Name: "x", IP: b, Found: true, Sig: []byte{3}}},
	}
	for _, p := range seeds {
		f.Add(Encode(p))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := Decode(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Anything accepted must re-encode and decode to the same bytes
		// (canonical form).
		re := Encode(pkt)
		pkt2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if string(Encode(pkt2)) != string(re) {
			t.Fatal("encoding not canonical")
		}
	})
}

// FuzzPooledAppendEncode guards the pooled wire path's encoding contract:
// appending a packet into a dirty, recycled pool buffer must produce
// exactly the bytes a fresh Encode produces, and the counting EncodedSize
// must have sized the buffer exactly. The buffer is poisoned, released
// and re-checked out between uses — the lifecycle the radio medium puts
// frames through — so stale bytes from a previous occupant can never leak
// into a frame.
func FuzzPooledAppendEncode(f *testing.F) {
	a := ipv6.SiteLocal(0, 1)
	b := ipv6.SiteLocal(0, 2)
	seeds := []*Packet{
		{Src: a, Dst: ipv6.AllNodes, TTL: 64, Msg: &AREQ{SIP: a, Seq: 1, DN: "n", Ch: 2, RR: []ipv6.Addr{b}}},
		{Src: a, Dst: b, TTL: 32, SrcRoute: []ipv6.Addr{b}, Msg: &RREP{SIP: a, DIP: b, Seq: 3, Sig: []byte{1}, DPK: []byte{2}, Drn: 4}},
		{Src: a, Dst: b, TTL: 8, Msg: &Data{FlowID: 1, Seq: 2, Payload: []byte("hello")}},
		{Src: a, Dst: b, TTL: 8, Msg: &RERR{IIP: a, NIP: b, Sig: []byte{9}, IPK: []byte{8}, Irn: 7}},
		{Src: a, Dst: b, TTL: 8, Msg: &DNSAnswer{Name: "x", IP: b, Found: true, Sig: []byte{3}}},
	}
	for _, p := range seeds {
		f.Add(Encode(p))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := Decode(data)
		if err != nil {
			return
		}
		fresh := Encode(pkt)
		if got := EncodedSize(pkt); got != len(fresh) {
			t.Fatalf("EncodedSize = %d, Encode produced %d bytes", got, len(fresh))
		}
		p := pool.New()
		p.SetPoison(true)
		var enc Encoder
		// First occupancy dirties the buffer with a different packet.
		buf := p.Get(enc.Size(pkt))
		buf = enc.AppendEncode(buf, seeds[len(data)%len(seeds)])
		p.Put(buf) // poisons the whole capacity
		// Second checkout must encode over the poison byte-identically.
		buf = p.Get(enc.Size(pkt))
		buf = enc.AppendEncode(buf, pkt)
		if string(buf) != string(fresh) {
			t.Fatalf("pooled encode diverged from fresh encode\npooled: %x\n fresh: %x", buf, fresh)
		}
		re, err := Decode(buf)
		if err != nil {
			t.Fatalf("decode of pooled encode failed: %v", err)
		}
		if string(Encode(re)) != string(fresh) {
			t.Fatal("pooled encode not canonical")
		}
	})
}

// --- structured round-trip fuzzers ---
//
// One target per security-critical message family (RREQ, CREP, RERR and
// the DAD messages AREQ/AREP/DREP): the fuzzer constructs a well-formed
// message from primitive inputs, then the encode -> decode -> encode
// round trip must be the identity on the wire bytes. Seed corpora are
// checked in under testdata/fuzz/; CI runs each target briefly. Run one
// longer with e.g.:
//
//	go test -run xxx -fuzz FuzzRREQRoundTrip -fuzztime 60s ./internal/wire/
//
// Unlike FuzzDecode (adversarial bytes in), these guard the encoder
// domain: every message the protocol can legitimately build — including
// pathological blob lengths and route depths — survives the codec intact.

// roundTrip asserts Encode/Decode is the identity for pkt.
func roundTrip(t *testing.T, pkt *Packet) {
	t.Helper()
	enc := Encode(pkt)
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode of freshly encoded %s failed: %v", pkt.Msg.Type(), err)
	}
	if string(Encode(dec)) != string(enc) {
		t.Fatalf("%s: round trip altered the wire bytes", pkt.Msg.Type())
	}
	if normalize(pkt) != normalize(dec) {
		t.Fatalf("%s: round trip altered the content\n in: %#v\nout: %#v", pkt.Msg.Type(), pkt, dec)
	}
}

// clampBlob bounds fuzzer-supplied blobs to the codec's field limit.
func clampBlob(b []byte) []byte {
	if len(b) > 1024 {
		return b[:1024]
	}
	return b
}

func FuzzRREQRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint32(7), []byte{0xaa, 0xbb}, []byte{0x01}, uint64(9), uint8(3), int64(5))
	f.Add(uint64(0), uint64(0), uint32(0), []byte{}, []byte{}, uint64(0), uint8(0), int64(0))
	f.Add(^uint64(0), ^uint64(0), ^uint32(0), make([]byte, 64), make([]byte, 32), ^uint64(0), uint8(200), int64(-1))
	f.Fuzz(func(t *testing.T, sip, dip uint64, seq uint32, srcSig, spk []byte, srn uint64, hops uint8, hopSeed int64) {
		m := &RREQ{
			SIP: ipv6.SiteLocal(0, sip), DIP: ipv6.SiteLocal(0, dip), Seq: seq,
			SrcSig: clampBlob(srcSig), SPK: clampBlob(spk), Srn: srn,
		}
		r := rand.New(rand.NewSource(hopSeed))
		for i := 0; i < int(hops)%16; i++ {
			h := HopAttestation{IP: ipv6.SiteLocal(uint16(i), r.Uint64()), Rn: r.Uint64()}
			if r.Intn(2) == 0 { // mix of secure and baseline-style hops
				h.Sig = make([]byte, r.Intn(80))
				r.Read(h.Sig)
				h.PK = make([]byte, r.Intn(64))
				r.Read(h.PK)
			}
			m.SRR = append(m.SRR, h)
		}
		roundTrip(t, &Packet{Src: m.SIP, Dst: ipv6.AllNodes, TTL: uint8(seq), Msg: m})
	})
}

func FuzzCREPRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(3), uint32(4), uint32(5),
		[]byte{0x01}, []byte{0x02}, uint64(6), []byte{0x03}, []byte{0x04}, uint64(7), uint8(2), uint8(3))
	f.Add(uint64(0), uint64(0), uint64(0), uint32(0), uint32(0),
		[]byte{}, []byte{}, uint64(0), []byte{}, []byte{}, uint64(0), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, s2, sip, dip uint64, seq2, seq uint32,
		sig1, spk []byte, srn uint64, sig2, dpk []byte, drn uint64, nToS, nToD uint8) {
		route := func(n uint8, salt uint64) []ipv6.Addr {
			var rr []ipv6.Addr
			for i := 0; i < int(n)%12; i++ {
				rr = append(rr, ipv6.SiteLocal(uint16(i), salt+uint64(i)))
			}
			return rr
		}
		m := &CREP{
			S2IP: ipv6.SiteLocal(0, s2), SIP: ipv6.SiteLocal(0, sip), DIP: ipv6.SiteLocal(0, dip),
			Seq2: seq2, RRToS: route(nToS, s2), Sig1: clampBlob(sig1), SPK: clampBlob(spk), Srn: srn,
			Seq: seq, RRToD: route(nToD, dip), Sig2: clampBlob(sig2), DPK: clampBlob(dpk), Drn: drn,
		}
		roundTrip(t, &Packet{Src: m.SIP, Dst: m.S2IP, TTL: 32, SrcRoute: route(nToS, s2+1), Msg: m})
	})
}

func FuzzRERRRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(2), []byte{0x09}, []byte{0x08}, uint64(7), uint8(3))
	f.Add(uint64(0), uint64(0), []byte{}, []byte{}, uint64(0), uint8(0))
	f.Fuzz(func(t *testing.T, iip, nip uint64, sig, ipk []byte, irn uint64, hop uint8) {
		m := &RERR{
			IIP: ipv6.SiteLocal(0, iip), NIP: ipv6.SiteLocal(0, nip),
			Sig: clampBlob(sig), IPK: clampBlob(ipk), Irn: irn,
		}
		roundTrip(t, &Packet{Src: m.IIP, Dst: m.NIP, TTL: 16, Hop: hop, Msg: m})
	})
}

// FuzzAREPRoundTrip is the dedicated target for the address objection —
// the message whose CGA proof and challenge signature make duplicate
// claims unforgeable. FuzzDADRoundTrip sweeps the whole DAD family in
// lockstep; this target lets the corpus evolve AREP-specific shapes
// (route record vs source route divergence, unparseable key blobs,
// boundary modifier values) without the shared-input coupling.
func FuzzAREPRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(3), []byte{0x05}, []byte{0x06}, uint64(7), uint64(9))
	f.Add(uint64(0), uint8(0), []byte{}, []byte{}, uint64(0), uint64(0))
	f.Add(^uint64(0), uint8(200), make([]byte, 64), make([]byte, 32), ^uint64(0), uint64(1))
	f.Fuzz(func(t *testing.T, sip uint64, rrLen uint8, sig, pk []byte, rn, salt uint64) {
		contested := ipv6.SiteLocal(0, sip)
		var rr, sr []ipv6.Addr
		for i := 0; i < int(rrLen)%12; i++ {
			rr = append(rr, ipv6.SiteLocal(uint16(i), salt+uint64(i)))
			sr = append(sr, ipv6.SiteLocal(uint16(i)+1, salt^uint64(i)))
		}
		roundTrip(t, &Packet{Src: contested, Dst: contested, TTL: 8, SrcRoute: sr,
			Msg: &AREP{SIP: contested, RR: rr, Sig: clampBlob(sig), PK: clampBlob(pk), Rn: rn}})
	})
}

// FuzzDREPRoundTrip is the dedicated target for the DNS server's
// domain-name objection: its distinguishing fields are the name string
// (arbitrary UTF-8 from the fuzzer, clamped to the codec's length cap)
// and the anchor signature blob.
func FuzzDREPRoundTrip(f *testing.F) {
	f.Add(uint64(1), "node-a", uint8(2), []byte{0x07}, uint64(5))
	f.Add(uint64(0), "", uint8(0), []byte{}, uint64(0))
	f.Add(^uint64(0), "a.very.long.registered.name", uint8(11), make([]byte, 96), ^uint64(0))
	f.Fuzz(func(t *testing.T, sip uint64, dn string, rrLen uint8, sig []byte, salt uint64) {
		if len(dn) > 255 {
			dn = dn[:255]
		}
		contested := ipv6.SiteLocal(0, sip)
		var rr []ipv6.Addr
		for i := 0; i < int(rrLen)%12; i++ {
			rr = append(rr, ipv6.SiteLocal(uint16(i), salt+uint64(i)+1))
		}
		roundTrip(t, &Packet{Src: contested, Dst: contested, TTL: 8,
			Msg: &DREP{SIP: contested, RR: rr, DN: dn, Sig: clampBlob(sig)}})
	})
}

// FuzzAuditAdvRoundTrip is the dedicated target for the post-formation
// audit re-advertisement: a flooded message whose distinguishing shape is
// the hop-accumulated route record next to a growing sweep round counter
// and the signed (sig, pk) proof blobs.
func FuzzAuditAdvRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint32(2), uint64(3), uint8(4), []byte{0x05}, []byte{0x06}, uint64(7), uint64(8))
	f.Add(uint64(0), uint32(0), uint64(0), uint8(0), []byte{}, []byte{}, uint64(0), uint64(0))
	f.Add(^uint64(0), ^uint32(0), ^uint64(0), uint8(200), make([]byte, 64), make([]byte, 32), ^uint64(0), uint64(1))
	f.Fuzz(func(t *testing.T, sip uint64, seq uint32, ch uint64, rrLen uint8, sig, pk []byte, rn, salt uint64) {
		owned := ipv6.SiteLocal(0, sip)
		var rr []ipv6.Addr
		for i := 0; i < int(rrLen)%12; i++ {
			rr = append(rr, ipv6.SiteLocal(uint16(i), salt+uint64(i)))
		}
		roundTrip(t, &Packet{Src: owned, Dst: ipv6.AllNodes, TTL: uint8(seq), Msg: &AuditAdv{
			SIP: owned, Seq: seq, Ch: ch, RR: rr, Sig: clampBlob(sig), PK: clampBlob(pk), Rn: rn}})
	})
}

// FuzzAuditObjectionRoundTrip is the dedicated target for the audit
// objection — the message that turns a heard conflicting advertisement into
// a deterministic resolution. Its shape diverges from the AREP's by the
// echoed challenge travelling in the clear next to the proof blobs.
func FuzzAuditObjectionRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint64(9), []byte{0x05}, []byte{0x06}, uint64(7), uint64(11))
	f.Add(uint64(0), uint8(0), uint64(0), []byte{}, []byte{}, uint64(0), uint64(0))
	f.Add(^uint64(0), uint8(200), ^uint64(0), make([]byte, 64), make([]byte, 32), ^uint64(0), uint64(1))
	f.Fuzz(func(t *testing.T, sip uint64, rrLen uint8, ch uint64, sig, pk []byte, rn, salt uint64) {
		contested := ipv6.SiteLocal(0, sip)
		var rr, sr []ipv6.Addr
		for i := 0; i < int(rrLen)%12; i++ {
			rr = append(rr, ipv6.SiteLocal(uint16(i), salt+uint64(i)))
			sr = append(sr, ipv6.SiteLocal(uint16(i)+1, salt^uint64(i)))
		}
		roundTrip(t, &Packet{Src: contested, Dst: contested, TTL: 8, SrcRoute: sr, Msg: &AuditObj{
			SIP: contested, RR: rr, Ch: ch, Sig: clampBlob(sig), PK: clampBlob(pk), Rn: rn}})
	})
}

// FuzzDADRoundTrip covers the secure-DAD message family: the flooded AREQ
// and the two objection replies (AREP, DREP) that answer it.
func FuzzDADRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint32(2), "node-a", uint64(3), uint8(4), []byte{0x05}, []byte{0x06}, uint64(7))
	f.Add(uint64(0), uint32(0), "", uint64(0), uint8(0), []byte{}, []byte{}, uint64(0))
	f.Fuzz(func(t *testing.T, sip uint64, seq uint32, dn string, ch uint64, rrLen uint8, sig, pk []byte, rn uint64) {
		if len(dn) > 255 {
			dn = dn[:255]
		}
		var rr []ipv6.Addr
		for i := 0; i < int(rrLen)%12; i++ {
			rr = append(rr, ipv6.SiteLocal(uint16(i), sip+uint64(i)+1))
		}
		addr := ipv6.SiteLocal(0, sip)
		roundTrip(t, &Packet{Src: addr, Dst: ipv6.AllNodes, TTL: 64,
			Msg: &AREQ{SIP: addr, Seq: seq, DN: dn, Ch: ch, RR: rr}})
		roundTrip(t, &Packet{Src: addr, Dst: addr, TTL: 8, SrcRoute: rr,
			Msg: &AREP{SIP: addr, RR: rr, Sig: clampBlob(sig), PK: clampBlob(pk), Rn: rn}})
		roundTrip(t, &Packet{Src: addr, Dst: addr, TTL: 8,
			Msg: &DREP{SIP: addr, RR: rr, DN: dn, Sig: clampBlob(sig)}})
	})
}
