package wire

import (
	"fmt"

	"sbr6/internal/ipv6"
)

// DefaultTTL bounds flood diameter; 64 matches common IPv6 hop limits and
// exceeds any diameter our scenarios produce.
const DefaultTTL = 64

// Packet is the network-layer envelope around a Message: source and
// destination addresses, a hop limit, and — for unicasts — the DSR source
// route being followed.
//
// SrcRoute lists the intermediate hops only (the paper's RR convention);
// the full path is Src, SrcRoute..., Dst. Hop counts how many forwarding
// steps have been taken: the next receiver is SrcRoute[Hop] while
// Hop < len(SrcRoute), then Dst.
type Packet struct {
	Src      ipv6.Addr
	Dst      ipv6.Addr // AllNodes for floods
	TTL      uint8
	Hop      uint8
	SrcRoute []ipv6.Addr
	Msg      Message
}

// Flood reports whether the packet is a network-wide broadcast.
func (p *Packet) Flood() bool { return p.Dst == ipv6.AllNodes }

// NextHop returns the address the packet should be handed to next, given
// the current Hop index. ok is false when the route is exhausted
// (the packet is at, or addressed to, its destination).
func (p *Packet) NextHop() (ipv6.Addr, bool) {
	if int(p.Hop) < len(p.SrcRoute) {
		return p.SrcRoute[p.Hop], true
	}
	if int(p.Hop) == len(p.SrcRoute) {
		return p.Dst, true
	}
	return ipv6.Addr{}, false
}

// encodeInto writes the packet's field sequence through w — the single
// definition of the frame layout shared by Encode, AppendEncode and the
// counting EncodedSize.
func encodeInto(w *writer, p *Packet) {
	if p.Msg == nil {
		panic("wire: Encode with nil message")
	}
	w.addr(p.Src)
	w.addr(p.Dst)
	w.u8(p.TTL)
	w.u8(p.Hop)
	w.route(p.SrcRoute)
	w.u8(uint8(p.Msg.Type()))
	p.Msg.encodeBody(w)
}

// Encode serializes the packet. It panics on nil Msg or oversized fields —
// both are programming errors on the sending side, never input errors.
func Encode(p *Packet) []byte {
	return AppendEncode(make([]byte, 0, 128), p)
}

// AppendEncode serializes the packet into dst (appending from its current
// length) and returns the extended slice — the pooled-buffer variant of
// Encode. With dst capacity of at least EncodedSize(p) free it performs no
// allocation; the transmit paths obtain exactly that from their medium's
// frame pool.
func AppendEncode(dst []byte, p *Packet) []byte {
	w := writer{buf: dst}
	encodeInto(&w, p)
	return w.buf
}

// Decode parses a frame previously produced by Encode. Malformed input
// yields an error, never a panic: frames may come from adversaries.
func Decode(b []byte) (*Packet, error) {
	r := &reader{buf: b}
	p := &Packet{
		Src:      r.addr(),
		Dst:      r.addr(),
		TTL:      r.u8(),
		Hop:      r.u8(),
		SrcRoute: r.route(),
	}
	t := Type(r.u8())
	if r.err != nil {
		return nil, r.err
	}
	m, err := decodeBody(t, r)
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	p.Msg = m
	return p, nil
}

// Encoder amortizes the codec's scratch state across encodes. The writer
// escapes to the heap on every package-level Encode/AppendEncode call
// (the encodeBody interface call defeats escape analysis), so hot paths
// that encode per transmission keep an Encoder in their long-lived state
// — one heap allocation for its lifetime instead of two per packet.
// An Encoder is single-threaded, like everything else in the simulator.
type Encoder struct {
	w writer
}

// AppendEncode is AppendEncode over the encoder's reusable writer.
func (e *Encoder) AppendEncode(dst []byte, p *Packet) []byte {
	e.w = writer{buf: dst}
	encodeInto(&e.w, p)
	buf := e.w.buf
	e.w.buf = nil // never retain the caller's (possibly pooled) buffer
	return buf
}

// Size is EncodedSize over the encoder's reusable writer.
func (e *Encoder) Size(p *Packet) int {
	e.w = writer{count: true}
	encodeInto(&e.w, p)
	return e.w.n
}

// EncodedSize returns the wire size of the packet without encoding it:
// the writer runs the identical field walk in counting mode, so the
// result agrees with len(Encode(p)) byte-for-byte (the codec property
// test holds it there) at zero allocations. The transmit paths use it to
// size pooled frame buffers exactly; the overhead accounting of
// experiment T1/E1 uses it directly.
func EncodedSize(p *Packet) int {
	w := writer{count: true}
	encodeInto(&w, p)
	return w.n
}

// String summarizes the packet for transcripts.
func (p *Packet) String() string {
	return fmt.Sprintf("%s %s->%s ttl=%d hops=%d", p.Msg.Type(), p.Src, p.Dst, p.TTL, len(p.SrcRoute))
}

// --- Canonical signing strings ---
//
// Every signature in the protocol covers one of the byte strings below.
// Each begins with a distinct domain-separation tag so that a signature
// obtained for one purpose can never be replayed as a different message —
// the codified version of the paper's "the attackers have to know how to
// encrypt either the challenge or the sequence number" argument.

func sigBytes(tag byte, build func(w *writer)) []byte {
	w := &writer{buf: make([]byte, 0, 64)}
	w.u8(tag)
	build(w)
	return w.buf
}

// SigAREP is the owner's proof for an address objection: (SIP, ch).
func SigAREP(sip ipv6.Addr, ch uint64) []byte {
	return sigBytes(0x01, func(w *writer) { w.addr(sip); w.u64(ch) })
}

// SigDREP is the DNS server's proof for a name objection: (DN, ch).
func SigDREP(dn string, ch uint64) []byte {
	return sigBytes(0x02, func(w *writer) { w.str(dn); w.u64(ch) })
}

// SigRREQSource is the source's route-request attestation: (SIP, seq).
func SigRREQSource(sip ipv6.Addr, seq uint32) []byte {
	return sigBytes(0x03, func(w *writer) { w.addr(sip); w.u32(seq) })
}

// SigHop is an intermediate hop's attestation: (IIP, seq).
func SigHop(iip ipv6.Addr, seq uint32) []byte {
	return sigBytes(0x04, func(w *writer) { w.addr(iip); w.u32(seq) })
}

// SigRREP is the destination's route attestation: (SIP, seq, RR). The same
// string authenticates the cached half of a CREP.
func SigRREP(sip ipv6.Addr, seq uint32, rr []ipv6.Addr) []byte {
	return sigBytes(0x05, func(w *writer) { w.addr(sip); w.u32(seq); w.route(rr) })
}

// SigRERR is the relay's link-break attestation: (IIP, NIP).
func SigRERR(iip, nip ipv6.Addr) []byte {
	return sigBytes(0x06, func(w *writer) { w.addr(iip); w.addr(nip) })
}

// SigDNSAnswer authenticates a lookup answer: (name, IP, found, ch).
func SigDNSAnswer(name string, ip ipv6.Addr, found bool, ch uint64) []byte {
	return sigBytes(0x07, func(w *writer) { w.str(name); w.addr(ip); w.bool(found); w.u64(ch) })
}

// SigUpdateChal authenticates the DNS challenge: (name, ch).
func SigUpdateChal(name string, ch uint64) []byte {
	return sigBytes(0x08, func(w *writer) { w.str(name); w.u64(ch) })
}

// SigUpdate is the holder's address-change proof: (oldIP, newIP, ch).
func SigUpdate(oldIP, newIP ipv6.Addr, ch uint64) []byte {
	return sigBytes(0x09, func(w *writer) { w.addr(oldIP); w.addr(newIP); w.u64(ch) })
}

// SigUpdateResult authenticates the verdict: (name, ok, ch).
func SigUpdateResult(name string, ok bool, ch uint64) []byte {
	return sigBytes(0x0a, func(w *writer) { w.str(name); w.bool(ok); w.u64(ch) })
}

// SigAuditAdv is the owner's audit re-advertisement attestation:
// (SIP, seq, ch). The sweep round and challenge are covered so a captured
// advertisement cannot be replayed later with an inflated round counter to
// fake a live conflicting claimant.
func SigAuditAdv(sip ipv6.Addr, seq uint32, ch uint64) []byte {
	return sigBytes(0x0b, func(w *writer) { w.addr(sip); w.u32(seq); w.u64(ch) })
}

// SigAuditObj is the conflicting holder's audit objection proof: (SIP, ch).
// The tag differs from SigAREP so a DAD objection signature can never stand
// in for an audit objection or vice versa.
func SigAuditObj(sip ipv6.Addr, ch uint64) []byte {
	return sigBytes(0x0c, func(w *writer) { w.addr(sip); w.u64(ch) })
}
