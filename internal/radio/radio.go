// Package radio models the shared wireless medium of the MANET.
//
// The model is deliberately simple but exercises everything the protocol
// observes: unit-disk connectivity from node positions, per-receiver random
// loss, half-duplex serialization of each node's transmissions at a
// configurable bitrate, contention jitter before broadcasts, and link-layer
// acknowledgements for unicasts (modeling the 802.11 ACK, which is what DSR
// route maintenance uses to detect broken links).
//
// Nodes are identified by a NodeID playing the role of the interface's MAC
// address; IP-to-NodeID resolution is the upper layer's concern.
package radio

import (
	"time"

	"sbr6/internal/geom"
	"sbr6/internal/sim"
)

// NodeID identifies a radio interface (the simulated MAC address).
type NodeID int

// Handler receives link-layer frames addressed to (or overheard by) a node.
type Handler interface {
	// Deliver is invoked once per received frame with the transmitter's
	// NodeID and the payload. The payload slice must not be mutated.
	Deliver(from NodeID, payload []byte)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from NodeID, payload []byte)

// Deliver implements Handler.
func (f HandlerFunc) Deliver(from NodeID, payload []byte) { f(from, payload) }

// PositionFunc reports a node's position at a virtual time (mobility.Track).
type PositionFunc func(t sim.Time) geom.Point

// Config parameterizes the medium.
type Config struct {
	Range           float64       // unit-disk reception radius in metres
	BitrateBps      float64       // transmission serialization rate; <=0 means instantaneous
	LossRate        float64       // independent per-receiver frame loss probability [0,1)
	PropDelay       time.Duration // fixed propagation + processing latency
	BroadcastJitter time.Duration // uniform random delay before any transmission
	MaxQueueDelay   time.Duration // frames that would start later than now+MaxQueueDelay are dropped (0 = unlimited)

	// UnicastRetries is the number of link-layer retransmissions after an
	// unacknowledged unicast (the 802.11 retry counter). Zero keeps every
	// loss visible to the routing layer; broadcasts are never retried.
	UnicastRetries int
}

// DefaultConfig mimics a 2 Mb/s 802.11-style radio with a 250 m range.
func DefaultConfig() Config {
	return Config{
		Range:           250,
		BitrateBps:      2e6,
		LossRate:        0,
		PropDelay:       5 * time.Microsecond,
		BroadcastJitter: 2 * time.Millisecond,
		MaxQueueDelay:   500 * time.Millisecond,
	}
}

// Stats aggregates link-layer counters for overhead accounting.
type Stats struct {
	TxFrames      uint64
	TxBytes       uint64
	RxFrames      uint64
	LostFrames    uint64 // in range but dropped by the loss process
	QueueDrops    uint64 // dropped because the transmit queue was saturated
	UnicastFails  uint64 // unicast attempts with no ACK (out of range, down, or lost)
	Retries       uint64 // link-layer retransmissions triggered
	BroadcastSent uint64
	UnicastSent   uint64
}

type port struct {
	id        NodeID
	pos       PositionFunc
	handler   Handler
	busyUntil sim.Time
	down      bool
}

// Medium is the shared channel all nodes transmit on.
type Medium struct {
	sim   *sim.Simulator
	cfg   Config
	ports map[NodeID]*port
	order []NodeID // deterministic receiver iteration
	stats Stats
}

// New creates a medium on the given simulator.
func New(s *sim.Simulator, cfg Config) *Medium {
	if cfg.Range <= 0 {
		cfg.Range = 250
	}
	return &Medium{sim: s, cfg: cfg, ports: make(map[NodeID]*port)}
}

// Config returns the medium's configuration.
func (m *Medium) Config() Config { return m.cfg }

// Stats returns a snapshot of the link-layer counters.
func (m *Medium) Stats() Stats { return m.stats }

// AddNode attaches a node to the medium. Adding the same id twice panics:
// that is always a harness bug.
func (m *Medium) AddNode(id NodeID, pos PositionFunc, h Handler) {
	if _, dup := m.ports[id]; dup {
		panic("radio: duplicate NodeID")
	}
	if pos == nil || h == nil {
		panic("radio: nil position or handler")
	}
	m.ports[id] = &port{id: id, pos: pos, handler: h}
	m.order = append(m.order, id)
}

// SetDown marks a node as failed (true) or restored (false). Down nodes
// neither transmit nor receive.
func (m *Medium) SetDown(id NodeID, down bool) {
	if p, ok := m.ports[id]; ok {
		p.down = down
	}
}

// PositionOf returns the node's current position.
func (m *Medium) PositionOf(id NodeID) geom.Point {
	return m.ports[id].pos(m.sim.Now())
}

// Neighbors returns the ids currently within range of id, in attachment
// order. Down nodes are excluded.
func (m *Medium) Neighbors(id NodeID) []NodeID {
	p, ok := m.ports[id]
	if !ok || p.down {
		return nil
	}
	now := m.sim.Now()
	at := p.pos(now)
	r2 := m.cfg.Range * m.cfg.Range
	var out []NodeID
	for _, oid := range m.order {
		if oid == id {
			continue
		}
		o := m.ports[oid]
		if o.down {
			continue
		}
		if at.Dist2(o.pos(now)) <= r2 {
			out = append(out, oid)
		}
	}
	return out
}

// InRange reports whether b currently hears a.
func (m *Medium) InRange(a, b NodeID) bool {
	pa, ok1 := m.ports[a]
	pb, ok2 := m.ports[b]
	if !ok1 || !ok2 || pa.down || pb.down {
		return false
	}
	now := m.sim.Now()
	return pa.pos(now).Dist2(pb.pos(now)) <= m.cfg.Range*m.cfg.Range
}

// txDuration returns the serialization time of a frame.
func (m *Medium) txDuration(size int) sim.Duration {
	if m.cfg.BitrateBps <= 0 {
		return 0
	}
	return sim.Duration(float64(size*8) / m.cfg.BitrateBps * float64(time.Second))
}

// Broadcast queues a link-layer broadcast from the given node. Delivery to
// each in-range, up receiver happens after serialization + propagation,
// subject to the loss process.
func (m *Medium) Broadcast(from NodeID, payload []byte) {
	m.transmit(from, payload, nil, nil)
}

// Unicast queues a link-layer unicast to a specific neighbour. acked, if
// non-nil, is invoked exactly once when the (simulated) link-layer ACK
// outcome is known: true when the frame was delivered, possibly after
// Config.UnicastRetries retransmissions.
func (m *Medium) Unicast(from, to NodeID, payload []byte, acked func(bool)) {
	m.unicastAttempt(from, to, payload, acked, m.cfg.UnicastRetries)
}

func (m *Medium) unicastAttempt(from, to NodeID, payload []byte, acked func(bool), retries int) {
	m.transmit(from, payload, &to, func(ok bool) {
		if !ok && retries > 0 {
			m.stats.Retries++
			m.unicastAttempt(from, to, payload, acked, retries-1)
			return
		}
		if acked != nil {
			acked(ok)
		}
	})
}

func (m *Medium) transmit(from NodeID, payload []byte, to *NodeID, acked func(bool)) {
	p, ok := m.ports[from]
	if !ok {
		panic("radio: transmit from unknown node")
	}
	if p.down {
		m.stats.QueueDrops++
		if acked != nil {
			m.sim.After(0, func() { acked(false) })
		}
		return
	}

	now := m.sim.Now()
	start := now.Add(m.sim.Jitter(m.cfg.BroadcastJitter))
	if p.busyUntil > start {
		start = p.busyUntil
	}
	if m.cfg.MaxQueueDelay > 0 && start.Sub(now) > m.cfg.MaxQueueDelay {
		m.stats.QueueDrops++
		if acked != nil {
			m.sim.After(0, func() { acked(false) })
		}
		return
	}
	dur := m.txDuration(len(payload))
	p.busyUntil = start.Add(dur)

	m.stats.TxFrames++
	m.stats.TxBytes += uint64(len(payload))
	if to == nil {
		m.stats.BroadcastSent++
	} else {
		m.stats.UnicastSent++
	}

	end := start.Add(dur)
	m.sim.At(end, func() {
		m.complete(p, payload, to, acked)
	})
}

// complete runs at the end of serialization: it samples receivers from
// positions at that instant and schedules deliveries.
func (m *Medium) complete(p *port, payload []byte, to *NodeID, acked func(bool)) {
	if p.down { // went down mid-transmission
		if acked != nil {
			acked(false)
		}
		return
	}
	now := m.sim.Now()
	at := p.pos(now)
	r2 := m.cfg.Range * m.cfg.Range
	delivered := false
	for _, oid := range m.order {
		if oid == p.id {
			continue
		}
		o := m.ports[oid]
		if o.down || at.Dist2(o.pos(now)) > r2 {
			continue
		}
		if to != nil && oid != *to {
			// A real radio would overhear unicasts too; the protocol does
			// not rely on promiscuous mode, so unicast frames are delivered
			// only to the addressee.
			continue
		}
		if m.cfg.LossRate > 0 && m.sim.Rand().Float64() < m.cfg.LossRate {
			m.stats.LostFrames++
			continue
		}
		m.stats.RxFrames++
		delivered = true
		dst := o
		m.sim.After(m.cfg.PropDelay, func() {
			if !dst.down {
				dst.handler.Deliver(p.id, payload)
			}
		})
	}
	if to != nil && !delivered {
		m.stats.UnicastFails++
	}
	if acked != nil {
		acked(delivered)
	}
}
