// Package radio models the shared wireless medium of the MANET.
//
// The model is deliberately simple but exercises everything the protocol
// observes: unit-disk connectivity from node positions, per-receiver random
// loss, half-duplex serialization of each node's transmissions at a
// configurable bitrate, contention jitter before broadcasts, and link-layer
// acknowledgements for unicasts (modeling the 802.11 ACK, which is what DSR
// route maintenance uses to detect broken links).
//
// Nodes are identified by a NodeID playing the role of the interface's MAC
// address; IP-to-NodeID resolution is the upper layer's concern.
//
// Receiver lookup is pluggable (see IndexKind): a linear scan over all
// ports, or a uniform spatial hash grid that answers Neighbors and
// broadcast fan-out from the 3x3-cell neighbourhood of the transmitter.
// Both produce byte-for-byte identical simulation results; the grid exists
// purely to make 1k-10k-node scenarios affordable.
package radio

import (
	"math"
	"math/bits"
	"time"

	"sbr6/internal/geom"
	"sbr6/internal/pool"
	"sbr6/internal/sim"
)

// NodeID identifies a radio interface (the simulated MAC address).
type NodeID int

// Handler receives link-layer frames addressed to (or overheard by) a node.
type Handler interface {
	// Deliver is invoked once per received frame with the transmitter's
	// NodeID and the payload. The payload slice must not be mutated and
	// must not be retained past Deliver's return: under the pooled wire
	// path one encoded frame is shared by every receiver of a broadcast
	// and recycled once the last delivery completes. A handler that needs
	// the bytes later must copy them (wire.Decode already copies every
	// variable-length field, so decoding counts as copying).
	Deliver(from NodeID, payload []byte)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from NodeID, payload []byte)

// Deliver implements Handler.
func (f HandlerFunc) Deliver(from NodeID, payload []byte) { f(from, payload) }

// PositionFunc reports a node's position at a virtual time (mobility.Track).
type PositionFunc func(t sim.Time) geom.Point

// IndexKind selects the neighbor-index implementation behind Neighbors and
// broadcast fan-out. Every kind produces byte-for-byte identical simulation
// results — same receiver sets, same delivery ordering, same RNG consumption
// — so the choice is purely a time/space trade-off.
type IndexKind int

// Index kinds.
const (
	// IndexAuto (the zero value) scans linearly for small networks and
	// switches to the spatial grid once the node count reaches
	// AutoGridThreshold.
	IndexAuto IndexKind = iota
	// IndexNaive always scans every attached port: O(N) per query.
	IndexNaive
	// IndexGrid always uses the uniform spatial hash grid: O(density) per
	// query after O(movers) amortized re-bucketing.
	IndexGrid
)

// AutoGridThreshold is the node count at which IndexAuto switches from the
// linear scan to the spatial grid. Below it the constant factors of the
// grid (hashing, candidate sort) are not worth paying.
const AutoGridThreshold = 64

// Config parameterizes the medium.
type Config struct {
	Range           float64       // unit-disk reception radius in metres
	BitrateBps      float64       // transmission serialization rate; <=0 means instantaneous
	LossRate        float64       // independent per-receiver frame loss probability [0,1)
	PropDelay       time.Duration // fixed propagation + processing latency
	BroadcastJitter time.Duration // uniform random delay before any transmission
	MaxQueueDelay   time.Duration // frames that would start later than now+MaxQueueDelay are dropped (0 = unlimited)

	// UnicastRetries is the number of link-layer retransmissions after an
	// unacknowledged unicast (the 802.11 retry counter). Zero keeps every
	// loss visible to the routing layer; broadcasts are never retried.
	UnicastRetries int

	// Index selects the neighbor-index implementation; the zero value
	// auto-picks by network size. Results are identical for every kind.
	Index IndexKind

	// FramePool enables the pooled zero-alloc wire path: frame buffers
	// come from per-medium size-class pools (Frame/ReleaseFrame), one
	// encoded frame is shared across every receiver of a broadcast and
	// released after the last delivery, and the transmit/delivery
	// bookkeeping itself (jobs, delivery batches, event structs) is
	// recycled. Pooled and unpooled runs are byte-for-byte identical —
	// same receiver sets, delivery ordering and RNG consumption; the
	// differential suite in this package is the proof. The zero value is
	// off (the honest allocation baseline); DefaultConfig turns it on.
	FramePool bool

	// PoisonFrames (debug) fills every released frame with a marker byte
	// so a handler that retained a frame slice past Deliver's return sees
	// garbage instead of silently reading recycled memory. Only
	// meaningful with FramePool; the retention tests run under it.
	PoisonFrames bool
}

// DefaultConfig mimics a 2 Mb/s 802.11-style radio with a 250 m range.
func DefaultConfig() Config {
	return Config{
		Range:           250,
		BitrateBps:      2e6,
		LossRate:        0,
		PropDelay:       5 * time.Microsecond,
		BroadcastJitter: 2 * time.Millisecond,
		MaxQueueDelay:   500 * time.Millisecond,
		FramePool:       true,
	}
}

// Stats aggregates link-layer counters for overhead accounting.
type Stats struct {
	TxFrames      uint64
	TxBytes       uint64
	RxFrames      uint64
	LostFrames    uint64 // in range but dropped by the loss process
	QueueDrops    uint64 // dropped because the transmit queue was saturated
	UnicastFails  uint64 // unicast attempts with no ACK (out of range, down, or lost)
	Retries       uint64 // link-layer retransmissions triggered
	BroadcastSent uint64
	UnicastSent   uint64
}

type port struct {
	id        NodeID
	ord       int // attachment ordinal; receiver iteration is sorted by it
	pos       PositionFunc
	handler   Handler
	busyUntil sim.Time
	down      bool
}

// Medium is the shared channel all nodes transmit on.
//
// Receiver lookup runs either as a linear scan over every attached port or
// through a uniform spatial hash grid (see IndexKind). The grid caches one
// bucketed position per node and re-buckets lazily: nodes with a declared
// speed bound (SetSpeedBound) are swept at most once per staleness quantum,
// and queries widen their radius by the maximum drift a bounded node can
// accumulate within that quantum, so pruning never loses a true neighbour.
// Nodes without a bound are re-bucketed exactly whenever the clock moved —
// always correct, but worth avoiding on the hot path.
type Medium struct {
	sim   *sim.Simulator
	cfg   Config
	ports map[NodeID]*port
	order []NodeID // deterministic receiver iteration
	byOrd []*port  // ports indexed by attachment ordinal
	stats Stats

	// Spatial index state; grid == nil means linear scan.
	grid        *geom.Grid
	speeds      []float64 // per-ord speed bound; < 0 = unbounded/unknown
	nUnbounded  int       // how many speeds are < 0
	maxSpeed    float64   // max declared bound, never decreases
	lastSweep   sim.Time  // last re-bucket sweep of bounded movers
	unboundedAt sim.Time  // instant the unbounded nodes were last re-bucketed
	candBits    []uint64  // reusable candidate bitset (single-threaded sim)
	nbHint      int       // size of the last Neighbors result, pre-sizes the next

	// Pooled wire path state (nil/empty when Config.FramePool is off):
	// the frame buffer pool plus free lists of transmit jobs and delivery
	// batches. All strictly per-medium — the single-goroutine discipline
	// the sharded-core roadmap item depends on.
	pool        *pool.Pool
	freeJobs    *txJob
	freeBatches *deliveryBatch
}

// New creates a medium on the given simulator.
func New(s *sim.Simulator, cfg Config) *Medium {
	if cfg.Range <= 0 {
		cfg.Range = 250
	}
	m := &Medium{sim: s, cfg: cfg, ports: make(map[NodeID]*port)}
	if cfg.FramePool {
		m.pool = pool.New()
		m.pool.SetPoison(cfg.PoisonFrames)
	}
	return m
}

// Config returns the medium's configuration.
func (m *Medium) Config() Config { return m.cfg }

// GridActive reports whether receiver lookup currently runs through the
// spatial grid (as opposed to the linear port scan).
func (m *Medium) GridActive() bool { return m.grid != nil }

// Stats returns a snapshot of the link-layer counters.
func (m *Medium) Stats() Stats { return m.stats }

// AddNode attaches a node to the medium. Adding the same id twice panics:
// that is always a harness bug. New nodes are treated as unbounded movers
// until SetSpeedBound declares otherwise.
func (m *Medium) AddNode(id NodeID, pos PositionFunc, h Handler) {
	if _, dup := m.ports[id]; dup {
		panic("radio: duplicate NodeID")
	}
	if pos == nil || h == nil {
		panic("radio: nil position or handler")
	}
	p := &port{id: id, ord: len(m.order), pos: pos, handler: h}
	m.ports[id] = p
	m.order = append(m.order, id)
	m.byOrd = append(m.byOrd, p)
	m.speeds = append(m.speeds, -1)
	m.nUnbounded++
	switch {
	case m.grid != nil:
		m.grid.Set(p.ord, pos(m.sim.Now()))
	case m.cfg.Index == IndexGrid,
		m.cfg.Index == IndexAuto && len(m.order) >= AutoGridThreshold:
		m.enableGrid()
	}
}

// SetSpeedBound declares that the node's position function never moves
// faster than metresPerSec (zero = static). The spatial grid relies on the
// bound to re-bucket lazily instead of on every query; declare it before
// the node starts moving, and never below the node's true top speed.
// Negative, NaN or infinite values mark the node unbounded again.
func (m *Medium) SetSpeedBound(id NodeID, metresPerSec float64) {
	p, ok := m.ports[id]
	if !ok {
		return
	}
	if metresPerSec < 0 || math.IsNaN(metresPerSec) || math.IsInf(metresPerSec, 0) {
		metresPerSec = -1
	}
	old := m.speeds[p.ord]
	if old < 0 && metresPerSec >= 0 {
		m.nUnbounded--
	} else if old >= 0 && metresPerSec < 0 {
		m.nUnbounded++
	}
	m.speeds[p.ord] = metresPerSec
	if metresPerSec > m.maxSpeed {
		m.maxSpeed = metresPerSec
	}
}

// enableGrid builds the spatial index over the already-attached ports.
func (m *Medium) enableGrid() {
	m.grid = geom.NewGrid(m.cfg.Range)
	now := m.sim.Now()
	for ord, p := range m.byOrd {
		m.grid.Set(ord, p.pos(now))
	}
	m.lastSweep = now
	m.unboundedAt = now
}

// slop is how far a bounded mover may have drifted from its bucketed
// position; queries widen their radius by it so the grid never prunes a
// true neighbour. Half the radio range balances sweep frequency against
// candidate-set size.
func (m *Medium) slop() float64 {
	if m.maxSpeed <= 0 {
		return 0
	}
	return m.cfg.Range * 0.5
}

// syncGrid re-buckets stale cached positions before a query at now:
// unbounded nodes exactly whenever the clock moved, bounded movers at most
// once per staleness quantum (slop / maxSpeed).
func (m *Medium) syncGrid(now sim.Time) {
	if m.nUnbounded > 0 && now != m.unboundedAt {
		for ord, p := range m.byOrd {
			if m.speeds[ord] < 0 {
				m.grid.Set(ord, p.pos(now))
			}
		}
		m.unboundedAt = now
	}
	if m.maxSpeed > 0 {
		quantum := sim.Duration(m.slop() / m.maxSpeed * float64(time.Second))
		if now.Sub(m.lastSweep) > quantum {
			for ord, p := range m.byOrd {
				if m.speeds[ord] > 0 {
					m.grid.Set(ord, p.pos(now))
				}
			}
			m.lastSweep = now
		}
	}
}

// gridForEach invokes fn for every port that could currently be within
// range of a transmitter at `at` — a superset; callers must re-check exact
// positions. Candidates are collected into a bitset indexed by attachment
// ordinal and drained in increasing-ordinal order, so iteration matches
// the linear scan exactly without sorting. The bitset is scratch state;
// fn must not trigger another grid query (protocol callbacks run later,
// from scheduled events, so this cannot recurse).
func (m *Medium) gridForEach(at geom.Point, now sim.Time, fn func(o *port)) {
	m.syncGrid(now)
	words := (len(m.byOrd) + 63) >> 6
	if cap(m.candBits) < words {
		m.candBits = make([]uint64, words)
	}
	bits64 := m.candBits[:words]
	m.grid.Visit(at, m.cfg.Range+m.slop(), func(id int) {
		bits64[id>>6] |= 1 << (id & 63)
	})
	for w, word := range bits64 {
		if word == 0 {
			continue
		}
		bits64[w] = 0
		base := w << 6
		for word != 0 {
			ord := base + bits.TrailingZeros64(word)
			word &= word - 1
			fn(m.byOrd[ord])
		}
	}
}

// SetDown marks a node as failed (true) or restored (false). Down nodes
// neither transmit nor receive.
func (m *Medium) SetDown(id NodeID, down bool) {
	if p, ok := m.ports[id]; ok {
		p.down = down
	}
}

// PositionOf returns the node's current position.
func (m *Medium) PositionOf(id NodeID) geom.Point {
	return m.ports[id].pos(m.sim.Now())
}

// Neighbors returns the ids currently within range of id, in attachment
// order. Down nodes are excluded. The result is a fresh slice, pre-sized to
// the previous call's count; hot paths that can recycle a buffer should use
// AppendNeighbors instead.
func (m *Medium) Neighbors(id NodeID) []NodeID {
	out := m.AppendNeighbors(id, make([]NodeID, 0, m.nbHint))
	m.nbHint = len(out)
	return out
}

// AppendNeighbors appends the ids currently within range of id to out — in
// attachment order, excluding down nodes — and returns the extended slice.
// It allocates nothing when out has sufficient capacity.
func (m *Medium) AppendNeighbors(id NodeID, out []NodeID) []NodeID {
	p, ok := m.ports[id]
	if !ok || p.down {
		return out
	}
	now := m.sim.Now()
	at := p.pos(now)
	r2 := m.cfg.Range * m.cfg.Range
	if m.grid != nil {
		m.gridForEach(at, now, func(o *port) {
			if o == p || o.down {
				return
			}
			if at.Dist2(o.pos(now)) <= r2 {
				out = append(out, o.id)
			}
		})
		return out
	}
	for _, oid := range m.order {
		if oid == id {
			continue
		}
		o := m.ports[oid]
		if o.down {
			continue
		}
		if at.Dist2(o.pos(now)) <= r2 {
			out = append(out, oid)
		}
	}
	return out
}

// InRange reports whether b currently hears a.
func (m *Medium) InRange(a, b NodeID) bool {
	pa, ok1 := m.ports[a]
	pb, ok2 := m.ports[b]
	if !ok1 || !ok2 || pa.down || pb.down {
		return false
	}
	now := m.sim.Now()
	return pa.pos(now).Dist2(pb.pos(now)) <= m.cfg.Range*m.cfg.Range
}

// txDuration returns the serialization time of a frame.
func (m *Medium) txDuration(size int) sim.Duration {
	if m.cfg.BitrateBps <= 0 {
		return 0
	}
	return sim.Duration(float64(size*8) / m.cfg.BitrateBps * float64(time.Second))
}

// --- Frame ownership (the pooled wire path) ---
//
// The buffer-ownership contract:
//
//   - Frame(size) checks a buffer out of the medium's pool; the caller
//     owns it and must either hand it back through BroadcastFrame /
//     UnicastFrame (ownership transfers to the medium) or return it with
//     ReleaseFrame on any path that never transmits.
//   - The medium releases a transmitted frame after its last use: once
//     every scheduled delivery of a broadcast has run, or — for unicasts
//     — after the delivery completes and every link-layer retry is
//     exhausted (retries retransmit the same buffer).
//   - Receivers never own the frame: Deliver borrows it for the duration
//     of the call (see Handler).
//   - The legacy Broadcast/Unicast entry points keep caller ownership:
//     the medium never releases those payloads (pre-encoded attacker
//     replays and harness traffic stay caller-owned), though with
//     FramePool on they still ride the recycled job/batch event path.
//
// With FramePool off every method below degrades to plain allocation and
// the exact historical transmit path, which is the measured baseline the
// nopool/pool BENCH_scale cells compare against.

// Frame returns a zero-length frame buffer with capacity at least size,
// drawn from the medium's size-class pool (or freshly allocated when
// pooling is off). Callers encode into it with wire.AppendEncode, sizing
// via wire.EncodedSize so the buffer never grows.
func (m *Medium) Frame(size int) []byte {
	return m.pool.Get(size) // nil pool degrades to make([]byte, 0, size)
}

// ReleaseFrame returns a frame obtained from Frame that will not be
// transmitted after all. No-op when pooling is off.
func (m *Medium) ReleaseFrame(b []byte) {
	if m.pool != nil && b != nil {
		m.pool.Put(b)
	}
}

// PoolStats reports the frame pool's traffic counters (zeros when pooling
// is off). The leak suite holds Live at zero after a drained run — every
// transmit path, including every early drop, must release its frame.
func (m *Medium) PoolStats() pool.Stats { return m.pool.Stats() }

// txJob is the recycled state of one in-flight transmission: what the
// legacy path captures in closures. A unicast job carries its own retry
// counter, so retransmissions reuse both the job and the frame.
type txJob struct {
	m       *Medium
	p       *port
	payload []byte
	release bool // medium owns payload; release after its last use
	unicast bool
	to      NodeID
	retries int
	acked   func(bool)
	next    *txJob
}

func (m *Medium) takeJob() *txJob {
	if j := m.freeJobs; j != nil {
		m.freeJobs = j.next
		j.next = nil
		return j
	}
	return &txJob{m: m}
}

func (m *Medium) putJob(j *txJob) {
	j.p, j.payload, j.acked = nil, nil, nil
	j.next = m.freeJobs
	m.freeJobs = j
}

// deliveryBatch carries one broadcast frame and every receiver that
// survived the loss process to a single delivery event, replacing one
// closure-captured event per receiver.
type deliveryBatch struct {
	m       *Medium
	from    NodeID
	frame   []byte
	release bool
	ports   []*port
	next    *deliveryBatch
}

func (m *Medium) takeBatch() *deliveryBatch {
	if b := m.freeBatches; b != nil {
		m.freeBatches = b.next
		b.next = nil
		return b
	}
	return &deliveryBatch{m: m}
}

// runBatch fires at transmission-end + PropDelay and invokes every
// surviving receiver's handler in the order the loss process visited them
// (attachment order), then releases the shared frame. Receivers that went
// down between scheduling and delivery are skipped — the same check the
// per-receiver events made.
func runBatch(v any) {
	b := v.(*deliveryBatch)
	m := b.m
	for _, o := range b.ports {
		if !o.down {
			o.handler.Deliver(b.from, b.frame)
		}
	}
	if b.release {
		m.pool.Put(b.frame)
	}
	b.frame = nil
	for i := range b.ports {
		b.ports[i] = nil
	}
	b.ports = b.ports[:0]
	b.next = m.freeBatches
	m.freeBatches = b
}

func runCompleteJob(v any) { j := v.(*txJob); j.m.completeJob(j) }
func runJobNack(v any)     { j := v.(*txJob); j.m.jobAckOutcome(j, false) }

// BroadcastFrame broadcasts a frame the caller obtained from Frame;
// ownership transfers to the medium, which releases it after the last
// delivery (or immediately on any drop path). With pooling off it is
// exactly Broadcast.
func (m *Medium) BroadcastFrame(from NodeID, frame []byte) {
	if m.pool == nil {
		m.Broadcast(from, frame)
		return
	}
	m.startJob(from, frame, true, false, 0, nil)
}

// UnicastFrame unicasts a frame the caller obtained from Frame; ownership
// transfers to the medium, which reuses the buffer across link-layer
// retries and releases it once the ACK outcome is final and any delivery
// has completed. With pooling off it is exactly Unicast.
func (m *Medium) UnicastFrame(from, to NodeID, frame []byte, acked func(bool)) {
	if m.pool == nil {
		m.Unicast(from, to, frame, acked)
		return
	}
	m.startJob(from, frame, true, true, to, acked)
}

// Broadcast queues a link-layer broadcast from the given node. Delivery to
// each in-range, up receiver happens after serialization + propagation,
// subject to the loss process. The payload stays caller-owned (never
// released), so pre-encoded or shared buffers are safe here.
func (m *Medium) Broadcast(from NodeID, payload []byte) {
	if m.pool != nil {
		m.startJob(from, payload, false, false, 0, nil)
		return
	}
	m.transmit(from, payload, nil, nil)
}

// Unicast queues a link-layer unicast to a specific neighbour. acked, if
// non-nil, is invoked exactly once when the (simulated) link-layer ACK
// outcome is known: true when the frame was delivered, possibly after
// Config.UnicastRetries retransmissions. The payload stays caller-owned.
func (m *Medium) Unicast(from, to NodeID, payload []byte, acked func(bool)) {
	if m.pool != nil {
		m.startJob(from, payload, false, true, to, acked)
		return
	}
	m.unicastAttempt(from, to, payload, acked, m.cfg.UnicastRetries)
}

// startJob builds a recycled transmit job and runs the first attempt.
func (m *Medium) startJob(from NodeID, payload []byte, release, unicast bool, to NodeID, acked func(bool)) {
	p, ok := m.ports[from]
	if !ok {
		panic("radio: transmit from unknown node")
	}
	j := m.takeJob()
	j.p, j.payload, j.release, j.unicast, j.to, j.acked = p, payload, release, unicast, to, acked
	j.retries = 0
	if unicast {
		j.retries = m.cfg.UnicastRetries
	}
	m.transmitJob(j)
}

// transmitJob mirrors transmit exactly — same RNG draws, same counters,
// same event timing — over recycled state instead of captured closures.
func (m *Medium) transmitJob(j *txJob) {
	p := j.p
	if p.down {
		m.stats.QueueDrops++
		m.dropJob(j)
		return
	}
	now := m.sim.Now()
	start := now.Add(m.sim.Jitter(m.cfg.BroadcastJitter))
	if p.busyUntil > start {
		start = p.busyUntil
	}
	if m.cfg.MaxQueueDelay > 0 && start.Sub(now) > m.cfg.MaxQueueDelay {
		m.stats.QueueDrops++
		m.dropJob(j)
		return
	}
	dur := m.txDuration(len(j.payload))
	p.busyUntil = start.Add(dur)

	m.stats.TxFrames++
	m.stats.TxBytes += uint64(len(j.payload))
	if j.unicast {
		m.stats.UnicastSent++
	} else {
		m.stats.BroadcastSent++
	}
	m.sim.DoAtArg(start.Add(dur), runCompleteJob, j)
}

// dropJob handles a transmit-time drop. Unicasts learn the outcome
// asynchronously (one scheduled event, exactly like the legacy path's
// deferred acked(false) — the retry draw must happen at the event, not
// inline); broadcasts have no observer, so the frame is released and the
// job recycled on the spot (the legacy path schedules nothing either).
func (m *Medium) dropJob(j *txJob) {
	if j.unicast {
		m.sim.DoArg(0, runJobNack, j)
		return
	}
	m.finishJob(j)
}

// finishJob releases a job's frame (when still medium-owned) and recycles
// the job.
func (m *Medium) finishJob(j *txJob) {
	if j.release {
		m.pool.Put(j.payload)
	}
	m.putJob(j)
}

// jobAckOutcome resolves one unicast attempt: retry on failure while the
// counter lasts (retransmitting the same frame), otherwise surface the
// final outcome and release the job. On success the delivery batch has
// already taken over frame ownership.
func (m *Medium) jobAckOutcome(j *txJob, ok bool) {
	if !ok && j.retries > 0 {
		m.stats.Retries++
		j.retries--
		m.transmitJob(j)
		return
	}
	acked := j.acked
	m.finishJob(j)
	if acked != nil {
		acked(ok)
	}
}

// completeJob is the pooled counterpart of complete: same receiver visit
// order, same loss draws, but broadcast survivors share one delivery
// event and the single frame travels with it.
func (m *Medium) completeJob(j *txJob) {
	p := j.p
	if p.down { // went down mid-transmission
		if j.unicast {
			m.jobAckOutcome(j, false)
			return
		}
		m.finishJob(j)
		return
	}
	now := m.sim.Now()
	at := p.pos(now)
	r2 := m.cfg.Range * m.cfg.Range

	if j.unicast {
		delivered := false
		if o, ok := m.ports[j.to]; ok && o != p && !o.down && at.Dist2(o.pos(now)) <= r2 {
			delivered = m.deliverJob(p, o, j)
		}
		if !delivered {
			m.stats.UnicastFails++
		}
		m.jobAckOutcome(j, delivered)
		return
	}

	b := m.takeBatch()
	b.from = p.id
	b.frame = j.payload
	collect := func(o *port) {
		if o == p || o.down || at.Dist2(o.pos(now)) > r2 {
			return
		}
		if m.cfg.LossRate > 0 && m.sim.Rand().Float64() < m.cfg.LossRate {
			m.stats.LostFrames++
			return
		}
		m.stats.RxFrames++
		b.ports = append(b.ports, o)
	}
	if m.grid != nil {
		m.gridForEach(at, now, collect)
	} else {
		for _, oid := range m.order {
			if oid != p.id {
				collect(m.ports[oid])
			}
		}
	}
	if len(b.ports) > 0 {
		b.release = j.release
		j.release = false // the batch owns the frame now
		m.sim.DoArg(m.cfg.PropDelay, runBatch, b)
	} else {
		b.frame = nil
		b.next = m.freeBatches
		m.freeBatches = b
	}
	m.finishJob(j) // zero receivers: releases the frame right here
}

// deliverJob applies the loss process to a unicast delivery and, when the
// frame survives, schedules a single-receiver batch that releases the
// frame after the handler runs.
func (m *Medium) deliverJob(p, o *port, j *txJob) bool {
	if m.cfg.LossRate > 0 && m.sim.Rand().Float64() < m.cfg.LossRate {
		m.stats.LostFrames++
		return false
	}
	m.stats.RxFrames++
	b := m.takeBatch()
	b.from, b.frame, b.release = p.id, j.payload, j.release
	j.release = false
	b.ports = append(b.ports, o)
	m.sim.DoArg(m.cfg.PropDelay, runBatch, b)
	return true
}

func (m *Medium) unicastAttempt(from, to NodeID, payload []byte, acked func(bool), retries int) {
	m.transmit(from, payload, &to, func(ok bool) {
		if !ok && retries > 0 {
			m.stats.Retries++
			m.unicastAttempt(from, to, payload, acked, retries-1)
			return
		}
		if acked != nil {
			acked(ok)
		}
	})
}

func (m *Medium) transmit(from NodeID, payload []byte, to *NodeID, acked func(bool)) {
	p, ok := m.ports[from]
	if !ok {
		panic("radio: transmit from unknown node")
	}
	if p.down {
		m.stats.QueueDrops++
		if acked != nil {
			m.sim.Do(0, func() { acked(false) })
		}
		return
	}

	now := m.sim.Now()
	start := now.Add(m.sim.Jitter(m.cfg.BroadcastJitter))
	if p.busyUntil > start {
		start = p.busyUntil
	}
	if m.cfg.MaxQueueDelay > 0 && start.Sub(now) > m.cfg.MaxQueueDelay {
		m.stats.QueueDrops++
		if acked != nil {
			m.sim.Do(0, func() { acked(false) })
		}
		return
	}
	dur := m.txDuration(len(payload))
	p.busyUntil = start.Add(dur)

	m.stats.TxFrames++
	m.stats.TxBytes += uint64(len(payload))
	if to == nil {
		m.stats.BroadcastSent++
	} else {
		m.stats.UnicastSent++
	}

	end := start.Add(dur)
	m.sim.DoAt(end, func() {
		m.complete(p, payload, to, acked)
	})
}

// complete runs at the end of serialization: it samples receivers from
// positions at that instant and schedules deliveries.
//
// Every path — unicast lookup, grid candidates, linear scan — visits the
// same in-range receivers in attachment order and draws the loss RNG once
// per visit, so seeded runs are byte-for-byte identical across index kinds.
func (m *Medium) complete(p *port, payload []byte, to *NodeID, acked func(bool)) {
	if p.down { // went down mid-transmission
		if acked != nil {
			acked(false)
		}
		return
	}
	now := m.sim.Now()
	at := p.pos(now)
	r2 := m.cfg.Range * m.cfg.Range
	delivered := false

	if to != nil {
		// A real radio would overhear unicasts too; the protocol does not
		// rely on promiscuous mode, so unicast frames reach only the
		// addressee — looked up directly instead of scanned for.
		if o, ok := m.ports[*to]; ok && o != p && !o.down && at.Dist2(o.pos(now)) <= r2 {
			delivered = m.deliver(p, o, payload)
		}
		if !delivered {
			m.stats.UnicastFails++
		}
		if acked != nil {
			acked(delivered)
		}
		return
	}

	if m.grid != nil {
		m.gridForEach(at, now, func(o *port) {
			if o == p || o.down || at.Dist2(o.pos(now)) > r2 {
				return
			}
			if m.deliver(p, o, payload) {
				delivered = true
			}
		})
	} else {
		for _, oid := range m.order {
			if oid == p.id {
				continue
			}
			o := m.ports[oid]
			if o.down || at.Dist2(o.pos(now)) > r2 {
				continue
			}
			if m.deliver(p, o, payload) {
				delivered = true
			}
		}
	}
	if acked != nil {
		acked(delivered)
	}
}

// deliver applies the per-receiver loss process and, when the frame
// survives, schedules the handler callback after the propagation delay. It
// reports whether the frame survived.
func (m *Medium) deliver(p, dst *port, payload []byte) bool {
	if m.cfg.LossRate > 0 && m.sim.Rand().Float64() < m.cfg.LossRate {
		m.stats.LostFrames++
		return false
	}
	m.stats.RxFrames++
	m.sim.Do(m.cfg.PropDelay, func() {
		if !dst.down {
			dst.handler.Deliver(p.id, payload)
		}
	})
	return true
}
