// Package radio models the shared wireless medium of the MANET.
//
// The model is deliberately simple but exercises everything the protocol
// observes: unit-disk connectivity from node positions, per-receiver random
// loss, half-duplex serialization of each node's transmissions at a
// configurable bitrate, contention jitter before broadcasts, and link-layer
// acknowledgements for unicasts (modeling the 802.11 ACK, which is what DSR
// route maintenance uses to detect broken links).
//
// Nodes are identified by a NodeID playing the role of the interface's MAC
// address; IP-to-NodeID resolution is the upper layer's concern.
//
// Receiver lookup is pluggable (see IndexKind): a linear scan over all
// ports, or a uniform spatial hash grid that answers Neighbors and
// broadcast fan-out from the 3x3-cell neighbourhood of the transmitter.
// Both produce byte-for-byte identical simulation results; the grid exists
// purely to make 1k-10k-node scenarios affordable.
package radio

import (
	"math"
	"math/bits"
	"time"

	"sbr6/internal/geom"
	"sbr6/internal/pool"
	"sbr6/internal/sim"
)

// NodeID identifies a radio interface (the simulated MAC address).
type NodeID int

// Handler receives link-layer frames addressed to (or overheard by) a node.
type Handler interface {
	// Deliver is invoked once per received frame with the transmitter's
	// NodeID and the payload. The payload slice must not be mutated and
	// must not be retained past Deliver's return: under the pooled wire
	// path one encoded frame is shared by every receiver of a broadcast
	// and recycled once the last delivery completes. A handler that needs
	// the bytes later must copy them (wire.Decode already copies every
	// variable-length field, so decoding counts as copying).
	Deliver(from NodeID, payload []byte)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from NodeID, payload []byte)

// Deliver implements Handler.
func (f HandlerFunc) Deliver(from NodeID, payload []byte) { f(from, payload) }

// PositionFunc reports a node's position at a virtual time (mobility.Track).
type PositionFunc func(t sim.Time) geom.Point

// IndexKind selects the neighbor-index implementation behind Neighbors and
// broadcast fan-out. Every kind produces byte-for-byte identical simulation
// results — same receiver sets, same delivery ordering, same RNG consumption
// — so the choice is purely a time/space trade-off.
type IndexKind int

// Index kinds.
const (
	// IndexAuto (the zero value) scans linearly for small networks and
	// switches to the spatial grid once the node count reaches
	// AutoGridThreshold.
	IndexAuto IndexKind = iota
	// IndexNaive always scans every attached port: O(N) per query.
	IndexNaive
	// IndexGrid always uses the uniform spatial hash grid: O(density) per
	// query after O(movers) amortized re-bucketing.
	IndexGrid
)

// AutoGridThreshold is the node count at which IndexAuto switches from the
// linear scan to the spatial grid. Below it the constant factors of the
// grid (hashing, candidate sort) are not worth paying.
const AutoGridThreshold = 64

// Config parameterizes the medium.
type Config struct {
	Range           float64       // unit-disk reception radius in metres
	BitrateBps      float64       // transmission serialization rate; <=0 means instantaneous
	LossRate        float64       // independent per-receiver frame loss probability [0,1)
	PropDelay       time.Duration // fixed propagation + processing latency
	BroadcastJitter time.Duration // uniform random delay before any transmission
	MaxQueueDelay   time.Duration // frames that would start later than now+MaxQueueDelay are dropped (0 = unlimited)

	// UnicastRetries is the number of link-layer retransmissions after an
	// unacknowledged unicast (the 802.11 retry counter). Zero keeps every
	// loss visible to the routing layer; broadcasts are never retried.
	UnicastRetries int

	// Index selects the neighbor-index implementation; the zero value
	// auto-picks by network size. Results are identical for every kind.
	Index IndexKind

	// FramePool enables the pooled zero-alloc wire path: frame buffers
	// come from per-medium size-class pools (Frame/ReleaseFrame), one
	// encoded frame is shared across every receiver of a broadcast and
	// released after the last delivery, and the transmit/delivery
	// bookkeeping itself (jobs, delivery batches, event structs) is
	// recycled. Pooled and unpooled runs are byte-for-byte identical —
	// same receiver sets, delivery ordering and RNG consumption; the
	// differential suite in this package is the proof. The zero value is
	// off (the honest allocation baseline); DefaultConfig turns it on.
	FramePool bool

	// PoisonFrames (debug) fills every released frame with a marker byte
	// so a handler that retained a frame slice past Deliver's return sees
	// garbage instead of silently reading recycled memory. Only
	// meaningful with FramePool; the retention tests run under it.
	PoisonFrames bool

	// Det switches the medium's randomness (contention jitter, the
	// per-receiver loss process) from the simulator's sequential RNG
	// stream to content-derived hashes keyed by (DetSeed, transmitter,
	// per-port transmission sequence, receiver). Hashed draws do not
	// depend on the order the medium visits receivers or on how many
	// other media share the simulator, which is what lets the sharded
	// engine split one logical medium across region-local simulators and
	// still produce byte-identical results at every shard count. Det runs
	// are NOT byte-identical to non-Det runs of the same seed — the
	// sharded differential suite compares Det@1 shard against Det@n.
	Det bool

	// DetSeed seeds the content-derived draws when Det is on.
	DetSeed uint64

	// Remote, when non-nil, is the sharded engine's view of nodes that
	// live in other regions: transmissions that may reach across the
	// region boundary are handed off through it instead of silently
	// stopping at the local port table. Only meaningful with Det.
	Remote Remote
}

// Remote is implemented by the sharded engine (one adapter per region).
// It answers pure-past queries about nodes owned by other regions —
// positions and up/down state at or before the caller's current virtual
// time — and transports boundary-crossing frames. All methods must be
// safe to call while other regions execute concurrently.
type Remote interface {
	// Exists reports whether the id is attached anywhere in the network.
	Exists(id NodeID) bool
	// PosAt returns the node's position at time t (t never exceeds the
	// calling region's safe horizon, so the answer is final).
	PosAt(id NodeID, t sim.Time) geom.Point
	// DownAt reports the node's down state at time t. Down toggles are
	// barrier-synchronized by the engine, so the answer is final.
	DownAt(id NodeID, t sim.Time) bool
	// ScanRegions appends the indices of regions other than the caller's
	// own whose nodes could be within reach of a transmitter at from,
	// in increasing order, and returns the extended slice.
	ScanRegions(from geom.Point, reach float64, buf []int) []int
	// PostScan enqueues a boundary-crossing broadcast for the region.
	PostScan(region int, msg ScanMsg)
	// PostDeliver enqueues a boundary-crossing unicast delivery for the
	// region owning id.
	PostDeliver(id NodeID, msg DeliverMsg)
}

// ScanMsg is a broadcast crossing a region boundary: everything a foreign
// region needs to evaluate its own receivers exactly as the transmitter's
// region evaluated the local ones. Frame is a single read-only copy shared
// by every target region; receivers borrow it during Deliver and must not
// mutate or retain it.
type ScanMsg struct {
	From  NodeID
	Pos   geom.Point // transmitter position at serialization end
	Sent  sim.Time   // serialization end — receivers are sampled here
	At    sim.Time   // delivery instant (Sent + PropDelay)
	TxSeq uint64     // transmitter's per-port transmission sequence
	Frame []byte
}

// DeliverMsg is a unicast delivery crossing a region boundary. The loss
// and range outcome was already decided sender-side (the link-layer ACK
// resolves at serialization end, exactly like a local unicast); the target
// region only delivers the frame if the receiver is still up.
type DeliverMsg struct {
	From  NodeID
	To    NodeID
	At    sim.Time
	Frame []byte
}

// RefreshFunc reports when a node's track next needs its grid bucket
// refreshed (mobility.Refresher.NextRefresh); -1 means never again.
type RefreshFunc func(now sim.Time, slop float64) sim.Time

// DefaultConfig mimics a 2 Mb/s 802.11-style radio with a 250 m range.
func DefaultConfig() Config {
	return Config{
		Range:           250,
		BitrateBps:      2e6,
		LossRate:        0,
		PropDelay:       5 * time.Microsecond,
		BroadcastJitter: 2 * time.Millisecond,
		MaxQueueDelay:   500 * time.Millisecond,
		FramePool:       true,
	}
}

// Stats aggregates link-layer counters for overhead accounting.
type Stats struct {
	TxFrames      uint64
	TxBytes       uint64
	RxFrames      uint64
	LostFrames    uint64 // in range but dropped by the loss process
	QueueDrops    uint64 // dropped because the transmit queue was saturated
	UnicastFails  uint64 // unicast attempts with no ACK (out of range, down, or lost)
	Retries       uint64 // link-layer retransmissions triggered
	BroadcastSent uint64
	UnicastSent   uint64
}

type port struct {
	id        NodeID
	ord       int // attachment ordinal; receiver iteration is sorted by it
	pos       PositionFunc
	handler   Handler
	busyUntil sim.Time
	down      bool
	txSeq     uint64 // transmissions attempted so far; keys Det-mode draws
}

// Medium is the shared channel all nodes transmit on.
//
// Receiver lookup runs either as a linear scan over every attached port or
// through a uniform spatial hash grid (see IndexKind). The grid caches one
// bucketed position per node and re-buckets lazily: nodes with a declared
// speed bound (SetSpeedBound) are swept at most once per staleness quantum,
// and queries widen their radius by the maximum drift a bounded node can
// accumulate within that quantum, so pruning never loses a true neighbour.
// Nodes without a bound are re-bucketed exactly whenever the clock moved —
// always correct, but worth avoiding on the hot path.
type Medium struct {
	sim   *sim.Simulator
	cfg   Config
	ports map[NodeID]*port
	byOrd []*port // ports indexed by attachment ordinal; nil = vacated slot
	live  int     // attached (non-removed) ports
	stats Stats

	// freeOrds are ordinals vacated by RemoveNode, reused LIFO by the next
	// AddNode so churning sessions hold the per-ord parallel arrays at the
	// peak live population instead of growing with cumulative joins.
	freeOrds []int

	// Spatial index state; grid == nil means linear scan.
	grid        *geom.Grid
	speeds      []float64 // per-ord speed bound; < 0 = unbounded/unknown
	nUnbounded  int       // how many speeds are < 0
	maxSpeed    float64   // max declared bound, never decreases
	lastSweep   sim.Time  // last re-bucket sweep of bounded movers
	unboundedAt sim.Time  // instant the unbounded nodes were last re-bucketed
	candBits    []uint64  // reusable candidate bitset (single-threaded sim)
	nbHint      int       // size of the last Neighbors result, pre-sizes the next

	// Event-driven re-bucketing: tracks that report their own refresh
	// instants (mobility.Refresher) get a per-node event chain instead of
	// riding the O(movers) sweep. Only bounded movers WITHOUT a refresher
	// remain sweep candidates — under sharding a sweep is region-local
	// and still correct, but the chains keep re-bucketing cost
	// proportional to actual motion.
	refreshers   []RefreshFunc   // per-ord; nil = no refresher
	refreshOn    []bool          // per-ord; a chain event is pending
	refreshSt    []*refreshState // per-ord recycled chain event argument
	nSweepMovers int             // bounded movers with no refresher
	scanRegions  []int           // reusable Remote.ScanRegions buffer

	// Pooled wire path state (nil/empty when Config.FramePool is off):
	// the frame buffer pool plus free lists of transmit jobs and delivery
	// batches. All strictly per-medium — the single-goroutine discipline
	// the sharded-core roadmap item depends on.
	pool        *pool.Pool
	freeJobs    *txJob
	freeBatches *deliveryBatch
}

// New creates a medium on the given simulator.
func New(s *sim.Simulator, cfg Config) *Medium {
	if cfg.Range <= 0 {
		cfg.Range = 250
	}
	m := &Medium{sim: s, cfg: cfg, ports: make(map[NodeID]*port)}
	if cfg.FramePool {
		m.pool = pool.New()
		m.pool.SetPoison(cfg.PoisonFrames)
	}
	return m
}

// Config returns the medium's configuration.
func (m *Medium) Config() Config { return m.cfg }

// GridActive reports whether receiver lookup currently runs through the
// spatial grid (as opposed to the linear port scan).
func (m *Medium) GridActive() bool { return m.grid != nil }

// Stats returns a snapshot of the link-layer counters.
func (m *Medium) Stats() Stats { return m.stats }

// AddNode attaches a node to the medium. Adding the same id twice panics:
// that is always a harness bug. New nodes are treated as unbounded movers
// until SetSpeedBound declares otherwise. Ordinals vacated by RemoveNode
// are reused, so a joiner may iterate where a departed node used to —
// receiver order stays a deterministic function of the attach/remove
// history.
func (m *Medium) AddNode(id NodeID, pos PositionFunc, h Handler) {
	if _, dup := m.ports[id]; dup {
		panic("radio: duplicate NodeID")
	}
	if pos == nil || h == nil {
		panic("radio: nil position or handler")
	}
	p := &port{id: id, pos: pos, handler: h}
	if n := len(m.freeOrds); n > 0 {
		p.ord = m.freeOrds[n-1]
		m.freeOrds = m.freeOrds[:n-1]
		m.byOrd[p.ord] = p
		m.speeds[p.ord] = -1
	} else {
		p.ord = len(m.byOrd)
		m.byOrd = append(m.byOrd, p)
		m.speeds = append(m.speeds, -1)
		m.refreshers = append(m.refreshers, nil)
		m.refreshOn = append(m.refreshOn, false)
		m.refreshSt = append(m.refreshSt, nil)
	}
	m.ports[id] = p
	m.live++
	m.nUnbounded++
	switch {
	case m.grid != nil:
		m.grid.Set(p.ord, pos(m.sim.Now()))
	case m.cfg.Index == IndexGrid,
		m.cfg.Index == IndexAuto && m.live >= AutoGridThreshold:
		m.enableGrid()
	}
}

// RemoveNode detaches a node for good: it stops receiving immediately, its
// grid bucket and speed/refresher accounting are reclaimed, and its ordinal
// is recycled to the next AddNode. In-flight state is handled by the
// tombstone: the vacated port is marked down, so pending transmit jobs
// drop (releasing their pooled frames) and pending delivery batches skip
// it — exactly the paths a mid-transmission SetDown already exercises.
// The caller must stop the node's own transmissions first (a removed
// sender panics, the same as an unknown one); under the sharded engine
// removal happens only at barriers, while the region is quiescent.
func (m *Medium) RemoveNode(id NodeID) {
	p, ok := m.ports[id]
	if !ok {
		return
	}
	delete(m.ports, id)
	p.down = true // tombstone for in-flight jobs and batches
	ord := p.ord
	wasSweep := m.sweepMover(ord)
	if m.speeds[ord] < 0 {
		m.nUnbounded--
	}
	m.speeds[ord] = 0
	m.refreshers[ord] = nil // a pending refresh chain event exits harmlessly
	m.noteSweepChange(ord, wasSweep)
	m.byOrd[ord] = nil
	m.freeOrds = append(m.freeOrds, ord)
	m.live--
	if m.grid != nil {
		m.grid.Remove(ord)
	}
}

// Live reports the number of attached (non-removed) ports — the churn
// conformance suite's occupancy check.
func (m *Medium) Live() int { return m.live }

// SetSpeedBound declares that the node's position function never moves
// faster than metresPerSec (zero = static). The spatial grid relies on the
// bound to re-bucket lazily instead of on every query; declare it before
// the node starts moving, and never below the node's true top speed.
// Negative, NaN or infinite values mark the node unbounded again.
func (m *Medium) SetSpeedBound(id NodeID, metresPerSec float64) {
	p, ok := m.ports[id]
	if !ok {
		return
	}
	if metresPerSec < 0 || math.IsNaN(metresPerSec) || math.IsInf(metresPerSec, 0) {
		metresPerSec = -1
	}
	old := m.speeds[p.ord]
	if old < 0 && metresPerSec >= 0 {
		m.nUnbounded--
	} else if old >= 0 && metresPerSec < 0 {
		m.nUnbounded++
	}
	wasSweep := m.sweepMover(p.ord)
	m.speeds[p.ord] = metresPerSec
	if metresPerSec > m.maxSpeed {
		m.maxSpeed = metresPerSec
	}
	m.noteSweepChange(p.ord, wasSweep)
	if m.grid != nil {
		m.startRefresh(p.ord)
	}
}

// sweepMover reports whether the ord still depends on the lazy sweep: a
// bounded mover whose track does not announce its own refresh instants.
func (m *Medium) sweepMover(ord int) bool {
	return m.speeds[ord] > 0 && m.refreshers[ord] == nil
}

func (m *Medium) noteSweepChange(ord int, was bool) {
	if is := m.sweepMover(ord); is != was {
		if is {
			m.nSweepMovers++
		} else {
			m.nSweepMovers--
		}
	}
}

// SetRefresher registers the node's track as self-refreshing: the medium
// drives a per-node event chain that re-buckets the node's grid position
// exactly when the track may have drifted past the staleness slop, taking
// the node off the O(movers) sweep. fn is mobility.Refresher.NextRefresh;
// nil unregisters. Results are byte-identical either way — the grid
// remains a slop-widened superset filtered by exact positions, and chain
// events touch nothing but the index.
func (m *Medium) SetRefresher(id NodeID, fn RefreshFunc) {
	p, ok := m.ports[id]
	if !ok {
		return
	}
	was := m.sweepMover(p.ord)
	m.refreshers[p.ord] = fn
	m.noteSweepChange(p.ord, was)
	if m.grid != nil {
		m.startRefresh(p.ord)
	}
}

// refreshSlop is the drift budget handed to refreshers. Identical to the
// query slop so the superset invariant holds; the guard covers a refresher
// registered before any speed bound is declared.
func (m *Medium) refreshSlop() float64 {
	if s := m.slop(); s > 0 {
		return s
	}
	return m.cfg.Range * 0.5
}

// refreshState is the recycled argument of one node's chain events.
type refreshState struct {
	m   *Medium
	ord int
}

// startRefresh begins the node's re-bucket chain if it needs one and does
// not have one pending.
func (m *Medium) startRefresh(ord int) {
	if m.refreshOn[ord] || m.refreshers[ord] == nil || m.speeds[ord] <= 0 {
		return
	}
	next := m.refreshers[ord](m.sim.Now(), m.refreshSlop())
	if next < 0 {
		return
	}
	m.refreshOn[ord] = true
	st := m.refreshSt[ord]
	if st == nil {
		st = &refreshState{m: m, ord: ord}
		m.refreshSt[ord] = st
	}
	m.scheduleRefresh(st, next)
}

// scheduleRefresh queues the next chain event. In Det mode it is stamped
// with the chained node's own scheduling owner — a chain started while
// another node's event was executing must not ride that node's owner key.
func (m *Medium) scheduleRefresh(st *refreshState, at sim.Time) {
	if m.cfg.Det {
		prev := m.sim.SetOwner(uint32(m.byOrd[st.ord].id) + 1)
		m.sim.DoAtArg(at, runRefresh, st)
		m.sim.SetOwner(prev)
		return
	}
	m.sim.DoAtArg(at, runRefresh, st)
}

func runRefresh(v any) {
	st := v.(*refreshState)
	m := st.m
	m.refreshOn[st.ord] = false
	if m.grid == nil || m.refreshers[st.ord] == nil {
		return
	}
	now := m.sim.Now()
	m.grid.Set(st.ord, m.byOrd[st.ord].pos(now))
	next := m.refreshers[st.ord](now, m.refreshSlop())
	if next < 0 {
		return
	}
	if next <= now {
		next = now + 1 // refresher rounding guard: the chain must advance
	}
	m.refreshOn[st.ord] = true
	m.scheduleRefresh(st, next)
}

// enableGrid builds the spatial index over the already-attached ports and
// starts the re-bucket chain of every registered self-refreshing track.
func (m *Medium) enableGrid() {
	m.grid = geom.NewGrid(m.cfg.Range)
	now := m.sim.Now()
	for ord, p := range m.byOrd {
		if p == nil {
			continue
		}
		m.grid.Set(ord, p.pos(now))
	}
	m.lastSweep = now
	m.unboundedAt = now
	for ord := range m.byOrd {
		m.startRefresh(ord)
	}
}

// slop is how far a bounded mover may have drifted from its bucketed
// position; queries widen their radius by it so the grid never prunes a
// true neighbour. Half the radio range balances sweep frequency against
// candidate-set size.
func (m *Medium) slop() float64 {
	if m.maxSpeed <= 0 {
		return 0
	}
	return m.cfg.Range * 0.5
}

// syncGrid re-buckets stale cached positions before a query at now:
// unbounded nodes exactly whenever the clock moved, and bounded movers
// without a self-refreshing track at most once per staleness quantum
// (slop / maxSpeed). Movers with a registered refresher are re-bucketed by
// their own event chains and skipped here.
func (m *Medium) syncGrid(now sim.Time) {
	if m.nUnbounded > 0 && now != m.unboundedAt {
		for ord, p := range m.byOrd {
			if m.speeds[ord] < 0 {
				m.grid.Set(ord, p.pos(now))
			}
		}
		m.unboundedAt = now
	}
	if m.nSweepMovers > 0 {
		quantum := sim.Duration(m.slop() / m.maxSpeed * float64(time.Second))
		if now.Sub(m.lastSweep) > quantum {
			for ord, p := range m.byOrd {
				if m.sweepMover(ord) {
					m.grid.Set(ord, p.pos(now))
				}
			}
			m.lastSweep = now
		}
	}
}

// gridForEach invokes fn for every port that could currently be within
// range of a transmitter at `at` — a superset; callers must re-check exact
// positions. Candidates are collected into a bitset indexed by attachment
// ordinal and drained in increasing-ordinal order, so iteration matches
// the linear scan exactly without sorting. The bitset is scratch state;
// fn must not trigger another grid query (protocol callbacks run later,
// from scheduled events, so this cannot recurse).
func (m *Medium) gridForEach(at geom.Point, now sim.Time, fn func(o *port)) {
	m.gridForEachRadius(at, now, 0, fn)
}

// gridForEachRadius is gridForEach with the query radius widened by extra
// metres — the remote-scan path queries positions slightly in the past, so
// its candidate radius must additionally cover the drift a bounded node
// can accumulate over the propagation delay.
func (m *Medium) gridForEachRadius(at geom.Point, now sim.Time, extra float64, fn func(o *port)) {
	m.syncGrid(now)
	words := (len(m.byOrd) + 63) >> 6
	if cap(m.candBits) < words {
		m.candBits = make([]uint64, words)
	}
	bits64 := m.candBits[:words]
	m.grid.Visit(at, m.cfg.Range+m.slop()+extra, func(id int) {
		bits64[id>>6] |= 1 << (id & 63)
	})
	for w, word := range bits64 {
		if word == 0 {
			continue
		}
		bits64[w] = 0
		base := w << 6
		for word != 0 {
			ord := base + bits.TrailingZeros64(word)
			word &= word - 1
			fn(m.byOrd[ord])
		}
	}
}

// SetDown marks a node as failed (true) or restored (false). Down nodes
// neither transmit nor receive.
func (m *Medium) SetDown(id NodeID, down bool) {
	if p, ok := m.ports[id]; ok {
		p.down = down
	}
}

// PositionOf returns the node's current position.
func (m *Medium) PositionOf(id NodeID) geom.Point {
	return m.ports[id].pos(m.sim.Now())
}

// Neighbors returns the ids currently within range of id, in attachment
// order. Down nodes are excluded. The result is a fresh slice, pre-sized to
// the previous call's count; hot paths that can recycle a buffer should use
// AppendNeighbors instead.
func (m *Medium) Neighbors(id NodeID) []NodeID {
	out := m.AppendNeighbors(id, make([]NodeID, 0, m.nbHint))
	m.nbHint = len(out)
	return out
}

// AppendNeighbors appends the ids currently within range of id to out — in
// attachment order, excluding down nodes — and returns the extended slice.
// It allocates nothing when out has sufficient capacity.
func (m *Medium) AppendNeighbors(id NodeID, out []NodeID) []NodeID {
	p, ok := m.ports[id]
	if !ok || p.down {
		return out
	}
	now := m.sim.Now()
	at := p.pos(now)
	r2 := m.cfg.Range * m.cfg.Range
	if m.grid != nil {
		m.gridForEach(at, now, func(o *port) {
			if o == p || o.down {
				return
			}
			if at.Dist2(o.pos(now)) <= r2 {
				out = append(out, o.id)
			}
		})
		return out
	}
	for _, o := range m.byOrd {
		if o == nil || o == p || o.down {
			continue
		}
		if at.Dist2(o.pos(now)) <= r2 {
			out = append(out, o.id)
		}
	}
	return out
}

// InRange reports whether b currently hears a.
func (m *Medium) InRange(a, b NodeID) bool {
	pa, ok1 := m.ports[a]
	pb, ok2 := m.ports[b]
	if !ok1 || !ok2 || pa.down || pb.down {
		return false
	}
	now := m.sim.Now()
	return pa.pos(now).Dist2(pb.pos(now)) <= m.cfg.Range*m.cfg.Range
}

// txDuration returns the serialization time of a frame.
func (m *Medium) txDuration(size int) sim.Duration {
	if m.cfg.BitrateBps <= 0 {
		return 0
	}
	return sim.Duration(float64(size*8) / m.cfg.BitrateBps * float64(time.Second))
}

// mix64 is the splitmix64 finalizer — a cheap, well-distributed 64-bit
// hash for the Det-mode draws.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// detMix derives one Det-mode draw from the medium seed and the draw's
// identity. The sequential RNG this replaces would entangle every medium
// draw with global event order; a content-keyed hash gives each draw the
// same value no matter which region evaluates it or in what order.
func detMix(seed, a, b, c uint64) uint64 {
	h := mix64(seed + 0x9e3779b97f4a7c15 + a)
	h = mix64(h + 0x9e3779b97f4a7c15 + b)
	h = mix64(h + 0x9e3779b97f4a7c15 + c)
	return h
}

// txJitter draws the contention jitter for one transmission attempt.
func (m *Medium) txJitter(from NodeID, txSeq uint64) sim.Duration {
	if !m.cfg.Det {
		return m.sim.Jitter(m.cfg.BroadcastJitter)
	}
	if m.cfg.BroadcastJitter <= 0 {
		return 0
	}
	h := detMix(m.cfg.DetSeed, uint64(from), txSeq, 0)
	return sim.Duration(h % uint64(m.cfg.BroadcastJitter))
}

// lossDraw decides whether the frame of the given transmission attempt is
// lost on its way to the receiver. Callers gate on LossRate > 0 so the
// plain path's RNG consumption stays exactly historical.
func (m *Medium) lossDraw(from NodeID, txSeq uint64, to NodeID) bool {
	if m.cfg.Det {
		h := detMix(m.cfg.DetSeed, uint64(from), txSeq, uint64(to)+1)
		return float64(h>>11)/(1<<53) < m.cfg.LossRate
	}
	return m.sim.Rand().Float64() < m.cfg.LossRate
}

// --- Frame ownership (the pooled wire path) ---
//
// The buffer-ownership contract:
//
//   - Frame(size) checks a buffer out of the medium's pool; the caller
//     owns it and must either hand it back through BroadcastFrame /
//     UnicastFrame (ownership transfers to the medium) or return it with
//     ReleaseFrame on any path that never transmits.
//   - The medium releases a transmitted frame after its last use: once
//     every scheduled delivery of a broadcast has run, or — for unicasts
//     — after the delivery completes and every link-layer retry is
//     exhausted (retries retransmit the same buffer).
//   - Receivers never own the frame: Deliver borrows it for the duration
//     of the call (see Handler).
//   - The legacy Broadcast/Unicast entry points keep caller ownership:
//     the medium never releases those payloads (pre-encoded attacker
//     replays and harness traffic stay caller-owned), though with
//     FramePool on they still ride the recycled job/batch event path.
//
// With FramePool off every method below degrades to plain allocation and
// the exact historical transmit path, which is the measured baseline the
// nopool/pool BENCH_scale cells compare against.

// Frame returns a zero-length frame buffer with capacity at least size,
// drawn from the medium's size-class pool (or freshly allocated when
// pooling is off). Callers encode into it with wire.AppendEncode, sizing
// via wire.EncodedSize so the buffer never grows.
func (m *Medium) Frame(size int) []byte {
	return m.pool.Get(size) // nil pool degrades to make([]byte, 0, size)
}

// ReleaseFrame returns a frame obtained from Frame that will not be
// transmitted after all. No-op when pooling is off.
func (m *Medium) ReleaseFrame(b []byte) {
	if m.pool != nil && b != nil {
		m.pool.Put(b)
	}
}

// PoolStats reports the frame pool's traffic counters (zeros when pooling
// is off). The leak suite holds Live at zero after a drained run — every
// transmit path, including every early drop, must release its frame.
func (m *Medium) PoolStats() pool.Stats { return m.pool.Stats() }

// txJob is the recycled state of one in-flight transmission: what the
// legacy path captures in closures. A unicast job carries its own retry
// counter, so retransmissions reuse both the job and the frame.
type txJob struct {
	m       *Medium
	p       *port
	payload []byte
	release bool // medium owns payload; release after its last use
	unicast bool
	to      NodeID
	retries int
	txSeq   uint64 // this attempt's draw key (fresh per retry)
	acked   func(bool)
	next    *txJob
}

func (m *Medium) takeJob() *txJob {
	if j := m.freeJobs; j != nil {
		m.freeJobs = j.next
		j.next = nil
		return j
	}
	return &txJob{m: m}
}

func (m *Medium) putJob(j *txJob) {
	j.p, j.payload, j.acked = nil, nil, nil
	j.next = m.freeJobs
	m.freeJobs = j
}

// deliveryBatch carries one broadcast frame and every receiver that
// survived the loss process to a single delivery event, replacing one
// closure-captured event per receiver.
type deliveryBatch struct {
	m       *Medium
	from    NodeID
	frame   []byte
	release bool
	ports   []*port
	next    *deliveryBatch
}

func (m *Medium) takeBatch() *deliveryBatch {
	if b := m.freeBatches; b != nil {
		m.freeBatches = b.next
		b.next = nil
		return b
	}
	return &deliveryBatch{m: m}
}

// runBatch fires at transmission-end + PropDelay and invokes every
// surviving receiver's handler in the order the loss process visited them
// (attachment order), then releases the shared frame. Receivers that went
// down between scheduling and delivery are skipped — the same check the
// per-receiver events made.
func runBatch(v any) {
	b := v.(*deliveryBatch)
	m := b.m
	for _, o := range b.ports {
		if o.down {
			continue
		}
		if m.cfg.Det {
			// Events the receiver schedules in reaction belong to the
			// receiver's causal stream, not the transmitter's.
			prev := m.sim.SetOwner(uint32(o.id) + 1)
			o.handler.Deliver(b.from, b.frame)
			m.sim.SetOwner(prev)
		} else {
			o.handler.Deliver(b.from, b.frame)
		}
	}
	if b.release {
		m.pool.Put(b.frame)
	}
	b.frame = nil
	for i := range b.ports {
		b.ports[i] = nil
	}
	b.ports = b.ports[:0]
	b.next = m.freeBatches
	m.freeBatches = b
}

func runCompleteJob(v any) { j := v.(*txJob); j.m.completeJob(j) }
func runJobNack(v any)     { j := v.(*txJob); j.m.jobAckOutcome(j, false) }

// BroadcastFrame broadcasts a frame the caller obtained from Frame;
// ownership transfers to the medium, which releases it after the last
// delivery (or immediately on any drop path). With pooling off it is
// exactly Broadcast.
func (m *Medium) BroadcastFrame(from NodeID, frame []byte) {
	if m.pool == nil {
		m.Broadcast(from, frame)
		return
	}
	m.startJob(from, frame, true, false, 0, nil)
}

// UnicastFrame unicasts a frame the caller obtained from Frame; ownership
// transfers to the medium, which reuses the buffer across link-layer
// retries and releases it once the ACK outcome is final and any delivery
// has completed. With pooling off it is exactly Unicast.
func (m *Medium) UnicastFrame(from, to NodeID, frame []byte, acked func(bool)) {
	if m.pool == nil {
		m.Unicast(from, to, frame, acked)
		return
	}
	m.startJob(from, frame, true, true, to, acked)
}

// Broadcast queues a link-layer broadcast from the given node. Delivery to
// each in-range, up receiver happens after serialization + propagation,
// subject to the loss process. The payload stays caller-owned (never
// released), so pre-encoded or shared buffers are safe here.
func (m *Medium) Broadcast(from NodeID, payload []byte) {
	if m.pool != nil || m.cfg.Det {
		// Det mode always rides the job path: it is the only transmit
		// path wired for content-keyed draws and remote handoff, and it
		// is nil-pool safe (pool methods degrade to plain allocation).
		m.startJob(from, payload, false, false, 0, nil)
		return
	}
	m.transmit(from, payload, nil, nil)
}

// Unicast queues a link-layer unicast to a specific neighbour. acked, if
// non-nil, is invoked exactly once when the (simulated) link-layer ACK
// outcome is known: true when the frame was delivered, possibly after
// Config.UnicastRetries retransmissions. The payload stays caller-owned.
func (m *Medium) Unicast(from, to NodeID, payload []byte, acked func(bool)) {
	if m.pool != nil || m.cfg.Det {
		m.startJob(from, payload, false, true, to, acked)
		return
	}
	m.unicastAttempt(from, to, payload, acked, m.cfg.UnicastRetries)
}

// startJob builds a recycled transmit job and runs the first attempt.
func (m *Medium) startJob(from NodeID, payload []byte, release, unicast bool, to NodeID, acked func(bool)) {
	p, ok := m.ports[from]
	if !ok {
		panic("radio: transmit from unknown node")
	}
	j := m.takeJob()
	j.p, j.payload, j.release, j.unicast, j.to, j.acked = p, payload, release, unicast, to, acked
	j.retries = 0
	if unicast {
		j.retries = m.cfg.UnicastRetries
	}
	m.transmitJob(j)
}

// transmitJob mirrors transmit exactly — same RNG draws, same counters,
// same event timing — over recycled state instead of captured closures.
func (m *Medium) transmitJob(j *txJob) {
	p := j.p
	if p.down {
		m.stats.QueueDrops++
		m.dropJob(j)
		return
	}
	j.txSeq = p.txSeq
	p.txSeq++
	now := m.sim.Now()
	start := now.Add(m.txJitter(p.id, j.txSeq))
	if p.busyUntil > start {
		start = p.busyUntil
	}
	if m.cfg.MaxQueueDelay > 0 && start.Sub(now) > m.cfg.MaxQueueDelay {
		m.stats.QueueDrops++
		m.dropJob(j)
		return
	}
	dur := m.txDuration(len(j.payload))
	p.busyUntil = start.Add(dur)

	m.stats.TxFrames++
	m.stats.TxBytes += uint64(len(j.payload))
	if j.unicast {
		m.stats.UnicastSent++
	} else {
		m.stats.BroadcastSent++
	}
	m.sim.DoAtArg(start.Add(dur), runCompleteJob, j)
}

// dropJob handles a transmit-time drop. Unicasts learn the outcome
// asynchronously (one scheduled event, exactly like the legacy path's
// deferred acked(false) — the retry draw must happen at the event, not
// inline); broadcasts have no observer, so the frame is released and the
// job recycled on the spot (the legacy path schedules nothing either).
func (m *Medium) dropJob(j *txJob) {
	if j.unicast {
		m.sim.DoArg(0, runJobNack, j)
		return
	}
	m.finishJob(j)
}

// finishJob releases a job's frame (when still medium-owned) and recycles
// the job.
func (m *Medium) finishJob(j *txJob) {
	if j.release {
		m.pool.Put(j.payload)
	}
	m.putJob(j)
}

// jobAckOutcome resolves one unicast attempt: retry on failure while the
// counter lasts (retransmitting the same frame), otherwise surface the
// final outcome and release the job. On success the delivery batch has
// already taken over frame ownership.
func (m *Medium) jobAckOutcome(j *txJob, ok bool) {
	if !ok && j.retries > 0 {
		m.stats.Retries++
		j.retries--
		m.transmitJob(j)
		return
	}
	acked := j.acked
	m.finishJob(j)
	if acked != nil {
		acked(ok)
	}
}

// completeJob is the pooled counterpart of complete: same receiver visit
// order, same loss draws, but broadcast survivors share one delivery
// event and the single frame travels with it.
func (m *Medium) completeJob(j *txJob) {
	p := j.p
	if p.down { // went down mid-transmission
		if j.unicast {
			m.jobAckOutcome(j, false)
			return
		}
		m.finishJob(j)
		return
	}
	now := m.sim.Now()
	at := p.pos(now)
	r2 := m.cfg.Range * m.cfg.Range

	if j.unicast {
		delivered := false
		if o, ok := m.ports[j.to]; ok {
			if o != p && !o.down && at.Dist2(o.pos(now)) <= r2 {
				delivered = m.deliverJob(p, o, j)
			}
		} else if m.cfg.Remote != nil {
			delivered = m.remoteUnicast(p, j, at, now)
		}
		if !delivered {
			m.stats.UnicastFails++
		}
		m.jobAckOutcome(j, delivered)
		return
	}

	b := m.takeBatch()
	b.from = p.id
	b.frame = j.payload
	collect := func(o *port) {
		if o == p || o.down || at.Dist2(o.pos(now)) > r2 {
			return
		}
		if m.cfg.LossRate > 0 && m.lossDraw(p.id, j.txSeq, o.id) {
			m.stats.LostFrames++
			return
		}
		m.stats.RxFrames++
		b.ports = append(b.ports, o)
	}
	if m.grid != nil {
		m.gridForEach(at, now, collect)
	} else {
		for _, o := range m.byOrd {
			if o != nil && o != p {
				collect(o)
			}
		}
	}
	if m.cfg.Remote != nil {
		m.postRemoteScans(p, j, at, now)
	}
	if len(b.ports) > 0 {
		b.release = j.release
		j.release = false // the batch owns the frame now
		m.sim.DoArg(m.cfg.PropDelay, runBatch, b)
	} else {
		b.frame = nil
		b.next = m.freeBatches
		m.freeBatches = b
	}
	m.finishJob(j) // zero receivers: releases the frame right here
}

// postRemoteScans hands a broadcast to every other region whose nodes
// could be within range: one read-only frame copy shared by all of them
// (the local pooled buffer is released on schedule, so it cannot travel).
func (m *Medium) postRemoteScans(p *port, j *txJob, at geom.Point, now sim.Time) {
	r := m.cfg.Remote
	m.scanRegions = r.ScanRegions(at, m.cfg.Range, m.scanRegions[:0])
	if len(m.scanRegions) == 0 {
		return
	}
	msg := ScanMsg{
		From:  p.id,
		Pos:   at,
		Sent:  now,
		At:    now.Add(m.cfg.PropDelay),
		TxSeq: j.txSeq,
		Frame: append([]byte(nil), j.payload...),
	}
	for _, reg := range m.scanRegions {
		r.PostScan(reg, msg)
	}
}

// remoteUnicast resolves a unicast whose target lives in another region.
// The whole outcome — existence, range, up/down, loss — is decided here at
// serialization end, exactly when a local target would decide it, so the
// link-layer ACK timing is identical whichever region owns the receiver.
func (m *Medium) remoteUnicast(p *port, j *txJob, at geom.Point, now sim.Time) bool {
	r := m.cfg.Remote
	if !r.Exists(j.to) || r.DownAt(j.to, now) {
		return false
	}
	if at.Dist2(r.PosAt(j.to, now)) > m.cfg.Range*m.cfg.Range {
		return false
	}
	if m.cfg.LossRate > 0 && m.lossDraw(p.id, j.txSeq, j.to) {
		m.stats.LostFrames++
		return false
	}
	m.stats.RxFrames++
	r.PostDeliver(j.to, DeliverMsg{
		From:  p.id,
		To:    j.to,
		At:    now.Add(m.cfg.PropDelay),
		Frame: append([]byte(nil), j.payload...),
	})
	return true
}

// deliverJob applies the loss process to a unicast delivery and, when the
// frame survives, schedules a single-receiver batch that releases the
// frame after the handler runs.
func (m *Medium) deliverJob(p, o *port, j *txJob) bool {
	if m.cfg.LossRate > 0 && m.lossDraw(p.id, j.txSeq, o.id) {
		m.stats.LostFrames++
		return false
	}
	m.stats.RxFrames++
	b := m.takeBatch()
	b.from, b.frame, b.release = p.id, j.payload, j.release
	j.release = false
	b.ports = append(b.ports, o)
	m.sim.DoArg(m.cfg.PropDelay, runBatch, b)
	return true
}

func (m *Medium) unicastAttempt(from, to NodeID, payload []byte, acked func(bool), retries int) {
	m.transmit(from, payload, &to, func(ok bool) {
		if !ok && retries > 0 {
			m.stats.Retries++
			m.unicastAttempt(from, to, payload, acked, retries-1)
			return
		}
		if acked != nil {
			acked(ok)
		}
	})
}

func (m *Medium) transmit(from NodeID, payload []byte, to *NodeID, acked func(bool)) {
	p, ok := m.ports[from]
	if !ok {
		panic("radio: transmit from unknown node")
	}
	if p.down {
		m.stats.QueueDrops++
		if acked != nil {
			m.sim.Do(0, func() { acked(false) })
		}
		return
	}

	now := m.sim.Now()
	start := now.Add(m.sim.Jitter(m.cfg.BroadcastJitter))
	if p.busyUntil > start {
		start = p.busyUntil
	}
	if m.cfg.MaxQueueDelay > 0 && start.Sub(now) > m.cfg.MaxQueueDelay {
		m.stats.QueueDrops++
		if acked != nil {
			m.sim.Do(0, func() { acked(false) })
		}
		return
	}
	dur := m.txDuration(len(payload))
	p.busyUntil = start.Add(dur)

	m.stats.TxFrames++
	m.stats.TxBytes += uint64(len(payload))
	if to == nil {
		m.stats.BroadcastSent++
	} else {
		m.stats.UnicastSent++
	}

	end := start.Add(dur)
	m.sim.DoAt(end, func() {
		m.complete(p, payload, to, acked)
	})
}

// complete runs at the end of serialization: it samples receivers from
// positions at that instant and schedules deliveries.
//
// Every path — unicast lookup, grid candidates, linear scan — visits the
// same in-range receivers in attachment order and draws the loss RNG once
// per visit, so seeded runs are byte-for-byte identical across index kinds.
func (m *Medium) complete(p *port, payload []byte, to *NodeID, acked func(bool)) {
	if p.down { // went down mid-transmission
		if acked != nil {
			acked(false)
		}
		return
	}
	now := m.sim.Now()
	at := p.pos(now)
	r2 := m.cfg.Range * m.cfg.Range
	delivered := false

	if to != nil {
		// A real radio would overhear unicasts too; the protocol does not
		// rely on promiscuous mode, so unicast frames reach only the
		// addressee — looked up directly instead of scanned for.
		if o, ok := m.ports[*to]; ok && o != p && !o.down && at.Dist2(o.pos(now)) <= r2 {
			delivered = m.deliver(p, o, payload)
		}
		if !delivered {
			m.stats.UnicastFails++
		}
		if acked != nil {
			acked(delivered)
		}
		return
	}

	if m.grid != nil {
		m.gridForEach(at, now, func(o *port) {
			if o == p || o.down || at.Dist2(o.pos(now)) > r2 {
				return
			}
			if m.deliver(p, o, payload) {
				delivered = true
			}
		})
	} else {
		for _, o := range m.byOrd {
			if o == nil || o == p {
				continue
			}
			if o.down || at.Dist2(o.pos(now)) > r2 {
				continue
			}
			if m.deliver(p, o, payload) {
				delivered = true
			}
		}
	}
	if acked != nil {
		acked(delivered)
	}
}

// --- Boundary-crossing injection (the sharded engine's inbound side) ---

type injectedScan struct {
	m   *Medium
	msg ScanMsg
}

type injectedDeliver struct {
	m   *Medium
	msg DeliverMsg
}

func runInjectScan(v any) {
	s := v.(*injectedScan)
	s.m.runRemoteScan(s.msg)
}

func runInjectDeliver(v any) {
	d := v.(*injectedDeliver)
	m := d.m
	o, ok := m.ports[d.msg.To]
	if !ok || o.down {
		return
	}
	prev := m.sim.SetOwner(uint32(o.id) + 1)
	o.handler.Deliver(d.msg.From, d.msg.Frame)
	m.sim.SetOwner(prev)
}

// InjectScan schedules evaluation of a foreign region's broadcast against
// this medium's ports. The event is stamped with the transmitter's
// scheduling owner so that, at equal instants, it sorts against local
// events exactly where the transmitter's delivery batch would have sorted
// had both nodes shared a region. Called by the engine at exchange
// barriers, while the region is quiescent.
func (m *Medium) InjectScan(msg ScanMsg) {
	prev := m.sim.SetOwner(uint32(msg.From) + 1)
	m.sim.DoAtArg(msg.At, runInjectScan, &injectedScan{m: m, msg: msg})
	m.sim.SetOwner(prev)
}

// InjectDeliver schedules delivery of a foreign region's unicast to the
// local target port. Loss and range were already resolved sender-side;
// only the receiver's up/down state at delivery time remains to check —
// the same check a local delivery batch makes.
func (m *Medium) InjectDeliver(msg DeliverMsg) {
	prev := m.sim.SetOwner(uint32(msg.From) + 1)
	m.sim.DoAtArg(msg.At, runInjectDeliver, &injectedDeliver{m: m, msg: msg})
	m.sim.SetOwner(prev)
}

// runRemoteScan evaluates a boundary-crossing broadcast at its delivery
// instant: receivers are sampled at msg.Sent (a pure past query — exactly
// the instant the transmitter's region sampled its local receivers), the
// loss process draws the same content-keyed hashes a local evaluation
// would, and surviving receivers that are still up get the frame. The
// candidate radius is widened by the drift a bounded node can accumulate
// between Sent and now, on top of the usual bucketing slop.
func (m *Medium) runRemoteScan(msg ScanMsg) {
	r2 := m.cfg.Range * m.cfg.Range
	rm := m.cfg.Remote
	collect := func(o *port) {
		if rm.DownAt(o.id, msg.Sent) {
			return
		}
		if msg.Pos.Dist2(o.pos(msg.Sent)) > r2 {
			return
		}
		if m.cfg.LossRate > 0 && m.lossDraw(msg.From, msg.TxSeq, o.id) {
			m.stats.LostFrames++
			return
		}
		m.stats.RxFrames++
		if o.down { // went down between Sent and delivery
			return
		}
		prev := m.sim.SetOwner(uint32(o.id) + 1)
		o.handler.Deliver(msg.From, msg.Frame)
		m.sim.SetOwner(prev)
	}
	if m.grid != nil {
		extra := m.maxSpeed * m.cfg.PropDelay.Seconds()
		m.gridForEachRadius(msg.Pos, m.sim.Now(), extra, collect)
	} else {
		for _, o := range m.byOrd {
			if o != nil {
				collect(o)
			}
		}
	}
}

// deliver applies the per-receiver loss process and, when the frame
// survives, schedules the handler callback after the propagation delay. It
// reports whether the frame survived.
func (m *Medium) deliver(p, dst *port, payload []byte) bool {
	if m.cfg.LossRate > 0 && m.sim.Rand().Float64() < m.cfg.LossRate {
		m.stats.LostFrames++
		return false
	}
	m.stats.RxFrames++
	m.sim.Do(m.cfg.PropDelay, func() {
		if !dst.down {
			dst.handler.Deliver(p.id, payload)
		}
	})
	return true
}
