package radio_test

// Mobility-churn extension of the cross-medium equivalence suite: the
// original matrix only exercises the grid under light waypoint motion, so
// the lazy re-bucketing path was proven mostly on near-static topologies.
// These scenarios keep nodes crossing grid-cell boundaries mid-flood —
// fast waypoint sweeps, bounded random walks, and the mixed fleet — and
// hold the spatial grid to the same bar: byte-for-byte identical Results
// against the naive scan for every seed. A non-vacuity check asserts the
// nodes really did churn cells during the run; otherwise a future mobility
// regression could quietly turn this suite static.

import (
	"math"
	"reflect"
	"testing"
	"time"

	"sbr6/internal/attack"
	"sbr6/internal/core"
	"sbr6/internal/geom"
	"sbr6/internal/radio"
	"sbr6/internal/scenario"
)

// churnMatrix: every entry moves nodes at speeds that cross at least one
// 250 m grid cell inside the measurement window.
func churnMatrix() map[string]func() scenario.Config {
	base := func() scenario.Config {
		cfg := scenario.DefaultConfig()
		fastTimers(&cfg)
		cfg.N = 40
		cfg.Placement = scenario.PlaceUniform
		cfg.Area.W, cfg.Area.H = 1400, 1400
		cfg.Duration = 10 * time.Second
		cfg.Radio.LossRate = 0.03
		cfg.Flows = []scenario.Flow{
			{From: 1, To: 30, Interval: 400 * time.Millisecond, Size: 64},
			{From: 9, To: 21, Interval: 600 * time.Millisecond, Size: 48},
		}
		return cfg
	}
	return map[string]func() scenario.Config{
		"churn-waypoint": func() scenario.Config {
			cfg := base()
			cfg.Mobility = scenario.MobilitySpec{
				Waypoint: true, MinSpeed: 10, MaxSpeed: 30,
			}
			return cfg
		},
		"churn-walk": func() scenario.Config {
			cfg := base()
			cfg.Mobility = scenario.MobilitySpec{
				Walk: true, MaxSpeed: 25, Epoch: 2 * time.Second,
			}
			return cfg
		},
		"churn-mixed": func() scenario.Config {
			// Waypoint sweepers and random walkers in one fleet, plus
			// hostile traffic, so re-bucketing interleaves two leg shapes
			// while adversarial control packets are in flight.
			cfg := base()
			cfg.Mobility = scenario.MobilitySpec{
				Waypoint: true, Walk: true,
				MinSpeed: 8, MaxSpeed: 25,
				Epoch: 3 * time.Second,
			}
			cfg.Behaviors = map[int]core.Behavior{
				5:  &attack.GrayHole{P: 0.5},
				17: &attack.RERRSpammer{},
			}
			return cfg
		},
	}
}

// runChurn runs one config under the given index kind and reports the
// result plus how many nodes ended the run in a different grid cell than
// they started it.
func runChurn(t *testing.T, mk func() scenario.Config, seed int64, kind radio.IndexKind) (*scenario.Result, int) {
	t.Helper()
	cfg := mk()
	cfg.Seed = seed
	cfg.Radio.Index = kind
	sc, err := scenario.Build(cfg)
	if err != nil {
		t.Fatalf("build (index=%d, seed=%d): %v", kind, seed, err)
	}
	start := make([]geom.Point, cfg.N)
	for i := 0; i < cfg.N; i++ {
		start[i] = sc.Medium.PositionOf(radio.NodeID(i))
	}
	res := sc.Run()
	crossed := 0
	cell := cfg.Radio.Range
	key := func(p geom.Point) [2]int32 {
		return [2]int32{int32(math.Floor(p.X / cell)), int32(math.Floor(p.Y / cell))}
	}
	for i := 0; i < cfg.N; i++ {
		if key(start[i]) != key(sc.Medium.PositionOf(radio.NodeID(i))) {
			crossed++
		}
	}
	return res, crossed
}

func TestGridMediumEquivalentUnderChurn(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for name, mk := range churnMatrix() {
		t.Run(name, func(t *testing.T) {
			for _, seed := range seeds {
				naive, _ := runChurn(t, mk, seed, radio.IndexNaive)
				grid, crossed := runChurn(t, mk, seed, radio.IndexGrid)
				if !reflect.DeepEqual(naive, grid) {
					t.Errorf("seed %d: naive and grid media diverged under churn:\n naive: %v\n  grid: %v",
						seed, naive, grid)
				}
				// The scenario must actually churn cells, or the equivalence
				// proves nothing new over the static matrix.
				if min := 40 / 4; crossed < min {
					t.Errorf("seed %d: only %d/40 nodes changed grid cell (want >= %d); scenario too static",
						seed, crossed, min)
				}
			}
		})
	}
}
