package radio

import (
	"testing"
	"time"

	"sbr6/internal/geom"
	"sbr6/internal/sim"
)

type sink struct {
	frames []struct {
		from    NodeID
		payload string
	}
}

func (s *sink) Deliver(from NodeID, payload []byte) {
	s.frames = append(s.frames, struct {
		from    NodeID
		payload string
	}{from, string(payload)})
}

func fixed(p geom.Point) PositionFunc {
	return func(sim.Time) geom.Point { return p }
}

// build creates a medium with nodes at the given positions and returns
// the sinks in id order.
func build(s *sim.Simulator, cfg Config, positions ...geom.Point) (*Medium, []*sink) {
	m := New(s, cfg)
	sinks := make([]*sink, len(positions))
	for i, p := range positions {
		sinks[i] = &sink{}
		m.AddNode(NodeID(i), fixed(p), sinks[i])
	}
	return m, sinks
}

func quiet() Config {
	cfg := DefaultConfig()
	cfg.BroadcastJitter = 0
	cfg.LossRate = 0
	return cfg
}

func TestBroadcastReachesOnlyInRange(t *testing.T) {
	s := sim.New(1)
	// Node 1 at 100 m (in range), node 2 at 300 m (out of the 250 m range).
	m, sinks := build(s, quiet(), geom.Point{}, geom.Point{X: 100}, geom.Point{X: 300})
	m.Broadcast(0, []byte("hello"))
	s.Run()
	if len(sinks[1].frames) != 1 || sinks[1].frames[0].payload != "hello" {
		t.Fatalf("in-range node got %v", sinks[1].frames)
	}
	if len(sinks[2].frames) != 0 {
		t.Fatal("out-of-range node received a frame")
	}
	if len(sinks[0].frames) != 0 {
		t.Fatal("sender received its own frame")
	}
}

func TestUnicastDeliversAndAcks(t *testing.T) {
	s := sim.New(1)
	m, sinks := build(s, quiet(), geom.Point{}, geom.Point{X: 50}, geom.Point{X: 100})
	var acked *bool
	m.Unicast(0, 1, []byte("data"), func(ok bool) { acked = &ok })
	s.Run()
	if acked == nil || !*acked {
		t.Fatal("unicast not acked")
	}
	if len(sinks[1].frames) != 1 {
		t.Fatalf("addressee frames = %d", len(sinks[1].frames))
	}
	if len(sinks[2].frames) != 0 {
		t.Fatal("unicast delivered to a third party")
	}
}

func TestUnicastOutOfRangeFails(t *testing.T) {
	s := sim.New(1)
	m, sinks := build(s, quiet(), geom.Point{}, geom.Point{X: 1000})
	var acked *bool
	m.Unicast(0, 1, []byte("data"), func(ok bool) { acked = &ok })
	s.Run()
	if acked == nil || *acked {
		t.Fatal("out-of-range unicast should fail its ACK")
	}
	if len(sinks[1].frames) != 0 {
		t.Fatal("out-of-range unicast delivered")
	}
	if m.Stats().UnicastFails != 1 {
		t.Fatalf("UnicastFails = %d", m.Stats().UnicastFails)
	}
}

func TestDownNodeNeitherSendsNorReceives(t *testing.T) {
	s := sim.New(1)
	m, sinks := build(s, quiet(), geom.Point{}, geom.Point{X: 10})
	m.SetDown(1, true)
	m.Broadcast(0, []byte("x"))
	var acked *bool
	m.Unicast(0, 1, []byte("y"), func(ok bool) { acked = &ok })
	s.Run()
	if len(sinks[1].frames) != 0 {
		t.Fatal("down node received frames")
	}
	if acked == nil || *acked {
		t.Fatal("unicast to down node should fail")
	}
	// Down sender:
	m.SetDown(1, false)
	m.SetDown(0, true)
	m.Broadcast(0, []byte("z"))
	s.Run()
	if len(sinks[1].frames) != 0 {
		t.Fatal("frame from down sender delivered")
	}
}

func TestSerializationDelaysBackToBackFrames(t *testing.T) {
	s := sim.New(1)
	cfg := quiet()
	cfg.BitrateBps = 8000 // 1 byte per millisecond
	cfg.PropDelay = 0
	m, _ := build(s, cfg, geom.Point{}, geom.Point{X: 10})
	var deliveries []sim.Time
	m2 := &sink{}
	_ = m2
	// Replace handler to capture times: rebuild with a custom handler.
	s = sim.New(1)
	m = New(s, cfg)
	m.AddNode(0, fixed(geom.Point{}), HandlerFunc(func(NodeID, []byte) {}))
	m.AddNode(1, fixed(geom.Point{X: 10}), HandlerFunc(func(from NodeID, p []byte) {
		deliveries = append(deliveries, s.Now())
	}))
	payload := make([]byte, 100) // 100 ms serialization each
	m.Broadcast(0, payload)
	m.Broadcast(0, payload)
	s.Run()
	if len(deliveries) != 2 {
		t.Fatalf("deliveries = %d", len(deliveries))
	}
	if deliveries[0] != sim.Time(100*time.Millisecond) {
		t.Fatalf("first delivery at %v, want 100ms", deliveries[0])
	}
	if deliveries[1] != sim.Time(200*time.Millisecond) {
		t.Fatalf("second delivery at %v, want 200ms (serialized)", deliveries[1])
	}
}

func TestQueueSaturationDrops(t *testing.T) {
	s := sim.New(1)
	cfg := quiet()
	cfg.BitrateBps = 8000
	cfg.MaxQueueDelay = 150 * time.Millisecond
	m, _ := build(s, cfg, geom.Point{}, geom.Point{X: 10})
	payload := make([]byte, 100) // 100 ms each
	for i := 0; i < 5; i++ {
		m.Broadcast(0, payload)
	}
	s.Run()
	st := m.Stats()
	if st.QueueDrops == 0 {
		t.Fatal("expected queue drops under saturation")
	}
	if st.TxFrames+st.QueueDrops != 5 {
		t.Fatalf("tx=%d drops=%d, want total 5", st.TxFrames, st.QueueDrops)
	}
}

func TestLossRateDropsRoughlyProportionally(t *testing.T) {
	s := sim.New(42)
	cfg := quiet()
	cfg.LossRate = 0.5
	cfg.BitrateBps = 0 // instantaneous so the run is fast
	count := 0
	m := New(s, cfg)
	m.AddNode(0, fixed(geom.Point{}), HandlerFunc(func(NodeID, []byte) {}))
	m.AddNode(1, fixed(geom.Point{X: 10}), HandlerFunc(func(NodeID, []byte) { count++ }))
	const n = 2000
	for i := 0; i < n; i++ {
		m.Broadcast(0, []byte("x"))
	}
	s.Run()
	if count < n/2-150 || count > n/2+150 {
		t.Fatalf("with 50%% loss, delivered %d of %d", count, n)
	}
	if m.Stats().LostFrames != uint64(n-count) {
		t.Fatalf("LostFrames = %d, want %d", m.Stats().LostFrames, n-count)
	}
}

func TestUnicastRetriesRecoverLosses(t *testing.T) {
	// With 50% loss and 3 retries, per-packet success is 1-0.5^4 = 93.75%.
	s := sim.New(21)
	cfg := quiet()
	cfg.LossRate = 0.5
	cfg.UnicastRetries = 3
	cfg.BitrateBps = 0
	got := 0
	m := New(s, cfg)
	m.AddNode(0, fixed(geom.Point{}), HandlerFunc(func(NodeID, []byte) {}))
	m.AddNode(1, fixed(geom.Point{X: 10}), HandlerFunc(func(NodeID, []byte) { got++ }))
	const n = 1000
	acked := 0
	for i := 0; i < n; i++ {
		m.Unicast(0, 1, []byte("x"), func(ok bool) {
			if ok {
				acked++
			}
		})
	}
	s.Run()
	if got < 890 || acked != got {
		t.Fatalf("delivered %d acked %d of %d with retries", got, acked, n)
	}
	if m.Stats().Retries == 0 {
		t.Fatal("no retries recorded")
	}
}

func TestUnicastRetriesExhaust(t *testing.T) {
	// Out-of-range unicasts fail even with retries, after trying them.
	s := sim.New(1)
	cfg := quiet()
	cfg.UnicastRetries = 2
	m, _ := build(s, cfg, geom.Point{}, geom.Point{X: 5000})
	var acks int
	var ok bool
	m.Unicast(0, 1, []byte("x"), func(b bool) { acks++; ok = b })
	s.Run()
	if acks != 1 || ok {
		t.Fatalf("acked %d times with ok=%v; want exactly one failure", acks, ok)
	}
	if m.Stats().Retries != 2 {
		t.Fatalf("Retries = %d, want 2", m.Stats().Retries)
	}
}

func TestNeighborsAndInRange(t *testing.T) {
	s := sim.New(1)
	m, _ := build(s, quiet(), geom.Point{}, geom.Point{X: 100}, geom.Point{X: 240}, geom.Point{X: 600})
	nb := m.Neighbors(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Fatalf("Neighbors(0) = %v", nb)
	}
	if !m.InRange(0, 1) || m.InRange(0, 3) {
		t.Fatal("InRange wrong")
	}
	m.SetDown(1, true)
	nb = m.Neighbors(0)
	if len(nb) != 1 || nb[0] != 2 {
		t.Fatalf("Neighbors(0) after down = %v", nb)
	}
	if m.InRange(0, 1) {
		t.Fatal("down node still in range")
	}
}

func TestMovingNodeLeavesRange(t *testing.T) {
	s := sim.New(1)
	cfg := quiet()
	cfg.BitrateBps = 0
	m := New(s, cfg)
	got := 0
	// Node 1 moves away at 100 m/s starting in range, out of range after ~2.5s.
	m.AddNode(0, fixed(geom.Point{}), HandlerFunc(func(NodeID, []byte) {}))
	m.AddNode(1, func(t sim.Time) geom.Point {
		return geom.Point{X: 100 * t.Seconds()}
	}, HandlerFunc(func(NodeID, []byte) { got++ }))
	s.After(time.Second, func() { m.Broadcast(0, []byte("early")) })
	s.After(10*time.Second, func() { m.Broadcast(0, []byte("late")) })
	s.Run()
	if got != 1 {
		t.Fatalf("deliveries = %d, want 1 (only while in range)", got)
	}
}

func TestTransmitFromUnknownNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := sim.New(1)
	m := New(s, quiet())
	m.Broadcast(42, []byte("x"))
}

func TestDownSenderFailsUnicastAck(t *testing.T) {
	s := sim.New(1)
	m, _ := build(s, quiet(), geom.Point{}, geom.Point{X: 10})
	m.SetDown(0, true)
	var acked *bool
	m.Unicast(0, 1, []byte("x"), func(ok bool) { acked = &ok })
	s.Run()
	if acked == nil || *acked {
		t.Fatal("down sender should fail its ack")
	}
}

func TestSenderDiesMidTransmission(t *testing.T) {
	s := sim.New(1)
	cfg := quiet()
	cfg.BitrateBps = 8000 // 1 byte/ms: a 100-byte frame takes 100 ms
	m, sinks := build(s, cfg, geom.Point{}, geom.Point{X: 10})
	var acked *bool
	m.Unicast(0, 1, make([]byte, 100), func(ok bool) { acked = &ok })
	s.After(50*time.Millisecond, func() { m.SetDown(0, true) })
	s.Run()
	if len(sinks[1].frames) != 0 {
		t.Fatal("frame delivered although the sender died mid-transmission")
	}
	if acked == nil || *acked {
		t.Fatal("mid-transmission death should fail the ack")
	}
}

func TestNilPositionOrHandlerPanics(t *testing.T) {
	s := sim.New(1)
	m := New(s, quiet())
	for _, try := range []func(){
		func() { m.AddNode(0, nil, HandlerFunc(func(NodeID, []byte) {})) },
		func() { m.AddNode(1, fixed(geom.Point{}), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			try()
		}()
	}
}

func TestZeroRangeDefaulted(t *testing.T) {
	s := sim.New(1)
	m := New(s, Config{})
	if m.Config().Range != 250 {
		t.Fatalf("zero range not defaulted: %v", m.Config().Range)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := sim.New(1)
	m := New(s, quiet())
	m.AddNode(1, fixed(geom.Point{}), HandlerFunc(func(NodeID, []byte) {}))
	m.AddNode(1, fixed(geom.Point{}), HandlerFunc(func(NodeID, []byte) {}))
}

func TestStatsAccounting(t *testing.T) {
	s := sim.New(1)
	m, _ := build(s, quiet(), geom.Point{}, geom.Point{X: 10})
	m.Broadcast(0, make([]byte, 64))
	m.Unicast(0, 1, make([]byte, 32), nil)
	s.Run()
	st := m.Stats()
	if st.TxFrames != 2 || st.TxBytes != 96 {
		t.Fatalf("tx stats: %+v", st)
	}
	if st.BroadcastSent != 1 || st.UnicastSent != 1 {
		t.Fatalf("send kind stats: %+v", st)
	}
	if st.RxFrames != 2 {
		t.Fatalf("rx stats: %+v", st)
	}
}

func BenchmarkBroadcastFanout50(b *testing.B) {
	s := sim.New(1)
	cfg := quiet()
	cfg.BitrateBps = 0
	m := New(s, cfg)
	for i := 0; i < 50; i++ {
		m.AddNode(NodeID(i), fixed(geom.Point{X: float64(i)}), HandlerFunc(func(NodeID, []byte) {}))
	}
	payload := make([]byte, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Broadcast(0, payload)
		s.Run()
	}
}
