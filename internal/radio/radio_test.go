package radio

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"sbr6/internal/geom"
	"sbr6/internal/sim"
)

type sink struct {
	frames []struct {
		from    NodeID
		payload string
	}
}

func (s *sink) Deliver(from NodeID, payload []byte) {
	s.frames = append(s.frames, struct {
		from    NodeID
		payload string
	}{from, string(payload)})
}

func fixed(p geom.Point) PositionFunc {
	return func(sim.Time) geom.Point { return p }
}

// build creates a medium with nodes at the given positions and returns
// the sinks in id order.
func build(s *sim.Simulator, cfg Config, positions ...geom.Point) (*Medium, []*sink) {
	m := New(s, cfg)
	sinks := make([]*sink, len(positions))
	for i, p := range positions {
		sinks[i] = &sink{}
		m.AddNode(NodeID(i), fixed(p), sinks[i])
	}
	return m, sinks
}

func quiet() Config {
	cfg := DefaultConfig()
	cfg.BroadcastJitter = 0
	cfg.LossRate = 0
	return cfg
}

func TestBroadcastReachesOnlyInRange(t *testing.T) {
	s := sim.New(1)
	// Node 1 at 100 m (in range), node 2 at 300 m (out of the 250 m range).
	m, sinks := build(s, quiet(), geom.Point{}, geom.Point{X: 100}, geom.Point{X: 300})
	m.Broadcast(0, []byte("hello"))
	s.Run()
	if len(sinks[1].frames) != 1 || sinks[1].frames[0].payload != "hello" {
		t.Fatalf("in-range node got %v", sinks[1].frames)
	}
	if len(sinks[2].frames) != 0 {
		t.Fatal("out-of-range node received a frame")
	}
	if len(sinks[0].frames) != 0 {
		t.Fatal("sender received its own frame")
	}
}

func TestUnicastDeliversAndAcks(t *testing.T) {
	s := sim.New(1)
	m, sinks := build(s, quiet(), geom.Point{}, geom.Point{X: 50}, geom.Point{X: 100})
	var acked *bool
	m.Unicast(0, 1, []byte("data"), func(ok bool) { acked = &ok })
	s.Run()
	if acked == nil || !*acked {
		t.Fatal("unicast not acked")
	}
	if len(sinks[1].frames) != 1 {
		t.Fatalf("addressee frames = %d", len(sinks[1].frames))
	}
	if len(sinks[2].frames) != 0 {
		t.Fatal("unicast delivered to a third party")
	}
}

func TestUnicastOutOfRangeFails(t *testing.T) {
	s := sim.New(1)
	m, sinks := build(s, quiet(), geom.Point{}, geom.Point{X: 1000})
	var acked *bool
	m.Unicast(0, 1, []byte("data"), func(ok bool) { acked = &ok })
	s.Run()
	if acked == nil || *acked {
		t.Fatal("out-of-range unicast should fail its ACK")
	}
	if len(sinks[1].frames) != 0 {
		t.Fatal("out-of-range unicast delivered")
	}
	if m.Stats().UnicastFails != 1 {
		t.Fatalf("UnicastFails = %d", m.Stats().UnicastFails)
	}
}

func TestDownNodeNeitherSendsNorReceives(t *testing.T) {
	s := sim.New(1)
	m, sinks := build(s, quiet(), geom.Point{}, geom.Point{X: 10})
	m.SetDown(1, true)
	m.Broadcast(0, []byte("x"))
	var acked *bool
	m.Unicast(0, 1, []byte("y"), func(ok bool) { acked = &ok })
	s.Run()
	if len(sinks[1].frames) != 0 {
		t.Fatal("down node received frames")
	}
	if acked == nil || *acked {
		t.Fatal("unicast to down node should fail")
	}
	// Down sender:
	m.SetDown(1, false)
	m.SetDown(0, true)
	m.Broadcast(0, []byte("z"))
	s.Run()
	if len(sinks[1].frames) != 0 {
		t.Fatal("frame from down sender delivered")
	}
}

func TestSerializationDelaysBackToBackFrames(t *testing.T) {
	s := sim.New(1)
	cfg := quiet()
	cfg.BitrateBps = 8000 // 1 byte per millisecond
	cfg.PropDelay = 0
	m, _ := build(s, cfg, geom.Point{}, geom.Point{X: 10})
	var deliveries []sim.Time
	m2 := &sink{}
	_ = m2
	// Replace handler to capture times: rebuild with a custom handler.
	s = sim.New(1)
	m = New(s, cfg)
	m.AddNode(0, fixed(geom.Point{}), HandlerFunc(func(NodeID, []byte) {}))
	m.AddNode(1, fixed(geom.Point{X: 10}), HandlerFunc(func(from NodeID, p []byte) {
		deliveries = append(deliveries, s.Now())
	}))
	payload := make([]byte, 100) // 100 ms serialization each
	m.Broadcast(0, payload)
	m.Broadcast(0, payload)
	s.Run()
	if len(deliveries) != 2 {
		t.Fatalf("deliveries = %d", len(deliveries))
	}
	if deliveries[0] != sim.Time(100*time.Millisecond) {
		t.Fatalf("first delivery at %v, want 100ms", deliveries[0])
	}
	if deliveries[1] != sim.Time(200*time.Millisecond) {
		t.Fatalf("second delivery at %v, want 200ms (serialized)", deliveries[1])
	}
}

func TestQueueSaturationDrops(t *testing.T) {
	s := sim.New(1)
	cfg := quiet()
	cfg.BitrateBps = 8000
	cfg.MaxQueueDelay = 150 * time.Millisecond
	m, _ := build(s, cfg, geom.Point{}, geom.Point{X: 10})
	payload := make([]byte, 100) // 100 ms each
	for i := 0; i < 5; i++ {
		m.Broadcast(0, payload)
	}
	s.Run()
	st := m.Stats()
	if st.QueueDrops == 0 {
		t.Fatal("expected queue drops under saturation")
	}
	if st.TxFrames+st.QueueDrops != 5 {
		t.Fatalf("tx=%d drops=%d, want total 5", st.TxFrames, st.QueueDrops)
	}
}

func TestLossRateDropsRoughlyProportionally(t *testing.T) {
	s := sim.New(42)
	cfg := quiet()
	cfg.LossRate = 0.5
	cfg.BitrateBps = 0 // instantaneous so the run is fast
	count := 0
	m := New(s, cfg)
	m.AddNode(0, fixed(geom.Point{}), HandlerFunc(func(NodeID, []byte) {}))
	m.AddNode(1, fixed(geom.Point{X: 10}), HandlerFunc(func(NodeID, []byte) { count++ }))
	const n = 2000
	for i := 0; i < n; i++ {
		m.Broadcast(0, []byte("x"))
	}
	s.Run()
	if count < n/2-150 || count > n/2+150 {
		t.Fatalf("with 50%% loss, delivered %d of %d", count, n)
	}
	if m.Stats().LostFrames != uint64(n-count) {
		t.Fatalf("LostFrames = %d, want %d", m.Stats().LostFrames, n-count)
	}
}

func TestUnicastRetriesRecoverLosses(t *testing.T) {
	// With 50% loss and 3 retries, per-packet success is 1-0.5^4 = 93.75%.
	s := sim.New(21)
	cfg := quiet()
	cfg.LossRate = 0.5
	cfg.UnicastRetries = 3
	cfg.BitrateBps = 0
	got := 0
	m := New(s, cfg)
	m.AddNode(0, fixed(geom.Point{}), HandlerFunc(func(NodeID, []byte) {}))
	m.AddNode(1, fixed(geom.Point{X: 10}), HandlerFunc(func(NodeID, []byte) { got++ }))
	const n = 1000
	acked := 0
	for i := 0; i < n; i++ {
		m.Unicast(0, 1, []byte("x"), func(ok bool) {
			if ok {
				acked++
			}
		})
	}
	s.Run()
	if got < 890 || acked != got {
		t.Fatalf("delivered %d acked %d of %d with retries", got, acked, n)
	}
	if m.Stats().Retries == 0 {
		t.Fatal("no retries recorded")
	}
}

func TestUnicastRetriesExhaust(t *testing.T) {
	// Out-of-range unicasts fail even with retries, after trying them.
	s := sim.New(1)
	cfg := quiet()
	cfg.UnicastRetries = 2
	m, _ := build(s, cfg, geom.Point{}, geom.Point{X: 5000})
	var acks int
	var ok bool
	m.Unicast(0, 1, []byte("x"), func(b bool) { acks++; ok = b })
	s.Run()
	if acks != 1 || ok {
		t.Fatalf("acked %d times with ok=%v; want exactly one failure", acks, ok)
	}
	if m.Stats().Retries != 2 {
		t.Fatalf("Retries = %d, want 2", m.Stats().Retries)
	}
}

func TestNeighborsAndInRange(t *testing.T) {
	s := sim.New(1)
	m, _ := build(s, quiet(), geom.Point{}, geom.Point{X: 100}, geom.Point{X: 240}, geom.Point{X: 600})
	nb := m.Neighbors(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Fatalf("Neighbors(0) = %v", nb)
	}
	if !m.InRange(0, 1) || m.InRange(0, 3) {
		t.Fatal("InRange wrong")
	}
	m.SetDown(1, true)
	nb = m.Neighbors(0)
	if len(nb) != 1 || nb[0] != 2 {
		t.Fatalf("Neighbors(0) after down = %v", nb)
	}
	if m.InRange(0, 1) {
		t.Fatal("down node still in range")
	}
}

func TestMovingNodeLeavesRange(t *testing.T) {
	s := sim.New(1)
	cfg := quiet()
	cfg.BitrateBps = 0
	m := New(s, cfg)
	got := 0
	// Node 1 moves away at 100 m/s starting in range, out of range after ~2.5s.
	m.AddNode(0, fixed(geom.Point{}), HandlerFunc(func(NodeID, []byte) {}))
	m.AddNode(1, func(t sim.Time) geom.Point {
		return geom.Point{X: 100 * t.Seconds()}
	}, HandlerFunc(func(NodeID, []byte) { got++ }))
	s.After(time.Second, func() { m.Broadcast(0, []byte("early")) })
	s.After(10*time.Second, func() { m.Broadcast(0, []byte("late")) })
	s.Run()
	if got != 1 {
		t.Fatalf("deliveries = %d, want 1 (only while in range)", got)
	}
}

func TestTransmitFromUnknownNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := sim.New(1)
	m := New(s, quiet())
	m.Broadcast(42, []byte("x"))
}

func TestDownSenderFailsUnicastAck(t *testing.T) {
	s := sim.New(1)
	m, _ := build(s, quiet(), geom.Point{}, geom.Point{X: 10})
	m.SetDown(0, true)
	var acked *bool
	m.Unicast(0, 1, []byte("x"), func(ok bool) { acked = &ok })
	s.Run()
	if acked == nil || *acked {
		t.Fatal("down sender should fail its ack")
	}
}

func TestSenderDiesMidTransmission(t *testing.T) {
	s := sim.New(1)
	cfg := quiet()
	cfg.BitrateBps = 8000 // 1 byte/ms: a 100-byte frame takes 100 ms
	m, sinks := build(s, cfg, geom.Point{}, geom.Point{X: 10})
	var acked *bool
	m.Unicast(0, 1, make([]byte, 100), func(ok bool) { acked = &ok })
	s.After(50*time.Millisecond, func() { m.SetDown(0, true) })
	s.Run()
	if len(sinks[1].frames) != 0 {
		t.Fatal("frame delivered although the sender died mid-transmission")
	}
	if acked == nil || *acked {
		t.Fatal("mid-transmission death should fail the ack")
	}
}

func TestNilPositionOrHandlerPanics(t *testing.T) {
	s := sim.New(1)
	m := New(s, quiet())
	for _, try := range []func(){
		func() { m.AddNode(0, nil, HandlerFunc(func(NodeID, []byte) {})) },
		func() { m.AddNode(1, fixed(geom.Point{}), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			try()
		}()
	}
}

func TestZeroRangeDefaulted(t *testing.T) {
	s := sim.New(1)
	m := New(s, Config{})
	if m.Config().Range != 250 {
		t.Fatalf("zero range not defaulted: %v", m.Config().Range)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := sim.New(1)
	m := New(s, quiet())
	m.AddNode(1, fixed(geom.Point{}), HandlerFunc(func(NodeID, []byte) {}))
	m.AddNode(1, fixed(geom.Point{}), HandlerFunc(func(NodeID, []byte) {}))
}

func TestStatsAccounting(t *testing.T) {
	s := sim.New(1)
	m, _ := build(s, quiet(), geom.Point{}, geom.Point{X: 10})
	m.Broadcast(0, make([]byte, 64))
	m.Unicast(0, 1, make([]byte, 32), nil)
	s.Run()
	st := m.Stats()
	if st.TxFrames != 2 || st.TxBytes != 96 {
		t.Fatalf("tx stats: %+v", st)
	}
	if st.BroadcastSent != 1 || st.UnicastSent != 1 {
		t.Fatalf("send kind stats: %+v", st)
	}
	if st.RxFrames != 2 {
		t.Fatalf("rx stats: %+v", st)
	}
}

// gridQuiet forces the spatial index on regardless of network size.
func gridQuiet() Config {
	cfg := quiet()
	cfg.Index = IndexGrid
	return cfg
}

func TestGridNeighborsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := make([]geom.Point, 120)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 2000, Y: rng.Float64() * 2000}
	}
	naiveCfg := quiet()
	naiveCfg.Index = IndexNaive
	sn, sg := sim.New(1), sim.New(1)
	naive, _ := build(sn, naiveCfg, pts...)
	grid, _ := build(sg, gridQuiet(), pts...)
	if naive.GridActive() {
		t.Fatal("IndexNaive config enabled the grid")
	}
	if !grid.GridActive() {
		t.Fatal("IndexGrid config did not enable the grid")
	}
	check := func(stage string) {
		t.Helper()
		for i := range pts {
			nn := naive.Neighbors(NodeID(i))
			gn := grid.Neighbors(NodeID(i))
			if len(nn) != len(gn) {
				t.Fatalf("%s: node %d: naive %v != grid %v", stage, i, nn, gn)
			}
			for k := range nn {
				if nn[k] != gn[k] {
					t.Fatalf("%s: node %d: naive %v != grid %v", stage, i, nn, gn)
				}
			}
			if in, ig := naive.InRange(0, NodeID(i)), grid.InRange(0, NodeID(i)); in != ig {
				t.Fatalf("%s: InRange(0,%d): naive %v grid %v", stage, i, in, ig)
			}
		}
	}
	check("initial")
	for _, down := range []NodeID{3, 40, 77} {
		naive.SetDown(down, true)
		grid.SetDown(down, true)
	}
	check("after down")
	naive.SetDown(40, false)
	grid.SetDown(40, false)
	check("after restore")
}

// A mover with a declared speed bound must leave (and re-enter) radio range
// on the grid medium exactly as on the naive scan, across re-bucket sweeps.
func TestGridMovingNodeWithSpeedBound(t *testing.T) {
	for _, declare := range []bool{true, false} {
		s := sim.New(1)
		cfg := gridQuiet()
		cfg.BitrateBps = 0
		m := New(s, cfg)
		got := 0
		m.AddNode(0, fixed(geom.Point{}), HandlerFunc(func(NodeID, []byte) {}))
		m.AddNode(1, func(t sim.Time) geom.Point {
			return geom.Point{X: 100 * t.Seconds()} // out of 250 m range after 2.5 s
		}, HandlerFunc(func(NodeID, []byte) { got++ }))
		m.SetSpeedBound(0, 0)
		if declare {
			m.SetSpeedBound(1, 100)
		} // else: stays unbounded and is re-bucketed exactly
		s.After(time.Second, func() { m.Broadcast(0, []byte("early")) })
		s.After(2*time.Second, func() {
			if nb := m.Neighbors(1); len(nb) != 1 || nb[0] != 0 {
				t.Errorf("declare=%v: Neighbors(1) at 2s = %v, want [0]", declare, nb)
			}
		})
		s.After(10*time.Second, func() { m.Broadcast(0, []byte("late")) })
		s.After(11*time.Second, func() {
			if nb := m.Neighbors(0); len(nb) != 0 {
				t.Errorf("declare=%v: Neighbors(0) at 11s = %v, want none", declare, nb)
			}
		})
		s.Run()
		if got != 1 {
			t.Fatalf("declare=%v: deliveries = %d, want 1 (only while in range)", declare, got)
		}
	}
}

func TestSetSpeedBoundEdgeCases(t *testing.T) {
	s := sim.New(1)
	m, _ := build(s, gridQuiet(), geom.Point{}, geom.Point{X: 10})
	m.SetSpeedBound(99, 5) // unknown id: no-op
	m.SetSpeedBound(0, 0)
	m.SetSpeedBound(0, -3)          // back to unbounded
	m.SetSpeedBound(1, math.NaN())  // unbounded
	m.SetSpeedBound(1, math.Inf(1)) // unbounded
	m.Broadcast(0, []byte("x"))
	s.Run()
	if m.Stats().RxFrames != 1 {
		t.Fatalf("RxFrames = %d", m.Stats().RxFrames)
	}
}

// Neighbors must not churn allocations: the returned slice is pre-sized to
// the previous count, and AppendNeighbors into a sized buffer allocates
// nothing at all.
func TestNeighborsAllocation(t *testing.T) {
	for _, cfg := range []Config{quiet(), gridQuiet()} {
		s := sim.New(1)
		m := New(s, cfg)
		for i := 0; i < 100; i++ {
			m.AddNode(NodeID(i), fixed(geom.Point{X: float64(i * 20)}), HandlerFunc(func(NodeID, []byte) {}))
			m.SetSpeedBound(NodeID(i), 0)
		}
		m.Neighbors(50) // warm the size hint
		if a := testing.AllocsPerRun(100, func() { m.Neighbors(50) }); a > 1 {
			t.Errorf("index=%d: Neighbors allocates %v/op, want <= 1", cfg.Index, a)
		}
		buf := make([]NodeID, 0, 128)
		if a := testing.AllocsPerRun(100, func() { buf = m.AppendNeighbors(50, buf[:0]) }); a != 0 {
			t.Errorf("index=%d: AppendNeighbors allocates %v/op, want 0", cfg.Index, a)
		}
	}
}

// BenchmarkNeighbors guards the allocation fix and shows the index
// crossover: ~25 in-range neighbours out of 1000 attached nodes.
func BenchmarkNeighbors(b *testing.B) {
	for _, mode := range []struct {
		name string
		kind IndexKind
	}{{"naive", IndexNaive}, {"grid", IndexGrid}} {
		s := sim.New(1)
		cfg := quiet()
		cfg.Index = mode.kind
		m := New(s, cfg)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 1000; i++ {
			p := geom.Point{X: rng.Float64() * 4000, Y: rng.Float64() * 4000}
			m.AddNode(NodeID(i), fixed(p), HandlerFunc(func(NodeID, []byte) {}))
			m.SetSpeedBound(NodeID(i), 0)
		}
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Neighbors(NodeID(i % 1000))
			}
		})
		b.Run(mode.name+"/append", func(b *testing.B) {
			buf := make([]NodeID, 0, 256)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf = m.AppendNeighbors(NodeID(i%1000), buf[:0])
			}
		})
	}
}

func BenchmarkBroadcastFanout50(b *testing.B) {
	s := sim.New(1)
	cfg := quiet()
	cfg.BitrateBps = 0
	m := New(s, cfg)
	for i := 0; i < 50; i++ {
		m.AddNode(NodeID(i), fixed(geom.Point{X: float64(i)}), HandlerFunc(func(NodeID, []byte) {}))
	}
	payload := make([]byte, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Broadcast(0, payload)
		s.Run()
	}
}
