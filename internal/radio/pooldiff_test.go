package radio_test

// Pooled wire path differential suite: Config.FramePool must be a pure
// allocation optimization. For every scenario in the equivalence matrix
// and every seed, a pooled run — shared broadcast frames, size-class
// buffer recycling, batched delivery events — must produce a Result
// byte-for-byte identical to the allocating run: same receiver sets, same
// delivery ordering, same RNG consumption, same counters, same attack
// detections. The poison variant re-runs the comparison with released
// frames overwritten, so any use-after-release on the pooled path breaks
// the equality instead of silently reading stale bytes.
//
// The leak suite then drives the frame lifecycle through every exit of
// the transmit path — queue drops, down transmitters, zero-receiver
// broadcasts, failed unicast retries, lossy deliveries — and holds the
// pool's live count at zero once the simulator drains: every checkout has
// exactly one release, whatever path the frame took.

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"sbr6/internal/attack"
	"sbr6/internal/geom"
	"sbr6/internal/pool"
	"sbr6/internal/radio"
	"sbr6/internal/scenario"
	"sbr6/internal/sim"
)

// runWithPool builds and runs one configuration with the pooled wire path
// forced on or off (poison applies to pooled runs only).
func runWithPool(t *testing.T, mk func() scenario.Config, seed int64, pooled, poison bool) *scenario.Result {
	t.Helper()
	cfg := mk()
	cfg.Seed = seed
	cfg.Radio.FramePool = pooled
	cfg.Radio.PoisonFrames = poison
	sc, err := scenario.Build(cfg)
	if err != nil {
		t.Fatalf("build (pooled=%v, seed=%d): %v", pooled, seed, err)
	}
	return sc.Run()
}

func TestFramePoolEquivalentToUnpooled(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	for name, mk := range equivalenceMatrix() {
		t.Run(name, func(t *testing.T) {
			for _, seed := range seeds {
				plain := runWithPool(t, mk, seed, false, false)
				pooled := runWithPool(t, mk, seed, true, false)
				if !reflect.DeepEqual(plain, pooled) {
					t.Errorf("seed %d: pooled and unpooled runs diverged:\nunpooled: %v\n  pooled: %v",
						seed, plain, pooled)
				}
			}
		})
	}
}

// The poisoned comparison is the use-after-release detector: every
// released frame is overwritten before reuse, so a receiver or retry path
// that touches a frame after the medium reclaimed it decodes garbage and
// the Results split. One scenario per matrix entry suffices — the frame
// lifecycle does not depend on the seed.
func TestPoisonedFramePoolEquivalent(t *testing.T) {
	for name, mk := range equivalenceMatrix() {
		t.Run(name, func(t *testing.T) {
			plain := runWithPool(t, mk, 3, false, false)
			poisoned := runWithPool(t, mk, 3, true, true)
			if !reflect.DeepEqual(plain, poisoned) {
				t.Errorf("poisoned pooled run diverged from unpooled:\nunpooled: %v\npoisoned: %v",
					plain, poisoned)
			}
		})
	}
}

// An adversarial network with a replay attacker holds the byte-accounting
// invariant on every node: raw replayed frames carry their own counter
// and fold into the total alongside control and data bytes.
func TestReplayScenarioByteAccounting(t *testing.T) {
	mk := equivalenceMatrix()["battlefield"]
	cfg := mk()
	cfg.Seed = 2
	cfg.Behaviors[14] = &attack.Replayer{}
	sc, err := scenario.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc.Run()
	raw := 0.0
	for i, n := range sc.Nodes {
		m := n.Metrics()
		total := m.Get("tx.bytes.total")
		split := m.Get("tx.bytes.control") + m.Get("tx.bytes.data") + m.Get("tx.bytes.raw")
		if total != split {
			t.Errorf("node %d: tx.bytes.total %v != control+data+raw %v", i, total, split)
		}
		raw += m.Get("tx.bytes.raw")
	}
	if raw == 0 {
		t.Fatal("replayer transmitted no raw bytes; the invariant was not exercised")
	}
}

// poolChurnNet is a bare medium exercising every frame-lifecycle exit:
// nodes 0..7 cluster in range of each other, node 8 sits isolated beyond
// range (unicasts to it exhaust retries), node 9 flaps down (transmit-time
// and completion-time drops).
func poolChurnNet(t *testing.T) (*sim.Simulator, *radio.Medium) {
	t.Helper()
	s := sim.New(11)
	cfg := radio.DefaultConfig()
	cfg.LossRate = 0.3
	cfg.UnicastRetries = 2
	cfg.MaxQueueDelay = 2 * time.Millisecond // bursts overflow the queue
	cfg.BroadcastJitter = time.Millisecond
	cfg.PoisonFrames = true
	m := radio.New(s, cfg)
	for i := 0; i < 8; i++ {
		p := geom.Point{X: float64(i) * 20, Y: 0}
		m.AddNode(radio.NodeID(i), func(sim.Time) geom.Point { return p }, radio.HandlerFunc(func(radio.NodeID, []byte) {}))
	}
	far := geom.Point{X: 1e6, Y: 1e6}
	m.AddNode(8, func(sim.Time) geom.Point { return far }, radio.HandlerFunc(func(radio.NodeID, []byte) {}))
	flappy := geom.Point{X: 80, Y: 10}
	m.AddNode(9, func(sim.Time) geom.Point { return flappy }, radio.HandlerFunc(func(radio.NodeID, []byte) {}))
	return s, m
}

func TestFramePoolLeakFree(t *testing.T) {
	s, m := poolChurnNet(t)
	rounds, perNode := 40, 6
	for r := 0; r < rounds; r++ {
		m.SetDown(9, r%2 == 0)
		for i := 0; i < 8; i++ {
			from := radio.NodeID(i)
			for k := 0; k < perNode; k++ {
				f := m.Frame(64 + 32*k)
				f = append(f, fmt.Sprintf("frame %d/%d/%d", r, i, k)...)
				switch k % 4 {
				case 0:
					m.BroadcastFrame(from, f)
				case 1:
					m.UnicastFrame(from, radio.NodeID((i+1)%8), f, nil) // in range, lossy
				case 2:
					m.UnicastFrame(from, 8, f, func(bool) {}) // out of range: retries exhaust
				case 3:
					m.UnicastFrame(from, 9, f, nil) // flapping receiver
				}
			}
		}
		// Isolated node broadcasts into the void: zero-receiver completes.
		v := m.Frame(16)
		m.BroadcastFrame(8, append(v, "void"...))
		// Flapping node transmits while down: transmit-time queue drop.
		d := m.Frame(16)
		m.BroadcastFrame(9, append(d, "down"...))
		s.Run() // drain everything in flight before the next burst
	}
	st := m.PoolStats()
	if st.Live != 0 {
		t.Fatalf("pool leak: %d frames still live after drain (gets %d, puts %d)",
			st.Live, st.Gets, st.Puts)
	}
	want := uint64(rounds * (8*perNode + 2))
	if st.Gets != want {
		t.Fatalf("gets = %d, want %d", st.Gets, want)
	}
	if st.HighWater > 8*perNode+2 {
		t.Fatalf("high water %d exceeds one burst's in-flight bound %d", st.HighWater, 8*perNode+2)
	}
	// Recycling must actually happen: steady state draws from the free
	// lists, not the allocator.
	if st.Misses*4 > st.Gets {
		t.Fatalf("pool barely recycles: %d misses over %d gets", st.Misses, st.Gets)
	}
	if stats := m.Stats(); stats.QueueDrops == 0 || stats.Retries == 0 || stats.UnicastFails == 0 || stats.LostFrames == 0 {
		t.Fatalf("churn did not cover the drop paths: %+v", stats)
	}
}

// A caller that encodes a frame and then abandons the transmission must
// hand the buffer back; ReleaseFrame must also tolerate the pool being
// off entirely.
func TestReleaseFrameWithoutTransmit(t *testing.T) {
	s := sim.New(1)
	m := radio.New(s, radio.DefaultConfig())
	f := m.Frame(100)
	m.ReleaseFrame(f)
	st := m.PoolStats()
	if st.Gets != 1 || st.Puts != 1 || st.Live != 0 {
		t.Fatalf("release not accounted: %+v", st)
	}

	off := radio.DefaultConfig()
	off.FramePool = false
	m2 := radio.New(sim.New(1), off)
	m2.ReleaseFrame(m2.Frame(100)) // plain allocation; release is a no-op
	if st := m2.PoolStats(); st != (pool.Stats{}) {
		t.Fatalf("disabled pool reported stats: %+v", st)
	}
}
