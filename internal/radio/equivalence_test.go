package radio_test

// Cross-medium equivalence: the spatial-grid index must be a pure
// performance optimization. For every scenario in the matrix and every
// seed, a run on the grid medium must produce a Result byte-for-byte
// identical to the same run on the naive linear-scan medium — same
// receiver sets, same delivery ordering, same RNG consumption, same
// counters. The matrix deliberately covers static and mobile topologies,
// lossy links (per-receiver RNG draws), adversaries (extra control
// traffic) and windowed measurement.
//
// This lives next to the radio package it guards but runs the full
// scenario harness on top of it, which is what "equivalent" has to mean
// for every future scaling PR.

import (
	"reflect"
	"testing"
	"time"

	"sbr6/internal/attack"
	"sbr6/internal/core"
	"sbr6/internal/radio"
	"sbr6/internal/scenario"
)

// fastTimers shrinks the protocol timers the way the benchmark harness
// does, so the matrix stays quick without losing any code path.
func fastTimers(cfg *scenario.Config) {
	cfg.Protocol.DAD.Timeout = 300 * time.Millisecond
	cfg.Protocol.DiscoveryTimeout = 500 * time.Millisecond
	cfg.Protocol.AckTimeout = 400 * time.Millisecond
	cfg.Protocol.ResolveTimeout = 2 * time.Second
	cfg.DNS.CommitDelay = 300 * time.Millisecond
	cfg.BootStagger = 300 * time.Millisecond
	cfg.Warmup = time.Second
	cfg.Cooldown = 2 * time.Second
}

// equivalenceMatrix mirrors the repository's example scenarios: a clean
// quickstart network, the battlefield insider attack, and an adversarial
// mobile network under loss.
func equivalenceMatrix() map[string]func() scenario.Config {
	return map[string]func() scenario.Config{
		"quickstart": func() scenario.Config {
			cfg := scenario.DefaultConfig()
			fastTimers(&cfg)
			cfg.N = 25
			cfg.Placement = scenario.PlaceGrid
			cfg.Duration = 8 * time.Second
			cfg.Flows = []scenario.Flow{
				{From: 1, To: 24, Interval: 500 * time.Millisecond, Size: 64},
				{From: 7, To: 18, Interval: 700 * time.Millisecond, Size: 48},
			}
			return cfg
		},
		"battlefield": func() scenario.Config {
			cfg := scenario.DefaultConfig()
			fastTimers(&cfg)
			cfg.N = 25
			cfg.Placement = scenario.PlaceGrid
			cfg.Duration = 10 * time.Second
			cfg.Radio.LossRate = 0.02
			cfg.WindowSize = 2 * time.Second
			cfg.Behaviors = map[int]core.Behavior{
				11: &attack.BlackHole{},
				12: &attack.BlackHole{ForgeCacheReplies: true},
				13: &attack.RERRSpammer{},
			}
			cfg.Flows = []scenario.Flow{
				{From: 1, To: 24, Interval: 500 * time.Millisecond, Size: 64},
				{From: 4, To: 20, Interval: 500 * time.Millisecond, Size: 64},
				{From: 21, To: 3, Interval: 500 * time.Millisecond, Size: 64},
			}
			return cfg
		},
		"adversarial": func() scenario.Config {
			// Mobile and lossy: waypoint motion exercises the grid's lazy
			// re-bucketing and staleness slop, the fake DNS relay and gray
			// hole add hostile control traffic.
			cfg := scenario.DefaultConfig()
			fastTimers(&cfg)
			cfg.N = 30
			cfg.Placement = scenario.PlaceUniform
			cfg.Area.W, cfg.Area.H = 1200, 1200
			cfg.Duration = 10 * time.Second
			cfg.Radio.LossRate = 0.05
			cfg.Mobility = scenario.MobilitySpec{
				Waypoint: true, MinSpeed: 1, MaxSpeed: 10, Pause: time.Second,
			}
			cfg.Names = map[int]string{5: "server"}
			cfg.Behaviors = map[int]core.Behavior{
				2: &attack.FakeDNS{},
				9: &attack.GrayHole{P: 0.5},
			}
			cfg.Flows = []scenario.Flow{
				{From: 1, To: 14, Interval: 500 * time.Millisecond, Size: 64},
				{From: 8, To: 22, Interval: 600 * time.Millisecond, Size: 64},
			}
			return cfg
		},
	}
}

// runWith builds and runs one configuration under the given index kind,
// also reporting whether the grid was actually active.
func runWith(t *testing.T, mk func() scenario.Config, seed int64, kind radio.IndexKind) (*scenario.Result, bool) {
	t.Helper()
	cfg := mk()
	cfg.Seed = seed
	cfg.Radio.Index = kind
	sc, err := scenario.Build(cfg)
	if err != nil {
		t.Fatalf("build (index=%d, seed=%d): %v", kind, seed, err)
	}
	return sc.Run(), sc.Medium.GridActive()
}

func TestGridMediumEquivalentToNaive(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	for name, mk := range equivalenceMatrix() {
		t.Run(name, func(t *testing.T) {
			for _, seed := range seeds {
				naive, naiveGrid := runWith(t, mk, seed, radio.IndexNaive)
				grid, gridGrid := runWith(t, mk, seed, radio.IndexGrid)
				if naiveGrid {
					t.Fatalf("seed %d: IndexNaive activated the grid", seed)
				}
				if !gridGrid {
					t.Fatalf("seed %d: IndexGrid did not activate the grid", seed)
				}
				if !reflect.DeepEqual(naive, grid) {
					t.Errorf("seed %d: naive and grid media diverged:\n naive: %v\n  grid: %v",
						seed, naive, grid)
				}
			}
		})
	}
}

// The auto kind must agree with whichever side it picks — below the
// threshold that is the naive scan, and the result must still match a
// forced grid run.
func TestAutoIndexEquivalent(t *testing.T) {
	mk := equivalenceMatrix()["quickstart"]
	auto, gridActive := runWith(t, mk, 7, radio.IndexAuto)
	if gridActive {
		t.Fatal("auto index enabled the grid below the threshold")
	}
	forced, _ := runWith(t, mk, 7, radio.IndexGrid)
	if !reflect.DeepEqual(auto, forced) {
		t.Errorf("auto and forced-grid runs diverged:\n auto: %v\n grid: %v", auto, forced)
	}
}

// Above the threshold, IndexAuto must switch to the grid mid-attachment
// and still match a run forced onto the naive scan.
func TestAutoIndexSwitchesAtThreshold(t *testing.T) {
	mk := func() scenario.Config {
		cfg := scenario.DefaultConfig()
		fastTimers(&cfg)
		cfg.N = radio.AutoGridThreshold + 6
		cfg.Placement = scenario.PlaceGrid
		cfg.Area.W, cfg.Area.H = 1600, 1600
		cfg.Duration = 5 * time.Second
		cfg.Flows = []scenario.Flow{
			{From: 1, To: cfg.N - 1, Interval: time.Second, Size: 64},
		}
		return cfg
	}
	auto, gridActive := runWith(t, mk, 3, radio.IndexAuto)
	if !gridActive {
		t.Fatalf("auto index did not enable the grid at %d nodes", radio.AutoGridThreshold+6)
	}
	naive, _ := runWith(t, mk, 3, radio.IndexNaive)
	if !reflect.DeepEqual(auto, naive) {
		t.Errorf("auto(grid) and naive runs diverged:\n auto: %v\nnaive: %v", auto, naive)
	}
}
