// Package identity manages the public/private key pairs and CGA-bound
// addresses that every MANET host carries.
//
// The paper writes [msg]_{X_SK} for "msg encrypted with X's private key",
// verified by decrypting with X_PK and comparing — which is precisely a
// digital signature. Two suites are provided:
//
//   - Ed25519 (default): fast, small keys and signatures, deterministic key
//     generation from a seeded reader, so whole simulations are reproducible.
//   - RSA (1024/2048 with SHA-256 PKCS#1 v1.5): the kind of keys the 2003
//     paper had in mind; used by the suite-ablation experiment E2. Note that
//     crypto/rsa deliberately randomizes key generation even with a
//     deterministic reader, so RSA runs are not bit-reproducible (protocol
//     behaviour does not depend on key bits, only timings do).
package identity

import (
	"crypto"
	"crypto/ed25519"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"

	"sbr6/internal/cga"
	"sbr6/internal/ipv6"
)

// Suite selects the signature algorithm.
type Suite int

// Available suites.
const (
	SuiteEd25519 Suite = iota
	SuiteRSA1024
	SuiteRSA2048
)

// String names the suite for reports.
func (s Suite) String() string {
	switch s {
	case SuiteEd25519:
		return "ed25519"
	case SuiteRSA1024:
		return "rsa1024"
	case SuiteRSA2048:
		return "rsa2048"
	default:
		return fmt.Sprintf("suite(%d)", int(s))
	}
}

// PublicKey verifies signatures and serializes for transmission in AREP,
// RREQ, RREP, CREP and RERR messages.
type PublicKey interface {
	// Verify reports whether sig is a valid signature of msg.
	Verify(msg, sig []byte) bool
	// Bytes returns the wire encoding carried in protocol messages; it is
	// also the input to the CGA hash H(PK, rn).
	Bytes() []byte
	// Suite identifies the algorithm for ParsePublicKey.
	Suite() Suite
}

// PrivateKey signs protocol messages.
type PrivateKey interface {
	// Sign returns a signature of msg.
	Sign(msg []byte) []byte
	// Public returns the matching public key.
	Public() PublicKey
}

// --- Ed25519 ---

type ed25519Public ed25519.PublicKey

func (p ed25519Public) Verify(msg, sig []byte) bool {
	if len(p) != ed25519.PublicKeySize || len(sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(ed25519.PublicKey(p), msg, sig)
}
func (p ed25519Public) Bytes() []byte { return []byte(p) }
func (p ed25519Public) Suite() Suite  { return SuiteEd25519 }

type ed25519Private ed25519.PrivateKey

func (p ed25519Private) Sign(msg []byte) []byte {
	return ed25519.Sign(ed25519.PrivateKey(p), msg)
}
func (p ed25519Private) Public() PublicKey {
	return ed25519Public(ed25519.PrivateKey(p).Public().(ed25519.PublicKey))
}

// --- RSA ---

type rsaPublic struct {
	key *rsa.PublicKey
}

func (p rsaPublic) Verify(msg, sig []byte) bool {
	digest := sha256.Sum256(msg)
	return rsa.VerifyPKCS1v15(p.key, crypto.SHA256, digest[:], sig) == nil
}
func (p rsaPublic) Bytes() []byte { return x509.MarshalPKCS1PublicKey(p.key) }
func (p rsaPublic) Suite() Suite {
	if p.key.Size() <= 128 {
		return SuiteRSA1024
	}
	return SuiteRSA2048
}

type rsaPrivate struct {
	key *rsa.PrivateKey
}

func (p rsaPrivate) Sign(msg []byte) []byte {
	digest := sha256.Sum256(msg)
	sig, err := rsa.SignPKCS1v15(nil, p.key, crypto.SHA256, digest[:])
	if err != nil {
		// Signing with a valid key and digest cannot fail; treat as corruption.
		panic(fmt.Sprintf("identity: RSA sign: %v", err))
	}
	return sig
}
func (p rsaPrivate) Public() PublicKey { return rsaPublic{&p.key.PublicKey} }

// GenerateKey creates a key pair for the suite using entropy from rng.
func GenerateKey(suite Suite, rng io.Reader) (PrivateKey, error) {
	switch suite {
	case SuiteEd25519:
		_, priv, err := ed25519.GenerateKey(rng)
		if err != nil {
			return nil, fmt.Errorf("identity: ed25519 keygen: %w", err)
		}
		return ed25519Private(priv), nil
	case SuiteRSA1024, SuiteRSA2048:
		bits := 1024
		if suite == SuiteRSA2048 {
			bits = 2048
		}
		key, err := rsa.GenerateKey(rng, bits)
		if err != nil {
			return nil, fmt.Errorf("identity: rsa keygen: %w", err)
		}
		return rsaPrivate{key}, nil
	default:
		return nil, fmt.Errorf("identity: unknown suite %d", suite)
	}
}

// ParsePublicKey decodes a public key previously encoded with Bytes().
func ParsePublicKey(suite Suite, b []byte) (PublicKey, error) {
	switch suite {
	case SuiteEd25519:
		if len(b) != ed25519.PublicKeySize {
			return nil, fmt.Errorf("identity: bad ed25519 key length %d", len(b))
		}
		return ed25519Public(append([]byte(nil), b...)), nil
	case SuiteRSA1024, SuiteRSA2048:
		key, err := x509.ParsePKCS1PublicKey(b)
		if err != nil {
			return nil, fmt.Errorf("identity: parse RSA key: %w", err)
		}
		return rsaPublic{key}, nil
	default:
		return nil, fmt.Errorf("identity: unknown suite %d", suite)
	}
}

// Identity is a host's full cryptographic identity: key pair, current CGA
// modifier and the resulting site-local address. The zero Name means the
// host did not request a domain name.
type Identity struct {
	Priv PrivateKey
	Pub  PublicKey
	Rn   uint64
	Addr ipv6.Addr
	Name string
}

// New generates a fresh identity: a key pair for the suite and an initial
// CGA address from a random modifier.
func New(suite Suite, rng *rand.Rand, name string) (*Identity, error) {
	priv, err := GenerateKey(suite, NewReader(rng))
	if err != nil {
		return nil, err
	}
	id := &Identity{Priv: priv, Pub: priv.Public(), Name: name}
	id.Regenerate(rng)
	return id, nil
}

// Regenerate draws a fresh modifier and recomputes the address, keeping the
// key pair — the paper's recovery path when DAD detects a duplicate, and
// also what an identity-churning adversary does.
func (id *Identity) Regenerate(rng *rand.Rand) {
	id.Rn = rng.Uint64()
	id.Addr = cga.Address(id.Pub.Bytes(), id.Rn)
}

// Sign signs msg with the identity's private key.
func (id *Identity) Sign(msg []byte) []byte { return id.Priv.Sign(msg) }

// VerifyOwnBinding reports whether the identity's address matches its key
// and modifier — true unless the identity was tampered with.
func (id *Identity) VerifyOwnBinding() bool {
	return cga.Verify(id.Addr, id.Pub.Bytes(), id.Rn)
}

// NewReader adapts a math/rand source to io.Reader for key generation.
// Using the simulation's seeded source keeps Ed25519 runs fully
// reproducible.
func NewReader(rng *rand.Rand) io.Reader { return &randReader{rng} }

type randReader struct{ rng *rand.Rand }

func (r *randReader) Read(p []byte) (int, error) {
	var buf [8]byte
	for i := 0; i < len(p); i += 8 {
		binary.LittleEndian.PutUint64(buf[:], r.rng.Uint64())
		copy(p[i:], buf[:])
	}
	return len(p), nil
}
