package identity

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sbr6/internal/cga"
)

func newEd(t testing.TB, seed int64) *Identity {
	t.Helper()
	id, err := New(SuiteEd25519, rand.New(rand.NewSource(seed)), "host")
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestSignVerifyRoundTrip(t *testing.T) {
	for _, suite := range []Suite{SuiteEd25519, SuiteRSA1024} {
		suite := suite
		t.Run(suite.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			id, err := New(suite, rng, "a")
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("route request 42")
			sig := id.Sign(msg)
			if !id.Pub.Verify(msg, sig) {
				t.Fatal("signature does not verify")
			}
			if id.Pub.Verify([]byte("route request 43"), sig) {
				t.Fatal("signature verified for altered message")
			}
			sig[0] ^= 0xff
			if id.Pub.Verify(msg, sig) {
				t.Fatal("corrupted signature verified")
			}
		})
	}
}

func TestCrossKeyRejection(t *testing.T) {
	a, b := newEd(t, 1), newEd(t, 2)
	msg := []byte("hello")
	if b.Pub.Verify(msg, a.Sign(msg)) {
		t.Fatal("signature verified under wrong key")
	}
}

func TestPublicKeySerializationRoundTrip(t *testing.T) {
	for _, suite := range []Suite{SuiteEd25519, SuiteRSA1024} {
		suite := suite
		t.Run(suite.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			id, err := New(suite, rng, "")
			if err != nil {
				t.Fatal(err)
			}
			parsed, err := ParsePublicKey(suite, id.Pub.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("serialized key check")
			if !parsed.Verify(msg, id.Sign(msg)) {
				t.Fatal("parsed key fails to verify")
			}
			if parsed.Suite() != suite {
				t.Fatalf("parsed suite = %v, want %v", parsed.Suite(), suite)
			}
		})
	}
}

func TestParsePublicKeyErrors(t *testing.T) {
	if _, err := ParsePublicKey(SuiteEd25519, []byte("short")); err == nil {
		t.Fatal("short ed25519 key accepted")
	}
	if _, err := ParsePublicKey(SuiteRSA1024, []byte("garbage")); err == nil {
		t.Fatal("garbage RSA key accepted")
	}
	if _, err := ParsePublicKey(Suite(99), nil); err == nil {
		t.Fatal("unknown suite accepted")
	}
	if _, err := GenerateKey(Suite(99), nil); err == nil {
		t.Fatal("unknown suite keygen accepted")
	}
}

func TestIdentityAddressIsBoundCGA(t *testing.T) {
	id := newEd(t, 4)
	if !id.VerifyOwnBinding() {
		t.Fatal("identity does not satisfy its own CGA binding")
	}
	if !cga.Verify(id.Addr, id.Pub.Bytes(), id.Rn) {
		t.Fatal("cga.Verify disagrees")
	}
	if !id.Addr.IsSiteLocal() {
		t.Fatal("identity address not site-local")
	}
}

func TestRegenerateKeepsKeyChangesAddress(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	id, err := New(SuiteEd25519, rng, "")
	if err != nil {
		t.Fatal(err)
	}
	oldAddr, oldRn, oldPub := id.Addr, id.Rn, id.Pub.Bytes()
	id.Regenerate(rng)
	if id.Addr == oldAddr || id.Rn == oldRn {
		t.Fatal("Regenerate did not change address/modifier")
	}
	if string(id.Pub.Bytes()) != string(oldPub) {
		t.Fatal("Regenerate changed the key pair")
	}
	if !id.VerifyOwnBinding() {
		t.Fatal("regenerated identity breaks CGA binding")
	}
}

func TestEd25519Deterministic(t *testing.T) {
	a := newEd(t, 77)
	b := newEd(t, 77)
	if a.Addr != b.Addr || a.Rn != b.Rn {
		t.Fatal("same seed must yield identical identity")
	}
	c := newEd(t, 78)
	if a.Addr == c.Addr {
		t.Fatal("different seeds yielded same address")
	}
}

func TestRSA2048RoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("RSA-2048 keygen is slow")
	}
	rng := rand.New(rand.NewSource(2))
	id, err := New(SuiteRSA2048, rng, "big")
	if err != nil {
		t.Fatal(err)
	}
	if id.Pub.Suite() != SuiteRSA2048 {
		t.Fatalf("suite = %v", id.Pub.Suite())
	}
	msg := []byte("large-key check")
	if !id.Pub.Verify(msg, id.Sign(msg)) {
		t.Fatal("RSA-2048 signature does not verify")
	}
	parsed, err := ParsePublicKey(SuiteRSA2048, id.Pub.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Suite() != SuiteRSA2048 {
		t.Fatal("parsed suite wrong")
	}
	if !id.VerifyOwnBinding() {
		t.Fatal("CGA binding broken for RSA identity")
	}
}

func TestVerifyRejectsWrongLengths(t *testing.T) {
	id := newEd(t, 9)
	msg := []byte("m")
	sig := id.Sign(msg)
	if id.Pub.Verify(msg, sig[:10]) {
		t.Fatal("short signature accepted")
	}
	if id.Pub.Verify(msg, append(sig, 0)) {
		t.Fatal("long signature accepted")
	}
}

func TestSuiteString(t *testing.T) {
	if SuiteEd25519.String() != "ed25519" || SuiteRSA1024.String() != "rsa1024" || SuiteRSA2048.String() != "rsa2048" {
		t.Fatal("suite names wrong")
	}
	if Suite(9).String() != "suite(9)" {
		t.Fatal("unknown suite name wrong")
	}
}

func TestRandReaderFillsExactly(t *testing.T) {
	r := NewReader(rand.New(rand.NewSource(1)))
	for _, n := range []int{0, 1, 7, 8, 9, 31, 32, 33} {
		buf := make([]byte, n)
		got, err := r.Read(buf)
		if err != nil || got != n {
			t.Fatalf("Read(%d) = %d, %v", n, got, err)
		}
	}
}

// Property: any message signs and verifies; any single-byte corruption of
// the message defeats verification.
func TestPropertySignatureSoundness(t *testing.T) {
	id := newEd(t, 6)
	prop := func(msg []byte, flip uint8) bool {
		sig := id.Sign(msg)
		if !id.Pub.Verify(msg, sig) {
			return false
		}
		if len(msg) == 0 {
			return true
		}
		mutated := append([]byte(nil), msg...)
		mutated[int(flip)%len(mutated)] ^= 0x01
		if string(mutated) == string(msg) {
			return true
		}
		return !id.Pub.Verify(mutated, sig)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEd25519Sign(b *testing.B) {
	id := newEd(b, 1)
	msg := make([]byte, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id.Sign(msg)
	}
}

func BenchmarkEd25519Verify(b *testing.B) {
	id := newEd(b, 1)
	msg := make([]byte, 100)
	sig := id.Sign(msg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !id.Pub.Verify(msg, sig) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkRSA1024Verify(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	id, err := New(SuiteRSA1024, rng, "")
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 100)
	sig := id.Sign(msg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !id.Pub.Verify(msg, sig) {
			b.Fatal("verify failed")
		}
	}
}
