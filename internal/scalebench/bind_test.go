package scalebench

import (
	"testing"
	"time"
)

// fakeNow is a deterministic stand-in clock; the assertions here are
// about exact counters, never wall time.
func fakeNow() func() time.Time {
	t0 := time.Unix(0, 0)
	return func() time.Time {
		t0 = t0.Add(time.Millisecond)
		return t0
	}
}

// The bindtable workload's trend cell gates on counters, so they must
// be exact: the logical request count is identical with and without the
// table (the differential bar), the pernode primitive count is exactly
// BindVerifiers times the shared one (every unique binding misses once
// per node versus once per group), and every avoided primitive shows up
// as a table hit.
func TestRunBindScaleCountersExact(t *testing.T) {
	const n, seed, rounds = 250, 7, 2
	per := RunBindScale(n, false, seed, rounds, fakeNow())
	sh := RunBindScale(n, true, seed, rounds, fakeNow())

	if per.Index != "pernode" || sh.Index != "shared" {
		t.Fatalf("cells misnamed: %q / %q", per.Index, sh.Index)
	}
	if per.VerifyRequests != sh.VerifyRequests || per.VerifyRequests == 0 {
		t.Fatalf("logical requests must be identical table on/off: pernode %d, shared %d",
			per.VerifyRequests, sh.VerifyRequests)
	}
	if sh.VerifyOps == 0 {
		t.Fatal("shared cell computed no primitives — the workload is vacuous")
	}
	if per.VerifyOps != BindVerifiers*sh.VerifyOps {
		t.Errorf("pernode ops %d != %d x shared ops %d: the dedup ratio is not the group size",
			per.VerifyOps, BindVerifiers, sh.VerifyOps)
	}
	if want := (BindVerifiers - 1) * sh.VerifyOps; sh.CacheHits != want {
		t.Errorf("table hits %d != %d: an avoided primitive did not land as a hit", sh.CacheHits, want)
	}
	if per.CacheHits != 0 {
		t.Errorf("pernode cell reported %d table hits with no table", per.CacheHits)
	}
}
