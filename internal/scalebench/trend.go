package scalebench

// Trend comparison between two scale sweeps (BENCH_scale.json shaped):
// the ROADMAP's "make regressions visible in the PR, not after" renderer.
//
// Raw wall-ms is a property of whoever ran the sweep — the committed
// baseline and a CI runner disagree by integer factors on identical code —
// so absolute deltas force a uselessly loose gate. What IS comparable
// across machines is the speedup ratio inside one sweep: naive/grid,
// nocache/cache and serial/percell each divide two wall times measured
// back-to-back on the same hardware, so the hardware cancels. The trend
// aligns those ratios per (mode, nodes) pair between the two sweeps and
// flags any pair whose speedup eroded beyond the threshold — a sharp,
// machine-independent regression signal. cmd/sbrbench -trend drives this
// against the previous commit's archived artifact (falling back to the
// committed BENCH_scale.json).

import (
	"fmt"
	"sort"

	"sbr6/internal/trace"
)

// ratioPair names the baseline and optimized Index of one mode's speedup
// ratio. Adding a mode to the sweep only needs a row here.
type ratioPair struct {
	base, opt string
}

var ratioPairs = map[string]ratioPair{
	"radio":     {base: "naive", opt: "grid"},
	"crypto":    {base: "nocache", opt: "cache"},
	"formation": {base: "serial", opt: "percell"},
	"wire":      {base: "nopool", opt: "pool"},
	"shard":     {base: "serial", opt: "sharded"},
	"audit":     {base: "naive", opt: "grid"},
	"bindtable": {base: "pernode", opt: "shared"},
}

// cellValue is the quantity a mode's ratio divides. Wall time for the
// wall-bound modes; for the wire mode, allocations per broadcast — exact
// and machine-independent in a deterministic single-threaded simulation,
// so its ratio gates the pooled path far more sharply than wall time
// could. The +1 keeps the ratio finite and stable when the pooled cell is
// fully allocation-free (its ideal steady state). The bindtable mode
// gates on the primitive CGA verification count for the same reason:
// its wall time is drowned in signature checks (identical in both
// cells), while the op count is exact and its pernode/shared ratio is
// the verifier-group size by construction.
func cellValue(r ScaleResult) float64 {
	switch r.Mode {
	case "wire":
		return 1 + r.AllocsPerOp
	case "bindtable":
		return 1 + float64(r.VerifyOps)
	}
	return r.WallMS
}

// TrendRow is one aligned speedup ratio of two sweeps.
type TrendRow struct {
	Mode  string
	Nodes int
	// Base and Opt name the two cells the ratio divides (e.g. naive/grid).
	Base, Opt string

	// OldRatio and NewRatio are base-wall over opt-wall within each sweep:
	// how many times faster the optimized variant ran on that sweep's own
	// hardware. > 1 means the optimization pays off.
	OldRatio float64
	NewRatio float64
	// Delta is the fractional speedup erosion, positive = the optimization
	// buys less than it used to. Only meaningful when Missing is empty.
	Delta float64
	// Regressed marks Delta beyond the comparison threshold.
	Regressed bool
	// Missing is "old" or "new" when the pair is complete on one side only
	// — reported, never a regression (sweeps legitimately grow cells) —
	// and "pair" for a sweep mode with no ratioPairs mapping at all: the
	// mode is visible in the render instead of silently escaping the gate.
	Missing string
}

// pairID aligns ratio pairs across sweeps.
type pairID struct {
	mode  string
	nodes int
}

// ratios extracts every complete (mode, nodes) speedup ratio of one sweep.
func ratios(rs []ScaleResult) map[pairID]float64 {
	cells := map[string]float64{}
	for _, r := range rs {
		cells[r.Mode+"\x00"+r.Index+"\x00"+fmt.Sprint(r.Nodes)] = cellValue(r)
	}
	out := map[pairID]float64{}
	for _, r := range rs {
		pair, known := ratioPairs[r.Mode]
		if !known || r.Index != pair.base {
			continue
		}
		opt, ok := cells[r.Mode+"\x00"+pair.opt+"\x00"+fmt.Sprint(r.Nodes)]
		base := cellValue(r)
		if !ok || opt <= 0 || base <= 0 {
			continue
		}
		out[pairID{r.Mode, r.Nodes}] = base / opt
	}
	return out
}

// unpaired collects the (mode, nodes) cells of both sweeps whose mode has
// no ratioPairs mapping — they cannot be gated, but they must not vanish
// from the render either.
func unpaired(sweeps ...[]ScaleResult) map[pairID]bool {
	out := map[pairID]bool{}
	for _, rs := range sweeps {
		for _, r := range rs {
			if _, known := ratioPairs[r.Mode]; !known {
				out[pairID{r.Mode, r.Nodes}] = true
			}
		}
	}
	return out
}

// Trend aligns the speedup ratios of two sweeps and computes the per-pair
// erosion. Rows are ordered mode, then nodes, so renders are stable
// whatever order the JSON carried.
func Trend(old, new []ScaleResult, threshold float64) []TrendRow {
	olds, news := ratios(old), ratios(new)
	ids := make([]pairID, 0, len(olds)+len(news))
	for id := range olds {
		ids = append(ids, id)
	}
	for id := range news {
		if _, dup := olds[id]; !dup {
			ids = append(ids, id)
		}
	}
	loose := unpaired(old, new)
	for id := range loose {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		if ids[a].mode != ids[b].mode {
			return ids[a].mode < ids[b].mode
		}
		return ids[a].nodes < ids[b].nodes
	})

	rows := make([]TrendRow, 0, len(ids))
	for _, id := range ids {
		pair := ratioPairs[id.mode]
		row := TrendRow{Mode: id.mode, Nodes: id.nodes, Base: pair.base, Opt: pair.opt}
		o, hasOld := olds[id]
		n, hasNew := news[id]
		switch {
		case loose[id]:
			row.Missing = "pair"
		case !hasNew:
			row.OldRatio, row.Missing = o, "new"
		case !hasOld:
			row.NewRatio, row.Missing = n, "old"
		default:
			row.OldRatio, row.NewRatio = o, n
			row.Delta = (o - n) / o
			row.Regressed = row.Delta > threshold
		}
		rows = append(rows, row)
	}
	return rows
}

// Regressed reports whether any aligned pair's speedup eroded beyond the
// threshold.
func Regressed(rows []TrendRow) bool {
	for _, r := range rows {
		if r.Regressed {
			return true
		}
	}
	return false
}

// RenderTrend renders the aligned ratios as a table, flagging regressions.
func RenderTrend(rows []TrendRow, threshold float64) string {
	t := trace.NewTable(
		fmt.Sprintf("scale sweep trend (machine-independent speedup ratios; REGRESSED beyond -%.0f%%)", threshold*100),
		"mode", "nodes", "ratio", "old", "new", "delta", "")
	for _, r := range rows {
		flag := ""
		delta := "-"
		oldR, newR := "-", "-"
		switch {
		case r.Missing == "pair":
			flag = "unpaired mode (not gated)"
		case r.Missing == "new":
			oldR = fmt.Sprintf("%.2fx", r.OldRatio)
			flag = "dropped"
		case r.Missing == "old":
			newR = fmt.Sprintf("%.2fx", r.NewRatio)
			flag = "new pair"
		default:
			oldR = fmt.Sprintf("%.2fx", r.OldRatio)
			newR = fmt.Sprintf("%.2fx", r.NewRatio)
			delta = fmt.Sprintf("%+.1f%%", -r.Delta*100)
			if r.Regressed {
				flag = "REGRESSED"
			}
		}
		t.Add(r.Mode, fmt.Sprint(r.Nodes), r.Base+"/"+r.Opt, oldR, newR, delta, flag)
	}
	return t.String()
}
