package scalebench

// Trend comparison between two scale sweeps (BENCH_scale.json shaped):
// the ROADMAP's "make regressions visible in the PR, not after" renderer.
// Cells are aligned by (mode, nodes, index); wall-time growth beyond a
// threshold flags the cell as a regression. cmd/sbrbench -trend drives
// this against the committed baseline and the CI sweep artifact.

import (
	"fmt"
	"sort"

	"sbr6/internal/trace"
)

// TrendRow is one aligned cell of two sweeps.
type TrendRow struct {
	Mode  string
	Nodes int
	Index string

	OldMS float64
	NewMS float64
	// Delta is the fractional wall-time change, positive = slower. Only
	// meaningful when Missing is empty.
	Delta float64
	// Regressed marks Delta beyond the comparison threshold.
	Regressed bool
	// Missing is "old" or "new" when the cell exists on one side only —
	// reported, never a regression (sweeps legitimately grow cells).
	Missing string
}

// cellID aligns sweeps.
type cellID struct {
	mode  string
	nodes int
	index string
}

// Trend aligns two sweeps and computes per-cell wall-time deltas. Rows are
// ordered mode, then nodes, then index, so renders are stable whatever
// order the JSON carried.
func Trend(old, new []ScaleResult, threshold float64) []TrendRow {
	olds := map[cellID]ScaleResult{}
	for _, r := range old {
		olds[cellID{r.Mode, r.Nodes, r.Index}] = r
	}
	news := map[cellID]ScaleResult{}
	for _, r := range new {
		news[cellID{r.Mode, r.Nodes, r.Index}] = r
	}
	ids := make([]cellID, 0, len(olds)+len(news))
	for id := range olds {
		ids = append(ids, id)
	}
	for id := range news {
		if _, dup := olds[id]; !dup {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		if ids[a].mode != ids[b].mode {
			return ids[a].mode < ids[b].mode
		}
		if ids[a].nodes != ids[b].nodes {
			return ids[a].nodes < ids[b].nodes
		}
		return ids[a].index < ids[b].index
	})

	rows := make([]TrendRow, 0, len(ids))
	for _, id := range ids {
		row := TrendRow{Mode: id.mode, Nodes: id.nodes, Index: id.index}
		o, hasOld := olds[id]
		n, hasNew := news[id]
		switch {
		case !hasNew:
			row.OldMS, row.Missing = o.WallMS, "new"
		case !hasOld:
			row.NewMS, row.Missing = n.WallMS, "old"
		default:
			row.OldMS, row.NewMS = o.WallMS, n.WallMS
			if o.WallMS > 0 {
				row.Delta = (n.WallMS - o.WallMS) / o.WallMS
			}
			row.Regressed = row.Delta > threshold
		}
		rows = append(rows, row)
	}
	return rows
}

// Regressed reports whether any aligned cell slowed beyond the threshold.
func Regressed(rows []TrendRow) bool {
	for _, r := range rows {
		if r.Regressed {
			return true
		}
	}
	return false
}

// RenderTrend renders the aligned cells as a table, flagging regressions.
func RenderTrend(rows []TrendRow, threshold float64) string {
	t := trace.NewTable(
		fmt.Sprintf("scale sweep trend (wall ms per round; REGRESSED beyond +%.0f%%)", threshold*100),
		"mode", "nodes", "index", "old", "new", "delta", "")
	for _, r := range rows {
		flag := ""
		delta := "-"
		oldMS, newMS := "-", "-"
		switch {
		case r.Missing == "new":
			oldMS = fmt.Sprintf("%.1f", r.OldMS)
			flag = "dropped"
		case r.Missing == "old":
			newMS = fmt.Sprintf("%.1f", r.NewMS)
			flag = "new cell"
		default:
			oldMS = fmt.Sprintf("%.1f", r.OldMS)
			newMS = fmt.Sprintf("%.1f", r.NewMS)
			delta = fmt.Sprintf("%+.1f%%", r.Delta*100)
			if r.Regressed {
				flag = "REGRESSED"
			}
		}
		t.Add(r.Mode, fmt.Sprint(r.Nodes), r.Index, oldMS, newMS, delta, flag)
	}
	return t.String()
}
