package scalebench

import (
	"strings"
	"testing"
)

// Canned fixtures: a two-commit history measured on wildly different
// hardware (the "new" machine is uniformly ~4x slower), where the grid
// speedup genuinely eroded at 1000 nodes, the crypto speedup held, a
// formation pair is new, and a 250-node radio pair was dropped. An
// absolute-wall comparison would flag every cell on machine speed alone;
// the ratio trend must see through it.
func trendFixtures() (old, new []ScaleResult) {
	old = []ScaleResult{
		{Mode: "radio", Nodes: 1000, Index: "naive", WallMS: 40},
		{Mode: "radio", Nodes: 1000, Index: "grid", WallMS: 8}, // 5.0x
		{Mode: "crypto", Nodes: 1000, Index: "nocache", WallMS: 100},
		{Mode: "crypto", Nodes: 1000, Index: "cache", WallMS: 25}, // 4.0x
		{Mode: "radio", Nodes: 250, Index: "naive", WallMS: 3},
		{Mode: "radio", Nodes: 250, Index: "grid", WallMS: 1}, // dropped below
	}
	new = []ScaleResult{
		{Mode: "radio", Nodes: 1000, Index: "naive", WallMS: 160},
		{Mode: "radio", Nodes: 1000, Index: "grid", WallMS: 64}, // 2.5x: halved
		{Mode: "crypto", Nodes: 1000, Index: "nocache", WallMS: 400},
		{Mode: "crypto", Nodes: 1000, Index: "cache", WallMS: 105},     // 3.8x: noise
		{Mode: "formation", Nodes: 1000, Index: "serial", WallMS: 800}, // new pair
		{Mode: "formation", Nodes: 1000, Index: "percell", WallMS: 200},
	}
	return old, new
}

func TestTrendComparesRatiosNotWall(t *testing.T) {
	old, new := trendFixtures()
	rows := Trend(old, new, 0.25)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (radio@250, radio@1000, crypto@1000, formation@1000)", len(rows))
	}
	byPair := map[string]TrendRow{}
	for _, r := range rows {
		if r.Mode == "radio" && r.Nodes == 250 {
			byPair["radio250"] = r
		} else {
			byPair[r.Mode] = r
		}
	}

	if r := byPair["radio"]; !r.Regressed || r.OldRatio != 5.0 || r.NewRatio != 2.5 || r.Delta != 0.5 {
		t.Errorf("eroded grid speedup not flagged: %+v", r)
	}
	// Crypto: every wall time quadrupled (machine), ratio moved 4.0 -> ~3.8
	// — inside the threshold, must NOT be flagged despite +300% wall-ms.
	if r := byPair["crypto"]; r.Regressed {
		t.Errorf("machine-speed change flagged as regression: %+v", r)
	}
	if r := byPair["formation"]; r.Missing != "old" || r.Regressed || r.NewRatio != 4.0 {
		t.Errorf("new pair mishandled: %+v", r)
	}
	if r := byPair["radio250"]; r.Missing != "new" || r.Regressed || r.OldRatio != 3.0 {
		t.Errorf("dropped pair mishandled: %+v", r)
	}
	if !Regressed(rows) {
		t.Error("Regressed did not notice the grid erosion")
	}
	// A looser threshold clears everything.
	if Regressed(Trend(old, new, 0.6)) {
		t.Error("60% threshold still flags a halved speedup")
	}
}

// The wire pair ratios allocations per broadcast, not wall time: a
// machine-speed change leaves the ratio untouched, while the pooled cell
// regrowing allocations erodes it. The +1 in the cell value keeps a fully
// alloc-free pooled cell (AllocsPerOp = 0) finite and comparable.
func TestTrendWirePairUsesAllocs(t *testing.T) {
	old := []ScaleResult{
		{Mode: "wire", Nodes: 4000, Index: "nopool", WallMS: 30, AllocsPerOp: 14},
		{Mode: "wire", Nodes: 4000, Index: "pool", WallMS: 20, AllocsPerOp: 0}, // 15.0x
	}
	// Wall times triple (different machine); the pooled path now allocates
	// 4 per op — a real erosion the wall numbers would hide.
	new := []ScaleResult{
		{Mode: "wire", Nodes: 4000, Index: "nopool", WallMS: 90, AllocsPerOp: 14},
		{Mode: "wire", Nodes: 4000, Index: "pool", WallMS: 60, AllocsPerOp: 4}, // 3.0x
	}
	rows := Trend(old, new, 0.15)
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.Base != "nopool" || r.Opt != "pool" {
		t.Fatalf("wire pair misnamed: %+v", r)
	}
	if r.OldRatio != 15.0 || r.NewRatio != 3.0 || !r.Regressed {
		t.Errorf("alloc regression not flagged through the ratio: %+v", r)
	}
	// Identical allocation behavior on different hardware: no flag.
	same := Trend(old, []ScaleResult{
		{Mode: "wire", Nodes: 4000, Index: "nopool", WallMS: 90, AllocsPerOp: 14},
		{Mode: "wire", Nodes: 4000, Index: "pool", WallMS: 60, AllocsPerOp: 0},
	}, 0.15)
	if Regressed(same) {
		t.Errorf("machine-speed change flagged on the wire pair: %+v", same)
	}
}

// The bindtable pair ratios primitive CGA verification counts, not wall
// time: the sig-check-dominated wall clock is identical in both cells,
// while the shared table losing its dedup (ops regrowing toward the
// pernode count) erodes the ratio.
func TestTrendBindtablePairUsesOps(t *testing.T) {
	old := []ScaleResult{
		{Mode: "bindtable", Nodes: 4000, Index: "pernode", WallMS: 50, VerifyOps: 6992},
		{Mode: "bindtable", Nodes: 4000, Index: "shared", WallMS: 48, VerifyOps: 874}, // 8.0x
	}
	// Wall times double (different machine); the shared cell now computes
	// half the pernode count — a real erosion the wall numbers would hide.
	new := []ScaleResult{
		{Mode: "bindtable", Nodes: 4000, Index: "pernode", WallMS: 100, VerifyOps: 6992},
		{Mode: "bindtable", Nodes: 4000, Index: "shared", WallMS: 96, VerifyOps: 3496},
	}
	rows := Trend(old, new, 0.15)
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.Base != "pernode" || r.Opt != "shared" {
		t.Fatalf("bindtable pair misnamed: %+v", r)
	}
	if !r.Regressed {
		t.Errorf("dedup erosion not flagged through the op-count ratio: %+v", r)
	}
	// Identical op counts on different hardware: no flag.
	same := Trend(old, []ScaleResult{
		{Mode: "bindtable", Nodes: 4000, Index: "pernode", WallMS: 100, VerifyOps: 6992},
		{Mode: "bindtable", Nodes: 4000, Index: "shared", WallMS: 96, VerifyOps: 874},
	}, 0.15)
	if Regressed(same) {
		t.Errorf("machine-speed change flagged on the bindtable pair: %+v", same)
	}
}

// A sweep with an incomplete pair (the optimized cell missing) contributes
// no ratio rather than a bogus one, and a mode with no pair mapping shows
// up as an explicit unpaired row instead of silently escaping the gate.
func TestTrendIgnoresIncompletePairs(t *testing.T) {
	old := []ScaleResult{
		{Mode: "radio", Nodes: 1000, Index: "naive", WallMS: 40},
		// grid cell absent: no ratio can be formed
		{Mode: "mystery", Nodes: 1000, Index: "sweep", WallMS: 5}, // unknown mode
	}
	new := []ScaleResult{
		{Mode: "radio", Nodes: 1000, Index: "naive", WallMS: 40},
		{Mode: "radio", Nodes: 1000, Index: "grid", WallMS: 10},
	}
	rows := Trend(old, new, 0.25)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (radio half-pair + unpaired mystery mode)", len(rows))
	}
	var sawUnpaired bool
	for _, r := range rows {
		switch r.Mode {
		case "radio":
			if r.Missing != "old" || r.Regressed {
				t.Errorf("half-pair mishandled: %+v", r)
			}
		case "mystery":
			sawUnpaired = true
			if r.Missing != "pair" || r.Regressed {
				t.Errorf("unpaired mode mishandled: %+v", r)
			}
		}
	}
	if !sawUnpaired {
		t.Error("unpaired mode vanished from the trend")
	}
	if !strings.Contains(RenderTrend(rows, 0.25), "unpaired mode") {
		t.Error("render does not surface the unpaired mode")
	}
}

func TestTrendRowsAreOrdered(t *testing.T) {
	old, new := trendFixtures()
	rows := Trend(old, new, 0.25)
	for i := 1; i < len(rows); i++ {
		a, b := rows[i-1], rows[i]
		if a.Mode > b.Mode || (a.Mode == b.Mode && a.Nodes > b.Nodes) {
			t.Fatalf("rows out of order at %d: %+v before %+v", i, a, b)
		}
	}
}

func TestRenderTrendMarksRegressions(t *testing.T) {
	old, new := trendFixtures()
	out := RenderTrend(Trend(old, new, 0.25), 0.25)
	for _, want := range []string{"REGRESSED", "new pair", "dropped", "naive/grid", "5.00x", "2.50x", "-50.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
