package scalebench

import (
	"strings"
	"testing"
)

// canned fixtures: a two-commit history where the grid cell regressed, the
// naive cell improved, a crypto cell is within noise, one cell was dropped
// and one is new.
func trendFixtures() (old, new []ScaleResult) {
	old = []ScaleResult{
		{Mode: "radio", Nodes: 1000, Index: "naive", WallMS: 40},
		{Mode: "radio", Nodes: 1000, Index: "grid", WallMS: 8},
		{Mode: "crypto", Nodes: 1000, Index: "cache", WallMS: 100},
		{Mode: "radio", Nodes: 250, Index: "naive", WallMS: 3},
	}
	new = []ScaleResult{
		{Mode: "radio", Nodes: 1000, Index: "naive", WallMS: 30},  // improved
		{Mode: "radio", Nodes: 1000, Index: "grid", WallMS: 12},   // +50%: regressed
		{Mode: "crypto", Nodes: 1000, Index: "cache", WallMS: 110}, // +10%: noise
		{Mode: "formation", Nodes: 1000, Index: "percell", WallMS: 200}, // new cell
	}
	return old, new
}

func TestTrendAlignsAndFlags(t *testing.T) {
	old, new := trendFixtures()
	rows := Trend(old, new, 0.25)
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	byCell := map[string]TrendRow{}
	for _, r := range rows {
		byCell[r.Mode+"/"+r.Index] = r
	}

	if r := byCell["radio/grid"]; !r.Regressed || r.Delta != 0.5 {
		t.Errorf("grid cell not flagged: %+v", r)
	}
	if r := byCell["radio/naive"]; r.Mode == "radio" && r.Nodes == 1000 {
		// the improved cell must not be flagged
		for _, row := range rows {
			if row.Mode == "radio" && row.Nodes == 1000 && row.Index == "naive" && row.Regressed {
				t.Errorf("improved cell flagged as regression: %+v", row)
			}
		}
	}
	if r := byCell["crypto/cache"]; r.Regressed {
		t.Errorf("within-noise cell flagged: %+v", r)
	}
	if r := byCell["formation/percell"]; r.Missing != "old" || r.Regressed {
		t.Errorf("new cell mishandled: %+v", r)
	}
	for _, r := range rows {
		if r.Mode == "radio" && r.Nodes == 250 {
			if r.Missing != "new" || r.Regressed {
				t.Errorf("dropped cell mishandled: %+v", r)
			}
		}
	}
	if !Regressed(rows) {
		t.Error("Regressed did not notice the grid regression")
	}

	// A looser threshold clears everything.
	if Regressed(Trend(old, new, 0.6)) {
		t.Error("60%% threshold still flags a +50%% cell")
	}
}

func TestTrendRowsAreOrdered(t *testing.T) {
	old, new := trendFixtures()
	rows := Trend(old, new, 0.25)
	for i := 1; i < len(rows); i++ {
		a, b := rows[i-1], rows[i]
		if a.Mode > b.Mode || (a.Mode == b.Mode && a.Nodes > b.Nodes) ||
			(a.Mode == b.Mode && a.Nodes == b.Nodes && a.Index > b.Index) {
			t.Fatalf("rows out of order at %d: %+v before %+v", i, a, b)
		}
	}
}

func TestRenderTrendMarksRegressions(t *testing.T) {
	old, new := trendFixtures()
	out := RenderTrend(Trend(old, new, 0.25), 0.25)
	for _, want := range []string{"REGRESSED", "new cell", "dropped", "+50.0%", "-25.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
