// Package scalebench holds the radio-layer scale workload shared by the
// BenchmarkScaleNodes benches and cmd/sbrbench -scale: the broadcast-heavy
// traffic shape of the protocol at 250-10000 nodes.
package scalebench

// Scale workload: the radio-layer traffic shape of the broadcast-heavy
// protocol phases (DAD floods, DSR route discovery) at 250-10000 nodes,
// used to compare the naive linear-scan medium against the spatial grid.
// The node count sweeps while density stays constant — the regime the
// paper's unit-disk model assumes — so the naive medium's per-broadcast
// cost grows linearly with N and the grid's stays flat.

import (
	"math"
	"math/rand"
	"time"

	"sbr6/internal/geom"
	"sbr6/internal/mobility"
	"sbr6/internal/radio"
	"sbr6/internal/sim"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// ScaleNetwork is a radio medium populated for the scale workload: nodes
// uniformly placed at constant density (~12 neighbours each), every odd
// node under random-waypoint motion with a declared speed bound, lossy
// links so the per-receiver RNG path is exercised.
type ScaleNetwork struct {
	S *sim.Simulator
	M *radio.Medium
	N int

	nbuf []radio.NodeID
}

// BuildScaleNetwork constructs the workload network. The area side scales
// with sqrt(n) so the expected degree is independent of n.
func BuildScaleNetwork(n int, kind radio.IndexKind, seed int64) *ScaleNetwork {
	s := sim.New(seed)
	cfg := radio.DefaultConfig()
	cfg.Index = kind
	cfg.LossRate = 0.05
	m := radio.New(s, cfg)

	side := 125 * math.Sqrt(float64(n))
	region := geom.Rect{W: side, H: side}
	placeRng := newRand(seed)
	positions := mobility.UniformPlacement(region, n, placeRng)
	wp := mobility.WaypointConfig{Region: region, MinSpeed: 1, MaxSpeed: 10, Pause: time.Second}
	for i := 0; i < n; i++ {
		var track mobility.Track
		if i%2 == 1 {
			track = mobility.NewWaypoint(wp, positions[i], newRand(seed+int64(i)+1))
		} else {
			track = mobility.Static(positions[i])
		}
		m.AddNode(radio.NodeID(i), track.Position, radio.HandlerFunc(func(radio.NodeID, []byte) {}))
		m.SetSpeedBound(radio.NodeID(i), track.(mobility.Bounded).SpeedBound())
	}
	return &ScaleNetwork{S: s, M: m, N: n}
}

// Round performs one flood epoch: every node broadcasts a 64-byte frame
// (the DAD/RREQ shape), the simulator drains all deliveries, and every
// node's neighbour set is queried once (the route-maintenance shape).
func (sn *ScaleNetwork) Round() {
	payload := make([]byte, 64)
	for i := 0; i < sn.N; i++ {
		sn.M.Broadcast(radio.NodeID(i), payload)
	}
	sn.S.Run()
	for i := 0; i < sn.N; i++ {
		sn.nbuf = sn.M.AppendNeighbors(radio.NodeID(i), sn.nbuf[:0])
	}
	// Space the epochs out so mobility actually moves nodes between them.
	sn.S.RunFor(time.Second)
}

// ScaleResult is one measured cell of the scale sweep, JSON-shaped for
// BENCH_scale.json.
type ScaleResult struct {
	Nodes    int     `json:"nodes"`
	Index    string  `json:"index"`
	Rounds   int     `json:"rounds"`
	WallMS   float64 `json:"wall_ms_per_round"`
	Events   uint64  `json:"sim_events"`
	TxFrames uint64  `json:"tx_frames"`
	RxFrames uint64  `json:"rx_frames"`
	Degree   float64 `json:"mean_degree"`
}

// RunScale measures the workload at n nodes under the given index kind.
// Wall time is measured by the caller-supplied clock so the package stays
// free of direct wall-time reads outside this deliberate benchmark.
func RunScale(n int, kind radio.IndexKind, seed int64, rounds int, now func() time.Time) ScaleResult {
	nw := BuildScaleNetwork(n, kind, seed)
	nw.Round() // warm the index and mobility legs before timing
	baseEvents, baseStats := nw.S.Processed(), nw.M.Stats()
	start := now()
	for r := 0; r < rounds; r++ {
		nw.Round()
	}
	wall := now().Sub(start)
	// Counters are deltas over the timed rounds only, so per-round rates
	// derived from the JSON are not skewed by the warmup round.
	events := nw.S.Processed() - baseEvents
	stats := nw.M.Stats()
	stats.TxFrames -= baseStats.TxFrames
	stats.RxFrames -= baseStats.RxFrames
	stats.LostFrames -= baseStats.LostFrames
	name := map[radio.IndexKind]string{radio.IndexNaive: "naive", radio.IndexGrid: "grid"}[kind]
	if name == "" {
		name = "auto"
	}
	return ScaleResult{
		Nodes:    n,
		Index:    name,
		Rounds:   rounds,
		WallMS:   float64(wall.Nanoseconds()) / 1e6 / float64(rounds),
		Events:   events,
		TxFrames: stats.TxFrames,
		RxFrames: stats.RxFrames,
		Degree:   float64(stats.RxFrames+stats.LostFrames) / float64(stats.TxFrames),
	}
}
