// Package scalebench holds the scale workloads shared by the
// BenchmarkScale* benches and cmd/sbrbench -scale at 250-10000 nodes:
//
//   - the radio-layer flood workload (ScaleNetwork) comparing the naive
//     linear-scan medium against the spatial grid, and
//   - the crypto-layer verification workload (CryptoNetwork) comparing
//     the memoized verification cache against direct recomputation.
package scalebench

// Radio workload: the radio-layer traffic shape of the broadcast-heavy
// protocol phases (DAD floods, DSR route discovery) at 250-10000 nodes,
// used to compare the naive linear-scan medium against the spatial grid.
// The node count sweeps while density stays constant — the regime the
// paper's unit-disk model assumes — so the naive medium's per-broadcast
// cost grows linearly with N and the grid's stays flat.

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"sbr6/internal/audit"
	"sbr6/internal/bindtable"
	"sbr6/internal/boot"
	"sbr6/internal/core"
	"sbr6/internal/geom"
	"sbr6/internal/identity"
	"sbr6/internal/ipv6"
	"sbr6/internal/mobility"
	"sbr6/internal/radio"
	"sbr6/internal/scenario"
	"sbr6/internal/shard"
	"sbr6/internal/sim"
	"sbr6/internal/wire"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// ScaleNetwork is a radio medium populated for the scale workload: nodes
// uniformly placed at constant density (~12 neighbours each), every odd
// node under random-waypoint motion with a declared speed bound, lossy
// links so the per-receiver RNG path is exercised.
type ScaleNetwork struct {
	S *sim.Simulator
	M *radio.Medium
	N int

	nbuf []radio.NodeID
}

// BuildScaleNetwork constructs the workload network. The area side scales
// with sqrt(n) so the expected degree is independent of n. pooled selects
// the pooled wire path (the default everywhere else); the wire workload
// builds both variants to ratio their allocation rates.
func BuildScaleNetwork(n int, kind radio.IndexKind, pooled bool, seed int64) *ScaleNetwork {
	s := sim.New(seed)
	cfg := radio.DefaultConfig()
	cfg.Index = kind
	cfg.LossRate = 0.05
	cfg.FramePool = pooled
	m := radio.New(s, cfg)

	side := 125 * math.Sqrt(float64(n))
	region := geom.Rect{W: side, H: side}
	placeRng := newRand(seed)
	positions := mobility.UniformPlacement(region, n, placeRng)
	wp := mobility.WaypointConfig{Region: region, MinSpeed: 1, MaxSpeed: 10, Pause: time.Second}
	for i := 0; i < n; i++ {
		var track mobility.Track
		if i%2 == 1 {
			track = mobility.NewWaypoint(wp, positions[i], newRand(seed+int64(i)+1))
		} else {
			track = mobility.Static(positions[i])
		}
		m.AddNode(radio.NodeID(i), track.Position, radio.HandlerFunc(func(radio.NodeID, []byte) {}))
		m.SetSpeedBound(radio.NodeID(i), track.(mobility.Bounded).SpeedBound())
	}
	return &ScaleNetwork{S: s, M: m, N: n}
}

// Round performs one flood epoch: every node broadcasts a 64-byte frame
// (the DAD/RREQ shape), the simulator drains all deliveries, and every
// node's neighbour set is queried once (the route-maintenance shape).
func (sn *ScaleNetwork) Round() {
	payload := make([]byte, 64)
	for i := 0; i < sn.N; i++ {
		sn.M.Broadcast(radio.NodeID(i), payload)
	}
	sn.S.Run()
	for i := 0; i < sn.N; i++ {
		sn.nbuf = sn.M.AppendNeighbors(radio.NodeID(i), sn.nbuf[:0])
	}
	// Space the epochs out so mobility actually moves nodes between them.
	sn.S.RunFor(time.Second)
}

// ScaleResult is one measured cell of the scale sweep, JSON-shaped for
// BENCH_scale.json. Mode is "radio" (naive vs grid medium) or "crypto"
// (cache vs nocache verification); Index names the variant inside the
// mode. The verify_* fields are populated for crypto cells only.
type ScaleResult struct {
	Mode     string  `json:"mode"`
	Nodes    int     `json:"nodes"`
	Index    string  `json:"index"`
	Rounds   int     `json:"rounds"`
	WallMS   float64 `json:"wall_ms_per_round"`
	Events   uint64  `json:"sim_events,omitempty"`
	TxFrames uint64  `json:"tx_frames,omitempty"`
	RxFrames uint64  `json:"rx_frames,omitempty"`
	Degree   float64 `json:"mean_degree,omitempty"`

	VerifyRequests uint64 `json:"verify_requests,omitempty"` // logical signature checks
	VerifyOps      uint64 `json:"verify_ops,omitempty"`      // primitives actually computed
	CacheHits      uint64 `json:"cache_hits,omitempty"`

	// Formation cells only: nodes that completed DAD and the virtual span
	// of the bootstrap phase (serial admission pays N staggers of virtual
	// time, per-cell pays max-occupancy staggers).
	Configured int     `json:"configured,omitempty"`
	VirtualS   float64 `json:"virtual_s,omitempty"`

	// Wire cells only: heap allocations per broadcast operation (encode +
	// transmit + every delivery event), measured over the timed rounds.
	// Unlike wall time this is machine-independent AND run-to-run exact in
	// a single-threaded deterministic simulation, so the nopool/pool trend
	// ratio is the sharpest cell in the sweep.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// RunScale measures the workload at n nodes under the given index kind.
// Wall time is measured by the caller-supplied clock so the package stays
// free of direct wall-time reads outside this deliberate benchmark.
func RunScale(n int, kind radio.IndexKind, seed int64, rounds int, now func() time.Time) ScaleResult {
	nw := BuildScaleNetwork(n, kind, true, seed)
	nw.Round() // warm the index and mobility legs before timing
	baseEvents, baseStats := nw.S.Processed(), nw.M.Stats()
	start := now()
	for r := 0; r < rounds; r++ {
		nw.Round()
	}
	wall := now().Sub(start)
	// Counters are deltas over the timed rounds only, so per-round rates
	// derived from the JSON are not skewed by the warmup round.
	events := nw.S.Processed() - baseEvents
	stats := nw.M.Stats()
	stats.TxFrames -= baseStats.TxFrames
	stats.RxFrames -= baseStats.RxFrames
	stats.LostFrames -= baseStats.LostFrames
	name := map[radio.IndexKind]string{radio.IndexNaive: "naive", radio.IndexGrid: "grid"}[kind]
	if name == "" {
		name = "auto"
	}
	return ScaleResult{
		Mode:     "radio",
		Nodes:    n,
		Index:    name,
		Rounds:   rounds,
		WallMS:   float64(wall.Nanoseconds()) / 1e6 / float64(rounds),
		Events:   events,
		TxFrames: stats.TxFrames,
		RxFrames: stats.RxFrames,
		Degree:   float64(stats.RxFrames+stats.LostFrames) / float64(stats.TxFrames),
	}
}

// --- shard workload: the region-sharded engine vs its own serial mode ---
//
// The flood workload of the radio mode, run on the sharded simulation core:
// the area is cut into ShardRegions x-sorted strips, each with its own event
// loop and medium, synchronized by conservative lookahead. The baseline is
// the engine at one region — not the plain medium — because the engine
// forces content-derived radio draws, and only engine-vs-engine is proven
// byte-identical (the differential suite in internal/shard). The ratio is
// therefore a pure wall-clock speedup of the identical computation, which
// is what lets it sit under the trend gate. This is also the only sweep
// mode that reaches 100k nodes: the naive medium's O(N^2) round is
// unaffordable there, while the sharded grid round stays linear.

// ShardRegions is the region count of the sharded variant. Fixed rather
// than NumCPU-derived so the recorded workload is identical on every
// machine. Eight regions kept improving wall time past the available core
// count in tuning (smaller per-region heaps and grids are a locality win
// on their own), so the constant is set by the sweep, not by NumCPU.
const ShardRegions = 8

// ShardNetwork is the flood workload on the sharded engine.
type ShardNetwork struct {
	Eng *shard.Engine
	N   int

	payload []byte
}

// BuildShardNetwork constructs the workload at n nodes and the given region
// count: the radio workload's constant-density placement and lossy links on
// the spatial-grid index, but static — flood deliveries land nanoseconds
// apart, so every conservative window holds thousands of events and the
// cell measures parallel throughput. Mobility would interleave refresh
// chains ~tens of microseconds apart, far sparser than the propagation
// lookahead, turning most rounds into single-event synchronization — a
// lookahead-starvation regime worth knowing about, but the differential
// suite already covers mobility for correctness, and a throughput cell
// drowned in it would gate nothing.
func BuildShardNetwork(n, regions int, seed int64) *ShardNetwork {
	cfg := radio.DefaultConfig()
	cfg.Index = radio.IndexGrid
	cfg.LossRate = 0.05

	side := 125 * math.Sqrt(float64(n))
	positions := mobility.UniformPlacement(geom.Rect{W: side, H: side}, n, newRand(seed))
	eng := shard.New(shard.Config{Seed: seed, Regions: regions, Radio: cfg, Positions: positions})
	for i := 0; i < n; i++ {
		eng.AddNode(radio.NodeID(i), mobility.Static(positions[i]),
			radio.HandlerFunc(func(radio.NodeID, []byte) {}))
	}
	return &ShardNetwork{Eng: eng, N: n, payload: make([]byte, 64)}
}

// Round performs one flood epoch: every node broadcasts a 64-byte frame as
// an owned event and the engine drains all deliveries, cross-region ones
// via the barrier exchange.
func (sn *ShardNetwork) Round() {
	at := sn.Eng.Now().Add(sim.Duration(time.Microsecond))
	for i := 0; i < sn.N; i++ {
		id := radio.NodeID(i)
		sn.Eng.ScheduleOwnedAt(id, at, func() {
			sn.Eng.NodeMedium(id).Broadcast(id, sn.payload)
		})
	}
	sn.Eng.RunFor(sim.Duration(time.Second))
}

// RunShard measures the flood workload on the engine at n nodes. regions=1
// is the serial baseline cell; ShardRegions is the sharded cell.
func RunShard(n, regions int, seed int64, rounds int, now func() time.Time) ScaleResult {
	sn := BuildShardNetwork(n, regions, seed)
	sn.Round() // warm the grids, mobility legs and region partitions
	baseEvents, baseStats := sn.Eng.Events(), sn.Eng.Stats()
	start := now()
	for r := 0; r < rounds; r++ {
		sn.Round()
	}
	wall := now().Sub(start)
	events := sn.Eng.Events() - baseEvents
	stats := sn.Eng.Stats()
	stats.TxFrames -= baseStats.TxFrames
	stats.RxFrames -= baseStats.RxFrames
	stats.LostFrames -= baseStats.LostFrames
	name := "serial"
	if regions > 1 {
		name = "sharded"
	}
	return ScaleResult{
		Mode:     "shard",
		Nodes:    n,
		Index:    name,
		Rounds:   rounds,
		WallMS:   float64(wall.Nanoseconds()) / 1e6 / float64(rounds),
		Events:   events,
		TxFrames: stats.TxFrames,
		RxFrames: stats.RxFrames,
		Degree:   float64(stats.RxFrames+stats.LostFrames) / float64(stats.TxFrames),
	}
}

// --- wire workload: the pooled zero-alloc wire path vs the allocating one ---
//
// The same flood traffic shape as the radio workload, but each broadcast
// goes through the full encode path — a realistic Data packet with a
// source route is serialized per transmission — so the cell measures what
// the pooled wire path actually eliminates: the per-packet encode buffer,
// the per-receiver delivery closures and events, and the per-transmit
// bookkeeping. The measured quantity is allocations per broadcast, not
// wall time: in a single-threaded deterministic simulation the allocation
// count is exact and machine-independent, which makes the nopool/pool
// ratio the most reliable cell in the trend gate.

// WirePayload is the Data payload size of the wire workload, the 64-byte
// shape the radio workload floods.
const WirePayload = 64

// WireNetwork is a scale network plus per-node packet templates that each
// round re-encodes and broadcasts.
type WireNetwork struct {
	*ScaleNetwork
	pooled bool
	pkts   []*wire.Packet
	enc    wire.Encoder
}

// BuildWireNetwork constructs the wire workload at n nodes. The medium
// index is fixed to the grid (index scaling is the radio workload's
// dimension); pooled selects the wire-path variant under test.
func BuildWireNetwork(n int, pooled bool, seed int64) *WireNetwork {
	nw := BuildScaleNetwork(n, radio.IndexGrid, pooled, seed)
	rng := newRand(seed)
	pkts := make([]*wire.Packet, n)
	for i := range pkts {
		var src, dst, via ipv6.Addr
		rng.Read(src[:])
		rng.Read(dst[:])
		rng.Read(via[:])
		pkts[i] = &wire.Packet{
			Src: src, Dst: dst, TTL: wire.DefaultTTL,
			SrcRoute: []ipv6.Addr{via},
			Msg:      &wire.Data{FlowID: uint32(i), Payload: make([]byte, WirePayload)},
		}
	}
	return &WireNetwork{ScaleNetwork: nw, pooled: pooled, pkts: pkts}
}

// Round performs one flood epoch with a real encode per broadcast: the
// pooled variant sizes a pooled frame with EncodedSize and appends into
// it; the unpooled variant is the historical Encode-then-Broadcast path.
func (wn *WireNetwork) Round() {
	for i, pkt := range wn.pkts {
		pkt.Msg.(*wire.Data).Seq++ // fresh bytes each round, like real flows
		if wn.pooled {
			raw := wn.enc.AppendEncode(wn.M.Frame(wn.enc.Size(pkt)), pkt)
			wn.M.BroadcastFrame(radio.NodeID(i), raw)
		} else {
			wn.M.Broadcast(radio.NodeID(i), wire.Encode(pkt))
		}
	}
	wn.S.Run()
	wn.S.RunFor(time.Second)
}

// RunWire measures the wire workload at n nodes for one variant. Ops are
// broadcasts; allocations are counted with runtime.MemStats over the
// timed rounds (exact in this single-threaded setting), after a warmup
// round has populated the pools, the event free lists and the index.
func RunWire(n int, pooled bool, seed int64, rounds int, now func() time.Time) ScaleResult {
	wn := BuildWireNetwork(n, pooled, seed)
	wn.Round() // warm: pools, free lists, grid, mobility legs
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := now()
	for r := 0; r < rounds; r++ {
		wn.Round()
	}
	wall := now().Sub(start)
	runtime.ReadMemStats(&after)
	name := "nopool"
	if pooled {
		name = "pool"
	}
	ops := float64(n) * float64(rounds)
	return ScaleResult{
		Mode:        "wire",
		Nodes:       n,
		Index:       name,
		Rounds:      rounds,
		WallMS:      float64(wall.Nanoseconds()) / 1e6 / float64(rounds),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / ops,
	}
}

// --- formation workload: wall-clock-to-fully-addressed by admission policy ---
//
// The whole-protocol companion to the radio and crypto cells: a complete
// secure bootstrap of an n-node network through the real scenario harness,
// measured as the wall clock from the first DAD start until every node is
// addressed. Only configured nodes relay AREQ floods, so the serial policy
// makes claim k traverse ~k configured relays — the O(N^2) delivery bill
// that keeps 10k-node formation serialized — while the per-cell policy
// floods into a mostly-unconfigured network and pays a fraction of it.
// The flood TTL is clamped so the serial baseline stays affordable to
// measure; both policies run the identical configuration.

// FormationTTL bounds the DAD flood reach of the formation workload. Five
// hops covers every claimant's objection neighborhood several times over at
// the workload's density while keeping the serial baseline measurable at
// 10k nodes.
const FormationTTL = 5

// BuildFormation constructs the formation workload: n nodes at the scale
// sweep's constant density (~12 neighbours each), fast DAD timers, no
// traffic — the run is the bootstrap itself.
func BuildFormation(n int, k boot.Kind, seed int64) *scenario.Scenario {
	return buildFormation(n, k, seed, audit.Config{}, radio.IndexAuto)
}

// buildFormation is BuildFormation with the audit sweep configuration and
// medium index the audit workload layers on top.
func buildFormation(n int, k boot.Kind, seed int64, ac audit.Config, kind radio.IndexKind) *scenario.Scenario {
	cfg := scenario.DefaultConfig()
	cfg.Protocol.Audit = ac
	cfg.Radio.Index = kind
	cfg.Seed = seed
	cfg.N = n
	side := 125 * math.Sqrt(float64(n))
	cfg.Area = geom.Rect{W: side, H: side}
	cfg.Placement = scenario.PlaceUniform
	cfg.Boot = k
	cfg.BootStagger = 500 * time.Millisecond
	cfg.Protocol.DAD.Timeout = 300 * time.Millisecond
	cfg.Protocol.TTL = FormationTTL
	cfg.Flows = nil
	sc, err := scenario.Build(cfg)
	if err != nil {
		panic(fmt.Sprintf("scalebench: formation build: %v", err))
	}
	return sc
}

// RunFormation measures wall-clock-to-fully-addressed for one policy at n
// nodes. Identity generation and placement happen outside the timed region;
// the clock covers exactly the bootstrap phase.
func RunFormation(n int, k boot.Kind, seed int64, now func() time.Time) ScaleResult {
	sc := BuildFormation(n, k, seed)
	start := now()
	configured := sc.Bootstrap()
	wall := now().Sub(start)
	return ScaleResult{
		Mode:       "formation",
		Nodes:      n,
		Index:      k.String(),
		Rounds:     1,
		WallMS:     float64(wall.Nanoseconds()) / 1e6,
		Events:     sc.S.Processed(),
		Configured: configured,
		VirtualS:   sc.S.Now().Seconds(),
	}
}

// --- audit workload: per-sweep cost of the post-formation audit sweep ---
//
// One sweep period of the address audit over a fully formed network: every
// node floods one signed re-advertisement at its seed-stable phase and the
// network relays them. The advertisement TTL is bounded (the same
// FormationTTL clamp the formation workload uses), so each node processes
// only the advertisements originating within its TTL-hop neighbourhood —
// a constant at constant density — and per-node per-sweep cost stays flat
// as N grows. Conflict-free by construction, so steady-state verification
// cost is zero: the sweep's crypto bill is one signature per node per
// period and nothing else.

// AuditPeriod is the sweep period of the audit workload; the exact value
// only scales virtual time, not per-sweep work.
const AuditPeriod = 5 * time.Second

// AuditNetwork is a fully bootstrapped formation network with the audit
// sweep enabled, ready to run sweep rounds.
type AuditNetwork struct {
	SC *scenario.Scenario
	N  int
}

// BuildAuditNetwork bootstraps the formation workload's network (per-cell
// admission, constant density) with the audit sweep configured. The
// bootstrap happens outside any timed region.
func BuildAuditNetwork(n int, seed int64) *AuditNetwork {
	return BuildAuditNetworkIndexed(n, radio.IndexAuto, seed)
}

// BuildAuditNetworkIndexed is BuildAuditNetwork with the medium index
// forced, so the sweep-cost cells can ratio the naive scan against the
// spatial grid on the whole-protocol audit workload.
func BuildAuditNetworkIndexed(n int, kind radio.IndexKind, seed int64) *AuditNetwork {
	sc := buildFormation(n, boot.PerCell, seed, audit.Config{Period: AuditPeriod, TTL: FormationTTL}, kind)
	if configured := sc.Bootstrap(); configured != n {
		panic(fmt.Sprintf("scalebench: audit workload formation left %d/%d unaddressed", n-configured, n))
	}
	return &AuditNetwork{SC: sc, N: n}
}

// RunAuditSweep measures the per-sweep-period cost of the standing audit at
// n nodes under the given medium index. Bootstrap happens outside the timed
// region; the conflict-free invariant (zero steady-state verifications) is
// enforced, never silently recorded.
func RunAuditSweep(n int, kind radio.IndexKind, seed int64, rounds int, now func() time.Time) ScaleResult {
	an := BuildAuditNetworkIndexed(n, kind, seed)
	an.Round() // warm: neighbor tables and flood seen-sets
	baseEvents := an.SC.S.Processed()
	start := now()
	for r := 0; r < rounds; r++ {
		an.Round()
	}
	wall := now().Sub(start)
	if ops := an.VerifyOps(); ops != 0 {
		panic(fmt.Sprintf("scalebench: conflict-free audit sweep performed %d verifications", ops))
	}
	name := map[radio.IndexKind]string{radio.IndexNaive: "naive", radio.IndexGrid: "grid"}[kind]
	if name == "" {
		name = "auto"
	}
	return ScaleResult{
		Mode:   "audit",
		Nodes:  n,
		Index:  name,
		Rounds: rounds,
		WallMS: float64(wall.Nanoseconds()) / 1e6 / float64(rounds),
		Events: an.SC.S.Processed() - baseEvents,
	}
}

// Round runs exactly one sweep period: each node advertises once at its
// phase and the simulator drains the relays and deliveries.
func (an *AuditNetwork) Round() {
	an.SC.StartAuditSweeps(AuditPeriod)
	an.SC.S.RunFor(AuditPeriod)
}

// AdvsProcessed sums the rx.AADV counter over all nodes: how many distinct
// audit advertisements the network has accepted so far. Divided by nodes
// and sweeps it exposes the scaling law — each node hears only its TTL-hop
// neighbourhood's advertisements, a constant at constant density.
func (an *AuditNetwork) AdvsProcessed() uint64 {
	var total uint64
	for _, n := range an.SC.Nodes {
		total += uint64(n.Metrics().Get("rx.AADV"))
	}
	return total
}

// VerifyOps reports the primitive signature checks the sweep has performed
// so far (via the verification cache's miss counter; the benchmark asserts
// steady-state stays at zero on a conflict-free network).
func (an *AuditNetwork) VerifyOps() uint64 {
	var ops uint64
	for _, n := range an.SC.Nodes {
		ops += n.VerifyCacheStats().SigMisses
	}
	return ops
}

// --- crypto workload: verification with and without the memo cache ---
//
// Crypto workload: the Section 3.3 verification stream one node processes
// during formation of an n-node network, replayed against a real
// core.Node so the exact protocol path (verifySRR, memo cache included)
// is what gets measured. Each epoch brings a batch of freshly signed
// route-record chains over a population of n identities — new discovery
// floods carry new sequence numbers, so their signatures cannot be
// pre-warmed — and each chain is presented several times, the shape a
// node sees from duplicate flood copies arriving over different paths,
// re-served CREP attestations and repeated RERRs once the seen-set can
// no longer hold every flood id (the 10k regime ROADMAP item 1
// describes). Without the cache every copy re-runs the full per-hop
// crypto; with the cache later copies cost one content digest.

// CryptoChainHops is the route-record depth of every workload chain.
const CryptoChainHops = 6

// CryptoDuplicates is how many times each fresh chain is presented per
// epoch (1 fresh + duplicates-1 copies). Mean degree in the radio
// workload is ~12, so 4 is conservative.
const CryptoDuplicates = 4

// CryptoNetwork is a verifier node plus the pre-built (pre-signed)
// verification streams, one per round. Building signs outside the timed
// region so rounds measure verification only.
type CryptoNetwork struct {
	Node   *core.Node
	epochs [][]*wire.RREQ
	next   int
}

// BuildCryptoNetwork constructs the workload for `epochs` rounds at
// n-node scale. cached selects the memoized (default) or direct verifier.
func BuildCryptoNetwork(n int, cached bool, seed int64, epochs int) *CryptoNetwork {
	s := sim.New(seed)
	medium := radio.New(s, radio.DefaultConfig())
	rng := newRand(seed)

	mustIdent := func(name string) *identity.Identity {
		id, err := identity.New(identity.SuiteEd25519, rng, name)
		if err != nil {
			panic(fmt.Sprintf("scalebench: identity: %v", err))
		}
		return id
	}
	dns := mustIdent("dns")
	cfg := core.DefaultConfig()
	if !cached {
		cfg.VerifyCache = -1
	}
	node := core.New(s, medium, 0, mustIdent(""), dns.Pub, cfg, rng, nil)
	node.StartConfigured()

	pop := make([]*identity.Identity, n)
	for i := range pop {
		pop[i] = mustIdent("")
	}

	fresh := n / 32
	if fresh < 8 {
		fresh = 8
	}
	cn := &CryptoNetwork{Node: node}
	var seq uint32
	for e := 0; e < epochs; e++ {
		chains := make([]*wire.RREQ, 0, fresh)
		for j := 0; j < fresh; j++ {
			seq++
			src := pop[rng.Intn(n)]
			m := &wire.RREQ{
				SIP: src.Addr, DIP: pop[rng.Intn(n)].Addr, Seq: seq,
				SrcSig: src.Sign(wire.SigRREQSource(src.Addr, seq)),
				SPK:    src.Pub.Bytes(), Srn: src.Rn,
			}
			for h := 0; h < CryptoChainHops; h++ {
				hid := pop[rng.Intn(n)]
				m.SRR = append(m.SRR, wire.HopAttestation{
					IP:  hid.Addr,
					Sig: hid.Sign(wire.SigHop(hid.Addr, seq)),
					PK:  hid.Pub.Bytes(), Rn: hid.Rn,
				})
			}
			chains = append(chains, m)
		}
		stream := make([]*wire.RREQ, 0, fresh*CryptoDuplicates)
		for pass := 0; pass < CryptoDuplicates; pass++ {
			stream = append(stream, chains...)
		}
		cn.epochs = append(cn.epochs, stream)
	}
	return cn
}

// Round verifies one epoch's stream; every chain is honest, so any
// rejection is a bug (a cached run disagreeing with reality).
func (cn *CryptoNetwork) Round() {
	stream := cn.epochs[cn.next%len(cn.epochs)]
	cn.next++
	for _, m := range stream {
		if err := cn.Node.VerifyRouteRecord(m); err != nil {
			panic(fmt.Sprintf("scalebench: honest chain rejected: %v", err))
		}
	}
}

// --- bindtable workload: shared CGA-binding table vs per-node memos ---
//
// The cross-node companion to the crypto workload: the same duplicated
// route-record streams, but verified by a group of co-located nodes —
// the shape of a flood epoch, where every node in a neighbourhood sees
// copies of the same chains. Each node's verify cache dedups its own
// copies either way; what the shared table dedups is the *first*
// encounter at every node after the first. The measured quantity is the
// primitive CGA verification count, not wall time: in this
// deterministic workload it is exact and machine-independent (the wire
// workload's allocs-per-op argument), and the expected pernode/shared
// ratio is the verifier-group size itself. Identities are minted fresh
// per epoch — reusing a population would let every node's local memo
// absorb all bindings after the warmup epoch and both cells' deltas
// would collapse to zero.

// BindVerifiers is the verifier-group size of the bindtable workload:
// the nodes sharing one region's table, sized to the scale sweep's mean
// degree (~12) rounded to the shard count.
const BindVerifiers = 8

// BindNetwork is a group of verifier nodes plus the pre-signed
// verification streams, one per round. The shared variant wires every
// node's memo to one binding table; the pernode variant leaves each
// node to compute its own misses.
type BindNetwork struct {
	Nodes []*core.Node
	Table *bindtable.Table // nil in the pernode variant

	epochs [][]*wire.RREQ
	next   int
}

// BuildBindNetwork constructs the workload for `epochs` rounds at
// n-node scale: BindVerifiers memoizing nodes, and per epoch
// max(n/32, 8) fresh chains (fresh source and hop identities every
// epoch) each presented CryptoDuplicates times to every node.
func BuildBindNetwork(n int, shared bool, seed int64, epochs int) *BindNetwork {
	s := sim.New(seed)
	medium := radio.New(s, radio.DefaultConfig())
	rng := newRand(seed)

	mustIdent := func(name string) *identity.Identity {
		id, err := identity.New(identity.SuiteEd25519, rng, name)
		if err != nil {
			panic(fmt.Sprintf("scalebench: identity: %v", err))
		}
		return id
	}
	dns := mustIdent("dns")
	bn := &BindNetwork{}
	if shared {
		bn.Table = bindtable.New(0)
	}
	for i := 0; i < BindVerifiers; i++ {
		node := core.New(s, medium, radio.NodeID(i), mustIdent(""), dns.Pub, core.DefaultConfig(), rng, nil)
		node.StartConfigured()
		node.SetBindings(bn.Table) // nil table: no-op, per-node misses compute
		bn.Nodes = append(bn.Nodes, node)
	}

	fresh := n / 32
	if fresh < 8 {
		fresh = 8
	}
	var seq uint32
	for e := 0; e < epochs; e++ {
		chains := make([]*wire.RREQ, 0, fresh)
		for j := 0; j < fresh; j++ {
			seq++
			src := mustIdent("")
			m := &wire.RREQ{
				SIP: src.Addr, DIP: src.Addr, Seq: seq,
				SrcSig: src.Sign(wire.SigRREQSource(src.Addr, seq)),
				SPK:    src.Pub.Bytes(), Srn: src.Rn,
			}
			for h := 0; h < CryptoChainHops; h++ {
				hid := mustIdent("")
				m.SRR = append(m.SRR, wire.HopAttestation{
					IP:  hid.Addr,
					Sig: hid.Sign(wire.SigHop(hid.Addr, seq)),
					PK:  hid.Pub.Bytes(), Rn: hid.Rn,
				})
			}
			chains = append(chains, m)
		}
		stream := make([]*wire.RREQ, 0, fresh*CryptoDuplicates)
		for pass := 0; pass < CryptoDuplicates; pass++ {
			stream = append(stream, chains...)
		}
		bn.epochs = append(bn.epochs, stream)
	}
	return bn
}

// Round presents one epoch's stream to every node; every chain is
// honest, so any rejection is a bug.
func (bn *BindNetwork) Round() {
	stream := bn.epochs[bn.next%len(bn.epochs)]
	bn.next++
	for _, node := range bn.Nodes {
		for _, m := range stream {
			if err := node.VerifyRouteRecord(m); err != nil {
				panic(fmt.Sprintf("scalebench: honest chain rejected: %v", err))
			}
		}
	}
}

// cgaMisses sums the nodes' local CGA miss counters — in the pernode
// variant every local miss computes the primitive.
func (bn *BindNetwork) cgaMisses() uint64 {
	var misses uint64
	for _, node := range bn.Nodes {
		misses += node.VerifyCacheStats().CGAMisses
	}
	return misses
}

// RunBindScale measures the bindtable workload at n nodes with the
// shared table attached or absent. One warmup epoch runs untimed; the
// logical request count is identical in both variants (the differential
// bar), only where the primitive computes moves.
func RunBindScale(n int, shared bool, seed int64, rounds int, now func() time.Time) ScaleResult {
	bn := BuildBindNetwork(n, shared, seed, rounds+1)
	bn.Round() // warm: sig memos for epoch-stable keys, table plumbing
	var baseReq uint64
	for _, node := range bn.Nodes {
		baseReq += uint64(node.Metrics().Get("crypto.verify"))
	}
	baseMisses := bn.cgaMisses()
	var baseTable bindtable.Stats
	if bn.Table != nil {
		baseTable = bn.Table.Stats()
	}
	start := now()
	for r := 0; r < rounds; r++ {
		bn.Round()
	}
	wall := now().Sub(start)

	var req uint64
	for _, node := range bn.Nodes {
		req += uint64(node.Metrics().Get("crypto.verify"))
	}
	req -= baseReq
	name := "pernode"
	ops := bn.cgaMisses() - baseMisses // no table: every local miss computes
	var hits uint64
	if shared {
		name = "shared"
		ts := bn.Table.Stats()
		ops = ts.Misses - baseTable.Misses
		hits = ts.Hits - baseTable.Hits
	}
	return ScaleResult{
		Mode:           "bindtable",
		Nodes:          n,
		Index:          name,
		Rounds:         rounds,
		WallMS:         float64(wall.Nanoseconds()) / 1e6 / float64(rounds),
		VerifyRequests: req,
		VerifyOps:      ops,
		CacheHits:      hits,
	}
}

// RunCryptoScale measures the verification workload at n nodes with the
// cache enabled or disabled. One warmup epoch runs untimed (mirroring the
// radio workload's index warmup), then `rounds` epochs are timed.
func RunCryptoScale(n int, cached bool, seed int64, rounds int, now func() time.Time) ScaleResult {
	cn := BuildCryptoNetwork(n, cached, seed, rounds+1)
	cn.Round() // warm: first epoch populates the CGA/identity side of the cache
	met := cn.Node.Metrics()
	baseReq := uint64(met.Get("crypto.verify"))
	baseStats := cn.Node.VerifyCacheStats()
	start := now()
	for r := 0; r < rounds; r++ {
		cn.Round()
	}
	wall := now().Sub(start)

	req := uint64(met.Get("crypto.verify")) - baseReq
	stats := cn.Node.VerifyCacheStats()
	name := "nocache"
	ops := req // without the memo every logical check is computed
	var hits uint64
	if cached {
		name = "cache"
		ops = stats.SigMisses - baseStats.SigMisses
		hits = stats.Hits() - baseStats.Hits()
	}
	return ScaleResult{
		Mode:           "crypto",
		Nodes:          n,
		Index:          name,
		Rounds:         rounds,
		WallMS:         float64(wall.Nanoseconds()) / 1e6 / float64(rounds),
		VerifyRequests: req,
		VerifyOps:      ops,
		CacheHits:      hits,
	}
}
