package mobility

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sbr6/internal/geom"
	"sbr6/internal/sim"
)

func TestStaticNeverMoves(t *testing.T) {
	s := Static(geom.Point{X: 3, Y: 4})
	for _, tm := range []sim.Time{0, sim.Time(time.Hour), sim.Time(24 * time.Hour)} {
		if s.Position(tm) != (geom.Point{X: 3, Y: 4}) {
			t.Fatalf("static track moved at %v", tm)
		}
	}
}

func TestWaypointStaysInRegion(t *testing.T) {
	region := geom.Rect{W: 500, H: 300}
	cfg := WaypointConfig{Region: region, MinSpeed: 1, MaxSpeed: 10, Pause: 2 * time.Second}
	tr := NewWaypoint(cfg, geom.Point{X: 100, Y: 100}, rand.New(rand.NewSource(1)))
	for i := 0; i < 5000; i++ {
		p := tr.Position(sim.Time(i) * sim.Time(100*time.Millisecond))
		if !region.Contains(p) {
			t.Fatalf("waypoint left region at step %d: %v", i, p)
		}
	}
}

func TestWaypointStartsAtStart(t *testing.T) {
	start := geom.Point{X: 42, Y: 17}
	tr := NewWaypoint(WaypointConfig{Region: geom.Rect{W: 100, H: 100}, MinSpeed: 1, MaxSpeed: 1}, start, rand.New(rand.NewSource(2)))
	if got := tr.Position(0); got != start {
		t.Fatalf("Position(0) = %v, want %v", got, start)
	}
}

func TestWaypointSpeedBound(t *testing.T) {
	// With MaxSpeed v, displacement over dt can never exceed v*dt.
	cfg := WaypointConfig{Region: geom.Rect{W: 1000, H: 1000}, MinSpeed: 5, MaxSpeed: 20}
	tr := NewWaypoint(cfg, geom.Point{X: 500, Y: 500}, rand.New(rand.NewSource(3)))
	dt := 100 * time.Millisecond
	prev := tr.Position(0)
	for i := 1; i < 3000; i++ {
		now := tr.Position(sim.Time(i) * sim.Time(dt))
		if d := prev.Dist(now); d > 20*dt.Seconds()+1e-9 {
			t.Fatalf("speed bound violated at step %d: moved %v m in %v", i, d, dt)
		}
		prev = now
	}
}

// Every built-in track declares the speed bound the radio's spatial index
// relies on: zero for static tracks, the normalized configured maximum for
// the movers.
func TestTracksDeclareSpeedBounds(t *testing.T) {
	rng := func() *rand.Rand { return rand.New(rand.NewSource(1)) }
	region := geom.Rect{W: 1000, H: 1000}
	cases := []struct {
		name  string
		track Track
		want  float64
	}{
		{"static", Static(geom.Point{X: 1}), 0},
		{"waypoint", NewWaypoint(WaypointConfig{Region: region, MinSpeed: 2, MaxSpeed: 15}, geom.Point{}, rng()), 15},
		{"waypoint clamped", NewWaypoint(WaypointConfig{Region: region, MinSpeed: 5, MaxSpeed: 1}, geom.Point{}, rng()), 5},
		{"walk", NewWalk(WalkConfig{Region: region, Speed: 7}, geom.Point{}, rng()), 7},
		{"walk defaulted", NewWalk(WalkConfig{Region: region}, geom.Point{}, rng()), 1},
	}
	for _, c := range cases {
		b, ok := c.track.(Bounded)
		if !ok {
			t.Fatalf("%s: track does not implement Bounded", c.name)
		}
		if got := b.SpeedBound(); got != c.want {
			t.Errorf("%s: SpeedBound = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestWaypointDeterministicAndMonotoneQueries(t *testing.T) {
	mk := func() Track {
		return NewWaypoint(WaypointConfig{Region: geom.Rect{W: 300, H: 300}, MinSpeed: 1, MaxSpeed: 5, Pause: time.Second},
			geom.Point{X: 10, Y: 10}, rand.New(rand.NewSource(7)))
	}
	a, b := mk(), mk()
	// Query a in order, b out of order; same answers must come back.
	times := []sim.Time{0, sim.Time(5 * time.Second), sim.Time(60 * time.Second), sim.Time(30 * time.Second), sim.Time(60 * time.Second)}
	fromA := make([]geom.Point, len(times))
	for i, tm := range times {
		fromA[i] = a.Position(tm)
	}
	for _, i := range []int{2, 0, 4, 1, 3} {
		if got := b.Position(times[i]); got != fromA[i] {
			t.Fatalf("out-of-order query diverged at t=%v: %v vs %v", times[i], got, fromA[i])
		}
	}
}

func TestWaypointPause(t *testing.T) {
	// With min==max speed 1 m/s in a tiny region and a long pause, the node
	// must be stationary for stretches.
	cfg := WaypointConfig{Region: geom.Rect{W: 10, H: 10}, MinSpeed: 1, MaxSpeed: 1, Pause: time.Minute}
	tr := NewWaypoint(cfg, geom.Point{X: 5, Y: 5}, rand.New(rand.NewSource(11)))
	stationary := 0
	prev := tr.Position(0)
	for i := 1; i < 600; i++ {
		now := tr.Position(sim.Time(i) * sim.Time(time.Second))
		if now == prev {
			stationary++
		}
		prev = now
	}
	if stationary < 300 {
		t.Fatalf("expected long pauses, only %d stationary seconds of 600", stationary)
	}
}

func TestWalkStaysInRegion(t *testing.T) {
	region := geom.Rect{W: 200, H: 200}
	tr := NewWalk(WalkConfig{Region: region, Speed: 15, Epoch: 5 * time.Second}, geom.Point{X: 100, Y: 100}, rand.New(rand.NewSource(5)))
	for i := 0; i < 2000; i++ {
		p := tr.Position(sim.Time(i) * sim.Time(500*time.Millisecond))
		if !region.Contains(p) {
			t.Fatalf("walk left region: %v", p)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	// Zero-valued speeds must not produce NaN positions or hangs.
	tr := NewWaypoint(WaypointConfig{Region: geom.Rect{W: 10, H: 10}}, geom.Point{}, rand.New(rand.NewSource(1)))
	p := tr.Position(sim.Time(time.Minute))
	if p != p { // NaN check
		t.Fatal("NaN position")
	}
	tw := NewWalk(WalkConfig{Region: geom.Rect{W: 10, H: 10}}, geom.Point{}, rand.New(rand.NewSource(1)))
	if q := tw.Position(sim.Time(time.Minute)); q != q {
		t.Fatal("NaN position")
	}
}

func TestUniformPlacementInRegion(t *testing.T) {
	region := geom.Rect{W: 123, H: 456}
	pts := UniformPlacement(region, 500, rand.New(rand.NewSource(9)))
	if len(pts) != 500 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		if !region.Contains(p) {
			t.Fatalf("placement outside region: %v", p)
		}
	}
}

func TestGridPlacement(t *testing.T) {
	region := geom.Rect{W: 100, H: 100}
	pts := GridPlacement(region, 9)
	if len(pts) != 9 {
		t.Fatalf("len = %d", len(pts))
	}
	// 3x3 grid: cells 33.3x33.3, centres at 16.67, 50, 83.3.
	if pts[0].Dist(geom.Point{X: 100.0 / 6, Y: 100.0 / 6}) > 1e-9 {
		t.Fatalf("first cell centre wrong: %v", pts[0])
	}
	for _, p := range pts {
		if !region.Contains(p) {
			t.Fatalf("grid point outside region: %v", p)
		}
	}
	if GridPlacement(region, 0) != nil {
		t.Fatal("n=0 should yield nil")
	}
}

func TestLinePlacement(t *testing.T) {
	pts := LinePlacement(4, 200)
	want := []geom.Point{{X: 0}, {X: 200}, {X: 400}, {X: 600}}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("pts = %v", pts)
		}
	}
}

// Property: waypoint positions are always inside the region, for arbitrary
// query times (including repeated and unordered ones).
func TestPropertyWaypointInRegion(t *testing.T) {
	region := geom.Rect{W: 400, H: 250}
	tr := NewWaypoint(WaypointConfig{Region: region, MinSpeed: 0.5, MaxSpeed: 25, Pause: 3 * time.Second},
		geom.Point{X: 200, Y: 125}, rand.New(rand.NewSource(13)))
	prop := func(ticks uint32) bool {
		return region.Contains(tr.Position(sim.Time(ticks) * sim.Time(time.Millisecond)))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWaypointPosition(b *testing.B) {
	tr := NewWaypoint(WaypointConfig{Region: geom.Rect{W: 1000, H: 1000}, MinSpeed: 1, MaxSpeed: 20},
		geom.Point{X: 1, Y: 1}, rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Position(sim.Time(i%100000) * sim.Time(10*time.Millisecond))
	}
}

func TestGlideTrack(t *testing.T) {
	from := geom.Point{X: 0, Y: 0}
	to := geom.Point{X: 300, Y: 400} // 500 m apart
	start := sim.Time(0).Add(2 * time.Second)
	g := NewGlide(from, to, start, 100) // 5 s of travel

	if got := g.Position(0); got != from {
		t.Fatalf("before start: %v", got)
	}
	if got := g.Position(start); got != from {
		t.Fatalf("at start: %v", got)
	}
	mid := g.Position(start.Add(2500 * time.Millisecond))
	if math.Abs(mid.X-150) > 1e-9 || math.Abs(mid.Y-200) > 1e-9 {
		t.Fatalf("midpoint: %v", mid)
	}
	if got := g.Position(start.Add(time.Hour)); got != to {
		t.Fatalf("after arrival: %v", got)
	}
	if want := start.Add(5 * time.Second); g.Arrival() != want {
		t.Fatalf("arrival %v, want %v", g.Arrival(), want)
	}
	if g.SpeedBound() != 100 {
		t.Fatalf("speed bound %v", g.SpeedBound())
	}
	// Determinism out of order: querying late then early agrees with the
	// forward pass (the medium's lazy re-bucketing does exactly this).
	g2 := NewGlide(from, to, start, 100)
	_ = g2.Position(start.Add(time.Minute))
	if got := g2.Position(start.Add(2500 * time.Millisecond)); got != mid {
		t.Fatalf("out-of-order query diverged: %v vs %v", got, mid)
	}
	// Degenerate zero-length glide holds position.
	if got := NewGlide(from, from, start, 50).Position(start.Add(time.Second)); got != from {
		t.Fatalf("zero-length glide moved: %v", got)
	}
}
