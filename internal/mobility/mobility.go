// Package mobility provides deterministic node mobility models for the
// simulated MANET: static placement, random waypoint, and bounded random
// walk. Every model exposes a Track — a function of virtual time to a
// position — built lazily from a seeded random source so that runs are
// reproducible and positions can be queried out of order.
package mobility

import (
	"math"
	"math/rand"
	"time"

	"sbr6/internal/geom"
	"sbr6/internal/sim"
)

// Track reports a node's position at a virtual time. Implementations must be
// deterministic: the same Track queried at the same time always returns the
// same point.
type Track interface {
	Position(t sim.Time) geom.Point
}

// Bounded is implemented by tracks that can bound their own speed. The
// radio medium's spatial index uses the bound to size the staleness slop of
// its lazily re-bucketed position cache: a node can drift at most
// SpeedBound times the cache age from its bucketed position. Tracks that do
// not implement Bounded are treated as unbounded and re-bucketed exactly,
// which is correct but slower.
type Bounded interface {
	// SpeedBound returns the maximum speed in metres/second the track can
	// ever move at. Zero means the track never moves.
	SpeedBound() float64
}

// Refresher is implemented by tracks that can report when they next need
// their spatial-index bucket refreshed. NextRefresh returns the earliest
// instant strictly after now at which the track may have drifted more than
// slop metres from its position at now, or -1 if it never will (static, or
// arrived at a final destination). The radio medium uses this to drive
// event-driven per-node re-bucketing instead of sweeping every mover on
// every query — crucially, a per-node event chain stays inside one region
// of the sharded core, while a sweep would be a cross-region scan.
//
// Implementations may be conservative (return an earlier time than
// strictly necessary) but must never be late: between now and the returned
// instant the track must stay within slop of Position(now).
type Refresher interface {
	NextRefresh(now sim.Time, slop float64) sim.Time
}

// Static is a Track that never moves.
type Static geom.Point

// Position implements Track.
func (s Static) Position(sim.Time) geom.Point { return geom.Point(s) }

// SpeedBound implements Bounded: a static node never moves.
func (s Static) SpeedBound() float64 { return 0 }

// NextRefresh implements Refresher: a static node never needs one.
func (s Static) NextRefresh(sim.Time, float64) sim.Time { return -1 }

// leg is one segment of piecewise-linear motion: travel from From to To
// during [Start, ArriveAt], then hold position until End (pause time).
type leg struct {
	start    sim.Time
	arriveAt sim.Time
	end      sim.Time
	from, to geom.Point
}

func (l leg) position(t sim.Time) geom.Point {
	if t <= l.start || l.arriveAt == l.start {
		return l.from
	}
	if t >= l.arriveAt {
		return l.to
	}
	frac := float64(t-l.start) / float64(l.arriveAt-l.start)
	return l.from.Lerp(l.to, frac)
}

// mover lazily extends a trajectory with legs produced by next. The speed
// bound is the fastest any generated leg can travel, declared up front by
// the model that builds the mover.
type mover struct {
	legs  []leg
	next  func(prev leg) leg
	bound float64
}

// SpeedBound implements Bounded.
func (m *mover) SpeedBound() float64 { return m.bound }

// NextRefresh implements Refresher. While travelling, the node needs a
// refresh after covering slop metres at the leg's own speed (not the
// global bound); while paused it holds position until the leg ends. The
// returned instant is always strictly after now, so refresh event chains
// make progress even across leg boundaries.
func (m *mover) NextRefresh(now sim.Time, slop float64) sim.Time {
	// Find the leg that strictly covers now (end > now), extending lazily.
	for m.legs[len(m.legs)-1].end <= now {
		m.legs = append(m.legs, m.next(m.legs[len(m.legs)-1]))
	}
	lo, hi := 0, len(m.legs)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if m.legs[mid].end <= now {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	l := m.legs[lo]
	next := l.end // paused (or zero-travel leg): position holds until the leg ends
	if now < l.arriveAt && l.arriveAt > l.start {
		speed := l.from.Dist(l.to) / l.arriveAt.Sub(l.start).Seconds()
		if speed > 0 {
			drift := now.Add(sim.Duration(slop / speed * float64(time.Second)))
			if drift < l.arriveAt {
				next = drift
			} else {
				next = l.arriveAt
			}
		}
	}
	if next <= now { // float rounding guard: chains must always advance
		next = now + 1
	}
	return next
}

func (m *mover) Position(t sim.Time) geom.Point {
	for m.legs[len(m.legs)-1].end < t {
		m.legs = append(m.legs, m.next(m.legs[len(m.legs)-1]))
	}
	// Binary search for the covering leg.
	lo, hi := 0, len(m.legs)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if m.legs[mid].end < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return m.legs[lo].position(t)
}

// WaypointConfig parameterizes the classic random waypoint model.
type WaypointConfig struct {
	Region   geom.Rect
	MinSpeed float64       // metres/second, > 0 to avoid the speed-decay pathology
	MaxSpeed float64       // metres/second, >= MinSpeed
	Pause    time.Duration // pause at each waypoint
}

// NewWaypoint builds a random waypoint Track starting at start. The rng must
// be dedicated to this track (derive one per node from the scenario seed).
func NewWaypoint(cfg WaypointConfig, start geom.Point, rng *rand.Rand) Track {
	if cfg.MinSpeed <= 0 {
		cfg.MinSpeed = 0.1
	}
	if cfg.MaxSpeed < cfg.MinSpeed {
		cfg.MaxSpeed = cfg.MinSpeed
	}
	next := func(prev leg) leg {
		dest := cfg.Region.RandomPoint(rng)
		speed := cfg.MinSpeed + rng.Float64()*(cfg.MaxSpeed-cfg.MinSpeed)
		dist := prev.to.Dist(dest)
		travel := sim.Duration(dist / speed * float64(time.Second))
		arrive := prev.end.Add(travel)
		return leg{start: prev.end, arriveAt: arrive, end: arrive.Add(cfg.Pause), from: prev.to, to: dest}
	}
	seed := leg{start: 0, arriveAt: 0, end: 0, from: start, to: start}
	return &mover{legs: []leg{seed}, next: next, bound: cfg.MaxSpeed}
}

// WalkConfig parameterizes a bounded random walk: at each epoch the node
// picks a uniformly random direction and walks at Speed for Epoch, clamped
// to the region.
type WalkConfig struct {
	Region geom.Rect
	Speed  float64 // metres/second
	Epoch  time.Duration
}

// NewWalk builds a bounded random-walk Track starting at start.
func NewWalk(cfg WalkConfig, start geom.Point, rng *rand.Rand) Track {
	if cfg.Speed <= 0 {
		cfg.Speed = 1
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = 10 * time.Second
	}
	next := func(prev leg) leg {
		theta := rng.Float64() * 2 * math.Pi
		step := cfg.Speed * cfg.Epoch.Seconds()
		dest := cfg.Region.Clamp(prev.to.Add(geom.Point{X: math.Cos(theta) * step, Y: math.Sin(theta) * step}))
		arrive := prev.end.Add(cfg.Epoch)
		return leg{start: prev.end, arriveAt: arrive, end: arrive, from: prev.to, to: dest}
	}
	seed := leg{from: start, to: start}
	return &mover{legs: []leg{seed}, next: next, bound: cfg.Speed}
}

// Glide is the scripted merge track of the partition scenarios: static at
// From until Start, then straight-line motion to To at Speed, then static
// at To forever. It is fully deterministic — no random source — so joining
// two independently formed clusters never perturbs a seeded run.
type Glide struct {
	From, To geom.Point
	Start    sim.Time
	Speed    float64 // metres/second, > 0
}

// NewGlide builds the track; a non-positive speed is clamped to 1 m/s.
func NewGlide(from, to geom.Point, start sim.Time, speed float64) *Glide {
	if speed <= 0 {
		speed = 1
	}
	return &Glide{From: from, To: to, Start: start, Speed: speed}
}

// Position implements Track.
func (g *Glide) Position(t sim.Time) geom.Point {
	if t <= g.Start {
		return g.From
	}
	dist := g.From.Dist(g.To)
	if dist == 0 {
		return g.To
	}
	travelled := g.Speed * t.Sub(g.Start).Seconds()
	if travelled >= dist {
		return g.To
	}
	return g.From.Lerp(g.To, travelled/dist)
}

// SpeedBound implements Bounded.
func (g *Glide) SpeedBound() float64 { return g.Speed }

// Arrival returns the instant the track reaches To.
func (g *Glide) Arrival() sim.Time {
	dist := g.From.Dist(g.To)
	return g.Start.Add(sim.Duration(dist / g.Speed * float64(time.Second)))
}

// NextRefresh implements Refresher: nothing moves before Start or after
// Arrival; in between, slop metres at the glide speed.
func (g *Glide) NextRefresh(now sim.Time, slop float64) sim.Time {
	arr := g.Arrival()
	if now >= arr {
		return -1
	}
	drift := sim.Duration(slop / g.Speed * float64(time.Second))
	start := g.Start
	if now > start {
		start = now
	}
	next := start.Add(drift)
	if next > arr {
		next = arr
	}
	if next <= now {
		next = now + 1
	}
	return next
}

// UniformPlacement returns n independent uniform positions inside region.
func UniformPlacement(region geom.Rect, n int, rng *rand.Rand) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = region.RandomPoint(rng)
	}
	return pts
}

// GridPlacement lays out n nodes on the most-square grid that fits region,
// centred in each cell. Deterministic; used by the scripted figure
// reproductions where the topology must match the paper's diagrams.
func GridPlacement(region geom.Rect, n int) []geom.Point {
	if n <= 0 {
		return nil
	}
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	rows := (n + cols - 1) / cols
	pts := make([]geom.Point, 0, n)
	cw, ch := region.W/float64(cols), region.H/float64(rows)
	for i := 0; i < n; i++ {
		r, c := i/cols, i%cols
		pts = append(pts, geom.Point{X: (float64(c) + 0.5) * cw, Y: (float64(r) + 0.5) * ch})
	}
	return pts
}

// LinePlacement lays out n nodes on a horizontal line with the given
// spacing, used for chain topologies in route-discovery experiments.
func LinePlacement(n int, spacing float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i) * spacing, Y: 0}
	}
	return pts
}
