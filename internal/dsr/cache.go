// Package dsr provides the DSR-style route cache shared by the secure
// protocol and the plain baseline: source routes keyed by destination, with
// expiry, capacity bounds, link invalidation on route errors, and — for the
// secure protocol — the destination's route attestation that lets the cache
// owner answer later route requests with a CREP (Section 3.3).
package dsr

import (
	"sbr6/internal/ipv6"
	"sbr6/internal/sim"
)

// Route is one cached source route: the relays between the cache owner and
// the destination, in forwarding order.
type Route struct {
	Relays  []ipv6.Addr
	Expires sim.Time

	// Attestation, secure mode only: the destination's signature
	// [owner, Seq, Relays]_{D_SK} from the original RREP, plus the material
	// to verify it. Only attested entries may be served as CREPs, because
	// only they carry a proof a third party can check.
	Attested bool
	Seq      uint32
	Sig      []byte
	DPK      []byte
	Drn      uint64
}

// Len returns the hop count of the full path (relays + final hop).
func (r Route) Len() int { return len(r.Relays) + 1 }

// clone returns a deep copy so cache internals never alias caller slices.
func (r Route) clone() Route {
	c := r
	c.Relays = append([]ipv6.Addr(nil), r.Relays...)
	c.Sig = append([]byte(nil), r.Sig...)
	c.DPK = append([]byte(nil), r.DPK...)
	return c
}

// sameRelays reports whether two routes traverse identical relays.
func sameRelays(a, b []ipv6.Addr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Cache is one node's route cache. Not safe for concurrent use.
type Cache struct {
	owner  ipv6.Addr
	ttl    sim.Duration
	perDst int
	byDst  map[ipv6.Addr][]Route
}

// NewCache creates a cache for the node with address owner. ttl bounds
// entry lifetime; perDst bounds alternatives kept per destination.
func NewCache(owner ipv6.Addr, ttl sim.Duration, perDst int) *Cache {
	if perDst <= 0 {
		perDst = 3
	}
	return &Cache{owner: owner, ttl: ttl, perDst: perDst, byDst: make(map[ipv6.Addr][]Route)}
}

// SetOwner updates the owner address (after DAD regenerates it).
func (c *Cache) SetOwner(owner ipv6.Addr) { c.owner = owner }

// Put inserts a route to dst discovered at time now. A route with identical
// relays replaces the old entry (refreshing expiry and attestation); when
// the per-destination bound is exceeded the entry closest to expiry is
// evicted.
func (c *Cache) Put(dst ipv6.Addr, r Route, now sim.Time) {
	r = r.clone()
	r.Expires = now.Add(c.ttl)
	list := c.live(dst, now)
	replaced := false
	for i := range list {
		if sameRelays(list[i].Relays, r.Relays) {
			list[i] = r
			replaced = true
			break
		}
	}
	if !replaced {
		list = append(list, r)
		if len(list) > c.perDst {
			oldest := 0
			for i := range list {
				if list[i].Expires < list[oldest].Expires {
					oldest = i
				}
			}
			list = append(list[:oldest], list[oldest+1:]...)
		}
	}
	c.byDst[dst] = list
}

// live returns the non-expired routes for dst, compacting storage.
func (c *Cache) live(dst ipv6.Addr, now sim.Time) []Route {
	list := c.byDst[dst]
	out := list[:0]
	for _, r := range list {
		if r.Expires > now {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		delete(c.byDst, dst)
		return nil
	}
	c.byDst[dst] = out
	return out
}

// Routes returns copies of the live routes for dst.
func (c *Cache) Routes(dst ipv6.Addr, now sim.Time) []Route {
	list := c.live(dst, now)
	out := make([]Route, len(list))
	for i, r := range list {
		out[i] = r.clone()
	}
	return out
}

// Best selects the live route to dst maximizing score (over the relay
// list), breaking ties toward fewer hops. score may be nil, in which case
// the shortest live route wins.
func (c *Cache) Best(dst ipv6.Addr, now sim.Time, score func([]ipv6.Addr) float64) (Route, bool) {
	list := c.live(dst, now)
	if len(list) == 0 {
		return Route{}, false
	}
	best := 0
	for i := 1; i < len(list); i++ {
		if score != nil {
			si, sb := score(list[i].Relays), score(list[best].Relays)
			if si > sb || (si == sb && list[i].Len() < list[best].Len()) {
				best = i
			}
		} else if list[i].Len() < list[best].Len() {
			best = i
		}
	}
	return list[best].clone(), true
}

// Attested returns a live attested route to dst (for CREP service).
func (c *Cache) Attested(dst ipv6.Addr, now sim.Time) (Route, bool) {
	for _, r := range c.live(dst, now) {
		if r.Attested {
			return r.clone(), true
		}
	}
	return Route{}, false
}

// InvalidateLink removes every route whose full path (owner, relays, dst)
// traverses the directed link a->b. It returns how many routes were
// dropped.
func (c *Cache) InvalidateLink(a, b ipv6.Addr) int {
	dropped := 0
	//sbr6:commutative per-destination filtering touches only that key's entry; the drop count is a sum
	for dst, list := range c.byDst {
		kept := list[:0]
		for _, r := range list {
			if routeUsesLink(c.owner, r.Relays, dst, a, b) {
				dropped++
				continue
			}
			kept = append(kept, r)
		}
		if len(kept) == 0 {
			delete(c.byDst, dst)
		} else {
			c.byDst[dst] = kept
		}
	}
	return dropped
}

// InvalidateHost removes every route traversing the given relay; used when
// credits condemn a host. It returns how many routes were dropped.
func (c *Cache) InvalidateHost(h ipv6.Addr) int {
	dropped := 0
	//sbr6:commutative per-destination filtering touches only that key's entry; the drop count is a sum
	for dst, list := range c.byDst {
		kept := list[:0]
		for _, r := range list {
			uses := false
			for _, rel := range r.Relays {
				if rel == h {
					uses = true
					break
				}
			}
			if uses || dst == h {
				dropped++
				continue
			}
			kept = append(kept, r)
		}
		if len(kept) == 0 {
			delete(c.byDst, dst)
		} else {
			c.byDst[dst] = kept
		}
	}
	return dropped
}

func routeUsesLink(owner ipv6.Addr, relays []ipv6.Addr, dst, a, b ipv6.Addr) bool {
	prev := owner
	for _, r := range relays {
		if prev == a && r == b {
			return true
		}
		prev = r
	}
	return prev == a && dst == b
}

// Destinations returns the destinations that currently have entries
// (possibly including expired ones not yet compacted), in unspecified
// order.
func (c *Cache) Destinations() []ipv6.Addr {
	out := make([]ipv6.Addr, 0, len(c.byDst))
	//sbr6:commutative documented unspecified order; the only sim-path caller is usesRelay's any-match
	for dst := range c.byDst {
		out = append(out, dst)
	}
	return out
}

// Flush drops everything.
func (c *Cache) Flush() { c.byDst = make(map[ipv6.Addr][]Route) }

// Dests returns the number of destinations with live entries (expired
// entries may still be counted until touched).
func (c *Cache) Dests() int { return len(c.byDst) }
