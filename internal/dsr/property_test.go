package dsr

import (
	"math/rand"
	"testing"
	"time"

	"sbr6/internal/ipv6"
	"sbr6/internal/sim"
)

// Property tests over random cache workloads.

func randRoute(r *rand.Rand) Route {
	n := r.Intn(5)
	relays := make([]ipv6.Addr, n)
	for i := range relays {
		relays[i] = a(uint64(1 + r.Intn(8)))
	}
	return Route{Relays: relays, Attested: r.Intn(2) == 0}
}

// Property: Best always returns a route that is present in Routes, and its
// score is maximal among them.
func TestPropertyBestIsMaximal(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	score := func(relays []ipv6.Addr) float64 {
		s := 0.0
		for _, rel := range relays {
			s -= float64(rel.InterfaceID() % 13)
		}
		return s
	}
	for trial := 0; trial < 300; trial++ {
		c := NewCache(owner, sim.Duration(time.Minute), 4)
		dst := a(100)
		inserts := 1 + r.Intn(6)
		for i := 0; i < inserts; i++ {
			c.Put(dst, randRoute(r), sim.Time(i))
		}
		now := sim.Time(inserts)
		best, ok := c.Best(dst, now, score)
		if !ok {
			t.Fatal("cache non-empty but Best failed")
		}
		found := false
		for _, route := range c.Routes(dst, now) {
			if sameRelays(route.Relays, best.Relays) {
				found = true
			}
			if score(route.Relays) > score(best.Relays) {
				t.Fatalf("Best not maximal: %v beats %v", route.Relays, best.Relays)
			}
		}
		if !found {
			t.Fatal("Best returned a route not in the cache")
		}
	}
}

// Property: after InvalidateLink(a, b), no remaining route's full path
// contains the directed link a->b.
func TestPropertyInvalidateLinkComplete(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 300; trial++ {
		c := NewCache(owner, sim.Duration(time.Minute), 8)
		dsts := []ipv6.Addr{a(100), a(101)}
		for i := 0; i < 8; i++ {
			c.Put(dsts[r.Intn(2)], randRoute(r), 0)
		}
		x, y := a(uint64(1+r.Intn(8))), a(uint64(1+r.Intn(8)))
		c.InvalidateLink(x, y)
		for _, dst := range dsts {
			for _, route := range c.Routes(dst, 0) {
				if routeUsesLink(owner, route.Relays, dst, x, y) {
					t.Fatalf("route %v -> %v still uses link %v->%v", route.Relays, dst, x, y)
				}
			}
		}
	}
}

// Property: the per-destination bound holds under any insertion sequence.
func TestPropertyPerDstBound(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	c := NewCache(owner, sim.Duration(time.Hour), 3)
	dst := a(100)
	for i := 0; i < 200; i++ {
		c.Put(dst, randRoute(r), sim.Time(i))
		if got := len(c.Routes(dst, sim.Time(i))); got > 3 {
			t.Fatalf("bound violated: %d routes", got)
		}
	}
}

// Property: InvalidateHost removes exactly the routes using the host.
func TestPropertyInvalidateHostComplete(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		c := NewCache(owner, sim.Duration(time.Hour), 8)
		dst := a(100)
		for i := 0; i < 6; i++ {
			c.Put(dst, randRoute(r), 0)
		}
		h := a(uint64(1 + r.Intn(8)))
		c.InvalidateHost(h)
		for _, route := range c.Routes(dst, 0) {
			for _, rel := range route.Relays {
				if rel == h {
					t.Fatalf("route still uses condemned host %v", h)
				}
			}
		}
	}
}
