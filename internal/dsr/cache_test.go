package dsr

import (
	"testing"
	"time"

	"sbr6/internal/ipv6"
	"sbr6/internal/sim"
)

func a(i uint64) ipv6.Addr { return ipv6.SiteLocal(0, i) }

var owner = a(0xae)

func newCache() *Cache { return NewCache(owner, sim.Duration(30*time.Second), 3) }

func TestPutAndBest(t *testing.T) {
	c := newCache()
	dst := a(9)
	c.Put(dst, Route{Relays: []ipv6.Addr{a(1), a(2)}}, 0)
	c.Put(dst, Route{Relays: []ipv6.Addr{a(3)}}, 0)
	r, ok := c.Best(dst, 0, nil)
	if !ok || len(r.Relays) != 1 || r.Relays[0] != a(3) {
		t.Fatalf("Best = %+v, %v; want the 1-relay route", r, ok)
	}
	if _, ok := c.Best(a(77), 0, nil); ok {
		t.Fatal("route to unknown destination")
	}
}

func TestExpiry(t *testing.T) {
	c := newCache()
	dst := a(9)
	c.Put(dst, Route{Relays: []ipv6.Addr{a(1)}}, 0)
	if _, ok := c.Best(dst, sim.Time(29*time.Second), nil); !ok {
		t.Fatal("route expired early")
	}
	if _, ok := c.Best(dst, sim.Time(31*time.Second), nil); ok {
		t.Fatal("route outlived its ttl")
	}
}

func TestReplaceSameRelaysRefreshes(t *testing.T) {
	c := newCache()
	dst := a(9)
	c.Put(dst, Route{Relays: []ipv6.Addr{a(1)}}, 0)
	c.Put(dst, Route{Relays: []ipv6.Addr{a(1)}}, sim.Time(20*time.Second))
	if len(c.Routes(dst, sim.Time(21*time.Second))) != 1 {
		t.Fatal("duplicate relays created a second entry")
	}
	if _, ok := c.Best(dst, sim.Time(45*time.Second), nil); !ok {
		t.Fatal("refresh did not extend expiry")
	}
}

func TestPerDestinationBound(t *testing.T) {
	c := newCache()
	dst := a(9)
	// Insert at increasing times so expiries order the eviction.
	for i := 0; i < 5; i++ {
		c.Put(dst, Route{Relays: []ipv6.Addr{a(uint64(10 + i))}}, sim.Time(i)*sim.Time(time.Second))
	}
	routes := c.Routes(dst, sim.Time(5*time.Second))
	if len(routes) != 3 {
		t.Fatalf("kept %d routes, want 3", len(routes))
	}
	// The earliest-expiring (oldest) entries were evicted.
	for _, r := range routes {
		if r.Relays[0] == a(10) || r.Relays[0] == a(11) {
			t.Fatalf("oldest route survived eviction: %v", r.Relays)
		}
	}
}

func TestBestWithScore(t *testing.T) {
	c := newCache()
	dst := a(9)
	c.Put(dst, Route{Relays: []ipv6.Addr{a(1)}}, 0)       // short but bad
	c.Put(dst, Route{Relays: []ipv6.Addr{a(2), a(3)}}, 0) // long but good
	score := func(relays []ipv6.Addr) float64 {
		for _, r := range relays {
			if r == a(1) {
				return -100
			}
		}
		return 5
	}
	r, ok := c.Best(dst, 0, score)
	if !ok || len(r.Relays) != 2 {
		t.Fatalf("Best with score = %+v", r)
	}
	// Tie on score prefers shorter.
	c2 := newCache()
	c2.Put(dst, Route{Relays: []ipv6.Addr{a(2), a(3)}}, 0)
	c2.Put(dst, Route{Relays: []ipv6.Addr{a(4)}}, 0)
	flat := func([]ipv6.Addr) float64 { return 1 }
	r, _ = c2.Best(dst, 0, flat)
	if len(r.Relays) != 1 {
		t.Fatal("score tie should prefer fewer hops")
	}
}

func TestAttestedLookup(t *testing.T) {
	c := newCache()
	dst := a(9)
	c.Put(dst, Route{Relays: []ipv6.Addr{a(1)}}, 0) // plain
	if _, ok := c.Attested(dst, 0); ok {
		t.Fatal("plain route served as attested")
	}
	c.Put(dst, Route{Relays: []ipv6.Addr{a(2)}, Attested: true, Seq: 4, Sig: []byte{1}, DPK: []byte{2}, Drn: 3}, 0)
	r, ok := c.Attested(dst, 0)
	if !ok || !r.Attested || r.Seq != 4 {
		t.Fatalf("Attested = %+v, %v", r, ok)
	}
}

func TestInvalidateLink(t *testing.T) {
	c := newCache()
	dst := a(9)
	c.Put(dst, Route{Relays: []ipv6.Addr{a(1), a(2)}}, 0) // owner->1->2->9
	c.Put(dst, Route{Relays: []ipv6.Addr{a(3)}}, 0)       // owner->3->9
	// Link 1->2 kills only the first route.
	if n := c.InvalidateLink(a(1), a(2)); n != 1 {
		t.Fatalf("dropped %d, want 1", n)
	}
	routes := c.Routes(dst, 0)
	if len(routes) != 1 || routes[0].Relays[0] != a(3) {
		t.Fatalf("wrong survivor: %+v", routes)
	}
	// First-hop link: owner->3.
	if n := c.InvalidateLink(owner, a(3)); n != 1 {
		t.Fatalf("dropped %d, want 1", n)
	}
	// Last-hop link relay->dst.
	c.Put(dst, Route{Relays: []ipv6.Addr{a(4)}}, 0)
	if n := c.InvalidateLink(a(4), dst); n != 1 {
		t.Fatalf("last-hop invalidation dropped %d, want 1", n)
	}
	if c.Dests() != 0 {
		t.Fatal("cache should be empty")
	}
}

func TestInvalidateLinkIsDirected(t *testing.T) {
	c := newCache()
	dst := a(9)
	c.Put(dst, Route{Relays: []ipv6.Addr{a(1), a(2)}}, 0)
	if n := c.InvalidateLink(a(2), a(1)); n != 0 {
		t.Fatal("reverse link should not invalidate")
	}
}

func TestInvalidateHost(t *testing.T) {
	c := newCache()
	c.Put(a(9), Route{Relays: []ipv6.Addr{a(1), a(2)}}, 0)
	c.Put(a(9), Route{Relays: []ipv6.Addr{a(3)}}, 0)
	c.Put(a(2), Route{Relays: []ipv6.Addr{a(5)}}, 0) // dst IS the host
	if n := c.InvalidateHost(a(2)); n != 2 {
		t.Fatalf("dropped %d, want 2", n)
	}
	if len(c.Routes(a(9), 0)) != 1 {
		t.Fatal("unrelated route lost")
	}
}

func TestCacheDoesNotAliasCallerSlices(t *testing.T) {
	c := newCache()
	relays := []ipv6.Addr{a(1), a(2)}
	c.Put(a(9), Route{Relays: relays}, 0)
	relays[0] = a(99) // caller mutates after Put
	r, _ := c.Best(a(9), 0, nil)
	if r.Relays[0] != a(1) {
		t.Fatal("cache aliased caller slice")
	}
	r.Relays[0] = a(98) // caller mutates returned route
	r2, _ := c.Best(a(9), 0, nil)
	if r2.Relays[0] != a(1) {
		t.Fatal("returned route aliases cache")
	}
}

func TestFlush(t *testing.T) {
	c := newCache()
	c.Put(a(9), Route{Relays: []ipv6.Addr{a(1)}}, 0)
	c.Flush()
	if _, ok := c.Best(a(9), 0, nil); ok {
		t.Fatal("route survived flush")
	}
}

func TestRouteLen(t *testing.T) {
	if (Route{}).Len() != 1 {
		t.Fatal("direct route length should be 1")
	}
	if (Route{Relays: []ipv6.Addr{a(1), a(2)}}).Len() != 3 {
		t.Fatal("3-hop route length wrong")
	}
}
