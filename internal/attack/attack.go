// Package attack implements the adversaries of the paper's Section 4 as
// pluggable node behaviours: black and gray holes, address impersonation,
// control-message replay and forging, route-error spam, identity churn and
// DNS impersonation. Each behaviour records what it attempted so
// experiments can report acceptance rates alongside the defenders' own
// counters.
package attack

import (
	"time"

	"sbr6/internal/core"
	"sbr6/internal/ipv6"
	"sbr6/internal/ndp"
	"sbr6/internal/wire"
)

// BlackHole participates fully in route discovery — optionally forging
// cached-route replies to attract traffic ("announce having good routes
// leading to all other hosts") — and then silently swallows the data plane.
type BlackHole struct {
	// ForgeCacheReplies answers every RREQ with a fabricated CREP claiming
	// the destination is this node's neighbour. Plain DSR believes it; the
	// secure protocol rejects the missing destination signature.
	ForgeCacheReplies bool
	// DropControl additionally drops relayed control traffic (a cruder
	// variant that also disturbs discovery through itself).
	DropControl bool

	// Counters.
	DroppedData   int
	ForgedReplies int

	seen *ndp.FloodCache
}

// Intercept implements core.Behavior.
func (b *BlackHole) Intercept(n *core.Node, pkt *wire.Packet, raw []byte) bool {
	m, isRREQ := pkt.Msg.(*wire.RREQ)
	if !isRREQ || !b.ForgeCacheReplies || !n.Configured() {
		return false
	}
	if m.SIP == n.Addr() || m.DIP == n.Addr() {
		return false // let own/terminal handling proceed
	}
	if b.seen == nil {
		b.seen = ndp.NewFloodCache(1024)
	}
	if b.seen.Seen(m.SIP, m.Seq) {
		return true // already answered this flood; keep suppressing it
	}
	// Fabricate: "the destination is right next to me". No destination
	// signature exists, so Sig2/DPK are junk the attacker invents.
	toMe := m.Route()
	crep := &wire.CREP{
		S2IP:  m.SIP,
		SIP:   n.Addr(),
		DIP:   m.DIP,
		Seq2:  m.Seq,
		RRToS: toMe,
		Seq:   1,
		RRToD: nil,
		Sig2:  []byte("forged"),
		DPK:   n.Identity().Pub.Bytes(),
		Drn:   n.Identity().Rn,
	}
	if n.Config().Secure {
		// It can sign the fresh half honestly — that is not the weak link.
		crep.Sig1 = n.Identity().Sign(wire.SigRREP(m.SIP, m.Seq, toMe))
		crep.SPK = n.Identity().Pub.Bytes()
		crep.Srn = n.Identity().Rn
	}
	b.ForgedReplies++
	n.SendAlong(reverseAddrs(toMe), m.SIP, crep)
	return true // suppress the flood: traffic must come to us
}

// DropForward implements core.Behavior.
func (b *BlackHole) DropForward(n *core.Node, pkt *wire.Packet) bool {
	switch pkt.Msg.(type) {
	case *wire.Data, *wire.Ack:
		b.DroppedData++
		return true
	default:
		if b.DropControl {
			b.DroppedData++
			return true
		}
		return false
	}
}

// GrayHole forwards control traffic but drops each relayed data packet
// with probability P, which is harder to pin than a total black hole.
type GrayHole struct {
	P       float64
	Dropped int
	Passed  int
}

// Intercept implements core.Behavior.
func (g *GrayHole) Intercept(*core.Node, *wire.Packet, []byte) bool { return false }

// DropForward implements core.Behavior.
func (g *GrayHole) DropForward(n *core.Node, pkt *wire.Packet) bool {
	switch pkt.Msg.(type) {
	case *wire.Data, *wire.Ack:
		if n.Rand().Float64() < g.P {
			g.Dropped++
			return true
		}
		g.Passed++
	}
	return false
}

// Impersonator claims a victim's address: it answers route requests for
// the victim with an RREP naming the victim's address but proving nothing
// (it has no key whose CGA matches). It then consumes any data that arrives.
type Impersonator struct {
	Victim ipv6.Addr

	ForgedReplies int
	StolenData    int

	seen *ndp.FloodCache
}

// Intercept implements core.Behavior.
func (im *Impersonator) Intercept(n *core.Node, pkt *wire.Packet, raw []byte) bool {
	switch m := pkt.Msg.(type) {
	case *wire.RREQ:
		if m.DIP != im.Victim || !n.Configured() || m.SIP == n.Addr() {
			return false
		}
		if im.seen == nil {
			im.seen = ndp.NewFloodCache(1024)
		}
		if im.seen.Seen(m.SIP, m.Seq) {
			return true
		}
		// The forged route leads THROUGH the attacker: "the victim is my
		// neighbour". Data then arrives at the attacker for the final hop.
		toMe := m.Route()
		claimed := append(append([]ipv6.Addr(nil), toMe...), n.Addr())
		rep := &wire.RREP{
			SIP: m.SIP,
			DIP: im.Victim, // the lie: not the attacker's CGA address
			Seq: m.Seq,
			RR:  claimed,
		}
		if n.Config().Secure {
			// Best effort: sign with its own key. The CGA check
			// H(attackerPK, rn) != victim's interface ID defeats this.
			rep.Sig = n.Identity().Sign(wire.SigRREP(m.SIP, m.Seq, claimed))
			rep.DPK = n.Identity().Pub.Bytes()
			rep.Drn = n.Identity().Rn
		}
		im.ForgedReplies++
		n.SendAlong(reverseAddrs(toMe), m.SIP, rep)
		return true
	case *wire.Data:
		// Data addressed to the victim that reaches the attacker — as the
		// fake final relay or as the claimed destination — is stolen (this
		// only happens when the forged RREP was believed).
		if pkt.Dst != im.Victim {
			return false
		}
		atRelay := int(pkt.Hop) < len(pkt.SrcRoute) && pkt.SrcRoute[pkt.Hop] == n.Addr()
		atEnd := int(pkt.Hop) >= len(pkt.SrcRoute)
		if atRelay || atEnd {
			im.StolenData++
			return true
		}
	}
	return false
}

// DropForward implements core.Behavior.
func (im *Impersonator) DropForward(*core.Node, *wire.Packet) bool { return false }

// Replayer records interesting control frames it hears and retransmits
// them after Delay, exercising the replay analysis of Section 4 (stale
// challenges and sequence numbers make replays worthless).
type Replayer struct {
	Delay    time.Duration
	Replayed int

	captured int
}

// Intercept implements core.Behavior.
func (r *Replayer) Intercept(n *core.Node, pkt *wire.Packet, raw []byte) bool {
	switch pkt.Msg.(type) {
	case *wire.AREP, *wire.RREP, *wire.CREP, *wire.DNSAnswer, *wire.RERR:
		if r.captured < 256 { // bound memory
			r.captured++
			// Re-encode as if this node were forwarding the message right
			// now, so the replay actually travels the rest of the original
			// path and reaches the original recipient later.
			fwd := *pkt
			if int(fwd.Hop) < len(fwd.SrcRoute) {
				fwd.Hop++
			}
			frame := wire.Encode(&fwd)
			delay := r.Delay
			if delay <= 0 {
				delay = time.Second
			}
			for i, at := range []time.Duration{delay, 2 * delay} {
				_ = i
				n.Sim().After(at, func() {
					r.Replayed++
					n.RawBroadcast(frame)
				})
			}
		}
	}
	return false // pass through: a replayer still relays honestly
}

// DropForward implements core.Behavior.
func (r *Replayer) DropForward(*core.Node, *wire.Packet) bool { return false }

// RERRSpammer "reports errors where there are none": instead of relaying
// data it drops the packet and sends a correctly signed RERR claiming its
// next hop vanished. Each individual report is unfalsifiable (the paper
// accepts it) but the reporter's frequency gives it away.
type RERRSpammer struct {
	Sent int
}

// Intercept implements core.Behavior.
func (sp *RERRSpammer) Intercept(*core.Node, *wire.Packet, []byte) bool { return false }

// DropForward implements core.Behavior.
func (sp *RERRSpammer) DropForward(n *core.Node, pkt *wire.Packet) bool {
	if _, isData := pkt.Msg.(*wire.Data); !isData {
		return false
	}
	next, ok := pkt.NextHop()
	if !ok {
		return false
	}
	// The spammer is hop pkt.Hop; fabricate the break (me -> next+1...).
	// Use the packet's own next hop as the "broken" neighbour.
	rerr := &wire.RERR{IIP: n.Addr(), NIP: next}
	if n.Config().Secure {
		rerr.Sig = n.Identity().Sign(wire.SigRERR(n.Addr(), next))
		rerr.IPK = n.Identity().Pub.Bytes()
		rerr.Irn = n.Identity().Rn
	}
	var prefix []ipv6.Addr
	for i := 0; i < int(pkt.Hop) && i < len(pkt.SrcRoute); i++ {
		if pkt.SrcRoute[i] == n.Addr() {
			break
		}
		prefix = append(prefix, pkt.SrcRoute[i])
	}
	sp.Sent++
	n.SendAlong(reverseAddrs(prefix), pkt.Src, rerr)
	return true
}

// IdentityChurner is a black hole that sheds its identity on a timer: each
// churn draws a fresh CGA address so accumulated punishment is discarded.
// The paper's low-initial-credit rule is the countermeasure.
type IdentityChurner struct {
	Every time.Duration
	BlackHole
	Churns int

	started bool
}

// Intercept implements core.Behavior.
func (c *IdentityChurner) Intercept(n *core.Node, pkt *wire.Packet, raw []byte) bool {
	if !c.started {
		c.started = true
		c.scheduleChurn(n)
	}
	return c.BlackHole.Intercept(n, pkt, raw)
}

func (c *IdentityChurner) scheduleChurn(n *core.Node) {
	every := c.Every
	if every <= 0 {
		every = 10 * time.Second
	}
	n.Sim().After(every, func() {
		n.Identity().Regenerate(n.Rand())
		c.Churns++
		c.scheduleChurn(n)
	})
}

// CloneAttacker squats a victim's CGA address from a different admission
// cell. The harness plants the victim's full identity on the attacker's
// node before formation (modelling the interface-ID collision that per-cell
// admission accepts on CGA's 2^-64 bound, here manufactured deliberately by
// an insider that leaked or cloned the victim's key material). From there
// the attacker is silent and deaf on everything that would resolve the
// conflict:
//
//   - it consumes AREQs probing its own address instead of objecting, so
//     the victim's DAD completes and the duplicate actually forms;
//   - it consumes AREP objections addressed to itself, so its own claim
//     survives formation even when the victim configured first;
//   - it consumes audit advertisements for its address (it will not
//     confirm a conflict) and audit objections (it will not concede one).
//
// What it cannot suppress is its own honest stack's periodic audit
// re-advertisement — the sweep makes every claimant speak — so the victim
// still hears a conflicting binding, raises its objection (ignored) and
// rekeys onto a fresh unique address: the network returns to address
// uniqueness with the theft on the record, which is the strongest outcome
// any protocol can offer against an adversary holding the victim's keys.
type CloneAttacker struct {
	// Counters.
	SilencedAREQs      int // victim DAD probes it refused to object to
	ObjectionsIgnored  int // AREP objections against its own claim it ate
	AuditAdvsIgnored   int // audit advertisements for its address it ate
	AuditObjsSwallowed int // audit objections it refused to act on
}

// Intercept implements core.Behavior.
func (c *CloneAttacker) Intercept(n *core.Node, pkt *wire.Packet, raw []byte) bool {
	switch m := pkt.Msg.(type) {
	case *wire.AREQ:
		if n.Configured() && m.SIP == n.Addr() {
			c.SilencedAREQs++
			return true
		}
	case *wire.AREP:
		if m.SIP == n.Addr() {
			c.ObjectionsIgnored++
			return true
		}
	case *wire.AuditAdv:
		if m.SIP == n.Addr() {
			c.AuditAdvsIgnored++
			return true
		}
	case *wire.AuditObj:
		if m.SIP == n.Addr() {
			// Only objections against ITS claim are swallowed; objections
			// between third-party claimants it happens to relay pass
			// through — a censor that ate those would out itself.
			c.AuditObjsSwallowed++
			return true
		}
	}
	return false
}

// DropForward implements core.Behavior.
func (c *CloneAttacker) DropForward(*core.Node, *wire.Packet) bool { return false }

// FakeDNS impersonates the DNS server: when asked to relay a DNS query it
// answers itself, mapping every name to the attacker's address. Without
// the true server's private key the signature cannot be produced, so the
// secure client rejects it; the baseline client is captured.
type FakeDNS struct {
	Answers int
}

// Intercept implements core.Behavior.
func (f *FakeDNS) Intercept(n *core.Node, pkt *wire.Packet, raw []byte) bool {
	q, isQuery := pkt.Msg.(*wire.DNSQuery)
	if !isQuery {
		return false
	}
	// Only act when relaying someone's query.
	if int(pkt.Hop) >= len(pkt.SrcRoute) || pkt.SrcRoute[pkt.Hop] != n.Addr() {
		return false
	}
	ans := &wire.DNSAnswer{
		Name:  q.Name,
		IP:    n.Addr(), // every name resolves to the attacker
		Found: true,
		// Signed with the attacker's key — the best it can do without the
		// DNS private key.
		Sig: n.Identity().Sign(wire.SigDNSAnswer(q.Name, n.Addr(), true, q.Ch)),
	}
	f.Answers++
	var prefix []ipv6.Addr
	for i := 0; i < int(pkt.Hop); i++ {
		prefix = append(prefix, pkt.SrcRoute[i])
	}
	n.SendAlong(reverseAddrs(prefix), pkt.Src, ans)
	return true // swallow the real query
}

// DropForward implements core.Behavior.
func (f *FakeDNS) DropForward(*core.Node, *wire.Packet) bool { return false }

func reverseAddrs(rr []ipv6.Addr) []ipv6.Addr {
	out := make([]ipv6.Addr, len(rr))
	for i, a := range rr {
		out[len(rr)-1-i] = a
	}
	return out
}

// Compile-time checks: every adversary satisfies core.Behavior.
var (
	_ core.Behavior = (*BlackHole)(nil)
	_ core.Behavior = (*GrayHole)(nil)
	_ core.Behavior = (*Impersonator)(nil)
	_ core.Behavior = (*Replayer)(nil)
	_ core.Behavior = (*RERRSpammer)(nil)
	_ core.Behavior = (*IdentityChurner)(nil)
	_ core.Behavior = (*FakeDNS)(nil)
	_ core.Behavior = (*CloneAttacker)(nil)
)
