package attack_test

import (
	"math"
	"testing"
	"time"

	"sbr6/internal/attack"
	"sbr6/internal/audit"
	"sbr6/internal/boot"
	"sbr6/internal/core"
	"sbr6/internal/geom"
	"sbr6/internal/ipv6"
	"sbr6/internal/scenario"
	"sbr6/internal/wire"
)

// line builds a 200 m-spaced chain with node 0 as the DNS server.
func line(t *testing.T, n int, secure bool, behaviors map[int]core.Behavior) *scenario.Scenario {
	t.Helper()
	cfg := scenario.DefaultConfig()
	cfg.N = n
	cfg.Placement = scenario.PlaceLine
	cfg.Area = geom.Rect{W: float64(n) * 200, H: 10}
	if secure {
		cfg.Protocol = core.DefaultConfig()
	} else {
		cfg.Protocol = core.BaselineConfig()
	}
	cfg.Protocol.DAD.Timeout = 300 * time.Millisecond
	cfg.Protocol.DiscoveryTimeout = 500 * time.Millisecond
	cfg.Protocol.AckTimeout = 400 * time.Millisecond
	cfg.DNS.CommitDelay = 300 * time.Millisecond
	cfg.Behaviors = behaviors
	sc, err := scenario.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func sendMany(sc *scenario.Scenario, from, to, count int, spacing time.Duration) int {
	delivered := 0
	dst := sc.Nodes[to].Addr()
	sc.Nodes[to].OnData = func(ipv6.Addr, *wire.Data) { delivered++ }
	for i := 0; i < count; i++ {
		sc.S.After(time.Duration(i)*spacing, func() {
			sc.Nodes[from].SendData(dst, []byte("payload"))
		})
	}
	sc.S.RunFor(time.Duration(count)*spacing + 8*time.Second)
	return delivered
}

func TestBlackHoleDropsOnlyDataPlane(t *testing.T) {
	bh := &attack.BlackHole{}
	sc := line(t, 5, true, map[int]core.Behavior{2: bh})
	sc.Bootstrap()
	delivered := sendMany(sc, 1, 4, 4, 500*time.Millisecond)
	if delivered != 0 {
		t.Fatalf("black hole leaked %d packets", delivered)
	}
	if bh.DroppedData == 0 {
		t.Fatal("black hole never dropped")
	}
	// Discovery still worked through it (control plane untouched); the
	// cache itself may be empty again because probing condemned the hole
	// and invalidated the route.
	if sc.Nodes[1].Metrics().Get("route.installed") == 0 {
		t.Fatal("no route was ever installed (insider should relay discovery)")
	}
}

func TestBlackHoleDropControlBlocksDiscovery(t *testing.T) {
	bh := &attack.BlackHole{DropControl: true}
	sc := line(t, 5, true, map[int]core.Behavior{2: bh})
	sc.Bootstrap()
	delivered := sendMany(sc, 1, 4, 2, 500*time.Millisecond)
	if delivered != 0 {
		t.Fatalf("delivered %d through a control-dropping hole on the only path", delivered)
	}
	if sc.Nodes[1].Metrics().Get("discovery.failed") == 0 {
		t.Fatal("discovery should fail when RREPs are dropped")
	}
}

func TestForgingBlackHoleBeliefSplit(t *testing.T) {
	for _, secure := range []bool{false, true} {
		bh := &attack.BlackHole{ForgeCacheReplies: true}
		sc := line(t, 5, secure, map[int]core.Behavior{2: bh})
		sc.Bootstrap()
		delivered := sendMany(sc, 1, 4, 3, 500*time.Millisecond)
		if bh.ForgedReplies == 0 {
			t.Fatalf("secure=%v: no forged replies", secure)
		}
		if secure {
			if sc.Nodes[1].Metrics().Get("crep.rejected") == 0 {
				t.Fatalf("secure source accepted forged CREP")
			}
		} else {
			if delivered != 0 {
				t.Fatalf("baseline should be black-holed, delivered %d", delivered)
			}
		}
	}
}

func TestGrayHoleDropsFraction(t *testing.T) {
	gh := &attack.GrayHole{P: 0.5}
	sc := line(t, 5, true, map[int]core.Behavior{2: gh})
	// Disable probing so the gray hole stays on-path for the whole run.
	sc.Nodes[2].Behavior = gh
	sc.Bootstrap()
	delivered := sendMany(sc, 1, 4, 20, 300*time.Millisecond)
	if gh.Dropped == 0 || gh.Passed == 0 {
		t.Fatalf("gray hole should both drop and pass: dropped=%d passed=%d", gh.Dropped, gh.Passed)
	}
	if delivered == 0 || delivered == 20 {
		t.Fatalf("delivered %d of 20, want partial delivery", delivered)
	}
}

func TestImpersonatorStealsOnlyFromBaseline(t *testing.T) {
	for _, secure := range []bool{false, true} {
		im := &attack.Impersonator{}
		sc := line(t, 5, secure, map[int]core.Behavior{2: im})
		im.Victim = sc.Nodes[4].Addr()
		sc.Bootstrap()
		sendMany(sc, 1, 4, 4, 500*time.Millisecond)
		if im.ForgedReplies == 0 {
			t.Fatalf("secure=%v: impersonator never forged", secure)
		}
		if secure && im.StolenData != 0 {
			t.Fatalf("secure protocol leaked %d packets to the impersonator", im.StolenData)
		}
		if !secure && im.StolenData == 0 {
			t.Fatal("baseline impersonation failed to steal")
		}
	}
}

func TestRERRSpammerSignsItsLies(t *testing.T) {
	sp := &attack.RERRSpammer{}
	sc := line(t, 5, true, map[int]core.Behavior{2: sp})
	sc.Bootstrap()
	sendMany(sc, 1, 4, 6, 400*time.Millisecond)
	if sp.Sent == 0 {
		t.Fatal("spammer sent nothing")
	}
	// Signed spam is accepted individually (it is unfalsifiable) but the
	// reporter is on the path, so rerr.accepted must be non-zero.
	if sc.Nodes[1].Metrics().Get("rerr.accepted") == 0 {
		t.Fatal("signed RERRs from an on-path relay should be accepted")
	}
}

func TestIdentityChurnerRegeneratesAddress(t *testing.T) {
	ch := &attack.IdentityChurner{Every: 2 * time.Second}
	sc := line(t, 5, true, map[int]core.Behavior{2: ch})
	sc.Bootstrap()
	before := sc.Nodes[2].Addr()
	sendMany(sc, 1, 4, 10, 400*time.Millisecond)
	if ch.Churns == 0 {
		t.Fatal("no churns")
	}
	if sc.Nodes[2].Addr() == before {
		t.Fatal("address did not change")
	}
}

func TestFakeDNSCounters(t *testing.T) {
	fake := &attack.FakeDNS{}
	sc := line(t, 5, false, map[int]core.Behavior{1: fake})
	sc.Bootstrap()
	sc.S.RunFor(time.Second)
	var got ipv6.Addr
	var found bool
	sc.Nodes[2].Resolve("anything", func(a ipv6.Addr, ok bool) { got, found = a, ok })
	sc.S.RunFor(8 * time.Second)
	if fake.Answers == 0 {
		t.Fatal("fake DNS never answered")
	}
	if !found || got != sc.Nodes[1].Addr() {
		t.Fatalf("baseline client not captured: %v %v", got, found)
	}
}

func TestReplayerReplays(t *testing.T) {
	rp := &attack.Replayer{Delay: time.Second}
	sc := line(t, 5, true, map[int]core.Behavior{2: rp})
	sc.Bootstrap()
	delivered := sendMany(sc, 1, 4, 3, 500*time.Millisecond)
	if rp.Replayed == 0 {
		t.Fatal("nothing replayed")
	}
	if delivered != 3 {
		t.Fatalf("replays disturbed delivery: %d of 3", delivered)
	}
}

// auditedUniform builds a constant-density uniform network with per-cell
// admission and the post-formation audit sweep enabled (period 2s).
func auditedUniform(t *testing.T, n int, enabled bool, behaviors map[int]core.Behavior) *scenario.Scenario {
	t.Helper()
	cfg := scenario.DefaultConfig()
	cfg.N = n
	side := 125 * math.Sqrt(float64(n))
	cfg.Area = geom.Rect{W: side, H: side}
	cfg.Placement = scenario.PlaceUniform
	cfg.Boot = boot.PerCell
	cfg.BootStagger = 500 * time.Millisecond
	cfg.Protocol.DAD.Timeout = 300 * time.Millisecond
	cfg.DNS.CommitDelay = 300 * time.Millisecond
	cfg.Flows = nil
	if enabled {
		cfg.Protocol.Audit = audit.Config{Period: 2 * time.Second}
	}
	cfg.Behaviors = behaviors
	sc, err := scenario.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestCloneAttackerAuditRecovery: an attacker holding the victim's cloned
// identity squats the victim's address from a different admission cell,
// eats every objection, and still cannot keep the network ambiguous — its
// own unsuppressable audit advertisement hands the victim the evidence,
// the victim rekeys onto a fresh unique address, and the theft lands on
// the counters. Without the sweep the duplicate persists (non-vacuity).
func TestCloneAttackerAuditRecovery(t *testing.T) {
	const n, victim, attacker = 60, 1, 40
	run := func(enabled bool) (*scenario.Scenario, *attack.CloneAttacker) {
		ca := &attack.CloneAttacker{}
		sc := auditedUniform(t, n, enabled, map[int]core.Behavior{attacker: ca})
		*sc.Nodes[attacker].Identity() = *sc.Nodes[victim].Identity()
		sc.Bootstrap()
		sc.StartAuditSweeps(8 * time.Second)
		sc.S.RunFor(8 * time.Second)
		return sc, ca
	}

	sc, ca := run(true)
	stolen := sc.Nodes[attacker].Addr()
	if got := sc.Nodes[victim].Addr(); got == stolen {
		t.Fatalf("victim still shares the stolen address %s", got)
	}
	if !sc.Nodes[victim].Configured() {
		t.Fatal("victim did not re-form on its fresh address")
	}
	if got := sc.Nodes[victim].Metrics().Get("audit.rekeys"); got != 1 {
		t.Fatalf("victim rekeyed %v times, want 1", got)
	}
	if got := sc.Nodes[victim].Metrics().Get("audit.conflicts"); got < 1 {
		t.Fatal("the theft never surfaced on the victim's conflict counter")
	}
	if ca.AuditAdvsIgnored == 0 && ca.AuditObjsSwallowed == 0 {
		t.Fatal("the attacker was never even pressed by the sweep")
	}
	// The attacker's own claim survives — squatting an abandoned address is
	// the residual any key-compromise model concedes — but uniqueness is
	// restored across the network.
	addrs := map[string]int{}
	for _, nd := range sc.Nodes {
		addrs[nd.Addr().String()]++
	}
	for addr, count := range addrs {
		if count > 1 {
			t.Fatalf("address %s still held by %d nodes", addr, count)
		}
	}

	// Baseline: with the sweep off the victim never learns.
	base, _ := run(false)
	if base.Nodes[victim].Addr() != base.Nodes[attacker].Addr() {
		t.Fatal("baseline duplicate did not persist — the recovery claim above would be vacuous")
	}
	if got := base.Nodes[victim].Metrics().Get("audit.rekeys"); got != 0 {
		t.Fatalf("baseline rekeyed %v times with the sweep disabled", got)
	}
}
