package cga

import (
	"testing"
	"testing/quick"

	"sbr6/internal/ipv6"
)

var pubA = []byte("public-key-of-host-A-0123456789")
var pubB = []byte("public-key-of-host-B-0123456789")

func TestAddressVerifies(t *testing.T) {
	addr := Address(pubA, 42)
	if !Verify(addr, pubA, 42) {
		t.Fatal("address does not verify against its own inputs")
	}
	if !addr.IsSiteLocal() {
		t.Fatal("address not site-local")
	}
	if addr.SubnetID() != 0 {
		t.Fatal("subnet ID must be zero in a MANET")
	}
}

func TestVerifyRejectsWrongInputs(t *testing.T) {
	addr := Address(pubA, 42)
	if Verify(addr, pubB, 42) {
		t.Fatal("verified under wrong public key")
	}
	if Verify(addr, pubA, 43) {
		t.Fatal("verified under wrong modifier")
	}
	// Not site-local: same IID under a non-fec0 prefix must fail.
	var fake ipv6.Addr
	fake = fake.WithInterfaceID(addr.InterfaceID())
	if Verify(fake, pubA, 42) {
		t.Fatal("verified a non-site-local address")
	}
}

func TestModifierChangesAddressKeepsKey(t *testing.T) {
	// Paper §3.1: rn lets a host derive a fresh IP while keeping PK.
	a1 := Address(pubA, 1)
	a2 := Address(pubA, 2)
	if a1 == a2 {
		t.Fatal("different modifiers should give different addresses")
	}
	if !Verify(a1, pubA, 1) || !Verify(a2, pubA, 2) {
		t.Fatal("both addresses must verify under the same key")
	}
}

func TestInterfaceIDMatchesAddress(t *testing.T) {
	iid := InterfaceID(pubA, 7)
	if Address(pubA, 7).InterfaceID() != iid {
		t.Fatal("address IID mismatch")
	}
}

func TestAddressInSubnet(t *testing.T) {
	a := AddressInSubnet(0x00ff, pubA, 7)
	if a.SubnetID() != 0x00ff {
		t.Fatalf("subnet = %#x", a.SubnetID())
	}
	if a.InterfaceID() != InterfaceID(pubA, 7) {
		t.Fatal("IID must not depend on subnet")
	}
	// Verify only checks the CGA part, so a subnetted address still verifies.
	if !Verify(a, pubA, 7) {
		t.Fatal("subnetted address should verify")
	}
}

func TestTruncatedIDWidths(t *testing.T) {
	full := TruncatedID(pubA, 9, 64)
	for _, bits := range []int{1, 8, 16, 24, 32, 48, 63} {
		got := TruncatedID(pubA, 9, bits)
		if got != full>>(64-uint(bits)) {
			t.Fatalf("TruncatedID(%d) = %#x, want prefix of %#x", bits, got, full)
		}
	}
}

func TestTruncatedIDPanicsOutOfRange(t *testing.T) {
	for _, bits := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("TruncatedID(%d) did not panic", bits)
				}
			}()
			TruncatedID(pubA, 1, bits)
		}()
	}
}

// Property: Verify(Address(pub, rn), pub, rn) holds for arbitrary inputs.
func TestPropertyGenerateThenVerify(t *testing.T) {
	prop := func(pub []byte, rn uint64) bool {
		return Verify(Address(pub, rn), pub, rn)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: distinct (pub, rn) pairs essentially never collide at 64 bits.
func TestPropertyNoAccidentalCollision(t *testing.T) {
	seen := make(map[uint64][]byte)
	prop := func(pub []byte, rn uint64) bool {
		id := InterfaceID(pub, rn)
		if _, dup := seen[id]; dup {
			return false // 2^-64 chance; a hit means the hash is broken
		}
		seen[id] = pub
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInterfaceID(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		InterfaceID(pubA, uint64(i))
	}
}
