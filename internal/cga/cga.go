// Package cga implements the cryptographically generated addresses of the
// paper's Figure 1: the low 64 bits of a host's IPv6 site-local address are
// H(PK, rn), where H is SHA-256 (truncated), PK the host's public key and rn
// a random modifier used to sidestep hash collisions without changing keys.
//
// A host proves ownership of its address by exhibiting (PK, rn) such that
// the address's interface ID equals H(PK, rn) and by answering challenges
// signed with the private key matching PK. An adversary who wants to claim a
// victim's address must find (PK', rn') with H(PK', rn') equal to the
// victim's interface ID — a second-preimage search — and must additionally
// hold the private key for PK' to survive challenges.
//
// The package also exposes reduced-width hashing so the brute-force cost
// curve of Figure 1 / experiment E4 can be measured at tractable widths.
package cga

import (
	"crypto/sha256"
	"encoding/binary"

	"sbr6/internal/ipv6"
)

// IDBits is the interface-ID width of the paper's address format.
const IDBits = 64

// InterfaceID computes H(PK, rn) truncated to 64 bits: the first eight bytes
// of SHA-256 over the public key bytes followed by the big-endian modifier.
func InterfaceID(pub []byte, rn uint64) uint64 {
	return TruncatedID(pub, rn, IDBits)
}

// TruncatedID computes H(PK, rn) truncated to the top `bits` bits
// (1..64), returned right-aligned. Narrow widths exist only for the
// collision/attack-cost experiments.
func TruncatedID(pub []byte, rn uint64, bits int) uint64 {
	if bits < 1 || bits > 64 {
		panic("cga: interface ID width out of range")
	}
	h := sha256.New()
	h.Write(pub)
	var rnb [8]byte
	binary.BigEndian.PutUint64(rnb[:], rn)
	h.Write(rnb[:])
	sum := h.Sum(nil)
	id := binary.BigEndian.Uint64(sum[:8])
	return id >> (64 - uint(bits))
}

// Address builds the MANET site-local address fec0::H(PK, rn) with the
// all-zero subnet ID the paper prescribes.
func Address(pub []byte, rn uint64) ipv6.Addr {
	return ipv6.SiteLocal(0, InterfaceID(pub, rn))
}

// AddressInSubnet builds the address with an explicit subnet ID (the paper
// notes the field is replaced by a gateway when bridging to the Internet).
func AddressInSubnet(subnet uint16, pub []byte, rn uint64) ipv6.Addr {
	return ipv6.SiteLocal(subnet, InterfaceID(pub, rn))
}

// Verify checks the CGA binding: addr must be site-local and its interface
// ID must equal H(pub, rn). This is check (i) of every verification
// procedure in the paper (Sections 3.1 and 3.3).
func Verify(addr ipv6.Addr, pub []byte, rn uint64) bool {
	if !addr.IsSiteLocal() {
		return false
	}
	return addr.InterfaceID() == InterfaceID(pub, rn)
}
