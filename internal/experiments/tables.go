package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"sbr6/internal/cga"
	"sbr6/internal/identity"
	"sbr6/internal/ipv6"
	"sbr6/internal/trace"
	"sbr6/internal/wire"
)

// This file regenerates the paper's Table 1 (control message formats, here
// with measured wire sizes) and the crypto-operation costs behind Table 2's
// symbol definitions.

func init() {
	register("T1", "Table 1: control messages and wire sizes", runT1)
	register("T2", "Table 2 substrate: cryptographic operation costs", runT2)
}

// sigSizes returns representative signature/public-key wire sizes per suite.
func sigSizes(seed int64, suite identity.Suite) (sig, pk int) {
	rng := rand.New(rand.NewSource(seed))
	id, err := identity.New(suite, rng, "")
	if err != nil {
		panic(err)
	}
	return len(id.Sign([]byte("probe"))), len(id.Pub.Bytes())
}

func runT1(opt Options) []*trace.Table {
	a := ipv6.SiteLocal(0, 0xaaaa)
	b := ipv6.SiteLocal(0, 0xbbbb)

	size := func(msg wire.Message, flood bool) int {
		dst := b
		if flood {
			dst = ipv6.AllNodes
		}
		return wire.EncodedSize(&wire.Packet{Src: a, Dst: dst, TTL: 64, Msg: msg})
	}

	suites := []identity.Suite{identity.SuiteEd25519, identity.SuiteRSA1024}
	out := []*trace.Table{}

	msgTable := trace.NewTable("T1a: Table 1 messages — function, parameters, wire size (bytes)",
		"type", "function", "parameters (paper)", "baseline", "ed25519", "rsa1024")
	type row struct {
		name, fn, params string
		build            func(sig, pk []byte, rn uint64) (wire.Message, bool)
	}
	hops := 3 // representative route record length
	mkHops := func(sig, pk []byte, rn uint64) []wire.HopAttestation {
		out := make([]wire.HopAttestation, hops)
		for i := range out {
			out[i] = wire.HopAttestation{IP: a, Sig: sig, PK: pk, Rn: rn}
		}
		return out
	}
	rr := make([]ipv6.Addr, hops)
	rows := []row{
		{"AREQ", "Address REQuest", "(SIP, seq, DN, ch, RR)", func(sig, pk []byte, rn uint64) (wire.Message, bool) {
			return &wire.AREQ{SIP: a, Seq: 1, DN: "host.manet", Ch: 2, RR: rr}, true
		}},
		{"AREP", "Address REPly", "(SIP, RR, [SIP,ch]RSK, RPK, Rrn)", func(sig, pk []byte, rn uint64) (wire.Message, bool) {
			return &wire.AREP{SIP: a, RR: rr, Sig: sig, PK: pk, Rn: rn}, false
		}},
		{"DREP", "DNS server REPly", "(SIP, RR, [DN,ch]NSK)", func(sig, pk []byte, rn uint64) (wire.Message, bool) {
			return &wire.DREP{SIP: a, RR: rr, DN: "host.manet", Sig: sig}, false
		}},
		{"RREQ", "Route REQuest", "(SIP, DIP, seq, SRR, [SIP,seq]SSK, SPK, Srn)", func(sig, pk []byte, rn uint64) (wire.Message, bool) {
			return &wire.RREQ{SIP: a, DIP: b, Seq: 3, SRR: mkHops(sig, pk, rn), SrcSig: sig, SPK: pk, Srn: rn}, true
		}},
		{"RREP", "Route REPly", "(SIP, DIP, [SIP,seq,RR]DSK, DPK, Drn)", func(sig, pk []byte, rn uint64) (wire.Message, bool) {
			return &wire.RREP{SIP: a, DIP: b, Seq: 3, RR: rr, Sig: sig, DPK: pk, Drn: rn}, false
		}},
		{"CREP", "Cached route REPly", "(S'IP, SIP, DIP, RR, sigs, keys, rns)", func(sig, pk []byte, rn uint64) (wire.Message, bool) {
			return &wire.CREP{S2IP: a, SIP: b, DIP: a, Seq2: 4, RRToS: rr, Sig1: sig, SPK: pk, Srn: rn,
				Seq: 3, RRToD: rr, Sig2: sig, DPK: pk, Drn: rn}, false
		}},
		{"RERR", "Route ERRor", "(IIP, I'IP, [IIP,I'IP]ISK, IPK, Irn)", func(sig, pk []byte, rn uint64) (wire.Message, bool) {
			return &wire.RERR{IIP: a, NIP: b, Sig: sig, IPK: pk, Irn: rn}, false
		}},
	}
	for _, r := range rows {
		cells := []string{r.name, r.fn, r.params}
		base, flood := r.build(nil, nil, 0)
		cells = append(cells, fmt.Sprint(size(base, flood)))
		for _, suite := range suites {
			sigN, pkN := sigSizes(opt.Seed, suite)
			msg, flood := r.build(make([]byte, sigN), make([]byte, pkN), 7)
			cells = append(cells, fmt.Sprint(size(msg, flood)))
		}
		msgTable.Add(cells...)
	}
	out = append(out, msgTable)

	// Per-hop growth of the secure RREQ: the protocol's dominant overhead.
	growth := trace.NewTable("T1b: RREQ size vs accumulated hops (bytes)",
		"hops", "baseline", "ed25519", "rsa1024")
	maxHops := 8
	if opt.Quick {
		maxHops = 4
	}
	for h := 0; h <= maxHops; h++ {
		mk := func(sigN, pkN int) int {
			m := &wire.RREQ{SIP: a, DIP: b, Seq: 1}
			if sigN > 0 {
				m.SrcSig, m.SPK, m.Srn = make([]byte, sigN), make([]byte, pkN), 7
			}
			for i := 0; i < h; i++ {
				ha := wire.HopAttestation{IP: a}
				if sigN > 0 {
					ha.Sig, ha.PK, ha.Rn = make([]byte, sigN), make([]byte, pkN), 7
				}
				m.SRR = append(m.SRR, ha)
			}
			return size(m, true)
		}
		edSig, edPK := sigSizes(opt.Seed, identity.SuiteEd25519)
		rsaSig, rsaPK := sigSizes(opt.Seed, identity.SuiteRSA1024)
		growth.Addf(h, mk(0, 0), mk(edSig, edPK), mk(rsaSig, rsaPK))
	}
	out = append(out, growth)
	return out
}

func runT2(opt Options) []*trace.Table {
	iters := 200
	keygenIters := 10
	if opt.Quick {
		iters, keygenIters = 50, 3
	}

	t := trace.NewTable("T2: cryptographic operation costs (wall clock)",
		"suite", "op", "iters", "us/op", "bytes")

	for _, suite := range []identity.Suite{identity.SuiteEd25519, identity.SuiteRSA1024} {
		rng := rand.New(rand.NewSource(opt.Seed))

		start := time.Now()
		var id *identity.Identity
		for i := 0; i < keygenIters; i++ {
			var err error
			id, err = identity.New(suite, rng, "")
			if err != nil {
				panic(err)
			}
		}
		t.Add(suite.String(), "keygen+CGA", fmt.Sprint(keygenIters),
			fmt.Sprintf("%.1f", float64(time.Since(start).Microseconds())/float64(keygenIters)),
			fmt.Sprint(len(id.Pub.Bytes())))

		msg := wire.SigRREQSource(id.Addr, 42)
		start = time.Now()
		var sig []byte
		for i := 0; i < iters; i++ {
			sig = id.Sign(msg)
		}
		t.Add(suite.String(), "sign", fmt.Sprint(iters),
			fmt.Sprintf("%.1f", float64(time.Since(start).Microseconds())/float64(iters)),
			fmt.Sprint(len(sig)))

		start = time.Now()
		for i := 0; i < iters; i++ {
			if !id.Pub.Verify(msg, sig) {
				panic("verify failed")
			}
		}
		t.Add(suite.String(), "verify", fmt.Sprint(iters),
			fmt.Sprintf("%.1f", float64(time.Since(start).Microseconds())/float64(iters)), "-")

		start = time.Now()
		for i := 0; i < iters; i++ {
			cga.InterfaceID(id.Pub.Bytes(), uint64(i))
		}
		t.Add(suite.String(), "H(PK,rn)", fmt.Sprint(iters),
			fmt.Sprintf("%.2f", float64(time.Since(start).Microseconds())/float64(iters)), "8")
	}

	// What a destination pays to verify a k-hop secure route record.
	k := trace.NewTable("T2b: destination verification cost vs route length",
		"hops", "verifies", "ed25519 us", "rsa1024 us")
	rngs := rand.New(rand.NewSource(opt.Seed + 1))
	edID, _ := identity.New(identity.SuiteEd25519, rngs, "")
	rsaID, _ := identity.New(identity.SuiteRSA1024, rngs, "")
	msg := wire.SigHop(edID.Addr, 1)
	edSig := edID.Sign(msg)
	rsaSig := rsaID.Sign(msg)
	reps := 50
	if opt.Quick {
		reps = 10
	}
	for _, hops := range []int{1, 2, 4, 8} {
		verifies := hops + 1 // source + each hop
		start := time.Now()
		for r := 0; r < reps; r++ {
			for i := 0; i < verifies; i++ {
				edID.Pub.Verify(msg, edSig)
			}
		}
		ed := float64(time.Since(start).Microseconds()) / float64(reps)
		start = time.Now()
		for r := 0; r < reps; r++ {
			for i := 0; i < verifies; i++ {
				rsaID.Pub.Verify(msg, rsaSig)
			}
		}
		rsa := float64(time.Since(start).Microseconds()) / float64(reps)
		k.Addf(hops, verifies, ed, rsa)
	}
	return []*trace.Table{t, k}
}
