package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"sbr6"
	"sbr6/internal/core"
	"sbr6/internal/dnssrv"
	"sbr6/internal/geom"
	"sbr6/internal/identity"
	"sbr6/internal/mobility"
	"sbr6/internal/radio"
	"sbr6/internal/sim"
	"sbr6/internal/trace"
)

// E5 and E6: the remaining ablations DESIGN.md §6 calls out — the route
// cache / CREP mechanism, and the robustness of timeout-based DAD when the
// radio loses frames (the paper's silence-means-success assumption).

func init() {
	register("E5", "Derived: route cache and CREP ablation", runE5)
	register("E6", "Derived: DAD false-success rate vs frame loss", runE6)
}

func runE5(opt Options) []*trace.Table {
	t := trace.NewTable("E5: route cache on/off (grid 16, 3 flows converging on one sink)",
		"cache", "PDR", "discovery attempts", "CREPs served", "ctrl bytes", "latency (s)")

	for _, useCache := range []bool{true, false} {
		// Three sources discover the same destination in sequence, so the
		// later discoveries can be answered from intermediate caches (CREP).
		res := runSpec(opt, gridSpec(opt.Seed, 16, true,
			sbr6.WithRouteCache(useCache),
			sbr6.WithFlows(
				sbr6.Flow{From: 1, To: 15, Interval: 500 * time.Millisecond, Size: 64},
				sbr6.Flow{From: 2, To: 15, Interval: 500 * time.Millisecond, Size: 64, Start: 2 * time.Second},
				sbr6.Flow{From: 4, To: 15, Interval: 500 * time.Millisecond, Size: 64, Start: 4 * time.Second},
			),
			sbr6.WithDuration(15*time.Second),
		))
		t.Addf(fmt.Sprint(useCache), res.PDR, res.Metric("discovery.attempts"),
			res.Metric("crep.sent"), res.ControlBytes, res.LatencyMean)
	}
	return []*trace.Table{t}
}

// runE6 measures extended DAD's central fragility: the initiator treats
// silence as success, so if every copy of the objection is lost within the
// objection window, a duplicate address survives. We place a joiner whose
// identity collides with an existing owner k hops away and sweep the
// per-receiver frame loss rate.
func runE6(opt Options) []*trace.Table {
	losses := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	hopsList := []int{1, 2, 3}
	trials := 30
	if opt.Quick {
		losses = []float64{0, 0.2, 0.4}
		hopsList = []int{1, 2}
		trials = 8
	}

	sweep := func(title string, retries int) *trace.Table {
		t := trace.NewTable(title, "loss", "owner 1 hop", "owner 2 hops", "owner 3 hops")
		for _, loss := range losses {
			row := []string{fmt.Sprintf("%.1f", loss)}
			for _, hops := range hopsList {
				fails := 0
				for trial := 0; trial < trials; trial++ {
					if !dadTrial(opt.Seed+int64(trial)*7919, loss, hops, retries) {
						fails++
					}
				}
				row = append(row, fmt.Sprintf("%.2f", float64(fails)/float64(trials)))
			}
			for len(row) < 4 {
				row = append(row, "-")
			}
			t.Add(row...)
		}
		return t
	}
	bare := sweep("E6a: DAD false-success rate vs loss (no link-layer retries)", 0)
	arq := sweep("E6b: DAD false-success rate vs loss (3 link-layer retries)", 3)

	note := trace.NewTable("E6c: reading", "fact", "value")
	note.Add("failure mode", "all AREP copies lost within the objection window -> duplicate address kept")
	note.Add("protocol lever", "link-layer retries (and longer DAD windows) trade latency for soundness")
	note.Add("analytic shape", "false-success ~ P(objection lost) grows with loss rate and path length")
	return []*trace.Table{bare, arq, note}
}

// dadTrial builds a chain dns - r1 - ... - owner and a joiner adjacent to
// r1 whose identity clones the owner's. It reports whether DAD resolved
// the duplicate (true) or falsely succeeded (false).
func dadTrial(seed int64, loss float64, hops, retries int) bool {
	s := sim.New(seed)
	rcfg := radio.DefaultConfig()
	rcfg.BroadcastJitter = time.Millisecond
	rcfg.LossRate = loss
	rcfg.UnicastRetries = retries
	medium := radio.New(s, rcfg)
	pcfg := fastProtocol(true)
	pcfg.DAD.MaxRetries = 8

	dnsIdent, err := identity.New(pcfg.Suite, rand.New(rand.NewSource(seed+1)), "dns")
	if err != nil {
		panic(err)
	}
	mk := func(i int, ident *identity.Identity, pos geom.Point) *core.Node {
		rng := rand.New(rand.NewSource(seed + 100 + int64(i)))
		n := core.New(s, medium, radio.NodeID(i), ident, dnsIdent.Pub, pcfg, rng, nil)
		medium.AddNode(radio.NodeID(i), mobility.Static(pos).Position, n)
		return n
	}

	// Chain: dns(0) at x=0, relays r1..r_{hops-1}, owner at x=hops*200.
	// The joiner sits next to the dns end, `hops` hops from the owner.
	nodes := []*core.Node{}
	dnsNode := mk(0, dnsIdent, geom.Point{X: 0})
	dcfg := dnssrv.DefaultConfig()
	dcfg.CommitDelay = 300 * time.Millisecond
	dnsNode.AttachDNS(dnssrv.New(s, rand.New(rand.NewSource(seed+2)), dnsIdent, dcfg, nil))
	nodes = append(nodes, dnsNode)
	var owner *core.Node
	for i := 1; i <= hops; i++ {
		ident, err := identity.New(pcfg.Suite, rand.New(rand.NewSource(seed+10+int64(i))), "")
		if err != nil {
			panic(err)
		}
		n := mk(i, ident, geom.Point{X: float64(i) * 200})
		nodes = append(nodes, n)
		owner = n
	}

	// Bootstrap the stable chain first (loss applies throughout: nodes
	// still configure because silence is success; nothing here registers
	// names). The measured quantity is the joiner's round only.
	for i, n := range nodes {
		n := n
		s.After(time.Duration(i)*400*time.Millisecond, n.Start)
	}
	s.RunFor(time.Duration(len(nodes))*400*time.Millisecond + 2*time.Second)

	ownerIdent := owner.Identity()
	clone := &identity.Identity{Priv: ownerIdent.Priv, Pub: ownerIdent.Pub, Rn: ownerIdent.Rn, Addr: ownerIdent.Addr}
	joiner := mk(99, clone, geom.Point{X: 50}) // neighbour of dns and r1
	joiner.Start()
	s.RunFor(8 * time.Second)

	return joiner.Addr() != ownerIdent.Addr
}
