package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"sbr6"
	"sbr6/internal/cga"
	"sbr6/internal/core"
	"sbr6/internal/dnssrv"
	"sbr6/internal/geom"
	"sbr6/internal/identity"
	"sbr6/internal/radio"
	"sbr6/internal/scenario"
	"sbr6/internal/sim"
	"sbr6/internal/trace"
)

// This file regenerates the paper's figures: the CGA address layout
// (Figure 1), the secure DAD walkthrough (Figure 2) and the secure route
// discovery walkthrough (Figure 3), each with the quantitative measurement
// a modern reader expects next to the diagram.

func init() {
	register("F1", "Figure 1: CGA address layout and takeover cost", runF1)
	register("F2", "Figure 2: secure DAD walkthrough and scaling", runF2)
	register("F3", "Figure 3: secure route discovery, RREP and CREP", runF3)
}

func runF1(opt Options) []*trace.Table {
	rng := rand.New(rand.NewSource(opt.Seed))
	id, err := identity.New(identity.SuiteEd25519, rng, "")
	if err != nil {
		panic(err)
	}

	layout := trace.NewTable("F1a: site-local CGA layout (Figure 1)", "field", "bits", "value")
	a := id.Addr
	layout.Add("site-local prefix", "10", "1111111011 (fec0::/10)")
	layout.Add("all zeros", "38", "0")
	layout.Add("subnet ID", "16", fmt.Sprintf("%#04x", a.SubnetID()))
	layout.Add("H(PK, rn)", "64", fmt.Sprintf("%#016x", a.InterfaceID()))
	layout.Add("address", "128", a.String())
	layout.Add("rn", "64", fmt.Sprintf("%#x", id.Rn))
	layout.Add("verifies", "-", fmt.Sprint(cga.Verify(a, id.Pub.Bytes(), id.Rn)))

	// Second-preimage (address takeover) cost at reduced hash widths: the
	// attacker grinds modifiers under its own key until the truncated hash
	// matches the victim's. Expected work doubles per bit.
	widths := []int{8, 10, 12, 14, 16, 18, 20}
	if opt.Quick {
		widths = []int{8, 10, 12, 14, 16}
	}
	attacker, err := identity.New(identity.SuiteEd25519, rng, "")
	if err != nil {
		panic(err)
	}
	atk := trace.NewTable("F1b: brute-force address takeover vs interface-ID width",
		"bits", "expected attempts (2^w)", "measured attempts", "wall time")
	for _, w := range widths {
		victim := cga.TruncatedID(id.Pub.Bytes(), id.Rn, w)
		start := time.Now()
		attempts := uint64(0)
		for {
			attempts++
			if cga.TruncatedID(attacker.Pub.Bytes(), rng.Uint64(), w) == victim {
				break
			}
		}
		atk.Add(fmt.Sprint(w), fmt.Sprintf("%.0f", math.Exp2(float64(w))),
			fmt.Sprint(attempts), time.Since(start).Round(time.Microsecond).String())
	}
	// Extrapolation row: at the paper's 64-bit width.
	atk.Add("64", "1.8e19", "(extrapolated: ~585 years at 1e9 H/s)", "-")
	return []*trace.Table{layout, atk}
}

// runF2 reproduces Figure 2: a joining host S collides first on the IP
// address (owner R objects with a signed AREP; R also warns the DNS), then
// on its domain name (the DNS objects with a signed DREP), and finally
// configures under a fresh address and name.
func runF2(opt Options) []*trace.Table {
	s := sim.New(opt.Seed)
	rcfg := radio.DefaultConfig()
	rcfg.BroadcastJitter = time.Millisecond
	medium := radio.New(s, rcfg)
	pcfg := fastProtocol(true)

	tr := &transcript{}
	names := []string{"dns", "printer"}
	mkNode := func(i int, ident *identity.Identity, dnsPub identity.PublicKey, pos geom.Point) *core.Node {
		rng := rand.New(rand.NewSource(opt.Seed + 100 + int64(i)))
		n := core.New(s, medium, radio.NodeID(i), ident, dnsPub, pcfg, rng, nil)
		n.Behavior = tap{tr: tr, name: fmt.Sprintf("n%d(%s)", i, names[min(i, len(names)-1)])}
		medium.AddNode(radio.NodeID(i), func(sim.Time) geom.Point { return pos }, n)
		return n
	}

	dnsIdent, _ := identity.New(pcfg.Suite, rand.New(rand.NewSource(opt.Seed+1)), "dns")
	rIdent, _ := identity.New(pcfg.Suite, rand.New(rand.NewSource(opt.Seed+2)), "printer")
	dcfg := dnssrv.DefaultConfig()
	dcfg.CommitDelay = 300 * time.Millisecond
	dnsNode := mkNode(0, dnsIdent, dnsIdent.Pub, geom.Point{X: 0})
	dnsNode.AttachDNS(dnssrv.New(s, rand.New(rand.NewSource(opt.Seed+3)), dnsIdent, dcfg, nil))
	owner := mkNode(1, rIdent, dnsIdent.Pub, geom.Point{X: 200})

	// Bootstrap the stable network.
	dnsNode.Start()
	s.RunFor(time.Second)
	owner.Start()
	s.RunFor(2 * time.Second)

	// S joins with BOTH conflicts: its identity is a clone of R's (same
	// key, same modifier -> same CGA address) and it wants R's name too.
	clone := &identity.Identity{Priv: rIdent.Priv, Pub: rIdent.Pub, Rn: rIdent.Rn, Addr: rIdent.Addr, Name: "printer"}
	names = append(names, "S")
	joiner := mkNode(2, clone, dnsIdent.Pub, geom.Point{X: 320})
	joinStart := s.Now()
	joiner.Start()
	s.RunFor(5 * time.Second)

	walk := tr.table("F2a: secure DAD message walkthrough (duplicate IP, then duplicate name)", 60)

	outcome := trace.NewTable("F2b: walkthrough outcome", "fact", "value")
	outcome.Add("owner kept address", fmt.Sprint(owner.Addr() == rIdent.Addr))
	outcome.Add("joiner configured", fmt.Sprint(joiner.Configured()))
	outcome.Add("joiner address != owner's", fmt.Sprint(joiner.Addr() != owner.Addr()))
	outcome.Add("joiner final name", joiner.Name())
	outcome.Add("AREP objections accepted", trace.FormatFloat(joiner.Metrics().Get("dad.arep_accepted")))
	outcome.Add("DREP objections accepted", trace.FormatFloat(joiner.Metrics().Get("dad.drep_accepted")))
	outcome.Add("DNS warns accepted", trace.FormatFloat(dnsNode.Metrics().Get("dns.warns_accepted")))
	outcome.Add("joiner DAD latency", s.Now().Sub(joinStart).String()+" (window incl. retries)")

	// Scaling: DAD latency and flood cost vs network size.
	sizes := []int{5, 10, 15, 20, 25}
	if opt.Quick {
		sizes = []int{5, 10, 15}
	}
	sweep := trace.NewTable("F2c: DAD cost vs network size (grid, no conflicts)",
		"nodes", "mean DAD latency (s)", "AREQ floods", "control bytes", "configured")
	for _, n := range sizes {
		nw := buildNet(gridSpec(opt.Seed, n, true))
		configured := nw.Bootstrap()
		sweep.Addf(n, nw.MetricMean("dad.latency_s"), nw.Metric("tx.AREQ"), nw.Metric("tx.bytes.control"),
			fmt.Sprintf("%d/%d", configured, n))
	}
	return []*trace.Table{walk, outcome, sweep}
}

// runF3 reproduces Figure 3: S discovers D over a chain (per-hop SRR
// growth, signed RREP), then a second querier S' is answered from S's
// cache with a dual-signature CREP.
func runF3(opt Options) []*trace.Table {
	cfg := lineConfig(opt.Seed, 6, true)
	tr := &transcript{}
	cfg.Behaviors = map[int]core.Behavior{}
	labels := []string{"dns", "S'", "S", "I1", "I2", "D"}
	for i := 0; i < cfg.N; i++ {
		cfg.Behaviors[i] = tap{tr: tr, name: fmt.Sprintf("n%d(%s)", i, labels[i])}
	}
	sc, err := scenario.Build(cfg)
	if err != nil {
		panic(err)
	}
	sc.Bootstrap()
	tr.rows = tr.rows[:0] // drop bootstrap noise; the figure is about routing

	// Phase 1: S (node 2) discovers and uses a route to D (node 5).
	dAddr := sc.Nodes[5].Addr()
	sc.Nodes[2].SendData(dAddr, []byte("figure-3-data"))
	sc.S.RunFor(3 * time.Second)
	phase1 := tr.table("F3a: RREQ flood, SRR growth and signed RREP (S -> D)", 40)

	// Phase 2: S' (node 1) asks for D; S answers from its attested cache.
	tr.rows = tr.rows[:0]
	sc.Nodes[1].SendData(dAddr, []byte("figure-3-crep"))
	sc.S.RunFor(3 * time.Second)
	phase2 := tr.table("F3b: cached route reply (CREP) answering S'", 40)

	facts := trace.NewTable("F3c: verification outcome", "fact", "value")
	met := trace.NewMetrics()
	for _, nd := range sc.Nodes {
		met.Merge(nd.Metrics())
	}
	relays1, ok1 := sc.Nodes[2].RouteTo(dAddr)
	relays2, ok2 := sc.Nodes[1].RouteTo(dAddr)
	facts.Add("S route to D", fmt.Sprintf("%d relays (found=%v)", len(relays1), ok1))
	facts.Add("S' route to D (via CREP)", fmt.Sprintf("%d relays (found=%v)", len(relays2), ok2))
	facts.Add("CREPs served", trace.FormatFloat(met.Get("crep.sent")))
	facts.Add("RREPs rejected", trace.FormatFloat(met.Get("rrep.rejected")))
	facts.Add("data delivered", trace.FormatFloat(met.Get("data.delivered")))

	// Scaling: discovery latency and verification count vs route length.
	lens := []int{2, 3, 4, 5, 6, 7}
	if opt.Quick {
		lens = []int{2, 3, 4}
	}
	sweep := trace.NewTable("F3d: discovery cost vs route length (chain)",
		"hops", "protocol", "discovery attempts", "verify ops", "ctrl bytes", "delivered")
	for _, hops := range lens {
		for _, secure := range []bool{true, false} {
			res := runSpec(opt, lineSpec(opt.Seed, hops+2, secure, // dns + chain of hops+1
				sbr6.WithFlows(sbr6.Flow{From: 1, To: hops + 1, Interval: time.Second, Size: 64}),
				sbr6.WithDuration(8*time.Second),
			))
			name := "baseline"
			if secure {
				name = "secure"
			}
			sweep.Addf(hops, name, res.Metric("discovery.attempts"), res.CryptoVerify,
				res.ControlBytes, fmt.Sprintf("%d/%d", res.Delivered, res.Sent))
		}
	}
	return []*trace.Table{phase1, phase2, facts, sweep}
}
