// Package experiments regenerates every table, figure and security-analysis
// claim of the paper, plus the derived quantitative experiments DESIGN.md
// defines. Each experiment is a pure function from options to result
// tables, shared by cmd/sbrbench (printing), the root benchmark suite and
// the integration tests.
//
// Experiment ids follow DESIGN.md: T1/T2 (tables), F1-F3 (figures), S1-S4
// (Section 4 attacks) and E1-E4 (derived measurements).
package experiments

import (
	"fmt"
	"sort"

	"sbr6"
	"sbr6/internal/trace"
)

// Options configure a run.
type Options struct {
	// Seed drives every simulation in the experiment.
	Seed int64
	// Quick shrinks sweeps for fast CI/bench runs; full mode covers the
	// ranges EXPERIMENTS.md records.
	Quick bool
	// Replicates averages stochastic sweeps (currently S2) over this many
	// seeds; 0 or 1 means a single run. Replicates fan out across the
	// facade Runner's worker pool.
	Replicates int
	// Observer optionally streams per-run progress while experiments
	// execute (cmd/sbrbench wires its -progress flag here).
	Observer sbr6.Observer
}

// replicateSeeds returns the seed list a stochastic sweep averages over,
// spaced the way EXPERIMENTS.md records.
func (o Options) replicateSeeds() []int64 {
	reps := o.replicates()
	seeds := make([]int64, 0, reps)
	for rep := 0; rep < reps; rep++ {
		seeds = append(seeds, o.Seed+int64(rep)*101)
	}
	return seeds
}

// DefaultOptions is the configuration EXPERIMENTS.md was produced with.
func DefaultOptions() Options { return Options{Seed: 1, Replicates: 3} }

// replicates normalizes the replicate count.
func (o Options) replicates() int {
	if o.Quick || o.Replicates < 1 {
		return 1
	}
	return o.Replicates
}

// Experiment is one reproducible artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) []*trace.Table
}

var registry = map[string]Experiment{}

func register(id, title string, run func(Options) []*trace.Table) {
	registry[id] = Experiment{ID: id, Title: title, Run: run}
}

// All returns every experiment in id order.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return idLess(out[i].ID, out[j].ID) })
	return out
}

// idLess orders T1 < T2 < F1 < ... < S1 < ... < E1 < ...
func idLess(a, b string) bool {
	rank := func(id string) string {
		order := map[byte]byte{'T': '1', 'F': '2', 'S': '3', 'E': '4'}
		if len(id) == 0 {
			return id
		}
		return string(order[id[0]]) + id[1:]
	}
	return rank(a) < rank(b)
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids())
	}
	return e, nil
}

func ids() []string {
	out := make([]string, 0, len(registry))
	for _, e := range All() {
		out = append(out, e.ID)
	}
	return out
}
