package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"sbr6"
	"sbr6/internal/attack"
	"sbr6/internal/cga"
	"sbr6/internal/dnssrv"
	"sbr6/internal/identity"
	"sbr6/internal/ipv6"
	"sbr6/internal/ndp"
	"sbr6/internal/sim"
	"sbr6/internal/trace"
	"sbr6/internal/wire"
)

// This file regenerates the Section 4 security analysis as measured
// experiments: DNS impersonation (S1), black holes (S2), replayed/forged
// control messages (S3) and replayed/forged route errors (S4). Scenario
// runs go through the public facade; the stochastic S2 sweep fans its
// seed replicates out through the parallel batch Runner.

func init() {
	register("S1", "Section 4: impersonation of DNS", runS1)
	register("S2", "Section 4: black hole attack", runS2)
	register("S3", "Section 4: replayed/forged AREP, DREP, RREP, CREP", runS3)
	register("S4", "Section 4: replayed/forged RERR", runS4)
}

func runS1(opt Options) []*trace.Table {
	t := trace.NewTable("S1: fake DNS answering lookups through a hostile relay",
		"protocol", "forged answers sent", "client poisoned", "forged rejected", "answers accepted")

	for _, secure := range []bool{false, true} {
		nw := buildNet(lineSpec(opt.Seed, 5, secure,
			sbr6.WithName(3, "server"),
			sbr6.WithAdversaries(sbr6.FakeDNS(1)), // relay between client and DNS
		))
		nw.Bootstrap()
		nw.RunFor(time.Second)
		var got sbr6.Addr
		var found bool
		nw.Node(2).Resolve("server", func(a sbr6.Addr, ok bool) { got, found = a, ok })
		nw.RunFor(8 * time.Second)

		fake := nw.AdversaryState(1).(*attack.FakeDNS)
		poisoned := found && got == nw.Node(1).Addr()
		name := "baseline"
		if secure {
			name = "secure"
		}
		t.Add(name, fmt.Sprint(fake.Answers), fmt.Sprint(poisoned),
			trace.FormatFloat(nw.Node(2).Metric("dns.answer_rejected")),
			trace.FormatFloat(nw.Node(2).Metric("dns.answer_accepted")))
	}

	// Replayed DNS answer: a past signed answer cannot satisfy a new query
	// because the fresh challenge is covered by the signature.
	rng := rand.New(rand.NewSource(opt.Seed))
	dnsIdent, _ := identity.New(identity.SuiteEd25519, rng, "dns")
	srv := dnssrv.New(sim.New(opt.Seed), rng, dnsIdent, dnssrv.DefaultConfig(), nil)
	srv.Preload("server", ipv6.SiteLocal(0, 0x1234))
	old := srv.HandleQuery(&wire.DNSQuery{Name: "server", Ch: 111})
	replay := trace.NewTable("S1b: replayed DNS answer", "check", "result")
	replay.Add("old answer valid for its own challenge", fmt.Sprint(dnssrv.ValidateAnswer(old, dnsIdent.Pub, 111)))
	replay.Add("old answer replayed against new challenge", fmt.Sprint(dnssrv.ValidateAnswer(old, dnsIdent.Pub, 222)))
	return []*trace.Table{t, replay}
}

func runS2(opt Options) []*trace.Table {
	attackers := []int{0, 1, 2, 3}
	n := 25
	if opt.Quick {
		attackers = []int{0, 1, 2}
		n = 9
	}

	variants := []struct {
		name    string
		secure  bool
		credits bool
	}{
		{"baseline", false, false},
		{"secure-nocredit", true, false},
		{"secure-credits", true, true},
	}

	// Two adversary flavours: the OUTSIDER forges cached-route replies to
	// attract traffic (Section 4's "announce having good routes"), which
	// signature verification alone defeats; the INSIDER holds a valid
	// identity, relays discovery honestly and drops only data, which takes
	// the credit mechanism (Section 3.4) to survive.
	seeds := opt.replicateSeeds()
	runner := &sbr6.Runner{Observer: opt.Observer}
	mk := func(title string, insider bool) *trace.Table {
		if len(seeds) > 1 {
			title += fmt.Sprintf(" — mean of %d seeds", len(seeds))
		}
		t := trace.NewTable(title,
			"black holes", "baseline PDR", "secure w/o credits PDR", "secure+credits PDR")
		for _, k := range attackers {
			row := []string{fmt.Sprint(k)}
			for _, v := range variants {
				// Attackers occupy central positions (highest betweenness).
				var advs []sbr6.Adversary
				centers := centralIndices(n)
				for i := 0; i < k && i < len(centers); i++ {
					if insider {
						advs = append(advs, sbr6.BlackHole(centers[i]))
					} else {
						advs = append(advs, sbr6.ForgingBlackHole(centers[i]))
					}
				}
				sc := gridSpec(opt.Seed, n, v.secure,
					sbr6.WithCredits(v.credits),
					sbr6.WithFlows(cornerFlows(n, 500*time.Millisecond)...),
					sbr6.WithDuration(20*time.Second),
					sbr6.WithAdversaries(advs...),
				)
				batch, err := runner.RunBatch(context.Background(), sc, seeds)
				if err != nil {
					panic(err)
				}
				row = append(row, fmt.Sprintf("%.3f", batch.PDR.Mean))
			}
			t.Add(row...)
		}
		return t
	}
	forging := mk("S2a: PDR vs forging black holes (fake cached routes + data drop)", false)
	insider := mk("S2b: PDR vs insider black holes (honest discovery, silent data drop)", true)
	return []*trace.Table{forging, insider}
}

// centralIndices returns grid cell indices nearest the centre, in order of
// centrality, excluding the DNS node 0 and the corner flow endpoints.
func centralIndices(n int) []int {
	side := 1
	for side*side < n {
		side++
	}
	mid := side / 2
	out := []int{mid*side + mid}
	for _, d := range []int{1, -1} {
		out = append(out, mid*side+mid+d, (mid+d)*side+mid)
	}
	var filtered []int
	for _, i := range out {
		if i > 0 && i < n-1 {
			filtered = append(filtered, i)
		}
	}
	return filtered
}

func runS3(opt Options) []*trace.Table {
	rng := rand.New(rand.NewSource(opt.Seed))
	suite := identity.SuiteEd25519
	dnsIdent, _ := identity.New(suite, rng, "dns")
	victim, _ := identity.New(suite, rng, "victim")
	attacker, _ := identity.New(suite, rng, "attacker")

	t := trace.NewTable("S3: forged and replayed control messages",
		"message", "attack", "baseline", "secure")

	// AREP forged: the attacker claims the victim's address without the key.
	forgedAREP := &wire.AREP{
		SIP: victim.Addr,
		Sig: attacker.Sign(wire.SigAREP(victim.Addr, 42)),
		PK:  attacker.Pub.Bytes(),
		Rn:  attacker.Rn,
	}
	err := ndp.ValidateAREP(forgedAREP, suite, 42)
	t.Add("AREP", "forged (attacker key)", "accepted (no verification)", verdict(err == nil))

	// AREP replayed: a genuine past objection against a fresh challenge.
	genuine := ndp.BuildAREP(victim, victim.Addr, 42, nil)
	err = ndp.ValidateAREP(genuine, suite, 43)
	t.Add("AREP", "replayed (stale challenge)", "accepted (no challenge)", verdict(err == nil))

	// DREP forged: a name objection not signed by the DNS.
	forgedDREP := &wire.DREP{DN: "server", Sig: attacker.Sign(wire.SigDREP("server", 7))}
	err = ndp.ValidateDREP(forgedDREP, dnsIdent.Pub, "server", 7)
	t.Add("DREP", "forged (non-DNS key)", "accepted (no verification)", verdict(err == nil))

	// RREP forged end to end: an impersonator answers discoveries for the
	// victim. Baseline believes it (data stolen); the CGA check stops it.
	for _, secure := range []bool{false, true} {
		nw := buildNet(lineSpec(opt.Seed, 5, secure,
			sbr6.WithAdversaries(sbr6.Impersonate(2, 4)),
		))
		nw.Bootstrap()
		deliveredToVictim := 0
		nw.Node(4).OnData(func(sbr6.Addr, []byte) { deliveredToVictim++ })
		victimAddr := nw.Node(4).Addr()
		for i := 0; i < 5; i++ {
			nw.Node(1).SendData(victimAddr, []byte("secret"))
			nw.RunFor(500 * time.Millisecond)
		}
		nw.RunFor(12*time.Second - 5*500*time.Millisecond)
		im := nw.AdversaryState(2).(*attack.Impersonator)
		outcome := fmt.Sprintf("stolen=%d delivered=%d rejected=%.0f",
			im.StolenData, deliveredToVictim, nw.Node(1).Metric("rrep.rejected"))
		if secure {
			t.Add("RREP", "forged (impersonation)", "", outcome)
		} else {
			t.Add("RREP", "forged (impersonation)", outcome, "")
		}
	}

	// CREP forged: measured by the S2 machinery with a single black hole.
	for _, secure := range []bool{false, true} {
		nw := buildNet(gridSpec(opt.Seed, 9, secure,
			sbr6.WithAdversaries(sbr6.ForgingBlackHole(4)),
			sbr6.WithFlows(cornerFlows(9, 500*time.Millisecond)...),
		))
		res := nw.Run()
		bh := nw.AdversaryState(4).(*attack.BlackHole)
		outcome := fmt.Sprintf("forged=%d rejected=%.0f pdr=%.2f",
			bh.ForgedReplies, res.Metric("crep.rejected"), res.PDR)
		if secure {
			t.Add("CREP", "forged cached route", "", outcome)
		} else {
			t.Add("CREP", "forged cached route", outcome, "")
		}
	}

	// RREP replay end to end: a hostile relay re-broadcasts captured
	// control frames; stale sequence numbers make them unsolicited.
	nw := buildNet(lineSpec(opt.Seed, 5, true,
		sbr6.WithAdversaries(sbr6.Replay(2, 2*time.Second)),
		sbr6.WithFlows(sbr6.Flow{From: 1, To: 4, Interval: 500 * time.Millisecond, Size: 32}),
	))
	res := nw.Run()
	rp := nw.AdversaryState(2).(*attack.Replayer)
	t.Add("RREP/CREP/AREP", "replayed frames", "routes churned",
		fmt.Sprintf("replayed=%d unsolicited=%.0f rejected=%.0f pdr=%.2f",
			rp.Replayed,
			res.Metric("rrep.unsolicited")+res.Metric("crep.unsolicited")+res.Metric("dns.answer_unsolicited"),
			res.Metric("rrep.rejected")+res.Metric("crep.rejected"), res.PDR))
	return []*trace.Table{t}
}

func verdict(accepted bool) string {
	if accepted {
		return "ACCEPTED (defense failed)"
	}
	return "rejected"
}

func runS4(opt Options) []*trace.Table {
	t := trace.NewTable("S4: route-error spam (drop data, report fake link breaks)",
		"protocol", "RERRs sent", "accepted", "rejected", "spammer flagged", "PDR")

	for _, secure := range []bool{false, true} {
		// Grid topology: alternate paths exist, so once the spammer is
		// identified the secure protocol can actually route around it.
		nw := buildNet(gridSpec(opt.Seed, 9, secure,
			sbr6.WithAdversaries(sbr6.RERRSpammer(4)), // centre
			sbr6.WithRERRThreshold(3),
			sbr6.WithFlows(cornerFlows(9, 400*time.Millisecond)...),
			sbr6.WithDuration(20*time.Second),
		))
		res := nw.Run()
		sp := nw.AdversaryState(4).(*attack.RERRSpammer)
		name := "baseline"
		if secure {
			name = "secure+credits"
		}
		t.Add(name, fmt.Sprint(sp.Sent),
			trace.FormatFloat(res.Metric("rerr.accepted")),
			trace.FormatFloat(res.Metric("rerr.rejected")),
			trace.FormatFloat(res.Metric("rerr.spammer_flagged")),
			fmt.Sprintf("%.3f", res.PDR))
	}

	// Forged RERR (claiming someone else's identity) — rejected outright
	// in secure mode because the CGA binding fails.
	rng := rand.New(rand.NewSource(opt.Seed))
	victim, _ := identity.New(identity.SuiteEd25519, rng, "")
	attacker, _ := identity.New(identity.SuiteEd25519, rng, "")
	forge := trace.NewTable("S4b: RERR forged in another relay's name", "check", "result")
	sig := attacker.Sign(wire.SigRERR(victim.Addr, attacker.Addr))
	// The verification steps a secure source applies:
	pk, _ := identity.ParsePublicKey(identity.SuiteEd25519, attacker.Pub.Bytes())
	forge.Add("CGA binding (victim addr vs attacker key)",
		fmt.Sprint(cga.Verify(victim.Addr, attacker.Pub.Bytes(), attacker.Rn)))
	forge.Add("signature verifies under presented key",
		fmt.Sprint(pk.Verify(wire.SigRERR(victim.Addr, attacker.Addr), sig)))
	forge.Add("overall: forged RERR accepted", "false (CGA binding fails)")
	return []*trace.Table{t, forge}
}
