package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"sbr6"
	"sbr6/internal/attack"
	"sbr6/internal/cga"
	"sbr6/internal/identity"
	"sbr6/internal/trace"
)

// This file implements the derived experiments of DESIGN.md: the cost of
// security vs network size (E1), the signature-suite ablation (E2), credit
// convergence around black holes and identity churn (E3), and the DAD
// collision probability vs hash width (E4). Simulation sweeps run through
// the public facade.

func init() {
	register("E1", "Derived: security overhead vs network size", runE1)
	register("E2", "Derived: signature suite ablation (Ed25519 vs RSA)", runE2)
	register("E3", "Derived: credit convergence and identity churn", runE3)
	register("E4", "Derived: address collision probability vs hash width", runE4)
}

func runE1(opt Options) []*trace.Table {
	sizes := []int{9, 16, 25}
	if opt.Quick {
		sizes = []int{9, 16}
	}
	t := trace.NewTable("E1: overhead and delivery vs network size (grid, 2 corner flows)",
		"nodes", "protocol", "PDR", "latency (s)", "ctrl bytes", "ctrl bytes/delivered", "sign", "verify")
	for _, n := range sizes {
		for _, secure := range []bool{false, true} {
			res := runSpec(opt, gridSpec(opt.Seed, n, secure,
				sbr6.WithFlows(cornerFlows(n, 500*time.Millisecond)...),
			))
			name := "baseline"
			if secure {
				name = "secure"
			}
			perDelivered := math.NaN()
			if res.Delivered > 0 {
				perDelivered = res.ControlBytes / float64(res.Delivered)
			}
			t.Addf(n, name, res.PDR, res.LatencyMean, res.ControlBytes, perDelivered,
				res.CryptoSign, res.CryptoVerify)
		}
	}
	return []*trace.Table{t}
}

func runE2(opt Options) []*trace.Table {
	t := trace.NewTable("E2: signature suite ablation (5-node chain, 1 flow)",
		"suite", "PDR", "ctrl bytes", "RREQ bytes @3 hops", "verify ops", "wall-clock verify us/route")

	suites := []struct {
		pub sbr6.Suite
		in  identity.Suite
	}{{sbr6.Ed25519, identity.SuiteEd25519}, {sbr6.RSA1024, identity.SuiteRSA1024}}
	for _, suite := range suites {
		res := runSpec(opt, lineSpec(opt.Seed, 5, true,
			sbr6.WithSuite(suite.pub),
			sbr6.WithFlows(sbr6.Flow{From: 1, To: 4, Interval: 500 * time.Millisecond, Size: 64}),
			sbr6.WithDuration(10*time.Second),
		))

		// Wall-clock verification cost of a 3-hop route record (4 sigs).
		rng := rand.New(rand.NewSource(opt.Seed))
		id, err := identity.New(suite.in, rng, "")
		if err != nil {
			panic(err)
		}
		msg := []byte("hop attestation probe")
		sig := id.Sign(msg)
		reps := 200
		if opt.Quick {
			reps = 50
		}
		start := time.Now()
		for i := 0; i < reps; i++ {
			for v := 0; v < 4; v++ {
				id.Pub.Verify(msg, sig)
			}
		}
		usPerRoute := float64(time.Since(start).Microseconds()) / float64(reps)

		// RREQ size with 3 hop attestations under this suite.
		sigN, pkN := sigSizes(opt.Seed, suite.in)
		rreqBytes := rreqSizeAtHops(3, sigN, pkN)

		t.Add(suite.in.String(), fmt.Sprintf("%.3f", res.PDR),
			trace.FormatFloat(res.ControlBytes), fmt.Sprint(rreqBytes),
			trace.FormatFloat(res.CryptoVerify), fmt.Sprintf("%.1f", usPerRoute))
	}

	note := trace.NewTable("E2b: note", "fact", "value")
	note.Add("simulated time is crypto-agnostic",
		"verification cost appears in wall-clock and byte columns; the DES clock does not model CPU time")
	return []*trace.Table{t, note}
}

func runE3(opt Options) []*trace.Table {
	// Windowed PDR with a central INSIDER black hole: it has a legitimate
	// CGA identity, relays discovery honestly (its attestations verify)
	// and silently drops only the data plane — the adversary the credit
	// mechanism exists for. Credits should recover delivery once probing
	// pins the hole; without credits the source keeps stumbling into it.
	windows := 8
	winSize := 5 * time.Second
	if opt.Quick {
		windows = 6
	}

	t := trace.NewTable("E3a: PDR per 5s window with one central insider black hole (grid 9)",
		"window", "secure w/o credits", "secure+credits")
	results := map[bool]*sbr6.Result{}
	for _, credits := range []bool{false, true} {
		results[credits] = runSpec(opt, gridSpec(opt.Seed, 9, true,
			sbr6.WithCredits(credits),
			sbr6.WithAdversaries(sbr6.BlackHole(4)),
			sbr6.WithFlows(cornerFlows(9, 400*time.Millisecond)...),
			sbr6.WithDuration(time.Duration(windows)*winSize),
			sbr6.WithWindows(winSize),
		))
	}
	for w := 0; w < windows; w++ {
		cells := []string{fmt.Sprintf("%d-%ds", w*5, (w+1)*5)}
		for _, credits := range []bool{false, true} {
			ws := results[credits].Windows
			if w < len(ws) {
				cells = append(cells, fmt.Sprintf("%.3f", ws[w].PDR()))
			} else {
				cells = append(cells, "-")
			}
		}
		t.Add(cells...)
	}

	// Identity churn: a punished black hole that resets its address should
	// not regain preferential treatment, because unknown identities start
	// at the low initial credit.
	churn := trace.NewTable("E3b: identity churn vs low initial credit",
		"metric", "value")
	nw := buildNet(gridSpec(opt.Seed, 9, true,
		sbr6.WithAdversaries(sbr6.IdentityChurner(4, 8*time.Second)),
		sbr6.WithFlows(cornerFlows(9, 400*time.Millisecond)...),
		sbr6.WithDuration(30*time.Second),
	))
	res := nw.Run()
	churner := nw.AdversaryState(4).(*attack.IdentityChurner)
	churn.Add("identity churns", fmt.Sprint(churner.Churns))
	churn.Add("PDR despite churn", fmt.Sprintf("%.3f", res.PDR))
	churn.Add("punishments applied", trace.FormatFloat(res.Metric("credit.punished")))
	churn.Add("probes concluded", trace.FormatFloat(res.Metric("probe.concluded")))
	return []*trace.Table{t, churn}
}

func runE4(opt Options) []*trace.Table {
	// Simulated collision probability among k random CGAs vs the birthday
	// approximation k(k-1)/2^(w+1), at reducible widths.
	t := trace.NewTable("E4: observed address collisions vs birthday bound",
		"bits", "identities", "pairs", "observed collisions", "expected (birthday)")

	rng := rand.New(rand.NewSource(opt.Seed))
	pub := make([]byte, 32)
	rng.Read(pub)

	k := 2000
	widths := []int{8, 12, 16, 20, 24}
	if opt.Quick {
		k = 500
		widths = []int{8, 12, 16}
	}
	for _, w := range widths {
		seen := make(map[uint64]int)
		collisions := 0
		for i := 0; i < k; i++ {
			id := cga.TruncatedID(pub, rng.Uint64(), w)
			collisions += seen[id]
			seen[id]++
		}
		pairs := float64(k) * float64(k-1) / 2
		expected := pairs / math.Exp2(float64(w))
		t.Add(fmt.Sprint(w), fmt.Sprint(k), fmt.Sprintf("%.0f", pairs),
			fmt.Sprint(collisions), fmt.Sprintf("%.2f", expected))
	}
	// The paper's 64-bit width for perspective.
	pairs := float64(k) * float64(k-1) / 2
	t.Add("64", fmt.Sprint(k), fmt.Sprintf("%.0f", pairs), "0 (by construction of H)",
		fmt.Sprintf("%.2e", pairs/math.Exp2(64)))
	return []*trace.Table{t}
}
