package experiments

import (
	"context"
	"fmt"
	"time"

	"sbr6"
	"sbr6/internal/core"
	"sbr6/internal/geom"
	"sbr6/internal/ipv6"
	"sbr6/internal/scenario"
	"sbr6/internal/sim"
	"sbr6/internal/trace"
	"sbr6/internal/wire"
)

// gridSpec declares an n-node grid scenario with tight timers through the
// public facade — the standard substrate of the sweep experiments. The
// walkthrough experiments that need packet transcripts or hand-built
// topologies (F2, F3a-c, E6) stay on the internal harness below.
func gridSpec(seed int64, n int, secure bool, extra ...sbr6.Option) *sbr6.Scenario {
	opts := []sbr6.Option{
		sbr6.WithSeed(seed),
		sbr6.WithNodes(n),
		sbr6.WithPlacement(sbr6.PlaceGrid),
		sbr6.WithFastTimers(),
		sbr6.WithWarmup(time.Second),
		sbr6.WithDuration(15 * time.Second),
		sbr6.WithCooldown(3 * time.Second),
	}
	if !secure {
		opts = append(opts, sbr6.WithBaseline())
	}
	sc, err := sbr6.NewScenario(append(opts, extra...)...)
	if err != nil {
		panic(err)
	}
	return sc
}

// lineSpec declares an n-node chain scenario (node 0 is the DNS end).
func lineSpec(seed int64, n int, secure bool, extra ...sbr6.Option) *sbr6.Scenario {
	return gridSpec(seed, n, secure, append([]sbr6.Option{sbr6.WithPlacement(sbr6.PlaceLine)}, extra...)...)
}

// runSpec executes one replicate through the facade Runner, streaming to
// the Options observer when one is set.
func runSpec(o Options, sc *sbr6.Scenario) *sbr6.Result {
	res, err := (&sbr6.Runner{Observer: o.Observer}).Run(context.Background(), sc)
	if err != nil {
		panic(err)
	}
	return res
}

// buildNet instantiates a spec for interactive driving.
func buildNet(sc *sbr6.Scenario) *sbr6.Network {
	nw, err := sc.Build()
	if err != nil {
		panic(err)
	}
	return nw
}

// fastProtocol returns protocol timers sized for simulation sweeps.
func fastProtocol(secure bool) core.Config {
	var cfg core.Config
	if secure {
		cfg = core.DefaultConfig()
	} else {
		cfg = core.BaselineConfig()
	}
	cfg.DAD.Timeout = 300 * time.Millisecond
	cfg.DiscoveryTimeout = 500 * time.Millisecond
	cfg.AckTimeout = 400 * time.Millisecond
	cfg.ResolveTimeout = 2 * time.Second
	return cfg
}

// gridConfig builds an n-node grid scenario with tight timers.
func gridConfig(seed int64, n int, secure bool) scenario.Config {
	side := 1
	for side*side < n {
		side++
	}
	cfg := scenario.DefaultConfig()
	cfg.Seed = seed
	cfg.N = n
	cfg.Placement = scenario.PlaceGrid
	cfg.Area = geom.Rect{W: 200 * float64(side), H: 200 * float64(side)}
	cfg.Protocol = fastProtocol(secure)
	cfg.DNS.CommitDelay = 300 * time.Millisecond
	cfg.Warmup = time.Second
	cfg.Duration = 15 * time.Second
	cfg.Cooldown = 3 * time.Second
	cfg.Flows = nil
	return cfg
}

// lineConfig builds an n-node chain scenario (node 0 is the DNS end).
func lineConfig(seed int64, n int, secure bool) scenario.Config {
	cfg := gridConfig(seed, n, secure)
	cfg.Placement = scenario.PlaceLine
	cfg.Spacing = 200
	return cfg
}

// cornerFlows returns CBR flows between opposite grid corners (and the two
// anti-diagonal corners for >=9 nodes), skipping the DNS node.
func cornerFlows(n int, interval time.Duration) []sbr6.Flow {
	side := 1
	for side*side < n {
		side++
	}
	flows := []sbr6.Flow{{From: 1, To: n - 1, Interval: interval, Size: 64}}
	if n >= 9 {
		flows = append(flows, sbr6.Flow{From: side - 1, To: n - side, Interval: interval, Size: 64})
	}
	return flows
}

// transcript records a packet trace across all nodes for the figure
// walkthrough experiments.
type transcript struct {
	rows []transcriptRow
}

type transcriptRow struct {
	at   sim.Time
	node string
	desc string
}

// tap is a pass-through Behavior that logs every packet a node receives.
type tap struct {
	tr   *transcript
	name string
}

// Intercept implements core.Behavior (always passes through).
func (t tap) Intercept(n *core.Node, pkt *wire.Packet, raw []byte) bool {
	t.tr.rows = append(t.tr.rows, transcriptRow{at: n.Sim().Now(), node: t.name, desc: describe(pkt)})
	return false
}

// DropForward implements core.Behavior.
func (tap) DropForward(*core.Node, *wire.Packet) bool { return false }

// describe renders a packet the way the paper's figures label messages.
func describe(pkt *wire.Packet) string {
	switch m := pkt.Msg.(type) {
	case *wire.AREQ:
		return fmt.Sprintf("AREQ(SIP=%s seq=%d DN=%q |RR|=%d)", short(m.SIP), m.Seq, m.DN, len(m.RR))
	case *wire.AREP:
		return fmt.Sprintf("AREP(SIP=%s |RR|=%d signed=%v)", short(m.SIP), len(m.RR), len(m.Sig) > 0)
	case *wire.DREP:
		return fmt.Sprintf("DREP(SIP=%s DN=%q)", short(m.SIP), m.DN)
	case *wire.RREQ:
		return fmt.Sprintf("RREQ(S=%s D=%s seq=%d |SRR|=%d)", short(m.SIP), short(m.DIP), m.Seq, len(m.SRR))
	case *wire.RREP:
		return fmt.Sprintf("RREP(S=%s D=%s seq=%d |RR|=%d)", short(m.SIP), short(m.DIP), m.Seq, len(m.RR))
	case *wire.CREP:
		return fmt.Sprintf("CREP(S'=%s S=%s D=%s |RR1|=%d |RR2|=%d)", short(m.S2IP), short(m.SIP), short(m.DIP), len(m.RRToS), len(m.RRToD))
	case *wire.RERR:
		return fmt.Sprintf("RERR(I=%s next=%s)", short(m.IIP), short(m.NIP))
	case *wire.Data:
		return fmt.Sprintf("DATA(flow=%d seq=%d %dB)", m.FlowID, m.Seq, len(m.Payload))
	case *wire.Ack:
		return fmt.Sprintf("ACK(flow=%d seq=%d)", m.FlowID, m.Seq)
	default:
		return pkt.Msg.Type().String()
	}
}

// rreqSizeAtHops returns the encoded size of a flooded secure RREQ with
// the given number of hop attestations and signature/key sizes.
func rreqSizeAtHops(hops, sigN, pkN int) int {
	a := ipv6.SiteLocal(0, 1)
	m := &wire.RREQ{SIP: a, DIP: ipv6.SiteLocal(0, 2), Seq: 1,
		SrcSig: make([]byte, sigN), SPK: make([]byte, pkN), Srn: 7}
	for i := 0; i < hops; i++ {
		m.SRR = append(m.SRR, wire.HopAttestation{IP: a, Sig: make([]byte, sigN), PK: make([]byte, pkN), Rn: 7})
	}
	return wire.EncodedSize(&wire.Packet{Src: a, Dst: ipv6.AllNodes, TTL: 64, Msg: m})
}

// short renders the last 16 bits of an address, enough to tell scripted
// nodes apart in a transcript.
func short(a ipv6.Addr) string {
	iid := a.InterfaceID()
	return fmt.Sprintf("..%04x", uint16(iid))
}

// table builds the transcript table, keeping at most limit rows (0 = all).
func (tr *transcript) table(title string, limit int) *trace.Table {
	t := trace.NewTable(title, "t", "node", "message")
	rows := tr.rows
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	for _, r := range rows {
		t.Add(r.at.String(), r.node, r.desc)
	}
	return t
}
