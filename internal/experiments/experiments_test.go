package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Seed: 1, Quick: true} }

func TestRegistryComplete(t *testing.T) {
	want := []string{"T1", "T2", "F1", "F2", "F3", "S1", "S2", "S3", "S4", "E1", "E2", "E3", "E4", "E5", "E6"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	got := map[string]bool{}
	for _, e := range all {
		got[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !got[id] {
			t.Fatalf("experiment %s missing", id)
		}
	}
	// Ordering: tables, figures, attacks, derived.
	if all[0].ID != "T1" || all[2].ID != "F1" || all[5].ID != "S1" || all[9].ID != "E1" {
		t.Fatalf("ordering wrong: %v", ids())
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("T1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("Z9"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// cell fetches a table cell by header name.
func cell(t *testing.T, tb interface {
	String() string
}, _ string) string {
	return tb.String()
}

func TestT1MessageSizes(t *testing.T) {
	tables := runT1(quickOpts())
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	// Every Table 1 message type appears.
	body := tables[0].String()
	for _, mt := range []string{"AREQ", "AREP", "DREP", "RREQ", "RREP", "CREP", "RERR"} {
		if !strings.Contains(body, mt) {
			t.Fatalf("T1 missing %s:\n%s", mt, body)
		}
	}
	// Growth table: secure strictly exceeds baseline at every hop count,
	// and rsa1024 exceeds ed25519.
	for _, row := range tables[1].Rows {
		base, _ := strconv.Atoi(row[1])
		ed, _ := strconv.Atoi(row[2])
		rsa, _ := strconv.Atoi(row[3])
		if !(base < ed && ed < rsa) {
			t.Fatalf("size ordering violated in row %v", row)
		}
	}
}

func TestT2CryptoCosts(t *testing.T) {
	tables := runT2(quickOpts())
	if len(tables) != 2 {
		t.Fatal("want 2 tables")
	}
	if len(tables[0].Rows) != 8 { // 2 suites x 4 ops
		t.Fatalf("T2 rows = %d", len(tables[0].Rows))
	}
}

func TestF1LayoutAndTakeover(t *testing.T) {
	tables := runF1(quickOpts())
	layout := tables[0].String()
	if !strings.Contains(layout, "fec0::/10") || !strings.Contains(layout, "true") {
		t.Fatalf("layout table wrong:\n%s", layout)
	}
	// Measured attempts must grow with width overall: compare the first
	// and last measured rows (the final row is the 64-bit extrapolation).
	rows := tables[1].Rows
	first, _ := strconv.Atoi(rows[0][2])
	last, _ := strconv.Atoi(rows[len(rows)-2][2])
	if first <= 0 || last <= 0 {
		t.Fatalf("attempts not recorded: %v", rows)
	}
	if last < first {
		t.Logf("note: wide-width attempts %d < narrow %d (variance)", last, first)
	}
}

func TestF2DADWalkthrough(t *testing.T) {
	tables := runF2(quickOpts())
	outcome := tables[1].String()
	for _, want := range []string{"owner kept address", "true", "printer-r"} {
		if !strings.Contains(outcome, want) {
			t.Fatalf("F2 outcome missing %q:\n%s", want, outcome)
		}
	}
	walk := tables[0].String()
	for _, msg := range []string{"AREQ", "AREP", "DREP"} {
		if !strings.Contains(walk, msg) {
			t.Fatalf("F2 walkthrough missing %s:\n%s", msg, walk)
		}
	}
	// Scaling table rows all configured fully.
	for _, row := range tables[2].Rows {
		parts := strings.Split(row[4], "/")
		if parts[0] != parts[1] {
			t.Fatalf("DAD sweep with failures: %v", row)
		}
	}
}

func TestF3RouteDiscoveryWalkthrough(t *testing.T) {
	tables := runF3(quickOpts())
	if !strings.Contains(tables[0].String(), "RREQ") || !strings.Contains(tables[0].String(), "RREP") {
		t.Fatalf("F3a missing discovery messages:\n%s", tables[0].String())
	}
	if !strings.Contains(tables[1].String(), "CREP") {
		t.Fatalf("F3b missing CREP:\n%s", tables[1].String())
	}
	facts := tables[2].String()
	if !strings.Contains(facts, "found=true") {
		t.Fatalf("F3 routes not found:\n%s", facts)
	}
}

func TestS1DNSImpersonation(t *testing.T) {
	tables := runS1(quickOpts())
	rows := tables[0].Rows
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// baseline poisoned=true, secure poisoned=false.
	if rows[0][2] != "true" {
		t.Fatalf("baseline not poisoned: %v", rows[0])
	}
	if rows[1][2] != "false" {
		t.Fatalf("secure poisoned: %v", rows[1])
	}
	replay := tables[1].Rows
	if replay[0][1] != "true" || replay[1][1] != "false" {
		t.Fatalf("replay table wrong: %v", replay)
	}
}

func TestS2BlackHoleShape(t *testing.T) {
	tables := runS2(quickOpts())
	rows := tables[0].Rows
	parse := func(s string) float64 {
		v, _ := strconv.ParseFloat(s, 64)
		return v
	}
	// Row 0: no attackers — all variants deliver.
	for c := 1; c <= 3; c++ {
		if parse(rows[0][c]) < 0.9 {
			t.Fatalf("clean network PDR too low: %v", rows[0])
		}
	}
	// With attackers: baseline collapses, secure+credits stays usable.
	last := rows[len(rows)-1]
	if parse(last[1]) > 0.3 {
		t.Fatalf("baseline should collapse under black holes: %v", last)
	}
	if parse(last[3]) < 0.5 {
		t.Fatalf("secure+credits should survive: %v", last)
	}
	if parse(last[3]) <= parse(last[1]) {
		t.Fatalf("defense ordering violated: %v", last)
	}
}

func TestS3ForgeReplayTable(t *testing.T) {
	tables := runS3(quickOpts())
	body := tables[0].String()
	if strings.Contains(body, "ACCEPTED (defense failed)") {
		t.Fatalf("secure protocol accepted a forgery:\n%s", body)
	}
	for _, want := range []string{"AREP", "DREP", "RREP", "CREP", "replayed"} {
		if !strings.Contains(body, want) {
			t.Fatalf("S3 missing %q:\n%s", want, body)
		}
	}
	// The impersonation row must show baseline stealing and secure not.
	if !strings.Contains(body, "stolen=") {
		t.Fatalf("impersonation outcome missing:\n%s", body)
	}
}

func TestS4RERRSpam(t *testing.T) {
	tables := runS4(quickOpts())
	rows := tables[0].Rows
	// Secure row flags the spammer.
	secureRow := rows[1]
	if secureRow[4] == "0" {
		t.Fatalf("spammer never flagged: %v", secureRow)
	}
	forge := tables[1].String()
	if !strings.Contains(forge, "false (CGA binding fails)") {
		t.Fatalf("forged RERR verdict missing:\n%s", forge)
	}
}

func TestE1OverheadShape(t *testing.T) {
	tables := runE1(quickOpts())
	rows := tables[0].Rows
	// Pairs of rows: baseline then secure per size. Secure ctrl bytes and
	// crypto ops must exceed baseline at every size.
	for i := 0; i+1 < len(rows); i += 2 {
		base, sec := rows[i], rows[i+1]
		bb, _ := strconv.ParseFloat(base[4], 64)
		sb, _ := strconv.ParseFloat(sec[4], 64)
		if sb <= bb {
			t.Fatalf("secure ctrl bytes not larger at n=%s: %v vs %v", base[0], sb, bb)
		}
		if base[6] != "0" || sec[6] == "0" {
			t.Fatalf("crypto op columns wrong: %v / %v", base, sec)
		}
	}
}

func TestE2SuiteAblation(t *testing.T) {
	tables := runE2(quickOpts())
	rows := tables[0].Rows
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	edBytes, _ := strconv.Atoi(rows[0][3])
	rsaBytes, _ := strconv.Atoi(rows[1][3])
	if rsaBytes <= edBytes {
		t.Fatalf("RSA RREQ should be larger: %d vs %d", rsaBytes, edBytes)
	}
	// Both suites must actually deliver.
	for _, row := range rows {
		pdr, _ := strconv.ParseFloat(row[1], 64)
		if pdr < 0.9 {
			t.Fatalf("suite %s PDR = %v", row[0], pdr)
		}
	}
}

func TestE3CreditConvergence(t *testing.T) {
	tables := runE3(quickOpts())
	rows := tables[0].Rows
	parse := func(s string) float64 {
		v, _ := strconv.ParseFloat(s, 64)
		return v
	}
	// By the last window, credits must beat no-credits.
	last := rows[len(rows)-1]
	if parse(last[2]) <= parse(last[1]) {
		t.Logf("windows:\n%s", tables[0].String())
		t.Fatalf("credits did not out-deliver no-credits in final window: %v", last)
	}
	churn := tables[1].String()
	if !strings.Contains(churn, "identity churns") {
		t.Fatalf("churn table missing:\n%s", churn)
	}
}

func TestE5CacheAblation(t *testing.T) {
	tables := runE5(quickOpts())
	rows := tables[0].Rows
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	withCache, _ := strconv.ParseFloat(rows[0][2], 64)
	without, _ := strconv.ParseFloat(rows[1][2], 64)
	if withCache >= without {
		t.Fatalf("cache should reduce discovery attempts: %v vs %v", withCache, without)
	}
	creps, _ := strconv.ParseFloat(rows[0][3], 64)
	if creps == 0 {
		t.Fatal("no CREPs served with cache enabled")
	}
	if rows[1][3] != "0" {
		t.Fatal("CREPs served with cache disabled")
	}
}

func TestE6DADLossShape(t *testing.T) {
	tables := runE6(quickOpts())
	rows := tables[0].Rows
	parse := func(s string) float64 {
		v, _ := strconv.ParseFloat(s, 64)
		return v
	}
	// No loss -> no false successes, at any distance.
	if parse(rows[0][1]) != 0 || parse(rows[0][2]) != 0 {
		t.Fatalf("false successes on a clean channel: %v", rows[0])
	}
	// Heavy loss -> strictly worse than no loss somewhere.
	last := rows[len(rows)-1]
	if parse(last[1])+parse(last[2]) == 0 {
		t.Fatalf("no false successes under heavy loss: %v", last)
	}
}

func TestE4CollisionBirthday(t *testing.T) {
	tables := runE4(quickOpts())
	rows := tables[0].Rows
	// At 8 bits with 500 ids, collisions are guaranteed and large; the
	// observed count must be within a factor ~2 of the birthday estimate.
	obs, _ := strconv.ParseFloat(rows[0][3], 64)
	exp, _ := strconv.ParseFloat(rows[0][4], 64)
	if obs == 0 {
		t.Fatalf("no collisions at 8 bits: %v", rows[0])
	}
	if obs < exp/2 || obs > exp*2 {
		t.Fatalf("collisions %v far from birthday estimate %v", obs, exp)
	}
}
