package verifycache

import (
	"math/rand"
	"testing"

	"sbr6/internal/cga"
	"sbr6/internal/identity"
	"sbr6/internal/ipv6"
)

func newIdent(t *testing.T, seed int64) *identity.Identity {
	t.Helper()
	id, err := identity.New(identity.SuiteEd25519, rand.New(rand.NewSource(seed)), "")
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestCGAMemoAgreesWithDirect(t *testing.T) {
	c := New(64)
	id := newIdent(t, 1)
	other := newIdent(t, 2)

	cases := []struct {
		addr ipv6.Addr
		pk   []byte
		rn   uint64
	}{
		{id.Addr, id.Pub.Bytes(), id.Rn},                       // valid
		{id.Addr, other.Pub.Bytes(), id.Rn},                    // wrong key
		{id.Addr, id.Pub.Bytes(), id.Rn + 1},                   // wrong modifier
		{other.Addr, id.Pub.Bytes(), id.Rn},                    // wrong address
		{ipv6.MustParse("2001:db8::1"), id.Pub.Bytes(), id.Rn}, // not site-local
	}
	for i, tc := range cases {
		want := cga.Verify(tc.addr, tc.pk, tc.rn)
		if got := c.VerifyCGA(tc.addr, tc.pk, tc.rn); got != want {
			t.Fatalf("case %d: first (miss) result %v, want %v", i, got, want)
		}
		if got := c.VerifyCGA(tc.addr, tc.pk, tc.rn); got != want {
			t.Fatalf("case %d: second (hit) result %v, want %v", i, got, want)
		}
	}
	st := c.Stats()
	if st.CGAMisses != uint64(len(cases)) || st.CGAHits != uint64(len(cases)) {
		t.Fatalf("stats = %+v, want %d misses and %d hits", st, len(cases), len(cases))
	}
}

func TestSigMemoAgreesWithDirect(t *testing.T) {
	c := New(64)
	id := newIdent(t, 3)
	msg := []byte("the message")
	sig := id.Sign(msg)

	if !c.VerifySig(id.Pub, msg, sig) || !c.VerifySig(id.Pub, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	// A cached positive for (pk, msg, sig) must not leak to any tampered
	// variant: each differing tuple is its own key.
	bad := append([]byte(nil), sig...)
	bad[0] ^= 1
	if c.VerifySig(id.Pub, msg, bad) {
		t.Fatal("tampered signature accepted")
	}
	if c.VerifySig(id.Pub, []byte("the message2"), sig) {
		t.Fatal("signature accepted over different message")
	}
	if c.VerifySig(newIdent(t, 4).Pub, msg, sig) {
		t.Fatal("signature accepted under different key")
	}
	// And the cached negatives stay negative.
	if c.VerifySig(id.Pub, msg, bad) {
		t.Fatal("cached negative flipped")
	}
	st := c.Stats()
	if st.SigHits != 2 || st.SigMisses != 4 {
		t.Fatalf("stats = %+v, want 2 hits / 4 misses", st)
	}
}

func TestChainMemo(t *testing.T) {
	c := New(64)
	d := NewChainDigest()
	d.Bytes([]byte("chain"))
	k := d.Key()

	if _, _, ok := c.ChainLookup(k); ok {
		t.Fatal("phantom hit on empty cache")
	}
	stored := errChain("nope")
	c.ChainStore(k, stored, 5)
	err, verifies, ok := c.ChainLookup(k)
	if !ok || err != stored || verifies != 5 {
		t.Fatalf("lookup = (%v, %d, %v)", err, verifies, ok)
	}
	// nil error (accepted chain) round-trips too.
	d2 := NewChainDigest()
	d2.Bytes([]byte("chain2"))
	c.ChainStore(d2.Key(), nil, 3)
	if err, verifies, ok := c.ChainLookup(d2.Key()); !ok || err != nil || verifies != 3 {
		t.Fatalf("nil-error lookup = (%v, %d, %v)", err, verifies, ok)
	}
}

type errChain string

func (e errChain) Error() string { return string(e) }

// Re-storing an existing key must replace the entry cleanly: Len stays
// bounded, the latest value wins, and later evictions never remove the
// live map entry via an orphaned list node.
func TestChainStoreReplacesExistingKey(t *testing.T) {
	c := New(2)
	d := NewChainDigest()
	d.Bytes([]byte("dup"))
	k := d.Key()
	c.ChainStore(k, errChain("first"), 1)
	c.ChainStore(k, errChain("second"), 2)
	if c.Len() != 1 {
		t.Fatalf("len = %d after double store, want 1", c.Len())
	}
	if err, verifies, ok := c.ChainLookup(k); !ok || err.Error() != "second" || verifies != 2 {
		t.Fatalf("lookup = (%v, %d, %v), want latest value", err, verifies, ok)
	}
	// Fill past capacity; the replaced key was just used, so it must
	// survive one eviction and still resolve through the map.
	d2 := NewChainDigest()
	d2.Bytes([]byte("other1"))
	c.ChainStore(d2.Key(), nil, 0)
	d3 := NewChainDigest()
	d3.Bytes([]byte("other2"))
	c.ChainStore(d3.Key(), nil, 0)
	if c.Len() != 2 {
		t.Fatalf("len = %d after evictions, want cap 2", c.Len())
	}
	if _, _, ok := c.ChainLookup(d3.Key()); !ok {
		t.Fatal("newest entry missing after eviction")
	}
}

func TestLRUBoundAndEviction(t *testing.T) {
	c := New(4)
	id := newIdent(t, 5)
	keys := make([]ipv6.Addr, 6)
	for i := range keys {
		keys[i] = ipv6.SiteLocal(0, uint64(i+1))
		c.VerifyCGA(keys[i], id.Pub.Bytes(), 7)
	}
	if c.Len() != 4 {
		t.Fatalf("len = %d, want cap 4", c.Len())
	}
	if c.Stats().Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", c.Stats().Evictions)
	}
	// The two oldest entries are gone (miss), the newest four are hits.
	base := c.Stats()
	for _, a := range keys[2:] {
		c.VerifyCGA(a, id.Pub.Bytes(), 7)
	}
	if got := c.Stats().CGAHits - base.CGAHits; got != 4 {
		t.Fatalf("hits on recent entries = %d, want 4", got)
	}
	// keys[2] was just touched; inserting two more must evict keys[3]
	// before keys[2] (LRU order, not FIFO).
	c.VerifyCGA(keys[2], id.Pub.Bytes(), 7)
	c.VerifyCGA(keys[0], id.Pub.Bytes(), 7)
	c.VerifyCGA(keys[1], id.Pub.Bytes(), 7)
	base = c.Stats()
	c.VerifyCGA(keys[2], id.Pub.Bytes(), 7)
	if c.Stats().CGAHits == base.CGAHits {
		t.Fatal("recently used entry was evicted before older ones")
	}
}

func TestNilCacheComputesDirectly(t *testing.T) {
	var c *Cache
	id := newIdent(t, 6)
	if !c.VerifyCGA(id.Addr, id.Pub.Bytes(), id.Rn) {
		t.Fatal("nil cache rejected a valid binding")
	}
	msg := []byte("m")
	if !c.VerifySig(id.Pub, msg, id.Sign(msg)) {
		t.Fatal("nil cache rejected a valid signature")
	}
	if _, _, ok := c.ChainLookup(Key{}); ok {
		t.Fatal("nil cache reported a chain hit")
	}
	c.ChainStore(Key{}, nil, 1) // must not panic
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Fatal("nil cache reported state")
	}
}

// Length-prefixing means adjacent variable-length fields can never alias:
// ("ab","c") and ("a","bc") must produce different keys even though their
// concatenation is identical.
func TestDigestFieldBoundaries(t *testing.T) {
	d1 := NewChainDigest()
	d1.Bytes([]byte("ab"))
	d1.Bytes([]byte("c"))
	d2 := NewChainDigest()
	d2.Bytes([]byte("a"))
	d2.Bytes([]byte("bc"))
	if d1.Key() == d2.Key() {
		t.Fatal("field boundaries alias")
	}
	// Different domain tags never alias either.
	da := NewDigest(0x01)
	da.Bytes([]byte("x"))
	db := NewDigest(0x02)
	db.Bytes([]byte("x"))
	if da.Key() == db.Key() {
		t.Fatal("domain tags alias")
	}
}

func TestStatsAggregate(t *testing.T) {
	a := Stats{CGAHits: 1, SigMisses: 2, ChainHits: 3, Evictions: 4}
	b := Stats{CGAHits: 10, SigHits: 5, ChainMisses: 6}
	a.Add(b)
	if a.CGAHits != 11 || a.SigHits != 5 || a.SigMisses != 2 || a.ChainHits != 3 || a.ChainMisses != 6 || a.Evictions != 4 {
		t.Fatalf("aggregate = %+v", a)
	}
	if a.Hits() != 11+5+3 || a.Misses() != 2+6 {
		t.Fatalf("totals: hits=%d misses=%d", a.Hits(), a.Misses())
	}
}
