// Package verifycache memoizes the two primitive checks behind every
// verification procedure in the paper — the CGA binding test
// addr == H(PK, rn) (Sections 3.1/3.3 check (i)) and the signature test
// (check (ii)) — plus whole route-record chains, in one bounded per-node
// LRU.
//
// Why this is safe under the paper's adversary model: both checks are pure
// functions of their full input. Cache keys are SHA-256 digests over every
// byte the check reads (domain-separated per check kind), so a lookup can
// only hit when the address, key, modifier, message and signature are all
// identical to an earlier check — in which case recomputing would return
// the same verdict. An adversary who wants the cache to return a stale
// "valid" for forged content needs a SHA-256 collision; replaying an old
// valid message hits the cache but is exactly as valid as it was the first
// time (replay defense stays where it belongs, in the challenge/sequence
// fields that are part of the signed content and therefore part of the
// key). Negative results are cached too: re-presenting a rejected forgery
// costs one digest instead of one signature verification, which blunts
// rather than enables flooding with invalid traffic.
//
// What is deliberately NOT memoizable: anything keyed by less than the
// full verified content (e.g. "this address was fine recently"), and any
// check whose verdict depends on mutable local state (pending challenges,
// route caches, credit standing). Those stay outside this package.
//
// The cache is per node and the simulator drives each node from a single
// goroutine, so there is no locking; parallel batch replicates build
// disjoint caches.
package verifycache

import (
	"crypto/sha256"
	"encoding/binary"

	"sbr6/internal/bindtable"
	"sbr6/internal/identity"
	"sbr6/internal/ipv6"
)

// DefaultEntries bounds the cache when the owner does not choose a size.
// Entries are ~100 bytes, so the default costs at most ~1.6 MB per node
// and in practice far less: the map fills only with content the node
// actually verified.
const DefaultEntries = 16384

// Key is a content digest identifying one memoized check.
type Key [sha256.Size]byte

// Domain-separation tags; hashed into the key so the three check kinds can
// never alias.
const (
	tagCGA   = 0x01
	tagSig   = 0x02
	tagChain = 0x03
)

// Stats counts cache traffic. Hits are primitive operations avoided;
// misses are operations actually performed through the cache. A chain hit
// stands for the whole sequence of per-hop checks the chain would redo.
type Stats struct {
	CGAHits, CGAMisses     uint64
	SigHits, SigMisses     uint64
	ChainHits, ChainMisses uint64
	Evictions              uint64
}

// Hits sums hits over all check kinds.
func (s Stats) Hits() uint64 { return s.CGAHits + s.SigHits + s.ChainHits }

// Misses sums misses over all check kinds.
func (s Stats) Misses() uint64 { return s.CGAMisses + s.SigMisses + s.ChainMisses }

// Add accumulates other into s (for aggregating per-node caches).
func (s *Stats) Add(other Stats) {
	s.CGAHits += other.CGAHits
	s.CGAMisses += other.CGAMisses
	s.SigHits += other.SigHits
	s.SigMisses += other.SigMisses
	s.ChainHits += other.ChainHits
	s.ChainMisses += other.ChainMisses
	s.Evictions += other.Evictions
}

type entry struct {
	key Key
	ok  bool
	// Chain entries carry the memoized error and how many logical
	// signature verifications the full chain walk performed, so a hit can
	// replay the verifier's accounting exactly.
	err      error
	verifies int

	prev, next *entry
}

// Cache is the bounded LRU. All methods are nil-receiver safe: a nil
// *Cache computes every check directly and records nothing, which is how
// "cache off" runs share the same call sites.
type Cache struct {
	cap   int
	m     map[Key]*entry
	head  *entry // most recently used
	tail  *entry // least recently used
	stats Stats

	// shared, when non-nil, is the cross-node binding table consulted
	// beneath the node-local memo: a CGA miss here may still be a hit
	// there, because another node on the same event loop already
	// computed the identical binding. Signature and chain checks stay
	// purely node-local — their content (challenges, sequence numbers)
	// rarely repeats across nodes, so sharing them would buy nothing.
	shared *bindtable.Table
}

// New creates a cache bounded to capacity entries (DefaultEntries when
// capacity <= 0).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultEntries
	}
	return &Cache{cap: capacity, m: make(map[Key]*entry)}
}

// Len reports the number of memoized checks.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	return len(c.m)
}

// Stats returns a copy of the traffic counters (zero for a nil cache).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return c.stats
}

// SetShared attaches the simulation- (or region-) wide binding table
// this cache consults on CGA misses. CGAMisses keeps counting local
// misses either way; how many of those became primitive computations
// versus cross-node hits is the table's own Stats' business.
func (c *Cache) SetShared(t *bindtable.Table) {
	if c == nil {
		return
	}
	c.shared = t
}

// --- LRU plumbing ---

func (c *Cache) lookup(k Key) (*entry, bool) {
	e, ok := c.m[k]
	if ok {
		c.moveToFront(e)
	}
	return e, ok
}

func (c *Cache) insert(e *entry) {
	// Replacing an existing key must unlink its old node first, or the
	// orphan would later be evicted and delete the live map entry.
	if old, ok := c.m[e.key]; ok {
		c.unlink(old)
		delete(c.m, old.key)
	}
	c.m[e.key] = e
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
	if len(c.m) > c.cap {
		victim := c.tail
		c.unlink(victim)
		delete(c.m, victim.key)
		c.stats.Evictions++
	}
}

func (c *Cache) moveToFront(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// --- memoized checks ---

// VerifyCGA reports whether addr's interface ID equals H(pk, rn),
// memoizing the result under a digest of (addr, pk, rn). Local misses
// are served through the shared binding table when one is attached
// (another node may have computed the identical binding already); a
// nil table computes directly.
func (c *Cache) VerifyCGA(addr ipv6.Addr, pk []byte, rn uint64) bool {
	if c == nil {
		return (*bindtable.Table)(nil).Verify(addr, pk, rn)
	}
	d := NewDigest(tagCGA)
	d.Bytes(addr[:])
	d.Bytes(pk)
	d.U64(rn)
	k := d.Key()
	if e, ok := c.lookup(k); ok {
		c.stats.CGAHits++
		return e.ok
	}
	c.stats.CGAMisses++
	ok := c.shared.Verify(addr, pk, rn)
	c.insert(&entry{key: k, ok: ok})
	return ok
}

// VerifySig reports whether sig is pk's valid signature over msg,
// memoizing under a digest of (pk, msg, sig).
func (c *Cache) VerifySig(pk identity.PublicKey, msg, sig []byte) bool {
	if c == nil {
		return pk.Verify(msg, sig)
	}
	d := NewDigest(tagSig)
	d.Bytes(pk.Bytes())
	d.Bytes(msg)
	d.Bytes(sig)
	k := d.Key()
	if e, ok := c.lookup(k); ok {
		c.stats.SigHits++
		return e.ok
	}
	c.stats.SigMisses++
	ok := pk.Verify(msg, sig)
	c.insert(&entry{key: k, ok: ok})
	return ok
}

// ChainLookup returns the memoized verdict for a whole verified chain
// (route-record walk): the stored error, how many logical signature
// verifications the original walk counted, and whether the key was
// present.
func (c *Cache) ChainLookup(k Key) (err error, verifies int, ok bool) {
	if c == nil {
		return nil, 0, false
	}
	e, present := c.lookup(k)
	if !present {
		c.stats.ChainMisses++
		return nil, 0, false
	}
	c.stats.ChainHits++
	return e.err, e.verifies, true
}

// ChainStore memoizes a chain verdict under k. verifies is the number of
// logical signature verifications the walk performed, replayed into the
// verifier's counters on a later hit so cached and uncached runs account
// identically.
func (c *Cache) ChainStore(k Key, err error, verifies int) {
	if c == nil {
		return
	}
	c.insert(&entry{key: k, err: err, verifies: verifies})
}

// --- key construction ---

// Digest builds a cache key over a sequence of fields. Variable-length
// fields are length-prefixed so adjacent fields can never alias
// ("ab"+"c" vs "a"+"bc"), and every digest starts with a kind tag.
type Digest struct {
	buf []byte
}

// NewDigest starts a key over the given domain tag.
func NewDigest(tag byte) *Digest { return &Digest{buf: []byte{tag}} }

// NewChainDigest starts a chain-kind key. The owning layer hashes in the
// full content its chain walk reads (core's route-record key covers the
// source identity, sequence number and every hop attestation).
func NewChainDigest() *Digest { return NewDigest(tagChain) }

// Bytes appends a length-prefixed variable-length field.
func (d *Digest) Bytes(b []byte) {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(b)))
	d.buf = append(d.buf, n[:]...)
	d.buf = append(d.buf, b...)
}

// U64 appends a fixed-width 64-bit field.
func (d *Digest) U64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	d.buf = append(d.buf, b[:]...)
}

// U32 appends a fixed-width 32-bit field.
func (d *Digest) U32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	d.buf = append(d.buf, b[:]...)
}

// Key finalizes the digest.
func (d *Digest) Key() Key { return Key(sha256.Sum256(d.buf)) }
