package verifycache_test

// Cross-configuration differential suite: the verification cache must be a
// pure memoization. For every scenario in the matrix and every seed, a run
// with the per-node cache enabled must produce a Result byte-for-byte
// identical to the same run with the cache disabled — same deliveries,
// same route choices, same rejection counters, same crypto.verify
// accounting — while the cache's own stats prove the primitive operation
// count actually dropped. The matrix deliberately includes adversaries
// (black holes forging cached replies, RERR spammers, a fake DNS, a gray
// hole) so that "every attack detected without the cache is detected with
// it" is checked on full runs, not just unit fixtures.
//
// This mirrors internal/radio/equivalence_test.go, which plays the same
// role for the spatial-grid medium.

import (
	"reflect"
	"testing"
	"time"

	"sbr6/internal/attack"
	"sbr6/internal/core"
	"sbr6/internal/scenario"
	"sbr6/internal/verifycache"
)

func fastTimers(cfg *scenario.Config) {
	cfg.Protocol.DAD.Timeout = 300 * time.Millisecond
	cfg.Protocol.DiscoveryTimeout = 500 * time.Millisecond
	cfg.Protocol.AckTimeout = 400 * time.Millisecond
	cfg.Protocol.ResolveTimeout = 2 * time.Second
	cfg.DNS.CommitDelay = 300 * time.Millisecond
	cfg.BootStagger = 300 * time.Millisecond
	cfg.Warmup = time.Second
	cfg.Cooldown = 2 * time.Second
}

// equivalenceMatrix mirrors the repository's example scenarios: a clean
// quickstart network, the battlefield insider attack, and an adversarial
// mobile network under loss.
func equivalenceMatrix() map[string]func() scenario.Config {
	return map[string]func() scenario.Config{
		"quickstart": func() scenario.Config {
			cfg := scenario.DefaultConfig()
			fastTimers(&cfg)
			cfg.N = 25
			cfg.Placement = scenario.PlaceGrid
			cfg.Duration = 8 * time.Second
			cfg.Flows = []scenario.Flow{
				{From: 1, To: 24, Interval: 500 * time.Millisecond, Size: 64},
				{From: 7, To: 18, Interval: 700 * time.Millisecond, Size: 48},
			}
			return cfg
		},
		"battlefield": func() scenario.Config {
			cfg := scenario.DefaultConfig()
			fastTimers(&cfg)
			cfg.N = 25
			cfg.Placement = scenario.PlaceGrid
			cfg.Duration = 10 * time.Second
			cfg.Radio.LossRate = 0.02
			cfg.WindowSize = 2 * time.Second
			cfg.Behaviors = map[int]core.Behavior{
				11: &attack.BlackHole{},
				12: &attack.BlackHole{ForgeCacheReplies: true},
				13: &attack.RERRSpammer{},
			}
			cfg.Flows = []scenario.Flow{
				{From: 1, To: 24, Interval: 500 * time.Millisecond, Size: 64},
				{From: 4, To: 20, Interval: 500 * time.Millisecond, Size: 64},
				{From: 21, To: 3, Interval: 500 * time.Millisecond, Size: 64},
			}
			return cfg
		},
		"adversarial": func() scenario.Config {
			cfg := scenario.DefaultConfig()
			fastTimers(&cfg)
			cfg.N = 30
			cfg.Placement = scenario.PlaceUniform
			cfg.Area.W, cfg.Area.H = 1200, 1200
			cfg.Duration = 10 * time.Second
			cfg.Radio.LossRate = 0.05
			cfg.Mobility = scenario.MobilitySpec{
				Waypoint: true, MinSpeed: 1, MaxSpeed: 10, Pause: time.Second,
			}
			cfg.Names = map[int]string{5: "server"}
			cfg.Behaviors = map[int]core.Behavior{
				2: &attack.FakeDNS{},
				9: &attack.GrayHole{P: 0.5},
			}
			cfg.Flows = []scenario.Flow{
				{From: 1, To: 14, Interval: 500 * time.Millisecond, Size: 64},
				{From: 8, To: 22, Interval: 600 * time.Millisecond, Size: 64},
			}
			return cfg
		},
	}
}

// runWith builds and runs one configuration with the verification cache
// enabled or disabled, returning the result plus the aggregated per-node
// cache stats.
func runWith(t *testing.T, mk func() scenario.Config, seed int64, cached bool) (*scenario.Result, verifycache.Stats) {
	t.Helper()
	cfg := mk()
	cfg.Seed = seed
	if cached {
		cfg.Protocol.VerifyCache = 0 // default-on
	} else {
		cfg.Protocol.VerifyCache = -1
	}
	sc, err := scenario.Build(cfg)
	if err != nil {
		t.Fatalf("build (cached=%v, seed=%d): %v", cached, seed, err)
	}
	res := sc.Run()
	var stats verifycache.Stats
	for _, n := range sc.Nodes {
		s := n.VerifyCacheStats()
		stats.Add(s)
	}
	return res, stats
}

// detectionCounters are the per-run signals that an attack was noticed
// and neutralized; the differential suite requires them untouched by the
// cache and checks the attack scenarios actually exercise some of them
// (so the equality is not vacuous).
var detectionCounters = []string{
	"rreq.rejected", "rrep.rejected", "crep.rejected", "rerr.rejected",
	"dns.answer_rejected", "dad.arep_rejected", "dad.drep_rejected",
	"rerr.spammer_flagged", "probe.concluded", "credit.punished",
}

func TestVerifyCacheEquivalentToDirect(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2] // keep the -race CI lap affordable
	}
	var totalHits, totalLogical, totalPrimitive uint64
	detections := map[string]float64{}
	for name, mk := range equivalenceMatrix() {
		t.Run(name, func(t *testing.T) {
			for _, seed := range seeds {
				direct, directStats := runWith(t, mk, seed, false)
				cached, cachedStats := runWith(t, mk, seed, true)
				if directStats != (verifycache.Stats{}) {
					t.Fatalf("seed %d: cache-off run recorded cache traffic: %+v", seed, directStats)
				}
				if !reflect.DeepEqual(direct, cached) {
					t.Errorf("seed %d: cached and direct runs diverged:\ndirect: %v\ncached: %v",
						seed, direct, cached)
				}
				for _, c := range detectionCounters {
					d, g := direct.Metrics.Get(c), cached.Metrics.Get(c)
					if d != g {
						t.Errorf("seed %d: detection counter %q: direct %v, cached %v", seed, c, d, g)
					}
					detections[c] += g
				}
				totalHits += cachedStats.Hits()
				totalLogical += uint64(cached.CryptoVerify)
				totalPrimitive += cachedStats.SigMisses
			}
		})
	}

	// The equality above must not be vacuous: the adversarial scenarios
	// must have produced detections, and the cache must have actually
	// absorbed work. Every signature verification flows through the memo,
	// so primitives-with-cache = SigMisses and primitives-without-cache =
	// the logical crypto.verify count.
	if totalHits == 0 {
		t.Fatal("cache recorded no hits across the whole matrix")
	}
	if totalPrimitive >= totalLogical {
		t.Fatalf("crypto op count did not drop: %d primitive vs %d logical verifications",
			totalPrimitive, totalLogical)
	}
	var detected float64
	for _, c := range []string{"crep.rejected", "rerr.spammer_flagged", "dns.answer_rejected", "probe.concluded"} {
		detected += detections[c]
	}
	if detected == 0 {
		t.Fatal("attack matrix produced no detections; equality check is vacuous")
	}
}
