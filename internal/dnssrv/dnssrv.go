// Package dnssrv implements the MANET's single security anchor: the IPv6
// DNS server of Sections 3.1–3.2. It keeps (domain name, IP) bindings —
// pre-provisioned for permanent servers, first-come-first-served for
// online registrants — piggy-backs name conflicts onto secure DAD via
// signed DREPs, answers lookups with signed responses, and lets an address
// owner re-bind its name to a new CGA address after a challenge/response
// that proves possession of the key behind both addresses.
//
// The server is a transport-agnostic state machine: handlers consume
// decoded messages and return the reply message (or nil); the owning node
// does the routing.
package dnssrv

import (
	"math/rand"
	"time"

	"sbr6/internal/identity"
	"sbr6/internal/ipv6"
	"sbr6/internal/ndp"
	"sbr6/internal/sim"
	"sbr6/internal/trace"
	"sbr6/internal/wire"
)

// Record is one (domain name, IP) binding.
type Record struct {
	Name      string
	IP        ipv6.Addr
	Permanent bool // pre-provisioned before network formation
}

// Config tunes the server.
type Config struct {
	// CommitDelay is how long an online registration stays pending so that
	// warn-AREPs can cancel it (the paper's "keep a copy of the ch ... for
	// a while").
	CommitDelay time.Duration
	// Suite is the signature suite hosts use (needed to parse their keys).
	Suite identity.Suite
}

// DefaultConfig matches the DAD objection window.
func DefaultConfig() Config {
	return Config{CommitDelay: 3 * time.Second, Suite: identity.SuiteEd25519}
}

type pendingReg struct {
	name  string
	sip   ipv6.Addr
	ch    uint64
	timer *sim.Timer
}

// Server is the DNS server state machine.
type Server struct {
	// Verifier, when set by the owning node, routes the server's CGA
	// and signature checks through that node's memoized verification
	// path (verify cache and shared binding table) so their cost lands
	// in the same Stats as every other check. nil computes directly —
	// historically these checks bypassed the memo entirely, which made
	// them invisible to cache accounting and to the cross-node dedup.
	Verifier ndp.Verifier

	clock   ndp.Clock
	rng     *rand.Rand
	ident   *identity.Identity // the DNS key pair; Pub is the trust anchor
	cfg     Config
	metrics *trace.Metrics

	names      map[string]Record
	byAddr     map[ipv6.Addr]string
	pending    map[ipv6.Addr]*pendingReg // keyed by registrant address
	challenges map[string]uint64         // outstanding update challenges by name
}

// New creates a server. metrics may be nil.
func New(clock ndp.Clock, rng *rand.Rand, ident *identity.Identity, cfg Config, metrics *trace.Metrics) *Server {
	if cfg.CommitDelay <= 0 {
		cfg.CommitDelay = DefaultConfig().CommitDelay
	}
	if metrics == nil {
		metrics = trace.NewMetrics()
	}
	return &Server{
		clock: clock, rng: rng, ident: ident, cfg: cfg, metrics: metrics,
		names:      make(map[string]Record),
		byAddr:     make(map[ipv6.Addr]string),
		pending:    make(map[ipv6.Addr]*pendingReg),
		challenges: make(map[string]uint64),
	}
}

// PublicKey returns the trust anchor distributed to all hosts.
func (s *Server) PublicKey() identity.PublicKey { return s.ident.Pub }

// Metrics exposes the server's counters.
func (s *Server) Metrics() *trace.Metrics { return s.metrics }

// Preload installs a permanent binding established before network
// formation — the paper's path for hosts that must be impersonation-proof.
// Re-preloading a name replaces its binding.
func (s *Server) Preload(name string, ip ipv6.Addr) {
	if old, ok := s.names[name]; ok {
		delete(s.byAddr, old.IP)
	}
	s.names[name] = Record{Name: name, IP: ip, Permanent: true}
	s.byAddr[ip] = name
	s.metrics.Add1("dns.preloaded")
}

// Lookup resolves a name locally.
func (s *Server) Lookup(name string) (ipv6.Addr, bool) {
	rec, ok := s.names[name]
	return rec.IP, ok
}

// ReverseLookup returns the name bound to an address, if any.
func (s *Server) ReverseLookup(ip ipv6.Addr) (string, bool) {
	name, ok := s.byAddr[ip]
	return name, ok
}

// Names returns the number of committed bindings.
func (s *Server) Names() int { return len(s.names) }

// HandleAREQ processes a flooded address request carrying an optional
// domain-name registration. It returns a signed DREP when the name is
// already bound to a different address, otherwise nil (and, for new names,
// starts the pending-commit window).
func (s *Server) HandleAREQ(m *wire.AREQ) *wire.DREP {
	if m.DN == "" {
		return nil // pure DAD, no name involvement
	}
	s.metrics.Add1("dns.areq")

	if rec, taken := s.names[m.DN]; taken {
		if rec.IP == m.SIP {
			return nil // idempotent re-registration
		}
		return s.buildDREP(m)
	}
	if p, reserved := s.reservedBy(m.DN); reserved {
		if p.sip == m.SIP {
			// Same host re-flooding (e.g. fresh challenge after a retry):
			// keep the newest challenge so warn validation matches.
			p.ch = m.Ch
			return nil
		}
		return s.buildDREP(m) // FCFS: first pending reservation wins
	}

	// New name: reserve it and commit unless a warn-AREP arrives.
	reg := &pendingReg{name: m.DN, sip: m.SIP, ch: m.Ch}
	reg.timer = s.clock.After(s.cfg.CommitDelay, func() {
		delete(s.pending, reg.sip)
		s.names[reg.name] = Record{Name: reg.name, IP: reg.sip}
		s.byAddr[reg.sip] = reg.name
		s.metrics.Add1("dns.registered")
	})
	s.pending[m.SIP] = reg
	return nil
}

func (s *Server) reservedBy(name string) (*pendingReg, bool) {
	//sbr6:commutative at most one pending registration carries a given name (HandleAREQ DREPs later claimants), so the scan has a unique match whatever the order
	for _, p := range s.pending {
		if p.name == name {
			return p, true
		}
	}
	return nil, false
}

func (s *Server) buildDREP(m *wire.AREQ) *wire.DREP {
	s.metrics.Add1("dns.drep")
	return &wire.DREP{
		SIP: m.SIP,
		RR:  m.RR,
		DN:  m.DN,
		Sig: s.ident.Sign(wire.SigDREP(m.DN, m.Ch)),
	}
}

// HandleWarnAREP processes the objection a duplicate-address owner unicasts
// to the DNS so a conflicting registration is not committed. The AREP is
// validated against the pending registration's challenge — the paper's
// "the DNS can verify the AREP with the same checks"; a forged warn cannot
// cancel someone's registration. It reports whether a pending registration
// was cancelled.
func (s *Server) HandleWarnAREP(m *wire.AREP) bool {
	reg, ok := s.pending[m.SIP]
	if !ok {
		return false
	}
	if err := ndp.ValidateAREPVia(s.Verifier, m, s.cfg.Suite, reg.ch); err != nil {
		s.metrics.Add1("dns.warn_rejected")
		return false
	}
	reg.timer.Cancel()
	delete(s.pending, m.SIP)
	s.metrics.Add1("dns.warn_accepted")
	return true
}

// HandleQuery answers a name lookup with a response signed over
// (name, IP, found, ch) so the querier can authenticate it with the
// pre-distributed DNS public key.
func (s *Server) HandleQuery(q *wire.DNSQuery) *wire.DNSAnswer {
	s.metrics.Add1("dns.query")
	ip, found := s.Lookup(q.Name)
	return &wire.DNSAnswer{
		Name:  q.Name,
		IP:    ip,
		Found: found,
		Sig:   s.ident.Sign(wire.SigDNSAnswer(q.Name, ip, found, q.Ch)),
	}
}

// ValidateAnswer is the client-side check of a signed lookup answer.
func ValidateAnswer(m *wire.DNSAnswer, dnsPub identity.PublicKey, ch uint64) bool {
	return dnsPub.Verify(wire.SigDNSAnswer(m.Name, m.IP, m.Found, ch), m.Sig)
}

// HandleUpdateReq starts the secure IP-change flow of Section 3.2: the
// server issues a signed random challenge for the name.
func (s *Server) HandleUpdateReq(m *wire.UpdateReq) *wire.UpdateChal {
	if _, ok := s.names[m.Name]; !ok {
		return nil // no such binding; nothing to update
	}
	ch := s.rng.Uint64()
	s.challenges[m.Name] = ch
	s.metrics.Add1("dns.update_challenge")
	return &wire.UpdateChal{Name: m.Name, Ch: ch, Sig: s.ident.Sign(wire.SigUpdateChal(m.Name, ch))}
}

// ValidateUpdateChal is the client-side check of the challenge.
func ValidateUpdateChal(m *wire.UpdateChal, dnsPub identity.PublicKey) bool {
	return dnsPub.Verify(wire.SigUpdateChal(m.Name, m.Ch), m.Sig)
}

// HandleUpdate verifies the signed re-binding: the presenter must prove
// both the old and the new address derive from its key (CGA checks with
// the two modifiers) and must answer the outstanding challenge with a
// signature under that key. On success the binding moves to the new IP.
func (s *Server) HandleUpdate(m *wire.Update) *wire.UpdateResult {
	res, _ := s.HandleUpdateCounted(m)
	return res
}

// HandleUpdateCounted is HandleUpdate, additionally reporting how many
// cryptographic verifications (CGA checks and signature verifications)
// were actually performed — the walk short-circuits on unknown names,
// missing challenges and failed checks, so the count ranges 0..3. The
// owning node feeds it into its crypto.verify accounting.
func (s *Server) HandleUpdateCounted(m *wire.Update) (*wire.UpdateResult, int) {
	verdict, verifies := s.verifyUpdate(m)
	if verdict {
		rec := s.names[m.Name]
		delete(s.byAddr, rec.IP)
		rec.IP = m.NewIP
		s.names[m.Name] = rec
		s.byAddr[m.NewIP] = m.Name
		s.metrics.Add1("dns.update_ok")
	} else {
		s.metrics.Add1("dns.update_rejected")
	}
	ch := s.challenges[m.Name]
	delete(s.challenges, m.Name) // single use either way
	return &wire.UpdateResult{
		Name: m.Name,
		OK:   verdict,
		Ch:   ch,
		Sig:  s.ident.Sign(wire.SigUpdateResult(m.Name, verdict, ch)),
	}, verifies
}

// verifyUpdate reports the verdict plus the number of CGA checks and
// signature verifications it actually ran before deciding. The count
// tracks logical checks — the walk's short-circuit structure — so it is
// identical whether the Verifier memoizes or computes directly.
func (s *Server) verifyUpdate(m *wire.Update) (bool, int) {
	rec, ok := s.names[m.Name]
	if !ok || rec.IP != m.OldIP {
		return false, 0
	}
	ch, ok := s.challenges[m.Name]
	if !ok {
		return false, 0
	}
	pk, err := identity.ParsePublicKey(s.cfg.Suite, m.PK)
	if err != nil {
		return false, 0
	}
	v := s.Verifier
	if v == nil {
		v = ndp.DirectVerifier{}
	}
	if !v.VerifyCGA(m.OldIP, m.PK, m.Rn) {
		return false, 1
	}
	if !v.VerifyCGA(m.NewIP, m.PK, m.NewRn) {
		return false, 2
	}
	return v.VerifySig(pk, wire.SigUpdate(m.OldIP, m.NewIP, ch), m.Sig), 3
}

// ValidateUpdateResult is the client-side check of the verdict.
func ValidateUpdateResult(m *wire.UpdateResult, dnsPub identity.PublicKey, ch uint64) bool {
	if m.Ch != ch {
		return false
	}
	return dnsPub.Verify(wire.SigUpdateResult(m.Name, m.OK, m.Ch), m.Sig)
}

// BuildUpdate constructs the client side of the re-binding proof for an
// identity that regenerated its address. oldRn/oldIP are the pre-change
// values; the identity already carries the new ones.
func BuildUpdate(ident *identity.Identity, name string, oldIP ipv6.Addr, oldRn uint64, ch uint64) *wire.Update {
	return &wire.Update{
		Name:  name,
		OldIP: oldIP,
		NewIP: ident.Addr,
		Rn:    oldRn,
		NewRn: ident.Rn,
		PK:    ident.Pub.Bytes(),
		Sig:   ident.Sign(wire.SigUpdate(oldIP, ident.Addr, ch)),
	}
}
