package dnssrv

import (
	"math/rand"
	"testing"
	"time"

	"sbr6/internal/identity"
	"sbr6/internal/ipv6"
	"sbr6/internal/ndp"
	"sbr6/internal/sim"
	"sbr6/internal/wire"
)

func newIdent(t testing.TB, seed int64, name string) *identity.Identity {
	t.Helper()
	id, err := identity.New(identity.SuiteEd25519, rand.New(rand.NewSource(seed)), name)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func newServer(t *testing.T) (*sim.Simulator, *Server, *identity.Identity) {
	t.Helper()
	s := sim.New(1)
	dnsID := newIdent(t, 100, "dns")
	srv := New(s, s.Rand(), dnsID, DefaultConfig(), nil)
	return s, srv, dnsID
}

func TestPreloadAndLookup(t *testing.T) {
	_, srv, _ := newServer(t)
	ip := ipv6.SiteLocal(0, 0xabc)
	srv.Preload("server.manet", ip)
	got, ok := srv.Lookup("server.manet")
	if !ok || got != ip {
		t.Fatalf("Lookup = %v, %v", got, ok)
	}
	if _, ok := srv.Lookup("missing"); ok {
		t.Fatal("missing name resolved")
	}
	if srv.Names() != 1 {
		t.Fatalf("Names = %d", srv.Names())
	}
}

func TestReverseLookupAndPreloadReplace(t *testing.T) {
	_, srv, _ := newServer(t)
	ip1 := ipv6.SiteLocal(0, 1)
	ip2 := ipv6.SiteLocal(0, 2)
	srv.Preload("svc", ip1)
	if name, ok := srv.ReverseLookup(ip1); !ok || name != "svc" {
		t.Fatalf("ReverseLookup = %q, %v", name, ok)
	}
	// Re-preloading moves the binding and clears the stale reverse entry.
	srv.Preload("svc", ip2)
	if _, ok := srv.ReverseLookup(ip1); ok {
		t.Fatal("stale reverse entry survived re-preload")
	}
	if name, ok := srv.ReverseLookup(ip2); !ok || name != "svc" {
		t.Fatalf("moved ReverseLookup = %q, %v", name, ok)
	}
	if srv.Names() != 1 {
		t.Fatalf("Names = %d, want 1", srv.Names())
	}
}

func TestReverseLookupAfterUpdate(t *testing.T) {
	_, srv, _ := newServer(t)
	rng := rand.New(rand.NewSource(8))
	host, _ := identity.New(identity.SuiteEd25519, rng, "m")
	srv.Preload("m", host.Addr)
	oldIP, oldRn := host.Addr, host.Rn
	chal := srv.HandleUpdateReq(&wire.UpdateReq{Name: "m"})
	host.Regenerate(rng)
	if res := srv.HandleUpdate(BuildUpdate(host, "m", oldIP, oldRn, chal.Ch)); !res.OK {
		t.Fatal("update rejected")
	}
	if _, ok := srv.ReverseLookup(oldIP); ok {
		t.Fatal("stale reverse entry after update")
	}
	if name, ok := srv.ReverseLookup(host.Addr); !ok || name != "m" {
		t.Fatalf("reverse entry not moved: %q %v", name, ok)
	}
}

func TestOnlineRegistrationCommitsAfterDelay(t *testing.T) {
	s, srv, _ := newServer(t)
	host := newIdent(t, 1, "host-a")
	drep := srv.HandleAREQ(&wire.AREQ{SIP: host.Addr, Seq: 1, DN: "host-a", Ch: 42})
	if drep != nil {
		t.Fatal("fresh name should not conflict")
	}
	if _, ok := srv.Lookup("host-a"); ok {
		t.Fatal("name committed before the warn window elapsed")
	}
	s.Run()
	ip, ok := srv.Lookup("host-a")
	if !ok || ip != host.Addr {
		t.Fatalf("Lookup after commit = %v, %v", ip, ok)
	}
	if srv.Metrics().Get("dns.registered") != 1 {
		t.Fatal("registration counter missing")
	}
}

func TestFCFSNameConflict(t *testing.T) {
	s, srv, dnsID := newServer(t)
	first := newIdent(t, 1, "printer")
	second := newIdent(t, 2, "printer")

	if srv.HandleAREQ(&wire.AREQ{SIP: first.Addr, Seq: 1, DN: "printer", Ch: 10}) != nil {
		t.Fatal("first registrant rejected")
	}
	// Second host asks for the same name while the first is still pending:
	// FCFS says the first reservation wins.
	drep := srv.HandleAREQ(&wire.AREQ{SIP: second.Addr, Seq: 1, DN: "printer", Ch: 20})
	if drep == nil {
		t.Fatal("conflicting pending registration not objected")
	}
	if err := ndp.ValidateDREP(drep, dnsID.Pub, "printer", 20); err != nil {
		t.Fatalf("DREP does not validate: %v", err)
	}
	s.Run()
	// After commit the name belongs to the first host; a third conflict
	// also draws a DREP.
	third := newIdent(t, 3, "printer")
	if srv.HandleAREQ(&wire.AREQ{SIP: third.Addr, Seq: 1, DN: "printer", Ch: 30}) == nil {
		t.Fatal("committed name not defended")
	}
	ip, _ := srv.Lookup("printer")
	if ip != first.Addr {
		t.Fatal("FCFS violated")
	}
}

func TestIdempotentReRegistration(t *testing.T) {
	s, srv, _ := newServer(t)
	host := newIdent(t, 1, "host")
	srv.HandleAREQ(&wire.AREQ{SIP: host.Addr, Seq: 1, DN: "host", Ch: 1})
	s.Run()
	if srv.HandleAREQ(&wire.AREQ{SIP: host.Addr, Seq: 2, DN: "host", Ch: 2}) != nil {
		t.Fatal("re-registration by the same address drew a DREP")
	}
}

func TestPendingChallengeRefreshed(t *testing.T) {
	s, srv, _ := newServer(t)
	host := newIdent(t, 1, "host")
	srv.HandleAREQ(&wire.AREQ{SIP: host.Addr, Seq: 1, DN: "host", Ch: 1})
	// Same host re-floods (DAD retry) with a fresh challenge before commit.
	if srv.HandleAREQ(&wire.AREQ{SIP: host.Addr, Seq: 2, DN: "host", Ch: 2}) != nil {
		t.Fatal("same-host re-flood objected")
	}
	// A warn signed for the NEW challenge must now be accepted.
	owner := &identity.Identity{Priv: host.Priv, Pub: host.Pub, Rn: host.Rn, Addr: host.Addr}
	warn := ndp.BuildAREP(owner, host.Addr, 2, nil)
	if !srv.HandleWarnAREP(warn) {
		t.Fatal("warn for refreshed challenge rejected")
	}
	s.Run()
	if _, ok := srv.Lookup("host"); ok {
		t.Fatal("cancelled registration still committed")
	}
}

func TestWarnAREPCancelsPendingRegistration(t *testing.T) {
	s, srv, _ := newServer(t)
	// Attacker tries to register a name for a victim's address; the victim
	// (actual owner of that address) warns the DNS.
	victim := newIdent(t, 5, "")
	srv.HandleAREQ(&wire.AREQ{SIP: victim.Addr, Seq: 1, DN: "stolen", Ch: 77})
	warn := ndp.BuildAREP(victim, victim.Addr, 77, nil)
	if !srv.HandleWarnAREP(warn) {
		t.Fatal("authentic warn rejected")
	}
	s.Run()
	if _, ok := srv.Lookup("stolen"); ok {
		t.Fatal("warned registration committed anyway")
	}
	if srv.Metrics().Get("dns.warn_accepted") != 1 {
		t.Fatal("warn counter missing")
	}
}

func TestForgedWarnCannotCancel(t *testing.T) {
	s, srv, _ := newServer(t)
	host := newIdent(t, 1, "legit")
	srv.HandleAREQ(&wire.AREQ{SIP: host.Addr, Seq: 1, DN: "legit", Ch: 9})
	// Attacker fabricates a warn for the pending address without the key.
	attacker := newIdent(t, 66, "")
	forged := &wire.AREP{
		SIP: host.Addr,
		Sig: attacker.Sign(wire.SigAREP(host.Addr, 9)),
		PK:  attacker.Pub.Bytes(),
		Rn:  attacker.Rn,
	}
	if srv.HandleWarnAREP(forged) {
		t.Fatal("forged warn accepted")
	}
	s.Run()
	if _, ok := srv.Lookup("legit"); !ok {
		t.Fatal("legitimate registration lost to forged warn")
	}
	if srv.Metrics().Get("dns.warn_rejected") != 1 {
		t.Fatal("rejection counter missing")
	}
}

func TestWarnForUnknownAddressIgnored(t *testing.T) {
	_, srv, _ := newServer(t)
	host := newIdent(t, 1, "")
	if srv.HandleWarnAREP(ndp.BuildAREP(host, host.Addr, 1, nil)) {
		t.Fatal("warn with no pending registration accepted")
	}
}

func TestSignedQueryAnswer(t *testing.T) {
	_, srv, dnsID := newServer(t)
	ip := ipv6.SiteLocal(0, 0xfeed)
	srv.Preload("web.manet", ip)

	ans := srv.HandleQuery(&wire.DNSQuery{Name: "web.manet", Ch: 123})
	if !ans.Found || ans.IP != ip {
		t.Fatalf("answer = %+v", ans)
	}
	if !ValidateAnswer(ans, dnsID.Pub, 123) {
		t.Fatal("authentic answer rejected")
	}
	if ValidateAnswer(ans, dnsID.Pub, 124) {
		t.Fatal("answer validated under wrong challenge (replay!)")
	}
	// Tampered IP must fail.
	ans.IP = ipv6.SiteLocal(0, 0xbad)
	if ValidateAnswer(ans, dnsID.Pub, 123) {
		t.Fatal("tampered answer validated")
	}

	neg := srv.HandleQuery(&wire.DNSQuery{Name: "nope", Ch: 5})
	if neg.Found {
		t.Fatal("missing name found")
	}
	if !ValidateAnswer(neg, dnsID.Pub, 5) {
		t.Fatal("negative answer must also be signed")
	}
}

func TestFakeDNSAnswerRejected(t *testing.T) {
	// Section 4, impersonation of DNS: an attacker without the DNS key
	// cannot produce an acceptable answer.
	_, srv, dnsID := newServer(t)
	srv.Preload("bank.manet", ipv6.SiteLocal(0, 1))
	attacker := newIdent(t, 13, "")
	fake := &wire.DNSAnswer{Name: "bank.manet", IP: attacker.Addr, Found: true}
	fake.Sig = attacker.Sign(wire.SigDNSAnswer(fake.Name, fake.IP, true, 55))
	if ValidateAnswer(fake, dnsID.Pub, 55) {
		t.Fatal("fake DNS answer validated")
	}
}

func TestSecureIPChangeFlow(t *testing.T) {
	s, srv, dnsID := newServer(t)
	rng := rand.New(rand.NewSource(8))
	host, err := identity.New(identity.SuiteEd25519, rng, "mobile")
	if err != nil {
		t.Fatal(err)
	}
	srv.Preload("mobile", host.Addr)
	oldIP, oldRn := host.Addr, host.Rn

	chal := srv.HandleUpdateReq(&wire.UpdateReq{Name: "mobile"})
	if chal == nil || !ValidateUpdateChal(chal, dnsID.Pub) {
		t.Fatal("challenge missing or unsigned")
	}

	// Host moves to a fresh CGA address (same key) and proves both bindings.
	host.Regenerate(rng)
	upd := BuildUpdate(host, "mobile", oldIP, oldRn, chal.Ch)
	res := srv.HandleUpdate(upd)
	if !res.OK {
		t.Fatal("authentic update rejected")
	}
	if !ValidateUpdateResult(res, dnsID.Pub, chal.Ch) {
		t.Fatal("result signature invalid")
	}
	ip, _ := srv.Lookup("mobile")
	if ip != host.Addr {
		t.Fatal("binding not moved to the new address")
	}
	s.Run()
}

func TestIPChangeByNonOwnerRejected(t *testing.T) {
	_, srv, _ := newServer(t)
	rng := rand.New(rand.NewSource(8))
	owner, _ := identity.New(identity.SuiteEd25519, rng, "target")
	srv.Preload("target", owner.Addr)

	attacker, _ := identity.New(identity.SuiteEd25519, rng, "")
	chal := srv.HandleUpdateReq(&wire.UpdateReq{Name: "target"})

	// The attacker cannot present a key whose CGA matches the old address.
	forged := &wire.Update{
		Name:  "target",
		OldIP: owner.Addr,
		NewIP: attacker.Addr,
		Rn:    attacker.Rn, // wrong: H(attackerPK, rn) != owner's IID
		NewRn: attacker.Rn,
		PK:    attacker.Pub.Bytes(),
		Sig:   attacker.Sign(wire.SigUpdate(owner.Addr, attacker.Addr, chal.Ch)),
	}
	if res := srv.HandleUpdate(forged); res.OK {
		t.Fatal("hijack update accepted")
	}
	ip, _ := srv.Lookup("target")
	if ip != owner.Addr {
		t.Fatal("binding stolen")
	}
}

func TestUpdateWithoutChallengeRejected(t *testing.T) {
	_, srv, _ := newServer(t)
	rng := rand.New(rand.NewSource(8))
	host, _ := identity.New(identity.SuiteEd25519, rng, "h")
	srv.Preload("h", host.Addr)
	oldIP, oldRn := host.Addr, host.Rn
	host.Regenerate(rng)
	upd := BuildUpdate(host, "h", oldIP, oldRn, 999) // no challenge issued
	if res := srv.HandleUpdate(upd); res.OK {
		t.Fatal("update without challenge accepted")
	}
}

func TestUpdateChallengeSingleUse(t *testing.T) {
	_, srv, _ := newServer(t)
	rng := rand.New(rand.NewSource(8))
	host, _ := identity.New(identity.SuiteEd25519, rng, "h")
	srv.Preload("h", host.Addr)
	oldIP, oldRn := host.Addr, host.Rn
	chal := srv.HandleUpdateReq(&wire.UpdateReq{Name: "h"})
	host.Regenerate(rng)
	upd := BuildUpdate(host, "h", oldIP, oldRn, chal.Ch)
	if res := srv.HandleUpdate(upd); !res.OK {
		t.Fatal("first update rejected")
	}
	// Replaying the same signed update must fail: the challenge is spent.
	if res := srv.HandleUpdate(upd); res.OK {
		t.Fatal("replayed update accepted")
	}
}

func TestUpdateReqForUnknownName(t *testing.T) {
	_, srv, _ := newServer(t)
	if srv.HandleUpdateReq(&wire.UpdateReq{Name: "ghost"}) != nil {
		t.Fatal("challenge issued for unknown name")
	}
}

func TestUpdateWrongOldIPRejected(t *testing.T) {
	_, srv, _ := newServer(t)
	rng := rand.New(rand.NewSource(8))
	host, _ := identity.New(identity.SuiteEd25519, rng, "h")
	srv.Preload("h", ipv6.SiteLocal(0, 0x1)) // bound to something else
	chal := srv.HandleUpdateReq(&wire.UpdateReq{Name: "h"})
	oldIP, oldRn := host.Addr, host.Rn
	host.Regenerate(rng)
	upd := BuildUpdate(host, "h", oldIP, oldRn, chal.Ch)
	if res := srv.HandleUpdate(upd); res.OK {
		t.Fatal("update against mismatched old IP accepted")
	}
}

func TestAREQWithoutNameIsPureDAD(t *testing.T) {
	s, srv, _ := newServer(t)
	host := newIdent(t, 1, "")
	if srv.HandleAREQ(&wire.AREQ{SIP: host.Addr, Seq: 1, Ch: 3}) != nil {
		t.Fatal("nameless AREQ drew a DREP")
	}
	s.RunFor(10 * time.Second)
	if srv.Names() != 0 {
		t.Fatal("nameless AREQ created a binding")
	}
}
