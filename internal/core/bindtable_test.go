package core

import (
	"math/rand"
	"testing"

	"sbr6/internal/bindtable"
	"sbr6/internal/geom"
	"sbr6/internal/identity"
	"sbr6/internal/radio"
	"sbr6/internal/sim"
	"sbr6/internal/wire"
)

// Cross-node probes of the shared binding table at the protocol layer:
// two real nodes wired to one table (the serial and same-region shapes)
// must each reach exactly the verdicts a lone node reaches, whatever
// order honest and forged bindings arrive in and whichever node sees
// them first. These extend the single-node memo probes in
// verifycache_test.go across the node boundary the table introduces.

// newBoundPair builds two standalone configured nodes sharing one
// binding table. cached selects whether the nodes also run their
// per-node verify caches (both table layerings ship).
func newBoundPair(t *testing.T, cached bool) (*Node, *Node, *bindtable.Table, []*identity.Identity) {
	t.Helper()
	s := sim.New(1)
	medium := radio.New(s, radio.DefaultConfig())
	dnsIdent, err := identity.New(identity.SuiteEd25519, rand.New(rand.NewSource(1)), "dns")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	if !cached {
		cfg.VerifyCache = -1
	}
	tbl := bindtable.New(0)
	nodes := make([]*Node, 2)
	for i := range nodes {
		ident, err := identity.New(identity.SuiteEd25519, rand.New(rand.NewSource(2+int64(i))), "")
		if err != nil {
			t.Fatal(err)
		}
		n := New(s, medium, radio.NodeID(i), ident, dnsIdent.Pub, cfg, rand.New(rand.NewSource(4+int64(i))), nil)
		medium.AddNode(radio.NodeID(i), func(sim.Time) geom.Point { return geom.Point{} }, n)
		n.StartConfigured()
		n.SetBindings(tbl)
		nodes[i] = n
	}
	var ids []*identity.Identity
	for i := 0; i < 4; i++ {
		id, err := identity.New(identity.SuiteEd25519, rand.New(rand.NewSource(10+int64(i))), "")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return nodes[0], nodes[1], tbl, ids
}

// The forger reaches node A first: its chain's forged binding is
// rejected there, and node B — served the shared negative — must reject
// it too, across both table layerings (beneath the per-node memo, and as
// the bare verifier when the memo is off).
func TestBindTableForgedNegativeSharedAcrossNodes(t *testing.T) {
	for _, cached := range []bool{true, false} {
		name := "memo+table"
		if !cached {
			name = "table-only"
		}
		t.Run(name, func(t *testing.T) {
			a, b, tbl, ids := newBoundPair(t, cached)
			forged := honestRREQ(ids[0], []*identity.Identity{ids[1]}, 3)
			forged.Srn++ // break the source's CGA binding
			if a.verifySRR(forged) == nil {
				t.Fatal("node A accepted a chain with a forged binding")
			}
			if b.verifySRR(forged) == nil {
				t.Fatal("node B accepted a forged binding another node already rejected")
			}
			if tbl.Stats().Hits == 0 {
				t.Fatal("node B's rejection did not come from the shared table")
			}
			// The honest chain under the same identity still verifies at both.
			honest := honestRREQ(ids[0], []*identity.Identity{ids[1]}, 3)
			if err := a.verifySRR(honest); err != nil {
				t.Fatalf("node A rejected the honest chain: %v", err)
			}
			if err := b.verifySRR(honest); err != nil {
				t.Fatalf("node B rejected the honest chain: %v", err)
			}
		})
	}
}

// The honest owner reaches node A first; tampered variants arriving at
// node B must each be rejected — the shared positive covers exactly the
// digested bytes, nothing wider.
func TestBindTableHonestThenTamperedAcrossNodes(t *testing.T) {
	a, b, _, ids := newBoundPair(t, true)
	if err := a.verifySRR(honestRREQ(ids[0], []*identity.Identity{ids[1], ids[2]}, 7)); err != nil {
		t.Fatalf("honest chain rejected: %v", err)
	}
	tampers := map[string]func(m *wire.RREQ){
		"bump source rn":   func(m *wire.RREQ) { m.Srn++ },
		"swap source key":  func(m *wire.RREQ) { m.SPK = ids[3].Pub.Bytes() },
		"swap hop address": func(m *wire.RREQ) { m.SRR[0].IP = ids[3].Addr },
		"bump hop rn":      func(m *wire.RREQ) { m.SRR[1].Rn++ },
	}
	for name, tamper := range tampers {
		m := honestRREQ(ids[0], []*identity.Identity{ids[1], ids[2]}, 7)
		tamper(m)
		if b.verifySRR(m) == nil {
			t.Errorf("%s: forged chain accepted at node B off node A's cached bindings", name)
		}
	}
	// And B accepts the honest original after all those negatives.
	if err := b.verifySRR(honestRREQ(ids[0], []*identity.Identity{ids[1], ids[2]}, 7)); err != nil {
		t.Fatalf("honest chain rejected at node B after forgeries: %v", err)
	}
}

// The table moves primitives, never logical accounting: node B's first
// walk of a chain node A already verified must count exactly the
// crypto.verify requests node A's did, while the table absorbs B's CGA
// primitives as hits.
func TestBindTablePreservesAccountingAcrossNodes(t *testing.T) {
	a, b, tbl, ids := newBoundPair(t, true)
	m := honestRREQ(ids[0], []*identity.Identity{ids[1], ids[2]}, 11)

	beforeA := a.Metrics().Get("crypto.verify")
	if err := a.verifySRR(m); err != nil {
		t.Fatal(err)
	}
	walkA := a.Metrics().Get("crypto.verify") - beforeA

	baseStats := tbl.Stats()
	beforeB := b.Metrics().Get("crypto.verify")
	if err := b.verifySRR(m); err != nil {
		t.Fatal(err)
	}
	walkB := b.Metrics().Get("crypto.verify") - beforeB

	if walkA != walkB {
		t.Fatalf("logical accounting diverged across nodes: A counted %v, B counted %v", walkA, walkB)
	}
	if walkA != 3 { // source + two hops
		t.Fatalf("walk counted %v verifications, want 3", walkA)
	}
	stats := tbl.Stats()
	if gained := stats.Hits - baseStats.Hits; gained != 3 {
		t.Fatalf("table absorbed %d of node B's 3 CGA primitives, want all 3", gained)
	}
	if stats.Misses != baseStats.Misses {
		t.Fatalf("node B recomputed bindings node A already stored: %+v -> %+v", baseStats, stats)
	}
}
