package core

import (
	"sbr6/internal/audit"
	"sbr6/internal/ipv6"
	"sbr6/internal/ndp"
	"sbr6/internal/wire"
)

// This file implements the node's side of the post-formation address audit
// sweep (internal/audit): periodically re-advertising the CGA address
// binding, objecting to a heard advertisement for an address this node
// itself holds, and deterministically resolving the conflict — the losing
// binding rekeys and re-runs DAD. The sweep closes the duplicate-address
// windows one-shot DAD cannot see: concurrent cross-cell claims during
// per-cell admission, and partition merges where both claimants configured
// long before sharing a radio.

// AuditAdvertise floods one signed re-advertisement of the node's current
// address binding. The scenario harness calls it once per sweep period at
// the node's seed-stable phase; a node that is mid-DAD (rekeying after a
// lost conflict, or still bootstrapping) skips its turn — it holds no
// committed binding to advertise.
func (n *Node) AuditAdvertise() {
	if !n.configured || !n.cfg.Audit.Enabled() {
		return
	}
	n.auditSeq++
	n.auditCh = n.rng.Uint64()
	m := audit.BuildAdv(n.ident, n.auditSeq, n.auditCh)
	n.met.Add1("crypto.sign")
	n.met.Add1("audit.adv_sent")
	n.auditSeen.Seen(m.SIP, auditAdvKey(m))
	n.Flood(m, n.auditTTL())
}

// auditTTL bounds the advertisement flood: the configured audit TTL, or the
// protocol TTL when unset.
func (n *Node) auditTTL() uint8 {
	if t := n.cfg.Audit.TTL; t > 0 {
		return t
	}
	return n.cfg.TTL
}

// auditAdvKey folds round counter and challenge into the flood-dedup key so
// a clone's concurrent advertisement of the same address never suppresses
// the original's (their challenges differ), exactly like areqKey.
func auditAdvKey(m *wire.AuditAdv) uint32 {
	return m.Seq ^ uint32(m.Ch) ^ uint32(m.Ch>>32)
}

// verifier returns the node's memoizing verifier: the cache when
// enabled (it consults the shared binding table beneath), the table
// adapter when only the table is on, and nil for the documented
// direct-computation fallback (a typed-nil interface would bypass it).
func (n *Node) verifier() ndp.Verifier {
	if n.vcache != nil {
		return n.vcache
	}
	if n.bindings != nil {
		return tableVerifier{n.bindings}
	}
	return nil
}

func (n *Node) handleAuditAdv(pkt *wire.Packet, m *wire.AuditAdv) {
	if n.auditSeen.Seen(m.SIP, auditAdvKey(m)) {
		return
	}
	n.met.Add1("rx.AADV")

	// A configured holder of the advertised address consumes the flood —
	// the conflict gets resolved here, relaying it further serves no one.
	if n.configured && m.SIP == n.ident.Addr {
		n.handleConflictingAdv(m)
		return
	}

	// Relay with this node appended to the route record, AREQ-style, so an
	// objector further out still owns a reverse path to the advertiser.
	n.relayFlood(pkt, m.RR, func(rr []ipv6.Addr) wire.Message {
		fwd := *m
		fwd.RR = rr
		return &fwd
	})
}

// handleConflictingAdv runs when another node advertised a binding for THIS
// node's address: verify the claim, object with our own proof, and resolve
// our side of the conflict deterministically.
func (n *Node) handleConflictingAdv(m *wire.AuditAdv) {
	mine := n.ident
	if audit.SameBinding(m.PK, m.Rn, mine.Pub.Bytes(), mine.Rn) &&
		(m.Seq < n.auditSeq || m.Ch == n.auditCh) {
		// A replayed copy of our own advertisement, not a live clone. An
		// older round is always an echo — a clone's round counter can never
		// trail ours, clones sweep the same rounds — and a current-round
		// copy carries exactly the challenge we drew this round, which a
		// clone's independent draw matches with probability 2^-64. Without
		// the challenge check a current-round replay would survive the
		// bounded flood seen-set being evicted mid-period and force a
		// spurious self-rekey.
		//
		// An adversary holding our private key could deliberately CRAFT
		// advertisements shaped like replays (stale signed round, copied
		// challenge) to slip past this filter undetected — but such an
		// adversary gains nothing the filter enables: it can suppress its
		// side of the conflict completely by simply never advertising. No
		// protocol can force a silent key-holder to reveal itself; what the
		// sweep guarantees is that any claimant RUNNING the protocol is
		// heard, and that hearing one resolves the conflict.
		n.met.Add1("audit.replays_ignored")
		return
	}
	n.met.Add1("crypto.verify")
	if err := audit.ValidateAdv(n.verifier(), m, mine.Pub.Suite()); err != nil {
		n.met.Add1("audit.adv_rejected")
		return
	}
	n.met.Add1("audit.conflicts")
	n.met.Add1("audit.objections_sent")
	obj := audit.BuildObjection(mine, m.SIP, m.Ch, m.RR)
	n.met.Add1("crypto.sign")
	n.sendToUnconfigured(m.RR, m.SIP, obj)
	if audit.Resolve(mine.Pub.Bytes(), mine.Rn, m.PK, m.Rn) == audit.Rekey {
		n.auditRekey()
	}
}

// handleAuditObj runs at the advertiser when a conflicting binding holder
// objected to its current advertisement.
func (n *Node) handleAuditObj(pkt *wire.Packet, m *wire.AuditObj) {
	n.met.Add1("rx.AOBJ")
	if !n.configured || m.SIP != n.ident.Addr || n.auditCh == 0 {
		return
	}
	mine := n.ident
	n.met.Add1("crypto.verify")
	if err := audit.ValidateObj(n.verifier(), m, mine.Pub.Suite(), n.auditCh); err != nil {
		n.met.Add1("audit.obj_rejected")
		return
	}
	// One resolution per sweep round: further objections (a third claimant,
	// duplicate copies over other paths) wait for the next advertisement.
	n.auditCh = 0
	n.met.Add1("audit.conflicts")
	if audit.Resolve(mine.Pub.Bytes(), mine.Rn, m.PK, m.Rn) == audit.Rekey {
		n.auditRekey()
	}
}

// auditRekey abandons the contested address: fresh CGA modifier, full DAD
// re-run. The node drops out of the configured set until the new claim
// survives its objection window, exactly like a first join. A registered
// name sits out the re-run — the DNS still holds it committed to the
// abandoned address, so a named AREQ would draw the server's own 6DNAR
// objection and silently rename us — and is re-bound to the fresh address
// through the signed update protocol once DAD completes (see dadDone).
func (n *Node) auditRekey() {
	n.met.Add1("audit.rekeys")
	n.configured = false
	n.auditCh = 0
	// Abort any in-flight ordinary rebind: the address world it operates in
	// is gone, its proof material is about to become stale, and a busy
	// rebind slot would silently swallow the post-DAD name re-bind below.
	if st := n.rebind; st != nil {
		n.rebind = nil
		st.timer.Cancel()
		n.met.Add1("dns.rebind_aborted")
		st.cb(false)
	}
	if n.ident.Name != "" {
		n.auditRebind = &pendingRebind{name: n.ident.Name, oldIP: n.ident.Addr, oldRn: n.ident.Rn}
		n.ident.Name = ""
	}
	n.ident.Regenerate(n.rng)
	n.autoconf.Start()
}
