package core

import (
	"sbr6/internal/dsr"
	"sbr6/internal/identity"
	"sbr6/internal/ipv6"
	"sbr6/internal/verifycache"
	"sbr6/internal/wire"
)

// This file implements secure route discovery (Section 3.3): RREQ floods
// with per-hop identity attestations, destination-signed RREPs,
// dual-signature CREPs from caches, and the verification procedures that
// let every participant check every identity on a path.

// needRoute runs fn once a route to dst is available (possibly immediately
// from cache), or with ok=false when discovery fails.
func (n *Node) needRoute(dst ipv6.Addr, fn func(route dsr.Route, ok bool)) {
	if n.cfg.UseCache {
		if r, ok := n.routes.Best(dst, n.sim.Now(), n.routeScore()); ok {
			fn(r, true)
			return
		}
	}
	d, inFlight := n.pending[dst]
	if !inFlight {
		d = &discovery{seq: n.nextSeq()}
		n.pending[dst] = d
		n.sendRREQ(dst, d)
	}
	d.waiters = append(d.waiters, fn)
}

// routeScore returns the credit-based route scorer, or nil when credits
// are disabled (plain shortest-path selection).
func (n *Node) routeScore() func([]ipv6.Addr) float64 {
	if !n.cfg.UseCredits {
		return nil
	}
	return n.credits.RouteScore
}

func (n *Node) nextSeq() uint32 {
	n.rreqSeq++
	return n.rreqSeq
}

func (n *Node) sendRREQ(dst ipv6.Addr, d *discovery) {
	m := &wire.RREQ{SIP: n.ident.Addr, DIP: dst, Seq: d.seq}
	if n.cfg.Secure {
		m.SrcSig = n.sign(wire.SigRREQSource(m.SIP, m.Seq))
		m.SPK = n.ident.Pub.Bytes()
		m.Srn = n.ident.Rn
	}
	n.rreqSeen.Seen(m.SIP, m.Seq)
	n.met.Add1("discovery.attempts")
	n.Flood(m, n.cfg.TTL)

	d.timer = n.sim.After(n.cfg.DiscoveryTimeout, func() {
		if d.retries < n.cfg.DiscoveryRetries {
			d.retries++
			d.seq = n.nextSeq()
			n.sendRREQ(dst, d)
			return
		}
		delete(n.pending, dst)
		n.met.Add1("discovery.failed")
		for _, w := range d.waiters {
			w(dsr.Route{}, false)
		}
	})
}

func (n *Node) handleRREQ(pkt *wire.Packet, m *wire.RREQ) {
	if !n.configured {
		return
	}
	if m.SIP == n.ident.Addr {
		return // echo of our own flood
	}
	if n.rreqSeen.Seen(m.SIP, m.Seq) {
		return
	}
	n.met.Add1("rx.RREQ")

	if n.ownsAddr(m.DIP) {
		n.answerRREQ(m)
		return
	}

	// Cached-route answer (CREP) from an intermediate node. In secure mode
	// only an attested entry (destination-signed) may be served, and only
	// after the querier's route record verifies; plain DSR answers from any
	// cached route with no checks — which is precisely what a black hole
	// exploits. A cached route that would loop through the querier or a
	// hop already on the request's path must not be served (DSR's loop
	// rule); such requests fall through to normal rebroadcast.
	if n.cfg.UseCache {
		if n.cfg.Secure {
			if r, ok := n.routes.Attested(m.DIP, n.sim.Now()); ok && !crepWouldLoop(m, n.ident.Addr, r.Relays) &&
				n.verifySRR(m) == nil {
				n.sendCREP(m, r)
				return
			}
		} else if r, ok := n.routes.Best(m.DIP, n.sim.Now(), nil); ok && !crepWouldLoop(m, n.ident.Addr, r.Relays) {
			n.sendCREP(m, r)
			return
		}
	}

	if pkt.TTL <= 1 || len(m.SRR) >= 250 {
		return
	}
	fwd := *m
	fwd.SRR = append(append([]wire.HopAttestation(nil), m.SRR...), n.hopAttestation(m.Seq))
	n.met.Add1("fwd.RREQ")
	n.broadcastPacket(&wire.Packet{Src: pkt.Src, Dst: ipv6.AllNodes, TTL: pkt.TTL - 1, Msg: &fwd})
}

// hopAttestation builds this node's SRR entry: signed in secure mode, a
// bare address in baseline mode.
func (n *Node) hopAttestation(seq uint32) wire.HopAttestation {
	h := wire.HopAttestation{IP: n.ident.Addr}
	if n.cfg.Secure {
		h.Sig = n.sign(wire.SigHop(n.ident.Addr, seq))
		h.PK = n.ident.Pub.Bytes()
		h.Rn = n.ident.Rn
	}
	return h
}

// verifySRR runs the destination's checks from Section 3.3: the source and
// every intermediate hop must satisfy (i) the CGA binding and (ii) a valid
// signature over (IP, seq).
//
// The whole walk is memoized under a digest of every byte it reads (the
// flood-level dedup): a node that already verified this exact source/hop
// chain — a duplicate flood copy re-presented after the seen-set evicted
// its id, or the same chain re-offered to the CREP path — replays the
// stored verdict and its verification accounting instead of redoing the
// per-hop crypto.
func (n *Node) verifySRR(m *wire.RREQ) error {
	if n.vcache != nil {
		key := srrChainKey(m)
		if err, verifies, ok := n.vcache.ChainLookup(key); ok {
			n.met.Inc("crypto.verify", float64(verifies))
			return err
		}
		before := n.met.Get("crypto.verify")
		err := n.verifySRRSlow(m)
		n.vcache.ChainStore(key, err, int(n.met.Get("crypto.verify")-before))
		return err
	}
	return n.verifySRRSlow(m)
}

// srrChainKey digests the full content verifySRRSlow reads.
func srrChainKey(m *wire.RREQ) verifycache.Key {
	d := verifycache.NewChainDigest()
	d.Bytes(m.SIP[:])
	d.U32(m.Seq)
	d.Bytes(m.SPK)
	d.U64(m.Srn)
	d.Bytes(m.SrcSig)
	for _, h := range m.SRR {
		d.Bytes(h.IP[:])
		d.Bytes(h.PK)
		d.U64(h.Rn)
		d.Bytes(h.Sig)
	}
	return d.Key()
}

func (n *Node) verifySRRSlow(m *wire.RREQ) error {
	spk, err := identity.ParsePublicKey(n.cfg.Suite, m.SPK)
	if err != nil {
		return errBadIdentity("source key", err)
	}
	if !n.verifyCGA(m.SIP, m.SPK, m.Srn) {
		return errVerify("source CGA binding")
	}
	if !n.verify(spk, wire.SigRREQSource(m.SIP, m.Seq), m.SrcSig) {
		return errVerify("source signature")
	}
	for i, h := range m.SRR {
		pk, err := identity.ParsePublicKey(n.cfg.Suite, h.PK)
		if err != nil {
			return errBadIdentity("hop key", err)
		}
		if !n.verifyCGA(h.IP, h.PK, h.Rn) {
			return errVerifyHop("hop CGA binding", i)
		}
		if !n.verify(pk, wire.SigHop(h.IP, m.Seq), h.Sig) {
			return errVerifyHop("hop signature", i)
		}
	}
	return nil
}

// answerRREQ is the destination side: verify the secure route record, then
// return a signed RREP along the reverse path.
func (n *Node) answerRREQ(m *wire.RREQ) {
	if n.cfg.Secure {
		if err := n.verifySRR(m); err != nil {
			n.met.Add1("rreq.rejected")
			return
		}
	}
	rr := m.Route()
	rep := &wire.RREP{
		SIP: m.SIP,
		DIP: n.ident.Addr, // real, CGA-verifiable address (not an alias)
		Seq: m.Seq,
		RR:  rr,
	}
	if n.cfg.Secure {
		rep.Sig = n.sign(wire.SigRREP(m.SIP, m.Seq, rr))
		rep.DPK = n.ident.Pub.Bytes()
		rep.Drn = n.ident.Rn
	}
	n.met.Add1("rrep.sent")
	n.SendAlong(reverse(rr), m.SIP, rep)
}

func (n *Node) handleRREP(pkt *wire.Packet, m *wire.RREP) {
	n.met.Add1("rx.RREP")
	if m.SIP != n.ident.Addr {
		return
	}
	dst, d := n.findPending(m.Seq)
	if d == nil {
		n.met.Add1("rrep.unsolicited")
		return
	}

	if n.cfg.Secure {
		dpk, err := identity.ParsePublicKey(n.cfg.Suite, m.DPK)
		if err != nil || !n.verifyCGA(m.DIP, m.DPK, m.Drn) ||
			!n.verify(dpk, wire.SigRREP(m.SIP, m.Seq, m.RR), m.Sig) {
			n.met.Add1("rrep.rejected")
			return
		}
		// A reply for the DNS anycast must come from the real DNS server:
		// its key is the trust anchor every host carries.
		if isDNSAlias(dst) && string(m.DPK) != string(n.dnsPub.Bytes()) {
			n.met.Add1("rrep.rejected")
			return
		}
	}

	if isDNSAlias(dst) {
		// Remember the server's real address: unicasts must target it, as
		// no link layer resolves the anycast alias.
		n.aliases[dst] = m.DIP
	}
	route := dsr.Route{
		Relays: m.RR,
		// Alias routes (DNS anycast) are never re-served as CREPs: the
		// attestation binds the server's real address, not the alias.
		Attested: n.cfg.Secure && !isDNSAlias(dst),
		Seq:      m.Seq,
		Sig:      m.Sig,
		DPK:      m.DPK,
		Drn:      m.Drn,
	}
	n.installRoute(dst, route)
}

// findPending locates the discovery matching a reply sequence number.
// (Replies echo the RREQ seq; destinations are keyed separately because a
// reply for the DNS alias carries the server's real address.)
func (n *Node) findPending(seq uint32) (ipv6.Addr, *discovery) {
	//sbr6:commutative seqs come from the per-node nextSeq counter, so at most one discovery matches
	for dst, d := range n.pending {
		if d.seq == seq {
			return dst, d
		}
	}
	return ipv6.Addr{}, nil
}

func isDNSAlias(a ipv6.Addr) bool {
	return a == ipv6.DNS1 || a == ipv6.DNS2 || a == ipv6.DNS3
}

func (n *Node) installRoute(dst ipv6.Addr, route dsr.Route) {
	n.routes.Put(dst, route, n.sim.Now())
	n.met.Add1("route.installed")
	n.met.Observe("route.len", float64(route.Len()))
	if d, ok := n.pending[dst]; ok {
		delete(n.pending, dst)
		if d.timer != nil {
			d.timer.Cancel()
		}
		for _, w := range d.waiters {
			w(route, true)
		}
	}
}

// sendCREP answers another host's RREQ from this node's attested cache
// (Section 3.3): the fresh half (querier -> me) is signed now with my key;
// the cached half (me -> destination) still carries the destination's
// original signature.
func (n *Node) sendCREP(m *wire.RREQ, cached dsr.Route) {
	toMe := m.Route()
	crep := &wire.CREP{
		S2IP:  m.SIP,
		SIP:   n.ident.Addr,
		DIP:   m.DIP,
		Seq2:  m.Seq,
		RRToS: toMe,
		Seq:   cached.Seq,
		RRToD: cached.Relays,
		Sig2:  cached.Sig,
		DPK:   cached.DPK,
		Drn:   cached.Drn,
	}
	if n.cfg.Secure {
		crep.Sig1 = n.sign(wire.SigRREP(m.SIP, m.Seq, toMe))
		crep.SPK = n.ident.Pub.Bytes()
		crep.Srn = n.ident.Rn
	}
	n.met.Add1("crep.sent")
	n.SendAlong(reverse(toMe), m.SIP, crep)
}

func (n *Node) handleCREP(pkt *wire.Packet, m *wire.CREP) {
	n.met.Add1("rx.CREP")
	if m.S2IP != n.ident.Addr {
		return
	}
	d, ok := n.pending[m.DIP]
	if !ok || d.seq != m.Seq2 {
		n.met.Add1("crep.unsolicited")
		return
	}

	if n.cfg.Secure {
		// Fresh half: the cache holder signs (S2IP, seq2, RRToS) now; the
		// fresh seq2 defeats replay.
		spk, err := identity.ParsePublicKey(n.cfg.Suite, m.SPK)
		if err != nil || !n.verifyCGA(m.SIP, m.SPK, m.Srn) ||
			!n.verify(spk, wire.SigRREP(m.S2IP, m.Seq2, m.RRToS), m.Sig1) {
			n.met.Add1("crep.rejected")
			return
		}
		// Cached half: the destination's original attestation must bind the
		// holder, its old sequence number, and the cached relays. The same
		// attestation recurs every time the holder re-serves its cache
		// entry, so this is a signature-memo hot spot.
		dpk, err := identity.ParsePublicKey(n.cfg.Suite, m.DPK)
		if err != nil || !n.verifyCGA(m.DIP, m.DPK, m.Drn) ||
			!n.verify(dpk, wire.SigRREP(m.SIP, m.Seq, m.RRToD), m.Sig2) {
			n.met.Add1("crep.rejected")
			return
		}
	}

	// Full path: me -> RRToS -> holder -> RRToD -> destination. Reject
	// routes that revisit any node (the paper's protocol inherits DSR's
	// loop-freedom requirement; a looping cached reply is useless or
	// hostile).
	relays := append(append([]ipv6.Addr(nil), m.RRToS...), m.SIP)
	relays = append(relays, m.RRToD...)
	if hasDuplicateHop(n.ident.Addr, relays, m.DIP) {
		n.met.Add1("crep.rejected")
		return
	}
	// Routes learned via CREP carry no attestation this node could re-serve
	// (the cached signature binds the holder, not us).
	n.installRoute(m.DIP, dsr.Route{Relays: relays})
}

// crepWouldLoop reports whether serving the cached relays to the querier
// would build a path visiting some node twice: the candidate full path is
// querier, SRR hops..., holder, cached relays..., destination.
func crepWouldLoop(m *wire.RREQ, holder ipv6.Addr, cached []ipv6.Addr) bool {
	seen := map[ipv6.Addr]bool{m.SIP: true, m.DIP: true, holder: true}
	if m.SIP == m.DIP || m.SIP == holder || m.DIP == holder {
		return true
	}
	for _, h := range m.SRR {
		if seen[h.IP] {
			return true
		}
		seen[h.IP] = true
	}
	for _, rel := range cached {
		if seen[rel] {
			return true
		}
		seen[rel] = true
	}
	return false
}

// hasDuplicateHop reports whether the path src, relays..., dst revisits
// any node.
func hasDuplicateHop(src ipv6.Addr, relays []ipv6.Addr, dst ipv6.Addr) bool {
	seen := map[ipv6.Addr]bool{src: true}
	if dst == src {
		return true
	}
	for _, rel := range relays {
		if seen[rel] || rel == dst {
			return true
		}
		seen[rel] = true
	}
	return false
}

// Small error helpers keep verifySRR's failure reasons greppable in tests.

type verifyError string

func (e verifyError) Error() string { return "core: verification failed: " + string(e) }

func errVerify(what string) error { return verifyError(what) }

func errVerifyHop(what string, hop int) error {
	return verifyError(what)
}

func errBadIdentity(what string, err error) error {
	return verifyError(what + ": " + err.Error())
}
