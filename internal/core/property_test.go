package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sbr6/internal/identity"
	"sbr6/internal/wire"
)

// Property: a randomized secure route record verifies if and only if it
// was not tampered with — generalizing the hand-written cases in
// verify_test.go — and the cached and uncached verifiers always agree.
//
// The generator draws a chain of random length from a pool of honest
// identities, signs it correctly, then applies one randomly chosen
// mutation (or none). Verification must accept exactly the untampered
// chains.

// tamperOps enumerates the mutations; each returns false when it could
// not apply (e.g. no hops to tamper with), in which case the chain stays
// honest.
var tamperOps = []struct {
	name  string
	apply func(m *wire.RREQ, r *rand.Rand, ids []*identity.Identity) bool
}{
	{"flip source sig", func(m *wire.RREQ, r *rand.Rand, _ []*identity.Identity) bool {
		if len(m.SrcSig) == 0 {
			return false
		}
		m.SrcSig[r.Intn(len(m.SrcSig))] ^= 1 << uint(r.Intn(8))
		return true
	}},
	{"bump source rn", func(m *wire.RREQ, r *rand.Rand, _ []*identity.Identity) bool {
		m.Srn += 1 + uint64(r.Intn(1000))
		return true
	}},
	{"swap source key", func(m *wire.RREQ, r *rand.Rand, ids []*identity.Identity) bool {
		pk := ids[r.Intn(len(ids))].Pub.Bytes()
		if string(pk) == string(m.SPK) {
			return false
		}
		m.SPK = pk
		return true
	}},
	{"shift seq after signing", func(m *wire.RREQ, r *rand.Rand, _ []*identity.Identity) bool {
		m.Seq += 1 + uint32(r.Intn(100))
		return true
	}},
	{"garbage source key", func(m *wire.RREQ, r *rand.Rand, _ []*identity.Identity) bool {
		m.SPK = []byte{byte(r.Intn(256))}
		return true
	}},
	{"flip hop sig", func(m *wire.RREQ, r *rand.Rand, _ []*identity.Identity) bool {
		if len(m.SRR) == 0 {
			return false
		}
		h := &m.SRR[r.Intn(len(m.SRR))]
		if len(h.Sig) == 0 {
			return false
		}
		h.Sig[r.Intn(len(h.Sig))] ^= 1 << uint(r.Intn(8))
		return true
	}},
	{"swap hop address", func(m *wire.RREQ, r *rand.Rand, ids []*identity.Identity) bool {
		if len(m.SRR) == 0 {
			return false
		}
		h := &m.SRR[r.Intn(len(m.SRR))]
		addr := ids[r.Intn(len(ids))].Addr
		if addr == h.IP {
			return false
		}
		h.IP = addr
		return true
	}},
	{"bump hop rn", func(m *wire.RREQ, r *rand.Rand, _ []*identity.Identity) bool {
		if len(m.SRR) == 0 {
			return false
		}
		m.SRR[r.Intn(len(m.SRR))].Rn++
		return true
	}},
	{"strip hop key", func(m *wire.RREQ, r *rand.Rand, _ []*identity.Identity) bool {
		if len(m.SRR) == 0 {
			return false
		}
		m.SRR[r.Intn(len(m.SRR))].PK = nil
		return true
	}},
	{"cross-splice hop sig", func(m *wire.RREQ, r *rand.Rand, _ []*identity.Identity) bool {
		if len(m.SRR) < 2 {
			return false
		}
		i := r.Intn(len(m.SRR))
		j := (i + 1 + r.Intn(len(m.SRR)-1)) % len(m.SRR)
		m.SRR[i].Sig = m.SRR[j].Sig
		return true
	}},
	{"forge hop with source key", func(m *wire.RREQ, r *rand.Rand, ids []*identity.Identity) bool {
		if len(m.SRR) == 0 {
			return false
		}
		h := &m.SRR[r.Intn(len(m.SRR))]
		if string(h.PK) == string(ids[0].Pub.Bytes()) {
			return false // the "forger" would be the legitimate signer
		}
		h.Sig = ids[0].Sign(wire.SigHop(h.IP, m.Seq))
		return true
	}},
}

func TestPropertySRRVerifiesIffUntampered(t *testing.T) {
	cached, pool := newCachedVerifier(t, 0)
	direct, _ := newCachedVerifier(t, -1)
	r := rand.New(rand.NewSource(42))

	seq := uint32(0)
	prop := func(hopSel uint16, tamperSel uint8) bool {
		seq++
		src := pool[int(hopSel)%len(pool)]
		nHops := int(hopSel>>4) % 4
		var hops []*identity.Identity
		for i := 0; i < nHops; i++ {
			hops = append(hops, pool[(int(hopSel)+i+1)%len(pool)])
		}
		m := honestRREQ(src, hops, seq)

		tampered := false
		name := "none"
		// tamperSel == 0 keeps roughly 1 in 12 chains honest; everything
		// else picks one mutation (which may fail to apply on short
		// chains, leaving the chain honest).
		if tamperSel%12 != 0 {
			op := tamperOps[int(tamperSel)%len(tamperOps)]
			name = op.name
			tampered = op.apply(m, r, pool)
		}

		errCached := cached.verifySRR(m)
		errDirect := direct.verifySRR(m)
		if (errCached == nil) != (errDirect == nil) {
			t.Logf("tamper %q: cached verdict %v, direct verdict %v", name, errCached, errDirect)
			return false
		}
		if accepted := errCached == nil; accepted == tampered {
			t.Logf("tamper %q (applied=%v): accepted=%v, err=%v", name, tampered, accepted, errCached)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
	if cached.VerifyCacheStats().Misses() == 0 {
		t.Fatal("property run never exercised the cache")
	}
}
