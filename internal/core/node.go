// Package core implements the paper's contribution: a MANET node stack that
// bootstraps securely (CGA address autoconfiguration with extended DAD and
// 6DNAR registration, Section 3.1), offers secure DNS services (Section
// 3.2), discovers routes with per-hop identity attestations derived from
// DSR (Section 3.3), and maintains routes with signed RERRs, credit
// management and black-hole probing (Section 3.4).
//
// The same Node runs the insecure DSR baseline when Config.Secure is false:
// signature fields stay empty and no verification happens, which is exactly
// the comparison surface the attack experiments measure.
package core

import (
	"hash/fnv"
	"math/rand"
	"time"

	"sbr6/internal/audit"
	"sbr6/internal/bindtable"
	"sbr6/internal/credit"
	"sbr6/internal/dnssrv"
	"sbr6/internal/dsr"
	"sbr6/internal/identity"
	"sbr6/internal/ipv6"
	"sbr6/internal/ndp"
	"sbr6/internal/radio"
	"sbr6/internal/sim"
	"sbr6/internal/trace"
	"sbr6/internal/verifycache"
	"sbr6/internal/wire"
)

// Config selects protocol variant and timing.
type Config struct {
	// Secure enables the paper's protocol; false runs plain DSR.
	Secure bool
	// UseCredits enables the credit mechanism of Section 3.4.
	UseCredits bool
	// UseCache lets intermediates answer RREQs with CREPs and sources
	// reuse cached routes.
	UseCache bool
	// ProbeOnLoss enables black-hole probing after repeated silent losses.
	ProbeOnLoss bool
	// Salvage lets a relay that hits a broken link re-route in-flight data
	// over its own cached route (DSR packet salvaging) instead of just
	// reporting the error.
	Salvage bool
	// MaxSalvage bounds how often one packet may be salvaged.
	MaxSalvage uint8

	// VerifyCache bounds the per-node memoized-verification cache
	// (internal/verifycache): CGA bindings, signature checks and whole
	// route-record chains are cached under content digests. 0 selects
	// verifycache.DefaultEntries (the cache is on by default); a negative
	// value disables memoization entirely. Runs with and without the
	// cache produce byte-for-byte identical results — the cache only
	// avoids recomputing checks whose full input was seen before.
	VerifyCache int
	// BindTable bounds the shared read-mostly CGA-binding table
	// (internal/bindtable) the scenario attaches beneath every node's
	// memo: one table per simulation, or one per region under the
	// sharded core. 0 selects bindtable.DefaultEntries (the table is on
	// by default); a negative value disables cross-node sharing. Runs
	// with and without the table produce byte-for-byte identical
	// results — it only avoids recomputing a pure function another node
	// already evaluated on the same event loop.
	BindTable int
	// BindParanoia makes every binding-table hit recompute the
	// primitive and panic on disagreement — the "poisoned" arm of the
	// differential suite, never on in production runs.
	BindParanoia bool
	// FloodCache bounds each per-node duplicate-flood suppression set
	// (AREQ, RREQ and DNS-control floods). 0 selects 4096 entries —
	// enough below ~1000 nodes; the scenario harness scales it with the
	// network so 10k-node DAD floods are deduplicated instead of being
	// re-processed when the seen-set thrashes.
	FloodCache int

	// Audit configures the post-formation address audit sweep
	// (internal/audit): periodic signed re-advertisement of the CGA
	// binding with deterministic conflict resolution. The zero value
	// disables it — no events, no randomness, byte-identical runs.
	Audit audit.Config

	Suite  identity.Suite
	DAD    ndp.Config
	Credit credit.Config

	RouteTTL         time.Duration // cache entry lifetime
	DiscoveryTimeout time.Duration // per-attempt RREQ wait
	DiscoveryRetries int
	AckTimeout       time.Duration // end-to-end ack wait before counting a loss
	ResolveTimeout   time.Duration // DNS query wait
	TTL              uint8         // flood / forwarding hop limit

	// LossStreak is how many consecutive unacknowledged packets to one
	// destination trigger a probe of the route.
	LossStreak int
	// RERRWindow and RERRThreshold flag a host reporting more than
	// RERRThreshold route errors within RERRWindow as a suspected spammer.
	RERRWindow    time.Duration
	RERRThreshold int
}

// DefaultConfig returns the secure protocol with every defense enabled.
func DefaultConfig() Config {
	return Config{
		Secure:           true,
		UseCredits:       true,
		UseCache:         true,
		ProbeOnLoss:      true,
		Salvage:          true,
		MaxSalvage:       1,
		Suite:            identity.SuiteEd25519,
		DAD:              ndp.DefaultConfig(),
		Credit:           credit.DefaultConfig(),
		RouteTTL:         30 * time.Second,
		DiscoveryTimeout: 2 * time.Second,
		DiscoveryRetries: 2,
		AckTimeout:       1500 * time.Millisecond,
		ResolveTimeout:   4 * time.Second,
		TTL:              32,
		LossStreak:       2,
		RERRWindow:       30 * time.Second,
		RERRThreshold:    4,
	}
}

// BaselineConfig returns plain DSR with no defenses, the comparison point.
func BaselineConfig() Config {
	cfg := DefaultConfig()
	cfg.Secure = false
	cfg.UseCredits = false
	cfg.ProbeOnLoss = false
	return cfg
}

// Behavior lets the attack package hook a node's pipeline. A nil Behavior
// is an honest node.
type Behavior interface {
	// Intercept sees every received packet before normal processing and
	// may consume it by returning true.
	Intercept(n *Node, pkt *wire.Packet, raw []byte) bool
	// DropForward reports whether to silently drop a unicast this node was
	// asked to relay (the black-hole primitive).
	DropForward(n *Node, pkt *wire.Packet) bool
}

// Node is one MANET host.
type Node struct {
	sim    *sim.Simulator
	medium *radio.Medium
	link   radio.NodeID
	ident  *identity.Identity
	dnsPub identity.PublicKey
	cfg    Config
	rng    *rand.Rand
	met    *trace.Metrics

	dns *dnssrv.Server // non-nil only on the DNS node

	// enc amortizes the codec's scratch state across this node's
	// transmissions (see wire.Encoder); single-threaded like the node.
	enc wire.Encoder

	autoconf   *ndp.Initiator
	configured bool
	dead       bool // Shutdown ran: every entry point and transmit path is inert

	neighbors map[ipv6.Addr]radio.NodeID

	areqSeen  *ndp.FloodCache
	rreqSeen  *ndp.FloodCache
	dnsFloods *ndp.FloodCache // content-hash dedup for flood-routed DNS control
	auditSeen *ndp.FloodCache // audit re-advertisement flood dedup

	// Audit sweep state: the current sweep round and the challenge the
	// in-flight advertisement carries (0 = none outstanding).
	auditSeq uint32
	auditCh  uint64
	// auditRebind, when non-nil, carries a registered name (and the proof
	// material of the abandoned binding) across an audit rekey's DAD
	// re-run: the name is restored and re-bound through the signed update
	// protocol once the fresh address survives its objection window.
	auditRebind *pendingRebind

	// vcache memoizes CGA-binding and signature checks (nil = disabled;
	// every verify helper is nil-safe and computes directly).
	vcache *verifycache.Cache
	// bindings is the simulation- or region-shared CGA-binding table
	// (nil = disabled). With a cache it sits beneath the memo's CGA
	// miss path; without one it still dedups bindings across nodes.
	bindings *bindtable.Table

	routes  *dsr.Cache
	credits *credit.Table
	rreqSeq uint32

	pending     map[ipv6.Addr]*discovery
	outstanding map[ackKey]*sentData
	lossStreak  map[ipv6.Addr]int
	probes      map[ipv6.Addr]*probeState
	rerrTimes   map[ipv6.Addr][]sim.Time

	resolves map[string]*resolveState
	rebind   *rebindState
	// aliases maps an anycast address (the DNS discovery addresses) to the
	// real, CGA-verifiable address learned from the RREP that answered a
	// discovery for the alias.
	aliases map[ipv6.Addr]ipv6.Addr

	nextFlow uint32
	dataSeq  uint32

	// Behavior, when non-nil, makes the node adversarial.
	Behavior Behavior
	// OnData is invoked for every application payload delivered to this
	// node as the final destination.
	OnData func(src ipv6.Addr, d *wire.Data)
	// OnConfigured is invoked once secure DAD completes.
	OnConfigured func()
}

type ackKey struct {
	flow uint32
	seq  uint32
}

type sentData struct {
	dst    ipv6.Addr
	relays []ipv6.Addr
	timer  *sim.Timer

	// probe links a probe packet back to the probe that sent it, so its
	// acknowledgement marks exactly that probe's target as answered.
	// Resolving the probe through the flow id instead would be ambiguous:
	// probe flow ids can repeat across probes, and picking a winner by
	// iterating the probes map made runs nondeterministic.
	probe    *probeState
	probeIdx int
}

type discovery struct {
	seq     uint32
	retries int
	timer   *sim.Timer
	waiters []func(route dsr.Route, ok bool)
}

type probeState struct {
	relays []ipv6.Addr
	acked  []bool
}

type resolveState struct {
	ch    uint64
	timer *sim.Timer
	cb    func(ipv6.Addr, bool)
}

type rebindState struct {
	oldIP ipv6.Addr
	oldRn uint64
	ch    uint64
	// pre marks a rebind whose address change already happened (the audit
	// rekey path): the old binding above was recorded up front and the
	// challenge step must NOT regenerate again.
	pre     bool
	chTaken bool
	timer   *sim.Timer
	cb      func(ok bool)
}

// pendingRebind is a name registration waiting out an audit rekey's DAD
// re-run, plus the abandoned binding the update proof needs.
type pendingRebind struct {
	name  string
	oldIP ipv6.Addr
	oldRn uint64
}

// New creates a node. The caller attaches it to the medium (the scenario
// owns positions): medium.AddNode(link, track.Position, node).
func New(s *sim.Simulator, medium *radio.Medium, link radio.NodeID, ident *identity.Identity,
	dnsPub identity.PublicKey, cfg Config, rng *rand.Rand, met *trace.Metrics) *Node {
	if met == nil {
		met = trace.NewMetrics()
	}
	if cfg.TTL == 0 {
		cfg.TTL = 32
	}
	floodCap := cfg.FloodCache
	if floodCap <= 0 {
		floodCap = 4096
	}
	var vc *verifycache.Cache
	if cfg.VerifyCache >= 0 {
		vc = verifycache.New(cfg.VerifyCache) // 0 selects the default size
	}
	n := &Node{
		sim: s, medium: medium, link: link, ident: ident, dnsPub: dnsPub,
		cfg: cfg, rng: rng, met: met, vcache: vc,
		neighbors:   make(map[ipv6.Addr]radio.NodeID),
		areqSeen:    ndp.NewFloodCache(floodCap),
		rreqSeen:    ndp.NewFloodCache(floodCap),
		dnsFloods:   ndp.NewFloodCache(floodCap),
		auditSeen:   ndp.NewFloodCache(floodCap),
		routes:      dsr.NewCache(ident.Addr, sim.Duration(cfg.RouteTTL), 3),
		credits:     credit.New(cfg.Credit),
		pending:     make(map[ipv6.Addr]*discovery),
		outstanding: make(map[ackKey]*sentData),
		lossStreak:  make(map[ipv6.Addr]int),
		probes:      make(map[ipv6.Addr]*probeState),
		rerrTimes:   make(map[ipv6.Addr][]sim.Time),
		resolves:    make(map[string]*resolveState),
		aliases:     make(map[ipv6.Addr]ipv6.Addr),
	}
	n.autoconf = ndp.NewInitiator(s, rng, ident, dnsPub, cfg.DAD)
	if n.vcache != nil {
		// Leave Verify nil when the cache is disabled so ndp takes its
		// documented direct-computation fallback (a typed-nil interface
		// would bypass it).
		n.autoconf.Verify = n.vcache
	}
	n.autoconf.SendAREQ = n.sendAREQ
	n.autoconf.OnConfigured = n.dadDone
	n.autoconf.Rename = func(old string) string { return old + "-r" }
	return n
}

// AttachDNS makes this node the MANET's DNS server; it then also owns the
// well-known anycast address ipv6.DNS1. The server's CGA and signature
// checks route through this node's memoized verifier so their cost lands
// in the same Stats as every other check the node performs.
func (n *Node) AttachDNS(srv *dnssrv.Server) {
	n.dns = srv
	srv.Verifier = n.verifier()
}

// SetBindings attaches the shared CGA-binding table. The scenario calls
// it once per node right after construction: with the memo cache on, the
// cache consults the table on local misses; with the cache disabled, the
// table alone still dedups bindings across nodes.
func (n *Node) SetBindings(t *bindtable.Table) {
	if t == nil {
		return
	}
	n.bindings = t
	if n.vcache != nil {
		n.vcache.SetShared(t)
	} else {
		// ndp's pluggable checks flow through the table adapter. Only
		// assign when the table exists — a typed-nil interface would
		// defeat ndp's documented direct-computation fallback.
		n.autoconf.Verify = tableVerifier{t}
	}
	if n.dns != nil {
		n.dns.Verifier = n.verifier()
	}
}

// tableVerifier is the ndp.Verifier of a node whose per-node memo is
// disabled but whose simulation shares a binding table: CGA checks go
// through the table, signature checks compute directly (the table holds
// only bindings).
type tableVerifier struct{ t *bindtable.Table }

func (v tableVerifier) VerifyCGA(addr ipv6.Addr, pk []byte, rn uint64) bool {
	return v.t.Verify(addr, pk, rn)
}

func (v tableVerifier) VerifySig(pk identity.PublicKey, msg, sig []byte) bool {
	return pk.Verify(msg, sig)
}

// Accessors used by scenarios, examples and the attack package.

// Addr returns the node's current (possibly tentative) address.
func (n *Node) Addr() ipv6.Addr { return n.ident.Addr }

// Name returns the node's domain name ("" when none).
func (n *Node) Name() string { return n.ident.Name }

// Identity exposes the node's cryptographic identity.
func (n *Node) Identity() *identity.Identity { return n.ident }

// Configured reports whether secure DAD has completed.
func (n *Node) Configured() bool { return n.configured }

// Metrics returns the node's counters.
func (n *Node) Metrics() *trace.Metrics { return n.met }

// Credits returns the node's credit table.
func (n *Node) Credits() *credit.Table { return n.credits }

// Config returns the node's configuration.
func (n *Node) Config() Config { return n.cfg }

// Sim returns the simulator driving the node.
func (n *Node) Sim() *sim.Simulator { return n.sim }

// Rand returns the node's random source.
func (n *Node) Rand() *rand.Rand { return n.rng }

// DNS returns the attached DNS server, or nil.
func (n *Node) DNS() *dnssrv.Server { return n.dns }

// LinkID returns the node's radio identifier.
func (n *Node) LinkID() radio.NodeID { return n.link }

// RouteTo reports the relays of the best cached route to dst.
func (n *Node) RouteTo(dst ipv6.Addr) ([]ipv6.Addr, bool) {
	r, ok := n.routes.Best(dst, n.sim.Now(), n.routeScore())
	if !ok {
		return nil, false
	}
	return r.Relays, true
}

// Start begins the node's life: secure duplicate address detection, then —
// once configured — normal operation.
func (n *Node) Start() {
	if n.dead {
		return
	}
	n.autoconf.Start()
}

// Shutdown removes the node from the simulation for good: every pending
// timer it armed is cancelled (releasing the captured closures), DAD is
// stopped, and a dead flag makes every entry point — radio delivery,
// application sends, resolves, audit advertisements — and every transmit
// path inert, so callbacks still referenced by in-flight events (a
// unicast ACK outcome, an untracked probe conclusion) fire harmlessly.
// The caller detaches the node from the medium afterwards
// (radio.Medium.RemoveNode); under the sharded engine both happen at a
// barrier while the owning region is quiescent. Shutdown is idempotent
// and there is no restart: a returning host joins as a fresh identity,
// exactly like the paper's model of departure.
func (n *Node) Shutdown() {
	if n.dead {
		return
	}
	n.dead = true
	n.configured = false
	n.autoconf.Stop()
	//sbr6:commutative Timer.Cancel removal order cannot reorder surviving events: the heap pops by the total (at, owner, seq) key
	for _, d := range n.pending {
		if d.timer != nil {
			d.timer.Cancel()
		}
	}
	//sbr6:commutative Timer.Cancel removal order cannot reorder surviving events: the heap pops by the total (at, owner, seq) key
	for _, sd := range n.outstanding {
		if sd.timer != nil {
			sd.timer.Cancel()
		}
	}
	//sbr6:commutative Timer.Cancel removal order cannot reorder surviving events: the heap pops by the total (at, owner, seq) key
	for _, st := range n.resolves {
		if st.timer != nil {
			st.timer.Cancel()
		}
	}
	if n.rebind != nil {
		if n.rebind.timer != nil {
			n.rebind.timer.Cancel()
		}
		n.rebind = nil
	}
	// Drop per-peer state so the only thing a departed node pins is its
	// metrics sink (merged into the scenario's graveyard by the caller).
	// Untracked events that survive (finishProbe) look their state up by
	// key and no-op on the emptied maps.
	n.neighbors = make(map[ipv6.Addr]radio.NodeID)
	n.pending = make(map[ipv6.Addr]*discovery)
	n.outstanding = make(map[ackKey]*sentData)
	n.lossStreak = make(map[ipv6.Addr]int)
	n.probes = make(map[ipv6.Addr]*probeState)
	n.rerrTimes = make(map[ipv6.Addr][]sim.Time)
	n.resolves = make(map[string]*resolveState)
	n.aliases = make(map[ipv6.Addr]ipv6.Addr)
	n.auditRebind = nil
}

// Dead reports whether Shutdown has run.
func (n *Node) Dead() bool { return n.dead }

// StartConfigured skips DAD (scripted experiments that pre-assign
// identities use this).
func (n *Node) StartConfigured() {
	n.configured = true
	n.routes.SetOwner(n.ident.Addr)
}

// DADState exposes the autoconfiguration state for tests and reports.
func (n *Node) DADState() ndp.State { return n.autoconf.State() }

// DADLatency reports how long DAD took once configured.
func (n *Node) DADLatency() time.Duration { return n.autoconf.Duration }

func (n *Node) dadDone() {
	n.configured = true
	n.routes.SetOwner(n.ident.Addr)
	n.met.Observe("dad.latency_s", n.autoconf.Duration.Seconds())
	if r := n.auditRebind; r != nil {
		// The audit rekey parked this registration: the fresh address
		// stands, so restore the name and move its DNS binding over through
		// the signed update protocol, proving ownership of both CGAs.
		n.auditRebind = nil
		n.ident.Name = r.name
		n.rebindNameFrom(r.oldIP, r.oldRn)
	}
	if n.OnConfigured != nil {
		n.OnConfigured()
	}
}

func (n *Node) ownsAddr(a ipv6.Addr) bool {
	if a == n.ident.Addr {
		return true
	}
	return n.dns != nil && (a == ipv6.DNS1 || a == ipv6.DNS2 || a == ipv6.DNS3)
}

// ownAddrForDiscovery maps an alias the node answers for to its real
// address (RREPs must carry the CGA-verifiable address).
func (n *Node) sign(msg []byte) []byte {
	n.met.Add1("crypto.sign")
	return n.ident.Sign(msg)
}

// verify counts one logical signature verification and performs it through
// the memo cache when enabled. The counter tracks verification *requests*,
// not primitive operations, so cached and uncached runs stay byte-for-byte
// identical; the cache's own Stats record how many primitives were avoided.
func (n *Node) verify(pk identity.PublicKey, msg, sig []byte) bool {
	n.met.Add1("crypto.verify")
	return n.vcache.VerifySig(pk, msg, sig)
}

// verifyCGA checks the CGA binding addr == H(pk, rn) through the memo
// cache, which in turn consults the shared binding table on a local miss.
// With the cache disabled the table (nil-safe) is checked alone. CGA
// checks are not counted under crypto.verify (they never were: the
// counter follows the paper's signature-operation accounting).
func (n *Node) verifyCGA(addr ipv6.Addr, pk []byte, rn uint64) bool {
	if n.vcache == nil {
		return n.bindings.Verify(addr, pk, rn)
	}
	return n.vcache.VerifyCGA(addr, pk, rn)
}

// VerifyCacheStats exposes the memo cache's traffic counters (zero when
// the cache is disabled). The benchmarks and the differential suite use
// it to prove the primitive-operation count actually drops.
func (n *Node) VerifyCacheStats() verifycache.Stats { return n.vcache.Stats() }

// VerifyRouteRecord runs the Section 3.3 route-record verification on m,
// exactly as the destination and CREP-serving intermediates do. Exported
// for the scale benchmarks and property tests.
func (n *Node) VerifyRouteRecord(m *wire.RREQ) error { return n.verifySRR(m) }

// --- Receive path ---

// Deliver implements radio.Handler.
func (n *Node) Deliver(from radio.NodeID, payload []byte) {
	if n.dead {
		return
	}
	pkt, err := wire.Decode(payload)
	if err != nil {
		n.met.Add1("rx.malformed")
		return
	}
	n.met.Add1("rx.frames")
	if prev, ok := transmitterIP(pkt); ok {
		n.neighbors[prev] = from
	}
	if n.Behavior != nil && n.Behavior.Intercept(n, pkt, payload) {
		return
	}
	n.dispatch(pkt, payload)
}

func (n *Node) dispatch(pkt *wire.Packet, raw []byte) {
	// Flood-routed DNS control (warn-AREPs before routes exist).
	if pkt.Dst == ipv6.DNS1 && len(pkt.SrcRoute) == 0 {
		n.handleDNSFlood(pkt, raw)
		return
	}
	switch m := pkt.Msg.(type) {
	case *wire.AREQ:
		n.handleAREQ(pkt, m)
	case *wire.RREQ:
		n.handleRREQ(pkt, m)
	case *wire.AuditAdv:
		n.handleAuditAdv(pkt, m)
	default:
		n.handleSourceRouted(pkt)
	}
}

// transmitterIP infers the link-layer transmitter's IP address from the
// packet, standing in for NDP link-layer address resolution: flooded
// requests name the transmitter as the last route-record entry (or the
// origin), source-routed packets as the hop before the current index.
func transmitterIP(pkt *wire.Packet) (ipv6.Addr, bool) {
	switch m := pkt.Msg.(type) {
	case *wire.AREQ:
		if len(m.RR) > 0 {
			return m.RR[len(m.RR)-1], true
		}
		return pkt.Src, true
	case *wire.AuditAdv:
		if len(m.RR) > 0 {
			return m.RR[len(m.RR)-1], true
		}
		return pkt.Src, true
	case *wire.RREQ:
		if len(m.SRR) > 0 {
			return m.SRR[len(m.SRR)-1].IP, true
		}
		return pkt.Src, true
	default:
		if pkt.Hop == 0 {
			return pkt.Src, true
		}
		if int(pkt.Hop) <= len(pkt.SrcRoute) {
			return pkt.SrcRoute[pkt.Hop-1], true
		}
		return ipv6.Addr{}, false
	}
}

// handleSourceRouted processes unicast packets: relay when this node is the
// current hop, consume when it is the destination.
func (n *Node) handleSourceRouted(pkt *wire.Packet) {
	if int(pkt.Hop) < len(pkt.SrcRoute) {
		if pkt.SrcRoute[pkt.Hop] == n.ident.Addr {
			n.forwardUnicast(pkt)
		}
		return
	}
	if n.ownsAddr(pkt.Dst) {
		n.consume(pkt)
	}
}

func (n *Node) consume(pkt *wire.Packet) {
	switch m := pkt.Msg.(type) {
	case *wire.AREP:
		n.handleAREP(pkt, m)
	case *wire.DREP:
		n.handleDREP(pkt, m)
	case *wire.AuditObj:
		n.handleAuditObj(pkt, m)
	case *wire.RREP:
		n.handleRREP(pkt, m)
	case *wire.CREP:
		n.handleCREP(pkt, m)
	case *wire.RERR:
		n.handleRERR(pkt, m)
	case *wire.Data:
		n.handleData(pkt, m)
	case *wire.Ack:
		n.handleAck(pkt, m)
	case *wire.DNSQuery:
		n.handleDNSQuery(pkt, m)
	case *wire.DNSAnswer:
		n.handleDNSAnswer(pkt, m)
	case *wire.UpdateReq:
		n.handleUpdateReq(pkt, m)
	case *wire.UpdateChal:
		n.handleUpdateChal(pkt, m)
	case *wire.Update:
		n.handleUpdate(pkt, m)
	case *wire.UpdateResult:
		n.handleUpdateResult(pkt, m)
	default:
		n.met.Add1("rx.unhandled")
	}
}

// --- Transmit primitives ---

func (n *Node) account(pkt *wire.Packet, size int) {
	n.met.Add1("tx." + pkt.Msg.Type().String())
	switch pkt.Msg.(type) {
	case *wire.Data:
		n.met.Inc("tx.bytes.data", float64(size))
	default:
		n.met.Inc("tx.bytes.control", float64(size))
	}
	n.met.Inc("tx.bytes.total", float64(size))
}

// encodeFrame serializes pkt into a frame checked out of the medium's
// pool — sized exactly via the counting EncodedSize, so the append never
// grows the buffer — and accounts the transmitted bytes. The caller owns
// the returned frame and must hand it to BroadcastFrame/UnicastFrame or
// return it with ReleaseFrame on every non-transmitting path.
func (n *Node) encodeFrame(pkt *wire.Packet) []byte {
	raw := n.enc.AppendEncode(n.medium.Frame(n.enc.Size(pkt)), pkt)
	n.account(pkt, len(raw))
	return raw
}

// broadcastPacket encodes and broadcasts a packet frame.
func (n *Node) broadcastPacket(pkt *wire.Packet) {
	if n.dead {
		return
	}
	n.medium.BroadcastFrame(n.link, n.encodeFrame(pkt))
}

// RawBroadcast transmits pre-encoded bytes unmodified; the replay attacker
// uses it to retransmit captured frames. The bytes count toward
// tx.bytes.total like any other transmission and are additionally broken
// out as tx.bytes.raw, preserving the accounting invariant
// total == control + data + raw. The frame stays caller-owned (attackers
// replay the same capture repeatedly), so it is never pooled.
func (n *Node) RawBroadcast(raw []byte) {
	if n.dead {
		return
	}
	n.met.Inc("tx.bytes.total", float64(len(raw)))
	n.met.Inc("tx.bytes.raw", float64(len(raw)))
	n.met.Add1("tx.raw")
	n.medium.Broadcast(n.link, raw)
}

// Flood broadcasts msg network-wide from this node.
func (n *Node) Flood(msg wire.Message, ttl uint8) {
	n.broadcastPacket(&wire.Packet{Src: n.ident.Addr, Dst: ipv6.AllNodes, TTL: ttl, Msg: msg})
}

// SendAlong source-routes msg to dst via the given relays.
func (n *Node) SendAlong(relays []ipv6.Addr, dst ipv6.Addr, msg wire.Message) {
	pkt := &wire.Packet{Src: n.ident.Addr, Dst: dst, TTL: n.cfg.TTL, SrcRoute: relays, Msg: msg}
	n.sendSourceRouted(pkt, nil)
}

// lastHopBroadcast reports whether the final hop toward dst must be
// broadcast because the destination may not hold a usable address yet
// (the paper's footnote on AREP delivery; DREPs share the constraint).
// Audit objections share it for a different reason: the destination address
// is by definition held by two nodes, so a neighbour-table unicast could
// deliver the objection to the objector's own side of the conflict.
func lastHopBroadcast(msg wire.Message) bool {
	switch msg.(type) {
	case *wire.AREP, *wire.DREP, *wire.AuditObj:
		return true
	default:
		return false
	}
}

// sendSourceRouted transmits pkt toward its next hop. onFail, if non-nil,
// is invoked with the next-hop address when the link-layer reports no
// delivery (out of range, down, lost) or when the neighbour cannot be
// resolved.
func (n *Node) sendSourceRouted(pkt *wire.Packet, onFail func(next ipv6.Addr)) {
	if n.dead {
		// An in-flight ACK-outcome callback may still route here after
		// Shutdown; the node no longer has a radio port to transmit from.
		return
	}
	next, ok := pkt.NextHop()
	if !ok {
		n.met.Add1("tx.route_exhausted")
		return
	}
	raw := n.encodeFrame(pkt)
	if next == pkt.Dst && lastHopBroadcast(pkt.Msg) {
		n.medium.BroadcastFrame(n.link, raw)
		return
	}
	nid, known := n.neighbors[next]
	if !known {
		n.met.Add1("tx.no_neighbor")
		n.medium.ReleaseFrame(raw) // encoded but never transmitted
		if onFail != nil {
			onFail(next)
		}
		return
	}
	n.medium.UnicastFrame(n.link, nid, raw, func(acked bool) {
		if !acked && onFail != nil {
			onFail(next)
		}
	})
}

// maxFloodRecord caps hop-accumulated route records with headroom under
// the codec's 255-hop route limit.
const maxFloodRecord = 250

// relayFlood rebroadcasts a flooded request with this node appended to its
// route record — the shared relay step of AREQ and audit-advertisement
// floods. rr is the incoming record; rebuild wraps the extended record
// back into the concrete message. Unconfigured nodes cannot appear in a
// route record and stay silent.
func (n *Node) relayFlood(pkt *wire.Packet, rr []ipv6.Addr, rebuild func(rr []ipv6.Addr) wire.Message) {
	if !n.configured || pkt.TTL <= 1 || len(rr) >= maxFloodRecord {
		return
	}
	ext := append(append([]ipv6.Addr(nil), rr...), n.ident.Addr)
	n.broadcastPacket(&wire.Packet{Src: pkt.Src, Dst: ipv6.AllNodes, TTL: pkt.TTL - 1, Msg: rebuild(ext)})
}

// reverse returns a reversed copy of a route record.
func reverse(rr []ipv6.Addr) []ipv6.Addr {
	out := make([]ipv6.Addr, len(rr))
	for i, a := range rr {
		out[len(rr)-1-i] = a
	}
	return out
}

// contentKey hashes raw frame bytes for flood dedup of unsequenced control.
func contentKey(raw []byte) uint32 {
	h := fnv.New32a()
	h.Write(raw)
	return h.Sum32()
}
