package core

import (
	"sbr6/internal/ipv6"
	"sbr6/internal/ndp"
	"sbr6/internal/wire"
)

// This file implements the node's side of secure address autoconfiguration
// (Section 3.1): flooding AREQs, objecting to duplicates with challenge-
// signed AREPs, warning the DNS server, and relaying the replies back to a
// host that does not yet own a routable address.

// sendAREQ is wired into the ndp.Initiator: it floods the request and
// pre-marks it as seen so the node ignores echoed copies of its own flood.
func (n *Node) sendAREQ(m *wire.AREQ) {
	n.areqSeen.Seen(m.SIP, areqKey(m))
	n.met.Add1("dad.rounds")
	n.Flood(m, n.cfg.TTL)
}

// areqKey folds the challenge into the dedup key so two hosts that happen
// to probe the same tentative address with the same sequence number do not
// suppress each other's floods.
func areqKey(m *wire.AREQ) uint32 {
	return m.Seq ^ uint32(m.Ch) ^ uint32(m.Ch>>32)
}

func (n *Node) handleAREQ(pkt *wire.Packet, m *wire.AREQ) {
	if n.areqSeen.Seen(m.SIP, areqKey(m)) {
		return
	}
	n.met.Add1("rx.AREQ")

	// A configured owner of the probed address objects and stops the flood
	// here: the requester must pick a new address anyway.
	if n.configured && m.SIP == n.ident.Addr {
		n.met.Add1("dad.objections_sent")
		arep := ndp.BuildAREP(n.ident, m.SIP, m.Ch, m.RR)
		n.met.Add1("crypto.sign")
		n.sendToUnconfigured(m.RR, m.SIP, arep)
		if m.DN != "" && n.dns == nil {
			// Warn the DNS so the conflicting name registration is not
			// committed. Routes may not exist during bootstrap, so this
			// travels as a flood addressed to the DNS anycast.
			n.floodToDNS(arep)
		}
		return
	}

	// The DNS server checks the domain-name side (6DNAR).
	if n.dns != nil {
		if drep := n.dns.HandleAREQ(m); drep != nil {
			n.met.Add1("crypto.sign") // the server signed the DREP
			n.sendToUnconfigured(m.RR, m.SIP, drep)
		}
	}

	// Relay the flood with this node appended to the route record.
	n.relayFlood(pkt, m.RR, func(rr []ipv6.Addr) wire.Message {
		fwd := *m
		fwd.RR = rr
		return &fwd
	})
}

// sendToUnconfigured source-routes a reply along the reverse of the AREQ's
// route record toward a host that may not own its address yet (final hop
// broadcast).
func (n *Node) sendToUnconfigured(rr []ipv6.Addr, dst ipv6.Addr, msg wire.Message) {
	pkt := &wire.Packet{Src: n.ident.Addr, Dst: dst, TTL: n.cfg.TTL, SrcRoute: reverse(rr), Msg: msg}
	n.sendSourceRouted(pkt, nil)
}

// floodToDNS broadcasts a control message addressed to the DNS anycast;
// every configured node re-floods it (content-hash dedup) until the DNS
// consumes it. This is the bootstrap-safe path used before routes exist.
func (n *Node) floodToDNS(msg wire.Message) {
	pkt := &wire.Packet{Src: n.ident.Addr, Dst: ipv6.DNS1, TTL: n.cfg.TTL, Msg: msg}
	raw := n.encodeFrame(pkt)
	n.dnsFloods.Seen(pkt.Src, contentKey(raw)) // hashed before ownership transfers
	n.medium.BroadcastFrame(n.link, raw)
}

func (n *Node) handleDNSFlood(pkt *wire.Packet, raw []byte) {
	if n.dnsFloods.Seen(pkt.Src, contentKey(raw)) {
		return
	}
	if n.dns != nil {
		if m, ok := pkt.Msg.(*wire.AREP); ok {
			n.met.Add1("crypto.verify") // server validates the warn
			if n.dns.HandleWarnAREP(m) {
				n.met.Add1("dns.warns_accepted")
			}
		}
		return
	}
	if !n.configured || pkt.TTL <= 1 {
		return
	}
	fwd := *pkt
	fwd.TTL--
	n.broadcastPacket(&fwd)
}

func (n *Node) handleAREP(pkt *wire.Packet, m *wire.AREP) {
	n.met.Add1("rx.AREP")
	if n.autoconf.State() != ndp.StateProbing {
		return
	}
	n.met.Add1("crypto.verify")
	if err := n.autoconf.HandleAREP(m); err != nil {
		n.met.Add1("dad.arep_rejected")
		return
	}
	n.met.Add1("dad.arep_accepted")
}

func (n *Node) handleDREP(pkt *wire.Packet, m *wire.DREP) {
	n.met.Add1("rx.DREP")
	if n.autoconf.State() != ndp.StateProbing {
		return
	}
	n.met.Add1("crypto.verify")
	if err := n.autoconf.HandleDREP(m); err != nil {
		n.met.Add1("dad.drep_rejected")
		return
	}
	n.met.Add1("dad.drep_accepted")
}
