package core

import (
	"fmt"
	"testing"
	"time"

	"sbr6/internal/geom"
	"sbr6/internal/ipv6"
	"sbr6/internal/radio"
	"sbr6/internal/sim"
	"sbr6/internal/wire"
)

// Second-round integration tests: edge cases in forwarding, buffering,
// cache lifetime, TTL limits, loss resilience and the client API.

func TestLoopbackDelivery(t *testing.T) {
	tn := chain(t, fastConfig(true), 1, nil)
	tn.bootstrap(t)
	n := tn.nodes[1]
	got := 0
	n.OnData = func(src ipv6.Addr, d *wire.Data) {
		got++
		if src != n.Addr() {
			t.Fatalf("loopback src = %v", src)
		}
	}
	n.SendData(n.Addr(), []byte("self"))
	tn.s.RunFor(time.Second)
	if got != 1 {
		t.Fatalf("loopback deliveries = %d", got)
	}
	if n.Metrics().Get("discovery.attempts") != 0 {
		t.Fatal("loopback must not trigger discovery")
	}
}

func TestDirectNeighborDelivery(t *testing.T) {
	tn := chain(t, fastConfig(true), 2, nil)
	tn.bootstrap(t)
	if got := deliverData(tn, 1, 2, 3); got != 3 {
		t.Fatalf("delivered %d of 3 to a direct neighbour", got)
	}
	relays, ok := tn.nodes[1].RouteTo(tn.nodes[2].Addr())
	if !ok || len(relays) != 0 {
		t.Fatalf("direct route should have no relays: %v %v", relays, ok)
	}
}

func TestSendBufferFlushesAfterDiscovery(t *testing.T) {
	tn := chain(t, fastConfig(true), 4, nil)
	tn.bootstrap(t)
	dst := tn.nodes[4].Addr()
	got := 0
	tn.nodes[4].OnData = func(ipv6.Addr, *wire.Data) { got++ }
	// Burst of sends before any route exists: all must queue behind the
	// single discovery and flush together.
	for i := 0; i < 5; i++ {
		tn.nodes[1].SendData(dst, []byte{byte(i)})
	}
	tn.s.RunFor(5 * time.Second)
	if got != 5 {
		t.Fatalf("delivered %d of 5 buffered packets", got)
	}
	if att := tn.nodes[1].Metrics().Get("discovery.attempts"); att != 1 {
		t.Fatalf("discovery.attempts = %v, want 1 (shared discovery)", att)
	}
}

func TestRouteCacheExpiryForcesRediscovery(t *testing.T) {
	cfg := fastConfig(true)
	cfg.RouteTTL = 2 * time.Second
	tn := chain(t, cfg, 3, nil)
	tn.bootstrap(t)
	dst := tn.nodes[3].Addr()
	got := 0
	tn.nodes[3].OnData = func(ipv6.Addr, *wire.Data) { got++ }

	tn.nodes[1].SendData(dst, []byte("a"))
	tn.s.RunFor(3 * time.Second) // past the route TTL
	tn.nodes[1].SendData(dst, []byte("b"))
	tn.s.RunFor(3 * time.Second)

	if got != 2 {
		t.Fatalf("delivered %d of 2", got)
	}
	if att := tn.nodes[1].Metrics().Get("discovery.attempts"); att != 2 {
		t.Fatalf("discovery.attempts = %v, want 2 (expiry forces rediscovery)", att)
	}
}

func TestFloodTTLBoundsDiscovery(t *testing.T) {
	cfg := fastConfig(true)
	cfg.TTL = 2 // destination is 3 hops away: unreachable under this TTL
	tn := chain(t, cfg, 4, nil)
	tn.bootstrap(t)
	tn.nodes[1].SendData(tn.nodes[4].Addr(), []byte("x"))
	tn.s.RunFor(10 * time.Second)
	m := tn.nodes[1].Metrics()
	if m.Get("discovery.failed") != 1 {
		t.Fatalf("discovery should fail under a short TTL: %v", m.Get("discovery.failed"))
	}
}

func TestLossyChannelStillDelivers(t *testing.T) {
	// 10% per-receiver loss across a 3-hop chain: retries in discovery and
	// per-packet acks should still land most packets.
	s := sim.New(11)
	rcfg := radio.DefaultConfig()
	rcfg.BroadcastJitter = time.Millisecond
	rcfg.LossRate = 0.1
	tn := &testnet{s: s, medium: radio.New(s, rcfg)}
	cfg := fastConfig(true)
	positions := []geom.Point{{X: 0}, {X: 200}, {X: 400}, {X: 600}}
	base := buildNet(t, cfg, positions, nil)
	_ = base
	// buildNet constructs its own sim; rebuild manually is overkill — use
	// the scenario-equivalent: rerun via buildNet but patch the medium's
	// loss is not possible. Instead: accept the default medium and inject
	// loss by dropping via a behavior on a relay.
	tn = base
	gh := &lossyRelay{p: 0.1}
	tn.nodes[2].Behavior = gh
	tn.bootstrap(t)
	got := deliverData(tn, 1, 3, 20)
	if got < 12 {
		t.Fatalf("delivered %d of 20 under 10%% relay loss", got)
	}
	if got == 20 {
		t.Log("note: all packets survived the lossy relay (possible with 10%)")
	}
}

// lossyRelay drops a fraction of everything it relays — a stand-in for a
// noisy link rather than an adversary.
type lossyRelay struct{ p float64 }

func (l *lossyRelay) Intercept(*Node, *wire.Packet, []byte) bool { return false }
func (l *lossyRelay) DropForward(n *Node, pkt *wire.Packet) bool {
	return n.Rand().Float64() < l.p
}

func TestResolveBusyAndMissingName(t *testing.T) {
	tn := chain(t, fastConfig(true), 2, nil)
	tn.bootstrap(t)
	n := tn.nodes[2]
	firstDone, secondDone := false, false
	var firstOK bool
	n.Resolve("ghost", func(a ipv6.Addr, ok bool) { firstDone, firstOK = true, ok })
	// Second resolve for the same name while the first is in flight fails
	// immediately rather than corrupting state.
	n.Resolve("ghost", func(a ipv6.Addr, ok bool) { secondDone = true })
	tn.s.RunFor(8 * time.Second)
	if !firstDone || firstOK {
		t.Fatalf("first resolve: done=%v ok=%v, want done and not found", firstDone, firstOK)
	}
	if !secondDone {
		t.Fatal("second resolve must complete (with failure)")
	}
}

func TestRebindWithoutNameFails(t *testing.T) {
	tn := chain(t, fastConfig(true), 1, nil)
	tn.bootstrap(t)
	var result *bool
	tn.nodes[1].RebindAddress(func(ok bool) { result = &ok })
	tn.s.RunFor(time.Second)
	if result == nil || *result {
		t.Fatal("rebind without a registered name must fail fast")
	}
}

func TestRelayFailureProducesLinkInvalidation(t *testing.T) {
	tn := chain(t, fastConfig(true), 3, nil)
	tn.bootstrap(t)
	dst := tn.nodes[3].Addr()
	if deliverData(tn, 1, 3, 1) != 1 {
		t.Fatal("setup delivery failed")
	}
	// The final relay dies; node 2 detects the dead link while forwarding.
	tn.medium.SetDown(radio.NodeID(3), true)
	tn.nodes[1].SendData(dst, []byte("x"))
	tn.s.RunFor(5 * time.Second)
	if tn.nodes[2].Metrics().Get("fwd.linkfail") == 0 {
		t.Fatal("relay never detected the dead link")
	}
	if tn.nodes[2].Metrics().Get("rerr.sent") == 0 {
		t.Fatal("relay never reported the dead link")
	}
}

func TestConcurrentDiscoveriesIndependent(t *testing.T) {
	tn := chain(t, fastConfig(true), 4, nil)
	tn.bootstrap(t)
	d2, d4 := 0, 0
	tn.nodes[2].OnData = func(ipv6.Addr, *wire.Data) { d2++ }
	tn.nodes[4].OnData = func(ipv6.Addr, *wire.Data) { d4++ }
	tn.nodes[1].SendData(tn.nodes[2].Addr(), []byte("to-2"))
	tn.nodes[1].SendData(tn.nodes[4].Addr(), []byte("to-4"))
	tn.s.RunFor(5 * time.Second)
	if d2 != 1 || d4 != 1 {
		t.Fatalf("deliveries: to-2=%d to-4=%d", d2, d4)
	}
	if att := tn.nodes[1].Metrics().Get("discovery.attempts"); att != 2 {
		t.Fatalf("discovery.attempts = %v, want 2 (one per destination)", att)
	}
}

func TestBaselineCREPFromCache(t *testing.T) {
	// Classic DSR cached replies work without attestation in baseline mode.
	tn := chain(t, fastConfig(false), 4, nil)
	tn.bootstrap(t)
	if deliverData(tn, 2, 4, 1) != 1 {
		t.Fatal("priming failed")
	}
	if deliverData(tn, 1, 4, 1) != 1 {
		t.Fatal("delivery via baseline cached route failed")
	}
	if tn.nodes[2].Metrics().Get("crep.sent") == 0 {
		t.Fatal("baseline intermediate never served from cache")
	}
}

func TestCreditsSurviveRouteChanges(t *testing.T) {
	// Reward accounting is per-identity, not per-route: after a re-route
	// the shared relay keeps its accumulated credit.
	tn := chain(t, fastConfig(true), 3, nil)
	tn.bootstrap(t)
	if deliverData(tn, 1, 3, 3) != 3 {
		t.Fatal("delivery failed")
	}
	relay := tn.nodes[2].Addr()
	creditBefore := tn.nodes[1].Credits().Get(relay)
	if creditBefore <= 1 {
		t.Fatalf("relay earned nothing: %v", creditBefore)
	}
	// Re-discover (cache flush via expiry simulation: direct new traffic
	// after invalidation).
	tn.medium.SetDown(radio.NodeID(3), true)
	tn.medium.SetDown(radio.NodeID(3), false)
	if deliverData(tn, 1, 3, 2) != 2 {
		t.Fatal("second round failed")
	}
	if after := tn.nodes[1].Credits().Get(relay); after < creditBefore {
		t.Fatalf("relay credit regressed: %v -> %v", creditBefore, after)
	}
}

func TestMetricsByteAccountingConsistency(t *testing.T) {
	tn := chain(t, fastConfig(true), 3, nil)
	tn.bootstrap(t)
	deliverData(tn, 1, 3, 3)
	for i, n := range tn.nodes {
		m := n.Metrics()
		total := m.Get("tx.bytes.total")
		split := m.Get("tx.bytes.control") + m.Get("tx.bytes.data") + m.Get("tx.bytes.raw")
		if total != split {
			t.Fatalf("node %d: total %v != control+data+raw %v", i, total, split)
		}
	}
}

// RawBroadcast used to add its bytes to tx.bytes.total without any
// category breakdown, silently breaking total == control + data for any
// node that replays captured frames. The raw bytes now carry their own
// counter folded into the total.
func TestRawBroadcastByteAccounting(t *testing.T) {
	tn := chain(t, fastConfig(true), 1, nil)
	tn.bootstrap(t)
	n := tn.nodes[1]
	before := n.Metrics().Get("tx.bytes.total")
	frame := []byte{0xde, 0xad, 0xbe, 0xef}
	n.RawBroadcast(frame)
	n.RawBroadcast(frame) // replayers retransmit the same capture
	tn.s.RunFor(time.Second)
	m := n.Metrics()
	if got := m.Get("tx.bytes.raw"); got != float64(2*len(frame)) {
		t.Fatalf("tx.bytes.raw = %v, want %d", got, 2*len(frame))
	}
	if got := m.Get("tx.bytes.total") - before; got != float64(2*len(frame)) {
		t.Fatalf("raw bytes not folded into total: delta %v", got)
	}
	total := m.Get("tx.bytes.total")
	split := m.Get("tx.bytes.control") + m.Get("tx.bytes.data") + m.Get("tx.bytes.raw")
	if total != split {
		t.Fatalf("total %v != control+data+raw %v", total, split)
	}
}

// A source-routed send that cannot resolve its next hop encodes into a
// pooled frame and then never transmits; the frame must go straight back
// to the pool (the whole path is synchronous, so the counters are exact).
func TestNoNeighborReleasesFrame(t *testing.T) {
	tn := chain(t, fastConfig(true), 2, nil)
	tn.bootstrap(t)
	tn.s.RunFor(time.Second) // drain in-flight bootstrap frames
	n := tn.nodes[1]
	before := tn.medium.PoolStats()
	ghost := ipv6.SiteLocal(0, 0xfeedface)
	n.SendAlong([]ipv6.Addr{ghost}, tn.nodes[2].Addr(), &wire.Data{Payload: []byte("x")})
	after := tn.medium.PoolStats()
	if n.Metrics().Get("tx.no_neighbor") == 0 {
		t.Fatal("send did not take the no-neighbor path")
	}
	if after.Gets != before.Gets+1 || after.Puts != before.Puts+1 {
		t.Fatalf("frame not released on the no-neighbor path: gets %d->%d puts %d->%d",
			before.Gets, after.Gets, before.Puts, after.Puts)
	}
	if after.Live != before.Live {
		t.Fatalf("live frames leaked: %d -> %d", before.Live, after.Live)
	}
}

func TestDNSAliasOwnership(t *testing.T) {
	tn := chain(t, fastConfig(true), 1, nil)
	tn.bootstrap(t)
	dns, other := tn.nodes[0], tn.nodes[1]
	if !dns.ownsAddr(ipv6.DNS1) || !dns.ownsAddr(ipv6.DNS2) || !dns.ownsAddr(ipv6.DNS3) {
		t.Fatal("DNS node must own all three anycast addresses")
	}
	if other.ownsAddr(ipv6.DNS1) {
		t.Fatal("non-DNS node claims the anycast address")
	}
}

func TestTransmitterIPInference(t *testing.T) {
	a, b, c := ipv6.SiteLocal(0, 1), ipv6.SiteLocal(0, 2), ipv6.SiteLocal(0, 3)
	cases := []struct {
		name string
		pkt  *wire.Packet
		want ipv6.Addr
		ok   bool
	}{
		{"areq origin", &wire.Packet{Src: a, Msg: &wire.AREQ{SIP: a}}, a, true},
		{"areq relayed", &wire.Packet{Src: a, Msg: &wire.AREQ{SIP: a, RR: []ipv6.Addr{b, c}}}, c, true},
		{"rreq origin", &wire.Packet{Src: a, Msg: &wire.RREQ{SIP: a}}, a, true},
		{"rreq relayed", &wire.Packet{Src: a, Msg: &wire.RREQ{SIP: a, SRR: []wire.HopAttestation{{IP: b}}}}, b, true},
		{"unicast first hop", &wire.Packet{Src: a, Hop: 0, SrcRoute: []ipv6.Addr{b}, Msg: &wire.Ack{}}, a, true},
		{"unicast mid route", &wire.Packet{Src: a, Hop: 1, SrcRoute: []ipv6.Addr{b, c}, Msg: &wire.Ack{}}, b, true},
		{"unicast at dst", &wire.Packet{Src: a, Hop: 2, SrcRoute: []ipv6.Addr{b, c}, Msg: &wire.Ack{}}, c, true},
		{"hop out of range", &wire.Packet{Src: a, Hop: 9, SrcRoute: []ipv6.Addr{b}, Msg: &wire.Ack{}}, ipv6.Addr{}, false},
	}
	for _, tc := range cases {
		got, ok := transmitterIP(tc.pkt)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("%s: transmitterIP = %v,%v want %v,%v", tc.name, got, ok, tc.want, tc.ok)
		}
	}
}

func TestReverseHelper(t *testing.T) {
	a, b, c := ipv6.SiteLocal(0, 1), ipv6.SiteLocal(0, 2), ipv6.SiteLocal(0, 3)
	rev := reverse([]ipv6.Addr{a, b, c})
	if rev[0] != c || rev[1] != b || rev[2] != a {
		t.Fatalf("reverse = %v", rev)
	}
	if len(reverse(nil)) != 0 {
		t.Fatal("reverse(nil) should be empty")
	}
	// Input untouched.
	orig := []ipv6.Addr{a, b}
	_ = reverse(orig)
	if orig[0] != a {
		t.Fatal("reverse mutated its input")
	}
}

func TestManyFlowsManyNodes(t *testing.T) {
	// A denser smoke test: 7-node chain, three simultaneous flows in both
	// directions; everything delivers on a clean channel.
	tn := chain(t, fastConfig(true), 6, nil)
	tn.bootstrap(t)
	type pair struct{ from, to int }
	pairs := []pair{{1, 6}, {6, 1}, {2, 5}}
	total := 0
	for _, p := range pairs {
		p := p
		dst := tn.nodes[p.to].Addr()
		prev := tn.nodes[p.to].OnData
		tn.nodes[p.to].OnData = func(src ipv6.Addr, d *wire.Data) {
			if prev != nil {
				prev(src, d)
			}
			total++
		}
		for i := 0; i < 3; i++ {
			i := i
			tn.s.After(time.Duration(i)*300*time.Millisecond, func() {
				tn.nodes[p.from].SendData(dst, []byte(fmt.Sprintf("%d->%d #%d", p.from, p.to, i)))
			})
		}
	}
	tn.s.RunFor(10 * time.Second)
	if total != 9 {
		t.Fatalf("delivered %d of 9 across 3 flows", total)
	}
}
