package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"sbr6/internal/dnssrv"
	"sbr6/internal/geom"
	"sbr6/internal/identity"
	"sbr6/internal/ipv6"
	"sbr6/internal/radio"
	"sbr6/internal/sim"
	"sbr6/internal/wire"
)

// testnet is a small fixed-topology network: node 0 is always the DNS
// server. Positions are spaced so consecutive indices are neighbours.
type testnet struct {
	s      *sim.Simulator
	medium *radio.Medium
	nodes  []*Node
}

func fastConfig(secure bool) Config {
	var cfg Config
	if secure {
		cfg = DefaultConfig()
	} else {
		cfg = BaselineConfig()
	}
	cfg.DAD.Timeout = 300 * time.Millisecond
	cfg.DiscoveryTimeout = 500 * time.Millisecond
	cfg.AckTimeout = 400 * time.Millisecond
	cfg.ResolveTimeout = 2 * time.Second
	return cfg
}

// buildNet creates nodes at the given positions; names[i] may be "".
func buildNet(t testing.TB, cfg Config, positions []geom.Point, names []string) *testnet {
	t.Helper()
	s := sim.New(7)
	rcfg := radio.DefaultConfig()
	rcfg.BroadcastJitter = time.Millisecond
	medium := radio.New(s, rcfg)
	tn := &testnet{s: s, medium: medium}

	dnsIdent, err := identity.New(cfg.Suite, rand.New(rand.NewSource(1000)), "dns")
	if err != nil {
		t.Fatal(err)
	}
	dcfg := dnssrv.DefaultConfig()
	dcfg.CommitDelay = 300 * time.Millisecond
	dcfg.Suite = cfg.Suite

	for i, pos := range positions {
		name := ""
		if names != nil {
			name = names[i]
		}
		var ident *identity.Identity
		if i == 0 {
			ident = dnsIdent
		} else {
			ident, err = identity.New(cfg.Suite, rand.New(rand.NewSource(int64(1000+i))), name)
			if err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(int64(5000 + i)))
		n := New(s, medium, radio.NodeID(i), ident, dnsIdent.Pub, cfg, rng, nil)
		if i == 0 {
			n.AttachDNS(dnssrv.New(s, rng, dnsIdent, dcfg, nil))
		}
		p := pos
		medium.AddNode(radio.NodeID(i), func(sim.Time) geom.Point { return p }, n)
		tn.nodes = append(tn.nodes, n)
	}
	return tn
}

// bootstrap staggers DAD by more than the objection window so that earlier
// nodes are configured (and can relay floods to the DNS) before later ones
// probe, then runs until everyone is configured.
func (tn *testnet) bootstrap(t testing.TB) {
	t.Helper()
	step := tn.nodes[0].Config().DAD.Timeout + 100*time.Millisecond
	for i, n := range tn.nodes {
		n := n
		tn.s.After(time.Duration(i)*step, n.Start)
	}
	tn.s.RunFor(time.Duration(len(tn.nodes))*step + 5*time.Second)
	for i, n := range tn.nodes {
		if !n.Configured() {
			t.Fatalf("node %d not configured (state %v)", i, n.DADState())
		}
	}
}

// chain builds a DNS + k extra nodes in a line, 200 m apart (250 m range).
func chain(t testing.TB, cfg Config, k int, names []string) *testnet {
	positions := make([]geom.Point, k+1)
	for i := range positions {
		positions[i] = geom.Point{X: float64(i) * 200}
	}
	return buildNet(t, cfg, positions, names)
}

func TestBootstrapAssignsUniqueAddresses(t *testing.T) {
	tn := chain(t, fastConfig(true), 4, []string{"dns", "a", "b", "c", "d"})
	tn.bootstrap(t)
	seen := make(map[ipv6.Addr]bool)
	for i, n := range tn.nodes {
		if !n.Addr().IsSiteLocal() {
			t.Fatalf("node %d address %v not site-local", i, n.Addr())
		}
		if seen[n.Addr()] {
			t.Fatalf("duplicate address %v", n.Addr())
		}
		seen[n.Addr()] = true
	}
	// All names committed at the DNS.
	srv := tn.nodes[0].DNS()
	tn.s.RunFor(time.Second)
	for _, name := range []string{"a", "b", "c", "d"} {
		if _, ok := srv.Lookup(name); !ok {
			t.Fatalf("name %q not registered", name)
		}
	}
}

func TestDuplicateAddressResolvedByDAD(t *testing.T) {
	cfg := fastConfig(true)
	tn := chain(t, cfg, 2, nil)
	tn.bootstrap(t)

	owner := tn.nodes[1]
	// A new node whose identity collides exactly with node 1 (same key,
	// same modifier -> same CGA address) joins next to it.
	clone := &identity.Identity{
		Priv: owner.Identity().Priv,
		Pub:  owner.Identity().Pub,
		Rn:   owner.Identity().Rn,
		Addr: owner.Identity().Addr,
	}
	rng := rand.New(rand.NewSource(424242))
	joiner := New(tn.s, tn.medium, radio.NodeID(99), clone, tn.nodes[0].DNS().PublicKey(), cfg, rng, nil)
	pos := geom.Point{X: 250} // neighbour of node 1
	tn.medium.AddNode(radio.NodeID(99), func(sim.Time) geom.Point { return pos }, joiner)

	oldAddr := owner.Addr()
	joiner.Start()
	tn.s.RunFor(5 * time.Second)

	if !joiner.Configured() {
		t.Fatalf("joiner stuck in %v", joiner.DADState())
	}
	if joiner.Addr() == oldAddr {
		t.Fatal("joiner kept the duplicate address")
	}
	if owner.Addr() != oldAddr {
		t.Fatal("owner's address must not change")
	}
	if owner.Metrics().Get("dad.objections_sent") == 0 {
		t.Fatal("owner never objected")
	}
	if joiner.Metrics().Get("dad.arep_accepted") == 0 {
		t.Fatal("joiner never accepted the objection")
	}
}

func TestDuplicateNameRenamedViaDREP(t *testing.T) {
	cfg := fastConfig(true)
	// Node 1 registers "printer" first; node 2 tries the same name later.
	tn := chain(t, cfg, 2, []string{"dns", "printer", "printer"})
	for i, n := range tn.nodes {
		n := n
		// Large stagger so node 1's registration commits before node 2
		// begins DAD.
		tn.s.After(time.Duration(i)*time.Second, n.Start)
	}
	tn.s.RunFor(10 * time.Second)

	n1, n2 := tn.nodes[1], tn.nodes[2]
	if !n1.Configured() || !n2.Configured() {
		t.Fatal("nodes not configured")
	}
	if n1.Name() != "printer" {
		t.Fatalf("first registrant lost its name: %q", n1.Name())
	}
	if n2.Name() != "printer-r" {
		t.Fatalf("second registrant name = %q, want printer-r", n2.Name())
	}
	srv := tn.nodes[0].DNS()
	if ip, ok := srv.Lookup("printer"); !ok || ip != n1.Addr() {
		t.Fatal("printer not bound to first registrant")
	}
	if ip, ok := srv.Lookup("printer-r"); !ok || ip != n2.Addr() {
		t.Fatal("renamed registration missing")
	}
}

// deliverData sends payloads and runs the sim; returns delivered count.
func deliverData(tn *testnet, from, to int, count int) int {
	dst := tn.nodes[to].Addr()
	delivered := 0
	tn.nodes[to].OnData = func(src ipv6.Addr, d *wire.Data) { delivered++ }
	for i := 0; i < count; i++ {
		i := i
		tn.s.After(time.Duration(i)*200*time.Millisecond, func() {
			tn.nodes[from].SendData(dst, []byte(fmt.Sprintf("payload-%d", i)))
		})
	}
	tn.s.RunFor(time.Duration(count)*200*time.Millisecond + 5*time.Second)
	return delivered
}

func TestRouteDiscoveryAndDelivery(t *testing.T) {
	for _, secure := range []bool{true, false} {
		secure := secure
		t.Run(fmt.Sprintf("secure=%v", secure), func(t *testing.T) {
			tn := chain(t, fastConfig(secure), 4, nil)
			tn.bootstrap(t)
			if got := deliverData(tn, 1, 4, 5); got != 5 {
				t.Fatalf("delivered %d of 5", got)
			}
			src := tn.nodes[1]
			if src.Metrics().Get("ack.rx") != 5 {
				t.Fatalf("acks = %v", src.Metrics().Get("ack.rx"))
			}
			relays, ok := src.RouteTo(tn.nodes[4].Addr())
			if !ok || len(relays) != 2 {
				t.Fatalf("route = %v, %v; want 2 relays", relays, ok)
			}
		})
	}
}

func TestCreditsRewardRelays(t *testing.T) {
	tn := chain(t, fastConfig(true), 3, nil)
	tn.bootstrap(t)
	if got := deliverData(tn, 1, 3, 4); got != 4 {
		t.Fatalf("delivered %d of 4", got)
	}
	src := tn.nodes[1]
	relay := tn.nodes[2].Addr()
	// Initial 1 + 4 rewards = 5.
	if got := src.Credits().Get(relay); got != 5 {
		t.Fatalf("relay credit = %v, want 5", got)
	}
}

func TestSecureCostsMoreControlBytes(t *testing.T) {
	run := func(secure bool) float64 {
		tn := chain(t, fastConfig(secure), 3, nil)
		tn.bootstrap(t)
		deliverData(tn, 1, 3, 3)
		total := 0.0
		for _, n := range tn.nodes {
			total += n.Metrics().Get("tx.bytes.control")
		}
		return total
	}
	secureBytes, plainBytes := run(true), run(false)
	if secureBytes <= plainBytes {
		t.Fatalf("secure control bytes %v should exceed baseline %v", secureBytes, plainBytes)
	}
}

func TestCREPAnswersFromCache(t *testing.T) {
	tn := chain(t, fastConfig(true), 4, nil)
	tn.bootstrap(t)
	// Prime node 2's cache with an attested route to node 4.
	if got := deliverData(tn, 2, 4, 2); got != 2 {
		t.Fatal("priming traffic failed")
	}
	// Node 1 now discovers node 4; node 2 should answer from cache.
	if got := deliverData(tn, 1, 4, 2); got != 2 {
		t.Fatal("delivery via CREP route failed")
	}
	if tn.nodes[2].Metrics().Get("crep.sent") == 0 {
		t.Fatal("intermediate never served a CREP")
	}
	if tn.nodes[1].Metrics().Get("rx.CREP") == 0 {
		t.Fatal("source never received a CREP")
	}
}

// hole is a black-hole Behavior: it participates in routing (so routes are
// attracted through it) but silently drops the data plane it should relay.
type hole struct{ dropped int }

func (h *hole) Intercept(*Node, *wire.Packet, []byte) bool { return false }
func (h *hole) DropForward(n *Node, pkt *wire.Packet) bool {
	switch pkt.Msg.(type) {
	case *wire.Data, *wire.Ack:
		h.dropped++
		return true
	default:
		return false
	}
}

func TestBlackHoleProbingCondemnsAttacker(t *testing.T) {
	cfg := fastConfig(true)
	tn := chain(t, cfg, 4, nil)
	tn.bootstrap(t)
	bh := &hole{}
	tn.nodes[3].Behavior = bh // on the path 1 -> 4

	dst := tn.nodes[4].Addr()
	for i := 0; i < 6; i++ {
		i := i
		tn.s.After(time.Duration(i)*500*time.Millisecond, func() {
			tn.nodes[1].SendData(dst, []byte("x"))
		})
	}
	tn.s.RunFor(15 * time.Second)

	src := tn.nodes[1]
	bhAddr := tn.nodes[3].Addr()
	if bh.dropped == 0 {
		t.Fatal("black hole never saw traffic")
	}
	if src.Metrics().Get("probe.started") == 0 {
		t.Fatal("source never probed")
	}
	if got := src.Credits().Get(bhAddr); got > -50 {
		t.Fatalf("black hole credit = %v, want deeply negative", got)
	}
}

func TestLinkBreakTriggersRERRAndRediscovery(t *testing.T) {
	tn := chain(t, fastConfig(true), 4, nil)
	// Add a redundant relay next to node 3 so an alternate path exists:
	// place it between 2 and 4 but offset in Y.
	tn.bootstrap(t)
	dst := tn.nodes[4].Addr()
	delivered := 0
	tn.nodes[4].OnData = func(ipv6.Addr, *wire.Data) { delivered++ }

	tn.nodes[1].SendData(dst, []byte("first"))
	tn.s.RunFor(3 * time.Second)
	if delivered != 1 {
		t.Fatal("initial delivery failed")
	}
	// Node 3 (relay) dies; next packet hits a broken link at node 2.
	tn.medium.SetDown(radio.NodeID(3), true)
	tn.nodes[1].SendData(dst, []byte("second"))
	tn.s.RunFor(5 * time.Second)
	if tn.nodes[1].Metrics().Get("rerr.accepted") == 0 {
		t.Fatal("source never accepted a RERR")
	}
	if _, stillCached := tn.nodes[1].RouteTo(dst); stillCached {
		t.Fatal("broken route still cached")
	}
}

func TestForgedRERRRejectedOnlyWhenSecure(t *testing.T) {
	for _, secure := range []bool{true, false} {
		secure := secure
		t.Run(fmt.Sprintf("secure=%v", secure), func(t *testing.T) {
			tn := chain(t, fastConfig(secure), 3, nil)
			tn.bootstrap(t)
			dst := tn.nodes[3].Addr()
			if deliverData(tn, 1, 3, 1) != 1 {
				t.Fatal("setup delivery failed")
			}
			src := tn.nodes[1]
			relay := tn.nodes[2] // honest relay on the route

			// The attacker (node 3's neighbour? use node 2's link) forges a
			// RERR claiming the relay lost its link — without the relay's
			// key. Sent from node 3 directly to the source route.
			forger := tn.nodes[3]
			forged := &wire.RERR{IIP: relay.Addr(), NIP: dst}
			if secure {
				// Attacker signs with its own key: CGA check must fail.
				forged.Sig = forger.Identity().Sign(wire.SigRERR(relay.Addr(), dst))
				forged.IPK = forger.Identity().Pub.Bytes()
				forged.Irn = forger.Identity().Rn
			}
			forger.SendAlong([]ipv6.Addr{relay.Addr()}, src.Addr(), forged)
			tn.s.RunFor(2 * time.Second)

			_, routeAlive := src.RouteTo(dst)
			if secure {
				if src.Metrics().Get("rerr.rejected") == 0 {
					t.Fatal("forged RERR not rejected")
				}
				if !routeAlive {
					t.Fatal("forged RERR tore down a route despite security")
				}
			} else {
				if !(src.Metrics().Get("rerr.accepted") > 0) {
					t.Fatal("baseline should accept the forged RERR")
				}
				if routeAlive {
					t.Fatal("baseline route should have been torn down")
				}
			}
		})
	}
}

func TestResolveThroughDNS(t *testing.T) {
	cfg := fastConfig(true)
	tn := chain(t, cfg, 3, []string{"dns", "server", "", ""})
	tn.bootstrap(t)
	tn.s.RunFor(time.Second) // let registration commit

	var got ipv6.Addr
	var ok bool
	answered := false
	tn.nodes[3].Resolve("server", func(a ipv6.Addr, found bool) {
		got, ok, answered = a, found, true
	})
	tn.s.RunFor(5 * time.Second)
	if !answered {
		t.Fatal("resolve never completed")
	}
	if !ok || got != tn.nodes[1].Addr() {
		t.Fatalf("resolved %v, %v; want %v", got, ok, tn.nodes[1].Addr())
	}
	// Negative lookup also completes, signed.
	answered = false
	tn.nodes[3].Resolve("ghost", func(a ipv6.Addr, found bool) {
		ok, answered = found, true
	})
	tn.s.RunFor(5 * time.Second)
	if !answered || ok {
		t.Fatalf("negative resolve: answered=%v found=%v", answered, ok)
	}
}

func TestRebindAddressUpdatesDNS(t *testing.T) {
	cfg := fastConfig(true)
	tn := chain(t, cfg, 2, []string{"dns", "mobile", ""})
	tn.bootstrap(t)
	tn.s.RunFor(time.Second)

	host := tn.nodes[1]
	oldAddr := host.Addr()
	var result *bool
	host.RebindAddress(func(ok bool) { result = &ok })
	tn.s.RunFor(8 * time.Second)

	if result == nil || !*result {
		t.Fatalf("rebind did not succeed: %v", result)
	}
	if host.Addr() == oldAddr {
		t.Fatal("address did not change")
	}
	ip, ok := tn.nodes[0].DNS().Lookup("mobile")
	if !ok || ip != host.Addr() {
		t.Fatalf("DNS binding = %v, %v; want %v", ip, ok, host.Addr())
	}
}

func TestMalformedFramesCounted(t *testing.T) {
	tn := chain(t, fastConfig(true), 1, nil)
	tn.bootstrap(t)
	tn.nodes[1].RawBroadcast([]byte{0xde, 0xad})
	tn.s.RunFor(time.Second)
	if tn.nodes[0].Metrics().Get("rx.malformed") == 0 {
		t.Fatal("malformed frame not counted")
	}
}

func TestDiscoveryFailureReported(t *testing.T) {
	tn := chain(t, fastConfig(true), 2, nil)
	tn.bootstrap(t)
	ghost := ipv6.SiteLocal(0, 0xdeadbeef)
	tn.nodes[1].SendData(ghost, []byte("x"))
	tn.s.RunFor(10 * time.Second)
	m := tn.nodes[1].Metrics()
	if m.Get("discovery.failed") != 1 {
		t.Fatalf("discovery.failed = %v", m.Get("discovery.failed"))
	}
	if m.Get("data.no_route") != 1 {
		t.Fatalf("data.no_route = %v", m.Get("data.no_route"))
	}
}
