package core

import (
	"sbr6/internal/dsr"
	"sbr6/internal/identity"
	"sbr6/internal/ipv6"
	"sbr6/internal/wire"
)

// This file implements the data plane and secure route maintenance
// (Section 3.4): source-routed data with end-to-end acknowledgements that
// feed the credit mechanism, signed RERRs on link breaks, RERR-spammer
// tracking, and the black-hole probing that walks a failing route to locate
// the silent dropper.

// SendData routes payload to dst, discovering a route first if needed. It
// returns the (flow, seq) pair identifying the packet in acknowledgements
// and metrics.
func (n *Node) SendData(dst ipv6.Addr, payload []byte) (flow, seq uint32) {
	n.nextFlow++
	return n.SendFlow(dst, n.nextFlow, payload)
}

// SendFlow is SendData under a caller-chosen flow id, letting traffic
// generators keep per-flow sequence spaces.
func (n *Node) SendFlow(dst ipv6.Addr, flow uint32, payload []byte) (uint32, uint32) {
	if n.dead {
		return 0, 0
	}
	n.dataSeq++
	seq := n.dataSeq
	n.met.Add1("data.sent")
	if n.ownsAddr(dst) {
		// Loopback: no discovery, no radio.
		n.met.Add1("data.delivered")
		if n.OnData != nil {
			n.OnData(n.ident.Addr, &wire.Data{FlowID: flow, Seq: seq, Payload: payload})
		}
		return flow, seq
	}
	n.needRoute(dst, func(route dsr.Route, ok bool) {
		if !ok {
			n.met.Add1("data.no_route")
			return
		}
		n.transmitData(dst, route.Relays, flow, seq, payload)
	})
	return flow, seq
}

func (n *Node) transmitData(dst ipv6.Addr, relays []ipv6.Addr, flow, seq uint32, payload []byte) {
	pkt := &wire.Packet{
		Src: n.ident.Addr, Dst: dst, TTL: n.cfg.TTL,
		SrcRoute: relays,
		Msg:      &wire.Data{FlowID: flow, Seq: seq, Payload: payload},
	}
	key := ackKey{flow, seq}
	sd := &sentData{dst: dst, relays: append([]ipv6.Addr(nil), relays...)}
	sd.timer = n.sim.After(n.cfg.AckTimeout, func() { n.ackTimeout(key) })
	n.outstanding[key] = sd

	n.sendSourceRouted(pkt, func(next ipv6.Addr) {
		// First-hop failure: we are the detecting node.
		n.met.Add1("data.firsthop_fail")
		n.routes.InvalidateLink(n.ident.Addr, next)
	})
}

func (n *Node) handleData(pkt *wire.Packet, m *wire.Data) {
	n.met.Add1("data.delivered")
	if n.OnData != nil {
		n.OnData(pkt.Src, m)
	}
	// End-to-end acknowledgement back along the reverse route; each relay
	// on the acknowledged path will earn a credit at the source.
	ack := &wire.Ack{FlowID: m.FlowID, Seq: m.Seq}
	n.met.Add1("ack.sent")
	n.SendAlong(reverse(pkt.SrcRoute), pkt.Src, ack)
}

func (n *Node) handleAck(pkt *wire.Packet, m *wire.Ack) {
	key := ackKey{m.FlowID, m.Seq}
	sd, ok := n.outstanding[key]
	if !ok {
		n.met.Add1("ack.unsolicited")
		return
	}
	delete(n.outstanding, key)
	sd.timer.Cancel()
	n.met.Add1("ack.rx")
	n.lossStreak[sd.dst] = 0
	if n.cfg.UseCredits {
		n.credits.Reward(sd.relays)
	}
	// A probe packet's ack marks its own probe's target as answered; the
	// sentData carries the link because probe flow ids are not unique
	// across probes.
	if sd.probe != nil {
		sd.probe.acked[sd.probeIdx] = true
	}
}

func (n *Node) ackTimeout(key ackKey) {
	sd, ok := n.outstanding[key]
	if !ok {
		return
	}
	delete(n.outstanding, key)
	n.met.Add1("data.ack_timeout")
	n.lossStreak[sd.dst]++
	if n.cfg.ProbeOnLoss && n.cfg.UseCredits &&
		n.lossStreak[sd.dst] >= n.cfg.LossStreak && len(sd.relays) > 0 {
		n.startProbe(sd.dst, sd.relays)
	}
}

// --- Black-hole probing (Section 3.4) ---
//
// "Since hosts can not hide their identities in our protocol, the source
// host can traverse the route and test the integrality of each host."
// A probe packet is addressed to each relay in turn; the first relay whose
// probe goes unacknowledged brackets the dropper: either it refused to
// answer or its predecessor refused to forward. Both endpoints of the
// broken segment are penalized; an honest neighbour of a black hole
// recovers its credit through later rewards, the black hole does not.

const probeFlowBase = 0xffff0000

func (n *Node) startProbe(dst ipv6.Addr, relays []ipv6.Addr) {
	if _, busy := n.probes[dst]; busy {
		return
	}
	// One probe per relay prefix, plus a final probe to the destination
	// over the full route: a black hole that answers probes addressed to
	// itself but drops everything it should forward fails exactly the
	// probe after its own.
	targets := append(append([]ipv6.Addr(nil), relays...), dst)
	pr := &probeState{
		relays: append([]ipv6.Addr(nil), relays...),
		acked:  make([]bool, len(targets)),
	}
	n.probes[dst] = pr
	n.met.Add1("probe.started")
	for i, target := range targets {
		flow := probeFlowBase + uint32(len(n.probes))<<8 + uint32(i)
		n.dataSeq++
		seq := n.dataSeq
		key := ackKey{flow, seq}
		sd := &sentData{dst: target, relays: relays[:i], probe: pr, probeIdx: i}
		sd.timer = n.sim.After(n.cfg.AckTimeout, func() { n.ackTimeout(key) })
		n.outstanding[key] = sd
		pkt := &wire.Packet{
			Src: n.ident.Addr, Dst: target, TTL: n.cfg.TTL,
			SrcRoute: append([]ipv6.Addr(nil), relays[:i]...),
			Msg:      &wire.Data{FlowID: flow, Seq: seq},
		}
		n.sendSourceRouted(pkt, nil)
	}
	n.sim.After(2*n.cfg.AckTimeout, func() { n.finishProbe(dst) })
}

func (n *Node) finishProbe(dst ipv6.Addr) {
	pr, ok := n.probes[dst]
	if !ok {
		return
	}
	delete(n.probes, dst)
	n.lossStreak[dst] = 0

	firstFail := -1
	for i, acked := range pr.acked {
		if !acked {
			firstFail = i
			break
		}
	}
	switch {
	case firstFail < 0:
		// Everything answered, including the destination: the earlier
		// losses were transient; nothing to pin.
		n.met.Add1("probe.inconclusive")
	case firstFail == len(pr.relays):
		// Relays all answered but the destination probe died: the last
		// relay accepted traffic and dropped what it had to forward.
		n.met.Add1("probe.concluded")
		n.condemn(pr.relays[len(pr.relays)-1])
	default:
		// The broken segment is (firstFail-1, firstFail): one of the two
		// endpoints is misbehaving (the paper's own ambiguity); both are
		// penalized, and honest neighbours re-earn credit through rewards.
		n.met.Add1("probe.concluded")
		n.condemn(pr.relays[firstFail])
		if firstFail > 0 {
			n.condemn(pr.relays[firstFail-1])
		}
	}
}

// condemn applies the large credit penalty and purges routes through the
// host.
func (n *Node) condemn(h ipv6.Addr) {
	n.credits.Punish(h)
	n.routes.InvalidateHost(h)
	n.met.Add1("credit.punished")
}

// --- Forwarding and route errors ---

func (n *Node) forwardUnicast(pkt *wire.Packet) {
	if n.Behavior != nil && n.Behavior.DropForward(n, pkt) {
		n.met.Add1("fwd.dropped.behavior")
		return
	}
	if pkt.TTL <= 1 {
		n.met.Add1("fwd.ttl_expired")
		return
	}
	fwd := *pkt
	fwd.TTL--
	fwd.Hop++
	n.met.Add1("fwd.relayed")
	n.sendSourceRouted(&fwd, func(next ipv6.Addr) {
		n.met.Add1("fwd.linkfail")
		n.routes.InvalidateLink(n.ident.Addr, next)
		if _, isData := pkt.Msg.(*wire.Data); isData {
			n.reportBrokenLink(pkt, next)
			n.trySalvage(pkt)
		}
	})
}

// trySalvage re-routes a data packet whose next link just broke over this
// relay's own cached route to the destination (DSR packet salvaging). The
// source still receives the RERR; salvaging only rescues the in-flight
// packet. The rebuilt source route keeps the already-travelled prefix so
// the end-to-end acknowledgement can retrace it.
func (n *Node) trySalvage(pkt *wire.Packet) bool {
	if !n.cfg.Salvage {
		return false
	}
	data, ok := pkt.Msg.(*wire.Data)
	if !ok || data.Salvage >= n.cfg.MaxSalvage {
		return false
	}
	alt, ok := n.routes.Best(pkt.Dst, n.sim.Now(), n.routeScore())
	if !ok {
		return false
	}
	// Prefix travelled so far, including this relay (pkt.Hop indexes us).
	myIdx := int(pkt.Hop)
	if myIdx >= len(pkt.SrcRoute) || pkt.SrcRoute[myIdx] != n.ident.Addr {
		return false
	}
	route := append([]ipv6.Addr(nil), pkt.SrcRoute[:myIdx+1]...)
	// The alternate route must not revisit hops already on the path
	// (loop guard); the salvage counter bounds the overall process.
	seen := map[ipv6.Addr]bool{pkt.Src: true, pkt.Dst: true}
	for _, h := range route {
		seen[h] = true
	}
	for _, h := range alt.Relays {
		if seen[h] {
			return false
		}
	}
	route = append(route, alt.Relays...)

	msg := *data
	msg.Salvage++
	sal := &wire.Packet{
		Src: pkt.Src, Dst: pkt.Dst, TTL: pkt.TTL - 1,
		Hop: uint8(myIdx + 1), SrcRoute: route, Msg: &msg,
	}
	n.met.Add1("fwd.salvaged")
	n.sendSourceRouted(sal, nil)
	return true
}

// reportBrokenLink sends a (signed) RERR back to the packet's source: this
// node observed that its next hop is unreachable.
func (n *Node) reportBrokenLink(orig *wire.Packet, next ipv6.Addr) {
	rerr := &wire.RERR{IIP: n.ident.Addr, NIP: next}
	if n.cfg.Secure {
		rerr.Sig = n.sign(wire.SigRERR(n.ident.Addr, next))
		rerr.IPK = n.ident.Pub.Bytes()
		rerr.Irn = n.ident.Rn
	}
	// Reverse the prefix of the original source route up to this node.
	var prefix []ipv6.Addr
	for i := 0; i < int(orig.Hop) && i < len(orig.SrcRoute); i++ {
		if orig.SrcRoute[i] == n.ident.Addr {
			break
		}
		prefix = append(prefix, orig.SrcRoute[i])
	}
	n.met.Add1("rerr.sent")
	n.SendAlong(reverse(prefix), orig.Src, rerr)
}

func (n *Node) handleRERR(pkt *wire.Packet, m *wire.RERR) {
	n.met.Add1("rx.RERR")
	if n.cfg.Secure {
		// A reporter re-announcing the same broken link re-signs the same
		// (IIP, NIP) content, so repeated (and spammed) RERRs hit the
		// signature memo after the first check.
		ipk, err := identity.ParsePublicKey(n.cfg.Suite, m.IPK)
		if err != nil || !n.verifyCGA(m.IIP, m.IPK, m.Irn) ||
			!n.verify(ipk, wire.SigRERR(m.IIP, m.NIP), m.Sig) {
			n.met.Add1("rerr.rejected")
			return
		}
		// Source routing lets us check the reporter is actually a relay we
		// use; reports from strangers are meaningless (Section 4).
		if !n.usesRelay(m.IIP) {
			n.met.Add1("rerr.rejected")
			return
		}
	}
	n.met.Add1("rerr.accepted")
	dropped := n.routes.InvalidateLink(m.IIP, m.NIP)
	n.met.Inc("route.invalidated", float64(dropped))

	// Track reporter frequency: a host tearing down routes at high rate is
	// suspect even though each individual report must be accepted.
	if n.cfg.UseCredits {
		now := n.sim.Now()
		times := append(n.rerrTimes[m.IIP], now)
		cutoff := now.Add(-n.cfg.RERRWindow)
		for len(times) > 0 && times[0] < cutoff {
			times = times[1:]
		}
		n.rerrTimes[m.IIP] = times
		if len(times) > n.cfg.RERRThreshold {
			n.met.Add1("rerr.spammer_flagged")
			n.condemn(m.IIP)
			delete(n.rerrTimes, m.IIP)
		}
	}
}

// usesRelay reports whether h appears as a relay (or destination) in any
// live cached route.
func (n *Node) usesRelay(h ipv6.Addr) bool {
	now := n.sim.Now()
	for _, dst := range n.routes.Destinations() {
		if dst == h {
			return true
		}
		for _, r := range n.routes.Routes(dst, now) {
			for _, rel := range r.Relays {
				if rel == h {
					return true
				}
			}
		}
	}
	return false
}

// OutstandingData reports how many data packets await acknowledgement.
func (n *Node) OutstandingData() int { return len(n.outstanding) }

// LossStreak reports the consecutive unacknowledged packets toward dst.
func (n *Node) LossStreak(dst ipv6.Addr) int { return n.lossStreak[dst] }
