package core

import (
	"testing"
	"time"

	"sbr6/internal/geom"
	"sbr6/internal/identity"
	"sbr6/internal/ipv6"
	"sbr6/internal/radio"
	"sbr6/internal/sim"
	"sbr6/internal/wire"
)

// Third-round tests: the warn-AREP flood path, reply rejection branches,
// probe verdict branches and API accessors.

func TestWarnFloodCancelsNameSquatting(t *testing.T) {
	// A squatter tries to register a fresh name for an ADDRESS it does not
	// own (it clones the owner's identity). The owner's warn-AREP must
	// reach the DNS over the bootstrap flood path and cancel the pending
	// registration; the squatter's retry under its new address then
	// registers cleanly.
	cfg := fastConfig(true)
	tn := chain(t, cfg, 3, []string{"dns", "owner", "", ""})
	tn.bootstrap(t)

	owner := tn.nodes[1] // adjacent to the DNS
	clone := &identity.Identity{
		Priv: owner.Identity().Priv,
		Pub:  owner.Identity().Pub,
		Rn:   owner.Identity().Rn,
		Addr: owner.Identity().Addr,
		Name: "squatted",
	}
	joiner := New(tn.s, tn.medium, radio.NodeID(77), clone, tn.nodes[0].DNS().PublicKey(), cfg,
		tn.nodes[3].Rand(), nil)
	// Between the DNS (x=0) and the owner (x=200): both hear the AREQ
	// directly, so the DNS opens a pending registration that the owner's
	// warn must cancel.
	pos := geom.Point{X: 100}
	tn.medium.AddNode(radio.NodeID(77), func(sim.Time) geom.Point { return pos }, joiner)
	joiner.Start()
	tn.s.RunFor(8 * time.Second)

	// Two orderings are possible and both are correct protocol behaviour:
	// (a) the warn lands first, the pending registration dies, and the
	//     joiner's retry registers "squatted" under its new address; or
	// (b) the retry races ahead, collides with the still-pending first
	//     reservation, draws a DREP and registers as "squatted-r".
	// In both cases the victim's address must never be bound, and the
	// warn must have been accepted.
	srv := tn.nodes[0].DNS()
	ip, ok := srv.Lookup("squatted")
	if ok && ip == owner.Addr() {
		t.Fatal("squatted name bound to the victim's address")
	}
	bound := false
	for _, name := range []string{"squatted", "squatted-r"} {
		if got, exists := srv.Lookup(name); exists && got == joiner.Addr() {
			bound = true
		}
	}
	if !bound {
		t.Fatalf("joiner (name %q) never registered under its new address", joiner.Name())
	}
	if tn.nodes[0].Metrics().Get("dns.warns_accepted") == 0 {
		t.Fatal("the owner's warn never reached the DNS")
	}
}

func TestUnsolicitedAndMisaddressedReplies(t *testing.T) {
	tn := chain(t, fastConfig(true), 3, nil)
	tn.bootstrap(t)
	src, relay := tn.nodes[1], tn.nodes[2]

	// An RREP nobody asked for: counted, not installed.
	forged := &wire.RREP{SIP: src.Addr(), DIP: relay.Addr(), Seq: 9999, RR: nil}
	relay.SendAlong(nil, src.Addr(), forged)
	// An RREP addressed to someone else entirely: silently ignored.
	other := &wire.RREP{SIP: relay.Addr(), DIP: src.Addr(), Seq: 9998}
	relay.SendAlong(nil, src.Addr(), other)
	// A CREP nobody asked for.
	crep := &wire.CREP{S2IP: src.Addr(), SIP: relay.Addr(), DIP: ipv6.SiteLocal(0, 0xabcd), Seq2: 7777}
	relay.SendAlong(nil, src.Addr(), crep)
	tn.s.RunFor(2 * time.Second)

	m := src.Metrics()
	if m.Get("rrep.unsolicited") == 0 {
		t.Fatal("unsolicited RREP not counted")
	}
	if m.Get("crep.unsolicited") == 0 {
		t.Fatal("unsolicited CREP not counted")
	}
	if m.Get("route.installed") != 0 {
		t.Fatal("unsolicited replies installed a route")
	}
}

// swallower consumes every data packet that reaches it — even packets
// addressed to itself — without acknowledging, which is what pins the
// probe verdict onto the (predecessor, swallower) segment.
type swallower struct{ eaten int }

func (s *swallower) Intercept(n *Node, pkt *wire.Packet, raw []byte) bool {
	if _, isData := pkt.Msg.(*wire.Data); isData {
		s.eaten++
		return true
	}
	return false
}
func (s *swallower) DropForward(*Node, *wire.Packet) bool { return false }

func TestProbeMidRouteVerdict(t *testing.T) {
	cfg := fastConfig(true)
	tn := chain(t, cfg, 4, nil)
	tn.bootstrap(t)
	sw := &swallower{}
	tn.nodes[3].Behavior = sw // second relay on the 1 -> 4 route

	dst := tn.nodes[4].Addr()
	for i := 0; i < 5; i++ {
		i := i
		tn.s.After(time.Duration(i)*500*time.Millisecond, func() {
			tn.nodes[1].SendData(dst, []byte("x"))
		})
	}
	tn.s.RunFor(12 * time.Second)

	src := tn.nodes[1]
	if src.Metrics().Get("probe.concluded") == 0 {
		t.Fatal("probe never concluded")
	}
	// The swallower is condemned; the paper's ambiguity also penalizes its
	// honest predecessor, which recovers through later rewards.
	if got := src.Credits().Get(tn.nodes[3].Addr()); got > -50 {
		t.Fatalf("swallower credit = %v, want deeply negative", got)
	}
}

// flaky drops the first k data packets it relays and then behaves.
type flaky struct{ remaining int }

func (f *flaky) Intercept(*Node, *wire.Packet, []byte) bool { return false }
func (f *flaky) DropForward(n *Node, pkt *wire.Packet) bool {
	if _, isData := pkt.Msg.(*wire.Data); isData && f.remaining > 0 {
		f.remaining--
		return true
	}
	return false
}

func TestProbeInconclusiveOnTransientFault(t *testing.T) {
	cfg := fastConfig(true)
	tn := chain(t, cfg, 3, nil)
	tn.bootstrap(t)
	tn.nodes[2].Behavior = &flaky{remaining: 2} // exactly the loss streak

	dst := tn.nodes[3].Addr()
	for i := 0; i < 6; i++ {
		i := i
		tn.s.After(time.Duration(i)*500*time.Millisecond, func() {
			tn.nodes[1].SendData(dst, []byte("x"))
		})
	}
	tn.s.RunFor(12 * time.Second)

	src := tn.nodes[1]
	if src.Metrics().Get("probe.started") == 0 {
		t.Fatal("transient fault should have triggered a probe")
	}
	if src.Metrics().Get("probe.inconclusive") == 0 {
		t.Fatal("probe against a recovered relay should be inconclusive")
	}
	// The recovered relay keeps a non-condemned score.
	if got := src.Credits().Get(tn.nodes[2].Addr()); got < 0 {
		t.Fatalf("recovered relay was condemned: %v", got)
	}
}

func TestPacketSalvagingRescuesInFlightData(t *testing.T) {
	// Diamond topology: src -> relayA -> {mid | alt} -> dst. The route via
	// mid is established first; relayA separately caches the alt route;
	// with mid dead, data still following the stale route is salvaged by
	// relayA over its cached alternative.
	cfg := fastConfig(true)
	positions := []geom.Point{
		{X: 0, Y: 200},   // dns
		{X: 0, Y: 0},     // src
		{X: 200, Y: 0},   // relayA
		{X: 400, Y: 0},   // mid
		{X: 400, Y: 140}, // alt
		{X: 600, Y: 0},   // dst
	}
	tn := buildNet(t, cfg, positions, nil)
	tn.bootstrap(t)
	src, relayA, dst := tn.nodes[1], tn.nodes[2], tn.nodes[5]
	const midID, altID = radio.NodeID(3), radio.NodeID(4)

	delivered := 0
	dst.OnData = func(ipv6.Addr, *wire.Data) { delivered++ }

	// Step 1: force the mid route into src's cache.
	tn.medium.SetDown(altID, true)
	src.SendData(dst.Addr(), []byte("one"))
	tn.s.RunFor(3 * time.Second)
	relays, ok := src.RouteTo(dst.Addr())
	if !ok || len(relays) != 2 || relays[1] != tn.nodes[3].Addr() {
		t.Fatalf("setup: route = %v, %v; want via mid", relays, ok)
	}

	// Step 2: relayA learns the alt route while mid is dead.
	tn.medium.SetDown(altID, false)
	tn.medium.SetDown(midID, true)
	relayA.SendData(dst.Addr(), []byte("two"))
	tn.s.RunFor(3 * time.Second)

	// Step 3: src still holds the stale mid route; its packet must be
	// salvaged at relayA.
	src.SendData(dst.Addr(), []byte("three"))
	tn.s.RunFor(3 * time.Second)

	if delivered != 3 {
		t.Fatalf("delivered %d of 3 (salvage failed)", delivered)
	}
	if relayA.Metrics().Get("fwd.salvaged") != 1 {
		t.Fatalf("fwd.salvaged = %v, want 1", relayA.Metrics().Get("fwd.salvaged"))
	}
	// The acknowledgement retraced the mixed route: src got all three.
	if src.Metrics().Get("ack.rx")+relayA.Metrics().Get("ack.rx") < 3 {
		t.Fatal("acknowledgements lost after salvage")
	}
	// The source still learned about the break.
	if src.Metrics().Get("rerr.accepted") == 0 {
		t.Fatal("salvage must not suppress the RERR")
	}
}

func TestSalvageDisabledDropsPacket(t *testing.T) {
	cfg := fastConfig(true)
	cfg.Salvage = false
	positions := []geom.Point{
		{X: 0, Y: 200}, {X: 0, Y: 0}, {X: 200, Y: 0}, {X: 400, Y: 0}, {X: 400, Y: 140}, {X: 600, Y: 0},
	}
	tn := buildNet(t, cfg, positions, nil)
	tn.bootstrap(t)
	src, relayA, dst := tn.nodes[1], tn.nodes[2], tn.nodes[5]
	delivered := 0
	dst.OnData = func(ipv6.Addr, *wire.Data) { delivered++ }

	tn.medium.SetDown(radio.NodeID(4), true)
	src.SendData(dst.Addr(), []byte("one"))
	tn.s.RunFor(3 * time.Second)
	tn.medium.SetDown(radio.NodeID(4), false)
	tn.medium.SetDown(radio.NodeID(3), true)
	relayA.SendData(dst.Addr(), []byte("two"))
	tn.s.RunFor(3 * time.Second)
	src.SendData(dst.Addr(), []byte("three"))
	tn.s.RunFor(3 * time.Second)

	if delivered != 2 {
		t.Fatalf("delivered %d, want 2 (third packet dropped without salvage)", delivered)
	}
	if relayA.Metrics().Get("fwd.salvaged") != 0 {
		t.Fatal("salvage ran although disabled")
	}
}

func TestAccessors(t *testing.T) {
	tn := chain(t, fastConfig(true), 1, nil)
	n := tn.nodes[1]
	if n.Sim() != tn.s {
		t.Fatal("Sim accessor wrong")
	}
	if n.LinkID() != radio.NodeID(1) {
		t.Fatal("LinkID accessor wrong")
	}
	if n.DADState().String() != "idle" {
		t.Fatalf("DADState before start = %v", n.DADState())
	}
	tn.bootstrap(t)
	if n.DADState().String() != "configured" {
		t.Fatalf("DADState after bootstrap = %v", n.DADState())
	}
	if n.DADLatency() <= 0 {
		t.Fatal("DADLatency not recorded")
	}
	if n.OutstandingData() != 0 {
		t.Fatal("no data should be outstanding")
	}
	if n.LossStreak(ipv6.SiteLocal(0, 1)) != 0 {
		t.Fatal("fresh loss streak should be zero")
	}
	if n.Config().Secure != true {
		t.Fatal("Config accessor wrong")
	}
	if n.Credits() == nil || n.Metrics() == nil || n.Rand() == nil {
		t.Fatal("nil accessor")
	}
	if n.DNS() != nil {
		t.Fatal("non-DNS node reports a DNS server")
	}
	if tn.nodes[0].DNS() == nil {
		t.Fatal("DNS node reports no server")
	}
}
