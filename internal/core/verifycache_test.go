package core

import (
	"math/rand"
	"testing"

	"sbr6/internal/geom"
	"sbr6/internal/identity"
	"sbr6/internal/radio"
	"sbr6/internal/sim"
	"sbr6/internal/wire"
)

// Adversarial probes of the verification memo: every sequence of honest
// and forged messages must produce exactly the verdicts the uncached
// verifier produces, no matter what the cache has seen first. The keys are
// digests of the full verified content, so these tests are the executable
// form of the security argument in internal/verifycache's package doc.

// newCachedVerifier builds a standalone configured node (cache on unless
// entries < 0) plus honest identities, like newVerifier in verify_test.go
// but with an explicit cache configuration.
func newCachedVerifier(t *testing.T, entries int) (*Node, []*identity.Identity) {
	t.Helper()
	s := sim.New(1)
	medium := radio.New(s, radio.DefaultConfig())
	dnsIdent, err := identity.New(identity.SuiteEd25519, rand.New(rand.NewSource(1)), "dns")
	if err != nil {
		t.Fatal(err)
	}
	ident, err := identity.New(identity.SuiteEd25519, rand.New(rand.NewSource(2)), "")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.VerifyCache = entries
	n := New(s, medium, 0, ident, dnsIdent.Pub, cfg, rand.New(rand.NewSource(3)), nil)
	medium.AddNode(0, func(sim.Time) geom.Point { return geom.Point{} }, n)
	n.StartConfigured()

	var ids []*identity.Identity
	for i := 0; i < 4; i++ {
		id, err := identity.New(identity.SuiteEd25519, rand.New(rand.NewSource(10+int64(i))), "")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return n, ids
}

func TestCacheHonestThenTamperedRejected(t *testing.T) {
	n, ids := newCachedVerifier(t, 0)
	honest := honestRREQ(ids[0], []*identity.Identity{ids[1], ids[2]}, 7)
	if err := n.verifySRR(honest); err != nil {
		t.Fatalf("honest chain rejected: %v", err)
	}
	// Every component of the honest chain is now cached as valid. Each
	// tampered variant shares all but one field with cached content and
	// must still be rejected — a poisoned hit would mean a key collision.
	tampers := map[string]func(m *wire.RREQ){
		"flip source sig bit": func(m *wire.RREQ) { m.SrcSig[0] ^= 1 },
		"bump source rn":      func(m *wire.RREQ) { m.Srn++ },
		"swap source key":     func(m *wire.RREQ) { m.SPK = ids[3].Pub.Bytes() },
		"replay into new seq": func(m *wire.RREQ) { m.Seq++ },
		"flip hop sig bit":    func(m *wire.RREQ) { m.SRR[1].Sig[0] ^= 1 },
		"swap hop address":    func(m *wire.RREQ) { m.SRR[0].IP = ids[3].Addr },
		"strip hop key":       func(m *wire.RREQ) { m.SRR[0].PK = nil },
	}
	for name, tamper := range tampers {
		m := honestRREQ(ids[0], []*identity.Identity{ids[1], ids[2]}, 7)
		tamper(m)
		if n.verifySRR(m) == nil {
			t.Errorf("%s: forged chain accepted after honest chain was cached", name)
		}
	}
	// And the honest original still verifies after all those negatives.
	if err := n.verifySRR(honest); err != nil {
		t.Fatalf("honest chain rejected after forgeries were cached: %v", err)
	}
}

func TestCacheForgedThenReplayedHonest(t *testing.T) {
	n, ids := newCachedVerifier(t, 0)
	// The adversary gets there first: a forged chain is verified (and its
	// rejection cached) before the honest one ever arrives.
	forged := honestRREQ(ids[0], []*identity.Identity{ids[1]}, 3)
	forged.SrcSig = append([]byte(nil), forged.SrcSig...)
	forged.SrcSig[10] ^= 0xff
	if n.verifySRR(forged) == nil {
		t.Fatal("forged chain accepted")
	}
	// The cached negative must not shadow the honest content.
	if err := n.verifySRR(honestRREQ(ids[0], []*identity.Identity{ids[1]}, 3)); err != nil {
		t.Fatalf("honest chain rejected after forgery was cached: %v", err)
	}
	// Replaying the forgery keeps being rejected (now from cache).
	if n.verifySRR(forged) == nil {
		t.Fatal("replayed forgery accepted")
	}
	if hits := n.VerifyCacheStats().ChainHits; hits == 0 {
		t.Fatal("replayed forgery did not hit the chain memo")
	}
}

// An attacker splices individually-valid cached components into a new
// chain: hop 2's (cached, valid) attestation signature presented under hop
// 1's identity. Component caching must not let the splice through.
func TestCacheCrossSpliceRejected(t *testing.T) {
	n, ids := newCachedVerifier(t, 0)
	if err := n.verifySRR(honestRREQ(ids[0], []*identity.Identity{ids[1], ids[2]}, 9)); err != nil {
		t.Fatalf("honest chain rejected: %v", err)
	}
	spliced := honestRREQ(ids[0], []*identity.Identity{ids[1], ids[2]}, 9)
	spliced.SRR[0].Sig = spliced.SRR[1].Sig // valid for ids[2], presented as ids[1]'s
	if n.verifySRR(spliced) == nil {
		t.Fatal("spliced chain accepted")
	}
}

// A chain-memo hit must replay the exact crypto.verify accounting of the
// original walk, or cached and uncached runs would diverge in Results.
func TestChainMemoReplaysAccounting(t *testing.T) {
	n, ids := newCachedVerifier(t, 0)
	m := honestRREQ(ids[0], []*identity.Identity{ids[1], ids[2]}, 11)

	before := n.Metrics().Get("crypto.verify")
	if err := n.verifySRR(m); err != nil {
		t.Fatal(err)
	}
	first := n.Metrics().Get("crypto.verify") - before

	before = n.Metrics().Get("crypto.verify")
	if err := n.verifySRR(m); err != nil {
		t.Fatal(err)
	}
	second := n.Metrics().Get("crypto.verify") - before

	if first != second {
		t.Fatalf("accounting diverged: first walk counted %v, memoized walk %v", first, second)
	}
	if first != 3 { // source + two hops
		t.Fatalf("first walk counted %v verifications, want 3", first)
	}
	st := n.VerifyCacheStats()
	if st.ChainHits != 1 {
		t.Fatalf("chain hits = %d, want 1", st.ChainHits)
	}
	if st.SigMisses != 3 {
		t.Fatalf("primitive sig ops = %d, want 3 (memo must absorb the second walk)", st.SigMisses)
	}
	// A failing walk replays its (shorter) accounting too.
	bad := honestRREQ(ids[0], []*identity.Identity{ids[1], ids[2]}, 12)
	bad.SRR[1].Sig = nil
	before = n.Metrics().Get("crypto.verify")
	if n.verifySRR(bad) == nil {
		t.Fatal("tampered chain accepted")
	}
	failFirst := n.Metrics().Get("crypto.verify") - before
	before = n.Metrics().Get("crypto.verify")
	if n.verifySRR(bad) == nil {
		t.Fatal("tampered chain accepted on replay")
	}
	if failSecond := n.Metrics().Get("crypto.verify") - before; failSecond != failFirst {
		t.Fatalf("failure accounting diverged: %v then %v", failFirst, failSecond)
	}
}

// Disabled cache (VerifyCache < 0) records nothing and changes nothing.
func TestDisabledCacheRecordsNothing(t *testing.T) {
	n, ids := newCachedVerifier(t, -1)
	m := honestRREQ(ids[0], []*identity.Identity{ids[1]}, 5)
	if err := n.verifySRR(m); err != nil {
		t.Fatal(err)
	}
	if err := n.verifySRR(m); err != nil {
		t.Fatal(err)
	}
	if got := n.VerifyCacheStats(); got.Hits() != 0 || got.Misses() != 0 {
		t.Fatalf("disabled cache recorded traffic: %+v", got)
	}
}
