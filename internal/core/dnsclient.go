package core

import (
	"sbr6/internal/dnssrv"
	"sbr6/internal/dsr"
	"sbr6/internal/ipv6"
	"sbr6/internal/wire"
)

// This file implements the client side of the secure DNS services
// (Section 3.2): challenge-bound signed lookups, and the re-binding flow a
// host runs when it changes its CGA address while keeping its name.
//
// The DNS server is reached through normal route discovery addressed to
// the well-known anycast ipv6.DNS1; only the true server's RREP is
// accepted because its key is the pre-distributed trust anchor.

// Resolve looks up a name at the DNS server and calls cb with the result.
// The answer is only accepted if signed by the DNS key over this query's
// challenge, so neither a fake DNS nor a replayed answer can satisfy it.
func (n *Node) Resolve(name string, cb func(addr ipv6.Addr, ok bool)) {
	if n.dead {
		cb(ipv6.Addr{}, false)
		return
	}
	if _, busy := n.resolves[name]; busy {
		cb(ipv6.Addr{}, false)
		return
	}
	st := &resolveState{ch: n.rng.Uint64(), cb: cb}
	st.timer = n.sim.After(n.cfg.ResolveTimeout, func() {
		delete(n.resolves, name)
		n.met.Add1("dns.resolve_timeout")
		cb(ipv6.Addr{}, false)
	})
	n.resolves[name] = st
	n.met.Add1("dns.resolve_started")

	n.needRoute(ipv6.DNS1, func(route dsr.Route, ok bool) {
		if !ok {
			if st.timer.Cancel() {
				delete(n.resolves, name)
				cb(ipv6.Addr{}, false)
			}
			return
		}
		n.SendAlong(route.Relays, n.dnsTarget(), &wire.DNSQuery{Name: name, Ch: st.ch})
	})
}

// dnsTarget returns the DNS server's real address when known, falling back
// to the anycast alias.
func (n *Node) dnsTarget() ipv6.Addr {
	if real, ok := n.aliases[ipv6.DNS1]; ok {
		return real
	}
	return ipv6.DNS1
}

func (n *Node) handleDNSQuery(pkt *wire.Packet, m *wire.DNSQuery) {
	if n.dns == nil {
		return
	}
	n.met.Add1("crypto.sign")
	ans := n.dns.HandleQuery(m)
	n.SendAlong(reverse(pkt.SrcRoute), pkt.Src, ans)
}

func (n *Node) handleDNSAnswer(pkt *wire.Packet, m *wire.DNSAnswer) {
	st, ok := n.resolves[m.Name]
	if !ok {
		n.met.Add1("dns.answer_unsolicited")
		return
	}
	// Only the secure protocol authenticates answers; the baseline client
	// believes whatever resolves first — the S1 attack surface. The check
	// goes through n.verify so it is counted and memoized like every other
	// signature verification.
	if n.cfg.Secure {
		if !n.verify(n.dnsPub, wire.SigDNSAnswer(m.Name, m.IP, m.Found, st.ch), m.Sig) {
			n.met.Add1("dns.answer_rejected")
			return
		}
	}
	delete(n.resolves, m.Name)
	st.timer.Cancel()
	n.met.Add1("dns.answer_accepted")
	st.cb(m.IP, m.Found)
}

// RebindAddress performs the Section 3.2 IP-address change: request a
// challenge for this node's name, regenerate the CGA address under the
// same key, prove ownership of both addresses, and wait for the server's
// signed verdict. cb receives the outcome.
func (n *Node) RebindAddress(cb func(ok bool)) {
	if n.dead {
		if cb != nil {
			cb(false)
		}
		return
	}
	n.startRebind(&rebindState{cb: cb})
}

// rebindNameFrom re-binds the node's registered name to its CURRENT
// (already DAD-verified) address, proving ownership of the abandoned old
// binding — the audit rekey's follow-up, where the address change happened
// before the update protocol could run.
func (n *Node) rebindNameFrom(oldIP ipv6.Addr, oldRn uint64) {
	n.startRebind(&rebindState{pre: true, oldIP: oldIP, oldRn: oldRn, cb: func(bool) {}})
}

// startRebind drives the challenge-based update flow for st.
func (n *Node) startRebind(st *rebindState) {
	if n.ident.Name == "" || n.rebind != nil {
		st.cb(false)
		return
	}
	n.rebind = st
	st.timer = n.sim.After(2*n.cfg.ResolveTimeout, func() {
		n.rebind = nil
		n.met.Add1("dns.rebind_timeout")
		st.cb(false)
	})
	n.met.Add1("dns.rebind_started")
	n.needRoute(ipv6.DNS1, func(route dsr.Route, ok bool) {
		if !ok || n.rebind == nil {
			return
		}
		n.SendAlong(route.Relays, n.dnsTarget(), &wire.UpdateReq{Name: n.ident.Name})
	})
}

func (n *Node) handleUpdateReq(pkt *wire.Packet, m *wire.UpdateReq) {
	if n.dns == nil {
		return
	}
	chal := n.dns.HandleUpdateReq(m)
	if chal == nil {
		return
	}
	n.met.Add1("crypto.sign")
	n.SendAlong(reverse(pkt.SrcRoute), pkt.Src, chal)
}

func (n *Node) handleUpdateChal(pkt *wire.Packet, m *wire.UpdateChal) {
	st := n.rebind
	if st == nil || m.Name != n.ident.Name || st.chTaken {
		return // no rebind in progress, or challenge already consumed
	}
	if !n.verify(n.dnsPub, wire.SigUpdateChal(m.Name, m.Ch), m.Sig) {
		n.met.Add1("dns.chal_rejected")
		return
	}
	st.ch = m.Ch
	st.chTaken = true
	if !st.pre {
		// Switch to the new address now: record the old binding for the
		// proof. (A pre-rekeyed rebind already switched — its fresh address
		// survived a full DAD round — and carries the old binding with it.)
		st.oldIP, st.oldRn = n.ident.Addr, n.ident.Rn
		n.ident.Regenerate(n.rng)
		n.routes.SetOwner(n.ident.Addr)
		n.met.Add1("addr.regenerated")
	}

	upd := dnssrv.BuildUpdate(n.ident, n.ident.Name, st.oldIP, st.oldRn, m.Ch)
	n.met.Add1("crypto.sign")
	// The route to the DNS was discovered under the old address; its relays
	// still forward by address so the packet still flows, and the reply
	// returns to the new source address via the reverse route.
	n.needRoute(ipv6.DNS1, func(route dsr.Route, ok bool) {
		if !ok || n.rebind == nil {
			return
		}
		n.SendAlong(route.Relays, n.dnsTarget(), upd)
	})
}

func (n *Node) handleUpdate(pkt *wire.Packet, m *wire.Update) {
	if n.dns == nil {
		return
	}
	// Count the verifications the server actually performed — it
	// short-circuits on unknown names, stale challenges and failed CGA
	// checks, so a flat "+3" would overcount exactly the rejected
	// (adversarial) updates and poison cache-hit accounting.
	res, verifies := n.dns.HandleUpdateCounted(m)
	n.met.Inc("crypto.verify", float64(verifies))
	n.met.Add1("crypto.sign")
	n.SendAlong(reverse(pkt.SrcRoute), pkt.Src, res)
}

func (n *Node) handleUpdateResult(pkt *wire.Packet, m *wire.UpdateResult) {
	st := n.rebind
	if st == nil || m.Name != n.ident.Name {
		return
	}
	// The challenge comparison is free; only a matching challenge costs a
	// signature verification.
	if m.Ch != st.ch || !n.verify(n.dnsPub, wire.SigUpdateResult(m.Name, m.OK, m.Ch), m.Sig) {
		n.met.Add1("dns.result_rejected")
		return
	}
	n.rebind = nil
	st.timer.Cancel()
	if m.OK {
		n.met.Add1("dns.rebind_ok")
	} else {
		n.met.Add1("dns.rebind_failed")
	}
	st.cb(m.OK)
}
