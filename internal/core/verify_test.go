package core

import (
	"math/rand"
	"testing"

	"sbr6/internal/dnssrv"
	"sbr6/internal/geom"
	"sbr6/internal/identity"
	"sbr6/internal/ipv6"
	"sbr6/internal/radio"
	"sbr6/internal/sim"
	"sbr6/internal/wire"
)

// White-box tests of the Section 3.3 verification procedure: each check of
// verifySRR must individually reject a tampered route request.

// verifier builds a standalone configured node plus a set of honest
// identities to construct route records from.
func newVerifier(t *testing.T) (*Node, []*identity.Identity) {
	t.Helper()
	s := sim.New(1)
	medium := radio.New(s, radio.DefaultConfig())
	dnsIdent, err := identity.New(identity.SuiteEd25519, rand.New(rand.NewSource(1)), "dns")
	if err != nil {
		t.Fatal(err)
	}
	ident, err := identity.New(identity.SuiteEd25519, rand.New(rand.NewSource(2)), "")
	if err != nil {
		t.Fatal(err)
	}
	n := New(s, medium, 0, ident, dnsIdent.Pub, DefaultConfig(), rand.New(rand.NewSource(3)), nil)
	medium.AddNode(0, func(sim.Time) geom.Point { return geom.Point{} }, n)
	n.StartConfigured()
	n.AttachDNS(dnssrv.New(s, rand.New(rand.NewSource(4)), dnsIdent, dnssrv.DefaultConfig(), nil))

	var ids []*identity.Identity
	for i := 0; i < 4; i++ {
		id, err := identity.New(identity.SuiteEd25519, rand.New(rand.NewSource(10+int64(i))), "")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return n, ids
}

// honestRREQ builds a fully signed route request from src through hops.
func honestRREQ(src *identity.Identity, hops []*identity.Identity, seq uint32) *wire.RREQ {
	m := &wire.RREQ{
		SIP:    src.Addr,
		DIP:    src.Addr.WithInterfaceID(0x9999),
		Seq:    seq,
		SrcSig: src.Sign(wire.SigRREQSource(src.Addr, seq)),
		SPK:    src.Pub.Bytes(),
		Srn:    src.Rn,
	}
	for _, h := range hops {
		m.SRR = append(m.SRR, wire.HopAttestation{
			IP:  h.Addr,
			Sig: h.Sign(wire.SigHop(h.Addr, seq)),
			PK:  h.Pub.Bytes(),
			Rn:  h.Rn,
		})
	}
	return m
}

func TestVerifySRRAcceptsHonestRequest(t *testing.T) {
	n, ids := newVerifier(t)
	m := honestRREQ(ids[0], []*identity.Identity{ids[1], ids[2]}, 7)
	if err := n.verifySRR(m); err != nil {
		t.Fatalf("honest SRR rejected: %v", err)
	}
	// Zero hops is also valid (source is a neighbour).
	if err := n.verifySRR(honestRREQ(ids[0], nil, 8)); err != nil {
		t.Fatalf("0-hop SRR rejected: %v", err)
	}
}

func TestVerifySRRRejectsTamperedSource(t *testing.T) {
	n, ids := newVerifier(t)

	// Wrong source key (CGA mismatch).
	m := honestRREQ(ids[0], nil, 1)
	m.SPK = ids[1].Pub.Bytes()
	if n.verifySRR(m) == nil {
		t.Fatal("source with mismatched key accepted")
	}

	// Wrong modifier.
	m = honestRREQ(ids[0], nil, 2)
	m.Srn++
	if n.verifySRR(m) == nil {
		t.Fatal("source with mismatched modifier accepted")
	}

	// Signature over a different sequence number (replay into new flood).
	m = honestRREQ(ids[0], nil, 3)
	m.Seq = 4
	if n.verifySRR(m) == nil {
		t.Fatal("stale source signature accepted")
	}

	// Garbage key bytes.
	m = honestRREQ(ids[0], nil, 5)
	m.SPK = []byte("not a key")
	if n.verifySRR(m) == nil {
		t.Fatal("garbage source key accepted")
	}
}

func TestVerifySRRRejectsTamperedHop(t *testing.T) {
	n, ids := newVerifier(t)
	mk := func(seq uint32) *wire.RREQ {
		return honestRREQ(ids[0], []*identity.Identity{ids[1], ids[2]}, seq)
	}

	// A hop's address swapped for another (route falsification).
	m := mk(1)
	m.SRR[0].IP = ids[3].Addr
	if n.verifySRR(m) == nil {
		t.Fatal("swapped hop address accepted")
	}

	// A hop attestation copied from a different flood (stale seq).
	m = mk(2)
	m.SRR[1].Sig = ids[2].Sign(wire.SigHop(ids[2].Addr, 999))
	if n.verifySRR(m) == nil {
		t.Fatal("stale hop attestation accepted")
	}

	// A hop inserted without any key at all (baseline-style bare entry).
	m = mk(3)
	m.SRR = append(m.SRR, wire.HopAttestation{IP: ids[3].Addr})
	if n.verifySRR(m) == nil {
		t.Fatal("bare hop entry accepted by the secure verifier")
	}

	// An entire hop forged by the source (it cannot sign for ids[1]).
	m = mk(4)
	m.SRR[0].Sig = ids[0].Sign(wire.SigHop(ids[1].Addr, 4))
	if n.verifySRR(m) == nil {
		t.Fatal("hop signed by the wrong key accepted")
	}
}

func TestVerifySRRRejectsRemovedHop(t *testing.T) {
	// Removing a hop does NOT invalidate other attestations (each covers
	// only itself + seq) — this matches the paper: the destination can
	// verify who is listed, not that nobody was dropped. What the check
	// DOES guarantee is that all listed identities are real. Dropping a
	// relay yields a route that simply fails at forwarding time.
	n, ids := newVerifier(t)
	m := honestRREQ(ids[0], []*identity.Identity{ids[1], ids[2]}, 1)
	m.SRR = m.SRR[1:] // drop the first relay
	if err := n.verifySRR(m); err != nil {
		t.Fatalf("shortened-but-authentic SRR rejected: %v", err)
	}
}

func TestHopAttestationModes(t *testing.T) {
	n, _ := newVerifier(t)
	h := n.hopAttestation(42)
	if len(h.Sig) == 0 || len(h.PK) == 0 {
		t.Fatal("secure mode must sign hop attestations")
	}
	if h.IP != n.Addr() {
		t.Fatal("attestation for wrong address")
	}

	// Baseline node leaves crypto fields empty.
	s := sim.New(2)
	medium := radio.New(s, radio.DefaultConfig())
	ident, _ := identity.New(identity.SuiteEd25519, rand.New(rand.NewSource(5)), "")
	base := New(s, medium, 1, ident, nil, BaselineConfig(), rand.New(rand.NewSource(6)), nil)
	medium.AddNode(1, func(sim.Time) geom.Point { return geom.Point{} }, base)
	base.StartConfigured()
	hb := base.hopAttestation(42)
	if len(hb.Sig) != 0 || len(hb.PK) != 0 {
		t.Fatal("baseline mode must not sign")
	}
}

func TestCREPLoopGuards(t *testing.T) {
	a := func(i uint64) ipv6.Addr { return ipv6.SiteLocal(0, i) }
	holder := a(10)

	mkRREQ := func(sip, dip ipv6.Addr, hops ...ipv6.Addr) *wire.RREQ {
		m := &wire.RREQ{SIP: sip, DIP: dip}
		for _, h := range hops {
			m.SRR = append(m.SRR, wire.HopAttestation{IP: h})
		}
		return m
	}

	cases := []struct {
		name   string
		m      *wire.RREQ
		cached []ipv6.Addr
		loop   bool
	}{
		{"clean", mkRREQ(a(1), a(9), a(2)), []ipv6.Addr{a(3)}, false},
		{"querier on cached path", mkRREQ(a(1), a(9), a(2)), []ipv6.Addr{a(1)}, true},
		{"request hop on cached path", mkRREQ(a(1), a(9), a(2)), []ipv6.Addr{a(2)}, true},
		{"holder in request hops", mkRREQ(a(1), a(9), holder), nil, true},
		{"destination in cached relays", mkRREQ(a(1), a(9)), []ipv6.Addr{a(9)}, true},
		{"querier is destination", mkRREQ(a(1), a(1)), nil, true},
		{"duplicate within request", mkRREQ(a(1), a(9), a(2), a(2)), nil, true},
	}
	for _, tc := range cases {
		if got := crepWouldLoop(tc.m, holder, tc.cached); got != tc.loop {
			t.Errorf("%s: crepWouldLoop = %v, want %v", tc.name, got, tc.loop)
		}
	}

	if hasDuplicateHop(a(1), []ipv6.Addr{a(2), a(3)}, a(4)) {
		t.Error("clean path flagged as looping")
	}
	if !hasDuplicateHop(a(1), []ipv6.Addr{a(2), a(1)}, a(4)) {
		t.Error("source revisit not flagged")
	}
	if !hasDuplicateHop(a(1), []ipv6.Addr{a(2), a(4)}, a(4)) {
		t.Error("destination revisit not flagged")
	}
	if !hasDuplicateHop(a(1), []ipv6.Addr{a(2), a(2)}, a(4)) {
		t.Error("relay revisit not flagged")
	}
	if !hasDuplicateHop(a(1), nil, a(1)) {
		t.Error("src==dst not flagged")
	}
}

func TestVerifyCountsCryptoOps(t *testing.T) {
	n, ids := newVerifier(t)
	before := n.Metrics().Get("crypto.verify")
	m := honestRREQ(ids[0], []*identity.Identity{ids[1]}, 6)
	if err := n.verifySRR(m); err != nil {
		t.Fatal(err)
	}
	// Source + one hop = two signature verifications.
	if got := n.Metrics().Get("crypto.verify") - before; got != 2 {
		t.Fatalf("crypto.verify delta = %v, want 2", got)
	}
}
