// Package ndp implements the paper's secure extended duplicate address
// detection (Section 3.1): the NDP NS/NA messages become network-flooded
// AREQ and source-routed AREP messages, integrated with 6DNAR domain-name
// registration and the CGA challenge/response that makes objections
// unforgeable.
//
// The Initiator type is the requesting host's state machine; the validation
// and construction helpers are shared by responding hosts, the DNS server
// and the tests. Transport is injected: the owning node decides how AREQ
// floods and AREP unicasts actually travel.
package ndp

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"sbr6/internal/cga"
	"sbr6/internal/identity"
	"sbr6/internal/ipv6"
	"sbr6/internal/sim"
	"sbr6/internal/wire"
)

// Clock is the slice of the simulator the state machine needs.
type Clock interface {
	Now() sim.Time
	After(d time.Duration, fn func()) *sim.Timer
}

// Validation errors; the attack experiments assert on these.
var (
	ErrBadKey       = errors.New("ndp: public key does not parse")
	ErrCGABinding   = errors.New("ndp: address does not match H(PK, rn)")
	ErrBadSignature = errors.New("ndp: signature verification failed")
	ErrWrongAddress = errors.New("ndp: reply is for a different address")
	ErrNotProbing   = errors.New("ndp: no DAD in progress")
)

// Verifier abstracts the two primitive checks so a node can route them
// through its memoized verification cache (internal/verifycache
// implements it). A nil Verifier means direct computation.
type Verifier interface {
	VerifyCGA(addr ipv6.Addr, pk []byte, rn uint64) bool
	VerifySig(pk identity.PublicKey, msg, sig []byte) bool
}

// DirectVerifier computes both checks without memoization — the fallback
// behind every nil Verifier, shared with the audit sweep's validators.
type DirectVerifier struct{}

// VerifyCGA implements Verifier.
func (DirectVerifier) VerifyCGA(addr ipv6.Addr, pk []byte, rn uint64) bool {
	//sbr6:allow directverify the documented direct-computation fallback behind every nil Verifier
	return cga.Verify(addr, pk, rn)
}

// VerifySig implements Verifier.
func (DirectVerifier) VerifySig(pk identity.PublicKey, msg, sig []byte) bool {
	return pk.Verify(msg, sig)
}

// ValidateAREP runs the paper's two checks on an address objection given
// the challenge ch the verifier issued:
//
//  1. the contested address's interface ID must equal H(R_PK, R_rn), and
//  2. the signature must verify over (SIP, ch) under R_PK.
//
// Passing both proves the responder generated the address per the CGA rule
// and owns the corresponding private key.
func ValidateAREP(m *wire.AREP, suite identity.Suite, ch uint64) error {
	return ValidateAREPVia(nil, m, suite, ch)
}

// ValidateAREPVia is ValidateAREP with the primitive checks performed
// through v (nil falls back to direct computation).
func ValidateAREPVia(v Verifier, m *wire.AREP, suite identity.Suite, ch uint64) error {
	if v == nil {
		v = DirectVerifier{}
	}
	pk, err := identity.ParsePublicKey(suite, m.PK)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadKey, err)
	}
	if !v.VerifyCGA(m.SIP, m.PK, m.Rn) {
		return ErrCGABinding
	}
	if !v.VerifySig(pk, wire.SigAREP(m.SIP, ch), m.Sig) {
		return ErrBadSignature
	}
	return nil
}

// BuildAREP constructs the objection a current address owner sends when it
// sees an AREQ for its own address: proof of CGA binding plus the signed
// challenge response. rr is the route record from the AREQ, reversed by the
// caller for delivery.
func BuildAREP(owner *identity.Identity, contested ipv6.Addr, ch uint64, rr []ipv6.Addr) *wire.AREP {
	return &wire.AREP{
		SIP: contested,
		RR:  rr,
		Sig: owner.Sign(wire.SigAREP(contested, ch)),
		PK:  owner.Pub.Bytes(),
		Rn:  owner.Rn,
	}
}

// ValidateDREP checks a domain-name objection: the signature must verify
// over (DN, ch) under the DNS server's public key — the one piece of
// pre-configured trust every host carries.
func ValidateDREP(m *wire.DREP, dnsPub identity.PublicKey, dn string, ch uint64) error {
	return ValidateDREPVia(nil, m, dnsPub, dn, ch)
}

// ValidateDREPVia is ValidateDREP with the signature check performed
// through v (nil falls back to direct computation).
func ValidateDREPVia(v Verifier, m *wire.DREP, dnsPub identity.PublicKey, dn string, ch uint64) error {
	if v == nil {
		v = DirectVerifier{}
	}
	if m.DN != dn {
		return ErrWrongAddress
	}
	if !v.VerifySig(dnsPub, wire.SigDREP(dn, ch), m.Sig) {
		return ErrBadSignature
	}
	return nil
}

// State enumerates the initiator's lifecycle.
type State int

// Initiator states.
const (
	StateIdle State = iota
	StateProbing
	StateConfigured
	StateFailed
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateProbing:
		return "probing"
	case StateConfigured:
		return "configured"
	case StateFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// Config tunes the DAD procedure.
type Config struct {
	// Timeout is how long the host waits for AREP/DREP objections before
	// declaring its address (and name) unique.
	Timeout time.Duration
	// MaxRetries bounds address/name regeneration attempts.
	MaxRetries int
}

// DefaultConfig uses a 3-second objection window, enough for several flood
// round trips across our scenario diameters.
func DefaultConfig() Config {
	return Config{Timeout: 3 * time.Second, MaxRetries: 8}
}

// ObjectionWindow returns the effective AREP/DREP wait — Timeout with the
// default applied, exactly what NewInitiator will arm. Admission policies
// use it to keep conflicting DAD starts at least one window apart.
func (c Config) ObjectionWindow() time.Duration {
	if c.Timeout <= 0 {
		return DefaultConfig().Timeout
	}
	return c.Timeout
}

// Initiator drives secure DAD for one host.
type Initiator struct {
	clock  Clock
	rng    *rand.Rand
	ident  *identity.Identity
	dnsPub identity.PublicKey
	cfg    Config

	// SendAREQ floods the request; the node wires it to the radio.
	SendAREQ func(m *wire.AREQ)
	// Verify, when non-nil, routes the objection checks through a
	// (possibly memoized) verifier; the owning node wires its
	// verification cache here.
	Verify Verifier
	// OnConfigured fires when DAD succeeds.
	OnConfigured func()
	// OnFailed fires when retries are exhausted.
	OnFailed func(reason string)
	// Rename picks a replacement domain name after a DREP conflict.
	// Returning "" gives up on name registration but keeps the address.
	Rename func(old string) string

	state    State
	seq      uint32
	ch       uint64
	retries  int
	timer    *sim.Timer
	started  sim.Time
	Duration time.Duration // DAD latency once configured
}

// NewInitiator builds an initiator for the identity. dnsPub may be nil when
// the host does not register a name (DREPs are then ignored).
func NewInitiator(clock Clock, rng *rand.Rand, ident *identity.Identity, dnsPub identity.PublicKey, cfg Config) *Initiator {
	cfg.Timeout = cfg.ObjectionWindow() // the one shared default clamp
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = DefaultConfig().MaxRetries
	}
	return &Initiator{clock: clock, rng: rng, ident: ident, dnsPub: dnsPub, cfg: cfg, state: StateIdle}
}

// State returns the current lifecycle state.
func (i *Initiator) State() State { return i.state }

// Challenge returns the challenge of the in-flight AREQ (tests and the DNS
// warn path need it).
func (i *Initiator) Challenge() uint64 { return i.ch }

// Start begins (or restarts) duplicate address detection. Starting over
// from StateConfigured — the audit sweep's rekey path, after the identity
// drew a fresh modifier — opens a new DAD cycle: the latency clock and the
// retry budget reset as if the host had just joined.
func (i *Initiator) Start() {
	if i.SendAREQ == nil {
		panic("ndp: Initiator.SendAREQ not wired")
	}
	if i.state == StateIdle || i.state == StateConfigured {
		i.started = i.clock.Now()
		i.retries = 0
	}
	i.state = StateProbing
	i.seq++
	i.ch = i.rng.Uint64()
	if i.timer != nil {
		i.timer.Cancel()
	}
	i.timer = i.clock.After(i.cfg.Timeout, i.succeed)
	i.SendAREQ(&wire.AREQ{SIP: i.ident.Addr, Seq: i.seq, DN: i.ident.Name, Ch: i.ch})
}

// Stop abandons any DAD in progress and disarms the objection-window
// timer, returning the state machine to StateIdle. A node leaving a
// running simulation calls it so no success/retry callback fires after
// the node's state has been reclaimed; Start afterwards would begin a
// fresh cycle, but a stopped node never calls it.
func (i *Initiator) Stop() {
	if i.timer != nil {
		i.timer.Cancel()
		i.timer = nil
	}
	i.state = StateIdle
}

func (i *Initiator) succeed() {
	i.state = StateConfigured
	i.Duration = i.clock.Now().Sub(i.started)
	if i.OnConfigured != nil {
		i.OnConfigured()
	}
}

func (i *Initiator) retry(reason string) {
	i.retries++
	if i.retries > i.cfg.MaxRetries {
		i.state = StateFailed
		if i.timer != nil {
			i.timer.Cancel()
		}
		if i.OnFailed != nil {
			i.OnFailed(reason)
		}
		return
	}
	i.Start()
}

// HandleAREP processes an address objection. A nil return means the
// objection was authentic and the host has restarted DAD under a fresh
// address; any error means the message was ignored (and why).
func (i *Initiator) HandleAREP(m *wire.AREP) error {
	if i.state != StateProbing {
		return ErrNotProbing
	}
	if m.SIP != i.ident.Addr {
		return ErrWrongAddress
	}
	if err := ValidateAREPVia(i.Verify, m, i.ident.Pub.Suite(), i.ch); err != nil {
		return err
	}
	// Authentic duplicate: derive a fresh address, keep the key pair.
	i.ident.Regenerate(i.rng)
	i.retry("duplicate address")
	return nil
}

// HandleDREP processes a domain-name objection from the DNS server. On an
// authentic conflict the host picks a new name via Rename and restarts DAD.
func (i *Initiator) HandleDREP(m *wire.DREP) error {
	if i.state != StateProbing {
		return ErrNotProbing
	}
	if i.dnsPub == nil || i.ident.Name == "" {
		return ErrWrongAddress
	}
	if err := ValidateDREPVia(i.Verify, m, i.dnsPub, i.ident.Name, i.ch); err != nil {
		return err
	}
	if i.Rename != nil {
		i.ident.Name = i.Rename(i.ident.Name)
	} else {
		i.ident.Name = ""
	}
	i.retry("duplicate domain name")
	return nil
}

// FloodCache is the bounded seen-set used to suppress duplicate flood
// rebroadcasts (AREQ and RREQ both use it). Eviction is FIFO.
type FloodCache struct {
	seen  map[floodKey]struct{}
	order []floodKey
	cap   int
}

type floodKey struct {
	src ipv6.Addr
	seq uint32
}

// NewFloodCache creates a cache remembering up to capacity flood ids.
func NewFloodCache(capacity int) *FloodCache {
	if capacity <= 0 {
		capacity = 1024
	}
	return &FloodCache{seen: make(map[floodKey]struct{}), cap: capacity}
}

// Seen marks (src, seq) and reports whether it had been seen before.
func (f *FloodCache) Seen(src ipv6.Addr, seq uint32) bool {
	k := floodKey{src, seq}
	if _, dup := f.seen[k]; dup {
		return true
	}
	f.seen[k] = struct{}{}
	f.order = append(f.order, k)
	if len(f.order) > f.cap {
		delete(f.seen, f.order[0])
		f.order = f.order[1:]
	}
	return false
}

// Len reports the number of remembered ids.
func (f *FloodCache) Len() int { return len(f.seen) }
