package ndp

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"sbr6/internal/identity"
	"sbr6/internal/ipv6"
	"sbr6/internal/sim"
	"sbr6/internal/wire"
)

func newIdent(t testing.TB, seed int64, name string) *identity.Identity {
	t.Helper()
	id, err := identity.New(identity.SuiteEd25519, rand.New(rand.NewSource(seed)), name)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// harness wires an initiator to a capture of its AREQ floods.
type harness struct {
	s     *sim.Simulator
	init  *Initiator
	ident *identity.Identity
	dns   *identity.Identity
	sent  []*wire.AREQ
	done  bool
	fail  string
}

func newHarness(t *testing.T, cfg Config, name string) *harness {
	t.Helper()
	h := &harness{s: sim.New(1)}
	h.ident = newIdent(t, 10, name)
	h.dns = newIdent(t, 20, "dns")
	h.init = NewInitiator(h.s, h.s.Rand(), h.ident, h.dns.Pub, cfg)
	h.init.SendAREQ = func(m *wire.AREQ) { h.sent = append(h.sent, m) }
	h.init.OnConfigured = func() { h.done = true }
	h.init.OnFailed = func(reason string) { h.fail = reason }
	return h
}

func TestDADSucceedsWithoutObjection(t *testing.T) {
	h := newHarness(t, Config{Timeout: time.Second}, "host-a")
	h.init.Start()
	if h.init.State() != StateProbing {
		t.Fatal("not probing after Start")
	}
	if len(h.sent) != 1 || h.sent[0].SIP != h.ident.Addr || h.sent[0].DN != "host-a" {
		t.Fatalf("AREQ wrong: %+v", h.sent)
	}
	h.s.Run()
	if !h.done || h.init.State() != StateConfigured {
		t.Fatalf("DAD did not complete: state=%v", h.init.State())
	}
	if h.init.Duration != time.Second {
		t.Fatalf("DAD latency = %v, want 1s", h.init.Duration)
	}
}

func TestAuthenticAREPForcesNewAddress(t *testing.T) {
	h := newHarness(t, Config{Timeout: time.Second, MaxRetries: 3}, "")
	h.init.Start()
	oldAddr := h.ident.Addr

	// The "owner" holds the same address (collision) — simulate by an
	// identity whose AREP signs the contested address with a key that CGA-
	// matches it. Easiest authentic case: owner IS the same identity object
	// cloned before regeneration.
	owner := &identity.Identity{Priv: h.ident.Priv, Pub: h.ident.Pub, Rn: h.ident.Rn, Addr: h.ident.Addr}
	arep := BuildAREP(owner, oldAddr, h.init.Challenge(), nil)
	if err := h.init.HandleAREP(arep); err != nil {
		t.Fatalf("authentic AREP rejected: %v", err)
	}
	if h.ident.Addr == oldAddr {
		t.Fatal("address not regenerated after objection")
	}
	if len(h.sent) != 2 {
		t.Fatalf("expected a second AREQ, got %d", len(h.sent))
	}
	h.s.Run()
	if !h.done {
		t.Fatal("DAD should complete under the fresh address")
	}
}

func TestForgedAREPRejected(t *testing.T) {
	h := newHarness(t, Config{Timeout: time.Second}, "")
	h.init.Start()

	attacker := newIdent(t, 99, "")
	// Attacker signs with its own key but claims the victim's address:
	// CGA binding check must fail (H(attackerPK, rn) != victim IID).
	forged := &wire.AREP{
		SIP: h.ident.Addr,
		Sig: attacker.Sign(wire.SigAREP(h.ident.Addr, h.init.Challenge())),
		PK:  attacker.Pub.Bytes(),
		Rn:  attacker.Rn,
	}
	if err := h.init.HandleAREP(forged); !errors.Is(err, ErrCGABinding) {
		t.Fatalf("forged AREP: err = %v, want ErrCGABinding", err)
	}

	// Attacker uses ITS OWN address (CGA ok) — then the wrong-address check
	// fires because the objection is not about our tentative address.
	forged2 := BuildAREP(attacker, attacker.Addr, h.init.Challenge(), nil)
	if err := h.init.HandleAREP(forged2); !errors.Is(err, ErrWrongAddress) {
		t.Fatalf("cross-address AREP: err = %v, want ErrWrongAddress", err)
	}
	h.s.Run()
	if !h.done {
		t.Fatal("forged objections must not block configuration")
	}
}

func TestReplayedAREPRejected(t *testing.T) {
	// An AREP captured for an earlier challenge must not satisfy a new DAD
	// round: the fresh ch defeats replay (paper Section 4).
	h := newHarness(t, Config{Timeout: time.Second, MaxRetries: 5}, "")
	h.init.Start()
	owner := &identity.Identity{Priv: h.ident.Priv, Pub: h.ident.Pub, Rn: h.ident.Rn, Addr: h.ident.Addr}
	captured := BuildAREP(owner, h.ident.Addr, h.init.Challenge(), nil)

	// Legitimate objection consumed; initiator restarts with fresh ch/addr.
	if err := h.init.HandleAREP(captured); err != nil {
		t.Fatal(err)
	}
	// Replay the captured AREP against the new round.
	err := h.init.HandleAREP(captured)
	if err == nil {
		t.Fatal("replayed AREP accepted")
	}
}

func TestAREPSignatureOverWrongChallengeRejected(t *testing.T) {
	h := newHarness(t, Config{Timeout: time.Second}, "")
	h.init.Start()
	owner := &identity.Identity{Priv: h.ident.Priv, Pub: h.ident.Pub, Rn: h.ident.Rn, Addr: h.ident.Addr}
	bad := BuildAREP(owner, h.ident.Addr, h.init.Challenge()+1, nil)
	if err := h.init.HandleAREP(bad); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestRetriesExhaustedFails(t *testing.T) {
	h := newHarness(t, Config{Timeout: time.Second, MaxRetries: 2}, "")
	h.init.Start()
	for i := 0; i < 3; i++ {
		owner := &identity.Identity{Priv: h.ident.Priv, Pub: h.ident.Pub, Rn: h.ident.Rn, Addr: h.ident.Addr}
		if h.init.State() != StateProbing {
			break
		}
		if err := h.init.HandleAREP(BuildAREP(owner, h.ident.Addr, h.init.Challenge(), nil)); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	if h.init.State() != StateFailed {
		t.Fatalf("state = %v, want failed", h.init.State())
	}
	if h.fail == "" {
		t.Fatal("OnFailed not invoked")
	}
	h.s.Run()
	if h.done {
		t.Fatal("failed initiator must not configure")
	}
}

func TestDREPRenamesAndRetries(t *testing.T) {
	h := newHarness(t, Config{Timeout: time.Second}, "printer")
	h.init.Rename = func(old string) string { return old + "-2" }
	h.init.Start()

	drep := &wire.DREP{SIP: h.ident.Addr, DN: "printer", Sig: h.dns.Sign(wire.SigDREP("printer", h.init.Challenge()))}
	if err := h.init.HandleDREP(drep); err != nil {
		t.Fatalf("authentic DREP rejected: %v", err)
	}
	if h.ident.Name != "printer-2" {
		t.Fatalf("name = %q, want printer-2", h.ident.Name)
	}
	if len(h.sent) != 2 || h.sent[1].DN != "printer-2" {
		t.Fatal("second AREQ must carry the new name")
	}
	h.s.Run()
	if !h.done {
		t.Fatal("DAD should complete under the new name")
	}
}

func TestForgedDREPRejected(t *testing.T) {
	h := newHarness(t, Config{Timeout: time.Second}, "printer")
	h.init.Start()
	attacker := newIdent(t, 31, "")
	forged := &wire.DREP{SIP: h.ident.Addr, DN: "printer", Sig: attacker.Sign(wire.SigDREP("printer", h.init.Challenge()))}
	if err := h.init.HandleDREP(forged); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
	// Wrong name:
	wrong := &wire.DREP{SIP: h.ident.Addr, DN: "other", Sig: h.dns.Sign(wire.SigDREP("other", h.init.Challenge()))}
	if err := h.init.HandleDREP(wrong); !errors.Is(err, ErrWrongAddress) {
		t.Fatalf("err = %v, want ErrWrongAddress", err)
	}
	h.s.Run()
	if !h.done || h.ident.Name != "printer" {
		t.Fatal("forged DREP must not affect the name")
	}
}

func TestDREPWithoutNameIgnored(t *testing.T) {
	h := newHarness(t, Config{Timeout: time.Second}, "")
	h.init.Start()
	drep := &wire.DREP{SIP: h.ident.Addr, DN: "x", Sig: h.dns.Sign(wire.SigDREP("x", h.init.Challenge()))}
	if err := h.init.HandleDREP(drep); err == nil {
		t.Fatal("DREP accepted by host with no name")
	}
}

func TestHandleAREPWhenIdle(t *testing.T) {
	h := newHarness(t, Config{Timeout: time.Second}, "")
	owner := newIdent(t, 50, "")
	if err := h.init.HandleAREP(BuildAREP(owner, owner.Addr, 1, nil)); !errors.Is(err, ErrNotProbing) {
		t.Fatalf("err = %v, want ErrNotProbing", err)
	}
}

func TestValidateAREPBadKey(t *testing.T) {
	m := &wire.AREP{SIP: ipv6.SiteLocal(0, 1), PK: []byte("junk"), Sig: []byte("junk")}
	if err := ValidateAREP(m, identity.SuiteEd25519, 1); !errors.Is(err, ErrBadKey) {
		t.Fatalf("err = %v, want ErrBadKey", err)
	}
}

func TestChallengeIsFreshPerRound(t *testing.T) {
	h := newHarness(t, Config{Timeout: time.Second, MaxRetries: 5}, "")
	h.init.Start()
	ch1 := h.init.Challenge()
	owner := &identity.Identity{Priv: h.ident.Priv, Pub: h.ident.Pub, Rn: h.ident.Rn, Addr: h.ident.Addr}
	if err := h.init.HandleAREP(BuildAREP(owner, h.ident.Addr, ch1, nil)); err != nil {
		t.Fatal(err)
	}
	if h.init.Challenge() == ch1 {
		t.Fatal("challenge not refreshed between rounds")
	}
}

func TestFloodCacheDedup(t *testing.T) {
	fc := NewFloodCache(100)
	a := ipv6.SiteLocal(0, 1)
	if fc.Seen(a, 1) {
		t.Fatal("first sighting reported as seen")
	}
	if !fc.Seen(a, 1) {
		t.Fatal("second sighting not reported")
	}
	if fc.Seen(a, 2) {
		t.Fatal("different seq reported as seen")
	}
	b := ipv6.SiteLocal(0, 2)
	if fc.Seen(b, 1) {
		t.Fatal("different source reported as seen")
	}
}

func TestFloodCacheEviction(t *testing.T) {
	fc := NewFloodCache(4)
	for i := 0; i < 8; i++ {
		fc.Seen(ipv6.SiteLocal(0, uint64(i)), 0)
	}
	if fc.Len() != 4 {
		t.Fatalf("Len = %d, want 4", fc.Len())
	}
	// The oldest entries were evicted, so they read as fresh again.
	if fc.Seen(ipv6.SiteLocal(0, 0), 0) {
		t.Fatal("evicted entry still reported seen")
	}
	// The newest survived.
	if !fc.Seen(ipv6.SiteLocal(0, 7), 0) {
		t.Fatal("recent entry evicted prematurely")
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{StateIdle: "idle", StateProbing: "probing", StateConfigured: "configured", StateFailed: "failed", State(9): "unknown"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q", s, s.String())
		}
	}
}
