// Package audit implements the post-formation address audit sweep: the
// gossip-style closing of the one duplicate-address window the bootstrap
// admission policies leave open.
//
// The paper's extended DAD (Section 3.1) detects a duplicate claim only
// when a configured owner is inside the claimant's AREQ flood during the
// objection window. PR 4's per-cell admission keeps that guarantee for
// claimants sharing a grid cell, but accepts two residual cases on CGA's
// collision bound alone: simultaneous claims from different cells (neither
// claimant configured when the other floods), and partition merges (both
// claimants configured long before they share a radio at all — the common
// case in self-forming networks, not the corner case). Slimane et al.'s
// critique of passive one-shot DAD under partitions is exactly this gap.
//
// The sweep closes it: every configured node periodically re-advertises its
// CGA address binding in a signed, flooded AuditAdv. A node holding a
// conflicting binding for the advertised address answers with a signed
// AuditObj echoing the advertisement's challenge; both claimants verify the
// other's proof and resolve the conflict deterministically — the binding
// with the lower CGA digest rekeys (fresh modifier, DAD re-run), and a
// bit-identical binding (a cloned identity, the only conflict an honest
// simulation can manufacture without a SHA-256 collision) makes both sides
// rekey, since no protocol-visible evidence can distinguish original from
// clone. Either way the network returns to unique addresses within one
// sweep exchange.
//
// Sweep timing is a pure function of (seed, node index): per-node phases
// come from the same splitmix-style hashing boot.PerCell uses for cell
// phases, so sweeps never synchronize into network-wide flood bursts and
// never consume simulator randomness — scheduling the sweep cannot perturb
// the rest of a seeded run.
package audit

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"time"

	"sbr6/internal/boot"
	"sbr6/internal/identity"
	"sbr6/internal/ipv6"
	"sbr6/internal/ndp"
	"sbr6/internal/wire"
)

// Config tunes the audit sweep. The zero value disables it entirely: no
// events are scheduled, no randomness is drawn, and a run is byte-for-byte
// identical to one on a build that predates the sweep.
type Config struct {
	// Period is the sweep interval; each configured node re-advertises its
	// binding once per period at a seed-stable phase. <= 0 disables the
	// sweep.
	Period time.Duration
	// TTL bounds the advertisement flood's hop count; 0 falls back to the
	// node's protocol TTL. Bounding it trades detection radius for cost:
	// with a TTL of k the sweep finds any duplicate within k hops at
	// O(density*k^2) relays per advertisement — flat in the network size —
	// while the full protocol TTL audits the whole connected component.
	TTL uint8
}

// Enabled reports whether the sweep is configured to run.
func (c Config) Enabled() bool { return c.Period > 0 }

// Offset returns node id's seed-stable advertisement phase inside one sweep
// period: a deterministic hash of (seed, id) reduced to [0, period). It is
// literally boot.PerCell's phase construction (boot.Mix), consumes no
// simulator RNG, so two nodes' sweeps interleave the same way on every run
// of one seed while the population's phases spread uniformly across the
// period instead of thundering together.
func Offset(seed int64, id int, period time.Duration) time.Duration {
	if period <= 0 {
		return 0
	}
	return time.Duration(boot.Mix(uint64(seed), 0xa0d175, uint64(id)) % uint64(period))
}

// Verdict is one claimant's side of a deterministic conflict resolution.
type Verdict int

// Resolution verdicts.
const (
	// Keep means the peer's binding loses: hold the address and let the
	// peer rekey.
	Keep Verdict = iota
	// Rekey means this binding loses (or the bindings are bit-identical):
	// abandon the address, draw a fresh modifier and re-run DAD.
	Rekey
)

// String names the verdict.
func (v Verdict) String() string {
	if v == Rekey {
		return "rekey"
	}
	return "keep"
}

// Resolve decides which side of a verified binding conflict must abandon
// the address. Both claimants evaluate it with the roles swapped and reach
// complementary verdicts: the binding whose digest orders lower rekeys,
// the other keeps. Bit-identical bindings — a cloned identity, where no
// signature or CGA proof can tell original from copy — return Rekey for
// both sides: each claimant regenerates from its own randomness, so the
// clones separate onto fresh distinct addresses within one DAD round.
//
// The comparison key is the full SHA-256 digest of the CGA input (PK, rn),
// not the 64-bit truncation that forms the address: the conflict exists
// precisely because the truncations collide, while the full digests differ
// for any two distinct bindings.
func Resolve(minePK []byte, mineRn uint64, peerPK []byte, peerRn uint64) Verdict {
	mine := bindingDigest(minePK, mineRn)
	peer := bindingDigest(peerPK, peerRn)
	if bytes.Compare(mine[:], peer[:]) <= 0 {
		return Rekey
	}
	return Keep
}

// SameBinding reports whether the two bindings are bit-identical — the
// cloned-identity shape, and the self-replay shape the advertiser's round
// counter disambiguates.
func SameBinding(aPK []byte, aRn uint64, bPK []byte, bRn uint64) bool {
	return aRn == bRn && bytes.Equal(aPK, bPK)
}

// bindingDigest is the resolution ordering key: SHA-256 over a
// domain-separation tag, the public key and the big-endian modifier.
func bindingDigest(pk []byte, rn uint64) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte{0xad}) // audit-resolution domain tag
	h.Write(pk)
	var rnb [8]byte
	for i := 0; i < 8; i++ {
		rnb[i] = byte(rn >> (56 - 8*i))
	}
	h.Write(rnb[:])
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// BuildAdv constructs a node's periodic re-advertisement for sweep round
// seq under challenge ch.
func BuildAdv(owner *identity.Identity, seq uint32, ch uint64) *wire.AuditAdv {
	return &wire.AuditAdv{
		SIP: owner.Addr,
		Seq: seq,
		Ch:  ch,
		Sig: owner.Sign(wire.SigAuditAdv(owner.Addr, seq, ch)),
		PK:  owner.Pub.Bytes(),
		Rn:  owner.Rn,
	}
}

// BuildObjection constructs the signed conflict objection a binding holder
// raises against a heard advertisement for its own address. rr is the
// advertisement's route record, reversed by the sender for delivery.
func BuildObjection(owner *identity.Identity, contested ipv6.Addr, ch uint64, rr []ipv6.Addr) *wire.AuditObj {
	return &wire.AuditObj{
		SIP: contested,
		RR:  rr,
		Ch:  ch,
		Sig: owner.Sign(wire.SigAuditObj(contested, ch)),
		PK:  owner.Pub.Bytes(),
		Rn:  owner.Rn,
	}
}

// ValidateAdv runs the two-step proof check on a re-advertisement through v
// (nil computes directly): the advertised address must equal H(PK, rn) and
// the signature must verify over (SIP, seq, ch) under PK. The ndp
// sentinel errors are reused so attack experiments assert one vocabulary.
func ValidateAdv(v ndp.Verifier, m *wire.AuditAdv, suite identity.Suite) error {
	return validateBinding(v, m.SIP, m.PK, m.Rn, wire.SigAuditAdv(m.SIP, m.Seq, m.Ch), m.Sig, suite)
}

// ValidateObj checks an objection against the challenge ch this node's
// current advertisement carries: CGA binding for the contested address,
// signature over (SIP, ch).
func ValidateObj(v ndp.Verifier, m *wire.AuditObj, suite identity.Suite, ch uint64) error {
	if m.Ch != ch {
		return ndp.ErrWrongAddress
	}
	return validateBinding(v, m.SIP, m.PK, m.Rn, wire.SigAuditObj(m.SIP, ch), m.Sig, suite)
}

func validateBinding(v ndp.Verifier, addr ipv6.Addr, pkBytes []byte, rn uint64, msg, sig []byte, suite identity.Suite) error {
	pk, err := identity.ParsePublicKey(suite, pkBytes)
	if err != nil {
		return fmt.Errorf("%w: %v", ndp.ErrBadKey, err)
	}
	if v == nil {
		v = ndp.DirectVerifier{}
	}
	if !v.VerifyCGA(addr, pkBytes, rn) {
		return ndp.ErrCGABinding
	}
	if !v.VerifySig(pk, msg, sig) {
		return ndp.ErrBadSignature
	}
	return nil
}
