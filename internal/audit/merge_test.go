package audit_test

// Cluster-merge coverage: two disjointly bootstrapped partitions joined via
// mobility. Sobrado & Uhring's self-forming-network dynamics make merging
// clusters the COMMON case, and a merge is the one duplicate-address shape
// no formation-time defense can touch: both claimants complete DAD long
// before they share a radio, so there is no objection window left to
// protect. The suite proves both directions:
//
//   - with the audit sweep, the colliding address is detected and resolved
//     within k sweep periods of the merge completing;
//   - without it, the duplicate provably persists through the same span —
//     the baseline genuinely cannot detect it (non-vacuity), and the
//     pre-merge network genuinely was partitioned (non-vacuity again).

import (
	"reflect"
	"testing"
	"time"

	"sbr6/internal/scenario"
	"sbr6/internal/trace"
)

// metricsOf merges every node's counters.
func metricsOf(sc *scenario.Scenario) *trace.Metrics {
	m := trace.NewMetrics()
	for _, n := range sc.Nodes {
		m.Merge(n.Metrics())
	}
	return m
}

// mergeConfig stages the trailing third of the network as an independent
// cluster that glides into the main area shortly after formation.
func mergeConfig(seed int64, enabled bool) scenario.Config {
	cfg := auditConfig(90, seed, enabled)
	cfg.Partition = scenario.PartitionSpec{
		Nodes:  30,
		JoinAt: 500 * time.Millisecond,
		Speed:  150, // glide fast: virtual time is cheap, event count is not
	}
	return cfg
}

// seedMergeClone gives one staged-partition node the identity of one
// main-cluster node. No timing constraint is needed: the clusters are
// beyond radio reach for the whole formation, so BOTH claims always
// succeed whatever the admission schedule does.
func seedMergeClone(t *testing.T, sc *scenario.Scenario) {
	t.Helper()
	main, staged := 1, sc.Cfg.N-sc.Cfg.Partition.Nodes
	*sc.Nodes[staged].Identity() = *sc.Nodes[main].Identity()
}

// runMerge drives one merge scenario end to end and reports the outcome.
func runMerge(t *testing.T, cfg scenario.Config) (out outcome, connected bool) {
	t.Helper()
	sc, err := scenario.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seedMergeClone(t, sc)

	// Non-vacuity: before formation the deployment really is partitioned.
	if comps := len(sc.Components()); comps < 2 {
		t.Fatalf("staged deployment has %d component(s); partition never existed", comps)
	}

	sc.Bootstrap()

	// Both clones formed independently and hold the same address.
	if dups := duplicates(sc); dups != 1 {
		t.Fatalf("%d duplicate addresses after disjoint formation, want exactly 1", dups)
	}
	if comps := len(sc.Components()); comps < 2 {
		t.Fatalf("clusters already merged during formation (%d component); the merge window never existed", comps)
	}

	// Run past the glide plus k sweep periods.
	span := sc.MergeComplete() - time.Duration(sc.S.Now()) + resolveK*sweepPeriod
	sc.StartAuditSweeps(span)
	sc.S.RunFor(span)

	out = outcome{Addrs: map[string]int{}, Counters: map[string]float64{}}
	merged := metricsOf(sc)
	for _, n := range sc.Nodes {
		out.Addrs[n.Addr().String()]++
		if n.Configured() {
			out.Configured++
		}
	}
	for _, c := range auditCounters {
		out.Counters[c] = merged.Get(c)
	}
	return out, sc.Connected()
}

func TestClusterMergeDuplicateResolvedOnlyByAudit(t *testing.T) {
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = seeds[:1] // keep the -race CI lap affordable
	}
	for _, seed := range seeds {
		// With the sweep: resolved within k periods of the merge.
		out, connected := runMerge(t, mergeConfig(seed, true))
		if !connected {
			t.Fatalf("seed %d: clusters never actually merged; the detection claim would be vacuous", seed)
		}
		for addr, count := range out.Addrs {
			if count > 1 {
				t.Errorf("seed %d: address %s still held by %d nodes after the merge + %d sweeps", seed, addr, count, resolveK)
			}
		}
		if out.Configured != 90 {
			t.Errorf("seed %d: %d/90 configured after resolution", seed, out.Configured)
		}
		if got := out.Counters["audit.rekeys"]; got != 2 {
			t.Errorf("seed %d: %v rekeys, want 2 (both clones)", seed, got)
		}
		if got := out.Counters["audit.conflicts"]; got < 2 {
			t.Errorf("seed %d: %v conflicts observed, want >= 2", seed, got)
		}

		// Determinism of the whole merge machinery.
		out2, _ := runMerge(t, mergeConfig(seed, true))
		if !reflect.DeepEqual(out, out2) {
			t.Errorf("seed %d: two merge runs of one seed diverged", seed)
		}

		// Without it: the merged network keeps the duplicate forever.
		base, baseConnected := runMerge(t, mergeConfig(seed, false))
		if !baseConnected {
			t.Fatalf("seed %d: baseline clusters never merged", seed)
		}
		persisting := 0
		for _, count := range base.Addrs {
			if count > 1 {
				persisting++
			}
		}
		if persisting != 1 {
			t.Errorf("seed %d: baseline shows %d persisting duplicates, want 1 — one-shot DAD would have to be credited with a detection it cannot make", seed, persisting)
		}
		if got := base.Counters["audit.rekeys"]; got != 0 {
			t.Errorf("seed %d: baseline rekeyed %v nodes with the sweep disabled", seed, got)
		}
	}
}
