package audit_test

// Audit conformance suite: the proof obligation for the post-formation
// address audit sweep. PR 4's per-cell admission provably cannot detect a
// duplicate claim made simultaneously from a different cell — neither
// claimant is configured while the other's DAD flood is in the air — so
// these tests seed exactly that shape and hold the sweep to:
//
//   - every seeded cross-cell duplicate is found and resolved within k
//     sweep periods: all addresses unique again, every claimant fully
//     re-configured, and the detection visible on the audit counters;
//   - the no-audit baseline provably does NOT resolve them (non-vacuity:
//     the duplicates this suite seeds would otherwise persist forever);
//   - a disabled sweep is a byte-for-byte no-op: on conflict-free
//     scenarios a zero-value audit config produces results identical to
//     an explicitly disabled one, twice over (double-run determinism);
//   - an enabled sweep on a conflict-free scenario rekeys nobody and
//     leaves every formation outcome (addresses, detection counters)
//     exactly as the disabled run had them;
//   - the audit-enabled run is itself byte-for-byte deterministic per
//     seed.

import (
	"math"
	"reflect"
	"testing"
	"time"

	"sbr6/internal/audit"
	"sbr6/internal/boot"
	"sbr6/internal/geom"
	"sbr6/internal/radio"
	"sbr6/internal/scenario"
	"sbr6/internal/trace"
)

// sweepPeriod is the audit period every conformance scenario uses; resolveK
// is the acceptance bound: every seeded duplicate must be gone within
// resolveK periods of the first sweep.
const (
	sweepPeriod = 2 * time.Second
	resolveK    = 3
)

// auditConfig is the shared base: per-cell admission at the scale sweep's
// constant density, fast DAD timers, no traffic. Audit on or off per test.
func auditConfig(n int, seed int64, enabled bool) scenario.Config {
	cfg := scenario.DefaultConfig()
	cfg.Seed = seed
	cfg.N = n
	side := 125 * math.Sqrt(float64(n))
	cfg.Area = geom.Rect{W: side, H: side}
	cfg.Placement = scenario.PlaceUniform
	cfg.Boot = boot.PerCell
	cfg.BootStagger = 500 * time.Millisecond
	cfg.Protocol.DAD.Timeout = 300 * time.Millisecond
	cfg.DNS.CommitDelay = 300 * time.Millisecond
	cfg.Flows = nil
	if enabled {
		cfg.Protocol.Audit = audit.Config{Period: sweepPeriod}
	}
	return cfg
}

// seedCrossCellClones plants `pairs` simultaneous cross-cell duplicate
// claims: for each pair, two nodes bucketed in DIFFERENT admission cells
// whose DAD start offsets overlap within half an objection window get one
// identity. Neither is configured while the other's AREQ floods, so
// formation-time DAD cannot catch them under any policy — the exact window
// the per-cell admission documentation concedes.
func seedCrossCellClones(t *testing.T, sc *scenario.Scenario, pairs int) int {
	t.Helper()
	offs := sc.BootOffsets()
	window := sc.Cfg.Protocol.DAD.ObjectionWindow()
	g := geom.NewGrid(sc.Cfg.Radio.Range * boot.DefaultCellFraction)
	for i := 0; i < sc.Cfg.N; i++ {
		g.Set(i, sc.Medium.PositionOf(radio.NodeID(i)))
	}
	seeded := 0
	used := map[int]bool{0: true}
	for i := 1; i < sc.Cfg.N && seeded < pairs; i++ {
		if used[i] {
			continue
		}
		ix, iy, _ := g.CellOf(i)
		for j := i + 1; j < sc.Cfg.N; j++ {
			if used[j] {
				continue
			}
			jx, jy, _ := g.CellOf(j)
			if ix == jx && iy == jy {
				continue // same cell: PR 4 already covers this pair
			}
			delta := offs[i] - offs[j]
			if delta < 0 {
				delta = -delta
			}
			if delta >= window/2 {
				continue // not simultaneous enough: DAD might catch it
			}
			*sc.Nodes[j].Identity() = *sc.Nodes[i].Identity()
			used[i], used[j] = true, true
			seeded++
			break
		}
	}
	if seeded < pairs {
		t.Fatalf("placement yielded only %d simultaneous cross-cell pairs, want %d (grow N)", seeded, pairs)
	}
	return seeded
}

// outcome is everything an audit run is judged on.
type outcome struct {
	Configured int
	Addrs      map[string]int
	Counters   map[string]float64
}

var auditCounters = []string{
	"audit.adv_sent",
	"audit.conflicts",
	"audit.objections_sent",
	"audit.rekeys",
	"audit.adv_rejected",
	"audit.obj_rejected",
	"audit.replays_ignored",
	"dad.arep_accepted",
	"dad.objections_sent",
	"dad.rounds",
}

// runAudit builds cfg, seeds `pairs` cross-cell clones, bootstraps, runs
// the sweep (or plain time when disabled) for `span`, and collects the
// outcome plus the full merged metrics for byte-determinism checks.
func runAudit(t *testing.T, cfg scenario.Config, pairs int, span time.Duration) (outcome, *trace.Metrics) {
	t.Helper()
	sc, err := scenario.Build(cfg)
	if err != nil {
		t.Fatalf("build (seed %d): %v", cfg.Seed, err)
	}
	if pairs > 0 {
		seedCrossCellClones(t, sc, pairs)
	}
	sc.Bootstrap()

	if pairs > 0 {
		// Non-vacuity: the seeded duplicates survived formation — per-cell
		// admission really cannot see them.
		dups := duplicates(sc)
		if dups != pairs {
			t.Fatalf("seed %d: %d duplicate addresses after formation, want %d — the seeded shape is not the PR4 blind spot",
				cfg.Seed, dups, pairs)
		}
	}

	sc.StartAuditSweeps(span)
	sc.S.RunFor(span)

	merged := trace.NewMetrics()
	out := outcome{Addrs: map[string]int{}, Counters: map[string]float64{}}
	for _, n := range sc.Nodes {
		out.Addrs[n.Addr().String()]++
		if n.Configured() {
			out.Configured++
		}
		merged.Merge(n.Metrics())
	}
	for _, c := range auditCounters {
		out.Counters[c] = merged.Get(c)
	}
	return out, merged
}

// duplicates counts addresses held by more than one node.
func duplicates(sc *scenario.Scenario) int {
	addrs := map[string]int{}
	for _, n := range sc.Nodes {
		addrs[n.Addr().String()]++
	}
	dups := 0
	for _, c := range addrs {
		if c > 1 {
			dups += c - 1
		}
	}
	return dups
}

func TestAuditResolvesCrossCellDuplicates(t *testing.T) {
	const n, pairs = 90, 2
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:2] // keep the -race CI lap affordable
	}
	span := resolveK * sweepPeriod
	for _, seed := range seeds {
		// The audit sweep finds and resolves every seeded duplicate.
		out, metrics := runAudit(t, auditConfig(n, seed, true), pairs, span)
		for addr, count := range out.Addrs {
			if count > 1 {
				t.Errorf("seed %d: address %s still held by %d nodes after %d sweep periods", seed, addr, count, resolveK)
			}
		}
		if out.Configured != n {
			t.Errorf("seed %d: %d/%d nodes configured after resolution (a rekeyed claimant failed to re-form)", seed, out.Configured, n)
		}
		// Cloned bindings are indistinguishable, so BOTH claimants of each
		// pair must have rekeyed, each logging exactly one conflict.
		if got := out.Counters["audit.rekeys"]; got != float64(2*pairs) {
			t.Errorf("seed %d: %v rekeys, want %d (both clones of each pair)", seed, got, 2*pairs)
		}
		if got := out.Counters["audit.conflicts"]; got != float64(2*pairs) {
			t.Errorf("seed %d: %v conflicts observed, want %d", seed, got, 2*pairs)
		}
		if got := out.Counters["audit.objections_sent"]; got < float64(pairs) {
			t.Errorf("seed %d: only %v objections sent, want >= %d", seed, got, pairs)
		}
		// Each rekey re-runs DAD exactly once on a fresh address.
		if got := out.Counters["dad.rounds"]; got != float64(n+2*pairs) {
			t.Errorf("seed %d: %v DAD rounds, want %d", seed, got, n+2*pairs)
		}
		// Nothing was rejected and no replay filtering fired: the suite's
		// traffic is all honest and live.
		for _, c := range []string{"audit.adv_rejected", "audit.obj_rejected"} {
			if got := out.Counters[c]; got != 0 {
				t.Errorf("seed %d: %s = %v on an honest run", seed, c, got)
			}
		}

		// Byte determinism: an identical second run agrees on every counter
		// of every node.
		out2, metrics2 := runAudit(t, auditConfig(n, seed, true), pairs, span)
		if !reflect.DeepEqual(out, out2) || !reflect.DeepEqual(metrics, metrics2) {
			t.Errorf("seed %d: two audit-enabled runs of one seed diverged", seed)
		}

		// Non-vacuity the other way: without the sweep the duplicates
		// persist through the same span — one-shot DAD alone can never
		// resolve them.
		base, _ := runAudit(t, auditConfig(n, seed, false), pairs, span)
		persisting := 0
		for _, count := range base.Addrs {
			if count > 1 {
				persisting++
			}
		}
		if persisting != pairs {
			t.Errorf("seed %d: baseline shows %d persisting duplicates, want %d — the audit assertion would be vacuous", seed, persisting, pairs)
		}
		if got := base.Counters["audit.rekeys"]; got != 0 {
			t.Errorf("seed %d: disabled sweep rekeyed %v nodes", seed, got)
		}
	}
}

// TestAuditDisabledIsNoOp pins the differential bar: on a conflict-free
// scenario the zero-value audit config, an explicit zero period, and a
// second run of either are all byte-for-byte identical — disabling the
// sweep removes the subsystem entirely. And an ENABLED sweep on the same
// conflict-free scenario must change nothing that matters: same addresses,
// same formation counters, zero conflicts, zero rekeys — its only trace is
// the advertisements themselves.
func TestAuditDisabledIsNoOp(t *testing.T) {
	const n = 90
	span := resolveK * sweepPeriod
	for _, seed := range []int64{1, 2} {
		zero, zeroM := runAudit(t, auditConfig(n, seed, false), 0, span)

		explicit := auditConfig(n, seed, false)
		explicit.Protocol.Audit = audit.Config{} // spelled out: the zero value
		off2, off2M := runAudit(t, explicit, 0, span)
		if !reflect.DeepEqual(zero, off2) || !reflect.DeepEqual(zeroM, off2M) {
			t.Errorf("seed %d: zero-value and explicit disabled configs diverged", seed)
		}
		again, againM := runAudit(t, auditConfig(n, seed, false), 0, span)
		if !reflect.DeepEqual(zero, again) || !reflect.DeepEqual(zeroM, againM) {
			t.Errorf("seed %d: two disabled runs of one seed diverged", seed)
		}

		on, _ := runAudit(t, auditConfig(n, seed, true), 0, span)
		if !reflect.DeepEqual(zero.Addrs, on.Addrs) {
			t.Errorf("seed %d: enabling the sweep on a conflict-free run changed the address assignment", seed)
		}
		for _, c := range []string{"audit.conflicts", "audit.rekeys", "audit.objections_sent", "audit.adv_rejected"} {
			if got := on.Counters[c]; got != 0 {
				t.Errorf("seed %d: conflict-free sweep produced %s = %v", seed, c, got)
			}
		}
		for _, c := range []string{"dad.rounds", "dad.arep_accepted", "dad.objections_sent"} {
			if zero.Counters[c] != on.Counters[c] {
				t.Errorf("seed %d: formation counter %s: disabled %v, enabled %v",
					seed, c, zero.Counters[c], on.Counters[c])
			}
		}
		if on.Counters["audit.adv_sent"] == 0 {
			t.Errorf("seed %d: enabled sweep sent no advertisements — the no-op comparison is vacuous", seed)
		}
	}
}

// TestAuditRekeyPreservesNameBinding: a NAMED claimant that loses an audit
// conflict must neither be silently renamed (its re-run AREQ colliding
// with its own committed DNS record would draw the server's 6DNAR
// objection) nor leave the DNS serving the abandoned address. The rekey
// runs address-only DAD and then moves the binding through the signed
// update protocol, so the name survives and resolves to the fresh address.
func TestAuditRekeyPreservesNameBinding(t *testing.T) {
	cfg := auditConfig(90, 1, true)
	cfg.Names = map[int]string{1: "victim-host"}
	sc, err := scenario.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Clone node 1's identity (name included) onto a cross-cell partner so
	// the named node itself ends up rekeying. The clone sheds the copied
	// name so only the victim re-binds.
	offs := sc.BootOffsets()
	window := cfg.Protocol.DAD.ObjectionWindow()
	g := geom.NewGrid(cfg.Radio.Range * boot.DefaultCellFraction)
	for i := 0; i < cfg.N; i++ {
		g.Set(i, sc.Medium.PositionOf(radio.NodeID(i)))
	}
	ix, iy, _ := g.CellOf(1)
	clone := -1
	for j := 2; j < cfg.N; j++ {
		jx, jy, _ := g.CellOf(j)
		delta := offs[1] - offs[j]
		if delta < 0 {
			delta = -delta
		}
		if (jx != ix || jy != iy) && delta < window/2 {
			clone = j
			break
		}
	}
	if clone < 0 {
		t.Skip("no simultaneous cross-cell partner for node 1 under this seed")
	}
	*sc.Nodes[clone].Identity() = *sc.Nodes[1].Identity()
	sc.Nodes[clone].Identity().Name = ""

	sc.Bootstrap()
	if sc.Nodes[1].Addr() != sc.Nodes[clone].Addr() {
		t.Fatal("clone pair did not survive formation; the rekey path is never exercised")
	}
	stolen := sc.Nodes[1].Addr()

	// Sweeps plus headroom for the post-DAD update round trip.
	span := resolveK*sweepPeriod + 4*time.Second
	sc.StartAuditSweeps(span)
	sc.S.RunFor(span)

	victim := sc.Nodes[1]
	if victim.Addr() == stolen || sc.Nodes[clone].Addr() == victim.Addr() {
		t.Fatalf("conflict unresolved: victim %s, clone %s", victim.Addr(), sc.Nodes[clone].Addr())
	}
	if got := victim.Name(); got != "victim-host" {
		t.Fatalf("victim renamed to %q by its own DNS record", got)
	}
	if got, ok := sc.DNSSrv.Lookup("victim-host"); !ok || got != victim.Addr() {
		t.Fatalf("DNS serves victim-host -> %s (ok=%v), want the fresh address %s", got, ok, victim.Addr())
	}
	if metricsOf(sc).Get("dns.rebind_ok") == 0 {
		t.Fatal("the signed update protocol never completed")
	}
}
