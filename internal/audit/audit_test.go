package audit

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sbr6/internal/identity"
	"sbr6/internal/ndp"
)

func mustIdent(t *testing.T, seed int64) *identity.Identity {
	t.Helper()
	id, err := identity.New(identity.SuiteEd25519, rand.New(rand.NewSource(seed)), "")
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// Offsets are deterministic in (seed, id), land inside [0, period), and
// spread: a population's phases must not collapse onto a handful of values.
func TestOffsetProperties(t *testing.T) {
	period := 2 * time.Second
	prop := func(seed int64, id uint16) bool {
		off := Offset(seed, int(id), period)
		return off == Offset(seed, int(id), period) && off >= 0 && off < period
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}

	distinct := map[time.Duration]bool{}
	for id := 0; id < 256; id++ {
		distinct[Offset(7, id, period)] = true
	}
	if len(distinct) < 200 {
		t.Fatalf("256 nodes landed on only %d distinct phases — sweeps would synchronize", len(distinct))
	}

	if Offset(1, 3, 0) != 0 {
		t.Fatal("disabled period must yield a zero offset")
	}
}

// Resolve is complementary for distinct bindings (exactly one side rekeys,
// whichever order the roles are evaluated in) and symmetric-Rekey for
// bit-identical bindings (the clone case).
func TestResolveDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		aPK, bPK := make([]byte, 32), make([]byte, 32)
		r.Read(aPK)
		r.Read(bPK)
		aRn, bRn := r.Uint64(), r.Uint64()

		va := Resolve(aPK, aRn, bPK, bRn)
		vb := Resolve(bPK, bRn, aPK, aRn)
		if va == vb {
			t.Fatalf("iteration %d: both sides resolved %v — conflict would persist or both flap", i, va)
		}
	}
	// Clones: indistinguishable, so both sides must rekey.
	pk := make([]byte, 32)
	r.Read(pk)
	if Resolve(pk, 9, pk, 9) != Rekey {
		t.Fatal("bit-identical bindings must resolve to Rekey on both sides")
	}
	if !SameBinding(pk, 9, pk, 9) || SameBinding(pk, 9, pk, 10) {
		t.Fatal("SameBinding misclassifies")
	}
}

// A built advertisement and objection validate, and every tampering of the
// proof material is rejected with the matching sentinel error.
func TestBuildAndValidate(t *testing.T) {
	owner := mustIdent(t, 1)
	other := mustIdent(t, 2)

	adv := BuildAdv(owner, 3, 77)
	if err := ValidateAdv(nil, adv, identity.SuiteEd25519); err != nil {
		t.Fatalf("honest advertisement rejected: %v", err)
	}

	tampered := *adv
	tampered.Seq++ // signature covers the round counter
	if err := ValidateAdv(nil, &tampered, identity.SuiteEd25519); err != ndp.ErrBadSignature {
		t.Fatalf("inflated round accepted: %v", err)
	}
	tampered = *adv
	tampered.Rn++ // CGA binding breaks first
	if err := ValidateAdv(nil, &tampered, identity.SuiteEd25519); err != ndp.ErrCGABinding {
		t.Fatalf("wrong modifier: got %v", err)
	}
	tampered = *adv
	tampered.PK = []byte{1, 2, 3}
	if err := ValidateAdv(nil, &tampered, identity.SuiteEd25519); err == nil {
		t.Fatal("garbage key accepted")
	}

	obj := BuildObjection(other, other.Addr, adv.Ch, nil)
	if err := ValidateObj(nil, obj, identity.SuiteEd25519, adv.Ch); err != nil {
		t.Fatalf("honest objection rejected: %v", err)
	}
	if err := ValidateObj(nil, obj, identity.SuiteEd25519, adv.Ch+1); err != ndp.ErrWrongAddress {
		t.Fatalf("stale challenge accepted: %v", err)
	}
	forged := *obj
	forged.Sig = owner.Sign([]byte("not the challenge"))
	if err := ValidateObj(nil, &forged, identity.SuiteEd25519, adv.Ch); err != ndp.ErrBadSignature {
		t.Fatalf("forged objection: got %v", err)
	}
}
