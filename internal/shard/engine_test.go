package shard_test

import (
	"testing"
	"time"

	"sbr6/internal/geom"
	"sbr6/internal/mobility"
	"sbr6/internal/radio"
	"sbr6/internal/shard"
	"sbr6/internal/sim"
)

// The raw-medium boundary crossings — broadcast into a neighbor region,
// unicast in both directions with the ack resolving on the sender — are the
// primitives every protocol exchange reduces to. Exercising them without
// the protocol stack pins blame precisely when the differential suite
// regresses.
func TestCrossRegionPrimitives(t *testing.T) {
	eng := shard.New(shard.Config{
		Seed:      1,
		Regions:   2,
		Radio:     radio.DefaultConfig(),
		Positions: []geom.Point{{X: 100, Y: 100}, {X: 200, Y: 100}},
	})
	var got []string
	mk := func(name string) radio.Handler {
		return radio.HandlerFunc(func(from radio.NodeID, payload []byte) {
			got = append(got, name+string(payload))
		})
	}
	eng.AddNode(0, mobility.Static(geom.Point{X: 100, Y: 100}), mk("n0:"))
	eng.AddNode(1, mobility.Static(geom.Point{X: 200, Y: 100}), mk("n1:"))
	if eng.RegionOf(0) == eng.RegionOf(1) {
		t.Fatal("nodes share a region; test is vacuous")
	}
	eng.ScheduleOwnedAt(0, sim.Time(time.Millisecond), func() {
		eng.NodeMedium(0).Broadcast(0, []byte("bc"))
	})
	acked := -1
	eng.ScheduleOwnedAt(0, sim.Time(10*time.Millisecond), func() {
		eng.NodeMedium(0).Unicast(0, 1, []byte("uc"), func(ok bool) {
			if ok {
				acked = 1
			} else {
				acked = 0
			}
		})
	})
	eng.ScheduleOwnedAt(1, sim.Time(20*time.Millisecond), func() {
		eng.NodeMedium(1).Unicast(1, 0, []byte("re"), nil)
	})
	eng.RunFor(time.Second)

	want := []string{"n1:bc", "n1:uc", "n0:re"}
	if len(got) != len(want) {
		t.Fatalf("deliveries = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("deliveries = %v, want %v", got, want)
		}
	}
	if acked != 1 {
		t.Fatalf("cross-region unicast ack = %d, want 1", acked)
	}
	st := eng.Stats()
	if st.BroadcastSent != 1 || st.UnicastSent != 2 || st.RxFrames != 3 {
		t.Fatalf("stats = %+v, want 1 broadcast / 2 unicasts / 3 receptions", st)
	}
	if eng.Now() != sim.Time(time.Second) {
		t.Fatalf("global clock = %v after drain, want 1s", eng.Now())
	}
}
