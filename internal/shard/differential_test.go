package shard_test

import (
	"fmt"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"sbr6/internal/attack"
	"sbr6/internal/core"
	"sbr6/internal/geom"
	"sbr6/internal/scenario"
)

// The differential suite proves the tentpole claim: a scenario run on the
// sharded engine produces byte-for-byte identical Results at every shard
// count. Engine(1) is the baseline — the engine's serial mode shares the
// ordering rules (owner-keyed events, deterministic radio draws, barrier
// replay) with every higher count, which is exactly what makes the
// comparison byte-level rather than statistical.
//
// SBR6_SHARD_LEVELS narrows the non-baseline shard counts (comma-separated),
// so the CI race matrix can spread levels across jobs.

// fastTimers shrinks the protocol so a full bootstrap+measurement run
// stays cheap; mirrors the scenario package's own fast config.
func fastTimers(cfg *scenario.Config) {
	cfg.Protocol.DAD.Timeout = 300 * time.Millisecond
	cfg.Protocol.DiscoveryTimeout = 500 * time.Millisecond
	cfg.Protocol.AckTimeout = 400 * time.Millisecond
	cfg.Protocol.ResolveTimeout = 2 * time.Second
	cfg.DNS.CommitDelay = 300 * time.Millisecond
	cfg.BootStagger = 300 * time.Millisecond
	cfg.Warmup = time.Second
	cfg.Duration = 8 * time.Second
	cfg.Cooldown = 2 * time.Second
}

// diffMatrix is the equivalence scenario matrix, in the style of the radio
// package's cross-index suite: a clean static network, a mobile network
// with churn crossing region boundaries, and an adversarial mobile network.
var diffMatrix = []struct {
	name string
	cfg  func(seed int64) scenario.Config
}{
	{"quickstart", func(seed int64) scenario.Config {
		cfg := scenario.DefaultConfig()
		cfg.Seed = seed
		cfg.N = 25
		cfg.Placement = scenario.PlaceGrid
		cfg.Area = geom.Rect{W: 1000, H: 1000}
		fastTimers(&cfg)
		cfg.Flows = []scenario.Flow{
			{From: 1, To: 24, Interval: 500 * time.Millisecond, Size: 64},
			{From: 7, To: 18, Interval: 700 * time.Millisecond, Size: 48},
		}
		return cfg
	}},
	{"battlefield", func(seed int64) scenario.Config {
		cfg := scenario.DefaultConfig()
		cfg.Seed = seed
		cfg.N = 25
		cfg.Area = geom.Rect{W: 700, H: 700}
		fastTimers(&cfg)
		// Mixed waypoint/walk churn drives nodes across region boundaries
		// throughout the run; windows exercise the barrier-replayed
		// bookkeeping path.
		cfg.Mobility = scenario.MobilitySpec{
			Waypoint: true, Walk: true,
			MinSpeed: 1, MaxSpeed: 8,
			Pause: time.Second, Epoch: 2 * time.Second,
		}
		cfg.WindowSize = 2 * time.Second
		cfg.Flows = []scenario.Flow{
			{From: 1, To: 23, Interval: 500 * time.Millisecond, Size: 64},
			{From: 4, To: 19, Interval: 600 * time.Millisecond, Size: 32},
		}
		return cfg
	}},
	{"adversarial", func(seed int64) scenario.Config {
		cfg := scenario.DefaultConfig()
		cfg.Seed = seed
		cfg.N = 30
		cfg.Area = geom.Rect{W: 800, H: 800}
		fastTimers(&cfg)
		cfg.Mobility = scenario.MobilitySpec{
			Waypoint: true, Walk: true,
			MinSpeed: 1, MaxSpeed: 6,
			Pause: 2 * time.Second, Epoch: 3 * time.Second,
		}
		cfg.Behaviors = map[int]core.Behavior{
			14: &attack.BlackHole{ForgeCacheReplies: true},
			9:  &attack.IdentityChurner{Every: 3 * time.Second},
		}
		cfg.Flows = []scenario.Flow{
			{From: 1, To: 28, Interval: 500 * time.Millisecond, Size: 64},
			{From: 3, To: 22, Interval: 700 * time.Millisecond, Size: 48},
		}
		return cfg
	}},
}

func shardLevels(t *testing.T) []int {
	t.Helper()
	if env := os.Getenv("SBR6_SHARD_LEVELS"); env != "" {
		var levels []int
		for _, part := range strings.Split(env, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				t.Fatalf("bad SBR6_SHARD_LEVELS entry %q", part)
			}
			levels = append(levels, n)
		}
		return levels
	}
	if testing.Short() {
		return []int{2, 4}
	}
	return []int{2, 4, 8}
}

func diffSeeds() []int64 {
	if testing.Short() {
		return []int64{1, 2}
	}
	return []int64{1, 2, 3, 4, 5}
}

func runSharded(t *testing.T, cfg scenario.Config, shards int) *scenario.Result {
	t.Helper()
	cfg.Shards = shards
	sc, err := scenario.Build(cfg)
	if err != nil {
		t.Fatalf("build with %d shards: %v", shards, err)
	}
	return sc.Run()
}

func TestShardDifferential(t *testing.T) {
	levels := shardLevels(t)
	for _, c := range diffMatrix {
		for _, seed := range diffSeeds() {
			c, seed := c, seed
			t.Run(fmt.Sprintf("%s/seed=%d", c.name, seed), func(t *testing.T) {
				t.Parallel()
				base := runSharded(t, c.cfg(seed), 1)
				if base.Sent == 0 || base.Delivered == 0 {
					t.Fatalf("baseline sent=%d delivered=%d; the comparison would be vacuous",
						base.Sent, base.Delivered)
				}
				for _, n := range levels {
					got := runSharded(t, c.cfg(seed), n)
					if !reflect.DeepEqual(base, got) {
						t.Errorf("shards=%d diverged from shards=1:\n  base: %v\n  got:  %v\n  base link: %+v\n  got link:  %+v",
							n, base, got, base.Link, got.Link)
					}
				}
			})
		}
	}
}

// The engine's serial mode must still form the network and deliver — a
// degenerate engine that dropped all traffic would sail through a
// DeepEqual-only suite.
func TestShardedRunDelivers(t *testing.T) {
	res := runSharded(t, diffMatrix[0].cfg(1), 4)
	if res.Configured != 25 {
		t.Fatalf("configured %d/25", res.Configured)
	}
	if res.PDR < 0.9 {
		t.Fatalf("sharded clean-network PDR = %v (%d/%d)", res.PDR, res.Delivered, res.Sent)
	}
}
