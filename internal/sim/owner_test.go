package sim

import (
	"testing"
	"time"
)

// Stop inside RunUntil must freeze the clock at the stopping event: a
// watchdog-cancelled run that reported Now() == deadline would claim
// virtual time it never simulated.
func TestStopFreezesClockInRunUntil(t *testing.T) {
	s := New(1)
	stopAt := Time(10 * time.Millisecond)
	s.At(stopAt, func() { s.Stop() })
	s.At(Time(20*time.Millisecond), func() { t.Fatal("event after Stop fired") })
	s.RunUntil(Time(time.Second))
	if s.Now() != stopAt {
		t.Fatalf("clock advanced to %v after Stop, want frozen at %v", s.Now(), stopAt)
	}
}

func TestStopFreezesClockInRunFor(t *testing.T) {
	s := New(1)
	s.RunFor(time.Millisecond) // move the base clock off zero first
	base := s.Now()
	stopAt := base.Add(3 * time.Millisecond)
	s.At(stopAt, func() { s.Stop() })
	s.RunFor(time.Second)
	if s.Now() != stopAt {
		t.Fatalf("clock advanced to %v after Stop, want frozen at %v", s.Now(), stopAt)
	}
}

// Without Stop, RunUntil still advances the clock to the deadline even
// when the queue drains early — the historical contract.
func TestRunUntilStillAdvancesWhenNotStopped(t *testing.T) {
	s := New(1)
	s.At(Time(time.Millisecond), func() {})
	s.RunUntil(Time(time.Second))
	if s.Now() != Time(time.Second) {
		t.Fatalf("clock at %v, want deadline", s.Now())
	}
}

// Cancel must clear fn, afn and arg: a cleared-but-referenced argument
// object would stay pinned until the event struct itself is collected.
func TestTimerCancelClearsAllCallbackFields(t *testing.T) {
	s := New(1)
	tm := s.After(time.Second, func() {})
	ev := tm.ev
	// Simulate an argument-carrying event under a Timer so the test fails
	// if Cancel ever regresses to clearing fn alone.
	ev.afn, ev.arg = func(any) {}, new(int)
	if !tm.Cancel() {
		t.Fatal("timer was not pending")
	}
	if ev.fn != nil || ev.afn != nil || ev.arg != nil {
		t.Fatalf("cancelled event retains callbacks: fn=%v afn=%v arg=%v",
			ev.fn != nil, ev.afn != nil, ev.arg != nil)
	}
}

// The event.pooled comment promises Timer-backed events are never pooled;
// Cancel now enforces it. A Timer pointing at a pooled event is a kernel
// bug, so the check must be loud.
func TestTimerCancelPanicsOnPooledEvent(t *testing.T) {
	s := New(1)
	s.DoAt(Time(time.Second), func() {})
	bogus := &Timer{sim: s, ev: s.queue[0]} // pooled event straight off the heap
	defer func() {
		if recover() == nil {
			t.Fatal("Cancel of a pooled-event Timer did not panic")
		}
	}()
	bogus.Cancel()
}

// In owner mode, same-instant ties resolve by owner id then per-owner seq
// — independent of the order the events were scheduled in.
func TestOwnerModeOrdersByOwnerAtSameInstant(t *testing.T) {
	s := New(1)
	s.EnableOwners()
	at := Time(time.Millisecond)
	var got []int
	push := func(v int) func() { return func() { got = append(got, v) } }

	// Schedule deliberately out of owner order, interleaved.
	s.SetOwner(3)
	s.At(at, push(30))
	s.SetOwner(1)
	s.At(at, push(10))
	s.SetOwner(3)
	s.At(at, push(31))
	s.SetOwner(0) // global owner sorts first
	s.At(at, push(0))
	s.SetOwner(1)
	s.DoAt(at, push(11))

	s.Run()
	want := []int{0, 10, 11, 30, 31}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// Outside owner mode nothing changes: owner stays 0 and the global seq
// keeps the historical FIFO, so enabling the field is invisible to every
// existing simulation.
func TestPlainModeKeepsGlobalFIFO(t *testing.T) {
	s := New(1)
	s.SetOwner(7) // must be ignored outside owner mode
	at := Time(time.Millisecond)
	var got []int
	for i := 0; i < 5; i++ {
		v := i
		s.At(at, func() { got = append(got, v) })
	}
	s.Run()
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("fired %v, want ascending FIFO", got)
		}
	}
	if s.queue != nil && len(s.queue) != 0 {
		t.Fatal("queue not drained")
	}
}

func TestEnableOwnersAfterSchedulePanics(t *testing.T) {
	s := New(1)
	s.At(Time(time.Millisecond), func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("EnableOwners after scheduling did not panic")
		}
	}()
	s.EnableOwners()
}

// RunBelow is strict: an event at exactly the horizon stays queued, and
// the clock is left at the last processed event rather than the horizon.
func TestRunBelowStrictHorizon(t *testing.T) {
	s := New(1)
	fired := make(map[int]bool)
	s.At(Time(1*time.Millisecond), func() { fired[1] = true })
	s.At(Time(2*time.Millisecond), func() { fired[2] = true })
	horizon := Time(2 * time.Millisecond)
	s.RunBelow(horizon)
	if !fired[1] || fired[2] {
		t.Fatalf("fired %v, want only the pre-horizon event", fired)
	}
	if s.Now() != Time(1*time.Millisecond) {
		t.Fatalf("clock at %v, want last processed event", s.Now())
	}
	if next, ok := s.NextAt(); !ok || next != horizon {
		t.Fatalf("NextAt = %v,%v, want %v,true", next, ok, horizon)
	}
	s.AdvanceTo(horizon)
	if s.Now() != horizon {
		t.Fatalf("AdvanceTo left clock at %v", s.Now())
	}
	s.AdvanceTo(Time(time.Microsecond)) // backwards: no-op
	if s.Now() != horizon {
		t.Fatal("AdvanceTo moved the clock backwards")
	}
}

func TestTightenHorizonStopsRunBelowEarly(t *testing.T) {
	s := New(1)
	fired := make(map[int]bool)
	s.At(Time(1*time.Millisecond), func() {
		fired[1] = true
		// The event that "sends" caps the round at its own feedback bound;
		// the event scheduled below the original horizon but at/after the
		// tightened one must stay queued for the next round.
		s.TightenHorizon(Time(3 * time.Millisecond))
	})
	s.At(Time(2*time.Millisecond), func() { fired[2] = true })
	s.At(Time(5*time.Millisecond), func() { fired[5] = true })
	s.RunBelow(Time(10 * time.Millisecond))
	if !fired[1] || !fired[2] || fired[5] {
		t.Fatalf("fired %v, want 1 and 2 only", fired)
	}
	// Raising is a no-op: the bound only ever shrinks within a round.
	s.At(Time(6*time.Millisecond), func() {
		s.TightenHorizon(Time(20 * time.Millisecond))
	})
	s.RunBelow(Time(7 * time.Millisecond))
	if fired[5] != true {
		t.Fatal("pre-horizon event did not fire in the next round")
	}
	if next, ok := s.NextAt(); ok {
		t.Fatalf("event at %v survived a raise-attempt round below 7ms", next)
	}
}

func TestAdvanceToRespectsStop(t *testing.T) {
	s := New(1)
	s.Stop()
	s.AdvanceTo(Time(time.Second))
	if s.Now() != 0 {
		t.Fatalf("AdvanceTo moved a stopped clock to %v", s.Now())
	}
}
