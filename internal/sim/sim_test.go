package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyRun(t *testing.T) {
	s := New(1)
	s.Run()
	if s.Now() != 0 {
		t.Fatalf("clock moved with no events: %v", s.Now())
	}
	if s.Processed() != 0 {
		t.Fatalf("processed %d events from empty queue", s.Processed())
	}
}

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.After(30*time.Millisecond, func() { order = append(order, 3) })
	s.After(10*time.Millisecond, func() { order = append(order, 1) })
	s.After(20*time.Millisecond, func() { order = append(order, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != Time(30*time.Millisecond) {
		t.Fatalf("final clock = %v", s.Now())
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Time(5*time.Millisecond), func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events reordered: %v", order)
		}
	}
}

func TestScheduleInPastClampsToNow(t *testing.T) {
	s := New(1)
	var fired Time
	s.After(10*time.Millisecond, func() {
		s.At(0, func() { fired = s.Now() })
	})
	s.Run()
	if fired != Time(10*time.Millisecond) {
		t.Fatalf("past event fired at %v, want clamp to 10ms", fired)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	depth := 0
	var schedule func()
	schedule = func() {
		depth++
		if depth < 100 {
			s.After(time.Millisecond, schedule)
		}
	}
	s.After(time.Millisecond, schedule)
	s.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if s.Now() != Time(100*time.Millisecond) {
		t.Fatalf("clock = %v, want 100ms", s.Now())
	}
}

func TestTimerCancel(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.After(time.Millisecond, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending before run")
	}
	if !tm.Cancel() {
		t.Fatal("first Cancel should report true")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestCancelOneOfMany(t *testing.T) {
	s := New(1)
	var got []int
	var timers []*Timer
	for i := 0; i < 5; i++ {
		i := i
		timers = append(timers, s.After(Duration(i+1)*time.Millisecond, func() { got = append(got, i) }))
	}
	timers[2].Cancel()
	s.Run()
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New(1)
	count := 0
	s.After(time.Millisecond, func() { count++ })
	s.After(time.Hour, func() { count++ })
	s.RunUntil(Time(time.Second))
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if s.Now() != Time(time.Second) {
		t.Fatalf("clock = %v, want 1s", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
}

func TestRunForIsRelative(t *testing.T) {
	s := New(1)
	s.RunFor(time.Second)
	s.RunFor(time.Second)
	if s.Now() != Time(2*time.Second) {
		t.Fatalf("clock = %v, want 2s", s.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.After(Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (Stop ignored)", count)
	}
	if !s.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		s := New(42)
		var draws []int64
		for i := 0; i < 50; i++ {
			s.After(Duration(s.Rand().Int63n(int64(time.Second))), func() {
				draws = append(draws, s.Rand().Int63())
			})
		}
		s.Run()
		return draws
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d", i)
		}
	}
}

func TestNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil callback")
		}
	}()
	New(1).After(time.Second, nil)
}

func TestJitterBounds(t *testing.T) {
	s := New(7)
	if s.Jitter(0) != 0 || s.Jitter(-time.Second) != 0 {
		t.Fatal("non-positive max should yield 0")
	}
	for i := 0; i < 1000; i++ {
		j := s.Jitter(5 * time.Millisecond)
		if j < 0 || j >= 5*time.Millisecond {
			t.Fatalf("jitter %v outside [0, 5ms)", j)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	base := Time(time.Second)
	if base.Add(time.Second) != Time(2*time.Second) {
		t.Fatal("Add broken")
	}
	if base.Add(time.Second).Sub(base) != time.Second {
		t.Fatal("Sub broken")
	}
	if base.Seconds() != 1.0 {
		t.Fatalf("Seconds = %v", base.Seconds())
	}
	if base.String() != "1.000s" {
		t.Fatalf("String = %q", base.String())
	}
}

// Property: for any batch of event offsets, events fire in sorted order and
// the clock never moves backwards.
func TestPropertyMonotonicClock(t *testing.T) {
	prop := func(offsets []uint32) bool {
		s := New(3)
		var fired []Time
		for _, off := range offsets {
			s.After(Duration(off%1e6)*time.Microsecond, func() {
				fired = append(fired, s.Now())
			})
		}
		s.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(offsets)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, func() {})
		s.Step()
	}
}

func TestDoArgOrderingMatchesDo(t *testing.T) {
	s := New(1)
	var got []int
	push := func(v any) { got = append(got, v.(int)) }
	s.DoArg(2*time.Millisecond, push, 3)
	s.Do(time.Millisecond, func() { got = append(got, 1) })
	s.DoAtArg(Time(time.Millisecond), push, 2) // same instant as the Do above, scheduled later
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestHandleFreeEventsRecycle(t *testing.T) {
	s := New(1)
	// Interleave pooled schedules with firings; the free list must hand
	// the same structs back without perturbing order or the timer path.
	fired := 0
	var loop func()
	loop = func() {
		fired++
		if fired < 100 {
			s.DoArg(time.Microsecond, func(any) { loop() }, nil)
		}
	}
	s.Do(0, loop)
	timer := s.After(time.Second, func() { t.Fatal("cancelled timer fired") })
	s.RunFor(time.Millisecond)
	if fired != 100 {
		t.Fatalf("fired %d events, want 100", fired)
	}
	if len(s.freeEvents) == 0 {
		t.Fatal("no events were recycled")
	}
	if !timer.Cancel() {
		t.Fatal("timer was not pending")
	}
	// A Timer-backed event is never pooled: cancelling after heavy
	// recycling must not have corrupted the free list or the queue.
	s.Do(0, func() {})
	s.Run()
}
