// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel keeps a virtual clock and a priority queue of events. Events
// scheduled for the same instant fire in scheduling order, which — together
// with a seeded random source — makes every simulation run exactly
// reproducible. All protocol code in this repository is driven by this clock;
// nothing reads wall time.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of the run.
type Time int64

// Duration re-exports time.Duration for readability at call sites.
type Duration = time.Duration

// String formats the timestamp as seconds with millisecond precision.
func (t Time) String() string {
	return fmt.Sprintf("%.3fs", t.Seconds())
}

// Seconds returns the timestamp as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier time u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// event is a single scheduled callback: either a plain closure (fn) or an
// argument-carrying pair (afn, arg) — the latter lets hot paths schedule a
// static function over a recycled state object instead of allocating a
// closure per event. Exactly one of fn/afn is set.
type event struct {
	at    Time
	owner uint32 // scheduling owner; 0 outside owner mode (see SetOwner)
	seq   uint64 // tie-breaker: FIFO for equal (at, owner)
	fn    func()
	afn   func(any)
	arg   any
	idx   int // heap index, -1 when popped

	// pooled marks handle-free events (Do/DoAt/DoArg/DoAtArg): no Timer
	// ever references them, so Step recycles the struct after it fires.
	// Timer-backed events are never pooled — a stale Timer holding a
	// recycled event could cancel an unrelated later event.
	pooled bool
}

// eventHeap is a hand-rolled 4-ary min-heap ordered by (at, owner, seq).
// The ordering is a strict total order (seq is unique per owner), so any
// correct heap pops events in exactly the same sequence — switching the
// shape or implementation cannot change simulation results. Compared to
// container/heap it avoids the interface dispatch per comparison and, being
// 4-ary, halves the tree depth; the event queue is the hottest structure
// in large simulations.
//
// Outside owner mode every event has owner 0 and a globally increasing
// seq, so the order degenerates to the historical (at, seq) FIFO. In owner
// mode (the sharded engine) seq is drawn from a per-owner counter: ties at
// one instant resolve by owner id first and by each owner's own causal
// order second — a key that does not depend on how events from different
// owners interleaved while being scheduled, which is exactly what makes
// the merged execution order independent of the shard count.
type eventHeap []*event

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.owner != b.owner {
		return a.owner < b.owner
	}
	return a.seq < b.seq
}

func (h eventHeap) siftUp(i int) {
	ev := h[i]
	for i > 0 {
		parent := (i - 1) >> 2
		if !eventLess(ev, h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].idx = i
		i = parent
	}
	h[i] = ev
	ev.idx = i
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	ev := h[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(h[c], h[best]) {
				best = c
			}
		}
		if !eventLess(h[best], ev) {
			break
		}
		h[i] = h[best]
		h[i].idx = i
		i = best
	}
	h[i] = ev
	ev.idx = i
}

func (h *eventHeap) push(ev *event) {
	ev.idx = len(*h)
	*h = append(*h, ev)
	h.siftUp(ev.idx)
}

// pop removes and returns the earliest event.
func (h *eventHeap) pop() *event {
	old := *h
	ev := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[0].idx = 0
	old[n] = nil
	*h = old[:n]
	if n > 0 {
		(*h).siftDown(0)
	}
	ev.idx = -1
	return ev
}

// remove deletes the event at index i (Timer cancellation).
func (h *eventHeap) remove(i int) {
	old := *h
	n := len(old) - 1
	removed := old[i]
	if i != n {
		old[i] = old[n]
		old[i].idx = i
	}
	old[n] = nil
	*h = old[:n]
	if i < n {
		(*h).siftDown(i)
		(*h).siftUp(i)
	}
	removed.idx = -1
}

// Simulator is a single-threaded discrete-event scheduler.
//
// It is intentionally not safe for concurrent use: determinism is the whole
// point, and all model code runs inside event callbacks on one goroutine.
type Simulator struct {
	now       Time
	seq       uint64
	queue     eventHeap
	rng       *rand.Rand
	processed uint64
	stopped   bool

	// horizon is the live bound of an in-progress RunBelow, re-read before
	// every event so TightenHorizon can shrink the round from inside one.
	horizon Time

	// Owner mode (the sharded engine): when enabled, every scheduled
	// event carries the current owner id and a seq from that owner's
	// private counter instead of the global one. Disabled (the default)
	// nothing changes: owner stays 0 and seq is the global counter.
	ownerMode bool
	owner     uint32
	ownerSeq  []uint64

	// freeEvents recycles fired handle-free events. Frame schedules are
	// the hottest allocation in large simulations; recycling the event
	// structs (the closures are the callers' problem — see DoArg) keeps
	// the steady-state event rate allocation-free. Recycling is invisible
	// to simulation results: the heap order is a strict total order over
	// (at, seq) whatever struct identity the events have.
	freeEvents []*event
}

// New returns a simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))} //sbr6:allow simrng the root seeded stream every sim consumer draws from
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Processed reports how many events have fired so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending reports how many events are waiting in the queue.
func (s *Simulator) Pending() int { return len(s.queue) }

// EnableOwners switches the simulator into owner mode: from now on every
// scheduled event is keyed (at, owner, per-owner seq) instead of (at,
// global seq). The sharded engine enables it on each region simulator so
// that same-instant ties resolve by a key independent of how events from
// different nodes interleaved while being scheduled. Must be called before
// any event is scheduled; enabling it mid-run would mix the two key
// disciplines.
func (s *Simulator) EnableOwners() {
	if s.seq != 0 || len(s.queue) != 0 {
		panic("sim: EnableOwners after events were scheduled")
	}
	s.ownerMode = true
}

// SetOwner sets the owner id stamped on subsequently scheduled events and
// returns the previous owner. Owner 0 is reserved for global/harness
// events, which therefore sort before any node's events at the same
// instant; the sharded engine uses node id + 1 for node-owned events. A
// no-op (always returning 0) outside owner mode.
func (s *Simulator) SetOwner(o uint32) uint32 {
	prev := s.owner
	s.owner = o
	return prev
}

// Owner returns the current scheduling owner id.
func (s *Simulator) Owner() uint32 { return s.owner }

// nextKey mints the ordering key for a newly scheduled event.
func (s *Simulator) nextKey() (owner uint32, seq uint64) {
	if !s.ownerMode {
		seq = s.seq
		s.seq++
		return 0, seq
	}
	o := s.owner
	if int(o) >= len(s.ownerSeq) {
		grown := make([]uint64, int(o)+1)
		copy(grown, s.ownerSeq)
		s.ownerSeq = grown
	}
	seq = s.ownerSeq[o]
	s.ownerSeq[o]++
	return o, seq
}

// At schedules fn to run at absolute time t. Scheduling in the past (or at
// the current instant) runs the event at the current time, after all events
// already scheduled for that time.
func (s *Simulator) At(t Time, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if t < s.now {
		t = s.now
	}
	ev := &event{at: t, fn: fn}
	ev.owner, ev.seq = s.nextKey()
	s.queue.push(ev)
	return &Timer{sim: s, ev: ev}
}

// After schedules fn to run d after the current time. Negative durations are
// clamped to zero.
func (s *Simulator) After(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// takeEvent returns a recycled handle-free event, or a fresh one.
func (s *Simulator) takeEvent() *event {
	if l := len(s.freeEvents); l > 0 {
		ev := s.freeEvents[l-1]
		s.freeEvents[l-1] = nil
		s.freeEvents = s.freeEvents[:l-1]
		return ev
	}
	return &event{pooled: true}
}

// DoAt schedules fn at absolute time t without returning a cancellation
// handle. It is the allocation-light variant of At for hot paths — frame
// deliveries schedule hundreds of thousands of uncancellable events per
// simulated second, and the Timer wrapper was pure garbage there. The
// event struct itself is recycled after firing.
func (s *Simulator) DoAt(t Time, fn func()) {
	if fn == nil {
		panic("sim: DoAt called with nil callback")
	}
	if t < s.now {
		t = s.now
	}
	ev := s.takeEvent()
	ev.at, ev.fn = t, fn
	ev.owner, ev.seq = s.nextKey()
	s.queue.push(ev)
}

// Do schedules fn to run d after the current time without returning a
// cancellation handle; negative durations are clamped to zero.
func (s *Simulator) Do(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.DoAt(s.now.Add(d), fn)
}

// DoAtArg schedules fn(arg) at absolute time t without a cancellation
// handle. Passing a static function plus a pointer argument avoids the
// per-event closure allocation of DoAt — the pooled wire path schedules
// its recycled transmit and delivery state this way, making the hot event
// path allocation-free end to end.
func (s *Simulator) DoAtArg(t Time, fn func(any), arg any) {
	if fn == nil {
		panic("sim: DoAtArg called with nil callback")
	}
	if t < s.now {
		t = s.now
	}
	ev := s.takeEvent()
	ev.at, ev.afn, ev.arg = t, fn, arg
	ev.owner, ev.seq = s.nextKey()
	s.queue.push(ev)
}

// DoArg schedules fn(arg) to run d after the current time without a
// cancellation handle; negative durations are clamped to zero.
func (s *Simulator) DoArg(d Duration, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	s.DoAtArg(s.now.Add(d), fn, arg)
}

// Step fires the earliest pending event. It reports false when the queue is
// empty or the simulator has been stopped.
func (s *Simulator) Step() bool {
	if s.stopped || len(s.queue) == 0 {
		return false
	}
	ev := s.queue.pop()
	s.now = ev.at
	s.processed++
	if s.ownerMode {
		// The firing event's owner becomes the scheduling context: events
		// a callback schedules belong to the same causal stream unless it
		// says otherwise (SetOwner). This is what makes ownership an
		// inherited property rather than something every call site threads
		// through by hand.
		s.owner = ev.owner
	}
	fn, afn, arg := ev.fn, ev.afn, ev.arg
	if ev.pooled {
		// Recycle before firing: the callback may itself schedule events
		// and can then reuse this struct immediately.
		ev.fn, ev.afn, ev.arg = nil, nil, nil
		s.freeEvents = append(s.freeEvents, ev)
	}
	if afn != nil {
		afn(arg)
	} else {
		fn()
	}
	return true
}

// Run processes events until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil processes events with timestamps <= deadline and then sets the
// clock to deadline (if it has not already passed it). If Stop fired
// mid-run the clock stays frozen at the last processed event — reporting
// virtual time the run never simulated would misattribute every rate
// metric computed from Now.
func (s *Simulator) RunUntil(deadline Time) {
	for !s.stopped && len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// RunFor advances the simulation by d virtual time.
func (s *Simulator) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// NextAt peeks the timestamp of the earliest pending event. ok is false
// when the queue is empty.
func (s *Simulator) NextAt() (t Time, ok bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}

// RunBelow processes events with timestamps strictly before horizon and
// leaves the clock at the last processed event — unlike RunUntil it never
// advances the clock past real work. The sharded engine drives each region
// with conservative horizons this way; the strict bound keeps an event at
// exactly the horizon (where a cross-region message could still land)
// untouched until the next round. Events may shrink the remaining horizon
// mid-run via TightenHorizon.
func (s *Simulator) RunBelow(horizon Time) {
	s.horizon = horizon
	for !s.stopped && len(s.queue) > 0 && s.queue[0].at < s.horizon {
		s.Step()
	}
	s.horizon = 0
}

// TightenHorizon lowers the bound of an in-progress RunBelow. The sharded
// engine calls it when an event emits a cross-region message: a peer may
// react to a message sent at u and reflect one back as early as u + 2L, a
// feedback path the round-start horizon (computed from peers' then-pending
// events) cannot see. Without the cap a region whose peers look idle would
// free-run to the round limit and receive every reply in its virtual past.
// No-op outside RunBelow or when the bound is already at or below t.
func (s *Simulator) TightenHorizon(t Time) {
	if s.horizon > t {
		s.horizon = t
	}
}

// AdvanceTo moves the clock forward to t without processing anything, a
// no-op if the clock already passed t or the simulator is stopped. The
// sharded engine uses it to align region clocks with the global deadline
// once every region has quiesced.
func (s *Simulator) AdvanceTo(t Time) {
	if !s.stopped && s.now < t {
		s.now = t
	}
}

// Stop halts Run/RunUntil after the current event returns.
func (s *Simulator) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Simulator) Stopped() bool { return s.stopped }

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	sim *Simulator
	ev  *event
}

// Cancel removes the event from the queue if it has not fired yet.
// It reports whether the event was still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.idx < 0 {
		return false
	}
	if t.ev.pooled {
		// The comment on event.pooled promises Timers never reference
		// pooled events; a recycled struct under a live Timer could cancel
		// an unrelated later event, so enforce it instead of trusting it.
		panic("sim: Timer bound to a pooled event")
	}
	t.sim.queue.remove(t.ev.idx)
	t.ev.fn, t.ev.afn, t.ev.arg = nil, nil, nil
	t.ev = nil
	return true
}

// Pending reports whether the event is still queued.
func (t *Timer) Pending() bool { return t != nil && t.ev != nil && t.ev.idx >= 0 }

// Jitter returns a uniformly random duration in [0, max). A non-positive max
// yields zero. Protocol code uses this for broadcast desynchronization.
func (s *Simulator) Jitter(max Duration) Duration {
	if max <= 0 {
		return 0
	}
	return Duration(s.rng.Int63n(int64(max)))
}
