package geom

import "math"

// Grid is a uniform spatial hash over integer ids with associated points.
// It answers circle queries — "which stored points lie within r of p?" — by
// scanning only the cells the circle's bounding box touches, instead of every
// stored point. With a cell size on the order of the query radius, a query
// costs O(occupancy of ~3x3 cells) rather than O(n).
//
// The grid stores a snapshot position per id; callers that index moving
// objects re-bucket lazily (see radio.Medium) and widen the query radius by
// the maximum drift since the last re-bucket, so pruning never loses a true
// neighbour. Coordinates may be negative; cells extend over the whole plane.
//
// The zero value is not usable; call NewGrid.
type Grid struct {
	cell  float64
	cells map[cellKey][]gridEntry
	where map[int]gridSlot
}

type cellKey struct{ ix, iy int32 }

type gridEntry struct {
	id int
	p  Point
}

// gridSlot remembers which bucket an id sits in and at which index, so Set
// and Remove are O(1) via swap-removal.
type gridSlot struct {
	key cellKey
	idx int
	p   Point
}

// NewGrid returns an empty grid with the given cell side length in metres.
// Non-positive cell sizes are clamped to 1.
func NewGrid(cell float64) *Grid {
	if cell <= 0 || math.IsNaN(cell) || math.IsInf(cell, 0) {
		cell = 1
	}
	return &Grid{
		cell:  cell,
		cells: make(map[cellKey][]gridEntry),
		where: make(map[int]gridSlot),
	}
}

// Cell returns the grid's cell side length.
func (g *Grid) Cell() float64 { return g.cell }

// Len returns the number of stored ids.
func (g *Grid) Len() int { return len(g.where) }

// keyFor maps a point to its cell coordinates.
func (g *Grid) keyFor(p Point) cellKey {
	return cellKey{int32(math.Floor(p.X / g.cell)), int32(math.Floor(p.Y / g.cell))}
}

// Set inserts id at p, or moves it there if already stored. Moving within
// the same cell only updates the snapshot position.
func (g *Grid) Set(id int, p Point) {
	key := g.keyFor(p)
	if slot, ok := g.where[id]; ok {
		if slot.key == key {
			g.cells[key][slot.idx].p = p
			slot.p = p
			g.where[id] = slot
			return
		}
		g.removeFromCell(slot)
	}
	bucket := g.cells[key]
	g.where[id] = gridSlot{key: key, idx: len(bucket), p: p}
	g.cells[key] = append(bucket, gridEntry{id: id, p: p})
}

// Remove deletes id from the grid; unknown ids are a no-op.
func (g *Grid) Remove(id int) {
	slot, ok := g.where[id]
	if !ok {
		return
	}
	g.removeFromCell(slot)
	delete(g.where, id)
}

// removeFromCell swap-removes the entry at slot from its bucket, fixing up
// the moved entry's recorded index.
func (g *Grid) removeFromCell(slot gridSlot) {
	bucket := g.cells[slot.key]
	last := len(bucket) - 1
	if slot.idx != last {
		moved := bucket[last]
		bucket[slot.idx] = moved
		ms := g.where[moved.id]
		ms.idx = slot.idx
		g.where[moved.id] = ms
	}
	bucket = bucket[:last]
	if len(bucket) == 0 {
		delete(g.cells, slot.key)
	} else {
		g.cells[slot.key] = bucket
	}
}

// At returns the stored position of id.
func (g *Grid) At(id int) (Point, bool) {
	slot, ok := g.where[id]
	return slot.p, ok
}

// CellOf returns the cell coordinates id is currently bucketed in. The
// coordinates identify the cell [ix*cell, (ix+1)*cell) x [iy*cell,
// (iy+1)*cell); two ids share a cell exactly when their coordinates match.
func (g *Grid) CellOf(id int) (ix, iy int32, ok bool) {
	slot, ok := g.where[id]
	return slot.key.ix, slot.key.iy, ok
}

// CellOccupancy returns how many ids are bucketed in the given cell.
func (g *Grid) CellOccupancy(ix, iy int32) int {
	return len(g.cells[cellKey{ix, iy}])
}

// VisitCells calls fn once per occupied cell with that cell's member ids in
// bucket order (insertion order until a Remove's swap-removal perturbs it).
// Cells are visited in unspecified order — callers needing cross-cell
// determinism must not depend on it. The ids slice is reused between calls;
// fn must not retain or mutate it, nor mutate the grid.
func (g *Grid) VisitCells(fn func(ix, iy int32, ids []int)) {
	var buf []int
	//sbr6:commutative contract: callers must be insensitive to cross-cell order (boot.PerCell ranks inside each cell)
	for key, bucket := range g.cells {
		buf = buf[:0]
		for _, e := range bucket {
			buf = append(buf, e.id)
		}
		fn(key.ix, key.iy, buf)
	}
}

// Query appends to out the ids of every stored point within r of p
// (inclusive of the boundary) and returns the extended slice. Pass a reused
// buffer with out[:0] to avoid allocations. The order of appended ids is
// deterministic for a fixed sequence of Set/Remove calls but otherwise
// unspecified; callers needing a canonical order must sort.
func (g *Grid) Query(p Point, r float64, out []int) []int {
	g.Visit(p, r, func(id int) { out = append(out, id) })
	return out
}

// Visit calls fn once for every stored point within r of p (inclusive of
// the boundary), in the same unspecified-but-deterministic order as Query.
// fn must not mutate the grid.
func (g *Grid) Visit(p Point, r float64, fn func(id int)) {
	if r < 0 {
		return
	}
	r2 := r * r
	lo := g.keyFor(Point{p.X - r, p.Y - r})
	hi := g.keyFor(Point{p.X + r, p.Y + r})
	for ix := lo.ix; ix <= hi.ix; ix++ {
		for iy := lo.iy; iy <= hi.iy; iy++ {
			for _, e := range g.cells[cellKey{ix, iy}] {
				if p.Dist2(e.p) <= r2 {
					fn(e.id)
				}
			}
		}
	}
}
