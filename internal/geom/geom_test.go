package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, 0}, Point{2, 4}, 5},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
		if got := c.p.Dist2(c.q); math.Abs(got-c.want*c.want) > 1e-9 {
			t.Errorf("Dist2(%v, %v) = %v, want %v", c.p, c.q, got, c.want*c.want)
		}
	}
}

func TestVectorOps(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := (Point{3, 4}).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
}

func TestLerpEndpointsAndMidpoint(t *testing.T) {
	p, q := Point{0, 0}, Point{10, 20}
	if p.Lerp(q, 0) != p {
		t.Error("Lerp(0) != p")
	}
	if p.Lerp(q, 1) != q {
		t.Error("Lerp(1) != q")
	}
	if mid := p.Lerp(q, 0.5); mid != (Point{5, 10}) {
		t.Errorf("Lerp(0.5) = %v", mid)
	}
}

func TestRectContainsAndClamp(t *testing.T) {
	r := Rect{100, 50}
	inside := []Point{{0, 0}, {100, 50}, {50, 25}}
	for _, p := range inside {
		if !r.Contains(p) {
			t.Errorf("Contains(%v) = false", p)
		}
	}
	outside := []Point{{-1, 0}, {0, -1}, {101, 0}, {0, 51}}
	for _, p := range outside {
		if r.Contains(p) {
			t.Errorf("Contains(%v) = true", p)
		}
		if c := r.Clamp(p); !r.Contains(c) {
			t.Errorf("Clamp(%v) = %v not inside", p, c)
		}
	}
	if r.Area() != 5000 {
		t.Errorf("Area = %v", r.Area())
	}
}

func TestRandomPointInsideRect(t *testing.T) {
	r := Rect{300, 700}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		if p := r.RandomPoint(rng); !r.Contains(p) {
			t.Fatalf("RandomPoint produced %v outside %v", p, r)
		}
	}
}

// Property: distance is symmetric and satisfies the triangle inequality.
func TestPropertyMetricAxioms(t *testing.T) {
	clamp := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 1e6)
	}
	prop := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		c := Point{clamp(cx), clamp(cy)}
		if math.Abs(a.Dist(b)-b.Dist(a)) > 1e-9 {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Clamp is idempotent.
func TestPropertyClampIdempotent(t *testing.T) {
	r := Rect{1000, 1000}
	prop := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		once := r.Clamp(Point{x, y})
		return r.Clamp(once) == once
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
