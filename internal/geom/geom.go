// Package geom provides the minimal 2-D geometry used by the mobility and
// radio models: points, distances and rectangular regions.
package geom

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a position in metres.
type Point struct {
	X, Y float64
}

// String formats the point with centimetre precision.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// Dist2 returns the squared Euclidean distance, avoiding the square root for
// range comparisons on the hot path.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Lerp linearly interpolates from p to q; frac 0 yields p, 1 yields q.
func (p Point) Lerp(q Point, frac float64) Point {
	return Point{p.X + (q.X-p.X)*frac, p.Y + (q.Y-p.Y)*frac}
}

// Rect is an axis-aligned rectangle [0,W] x [0,H] anchored at the origin.
// Simulation areas are always origin-anchored, so only extents are stored.
type Rect struct {
	W, H float64
}

// Contains reports whether p lies inside the rectangle (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= 0 && p.X <= r.W && p.Y >= 0 && p.Y <= r.H
}

// Clamp returns p moved to the nearest point inside the rectangle.
func (r Rect) Clamp(p Point) Point {
	return Point{math.Min(math.Max(p.X, 0), r.W), math.Min(math.Max(p.Y, 0), r.H)}
}

// RandomPoint returns a uniformly random point inside the rectangle.
func (r Rect) RandomPoint(rng *rand.Rand) Point {
	return Point{rng.Float64() * r.W, rng.Float64() * r.H}
}

// Area returns the rectangle's area in square metres.
func (r Rect) Area() float64 { return r.W * r.H }
