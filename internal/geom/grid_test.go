package geom

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

// bruteQuery is the reference implementation: a linear scan over every
// stored point with the same inclusive boundary rule as Grid.Query.
func bruteQuery(pts map[int]Point, c Point, r float64) []int {
	var out []int
	r2 := r * r
	for id, p := range pts {
		if c.Dist2(p) <= r2 {
			out = append(out, id)
		}
	}
	slices.Sort(out)
	return out
}

func sortedQuery(g *Grid, c Point, r float64) []int {
	out := g.Query(c, r, nil)
	slices.Sort(out)
	return out
}

func TestGridBasicOps(t *testing.T) {
	g := NewGrid(100)
	if g.Cell() != 100 || g.Len() != 0 {
		t.Fatalf("fresh grid: cell=%v len=%d", g.Cell(), g.Len())
	}
	g.Set(1, Point{X: 10, Y: 10})
	g.Set(2, Point{X: 20, Y: 10})
	g.Set(1, Point{X: 15, Y: 10}) // move within the same cell
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
	if p, ok := g.At(1); !ok || p != (Point{X: 15, Y: 10}) {
		t.Fatalf("At(1) = %v, %v", p, ok)
	}
	g.Set(2, Point{X: 950, Y: -320}) // move across cells, negative coords
	if got := sortedQuery(g, Point{X: 950, Y: -320}, 1); !slices.Equal(got, []int{2}) {
		t.Fatalf("query after move = %v", got)
	}
	g.Remove(2)
	g.Remove(99) // unknown id is a no-op
	if g.Len() != 1 {
		t.Fatalf("Len after remove = %d", g.Len())
	}
	if _, ok := g.At(2); ok {
		t.Fatal("removed id still stored")
	}
	if got := g.Query(Point{}, -1, nil); got != nil {
		t.Fatalf("negative radius returned %v", got)
	}
	if NewGrid(0).Cell() != 1 {
		t.Fatal("non-positive cell size not clamped")
	}
}

// Points exactly on the range boundary must be included, wherever the
// boundary falls relative to cell edges.
func TestGridBoundaryInclusive(t *testing.T) {
	for _, cell := range []float64{50, 100, 250, 1000} {
		g := NewGrid(cell)
		c := Point{X: 123, Y: -77}
		r := 250.0
		g.Set(1, Point{X: c.X + r, Y: c.Y}) // exactly on the boundary
		g.Set(2, Point{X: c.X - r, Y: c.Y})
		g.Set(3, Point{X: c.X, Y: c.Y + r})
		g.Set(4, Point{X: c.X, Y: c.Y - r})
		g.Set(5, c) // the centre itself
		g.Set(6, Point{X: c.X + r + 1e-6, Y: c.Y})
		got := sortedQuery(g, c, r)
		if !slices.Equal(got, []int{1, 2, 3, 4, 5}) {
			t.Fatalf("cell=%v: boundary query = %v", cell, got)
		}
	}
}

// Property: after an arbitrary interleaving of inserts, moves and removals,
// a circle query through the grid equals the brute-force distance scan —
// including points exactly on the boundary, which the generator plants
// deliberately.
func TestPropertyGridEqualsBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cell := []float64{25, 100, 250, 400}[rng.Intn(4)]
		g := NewGrid(cell)
		mirror := map[int]Point{}
		randPoint := func() Point {
			// Span several cells on both sides of the origin.
			return Point{X: rng.Float64()*4000 - 2000, Y: rng.Float64()*4000 - 2000}
		}
		nOps := 50 + rng.Intn(200)
		for i := 0; i < nOps; i++ {
			id := rng.Intn(60)
			switch rng.Intn(4) {
			case 0, 1: // insert or move
				p := randPoint()
				g.Set(id, p)
				mirror[id] = p
			case 2: // remove (possibly unknown)
				g.Remove(id)
				delete(mirror, id)
			case 3: // node toggled down and up elsewhere: move far away
				p := randPoint().Scale(2)
				g.Set(id, p)
				mirror[id] = p
			}
		}
		if g.Len() != len(mirror) {
			return false
		}
		for q := 0; q < 20; q++ {
			c := randPoint()
			r := rng.Float64() * 600
			if q%5 == 0 && len(mirror) > 0 {
				// Plant a point exactly at distance r from the centre.
				ids := make([]int, 0, len(mirror))
				for id := range mirror {
					ids = append(ids, id)
				}
				slices.Sort(ids)
				id := ids[rng.Intn(len(ids))]
				p := Point{X: c.X + r, Y: c.Y}
				g.Set(id, p)
				mirror[id] = p
			}
			if !slices.Equal(sortedQuery(g, c, r), bruteQuery(mirror, c, r)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Query must reuse the caller's buffer when it has capacity.
func TestGridQueryReusesBuffer(t *testing.T) {
	g := NewGrid(100)
	for i := 0; i < 32; i++ {
		g.Set(i, Point{X: float64(i), Y: 0})
	}
	buf := make([]int, 0, 64)
	out := g.Query(Point{}, 1000, buf)
	if len(out) != 32 || &out[0] != &buf[:1][0] {
		t.Fatalf("query did not reuse the buffer (len=%d)", len(out))
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf = g.Query(Point{}, 1000, buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("Query allocated %v times per run with a sized buffer", allocs)
	}
}

// Cell introspection: CellOf, CellOccupancy and VisitCells must agree with
// each other and with the bucketing Query uses.
func TestGridCellIntrospection(t *testing.T) {
	g := NewGrid(100)
	pts := map[int]Point{
		1: {X: 10, Y: 10},   // cell (0,0)
		2: {X: 90, Y: 40},   // cell (0,0)
		3: {X: 150, Y: 10},  // cell (1,0)
		4: {X: -10, Y: -10}, // cell (-1,-1): negative coordinates stay exact
	}
	for id, p := range pts {
		g.Set(id, p)
	}

	if ix, iy, ok := g.CellOf(1); !ok || ix != 0 || iy != 0 {
		t.Fatalf("CellOf(1) = (%d,%d,%v), want (0,0,true)", ix, iy, ok)
	}
	if ix, iy, ok := g.CellOf(4); !ok || ix != -1 || iy != -1 {
		t.Fatalf("CellOf(4) = (%d,%d,%v), want (-1,-1,true)", ix, iy, ok)
	}
	if _, _, ok := g.CellOf(99); ok {
		t.Fatal("CellOf reported an unknown id as stored")
	}
	if got := g.CellOccupancy(0, 0); got != 2 {
		t.Fatalf("CellOccupancy(0,0) = %d, want 2", got)
	}
	if got := g.CellOccupancy(7, 7); got != 0 {
		t.Fatalf("CellOccupancy of empty cell = %d, want 0", got)
	}

	seen := map[[2]int32][]int{}
	total := 0
	g.VisitCells(func(ix, iy int32, ids []int) {
		cp := append([]int(nil), ids...) // the callback slice is reused
		seen[[2]int32{ix, iy}] = cp
		total += len(cp)
	})
	if total != g.Len() {
		t.Fatalf("VisitCells covered %d ids, grid holds %d", total, g.Len())
	}
	if got := seen[[2]int32{0, 0}]; len(got) != 2 {
		t.Fatalf("VisitCells cell (0,0) members = %v, want two", got)
	}
	for cell, ids := range seen {
		if g.CellOccupancy(cell[0], cell[1]) != len(ids) {
			t.Fatalf("cell %v: occupancy %d disagrees with members %v",
				cell, g.CellOccupancy(cell[0], cell[1]), ids)
		}
		for _, id := range ids {
			ix, iy, ok := g.CellOf(id)
			if !ok || ix != cell[0] || iy != cell[1] {
				t.Fatalf("member %d of cell %v reports cell (%d,%d)", id, cell, ix, iy)
			}
		}
	}

	// Removal keeps the introspection consistent.
	g.Remove(1)
	if got := g.CellOccupancy(0, 0); got != 1 {
		t.Fatalf("after Remove: occupancy %d, want 1", got)
	}
	if _, _, ok := g.CellOf(1); ok {
		t.Fatal("removed id still reports a cell")
	}
}
