package scenario

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"sbr6/internal/attack"
	"sbr6/internal/boot"
	"sbr6/internal/core"
	"sbr6/internal/geom"
	"sbr6/internal/ipv6"
	"sbr6/internal/radio"
)

// fastCfg shrinks every protocol timer so tests run quickly.
func fastCfg(secure bool, n int) Config {
	cfg := DefaultConfig()
	cfg.N = n
	cfg.Placement = PlaceGrid
	cfg.Area = geom.Rect{W: 200 * float64(gridSide(n)), H: 200 * float64(gridSide(n))}
	if secure {
		cfg.Protocol = core.DefaultConfig()
	} else {
		cfg.Protocol = core.BaselineConfig()
	}
	cfg.Protocol.DAD.Timeout = 300 * time.Millisecond
	cfg.Protocol.DiscoveryTimeout = 500 * time.Millisecond
	cfg.Protocol.AckTimeout = 400 * time.Millisecond
	cfg.Protocol.ResolveTimeout = 2 * time.Second
	cfg.DNS.CommitDelay = 300 * time.Millisecond
	cfg.Warmup = time.Second
	cfg.Duration = 10 * time.Second
	cfg.Cooldown = 3 * time.Second
	cfg.Flows = nil
	return cfg
}

func gridSide(n int) int {
	s := 1
	for s*s < n {
		s++
	}
	return s
}

func TestBuildValidation(t *testing.T) {
	cfg := fastCfg(true, 1)
	if _, err := Build(cfg); err == nil {
		t.Fatal("N=1 accepted")
	}
	cfg = fastCfg(true, 4)
	cfg.Preload = map[string]int{"x": 99}
	if _, err := Build(cfg); err == nil {
		t.Fatal("out-of-range preload accepted")
	}
	cfg = fastCfg(true, 4)
	cfg.Boot = boot.Kind(42)
	if _, err := Build(cfg); err == nil {
		t.Fatal("unknown boot policy accepted")
	}
}

// TestBootstrapPerCellConfiguresAll mirrors TestBootstrapConfiguresAll
// under the concurrent admission policy: same fully-addressed, unique
// outcome, a fraction of the virtual time.
func TestBootstrapPerCellConfiguresAll(t *testing.T) {
	cfg := fastCfg(true, 9)
	cfg.Boot = boot.PerCell
	sc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Bootstrap(); got != 9 {
		t.Fatalf("configured %d of 9", got)
	}
	offs := sc.BootOffsets()
	if offs[0] != 0 {
		t.Fatalf("DNS anchor scheduled at %v, want 0", offs[0])
	}
	serial, err := Build(fastCfg(true, 9))
	if err != nil {
		t.Fatal(err)
	}
	serial.Bootstrap()
	if sc.S.Now() >= serial.S.Now() {
		t.Fatalf("per-cell formation (%v) not shorter than serial (%v)", sc.S.Now(), serial.S.Now())
	}
}

func TestBootstrapConfiguresAll(t *testing.T) {
	cfg := fastCfg(true, 9)
	sc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Bootstrap(); got != 9 {
		t.Fatalf("configured %d of 9", got)
	}
	seen := make(map[ipv6.Addr]bool)
	for _, n := range sc.Nodes {
		if seen[n.Addr()] {
			t.Fatal("duplicate address after bootstrap")
		}
		seen[n.Addr()] = true
	}
}

func TestCleanRunDeliversEverything(t *testing.T) {
	cfg := fastCfg(true, 9)
	cfg.Flows = []Flow{
		{From: 1, To: 8, Interval: 500 * time.Millisecond, Size: 64},
		{From: 3, To: 5, Interval: 500 * time.Millisecond, Size: 64},
	}
	sc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sc.Run()
	if res.Configured != 9 {
		t.Fatalf("configured = %d", res.Configured)
	}
	if res.PDR < 0.95 {
		t.Fatalf("clean-network PDR = %v (%d/%d)", res.PDR, res.Delivered, res.Sent)
	}
	if res.LatencyMean <= 0 || res.LatencyMean > 1 {
		t.Fatalf("latency mean = %v", res.LatencyMean)
	}
	if res.ControlBytes <= 0 || res.DataBytes <= 0 {
		t.Fatalf("byte accounting empty: %+v", res)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() *Result {
		cfg := fastCfg(true, 9)
		cfg.Flows = []Flow{{From: 1, To: 7, Interval: 400 * time.Millisecond, Size: 32}}
		sc, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sc.Run()
	}
	a, b := run(), run()
	if a.PDR != b.PDR || a.ControlBytes != b.ControlBytes || a.Delivered != b.Delivered ||
		a.CryptoSign != b.CryptoSign || a.LatencyMean != b.LatencyMean {
		t.Fatalf("runs diverged:\n  a=%v\n  b=%v", a, b)
	}
}

func TestSecureOverheadExceedsBaseline(t *testing.T) {
	run := func(secure bool) *Result {
		cfg := fastCfg(secure, 9)
		cfg.Flows = []Flow{{From: 1, To: 8, Interval: 500 * time.Millisecond, Size: 64}}
		sc, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sc.Run()
	}
	sec, base := run(true), run(false)
	if sec.PDR < 0.95 || base.PDR < 0.95 {
		t.Fatalf("clean PDRs too low: secure=%v baseline=%v", sec.PDR, base.PDR)
	}
	if sec.ControlBytes <= base.ControlBytes {
		t.Fatalf("secure control bytes %v should exceed baseline %v", sec.ControlBytes, base.ControlBytes)
	}
	if base.CryptoSign != 0 || base.CryptoVerify != 0 {
		t.Fatalf("baseline should do no crypto: %v/%v", base.CryptoSign, base.CryptoVerify)
	}
	if sec.CryptoSign == 0 || sec.CryptoVerify == 0 {
		t.Fatal("secure run did no crypto")
	}
}

// blackHoleRun puts a forging black hole in the grid centre and measures a
// corner-to-corner flow.
func blackHoleRun(t *testing.T, secure bool) *Result {
	t.Helper()
	cfg := fastCfg(secure, 9)
	bh := &attack.BlackHole{ForgeCacheReplies: true}
	cfg.Behaviors = map[int]core.Behavior{4: bh} // grid centre
	cfg.Flows = []Flow{{From: 1, To: 8, Interval: 500 * time.Millisecond, Size: 64}}
	cfg.Duration = 15 * time.Second
	sc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sc.Run()
}

func TestBlackHoleCollapsesBaseline(t *testing.T) {
	res := blackHoleRun(t, false)
	if res.PDR > 0.2 {
		t.Fatalf("baseline PDR with forging black hole = %v, want near zero", res.PDR)
	}
}

func TestSecureProtocolSurvivesBlackHole(t *testing.T) {
	res := blackHoleRun(t, true)
	if res.PDR < 0.6 {
		t.Fatalf("secure PDR with black hole = %v (%d/%d), want most packets through",
			res.PDR, res.Delivered, res.Sent)
	}
	if res.Metrics.Get("crep.rejected") == 0 {
		t.Fatal("forged CREPs were never rejected")
	}
}

func TestFakeDNSPoisonsOnlyBaseline(t *testing.T) {
	resolveVia := func(secure bool) (ipv6.Addr, bool, *Scenario) {
		cfg := fastCfg(secure, 5)
		cfg.Placement = PlaceLine // dns - fake - client chain ensures relay
		cfg.Names = map[int]string{3: "server"}
		fake := &attack.FakeDNS{}
		cfg.Behaviors = map[int]core.Behavior{1: fake}
		sc, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sc.Bootstrap()
		sc.S.RunFor(time.Second)
		var got ipv6.Addr
		var found bool
		sc.Nodes[2].Resolve("server", func(a ipv6.Addr, ok bool) { got, found = a, ok })
		sc.S.RunFor(8 * time.Second)
		return got, found, sc
	}

	// Baseline: the fake relay answers first and is believed.
	got, found, sc := resolveVia(false)
	fakeAddr := sc.Nodes[1].Addr()
	if !found || got != fakeAddr {
		t.Fatalf("baseline client not poisoned: got %v found=%v want %v", got, found, fakeAddr)
	}
	// Secure: the forged answer is rejected; the client is never poisoned
	// (the lookup may fail outright since the query was swallowed).
	got, found, sc = resolveVia(true)
	if found && got == sc.Nodes[1].Addr() {
		t.Fatal("secure client believed the fake DNS")
	}
	if sc.Nodes[2].Metrics().Get("dns.answer_rejected") == 0 {
		t.Fatal("forged answer never rejected")
	}
}

func TestPreloadedNameResolves(t *testing.T) {
	cfg := fastCfg(true, 5)
	cfg.Placement = PlaceLine
	cfg.Preload = map[string]int{"hq.manet": 4}
	sc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc.Bootstrap()
	var got ipv6.Addr
	var found bool
	sc.Nodes[2].Resolve("hq.manet", func(a ipv6.Addr, ok bool) { got, found = a, ok })
	sc.S.RunFor(6 * time.Second)
	if !found || got != sc.Nodes[4].Addr() {
		t.Fatalf("preloaded resolve = %v, %v; want %v", got, found, sc.Nodes[4].Addr())
	}
}

func TestRERRSpammerIsFlagged(t *testing.T) {
	cfg := fastCfg(true, 5)
	cfg.Placement = PlaceLine
	sp := &attack.RERRSpammer{}
	cfg.Behaviors = map[int]core.Behavior{2: sp}
	cfg.Protocol.RERRThreshold = 3
	cfg.Flows = []Flow{{From: 1, To: 4, Interval: 400 * time.Millisecond, Size: 32}}
	cfg.Duration = 20 * time.Second
	sc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sc.Run()
	if sp.Sent == 0 {
		t.Fatal("spammer never spammed")
	}
	if res.Metrics.Get("rerr.spammer_flagged") == 0 {
		t.Fatal("spammer never flagged")
	}
	spammer := sc.Nodes[2].Addr()
	if sc.Nodes[1].Credits().Get(spammer) > -50 {
		t.Fatalf("spammer credit = %v, want deeply negative", sc.Nodes[1].Credits().Get(spammer))
	}
}

func TestReplayerGainsNothing(t *testing.T) {
	cfg := fastCfg(true, 5)
	cfg.Placement = PlaceLine
	rp := &attack.Replayer{Delay: 2 * time.Second}
	cfg.Behaviors = map[int]core.Behavior{2: rp}
	cfg.Flows = []Flow{{From: 1, To: 4, Interval: 500 * time.Millisecond, Size: 32}}
	sc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sc.Run()
	if rp.Replayed == 0 {
		t.Fatal("replayer never replayed")
	}
	// Replays must not break delivery, and every replayed route reply must
	// land as unsolicited/rejected rather than accepted.
	if res.PDR < 0.9 {
		t.Fatalf("PDR with replayer = %v", res.PDR)
	}
}

func TestWaypointMobilityRuns(t *testing.T) {
	cfg := fastCfg(true, 9)
	cfg.Mobility = MobilitySpec{Waypoint: true, MinSpeed: 1, MaxSpeed: 5, Pause: 2 * time.Second}
	cfg.Flows = []Flow{{From: 1, To: 8, Interval: 500 * time.Millisecond, Size: 64}}
	sc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sc.Run()
	if res.Configured < 8 {
		t.Fatalf("configured = %d", res.Configured)
	}
	if res.Sent == 0 {
		t.Fatal("no traffic offered")
	}
	// Mobility may cost some packets; just require the network functioned.
	if res.Delivered == 0 {
		t.Fatal("nothing delivered under mobility")
	}
}

func TestIdentityChurnerChurns(t *testing.T) {
	cfg := fastCfg(true, 5)
	cfg.Placement = PlaceLine
	ch := &attack.IdentityChurner{Every: 3 * time.Second}
	cfg.Behaviors = map[int]core.Behavior{2: ch}
	cfg.Flows = []Flow{{From: 1, To: 4, Interval: 400 * time.Millisecond, Size: 32}}
	cfg.Duration = 15 * time.Second
	sc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc.Run()
	if ch.Churns == 0 {
		t.Fatal("churner never changed identity")
	}
}

func TestLargeNetworkSmoke(t *testing.T) {
	// 49 nodes, grid, four cross flows: bootstrap completes, delivery is
	// near-perfect, and the run stays deterministic at scale.
	cfg := fastCfg(true, 49)
	cfg.Flows = []Flow{
		{From: 1, To: 48, Interval: 500 * time.Millisecond, Size: 64},
		{From: 6, To: 42, Interval: 500 * time.Millisecond, Size: 64},
		{From: 21, To: 27, Interval: 500 * time.Millisecond, Size: 64},
		{From: 45, To: 3, Interval: 500 * time.Millisecond, Size: 64},
	}
	sc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sc.Run()
	if res.Configured != 49 {
		t.Fatalf("configured %d/49", res.Configured)
	}
	if res.PDR < 0.95 {
		t.Fatalf("large-network PDR = %v (%d/%d)", res.PDR, res.Delivered, res.Sent)
	}
}

func TestConnectivityProbe(t *testing.T) {
	cfg := fastCfg(true, 9)
	sc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Connected() {
		t.Fatalf("grid should be connected: %v", sc.Components())
	}
	// A line with a gap: spread two nodes far apart.
	cfg2 := fastCfg(true, 2)
	cfg2.Placement = PlaceLine
	cfg2.Spacing = 10000
	sc2, err := Build(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if sc2.Connected() {
		t.Fatal("10 km apart should not be connected")
	}
	if len(sc2.Components()) != 2 {
		t.Fatalf("components = %v", sc2.Components())
	}
}

func TestFlowStartOffset(t *testing.T) {
	cfg := fastCfg(true, 4)
	cfg.Placement = PlaceLine
	cfg.Duration = 6 * time.Second
	cfg.Flows = []Flow{{From: 1, To: 3, Interval: time.Second, Size: 16, Start: 4 * time.Second}}
	sc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sc.Run()
	// Only (Duration-Start)/Interval = 2 packets fit the window.
	if res.Sent != 2 {
		t.Fatalf("sent = %d, want 2", res.Sent)
	}
	if res.Delivered != 2 {
		t.Fatalf("delivered = %d", res.Delivered)
	}
}

func TestResultString(t *testing.T) {
	r := &Result{PDR: 0.5, Delivered: 1, Sent: 2}
	if r.String() == "" {
		t.Fatal("empty summary")
	}
}

// Validation of the audit, partition and cell-fraction knobs.
func TestValidateAuditPartitionCellFraction(t *testing.T) {
	base := func() Config {
		cfg := DefaultConfig()
		cfg.Flows = nil
		return cfg
	}
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"negative audit period", func(c *Config) { c.Protocol.Audit.Period = -time.Second }, "audit period"},
		{"cell fraction too large", func(c *Config) { c.BootCellFraction = 0.8 }, "cell fraction"},
		{"cell fraction negative", func(c *Config) { c.BootCellFraction = -0.1 }, "cell fraction"},
		{"partition swallows anchor", func(c *Config) { c.Partition.Nodes = c.N }, "anchors the main cluster"},
		{"partition negative gap", func(c *Config) { c.Partition = PartitionSpec{Nodes: 2, Gap: -1} }, "gap"},
		{"partition NaN speed", func(c *Config) { c.Partition = PartitionSpec{Nodes: 2, Speed: math.NaN()} }, "speed"},
		{"partition negative join", func(c *Config) { c.Partition = PartitionSpec{Nodes: 2, JoinAt: -time.Second} }, "join"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mutate(&cfg)
			_, err := Build(cfg)
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if !errors.Is(err, ErrConfig) {
				t.Fatalf("error does not wrap ErrConfig: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// The cell-fraction knob genuinely changes per-cell bucketing: a widened
// fraction merges neighbouring buckets, so some offsets must move.
func TestBootCellFractionChangesSchedule(t *testing.T) {
	mk := func(frac float64) []time.Duration {
		cfg := DefaultConfig()
		cfg.N = 60
		cfg.Boot = boot.PerCell
		cfg.BootCellFraction = frac
		cfg.Flows = nil
		sc, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sc.BootOffsets()
	}
	def, wide := mk(0), mk(0.7)
	if reflect.DeepEqual(def, wide) {
		t.Fatal("widening the admission buckets left every offset unchanged")
	}
	if !reflect.DeepEqual(mk(0), mk(boot.DefaultCellFraction)) {
		t.Fatal("zero fraction does not match the explicit default")
	}
}

// A staged partition is disjoint from the main cluster at formation start
// and its nodes end on their main-area placements after the glide.
func TestPartitionStagingAndMerge(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 30
	cfg.Flows = nil
	cfg.Protocol.DAD.Timeout = 300 * time.Millisecond
	cfg.BootStagger = 300 * time.Millisecond
	cfg.Partition = PartitionSpec{Nodes: 10, JoinAt: time.Second, Speed: 200}
	sc, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Components()) < 2 {
		t.Fatal("staged partition is not disjoint at formation start")
	}
	// No partition node within radio reach of any main node.
	for i := cfg.N - 10; i < cfg.N; i++ {
		pi := sc.Medium.PositionOf(radio.NodeID(i))
		for j := 0; j < cfg.N-10; j++ {
			if pi.Dist(sc.Medium.PositionOf(radio.NodeID(j))) <= cfg.Radio.Range {
				t.Fatalf("staged node %d within range of main node %d", i, j)
			}
		}
	}
	before := len(sc.Components())
	sc.Bootstrap()
	sc.S.RunFor(sc.MergeComplete() - time.Duration(sc.S.Now()) + time.Second)
	// Every staged node has arrived inside the main area (sparse random
	// placements need not be fully connected, so the assertion is on the
	// glide itself, not the unit-disk graph).
	for i := cfg.N - 10; i < cfg.N; i++ {
		p := sc.Medium.PositionOf(radio.NodeID(i))
		if p.X > cfg.Area.W || p.Y > cfg.Area.H {
			t.Fatalf("staged node %d never arrived: still at (%g, %g)", i, p.X, p.Y)
		}
	}
	if after := len(sc.Components()); after >= before {
		t.Fatalf("merge did not reduce the component count (%d -> %d)", before, after)
	}
}
