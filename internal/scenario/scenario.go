// Package scenario builds and runs complete MANET simulations from a
// declarative configuration: node count and placement, mobility, radio
// parameters, protocol variant, adversaries and traffic workload. It is the
// shared substrate of the benchmark harness, the example programs and the
// integration tests.
//
// Node 0 is always the DNS server, the network's single security anchor.
package scenario

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"sbr6/internal/audit"
	"sbr6/internal/bindtable"
	"sbr6/internal/boot"
	"sbr6/internal/core"
	"sbr6/internal/dnssrv"
	"sbr6/internal/geom"
	"sbr6/internal/identity"
	"sbr6/internal/ipv6"
	"sbr6/internal/mobility"
	"sbr6/internal/radio"
	"sbr6/internal/shard"
	"sbr6/internal/sim"
	"sbr6/internal/trace"
	"sbr6/internal/wire"
)

// Placement selects how nodes are laid out.
type Placement int

// Placement kinds.
const (
	PlaceUniform Placement = iota // uniform random in the area
	PlaceGrid                     // centred grid cells
	PlaceLine                     // horizontal chain (scripted topologies)
)

// MobilitySpec selects the mobility model. Zero value = static. Setting
// both Waypoint and Walk mixes the models: even nodes move by random
// waypoint, odd nodes by bounded random walk — the churn shape the
// cross-medium equivalence suite uses to drive cell-boundary crossings.
type MobilitySpec struct {
	Waypoint bool
	Walk     bool
	MinSpeed float64 // m/s
	MaxSpeed float64
	Pause    time.Duration // waypoint pause
	Epoch    time.Duration // walk leg length (default 10 s)
}

// Flow is a constant-bit-rate traffic source running through the
// measurement window.
type Flow struct {
	From, To int
	Interval time.Duration
	Size     int           // payload bytes
	Start    time.Duration // offset into the measurement window
}

// PartitionSpec stages the last Nodes nodes in a disjoint area beyond
// radio reach of the main deployment, where they bootstrap as an
// independently formed cluster, and then glides them onto their main-area
// positions once the network stands — the partition-merge shape in which
// two nodes can hold the same address with neither ever having been inside
// the other's DAD flood. Node 0 (the DNS anchor) always stays in the main
// cluster. The staging copy is density-preserving: partition nodes keep
// their relative layout, compacted so the staged cluster's local structure
// matches what it will have after the merge.
type PartitionSpec struct {
	// Nodes is how many trailing nodes form the partition; 0 disables.
	Nodes int
	// Gap is the distance in metres between the main area's right edge and
	// the staging area; 0 selects four radio ranges — far beyond any flood.
	Gap float64
	// JoinAt is when the partition starts moving, measured from the end of
	// the bootstrap phase.
	JoinAt time.Duration
	// Speed is the glide speed in m/s; 0 selects 25 m/s.
	Speed float64
}

// Config describes a full experiment.
type Config struct {
	Seed int64
	N    int // node count including the DNS server

	Area      geom.Rect
	Placement Placement
	Spacing   float64 // PlaceLine spacing (default 200 m)
	Mobility  MobilitySpec

	Radio    radio.Config
	Protocol core.Config
	DNS      dnssrv.Config

	// Names maps node index -> domain name registered during DAD.
	Names map[int]string
	// Preload maps domain name -> node index for permanent pre-provisioned
	// DNS bindings (established "before network formation").
	Preload map[string]int
	// Behaviors maps node index -> adversarial behaviour.
	Behaviors map[int]core.Behavior

	// Boot selects the bootstrap admission policy: boot.Serial (the zero
	// value, the historical global stagger) or boot.PerCell (spatially
	// disjoint cells bootstrap concurrently; same-cell claimants stay at
	// least one objection window apart).
	Boot boot.Kind
	// BootCellFraction overrides the per-cell admission bucket fraction
	// (boot.DefaultCellFraction when 0). Must stay within
	// (0, boot.MaxCellFraction] so same-bucket claimants keep guaranteed
	// direct radio reach.
	BootCellFraction float64
	// Partition, when Nodes > 0, bootstraps a disjoint cluster that merges
	// into the main area mid-run.
	Partition PartitionSpec
	// BootStagger separates DAD starts the policy must not overlap —
	// consecutive nodes under Serial, same-cell claimants under PerCell.
	// Defaults to the DAD timeout plus a margin so earlier nodes can relay
	// for later ones.
	BootStagger time.Duration
	// Warmup runs after bootstrap before measurement starts.
	Warmup time.Duration
	// Duration is the measurement window.
	Duration time.Duration
	// Cooldown lets in-flight packets land after the last send.
	Cooldown time.Duration

	Flows []Flow

	// WindowSize, when positive, buckets sent/delivered counts into
	// consecutive windows of the measurement phase so experiments can plot
	// convergence over time (e.g. credits learning around a black hole).
	WindowSize time.Duration

	// Shards, when positive, runs the scenario on the region-sharded
	// engine (internal/shard) with that many regions. Shards=1 is the
	// engine's serial baseline: identical event ordering rules to any
	// higher count, so its Results are byte-comparable across counts.
	// Zero keeps the historical single-loop path.
	Shards int
}

// DefaultConfig is a 25-node static uniform network under the secure
// protocol with one CBR flow.
func DefaultConfig() Config {
	return Config{
		Seed:      1,
		N:         25,
		Area:      geom.Rect{W: 1000, H: 1000},
		Placement: PlaceUniform,
		Radio:     radio.DefaultConfig(),
		Protocol:  core.DefaultConfig(),
		DNS:       dnssrv.DefaultConfig(),
		Warmup:    2 * time.Second,
		Duration:  30 * time.Second,
		Cooldown:  5 * time.Second,
		Flows:     []Flow{{From: 1, To: 2, Interval: 500 * time.Millisecond, Size: 64}},
	}
}

// ErrConfig is wrapped by every configuration validation error Build
// returns, so callers can distinguish bad input from build failures.
var ErrConfig = errors.New("invalid configuration")

// Validate checks the parts of a Config that would otherwise surface as
// runtime panics or silent misbehavior. Build calls it; the public facade
// calls it eagerly at option-application time.
func Validate(cfg Config) error {
	if cfg.N < 2 {
		return fmt.Errorf("scenario: need at least 2 nodes, got %d: %w", cfg.N, ErrConfig)
	}
	if !cfg.Boot.Valid() {
		return fmt.Errorf("scenario: unknown boot policy %d: %w", int(cfg.Boot), ErrConfig)
	}
	if f := cfg.BootCellFraction; f != 0 {
		if math.IsNaN(f) || f <= 0 || f > boot.MaxCellFraction {
			return fmt.Errorf("scenario: boot cell fraction %g outside (0, %g]: %w", f, boot.MaxCellFraction, ErrConfig)
		}
	}
	if cfg.Protocol.Audit.Period < 0 {
		return fmt.Errorf("scenario: negative audit period %v: %w", cfg.Protocol.Audit.Period, ErrConfig)
	}
	if p := cfg.Partition; p.Nodes != 0 {
		switch {
		case p.Nodes < 0 || p.Nodes >= cfg.N:
			return fmt.Errorf("scenario: partition of %d nodes needs 1..%d (node 0 anchors the main cluster): %w",
				p.Nodes, cfg.N-1, ErrConfig)
		case p.Gap < 0 || math.IsNaN(p.Gap) || math.IsInf(p.Gap, 0):
			return fmt.Errorf("scenario: partition gap %g must be finite and not negative: %w", p.Gap, ErrConfig)
		case p.Gap != 0 && p.Gap <= effectiveRange(cfg):
			return fmt.Errorf("scenario: partition gap %g must exceed the radio range %g or be 0 for the default: %w",
				p.Gap, effectiveRange(cfg), ErrConfig)
		case p.Speed < 0 || math.IsNaN(p.Speed) || math.IsInf(p.Speed, 0):
			return fmt.Errorf("scenario: partition speed %g must be finite and not negative: %w", p.Speed, ErrConfig)
		case p.JoinAt < 0:
			return fmt.Errorf("scenario: negative partition join offset %v: %w", p.JoinAt, ErrConfig)
		}
	}
	for i, f := range cfg.Flows {
		switch {
		case f.From < 0 || f.From >= cfg.N:
			return fmt.Errorf("scenario: flow %d: From=%d out of range [0,%d): %w", i, f.From, cfg.N, ErrConfig)
		case f.To < 0 || f.To >= cfg.N:
			return fmt.Errorf("scenario: flow %d: To=%d out of range [0,%d): %w", i, f.To, cfg.N, ErrConfig)
		case f.From == f.To:
			return fmt.Errorf("scenario: flow %d: From and To are both %d: %w", i, f.From, ErrConfig)
		case f.Interval <= 0:
			return fmt.Errorf("scenario: flow %d: non-positive interval %v: %w", i, f.Interval, ErrConfig)
		case f.Size < 0:
			return fmt.Errorf("scenario: flow %d: negative payload size %d: %w", i, f.Size, ErrConfig)
		case f.Start < 0:
			return fmt.Errorf("scenario: flow %d: negative start offset %v: %w", i, f.Start, ErrConfig)
		}
	}
	// Validation iterates map keys in sorted order so the FIRST invalid
	// entry reported is the same on every run: a config with several bad
	// entries must not produce a different error message per invocation
	// (the error text is part of the deterministic surface — harnesses
	// diff it).
	names := make([]string, 0, len(cfg.Preload))
	for name := range cfg.Preload {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if idx := cfg.Preload[name]; idx < 0 || idx >= cfg.N {
			return fmt.Errorf("scenario: preload %q references node %d: %w", name, idx, ErrConfig)
		}
	}
	for _, idx := range sortedIntKeys(cfg.Names) {
		if idx < 0 || idx >= cfg.N {
			return fmt.Errorf("scenario: name registration references node %d: %w", idx, ErrConfig)
		}
	}
	for _, idx := range sortedIntKeys(cfg.Behaviors) {
		if idx < 0 || idx >= cfg.N {
			return fmt.Errorf("scenario: behavior references node %d: %w", idx, ErrConfig)
		}
	}
	return nil
}

// sortedIntKeys returns m's keys in increasing order, for deterministic
// iteration over index-keyed config maps.
func sortedIntKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// effectiveRange is the radio range the medium will actually use (it
// defaults a zero Range to 250 m).
func effectiveRange(cfg Config) float64 {
	if cfg.Radio.Range <= 0 {
		return 250
	}
	return cfg.Radio.Range
}

// Scenario is a built simulation ready to run.
type Scenario struct {
	Cfg Config
	// S is the simulator driving global time. Under sharding it is the
	// engine's barrier-synchronized Global simulator: events scheduled on
	// it run only while every region is idle.
	S *sim.Simulator
	// Medium is the single shared channel of the serial path; nil when
	// the scenario runs sharded (each region owns its own medium).
	Medium *radio.Medium
	Nodes  []*core.Node
	DNSSrv *dnssrv.Server

	// OnWindow, when set before Run on a windowed scenario, streams each
	// measurement window's counts as the run passes it: window k is
	// emitted one cooldown after its send-span closes, so the in-flight
	// packets it is owed have landed. The idx is the window index.
	OnWindow func(idx int, w WindowStat)

	sent      map[flowPacket]sim.Time
	result    *Result
	flowStats map[int]*flowStat
	windows   []WindowStat
	// winBase is the absolute index of windows[0]. Batch runs keep it 0;
	// a live session advances it as finalized windows are emitted and
	// dropped, so the retained ring stays bounded.
	winBase int
	// onLatency, when set, receives end-to-end latency samples (src node
	// index, seconds) instead of the source node's metrics — live
	// sessions route them to bounded session aggregates so a departing
	// source cannot strand samples.
	onLatency    func(src int, seconds float64)
	measureStart sim.Time
	bootOffsets  []time.Duration
	bootHorizon  time.Duration
	mergeDone    time.Duration // latest partition glide arrival; 0 = no partition

	// eng is the region-sharded engine, nil on the serial path.
	eng *shard.Engine
	// bindTable is the serial path's shared CGA-binding table (nil when
	// disabled or sharded — the engine owns one table per region). It is
	// built per run, never in shared configuration: parallel batch
	// replicates each Build their own disjoint table.
	bindTable *bindtable.Table
	// flowLogs defers the shared flow bookkeeping under sharding: send
	// and delivery events append to their own region's log, and the
	// engine replays the merged logs in deterministic order at barriers.
	flowLogs [][]flowLogEntry
}

// flowLogEntry is one deferred flow-bookkeeping action.
type flowLogEntry struct {
	at   sim.Time
	kind uint8 // flowSend sorts before flowDeliver at the same instant
	flow uint32
	seq  uint32
}

// Flow log entry kinds.
const (
	flowSend    uint8 = 0
	flowDeliver uint8 = 1
)

type flowPacket struct {
	flow uint32
	seq  uint32
}

type flowStat struct {
	sent, delivered int
}

// windowIndex buckets a simulation instant into a measurement window.
func (sc *Scenario) windowIndex(at sim.Time) int {
	if sc.Cfg.WindowSize <= 0 {
		return -1
	}
	off := at.Sub(sc.measureStart)
	if off < 0 {
		return -1
	}
	return int(off / sc.Cfg.WindowSize)
}

func (sc *Scenario) windowAt(idx int) *WindowStat {
	if idx < sc.winBase {
		return nil // finalized and dropped (live sessions only)
	}
	idx -= sc.winBase
	for len(sc.windows) <= idx {
		sc.windows = append(sc.windows, WindowStat{
			Start: time.Duration(len(sc.windows)+sc.winBase) * sc.Cfg.WindowSize,
		})
	}
	return &sc.windows[idx]
}

// Result aggregates a run's measurements.
type Result struct {
	Configured int // nodes that completed DAD
	DADFailed  int

	Sent      int // measured-window data packets offered
	Delivered int
	PDR       float64 // delivery ratio

	LatencyMean float64 // seconds
	LatencyP95  float64

	ControlBytes float64 // summed over nodes
	DataBytes    float64
	CryptoSign   float64
	CryptoVerify float64

	Link radio.Stats

	Metrics *trace.Metrics // merged node counters
	PerFlow map[int]FlowResult
	// Windows holds per-window delivery counts when Config.WindowSize > 0.
	Windows []WindowStat
}

// FlowResult is one flow's delivery outcome.
type FlowResult struct {
	Sent, Delivered int
}

// WindowStat is one time bucket of the measurement phase.
type WindowStat struct {
	Start     time.Duration // offset from measurement start
	Sent      int
	Delivered int
}

// PDR returns the window's delivery ratio (0 when nothing was sent).
func (w WindowStat) PDR() float64 {
	if w.Sent == 0 {
		return 0
	}
	return float64(w.Delivered) / float64(w.Sent)
}

// Build constructs the network (deterministically from Cfg.Seed) without
// running it.
func Build(cfg Config) (*Scenario, error) {
	if err := Validate(cfg); err != nil {
		return nil, err
	}
	if cfg.BootStagger <= 0 {
		cfg.BootStagger = cfg.Protocol.DAD.Timeout + 200*time.Millisecond
		if cfg.BootStagger <= 200*time.Millisecond {
			cfg.BootStagger = 3200 * time.Millisecond
		}
	}
	if cfg.Spacing <= 0 {
		cfg.Spacing = 200
	}
	// Scale the per-node duplicate-flood suppression sets with the
	// network: during a 10k-node bootstrap more than 4096 flood ids are
	// in flight, and a FIFO seen-set smaller than the working set forgets
	// ids while their copies still circulate — every late copy is then
	// re-processed, re-verified and re-broadcast. Four slots per node
	// keeps DAD and discovery floods deduplicated at any N; below ~1000
	// nodes this leaves the historical 4096 unchanged.
	if cfg.Protocol.FloodCache == 0 {
		cfg.Protocol.FloodCache = 4 * cfg.N
		if cfg.Protocol.FloodCache < 4096 {
			cfg.Protocol.FloodCache = 4096
		}
	}

	sc := &Scenario{
		Cfg:       cfg,
		sent:      make(map[flowPacket]sim.Time),
		flowStats: make(map[int]*flowStat),
	}

	// Placement.
	placeRng := rand.New(rand.NewSource(cfg.Seed ^ 0x7f4a7c15)) //sbr6:allow simrng seed-derived placement stream owned by Build
	var positions []geom.Point
	switch cfg.Placement {
	case PlaceGrid:
		positions = mobility.GridPlacement(cfg.Area, cfg.N)
	case PlaceLine:
		positions = mobility.LinePlacement(cfg.N, cfg.Spacing)
	default:
		positions = mobility.UniformPlacement(cfg.Area, cfg.N, placeRng)
	}

	// Partition staging: the trailing nodes spend formation in a disjoint
	// cluster beyond flood reach and glide onto their main-area positions
	// after the bootstrap phase.
	formationPos := positions
	if cfg.Partition.Nodes > 0 {
		formationPos = stagePartition(cfg, positions, effectiveRange(cfg))
	}

	// The simulation substrate: one shared simulator and medium on the
	// serial path, or the region-sharded engine. Regions are partitioned
	// from the formation-start positions — ownership is a load-balancing
	// choice fixed at build time, so nodes that later roam (or glide in
	// from a staged partition) keep their home region.
	if cfg.Shards > 0 {
		sc.eng = shard.New(shard.Config{
			Seed:      cfg.Seed,
			Regions:   cfg.Shards,
			Radio:     cfg.Radio,
			Positions: formationPos,
		})
		sc.S = sc.eng.Global
		sc.flowLogs = make([][]flowLogEntry, sc.eng.Regions())
		sc.eng.OnBarrier = sc.replayFlowLogs
	} else {
		sc.S = sim.New(cfg.Seed)
		sc.Medium = radio.New(sc.S, cfg.Radio)
	}

	// The shared CGA-binding table: one per simulation on the serial
	// path, one per region under sharding so it stays region-local by
	// construction (populated only by the owning region's event loop,
	// exchanged at no barrier).
	if cfg.Protocol.BindTable >= 0 {
		if sc.eng != nil {
			sc.eng.EnableBindTables(cfg.Protocol.BindTable, cfg.Protocol.BindParanoia)
		} else {
			sc.bindTable = bindtable.New(cfg.Protocol.BindTable)
			sc.bindTable.SetParanoid(cfg.Protocol.BindParanoia)
		}
	}

	// The admission schedule is fixed at build time from the formation-start
	// positions; policies are pure functions of the plan, so they consume no
	// simulator RNG and never perturb the rest of the seeded run. The
	// horizon — when Bootstrap declares formation over — anchors the
	// partition glide start, so it is fixed here too: one extra stagger of
	// settle time beyond the last objection window, matching the historical
	// serial total of N*stagger + timeout + 2s exactly for every explicitly
	// configured timeout.
	sc.bootOffsets = boot.New(cfg.Boot).Schedule(boot.Plan{
		Seed:         cfg.Seed,
		Window:       cfg.Protocol.DAD.ObjectionWindow(),
		Stagger:      cfg.BootStagger,
		Cell:         effectiveRange(cfg),
		Anchor:       0, // the DNS server must be up before anyone needs it
		Positions:    formationPos,
		CellFraction: cfg.BootCellFraction,
	})
	sc.bootHorizon = boot.Horizon(sc.bootOffsets, cfg.Protocol.DAD.ObjectionWindow(), cfg.BootStagger+2*time.Second)

	// Identities. The DNS key pair is node 0's.
	dnsIdent, err := identity.New(cfg.Protocol.Suite, rand.New(rand.NewSource(cfg.Seed+1000)), cfg.Names[0]) //sbr6:allow simrng seed-derived DNS keygen stream owned by Build
	if err != nil {
		return nil, err
	}

	for i := 0; i < cfg.N; i++ {
		var ident *identity.Identity
		if i == 0 {
			ident = dnsIdent
		} else {
			ident, err = identity.New(cfg.Protocol.Suite, rand.New(rand.NewSource(cfg.Seed+1000+int64(i))), cfg.Names[i]) //sbr6:allow simrng seed-derived per-node keygen stream owned by Build
			if err != nil {
				return nil, err
			}
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 9000 + int64(i))) //sbr6:allow simrng seed-derived per-node protocol stream owned by Build
		ns, nm := sc.S, sc.Medium
		var prevOwner uint32
		if sc.eng != nil {
			// The node lives on its region's simulator and medium, and
			// everything it ever schedules — starting with construction-time
			// timers — is stamped with its own causal stream.
			ns, nm = sc.eng.NodeSim(radio.NodeID(i)), sc.eng.NodeMedium(radio.NodeID(i))
			prevOwner = ns.SetOwner(uint32(i) + 1)
		}
		n := core.New(ns, nm, radio.NodeID(i), ident, dnsIdent.Pub, cfg.Protocol, rng, nil)
		if i == 0 {
			dcfg := cfg.DNS
			dcfg.Suite = cfg.Protocol.Suite
			sc.DNSSrv = dnssrv.New(ns, rng, dnsIdent, dcfg, nil)
			n.AttachDNS(sc.DNSSrv)
		}
		if sc.eng != nil {
			ns.SetOwner(prevOwner)
			n.SetBindings(sc.eng.BindTable(radio.NodeID(i)))
		} else {
			n.SetBindings(sc.bindTable)
		}
		if b, hostile := cfg.Behaviors[i]; hostile {
			n.Behavior = b
		}
		var track mobility.Track
		if cfg.Partition.Nodes > 0 && i >= cfg.N-cfg.Partition.Nodes {
			speed := cfg.Partition.Speed
			if speed <= 0 {
				speed = 25
			}
			g := mobility.NewGlide(formationPos[i], positions[i],
				sim.Time(0).Add(sc.bootHorizon+cfg.Partition.JoinAt), speed)
			if at := time.Duration(g.Arrival()); at > sc.mergeDone {
				sc.mergeDone = at
			}
			track = g
		} else {
			track = buildTrack(cfg, positions[i], i)
		}
		if sc.eng != nil {
			sc.eng.AddNode(radio.NodeID(i), track, n)
		} else {
			sc.Medium.AddNode(radio.NodeID(i), track.Position, n)
			// Declare the track's speed bound so the medium's spatial index
			// can re-bucket lazily; tracks that cannot bound themselves stay
			// unbounded and are re-bucketed exactly.
			if bt, ok := track.(mobility.Bounded); ok {
				sc.Medium.SetSpeedBound(radio.NodeID(i), bt.SpeedBound())
			}
			// Tracks that can announce their own drift get event-driven
			// per-leg re-bucketing instead of the O(movers) query-time sweep.
			if rf, ok := track.(mobility.Refresher); ok {
				sc.Medium.SetRefresher(radio.NodeID(i), rf.NextRefresh)
			}
		}
		sc.Nodes = append(sc.Nodes, n)
	}

	// Permanent DNS bindings exist before the network forms.
	//sbr6:commutative each preload writes a distinct name into the DNS table
	for name, idx := range cfg.Preload {
		sc.DNSSrv.Preload(name, sc.Nodes[idx].Addr())
	}

	return sc, nil
}

// stagePartition returns the formation-start positions: main-cluster nodes
// keep their placement; partition nodes move to a staging copy beyond the
// gap, compacted by sqrt(partition/total) so the staged cluster's density
// matches the main deployment's. The staging base is the bounding box of
// the actual placement, not the declared area — line placements routinely
// extend past cfg.Area — so the gap always separates the clusters by more
// than the radio range whatever the placement produced.
func stagePartition(cfg Config, positions []geom.Point, radioRange float64) []geom.Point {
	p := cfg.Partition
	gap := p.Gap
	if gap <= 0 {
		gap = 4 * radioRange
	}
	maxX := cfg.Area.W
	for _, pos := range positions {
		if pos.X > maxX {
			maxX = pos.X
		}
	}
	scale := math.Sqrt(float64(p.Nodes) / float64(cfg.N))
	out := append([]geom.Point(nil), positions...)
	for i := cfg.N - p.Nodes; i < cfg.N; i++ {
		out[i] = geom.Point{
			X: maxX + gap + positions[i].X*scale,
			Y: positions[i].Y * scale,
		}
	}
	return out
}

// buildTrack constructs node i's mobility track per the spec: static,
// random waypoint, bounded random walk, or (when both models are selected)
// the even/odd mix the churn suites use. Every moving track draws from a
// node-dedicated seeded source, so adding walk nodes never shifts another
// node's trajectory.
func buildTrack(cfg Config, start geom.Point, i int) mobility.Track {
	m := cfg.Mobility
	useWalk := m.Walk && (!m.Waypoint || i%2 == 1)
	switch {
	case useWalk:
		return mobility.NewWalk(mobility.WalkConfig{
			Region: cfg.Area,
			Speed:  m.MaxSpeed,
			Epoch:  m.Epoch,
		}, start, rand.New(rand.NewSource(cfg.Seed+20000+int64(i)))) //sbr6:allow simrng seed-derived per-node walk track stream
	case m.Waypoint:
		return mobility.NewWaypoint(mobility.WaypointConfig{
			Region:   cfg.Area,
			MinSpeed: m.MinSpeed,
			MaxSpeed: m.MaxSpeed,
			Pause:    m.Pause,
		}, start, rand.New(rand.NewSource(cfg.Seed+20000+int64(i)))) //sbr6:allow simrng seed-derived per-node waypoint track stream
	default:
		return mobility.Static(start)
	}
}

// BootOffsets returns a copy of the per-node DAD start offsets the
// admission policy assigned; index i is node i's delay from formation
// start. The conformance suites use it to place seeded conflicts at known
// points of the schedule.
func (sc *Scenario) BootOffsets() []time.Duration {
	return append([]time.Duration(nil), sc.bootOffsets...)
}

// Bootstrap starts DAD per the admission policy's schedule and runs until
// the last objection window closes (the horizon Build fixed; ObjectionWindow
// is what the initiators actually arm, so a zero Timeout — the ndp default
// in effect — still runs until the last window has closed). It returns how
// many nodes configured successfully.
func (sc *Scenario) Bootstrap() int {
	for i, n := range sc.Nodes {
		n := n
		if sc.eng != nil {
			sc.eng.ScheduleOwnedAt(radio.NodeID(i), sc.S.Now().Add(sc.bootOffsets[i]), n.Start)
		} else {
			sc.S.After(sc.bootOffsets[i], n.Start)
		}
	}
	sc.RunFor(sc.bootHorizon)
	configured := 0
	for _, n := range sc.Nodes {
		if n.Configured() {
			configured++
		}
	}
	return configured
}

// MergeComplete returns the virtual instant (from run start) by which every
// partition node has arrived at its main-area position — zero when the
// scenario stages no partition. The merge suites size their post-formation
// run spans from it.
func (sc *Scenario) MergeComplete() time.Duration { return sc.mergeDone }

// StartAuditSweeps schedules every node's periodic audit re-advertisements
// over the next span of virtual time, one per sweep period at the node's
// seed-stable phase (audit.Offset). Run calls it as the post-bootstrap
// phases begin; harnesses that drive Bootstrap directly call it themselves.
// With the sweep disabled it schedules nothing, draws nothing, and the run
// is byte-identical to one without the audit subsystem.
func (sc *Scenario) StartAuditSweeps(span time.Duration) {
	period := sc.Cfg.Protocol.Audit.Period
	if period <= 0 {
		return
	}
	for i, n := range sc.Nodes {
		n := n
		for t := audit.Offset(sc.Cfg.Seed, i, period); t < span; t += period {
			if sc.eng != nil {
				sc.eng.ScheduleOwnedAt(radio.NodeID(i), sc.S.Now().Add(t), n.AuditAdvertise)
			} else {
				sc.S.After(t, n.AuditAdvertise)
			}
		}
	}
}

// RunFor advances the simulation by d: directly on the serial path,
// through the barrier protocol when sharded.
func (sc *Scenario) RunFor(d time.Duration) {
	if sc.eng != nil {
		sc.eng.RunFor(d)
		return
	}
	sc.S.RunFor(d)
}

// Engine returns the region-sharded engine, or nil on the serial path.
func (sc *Scenario) Engine() *shard.Engine { return sc.eng }

// BindStats aggregates the shared binding-table counters over the run's
// tables — the single serial table, or every region's. Zero when the
// table is disabled; not part of the deterministic Result surface.
func (sc *Scenario) BindStats() bindtable.Stats {
	var st bindtable.Stats
	if sc.eng != nil {
		for _, t := range sc.eng.BindTables() {
			st.Add(t.Stats())
		}
		return st
	}
	st.Add(sc.bindTable.Stats())
	return st
}

// Run executes the full experiment: bootstrap, warmup, measured traffic,
// cooldown; it returns the aggregated result.
func (sc *Scenario) Run() *Result {
	res := &Result{Metrics: trace.NewMetrics(), PerFlow: make(map[int]FlowResult)}
	sc.result = res

	res.Configured = sc.Bootstrap()
	res.DADFailed = sc.Cfg.N - res.Configured

	sc.StartAuditSweeps(sc.Cfg.Warmup + sc.Cfg.Duration + sc.Cfg.Cooldown)
	sc.RunFor(sc.Cfg.Warmup)
	sc.measureStart = sc.S.Now()
	sc.startFlows()
	sc.scheduleWindowEmissions()
	sc.RunFor(sc.Cfg.Duration + sc.Cfg.Cooldown)
	if sc.eng != nil {
		// A stopped run skips the engine's final barrier; the replay is
		// idempotent over drained logs, so flush unconditionally.
		sc.replayFlowLogs()
	}

	// Aggregate.
	lat := trace.NewMetrics()
	//sbr6:commutative order-free sums plus one distinct PerFlow key per flow
	for fi, st := range sc.flowStats {
		res.Sent += st.sent
		res.Delivered += st.delivered
		res.PerFlow[fi] = FlowResult{Sent: st.sent, Delivered: st.delivered}
	}
	if res.Sent > 0 {
		res.PDR = float64(res.Delivered) / float64(res.Sent)
	}
	for _, n := range sc.Nodes {
		res.Metrics.Merge(n.Metrics())
	}
	lat.Merge(res.Metrics)
	res.LatencyMean = res.Metrics.Mean("e2e.latency_s")
	res.LatencyP95 = res.Metrics.Quantile("e2e.latency_s", 0.95)
	res.ControlBytes = res.Metrics.Get("tx.bytes.control")
	res.DataBytes = res.Metrics.Get("tx.bytes.data")
	res.CryptoSign = res.Metrics.Get("crypto.sign")
	res.CryptoVerify = res.Metrics.Get("crypto.verify")
	if sc.eng != nil {
		res.Link = sc.eng.Stats()
	} else {
		res.Link = sc.Medium.Stats()
	}
	res.Windows = sc.windows
	return res
}

// scheduleWindowEmissions arranges the OnWindow stream: window k fires one
// cooldown after its send-span ends (clamped to the run's end), by which
// point every packet sent inside it has had a full cooldown to land. The
// emission events read state without touching the model or its RNGs, so a
// streamed run stays byte-identical to an unobserved one.
func (sc *Scenario) scheduleWindowEmissions() {
	if sc.Cfg.WindowSize <= 0 || sc.OnWindow == nil {
		return
	}
	numW := int((sc.Cfg.Duration + sc.Cfg.WindowSize - 1) / sc.Cfg.WindowSize)
	for k := 0; k < numW; k++ {
		k := k
		at := time.Duration(k+1) * sc.Cfg.WindowSize
		if at > sc.Cfg.Duration {
			at = sc.Cfg.Duration
		}
		sc.S.After(at+sc.Cfg.Cooldown, func() {
			w := WindowStat{Start: time.Duration(k) * sc.Cfg.WindowSize}
			if k < len(sc.windows) {
				w = sc.windows[k]
			}
			sc.OnWindow(k, w)
		})
	}
}

// startFlows schedules the CBR sources across the measurement window and
// hooks delivery tracking at each sink. Flow fields were validated by
// Build, so every flow here is well-formed.
func (sc *Scenario) startFlows() {
	for fi, f := range sc.Cfg.Flows {
		fi, f := fi, f
		st := &flowStat{}
		sc.flowStats[fi] = st
		src, dst := sc.Nodes[f.From], sc.Nodes[f.To]
		flowID := uint32(fi + 1)

		if sc.eng != nil {
			sc.startFlowSharded(f, flowID, src, dst)
			continue
		}

		prevOnData := dst.OnData
		dst.OnData = func(from ipv6.Addr, d *wire.Data) {
			if prevOnData != nil {
				prevOnData(from, d)
			}
			if d.FlowID != flowID {
				return
			}
			key := flowPacket{d.FlowID, d.Seq}
			sentAt, tracked := sc.sent[key]
			if !tracked {
				return // duplicate or out-of-window
			}
			delete(sc.sent, key)
			st.delivered++
			src.Metrics().Observe("e2e.latency_s", sc.S.Now().Sub(sentAt).Seconds())
			// Deliveries are attributed to the window the packet was SENT
			// in, so window PDRs are well defined.
			if w := sc.windowAt(sc.windowIndex(sentAt)); w != nil {
				w.Delivered++
			}
		}

		interval := f.Interval
		count := int((sc.Cfg.Duration - f.Start) / interval)
		payload := make([]byte, f.Size)
		for k := 0; k < count; k++ {
			at := f.Start + time.Duration(k)*interval
			sc.S.After(at, func() {
				_, seq := src.SendFlow(dst.Addr(), flowID, payload)
				sc.sent[flowPacket{flowID, seq}] = sc.S.Now()
				st.sent++
				if w := sc.windowAt(sc.windowIndex(sc.S.Now())); w != nil {
					w.Sent++
				}
			})
		}
	}
}

// startFlowSharded wires one flow under the engine. The send events and
// the delivery hook run inside region event loops, so instead of mutating
// the shared bookkeeping directly — the sent map, window counters and the
// source's latency samples are all order-sensitive — they append to their
// own region's log; replayFlowLogs applies the merged logs in a
// shard-count-independent order at each barrier.
func (sc *Scenario) startFlowSharded(f Flow, flowID uint32, src, dst *core.Node) {
	srcID, dstID := radio.NodeID(f.From), radio.NodeID(f.To)
	srcRegion, dstRegion := sc.eng.RegionOf(srcID), sc.eng.RegionOf(dstID)
	srcSim, dstSim := sc.eng.NodeSim(srcID), sc.eng.NodeSim(dstID)
	// The destination address is captured once, here, while every region
	// is idle: reading it from inside the source's event loop would cross
	// region ownership. Flows target post-formation addresses, so the
	// snapshot is the address the serial path would read too.
	dstAddr := dst.Addr()

	prevOnData := dst.OnData
	dst.OnData = func(from ipv6.Addr, d *wire.Data) {
		if prevOnData != nil {
			prevOnData(from, d)
		}
		if d.FlowID != flowID {
			return
		}
		sc.flowLogs[dstRegion] = append(sc.flowLogs[dstRegion],
			flowLogEntry{at: dstSim.Now(), kind: flowDeliver, flow: d.FlowID, seq: d.Seq})
	}

	count := int((sc.Cfg.Duration - f.Start) / f.Interval)
	payload := make([]byte, f.Size)
	base := sc.S.Now()
	for k := 0; k < count; k++ {
		at := base.Add(f.Start + time.Duration(k)*f.Interval)
		sc.eng.ScheduleOwnedAt(srcID, at, func() {
			_, seq := src.SendFlow(dstAddr, flowID, payload)
			sc.flowLogs[srcRegion] = append(sc.flowLogs[srcRegion],
				flowLogEntry{at: srcSim.Now(), kind: flowSend, flow: flowID, seq: seq})
		})
	}
}

// replayFlowLogs drains the per-region flow logs and applies them to the
// shared bookkeeping in (at, kind, flow, seq) order. The engine invokes it
// at every barrier — all regions have quiesced strictly below the global
// clock, so every logged instant is final — and Run flushes once more
// before aggregating. Sends sort before deliveries at the same instant,
// matching the serial path where a packet cannot land before SendFlow
// recorded it; duplicate deliveries fall out exactly as they do serially,
// because only the first replayed delivery finds its packet tracked.
func (sc *Scenario) replayFlowLogs() {
	total := 0
	for i := range sc.flowLogs {
		total += len(sc.flowLogs[i])
	}
	if total == 0 {
		return
	}
	batch := make([]flowLogEntry, 0, total)
	for i := range sc.flowLogs {
		batch = append(batch, sc.flowLogs[i]...)
		sc.flowLogs[i] = sc.flowLogs[i][:0]
	}
	sort.Slice(batch, func(a, b int) bool {
		x, y := batch[a], batch[b]
		if x.at != y.at {
			return x.at < y.at
		}
		if x.kind != y.kind {
			return x.kind < y.kind
		}
		if x.flow != y.flow {
			return x.flow < y.flow
		}
		return x.seq < y.seq
	})
	for _, e := range batch {
		st := sc.flowStats[int(e.flow)-1]
		key := flowPacket{e.flow, e.seq}
		if e.kind == flowSend {
			sc.sent[key] = e.at
			st.sent++
			if w := sc.windowAt(sc.windowIndex(e.at)); w != nil {
				w.Sent++
			}
			continue
		}
		sentAt, tracked := sc.sent[key]
		if !tracked {
			continue // duplicate or out-of-window
		}
		delete(sc.sent, key)
		st.delivered++
		srcIdx := sc.Cfg.Flows[int(e.flow)-1].From
		if sc.onLatency != nil {
			sc.onLatency(srcIdx, e.at.Sub(sentAt).Seconds())
		} else {
			sc.Nodes[srcIdx].Metrics().Observe("e2e.latency_s", e.at.Sub(sentAt).Seconds())
		}
		if w := sc.windowAt(sc.windowIndex(sentAt)); w != nil {
			w.Delivered++
		}
	}
}

// Components returns the connected components of the unit-disk graph at
// the current instant, as slices of node indices. Experiments use it to
// distinguish protocol failures from plain partitions.
func (sc *Scenario) Components() [][]int {
	n := sc.Cfg.N
	neighbors := func(i int, visit func(nb int)) {
		for _, nb := range sc.Medium.Neighbors(radio.NodeID(i)) {
			visit(int(nb))
		}
	}
	if sc.eng != nil {
		// Ports are spread across region media, so assemble a global
		// snapshot: positions at the current barrier instant in one grid.
		r := effectiveRange(sc.Cfg)
		pos := make([]geom.Point, n)
		grid := geom.NewGrid(r)
		for i := 0; i < n; i++ {
			pos[i] = sc.eng.PosNow(radio.NodeID(i))
			if !sc.eng.IsDown(radio.NodeID(i)) {
				grid.Set(i, pos[i])
			}
		}
		r2 := r * r
		neighbors = func(i int, visit func(nb int)) {
			if sc.eng.IsDown(radio.NodeID(i)) {
				return
			}
			grid.Visit(pos[i], r, func(id int) {
				if id != i && pos[i].Dist2(pos[id]) <= r2 {
					visit(id)
				}
			})
		}
	}
	visited := make([]bool, n)
	var comps [][]int
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		comp := []int{start}
		visited[start] = true
		for i := 0; i < len(comp); i++ {
			neighbors(comp[i], func(nb int) {
				if !visited[nb] {
					visited[nb] = true
					comp = append(comp, nb)
				}
			})
		}
		comps = append(comps, comp)
	}
	return comps
}

// Connected reports whether every node can currently reach every other.
func (sc *Scenario) Connected() bool { return len(sc.Components()) == 1 }

// String renders a one-line summary of the result.
func (r *Result) String() string {
	return fmt.Sprintf("pdr=%.3f (%d/%d) latency=%.3fs ctrl=%.0fB data=%.0fB sign=%.0f verify=%.0f dad=%d/%d",
		r.PDR, r.Delivered, r.Sent, r.LatencyMean, r.ControlBytes, r.DataBytes,
		r.CryptoSign, r.CryptoVerify, r.Configured, r.Configured+r.DADFailed)
}
