package scenario

import (
	"testing"
	"time"

	"sbr6/internal/geom"
)

func liveConfig(seed int64, shards int) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.N = 16
	cfg.Area = geom.Rect{W: 600, H: 600} // dense enough to stay connected
	cfg.Warmup = 1 * time.Second
	cfg.WindowSize = 2 * time.Second
	cfg.Cooldown = 2 * time.Second
	cfg.Shards = shards
	cfg.Flows = []Flow{
		{From: 1, To: 2, Interval: 250 * time.Millisecond, Size: 64},
		{From: 3, To: 4, Interval: 400 * time.Millisecond, Size: 32},
	}
	return cfg
}

func startLive(t *testing.T, cfg Config) *Live {
	t.Helper()
	sc, err := Build(cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	lv, err := NewLive(sc)
	if err != nil {
		t.Fatalf("NewLive: %v", err)
	}
	if got := lv.Start(); got < cfg.N-1 {
		t.Fatalf("bootstrap configured %d of %d", got, cfg.N)
	}
	return lv
}

func TestLiveSmoke(t *testing.T) {
	for _, shards := range []int{0, 2} {
		lv := startLive(t, liveConfig(7, shards))
		for i := 0; i < 3; i++ {
			lv.Step()
		}
		idx, err := lv.Join("joiner.example", nil)
		if err != nil {
			t.Fatalf("shards=%d Join: %v", shards, err)
		}
		for i := 0; i < 3; i++ {
			lv.Step()
		}
		if !lv.Node(idx).Configured() {
			t.Errorf("shards=%d: joined node %d not configured after 3 windows", shards, idx)
		}
		if err := lv.Leave(idx); err != nil {
			t.Fatalf("shards=%d Leave: %v", shards, err)
		}
		lv.Step()
		res := lv.Result()
		if res.Sent == 0 || res.Delivered == 0 {
			t.Errorf("shards=%d: no traffic recorded: %+v", shards, res)
		}
		if res.PDR < 0.5 {
			t.Errorf("shards=%d: implausible session PDR %.3f", shards, res.PDR)
		}
	}
}

// TestLiveWindowStream checks that windows are emitted exactly once, in
// order, with the lag honoured and the ring dropped behind the emission
// point.
func TestLiveWindowStream(t *testing.T) {
	lv := startLive(t, liveConfig(11, 0))
	var got []WindowReport
	lv.OnWindow = func(w WindowReport) { got = append(got, w) }
	const steps = 8
	for i := 0; i < steps; i++ {
		lv.Step()
	}
	want := steps - lv.lag + 1 // windows 0..steps-lag are finalized
	if len(got) != want {
		t.Fatalf("emitted %d windows, want %d (lag %d)", len(got), want, lv.lag)
	}
	for i, w := range got {
		if w.Index != i {
			t.Errorf("window %d emitted with index %d", i, w.Index)
		}
		if w.Start != time.Duration(i)*lv.w {
			t.Errorf("window %d start %v, want %v", i, w.Start, time.Duration(i)*lv.w)
		}
		if w.Sent == 0 {
			t.Errorf("window %d recorded no sends", i)
		}
	}
	if len(lv.sc.windows) > lv.lag+1 {
		t.Errorf("window ring retains %d windows, lag is %d", len(lv.sc.windows), lv.lag)
	}
}

// TestLiveDeterministicReplay re-runs the same session (same seed, same
// barrier-stamped ops) and demands a byte-identical digest — the property
// snapshot restore is built on.
func TestLiveDeterministicReplay(t *testing.T) {
	run := func(shards int) [32]byte {
		lv := startLive(t, liveConfig(23, shards))
		lv.Step()
		lv.Step()
		if _, err := lv.Join("a.example", nil); err != nil {
			t.Fatalf("Join: %v", err)
		}
		lv.Step()
		if _, err := lv.Join("", nil); err != nil {
			t.Fatalf("Join: %v", err)
		}
		lv.Step()
		if err := lv.Leave(5); err != nil {
			t.Fatalf("Leave: %v", err)
		}
		lv.Step()
		lv.Step()
		return lv.Digest()
	}
	for _, shards := range []int{0, 2} {
		a, b := run(shards), run(shards)
		if a != b {
			t.Errorf("shards=%d: same ops, different digests\n%x\n%x", shards, a, b)
		}
	}
}
