// Live is the open-ended counterpart of Run: the same built Scenario
// advanced window by window under external control, with nodes joining
// and leaving between windows and every per-window measurement streamed
// and dropped instead of accumulated. It is the substrate of the public
// Session facade and the manetsim daemon.
//
// # Bounded memory
//
// A batch Run may buffer freely — it ends. A session must hold a
// steady-state heap over an unbounded run, so every open-ended buffer in
// the batch path is replaced here:
//
//   - sample series (latencies, DAD durations) are drained from every
//     node's metrics at each window barrier and folded into fixed-size
//     aggregates (count/sum/min/max plus a 64-bucket log histogram);
//   - the in-flight packet map is pruned of entries older than the
//     cooldown — past it the batch path would have counted the packet
//     lost anyway;
//   - window stats live in a short ring: a window is finalized and
//     emitted once no in-flight packet can still land in it (the
//     cooldown lag), then dropped;
//   - departed nodes leave only their merged counters behind, in a
//     single graveyard sink.
//
// # Determinism
//
// Everything external happens at window barriers, when the serial loop
// is idle or every region of the sharded engine has quiesced: joins,
// leaves, queries and snapshots never interleave with events. Join
// positions and start jitters draw from a dedicated churn RNG stream, so
// a session replayed from the same seed with the same barrier-stamped
// operation journal reproduces the run byte for byte — that replay is
// exactly how snapshot restore works.
package scenario

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"sbr6/internal/audit"
	"sbr6/internal/bindtable"
	"sbr6/internal/core"
	"sbr6/internal/identity"
	"sbr6/internal/ipv6"
	"sbr6/internal/mobility"
	"sbr6/internal/ndp"
	"sbr6/internal/radio"
	"sbr6/internal/trace"
	"sbr6/internal/wire"
)

// Live session errors.
var (
	ErrNotStarted = errors.New("scenario: session not started")
	ErrNoSuchNode = errors.New("scenario: no such node")
	ErrAnchor     = errors.New("scenario: node 0 is the DNS anchor and cannot leave")
	ErrDeparted   = errors.New("scenario: node already left")
)

// SampleAgg is a bounded replacement for an unbounded sample series:
// count, sum, extremes and a fixed log-spaced histogram. Folding a
// drained series into it is deterministic given the series order, and
// two aggs fed the same observations in the same order are identical —
// which makes aggs part of the snapshot-equivalence surface.
type SampleAgg struct {
	Count    int64
	Sum      float64
	Min, Max float64
	Hist     [histBuckets]int64
}

const (
	histBuckets = 64
	histMin     = 1e-6 // seconds; bucket 0 also absorbs everything below
	histMax     = 1e4
)

// histBucket maps v to its bucket: log-spaced between histMin and
// histMax, clamped at the ends.
func histBucket(v float64) int {
	if !(v > histMin) {
		return 0
	}
	b := int(math.Log(v/histMin) / math.Log(histMax/histMin) * histBuckets)
	if b < 0 {
		b = 0
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// histUpper is bucket b's upper edge in seconds.
func histUpper(b int) float64 {
	return histMin * math.Pow(histMax/histMin, float64(b+1)/histBuckets)
}

// Observe folds one sample in.
func (a *SampleAgg) Observe(v float64) {
	if a.Count == 0 || v < a.Min {
		a.Min = v
	}
	if a.Count == 0 || v > a.Max {
		a.Max = v
	}
	a.Count++
	a.Sum += v
	a.Hist[histBucket(v)]++
}

// Mean returns the aggregate mean, 0 when empty (never NaN: session
// results must survive reflect.DeepEqual).
func (a *SampleAgg) Mean() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum / float64(a.Count)
}

// Quantile estimates the q-quantile by nearest rank over the histogram,
// reporting the containing bucket's upper edge clamped to the observed
// maximum; 0 when empty.
func (a *SampleAgg) Quantile(q float64) float64 {
	if a.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(a.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b := 0; b < histBuckets; b++ {
		seen += a.Hist[b]
		if seen >= rank {
			return math.Min(histUpper(b), a.Max)
		}
	}
	return a.Max
}

// WindowReport is one finalized measurement window of a live session: the
// delivery stats of the window itself plus the deltas of every merged
// node counter over the window's wall of simulation time. Reports are
// emitted in index order, each exactly once, lagged far enough that no
// in-flight packet can still land in the window.
type WindowReport struct {
	Index     int                `json:"index"`
	Start     time.Duration      `json:"start"`
	Sent      int                `json:"sent"`
	Delivered int                `json:"delivered"`
	Counters  map[string]float64 `json:"counters,omitempty"`
	Live      int                `json:"live"`     // live nodes at the window's closing barrier
	InFlight  int                `json:"inFlight"` // tracked packets at the window's closing barrier
}

// Live drives a built Scenario as an open-ended session. Construct with
// NewLive, then Start once, then any interleaving of Step / Join / Leave /
// queries. Not safe for concurrent use: one goroutine owns the session,
// exactly as one loop owns a simulator.
type Live struct {
	sc  *Scenario
	w   time.Duration
	lag int

	// OnWindow, when set, receives each finalized window. Suppress turns
	// emission off during snapshot replay, which re-runs windows the
	// original session already streamed.
	OnWindow func(WindowReport)
	Suppress bool

	churn    *rand.Rand
	started  bool
	window   int // windows fully run
	emitNext int // absolute index of the next window to finalize

	graveyard     *trace.Metrics
	deadConfig    int // departed nodes that were configured
	deadFailed    int // departed nodes whose DAD had failed
	aggs          map[string]*SampleAgg
	prevCounters  map[string]float64
	pendingDeltas []map[string]float64 // per retained window, aligned with sc.windows
}

// NewLive wraps a built (not yet run) scenario. The window size comes
// from cfg.WindowSize and must be positive; the cooldown bounds how long
// a packet may stay in flight and sets the emission lag.
func NewLive(sc *Scenario) (*Live, error) {
	if sc.Cfg.WindowSize <= 0 {
		return nil, fmt.Errorf("scenario: live session needs WindowSize > 0: %w", ErrConfig)
	}
	if sc.Cfg.Cooldown <= 0 {
		return nil, fmt.Errorf("scenario: live session needs Cooldown > 0: %w", ErrConfig)
	}
	lv := &Live{
		sc:           sc,
		w:            sc.Cfg.WindowSize,
		lag:          int((sc.Cfg.Cooldown+sc.Cfg.WindowSize-1)/sc.Cfg.WindowSize) + 1,
		churn:        rand.New(rand.NewSource(sc.Cfg.Seed ^ 0x632be59b)), //sbr6:allow simrng seed-derived churn stream owned by the session
		graveyard:    trace.NewMetrics(),
		aggs:         make(map[string]*SampleAgg),
		prevCounters: make(map[string]float64),
	}
	return lv, nil
}

// Start bootstraps the network, runs the warmup, and opens the first
// measurement window with the configured flows running and audit sweeps
// self-rescheduling. Returns how many nodes configured during bootstrap.
func (lv *Live) Start() int {
	sc := lv.sc
	configured := sc.Bootstrap()
	lv.startAudits()
	sc.RunFor(sc.Cfg.Warmup)
	sc.measureStart = sc.S.Now()
	sc.onLatency = func(_ int, seconds float64) { lv.observe("e2e.latency_s", seconds) }
	lv.startFlows()
	lv.started = true
	return configured
}

// Step runs exactly one measurement window and performs the barrier work:
// flow-log replay (sharded), in-flight pruning, sample draining, counter
// deltas, and lagged window finalization.
func (lv *Live) Step() {
	sc := lv.sc
	sc.RunFor(lv.w)
	// The engine replays region flow logs at its final barrier; the
	// serial path applied them inline. Either way the bookkeeping below
	// sees a fully settled window.
	lv.windowRing(lv.window) // materialize the window even if nothing was sent
	lv.window++

	// Prune in-flight entries past the cooldown: the batch path would
	// have counted them lost at run end; a session must not hold them
	// forever waiting for a delivery that can no longer be attributed.
	horizon := sc.S.Now().Add(-sc.Cfg.Cooldown)
	//sbr6:commutative age-threshold deletes touch disjoint keys and no surviving state
	for k, at := range sc.sent {
		if at < horizon {
			delete(sc.sent, k)
		}
	}

	for _, n := range sc.Nodes {
		lv.drainInto(n.Metrics())
	}
	lv.pendingDeltas = append(lv.pendingDeltas, lv.counterDelta())
	for lv.emitNext <= lv.window-lv.lag {
		lv.finalizeOldest()
	}
}

// windowRing extends the retained window ring through absolute index idx.
func (lv *Live) windowRing(idx int) *WindowStat { return lv.sc.windowAt(idx) }

// drainInto folds one node's drained sample series into the session
// aggregates.
func (lv *Live) drainInto(m *trace.Metrics) {
	//sbr6:commutative each drained series folds into its own name's aggregate; series keep their order
	for name, series := range m.DrainSamples() {
		agg := lv.aggs[name]
		if agg == nil {
			agg = &SampleAgg{}
			lv.aggs[name] = agg
		}
		for _, v := range series {
			agg.Observe(v)
		}
	}
}

// observe folds one sample directly into a session aggregate — the live
// flow path records end-to-end latency here instead of on a node, so a
// source's departure cannot strand samples.
func (lv *Live) observe(name string, v float64) {
	agg := lv.aggs[name]
	if agg == nil {
		agg = &SampleAgg{}
		lv.aggs[name] = agg
	}
	agg.Observe(v)
}

// counterDelta merges every counter (live nodes + graveyard) and returns
// the per-name change since the previous barrier, keeping the merged
// snapshot as the new baseline.
func (lv *Live) counterDelta() map[string]float64 {
	cur := lv.mergedCounters()
	delta := make(map[string]float64)
	for _, name := range sortedNames(cur) {
		if d := cur[name] - lv.prevCounters[name]; d != 0 {
			delta[name] = d
		}
	}
	lv.prevCounters = cur
	return delta
}

func sortedNames(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// mergedCounters returns the merged counter map across the graveyard and
// every live node. Samples are already drained, so this is counters only.
func (lv *Live) mergedCounters() map[string]float64 {
	m := trace.NewMetrics()
	m.Merge(lv.graveyard)
	for _, n := range lv.sc.Nodes {
		if !n.Dead() {
			m.Merge(n.Metrics())
		}
	}
	out := make(map[string]float64, 64)
	for _, name := range m.CounterNames() {
		out[name] = m.Get(name)
	}
	return out
}

// finalizeOldest emits and drops the oldest retained window.
func (lv *Live) finalizeOldest() {
	sc := lv.sc
	w := WindowStat{Start: time.Duration(lv.emitNext) * lv.w}
	if len(sc.windows) > 0 {
		w = sc.windows[0]
		sc.windows = sc.windows[1:]
	}
	var delta map[string]float64
	if len(lv.pendingDeltas) > 0 {
		delta = lv.pendingDeltas[0]
		lv.pendingDeltas = lv.pendingDeltas[1:]
	}
	sc.winBase = lv.emitNext + 1
	if lv.OnWindow != nil && !lv.Suppress {
		lv.OnWindow(WindowReport{
			Index:     lv.emitNext,
			Start:     w.Start,
			Sent:      w.Sent,
			Delivered: w.Delivered,
			Counters:  delta,
			Live:      lv.LiveNodes(),
			InFlight:  len(sc.sent),
		})
	}
	lv.emitNext++
}

// Windows reports how many measurement windows have fully run.
func (lv *Live) Windows() int { return lv.window }

// LiveNodes reports how many nodes are currently part of the network.
func (lv *Live) LiveNodes() int {
	n := 0
	for _, node := range lv.sc.Nodes {
		if !node.Dead() {
			n++
		}
	}
	return n
}

// InFlight reports the tracked in-flight packet count (conformance
// suites watch it return to steady state).
func (lv *Live) InFlight() int { return len(lv.sc.sent) }

// Node returns the node at idx (nil past the end). Departed nodes are
// still returned — callers check Dead().
func (lv *Live) Node(idx int) *core.Node {
	if idx < 0 || idx >= len(lv.sc.Nodes) {
		return nil
	}
	return lv.sc.Nodes[idx]
}

// NodeCount returns the total number of node slots ever created.
func (lv *Live) NodeCount() int { return len(lv.sc.Nodes) }

// Join admits a new node: a fresh identity on the next seed-derived
// streams, a spawn position and start jitter from the churn stream, and a
// full secure bootstrap (DAD with objection window) exactly like a
// build-time node. name optionally registers a domain name during DAD; b
// optionally installs an adversarial behavior. Returns the new node's
// index. Barrier-only: call between Steps.
func (lv *Live) Join(name string, b core.Behavior) (int, error) {
	if !lv.started {
		return 0, ErrNotStarted
	}
	sc := lv.sc
	cfg := sc.Cfg
	idx := len(sc.Nodes)
	ident, err := identity.New(cfg.Protocol.Suite, rand.New(rand.NewSource(cfg.Seed+1000+int64(idx))), name) //sbr6:allow simrng seed-derived per-node keygen stream, same scheme as Build
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 9000 + int64(idx))) //sbr6:allow simrng seed-derived per-node protocol stream, same scheme as Build
	pos := cfg.Area.RandomPoint(lv.churn)
	jitterRange := int64(lv.w / 2)
	if jitterRange < 1 {
		jitterRange = 1
	}
	jitter := time.Duration(1 + lv.churn.Int63n(jitterRange))
	track := buildTrack(cfg, pos, idx)

	dnsPub := sc.Nodes[0].Identity().Pub
	var n *core.Node
	if sc.eng != nil {
		id := radio.NodeID(idx)
		sc.eng.InjectNode(id, pos)
		ns, nm := sc.eng.NodeSim(id), sc.eng.NodeMedium(id)
		prev := ns.SetOwner(uint32(id) + 1)
		n = core.New(ns, nm, id, ident, dnsPub, cfg.Protocol, rng, nil)
		ns.SetOwner(prev)
		n.SetBindings(sc.eng.BindTable(id))
		n.Behavior = b
		sc.eng.AddNode(id, track, n)
		sc.eng.ScheduleOwnedAt(id, sc.S.Now().Add(jitter), n.Start)
	} else {
		id := radio.NodeID(idx)
		n = core.New(sc.S, sc.Medium, id, ident, dnsPub, cfg.Protocol, rng, nil)
		n.SetBindings(sc.bindTable)
		n.Behavior = b
		sc.Medium.AddNode(id, track.Position, n)
		if bt, ok := track.(mobility.Bounded); ok {
			sc.Medium.SetSpeedBound(id, bt.SpeedBound())
		}
		if rf, ok := track.(mobility.Refresher); ok {
			sc.Medium.SetRefresher(id, rf.NextRefresh)
		}
		sc.S.After(jitter, n.Start)
	}
	sc.Nodes = append(sc.Nodes, n)
	lv.scheduleAudit(idx, n)
	return idx, nil
}

// Leave removes a node for good: its timers are cancelled, its radio port
// tombstoned, its binding-table verdict forgotten, and its counters
// merged into the graveyard. The index is never reused. Barrier-only.
func (lv *Live) Leave(idx int) error {
	if !lv.started {
		return ErrNotStarted
	}
	sc := lv.sc
	if idx < 0 || idx >= len(sc.Nodes) {
		return fmt.Errorf("%w: %d", ErrNoSuchNode, idx)
	}
	if idx == 0 {
		return ErrAnchor
	}
	n := sc.Nodes[idx]
	if n.Dead() {
		return fmt.Errorf("%w: %d", ErrDeparted, idx)
	}
	if n.Configured() {
		lv.deadConfig++
	} else if n.DADState() == ndp.StateFailed {
		lv.deadFailed++
	}
	// Drain samples first so nothing is stranded, then bank the counters.
	lv.drainInto(n.Metrics())
	lv.graveyard.Merge(n.Metrics())
	ident := n.Identity()
	key := bindtable.KeyOf(ident.Addr, ident.Pub.Bytes(), ident.Rn)
	n.Shutdown()
	if sc.eng != nil {
		sc.eng.BindTable(radio.NodeID(idx)).Forget(key)
		sc.eng.RemoveNode(radio.NodeID(idx))
	} else {
		sc.bindTable.Forget(key)
		sc.Medium.RemoveNode(radio.NodeID(idx))
	}
	return nil
}

// startAudits arms the self-rescheduling audit sweep chain for every
// build-time node (the batch path pre-schedules a fixed span instead; an
// open-ended session cannot).
func (lv *Live) startAudits() {
	if lv.sc.Cfg.Protocol.Audit.Period <= 0 {
		return
	}
	for i, n := range lv.sc.Nodes {
		lv.scheduleAudit(i, n)
	}
}

// scheduleAudit starts node i's audit chain at its seed-stable phase
// offset. Each firing reschedules the next on the node's own simulator
// (ownership is inherited), and the chain ends when the node departs.
func (lv *Live) scheduleAudit(i int, n *core.Node) {
	sc := lv.sc
	period := sc.Cfg.Protocol.Audit.Period
	if period <= 0 {
		return
	}
	ns := sc.S
	if sc.eng != nil {
		ns = sc.eng.NodeSim(radio.NodeID(i))
	}
	var fire func()
	fire = func() {
		if n.Dead() {
			return
		}
		n.AuditAdvertise()
		ns.After(period, fire)
	}
	first := audit.Offset(sc.Cfg.Seed, i, period)
	if first == 0 {
		first = period
	}
	if sc.eng != nil {
		sc.eng.ScheduleOwnedAt(radio.NodeID(i), sc.S.Now().Add(first), fire)
	} else {
		sc.S.After(first, fire)
	}
}

// startFlows arms the configured CBR flows as self-rescheduling chains —
// open-ended, unlike the batch path's pre-scheduled send lists. A flow
// pauses forever when its source departs; a departed destination simply
// stops delivering.
func (lv *Live) startFlows() {
	sc := lv.sc
	for fi, f := range sc.Cfg.Flows {
		fi, f := fi, f
		st := &flowStat{}
		sc.flowStats[fi] = st
		src, dst := sc.Nodes[f.From], sc.Nodes[f.To]
		flowID := uint32(fi + 1)
		payload := make([]byte, f.Size)
		dstAddr := dst.Addr()

		if sc.eng != nil {
			srcID := radio.NodeID(f.From)
			srcRegion, dstRegion := sc.eng.RegionOf(srcID), sc.eng.RegionOf(radio.NodeID(f.To))
			srcSim, dstSim := sc.eng.NodeSim(srcID), sc.eng.NodeSim(radio.NodeID(f.To))
			prevOnData := dst.OnData
			dst.OnData = func(from ipv6.Addr, d *wire.Data) {
				if prevOnData != nil {
					prevOnData(from, d)
				}
				if d.FlowID != flowID {
					return
				}
				sc.flowLogs[dstRegion] = append(sc.flowLogs[dstRegion],
					flowLogEntry{at: dstSim.Now(), kind: flowDeliver, flow: d.FlowID, seq: d.Seq})
			}
			var send func()
			send = func() {
				if src.Dead() {
					return
				}
				_, seq := src.SendFlow(dstAddr, flowID, payload)
				sc.flowLogs[srcRegion] = append(sc.flowLogs[srcRegion],
					flowLogEntry{at: srcSim.Now(), kind: flowSend, flow: flowID, seq: seq})
				srcSim.After(f.Interval, send)
			}
			sc.eng.ScheduleOwnedAt(srcID, sc.S.Now().Add(f.Start+f.Interval), send)
			continue
		}

		prevOnData := dst.OnData
		dst.OnData = func(from ipv6.Addr, d *wire.Data) {
			if prevOnData != nil {
				prevOnData(from, d)
			}
			if d.FlowID != flowID {
				return
			}
			key := flowPacket{d.FlowID, d.Seq}
			sentAt, tracked := sc.sent[key]
			if !tracked {
				return // duplicate, pruned, or out-of-window
			}
			delete(sc.sent, key)
			st.delivered++
			sc.onLatency(f.From, sc.S.Now().Sub(sentAt).Seconds())
			if w := sc.windowAt(sc.windowIndex(sentAt)); w != nil {
				w.Delivered++
			}
		}
		var send func()
		send = func() {
			if src.Dead() {
				return
			}
			_, seq := src.SendFlow(dstAddr, flowID, payload)
			sc.sent[flowPacket{flowID, seq}] = sc.S.Now()
			st.sent++
			if w := sc.windowAt(sc.windowIndex(sc.S.Now())); w != nil {
				w.Sent++
			}
			sc.S.After(f.Interval, send)
		}
		sc.S.After(f.Start+f.Interval, send)
	}
}

// Result synthesizes the cumulative session result at the current
// barrier: counters merged across graveyard and live nodes, latency from
// the bounded aggregates (never NaN), totals from the flow stats. The
// Windows slice is nil — sessions stream windows instead of retaining
// them.
func (lv *Live) Result() *Result {
	sc := lv.sc
	res := &Result{Metrics: trace.NewMetrics(), PerFlow: make(map[int]FlowResult)}
	res.Metrics.Merge(lv.graveyard)
	for _, n := range sc.Nodes {
		if !n.Dead() {
			res.Metrics.Merge(n.Metrics())
		}
	}
	res.Configured = lv.deadConfig
	res.DADFailed = lv.deadFailed
	for _, n := range sc.Nodes {
		if n.Dead() {
			continue
		}
		if n.Configured() {
			res.Configured++
		} else if n.DADState() == ndp.StateFailed {
			res.DADFailed++
		}
	}
	//sbr6:commutative order-free sums plus one distinct PerFlow key per flow
	for fi, st := range sc.flowStats {
		res.Sent += st.sent
		res.Delivered += st.delivered
		res.PerFlow[fi] = FlowResult{Sent: st.sent, Delivered: st.delivered}
	}
	if res.Sent > 0 {
		res.PDR = float64(res.Delivered) / float64(res.Sent)
	}
	if lat, ok := lv.aggs["e2e.latency_s"]; ok {
		res.LatencyMean = lat.Mean()
		res.LatencyP95 = lat.Quantile(0.95)
	}
	res.ControlBytes = res.Metrics.Get("tx.bytes.control")
	res.DataBytes = res.Metrics.Get("tx.bytes.data")
	res.CryptoSign = res.Metrics.Get("crypto.sign")
	res.CryptoVerify = res.Metrics.Get("crypto.verify")
	if sc.eng != nil {
		res.Link = sc.eng.Stats()
	} else {
		res.Link = sc.Medium.Stats()
	}
	return res
}

// Digest hashes the session's observable state at the current barrier:
// window count, per-node lifecycle, merged counters, flow bookkeeping,
// in-flight packets and sample aggregates. Snapshot restore replays to
// the same barrier and verifies the digests match.
func (lv *Live) Digest() [sha256.Size]byte {
	sc := lv.sc
	h := sha256.New()
	var b [8]byte
	put := func(v uint64) { binary.BigEndian.PutUint64(b[:], v); h.Write(b[:]) }
	putF := func(v float64) { put(math.Float64bits(v)) }
	put(uint64(lv.window))
	put(uint64(len(sc.Nodes)))
	for _, n := range sc.Nodes {
		flags := uint64(0)
		if n.Dead() {
			flags |= 1
		}
		if n.Configured() {
			flags |= 2
		}
		put(flags)
		addr := n.Addr()
		h.Write(addr[:])
	}
	counters := lv.mergedCounters()
	for _, name := range sortedNames(counters) {
		h.Write([]byte(name))
		putF(counters[name])
	}
	flows := make([]int, 0, len(sc.flowStats))
	for fi := range sc.flowStats {
		flows = append(flows, fi)
	}
	sort.Ints(flows)
	for _, fi := range flows {
		put(uint64(fi))
		put(uint64(sc.flowStats[fi].sent))
		put(uint64(sc.flowStats[fi].delivered))
	}
	inflight := make([]flowPacket, 0, len(sc.sent))
	//sbr6:commutative keys are collected then sorted before hashing
	for k := range sc.sent {
		inflight = append(inflight, k)
	}
	sort.Slice(inflight, func(a, b int) bool {
		if inflight[a].flow != inflight[b].flow {
			return inflight[a].flow < inflight[b].flow
		}
		return inflight[a].seq < inflight[b].seq
	})
	for _, k := range inflight {
		put(uint64(k.flow))
		put(uint64(k.seq))
		put(uint64(sc.sent[k]))
	}
	aggNames := make([]string, 0, len(lv.aggs))
	//sbr6:commutative keys are collected then sorted before hashing
	for name := range lv.aggs {
		aggNames = append(aggNames, name)
	}
	sort.Strings(aggNames)
	for _, name := range aggNames {
		a := lv.aggs[name]
		h.Write([]byte(name))
		put(uint64(a.Count))
		putF(a.Sum)
		putF(a.Min)
		putF(a.Max)
		for _, c := range a.Hist {
			put(uint64(c))
		}
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}
