package scenario

import (
	"strings"
	"testing"
	"time"
)

// TestValidateErrorDeterministic is the regression test for the
// map-iteration nondeterminism sbr6lint's maprange analyzer surfaced in
// Validate: with several invalid entries in the index-keyed config maps,
// the reported first error used to be whichever entry map iteration
// dealt out first, so the same bad config produced different error text
// run to run. Validation now iterates keys in sorted order: the
// smallest offending key wins, every time.
func TestValidateErrorDeterministic(t *testing.T) {
	base := DefaultConfig()
	base.Duration = time.Second

	t.Run("names", func(t *testing.T) {
		cfg := base
		cfg.Names = map[int]string{cfg.N + 3: "c.example.", cfg.N + 9: "a.example.", cfg.N + 7: "b.example."}
		assertStableError(t, cfg, "references node 28")
	})
	t.Run("behaviors", func(t *testing.T) {
		cfg := base
		cfg.Behaviors = nil // Behaviors values may be nil; only keys are validated
		cfg.Names = nil
		cfg.Preload = map[string]int{"z.example.": -5, "a.example.": 99, "m.example.": -1}
		assertStableError(t, cfg, `preload "a.example." references node 99`)
	})
}

// assertStableError validates cfg many times and insists every failure
// is byte-identical and names the smallest offending key.
func assertStableError(t *testing.T, cfg Config, wantSub string) {
	t.Helper()
	first := ""
	for i := 0; i < 50; i++ {
		err := Validate(cfg)
		if err == nil {
			t.Fatal("config with out-of-range entries must not validate")
		}
		if i == 0 {
			first = err.Error()
			if !strings.Contains(first, wantSub) {
				t.Fatalf("first error %q does not name the smallest offending key (want substring %q)", first, wantSub)
			}
			continue
		}
		if err.Error() != first {
			t.Fatalf("validation error text changed between runs of the same config:\n run 0: %s\n run %d: %s", first, i, err.Error())
		}
	}
}
