package scenario

import (
	"fmt"
	"runtime"
	"testing"
)

// settle steps enough windows that every packet in flight when the last
// op was applied has either landed or been dropped and every finalized
// window has been emitted: the emission lag plus two windows of margin.
func settle(lv *Live) {
	for i := 0; i < lv.lag+2; i++ {
		lv.Step()
	}
}

// churnWave joins n nodes, lets them participate for one window, then
// ejects them all and settles; it returns the indexes that joined.
func churnWave(t *testing.T, lv *Live, n int) []int {
	t.Helper()
	joined := make([]int, 0, n)
	for i := 0; i < n; i++ {
		idx, err := lv.Join("", nil)
		if err != nil {
			t.Fatalf("Join: %v", err)
		}
		joined = append(joined, idx)
	}
	lv.Step()
	for _, idx := range joined {
		if err := lv.Leave(idx); err != nil {
			t.Fatalf("Leave(%d): %v", idx, err)
		}
	}
	settle(lv)
	return joined
}

// TestChurnNoResidualState is the lifecycle conformance core: after a
// join/leave wave settles, a departed node must leave nothing behind —
// the radio grid drops its port, the binding table forgets its verdicts,
// and the event queue returns to the steady-state population. Repeated
// waves must land on exactly the same numbers, or some structure is
// leaking one entry per churned node.
func TestChurnNoResidualState(t *testing.T) {
	lv := startLive(t, liveConfig(11, 0))
	sc := lv.sc

	// First wave establishes the steady-state fingerprint; the sim is
	// deterministic, so later identically-shaped waves must reproduce it.
	churnWave(t, lv, 5)
	wantLive := sc.Medium.Live()
	wantBind := sc.bindTable.Len()
	wantPending := sc.S.Pending()
	if wantLive != 16 {
		t.Fatalf("grid occupancy %d after first wave, want the 16 built nodes", wantLive)
	}

	for wave := 2; wave <= 4; wave++ {
		joined := churnWave(t, lv, 5)
		if got := sc.Medium.Live(); got != wantLive {
			t.Errorf("wave %d: grid occupancy %d, want %d — departed ports leaked", wave, got, wantLive)
		}
		if got := sc.bindTable.Len(); got != wantBind {
			t.Errorf("wave %d: binding table holds %d entries, want %d — departed bindings leaked", wave, got, wantBind)
		}
		if got := sc.S.Pending(); got != wantPending {
			t.Errorf("wave %d: %d pending events, want %d — departed timers leaked", wave, got, wantPending)
		}
		for _, idx := range joined {
			if !sc.Nodes[idx].Dead() {
				t.Errorf("wave %d: node %d not marked dead after Leave", wave, idx)
			}
		}
	}
	if got := lv.LiveNodes(); got != 16 {
		t.Errorf("LiveNodes = %d after all waves, want 16", got)
	}
}

// TestChurnPoolDrains ejects both flow sources and settles: with no
// senders left and the cooldown elapsed, every pooled frame buffer must
// be back in the pool — Live outstanding count exactly zero.
func TestChurnPoolDrains(t *testing.T) {
	lv := startLive(t, liveConfig(13, 0))
	sc := lv.sc
	lv.Step()
	for _, src := range []int{1, 3} {
		if err := lv.Leave(src); err != nil {
			t.Fatalf("Leave(%d): %v", src, err)
		}
	}
	settle(lv)
	if st := sc.Medium.PoolStats(); st.Live != 0 {
		t.Errorf("pool holds %d outstanding buffers after the sources left and the cooldown drained: %+v", st.Live, st)
	}
}

// TestChurnMonotoneCounters streams windows through a join/leave storm
// and asserts every per-window counter delta is non-negative: the
// graveyard must bank a departing node's cumulative counters so merged
// totals never step backwards when a node leaves mid-window.
func TestChurnMonotoneCounters(t *testing.T) {
	for _, shards := range []int{0, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			lv := startLive(t, liveConfig(17, shards))
			violations := 0
			lv.OnWindow = func(w WindowReport) {
				for name, v := range w.Counters { //sbr6:allow maprange counter deltas are only checked for sign, order-independent
					if v < 0 {
						violations++
						t.Errorf("window %d: counter %q went backwards by %g", w.Index, name, -v)
					}
				}
				if w.Live <= 0 {
					t.Errorf("window %d reports %d live nodes", w.Index, w.Live)
				}
			}
			var joined []int
			for round := 0; round < 3; round++ {
				for i := 0; i < 3; i++ {
					idx, err := lv.Join("", nil)
					if err != nil {
						t.Fatalf("Join: %v", err)
					}
					joined = append(joined, idx)
				}
				lv.Step()
				for _, idx := range joined {
					if err := lv.Leave(idx); err != nil {
						t.Fatalf("Leave(%d): %v", idx, err)
					}
				}
				joined = joined[:0]
				lv.Step()
			}
			settle(lv)
			if violations > 0 {
				t.Fatalf("%d counter deltas went negative during the churn storm", violations)
			}
		})
	}
}

// TestChurnHeapSteady drives cumulative join churn and asserts the
// process heap reaches a steady state: once the first waves have paid
// for lazily-grown structures, later waves must not keep growing the
// live heap, or per-node residue is accumulating. The full acceptance
// run covers 50k cumulative joins; -short scales down.
func TestChurnHeapSteady(t *testing.T) {
	// Small waves keep the instantaneous network bounded (DAD floods
	// scale with the live population) while the joins accumulate.
	waves, perWave := 625, 80 // 50k cumulative joins
	if testing.Short() {
		waves, perWave = 6, 25
	}
	lv := startLive(t, liveConfig(19, 0))

	heapAfter := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	var baseline uint64
	warmupWaves := waves / 5
	for wave := 0; wave < waves; wave++ {
		churnWave(t, lv, perWave)
		if wave == warmupWaves {
			baseline = heapAfter()
		}
	}
	final := heapAfter()

	// Index slots, the op journal and window aggregates grow O(joins) by
	// design but are tiny; allow a modest absolute allowance over the
	// post-warmup baseline and fail on anything resembling per-node
	// protocol state (routes, bindings, timers) being retained.
	joins := uint64((waves - warmupWaves - 1) * perWave)
	allowance := uint64(4<<20) + joins*2048
	if final > baseline+allowance {
		t.Fatalf("heap grew from %d to %d over %d churned joins (allowance %d): per-node state is leaking",
			baseline, final, joins, allowance)
	}
}
