// Package analysistest runs an analyzer over a fixture package and
// checks its findings against `// want` comments, the same contract as
// golang.org/x/tools/go/analysis/analysistest (rebuilt on the stdlib
// because that module is unavailable in this build environment).
//
// A fixture line expecting a finding carries a trailing comment of the
// form
//
//	// want `regexp`
//
// Every reported diagnostic must match a want-pattern on its line and
// every want-pattern must be matched by at least one diagnostic — so a
// disabled or vacuous analyzer fails the suite by leaving wants
// unmatched, which is the non-vacuity proof the fixtures exist for.
//
// Fixtures importing the stdlib type-check straight from GOROOT. An
// analyzer that matches symbols of an sbr6-internal package (e.g.
// directverify on sbr6/internal/cga) cannot import the real package
// from a fixture — the source importer resolves only GOROOT — so the
// fixture imports a *stub*: a minimal same-path package under
// testdata/stub/<import-path>/ that declares just the matched symbols.
// The analyzers match import path + name, never behavior, so a stub
// exercises the production matcher exactly.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"sbr6/internal/lint/analysis"
)

// Run analyzes testdata/src/<fixture> relative to the caller's package
// directory and enforces the want-comments. It returns the diagnostics
// for any extra assertions the caller wants to make.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) []analysis.Diagnostic {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	fset := token.NewFileSet()
	files, sources := parseFixture(t, fset, dir)

	// Fixtures import the stdlib (type-checked straight from GOROOT, no
	// export data needed) plus any stub packages under testdata/stub.
	stubs := &stubImporter{
		base: importer.ForCompiler(fset, "source", nil),
		dir:  filepath.Join("testdata", "stub"),
		fset: fset,
		pkgs: make(map[string]*types.Package),
	}
	conf := types.Config{
		Importer: stubs,
		Error:    func(error) {}, // collected via the returned error
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := conf.Check(fixture, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}

	pass := analysis.NewPass(a, fset, files, pkg, info)
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	diags := pass.Diagnostics()
	checkWants(t, a, fset, sources, diags)
	return diags
}

// parseFixture parses every .go file in dir, returning the ASTs and the
// raw sources keyed by file name (for want-comment extraction).
func parseFixture(t *testing.T, fset *token.FileSet, dir string) ([]*ast.File, map[string][]byte) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	sources := make(map[string][]byte)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading fixture file: %v", err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture file: %v", err)
		}
		files = append(files, f)
		sources[path] = src
	}
	if len(files) == 0 {
		t.Fatalf("fixture dir %s holds no .go files", dir)
	}
	return files, sources
}

// stubImporter resolves stdlib imports through the source importer and
// everything else from testdata/stub/<import-path>/, so fixtures can
// call into same-path stand-ins for sbr6-internal packages.
type stubImporter struct {
	base types.Importer
	dir  string
	fset *token.FileSet
	pkgs map[string]*types.Package
}

func (si *stubImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := si.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(si.dir, filepath.FromSlash(path))
	if _, err := os.Stat(dir); err != nil {
		return si.base.Import(path)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(si.fset, filepath.Join(dir, e.Name()), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("stub package %s holds no .go files", dir)
	}
	conf := types.Config{Importer: si} // stubs may import the stdlib or other stubs
	pkg, err := conf.Check(path, si.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("type-checking stub %s: %w", dir, err)
	}
	si.pkgs[path] = pkg
	return pkg, nil
}

var wantRe = regexp.MustCompile("// want `([^`]*)`")

// checkWants cross-checks diagnostics against the fixtures' `// want`
// comments, failing the test on unexpected or missing findings.
func checkWants(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, sources map[string][]byte, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	var wantKeys []key
	for path, src := range sources {
		for i, lineText := range strings.Split(string(src), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(lineText, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, m[1], err)
				}
				k := key{path, i + 1}
				wants[k] = append(wants[k], re)
				wantKeys = append(wantKeys, k)
			}
		}
	}

	matched := make(map[*regexp.Regexp]bool)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		ok := false
		for _, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched[re] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s: unexpected %s diagnostic: %s", pos, a.Name, d.Message)
		}
	}
	sort.Slice(wantKeys, func(i, j int) bool {
		if wantKeys[i].file != wantKeys[j].file {
			return wantKeys[i].file < wantKeys[j].file
		}
		return wantKeys[i].line < wantKeys[j].line
	})
	for _, k := range wantKeys {
		for _, re := range wants[k] {
			if !matched[re] {
				t.Errorf("%s:%d: want-pattern %q matched no %s diagnostic (vacuous check?)", k.file, k.line, re, a.Name)
			}
		}
	}
}
