// Package unitchecker implements the tool side of the `go vet -vettool`
// protocol against the standard library alone, mirroring what
// golang.org/x/tools/go/analysis/unitchecker does (that module is not
// available in this build environment). The go command compiles each
// package, writes a JSON config describing it — source files, canonical
// import map, and export-data files for every dependency — and invokes
// the tool with the config path as the sole argument; the tool
// type-checks from those inputs, runs its analyzers, prints findings to
// stderr and signals them with exit status 2.
//
// The config layout is cmd/go/internal/work's vetConfig (stable since Go
// 1.10); dependency export data is read with the stdlib gc importer via
// go/importer's lookup hook, so no tools module is needed.
package unitchecker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"

	"sbr6/internal/lint/analysis"
)

// Config mirrors cmd/go's vetConfig JSON. Fields the suite has no use
// for (NonGoFiles, module identity, facts) are listed for completeness
// and ignored.
type Config struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// Run executes the analyzers against the package described by cfgFile
// and returns the process exit code: 0 clean, 1 tool failure, 2 findings
// (the same contract the go command expects from vet).
func Run(cfgFile string, analyzers []*analysis.Analyzer, scoped func(importPath string) bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbr6lint: reading config: %v\n", err)
		return 1
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "sbr6lint: parsing config %s: %v\n", cfgFile, err)
		return 1
	}

	// The go command caches our (empty — the suite is fact-free) facts
	// output keyed by package; always produce it so unchanged packages
	// are never re-analyzed.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "sbr6lint: writing vetx output: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly || !scoped(cfg.ImportPath) {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "sbr6lint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	pkg, info, err := typeCheck(&cfg, fset, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "sbr6lint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	exit := 0
	for _, a := range analyzers {
		pass := analysis.NewPass(a, fset, files, pkg, info)
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "sbr6lint: analyzer %s: %v\n", a.Name, err)
			return 1
		}
		for _, d := range pass.Diagnostics() {
			fmt.Fprintf(os.Stderr, "%s: %s [sbr6lint/%s]\n", fset.Position(d.Pos), d.Message, a.Name)
			exit = 2
		}
	}
	return exit
}

// typeCheck type-checks the package using the export data the go
// command supplied for each dependency.
func typeCheck(cfg *Config, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	gc, ok := importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	if !ok {
		return nil, nil, fmt.Errorf("gc importer does not support ImportFrom")
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tc := &types.Config{
		Importer: &mappedImporter{cfg: cfg, gc: gc},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	if cfg.GoVersion != "" {
		tc.GoVersion = cfg.GoVersion
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

// mappedImporter resolves source-level import paths through the config's
// canonical ImportMap before handing them to the gc export-data importer.
type mappedImporter struct {
	cfg *Config
	gc  types.ImporterFrom
}

func (m *mappedImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if canonical, ok := m.cfg.ImportMap[path]; ok {
		path = canonical
	}
	return m.gc.ImportFrom(path, m.cfg.Dir, 0)
}
