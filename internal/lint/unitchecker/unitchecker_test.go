package unitchecker_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetToolProtocol proves the whole chain the CI gate relies on: the
// go command drives sbr6lint through the -vettool protocol (version
// probe, flag probe, per-package vet.cfg with export data) and findings
// in a scoped package surface as a failing `go vet` with the diagnostic
// on stderr. The scratch module is named sbr6 so its internal/core lands
// inside the analyzers' scope.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vet tool and runs go vet twice")
	}
	tmp := t.TempDir()
	tool := filepath.Join(tmp, "sbr6lint")

	build := exec.Command("go", "build", "-o", tool, "sbr6/cmd/sbr6lint")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building sbr6lint: %v\n%s", err, out)
	}

	mod := filepath.Join(tmp, "mod")
	pkgDir := filepath.Join(mod, "internal", "core")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(mod, "go.mod"), "module sbr6\n\ngo 1.24\n")
	writeFile(t, filepath.Join(pkgDir, "core.go"), `package core

import "time"

// Stamp reads the wall clock on a sim path and must be flagged.
func Stamp() time.Time { return time.Now() }

// Merge iterates a map into a sum; order-free but unannotated, so the
// maprange analyzer must flag it too.
func Merge(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
`)

	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = mod
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet must fail on the seeded violations; output:\n%s", out)
	}
	text := string(out)
	for _, want := range []string{
		"time.Now reads the wall clock",
		"range over map",
		"[sbr6lint/walltime]",
		"[sbr6lint/maprange]",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("go vet output missing %q:\n%s", want, text)
		}
	}

	// Fix the violations; the same invocation must now pass.
	writeFile(t, filepath.Join(pkgDir, "core.go"), `package core

// Stamp is gone; Merge declares its order-independence.
func Merge(m map[string]int) int {
	total := 0
	//sbr6:commutative addition is order-free
	for _, v := range m {
		total += v
	}
	return total
}
`)
	vet = exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = mod
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet must pass once violations are fixed/annotated: %v\n%s", err, out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
