// Fixture for the walltime analyzer: host-clock reads and the global
// math/rand stream are flagged; virtual-duration arithmetic and
// explicit seeded generators are not.
package walltime

import (
	"math/rand"
	"time"
)

func readsClock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func measures(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func sleeps() {
	time.Sleep(time.Second) // want `time\.Sleep reads the wall clock`
}

func arms() {
	_ = time.After(time.Second)     // want `time\.After reads the wall clock`
	_ = time.NewTimer(time.Second)  // want `time\.NewTimer reads the wall clock`
	_ = time.NewTicker(time.Second) // want `time\.NewTicker reads the wall clock`
}

func durationArithmeticIsFine(d time.Duration) time.Duration {
	return 3*d + 500*time.Millisecond
}

func virtualTimeMathIsFine(a, b time.Time) time.Duration {
	return a.Sub(b)
}

func globalRand() int {
	return rand.Intn(10) // want `math/rand\.Intn draws from the process-global RNG`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `math/rand\.Shuffle draws from the process-global RNG`
}

func seededStreamMethodsAreFine(rng *rand.Rand) int {
	return rng.Intn(10) + int(rng.Int63())
}

func allowedWithReason(start time.Time) time.Duration {
	//sbr6:allow walltime progress reporting only, never enters sim state
	return time.Since(start)
}
