// Package directverify exercises the directverify analyzer: a bare
// primitive call is flagged, an annotated compute site is allowed, and
// methods merely named Verify on other types are ignored.
package directverify

import "sbr6/internal/cga"

type memo struct{}

func (memo) Verify(addr cga.Addr, pk []byte, rn uint64) bool {
	_ = addr
	_ = pk
	_ = rn
	return false
}

func bare(addr cga.Addr, pk []byte, rn uint64) bool {
	return cga.Verify(addr, pk, rn) // want `cga\.Verify bypasses the verification memo`
}

func allowedComputeSite(addr cga.Addr, pk []byte, rn uint64) bool {
	//sbr6:allow directverify this fixture models the memo's own compute site
	return cga.Verify(addr, pk, rn)
}

func viaMemo(addr cga.Addr, pk []byte, rn uint64) bool {
	var m memo
	return m.Verify(addr, pk, rn)
}
