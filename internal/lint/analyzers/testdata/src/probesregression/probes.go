// Fixture reproducing the shape of the historical n.probes seed
// nondeterminism: PR 2's cross-medium differential suite caught probe
// acks being resolved by iterating the probes map when flow ids
// collided, so which probe an ack matched depended on map iteration
// order and Results differed run to run on the same seed. The fix
// linked acks directly (sentData.probe); this fixture proves the
// analyzer would have flagged the original code statically.
package probesregression

type probe struct {
	flowID uint32
	seq    uint32
	acked  bool
}

type node struct {
	probes map[uint64]*probe
}

// ackProbe is the bug shape: first match wins, and with colliding flow
// ids "first" is whatever order the runtime deals the map out in.
func (n *node) ackProbe(flowID uint32) *probe {
	for _, p := range n.probes { // want `range over map`
		if p.flowID == flowID && !p.acked {
			p.acked = true
			return p
		}
	}
	return nil
}
