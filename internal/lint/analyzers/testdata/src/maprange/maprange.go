// Fixture for the maprange analyzer: map iteration on a sim path is
// flagged unless the keys are collected and sorted, or the loop carries
// an //sbr6:commutative annotation with a reason.
package maprange

import "sort"

func plainMapRange(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map`
		total += v
	}
	return total
}

func keyOnlyRange(m map[int]bool) {
	for k := range m { // want `range over map`
		_ = k
	}
}

func sliceRangeIsFine(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectValuesThenSortSlice(m map[string]int) []int {
	vals := make([]int, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func collectWithoutSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want `range over map`
		keys = append(keys, k)
	}
	return keys
}

func annotatedCommutative(m map[string]int) int {
	total := 0
	//sbr6:commutative addition is order-free
	for _, v := range m {
		total += v
	}
	return total
}

func annotatedTrailing(m map[string]int) int {
	total := 0
	for _, v := range m { //sbr6:commutative addition is order-free
		total += v
	}
	return total
}

func commutativeMissingReason(m map[string]int) int {
	total := 0
	//sbr6:commutative
	for _, v := range m { // want `range over map`
		total += v
	}
	return total
}

type namedMap map[string]int

func namedMapType(m namedMap) {
	for k := range m { // want `range over map`
		_ = k
	}
}
