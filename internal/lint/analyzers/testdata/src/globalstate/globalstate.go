// Fixture for the globalstate analyzer: package-level mutable vars are
// flagged; error sentinels and blank compile-time assertions are the
// two sanctioned shapes.
package globalstate

import (
	"errors"
	"fmt"
	"sync"
)

var counter int // want `package-level var counter is process-global mutable state`

var mu sync.Mutex // want `package-level var mu is process-global mutable state`

var registry = map[string]int{} // want `package-level var registry is process-global mutable state`

var a, b int // want `package-level var a is process-global mutable state` // want `package-level var b is process-global mutable state`

// Error sentinels are write-once by convention and stay legal.
var ErrNotFound = errors.New("globalstate: not found")

var errWrapped = fmt.Errorf("globalstate: %w", ErrNotFound)

// Blank compile-time assertions hold no state.
var _ fmt.Stringer = stringable{}

// Constants are not vars.
const limit = 42

//sbr6:allow globalstate lookup table written once at init and read-only after
var sanctioned = map[string]int{"a": 1}

type stringable struct{}

func (stringable) String() string { return "stringable" }

func localsAreFine() int {
	local := limit
	return local + counter
}
