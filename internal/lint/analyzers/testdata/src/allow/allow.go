// Fixture for the //sbr6:allow escape hatch itself, run under the
// walltime analyzer:
//
//   - an allow naming the analyzer WITH a reason suppresses the finding,
//   - an allow missing its reason suppresses nothing (reasons are
//     mandatory so every exception is legible in review),
//   - an allow naming a different analyzer suppresses nothing.
package allow

import "time"

func properlyAllowed() time.Time {
	//sbr6:allow walltime fixture exercises the sanctioned escape hatch
	return time.Now()
}

func trailingAllowed() time.Time {
	return time.Now() //sbr6:allow walltime trailing-comment form of the hatch
}

func missingReason() time.Time {
	//sbr6:allow walltime
	return time.Now() // want `time\.Now reads the wall clock`
}

func wrongAnalyzer() time.Time {
	//sbr6:allow maprange reason aimed at the wrong check
	return time.Now() // want `time\.Now reads the wall clock`
}
