// Fixture for the simrng analyzer: minting RNG streams and importing
// non-replayable entropy sources on a sim path are flagged; consuming a
// scenario-owned stream is the sanctioned pattern.
package simrng

import (
	crand "crypto/rand" // want `crypto/rand on a sim path`
	"math/rand"
)

func mintsStream(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `rand\.New mints an RNG stream` // want `rand\.NewSource mints an RNG stream`
}

func consumesOwnedStreamIsFine(rng *rand.Rand) float64 {
	return rng.Float64()
}

func realEntropy(buf []byte) {
	crand.Read(buf)
}

func annotatedOwner(seed int64) *rand.Rand {
	//sbr6:allow simrng seed-derived stream owned by this fixture's scenario
	return rand.New(rand.NewSource(seed))
}
