// Package cga is a type-check stub for the directverify fixture: the
// analyzer matches the import path and function name of the primitive,
// never its behavior, so declaring just the matched symbol is enough.
package cga

// Addr stands in for ipv6.Addr so the stub needs no further imports.
type Addr [16]byte

// Verify is the matched primitive; the body is irrelevant.
func Verify(addr Addr, pk []byte, rn uint64) bool {
	_ = addr
	_ = pk
	_ = rn
	return false
}
