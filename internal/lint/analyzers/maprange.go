package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"sbr6/internal/lint/analysis"
)

// MapRange flags `for ... range m` where m is a map, unless the loop is
// the canonical collect-keys idiom followed by a sort of the collected
// slice in the same block, or the loop carries an //sbr6:commutative
// annotation asserting order-independence. Go randomizes map iteration
// order per run, so any map range whose effect is order-sensitive makes
// simulation Results differ between byte-identical runs — the n.probes
// probe-ack bug that PR 2's cross-medium differential suite caught
// dynamically is exactly this shape.
var MapRange = &analysis.Analyzer{
	Name: "maprange",
	Doc:  "flag map iteration on sim paths unless sorted or annotated //sbr6:commutative",
	Run:  runMapRange,
}

func runMapRange(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.Commutative(rs.Pos()) {
				return true
			}
			if collectsThenSorts(pass, f, rs) {
				return true
			}
			pass.Reportf(rs.Pos(), "range over map: iteration order is nondeterministic on a sim path; sort the keys first, or annotate //sbr6:commutative <reason> if the body is order-independent")
			return true
		})
	}
	return nil
}

// collectsThenSorts recognizes the one map range that needs no
// annotation: a body that only appends the key (or value) to a slice,
// with a sort.* or slices.* call on that slice later in the same block.
func collectsThenSorts(pass *analysis.Pass, f *ast.File, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if _, isBuiltin := pass.TypesInfo.Uses[fn].(*types.Builtin); !isBuiltin {
		return false
	}
	if len(call.Args) < 2 || call.Ellipsis.IsValid() {
		return false
	}
	if a0, ok := call.Args[0].(*ast.Ident); !ok || a0.Name != lhs.Name {
		return false
	}
	target := pass.TypesInfo.ObjectOf(lhs)
	if target == nil {
		return false
	}
	return sortedAfter(pass, f, rs, target)
}

// sortedAfter reports whether some statement after rs in its innermost
// enclosing block calls into package sort or slices with the collected
// slice among the arguments.
func sortedAfter(pass *analysis.Pass, f *ast.File, rs *ast.RangeStmt, target types.Object) bool {
	var tail []ast.Stmt
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || tail != nil {
			return false
		}
		if block, ok := n.(*ast.BlockStmt); ok {
			for i, st := range block.List {
				if st == ast.Stmt(rs) {
					tail = block.List[i+1:]
					return false
				}
			}
		}
		return n.Pos() <= rs.Pos() && rs.End() <= n.End() || n == ast.Node(f)
	})
	for _, st := range tail {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgIdent, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.ObjectOf(pkgIdent).(*types.PkgName)
			if !ok {
				return true
			}
			path := pkgName.Imported().Path()
			if path != "sort" && path != "slices" {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == target {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
