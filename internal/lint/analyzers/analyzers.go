// Package analyzers holds the four sbr6lint determinism checks and the
// list of simulator-path packages they are scoped to. The invariant they
// enforce collectively: a simulation run is a pure function of its
// configuration and seed — byte-identical Results on every machine, with
// every shard count, forever. Each analyzer guards one way that property
// has been (or could be) lost:
//
//   - maprange: map iteration order leaking into simulation state (the
//     exact shape of the historical n.probes probe-ack bug PR 2 caught
//     dynamically with the cross-medium differential suite).
//   - walltime: wall-clock time or the process-global math/rand stream
//     entering a sim path (virtual time and the seeded scenario RNG only).
//   - simrng: RNG discipline — streams are minted only by the scenario
//     owners from the seed; crypto/rand stays confined to identity keygen.
//   - globalstate: package-level mutable state, the direct blocker to the
//     region-sharded simulation core on the roadmap (region-local state
//     must be the only state).
//   - directverify: direct cga.Verify calls that bypass the memoized
//     verification path (verifycache + the shared bindtable), making
//     their cost invisible to the Stats the benchmarks and differential
//     suites account against.
package analyzers

import (
	"path/filepath"
	"strings"

	"sbr6/internal/lint/analysis"
)

// All is the sbr6lint analyzer suite, in reporting order.
var All = []*analysis.Analyzer{MapRange, WallTime, SimRNG, GlobalState, DirectVerify}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// scopedPackages are the sim-path packages whose code must uphold the
// determinism invariants. Deliberately absent: internal/identity (the
// one legitimate crypto/rand consumer — key generation, and the home of
// the node-local CGA self-check), internal/trace and
// internal/verifycache (value containers whose iteration never reaches
// simulation state), the harness packages (experiments, scalebench,
// lint) and the facade/CLIs (which run scenarios but hold no per-event
// state).
var scopedPackages = map[string]bool{
	"sbr6/internal/sim":       true,
	"sbr6/internal/core":      true,
	"sbr6/internal/ndp":       true,
	"sbr6/internal/radio":     true,
	"sbr6/internal/scenario":  true,
	"sbr6/internal/audit":     true,
	"sbr6/internal/boot":      true,
	"sbr6/internal/dsr":       true,
	"sbr6/internal/geom":      true,
	"sbr6/internal/wire":      true,
	"sbr6/internal/mobility":  true,
	"sbr6/internal/attack":    true,
	"sbr6/internal/pool":      true,
	"sbr6/internal/shard":     true,
	"sbr6/internal/bindtable": true,
	"sbr6/internal/dnssrv":    true,
}

// Scoped reports whether the package with the given import path is on
// the simulator path and subject to the suite. Test-variant paths like
// "sbr6/internal/core [sbr6/internal/core.test]" resolve to their base
// package.
func Scoped(importPath string) bool {
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}
	return scopedPackages[importPath]
}

// ScopedDir reports whether a filesystem directory holds one of the
// scoped packages, by matching its trailing "internal/<name>" segments.
// It lets tooling that walks the tree (sbr6lint -list-allows) decide
// scope without resolving import paths.
func ScopedDir(dir string) bool {
	parts := strings.Split(filepath.ToSlash(filepath.Clean(dir)), "/")
	if len(parts) < 2 || parts[len(parts)-2] != "internal" {
		return false
	}
	return scopedPackages["sbr6/internal/"+parts[len(parts)-1]]
}
