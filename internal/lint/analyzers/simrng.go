package analyzers

import (
	"go/ast"
	"go/types"
	"strconv"

	"sbr6/internal/lint/analysis"
)

// SimRNG enforces the repo's RNG ownership discipline on sim paths:
//
//   - crypto/rand is confined to internal/identity (key generation, the
//     one place real entropy belongs); a sim-path import of it is always
//     wrong — its output cannot be replayed from a seed.
//   - math/rand/v2 is banned outright: its generators self-seed from
//     process entropy and the repo standardizes on the seeded math/rand
//     streams the scenario mints.
//   - rand.New / rand.NewSource are flagged everywhere on sim paths, so
//     each place a stream is minted from the seed (the Simulator root
//     RNG, the scenario's placement/identity/per-node/track streams)
//     carries a visible //sbr6:allow — new mints must justify themselves
//     in review. Everything else consumes a *rand.Rand handed down from
//     those owners, or uses boot.Mix-style splitmix hashing, which draws
//     nothing.
var SimRNG = &analysis.Analyzer{
	Name: "simrng",
	Doc:  "confine RNG minting to the annotated scenario owners; ban crypto/rand and math/rand/v2 on sim paths",
	Run:  runSimRNG,
}

func runSimRNG(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch path {
			case "crypto/rand":
				pass.Reportf(imp.Pos(), "crypto/rand on a sim path: real entropy cannot be replayed from a seed; it is confined to internal/identity key generation")
			case "math/rand/v2":
				pass.Reportf(imp.Pos(), "math/rand/v2 on a sim path: its generators self-seed from process entropy; use the scenario-owned seeded math/rand streams")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "math/rand" {
				return true
			}
			if fn.Name() == "New" || fn.Name() == "NewSource" {
				pass.Reportf(id.Pos(), "rand.%s mints an RNG stream on a sim path; consume a scenario-owned stream, or annotate //sbr6:allow simrng <reason> if this is a seed-derived owner", fn.Name())
			}
			return true
		})
	}
	return nil
}
